package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/reconfig"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The benchmarks below regenerate every figure and experiment of
// EXPERIMENTS.md as testing.B targets: F1/F2 are the paper's only figures;
// E1–E4 are the mechanized theorem checks; E5–E8 and A1 are the systems
// experiments DESIGN.md defines. `go test -bench=. -benchmem` runs them
// all; cmd/qcbench prints the same data as tables.

// BenchmarkF1F2_Figures builds both system trees of the paper's figures
// and renders them.
func BenchmarkF1F2_Figures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figures(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_Lemma8SerialRun drives the paper scenario's system B to
// quiescence, checking the Lemma 8 invariant after every step.
func BenchmarkE1_Lemma8SerialRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sysB, err := core.BuildB(core.PaperSpec())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunSerial(sysB, int64(i), 1_000_000, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Theorem10 runs the full simulation check (projection +
// replay against system A) on a fresh random execution each iteration.
func BenchmarkE2_Theorem10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAndCheck(core.PaperSpec(), int64(i), 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Theorem11 drives the concurrent system C and validates the
// serialization chain on completing runs.
func BenchmarkE3_Theorem11(b *testing.B) {
	spec := core.PaperSpec()
	spec.SequentialTMs = true
	spec.ReadAccessesPerDM = 2
	spec.WriteAccessesPerDM = 2
	checked := 0
	for i := 0; i < b.N; i++ {
		c, err := cc.BuildC(spec)
		if err != nil {
			b.Fatal(err)
		}
		d := ioa.NewDriver(c.Sys, int64(i))
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0.02
			}
			return 1
		}
		gamma, _, err := d.Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if !cc.Completed(c, gamma) {
			continue
		}
		if err := cc.CheckTheorem11(c, gamma); err != nil {
			b.Fatal(err)
		}
		checked++
	}
	b.ReportMetric(float64(checked)/float64(b.N), "checked/op")
}

// BenchmarkE4_Reconfiguration drives the Section 4 system with spies and
// coordinators, verifying the invariant each step and the simulation at
// the end.
func BenchmarkE4_Reconfiguration(b *testing.B) {
	dms := []string{"d1", "d2", "d3", "d4", "d5"}
	spec := reconfig.Spec{
		Core: core.Spec{
			Items: []core.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
			Top: []core.TxnSpec{
				core.Sub("u1", core.WriteItem("w", "x", 1), core.ReadItem("r", "x")),
				core.Sub("u2", core.ReadItem("r", "x")),
			},
		},
		NewConfigs:       map[string][]quorum.Config{"x": {quorum.ReadOneWriteAll(dms), quorum.Majority(dms)}},
		ReconfigsPerUser: 1,
	}
	for i := 0; i < b.N; i++ {
		sys, err := reconfig.BuildB(spec)
		if err != nil {
			b.Fatal(err)
		}
		d := ioa.NewDriver(sys.Sys, int64(i))
		d.OnStep = sys.Checker()
		sched, _, err := d.Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.CheckSimulation(sched); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCluster builds a store over n replicas with the given configuration
// for the cluster benchmarks.
func benchCluster(b *testing.B, n int, cfg func([]string) quorum.Config) (*cluster.Store, *sim.Network) {
	b.Helper()
	dms := make([]string, n)
	for i := range dms {
		dms[i] = fmt.Sprintf("dm%d", i)
	}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: cfg(dms)}},
		cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net
}

// benchOps runs b.N transactions of the given kind and reports messages
// per transaction alongside latency (E5/E7 data).
func benchOps(b *testing.B, store *cluster.Store, net *sim.Network, write bool) {
	b.Helper()
	ctx := context.Background()
	before := net.Stats().Sent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := store.Run(ctx, func(tx *cluster.Txn) error {
			if write {
				return tx.Write(ctx, "x", i)
			}
			_, err := tx.Read(ctx, "x")
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Stats().Sent-before)/float64(b.N), "msgs/txn")
}

// E5 + E7a: messages and latency per configuration and replica count.

func BenchmarkE5E7_Read_ReadOneWriteAll_N3(b *testing.B) {
	store, net := benchCluster(b, 3, quorum.ReadOneWriteAll)
	benchOps(b, store, net, false)
}

func BenchmarkE5E7_Read_Majority_N3(b *testing.B) {
	store, net := benchCluster(b, 3, quorum.Majority)
	benchOps(b, store, net, false)
}

func BenchmarkE5E7_Read_Majority_N5(b *testing.B) {
	store, net := benchCluster(b, 5, quorum.Majority)
	benchOps(b, store, net, false)
}

func BenchmarkE5E7_Read_Majority_N7(b *testing.B) {
	store, net := benchCluster(b, 7, quorum.Majority)
	benchOps(b, store, net, false)
}

func BenchmarkE5E7_Write_ReadOneWriteAll_N3(b *testing.B) {
	store, net := benchCluster(b, 3, quorum.ReadOneWriteAll)
	benchOps(b, store, net, true)
}

func BenchmarkE5E7_Write_Majority_N3(b *testing.B) {
	store, net := benchCluster(b, 3, quorum.Majority)
	benchOps(b, store, net, true)
}

func BenchmarkE5E7_Write_Majority_N5(b *testing.B) {
	store, net := benchCluster(b, 5, quorum.Majority)
	benchOps(b, store, net, true)
}

func BenchmarkE5E7_Write_Majority_N7(b *testing.B) {
	store, net := benchCluster(b, 7, quorum.Majority)
	benchOps(b, store, net, true)
}

// BenchmarkE6_AvailabilityExact measures the exact availability analysis
// itself (the E6 table is analytic; this benchmarks its generator).
func BenchmarkE6_AvailabilityExact(b *testing.B) {
	dms := []string{"d1", "d2", "d3", "d4", "d5", "d6", "d7"}
	cfg := quorum.Majority(dms)
	up := quorum.UniformUp(dms, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := quorum.ExactAvailability(cfg, up)
		if a.Read <= 0 {
			b.Fatal("bogus availability")
		}
	}
}

// BenchmarkE7b_NestingDepth2 measures nested-transaction throughput with
// tolerated subtransaction aborts.
func BenchmarkE7b_NestingDepth2(b *testing.B) {
	store, _ := benchCluster(b, 5, quorum.Majority)
	ctx := context.Background()
	b.ResetTimer()
	res, err := workload.Run(ctx, store, workload.Profile{
		ReadFraction: 0.5, OpsPerTxn: 2, NestDepth: 2, SubAbortProb: 0.2,
		Items: []string{"x"}, Seed: 1,
	}, b.N, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput(), "txn/s")
}

// BenchmarkE8_ReadsWithCrashedMinority measures reads while 2 of 5
// replicas are crashed (quorum probes pay timeouts until reconfigured).
func BenchmarkE8_ReadsWithCrashedMinority(b *testing.B) {
	store, net := benchCluster(b, 5, quorum.Majority)
	net.Crash("dm3")
	net.Crash("dm4")
	benchOps(b, store, net, false)
}

// BenchmarkE8_ReadsAfterReconfig measures the same reads after
// reconfiguring to the live replicas.
func BenchmarkE8_ReadsAfterReconfig(b *testing.B) {
	store, net := benchCluster(b, 5, quorum.Majority)
	net.Crash("dm3")
	net.Crash("dm4")
	if err := store.Reconfigure(context.Background(), "x", quorum.Majority([]string{"dm0", "dm1", "dm2"})); err != nil {
		b.Fatal(err)
	}
	benchOps(b, store, net, false)
}

// BenchmarkA1_Reconfigure_OldQuorumOnly and ..._BothQuorums compare the
// paper's reconfiguration write rule against Gifford's original.
func BenchmarkA1_Reconfigure_OldQuorumOnly(b *testing.B) {
	benchReconfigure(b, false)
}

func BenchmarkA1_Reconfigure_BothQuorums(b *testing.B) {
	benchReconfigure(b, true)
}

func benchReconfigure(b *testing.B, both bool) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		cluster.WithCallTimeout(25*time.Millisecond), cluster.WithWriteConfigToBothQuorums(both), cluster.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	ctx := context.Background()
	before := net.Stats().Sent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := quorum.Majority(dms)
		if i%2 == 1 {
			cfg = quorum.ReadOneWriteAll(dms)
		}
		if err := store.Reconfigure(ctx, "x", cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Stats().Sent-before)/float64(b.N), "msgs/reconfig")
}

// BenchmarkA2_BlindWriteBaseline measures the model-layer cost of the
// correct read-before-write TM against the hypothetical blind-write
// baseline documented in internal/core's A2 test (which demonstrates why
// the read phase is necessary); here we simply benchmark the correct
// write-TM path end to end at the model layer.
func BenchmarkA2_ModelWritePath(b *testing.B) {
	dms := []string{"d1", "d2", "d3"}
	spec := core.Spec{
		Items: []core.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		Top:   []core.TxnSpec{core.Sub("u", core.WriteItem("w", "x", 1))},
	}
	for i := 0; i < b.N; i++ {
		sysB, err := core.BuildB(spec)
		if err != nil {
			b.Fatal(err)
		}
		d := ioa.NewDriver(sysB.Sys, int64(i))
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0
			}
			return 1
		}
		if _, _, err := d.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomSpecGeneration exercises the scenario generator used by
// every property test.
func BenchmarkRandomSpecGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		spec := core.RandomSpec(rng, core.DefaultRandParams())
		if len(spec.Items) == 0 {
			b.Fatal("empty spec")
		}
	}
}

// BenchmarkE9_ReadRepairCatchUp measures a full stale-replica repair cycle:
// crash, miss a write, restart, read until caught up with repair on.
func BenchmarkE9_ReadRepairCatchUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dms := []string{"dm0", "dm1", "dm2"}
		net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: int64(i)})
		store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
			cluster.WithCallTimeout(25*time.Millisecond), cluster.WithReadRepair(true), cluster.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		net.Crash("dm2")
		if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
			b.Fatal(err)
		}
		net.Restart("dm2")
		for {
			if err := store.Run(ctx, func(tx *cluster.Txn) error {
				_, err := tx.Read(ctx, "x")
				return err
			}); err != nil {
				b.Fatal(err)
			}
			time.Sleep(500 * time.Microsecond)
			if resp, err := store.Inspect(ctx, "dm2", "x"); err == nil && resp.VN >= 1 {
				break
			}
		}
		store.Close()
		net.Close()
	}
}

// E10: phase latency under a skewed network. One of five replicas answers
// in 30–40ms while the rest answer in microseconds; majority quorums never
// need the straggler. The seed's sequential path queries one shuffled
// quorum per attempt, so ~6/10 attempts include the straggler and wait for
// it; first-to-quorum fan-out broadcasts to all five and completes with
// the fastest three. Compare the reported p50-us/p99-us metrics.

func benchStraggler(b *testing.B, opts ...cluster.Option) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	net.SetNodeLatency("dm4", 30*time.Millisecond, 40*time.Millisecond)
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		append([]cluster.Option{cluster.WithSeed(1), cluster.WithCallTimeout(100 * time.Millisecond)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := store.Run(ctx, func(tx *cluster.Txn) error {
			_, err := tx.Read(ctx, "x")
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := store.Stats.ReadPhaseLatency.Snapshot()
	b.ReportMetric(float64(s.P50.Microseconds()), "p50-us")
	b.ReportMetric(float64(s.P99.Microseconds()), "p99-us")
}

func BenchmarkE10_StragglerRead_FirstToQuorum(b *testing.B) {
	benchStraggler(b)
}

func BenchmarkE10_StragglerRead_SequentialQuorums(b *testing.B) {
	benchStraggler(b, cluster.WithSequentialPhases(true))
}

func BenchmarkE10_StragglerRead_FanoutNoHedge(b *testing.B) {
	benchStraggler(b, cluster.WithHedgeDelay(0))
}

// E12: group commit vs per-record fsync. Both variants append the same
// 64-byte records to a real on-disk WAL with fsync on; the baseline syncs
// after every record, group commit lets concurrent appenders share one
// fsync (a flush leader syncs everything framed since the last round and
// waiters piggyback). The reported batch-size metric is the realized
// records-per-fsync ratio.

func benchWAL(b *testing.B, parallel bool, opts ...wal.Option) {
	log, _, err := wal.Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { log.Close() })
	payload := make([]byte, 64)
	b.ResetTimer()
	if parallel {
		// Many appender goroutines per core: group commit's win is batching
		// concurrent appends behind one fsync, and the leader blocks in the
		// sync syscall, so waiters accumulate even on a single core.
		b.SetParallelism(32)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := log.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	} else {
		for i := 0; i < b.N; i++ {
			if err := log.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	m := log.Metrics()
	if f := m.Flushes.Value(); f > 0 {
		b.ReportMetric(float64(m.Appends.Value())/float64(f), "records/fsync")
	}
}

func BenchmarkE12_WAL_FsyncEachRecord(b *testing.B) {
	benchWAL(b, false, wal.WithGroupCommit(false))
}

// E13: self-healing. The reap-latency benchmark measures the full orphan
// recovery cycle — a crashed client's write locks wedge the item, the lease
// lapses, and the next conflicting writer triggers the peer inquiry and
// presumed-abort reap before its retry succeeds. The lease on/off pair
// measures what the lease machinery costs a healthy fast transaction: the
// pre-commit fence is satisfied by the grant-time stamps, so the answer
// should be "nothing but the stamp".

// BenchmarkE13_OrphanReapLatency: one orphan planted and reaped per
// iteration; reaps/op confirms every iteration actually exercised the
// reaper (2 = both lock-holding replicas reaped independently).
func BenchmarkE13_OrphanReapLatency(b *testing.B) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	clk := sim.NewManualClock(time.Unix(0, 0))
	ttl := 50 * time.Millisecond
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		cluster.WithSeed(1), cluster.WithCallTimeout(25*time.Millisecond),
		cluster.WithLeaseTTL(ttl), cluster.WithClock(clk),
		cluster.WithRetryBackoff(time.Millisecond), cluster.WithSynchronousCleanup(true))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	ctx := context.Background()
	before := store.Stats.OrphanReapsAborted.Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.PlantOrphan(ctx, "x"); err != nil {
			b.Fatal(err)
		}
		clk.Advance(ttl + time.Millisecond)
		if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(store.Stats.OrphanReapsAborted.Value()-before)/float64(b.N), "reaps/op")
}

func benchLeaseWrite(b *testing.B, opts ...cluster.Option) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		append([]cluster.Option{cluster.WithSeed(1), cluster.WithCallTimeout(25 * time.Millisecond)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	ctx := context.Background()
	before := net.Stats().Sent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Stats().Sent-before)/float64(b.N), "msgs/txn")
}

func BenchmarkE13_Write_LeasesOff(b *testing.B) {
	benchLeaseWrite(b)
}

func BenchmarkE13_Write_LeasesOn(b *testing.B) {
	benchLeaseWrite(b, cluster.WithLeaseTTL(100*time.Millisecond))
}

func BenchmarkE12_WAL_GroupCommit(b *testing.B) {
	benchWAL(b, true)
}

// E14: overload robustness. Each benchmark runs one arm of the three-arm
// overload experiment (finite service capacity, per-transaction deadlines)
// and reports the goodput / shed / expired-on-arrival series: a healthy
// cluster at capacity, the full protection stack (bounded admission,
// deadline propagation, retry budget, AIMD concurrency limit) under 2x
// load, and 2x load with every protection ablated — unbounded queues that
// serve expired work. Compare goodput-txn/s across the three: the
// protected 2x arm holds near capacity, the ablation collapses.

func benchOverloadArm(b *testing.B, arm string) {
	ctx := context.Background()
	var committed int
	var shed, expired, served int64
	var elapsed time.Duration
	var last chaos.OverloadArm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chaos.RunOverloadArm(ctx, chaos.OverloadConfig{Seed: int64(i + 1)}, arm)
		if err != nil {
			b.Fatal(err)
		}
		committed += res.Committed
		shed += res.Shed
		expired += res.ExpiredOnArrival
		served += res.ServedExpired
		elapsed += res.Elapsed
		last = res
	}
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(committed)/elapsed.Seconds(), "goodput-txn/s")
	}
	b.ReportMetric(float64(shed)/float64(b.N), "shed/op")
	b.ReportMetric(float64(expired)/float64(b.N), "expired-on-arrival/op")
	b.ReportMetric(float64(served)/float64(b.N), "served-expired/op")
	b.ReportMetric(float64(last.P99.Microseconds()), "p99-us")
}

func BenchmarkE14_Goodput_Capacity(b *testing.B) {
	benchOverloadArm(b, "capacity")
}

func BenchmarkE14_Goodput_Overload2x(b *testing.B) {
	benchOverloadArm(b, "overload")
}

func BenchmarkE14_Goodput_Ablation2x(b *testing.B) {
	benchOverloadArm(b, "ablation")
}

// The no-fsync variant isolates the cost of stability itself: it is the
// simulated-crash harness configuration, where a crash loses memory but
// not the page cache.
func BenchmarkE12_WAL_NoFsync(b *testing.B) {
	benchWAL(b, true, wal.WithFsync(false))
}

// E15: the read-dominant fast path. A 95/5 read/write mix over a
// three-replica majority cluster with heterogeneous replica latencies (one
// fast replica, two progressively slower ones — the regime where a quorum
// read pays the second-slowest member while a hinted single-replica read
// pays only its target). The two arms differ solely in WithReadLease;
// compare msgs/read-txn and read-p99-us across them, with the hit ratio
// and fallback rate qualifying how often the fast lane actually served.
func benchE15(b *testing.B, lease bool) {
	b.Helper()
	const nItems = 4
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	items := make([]cluster.ItemSpec, nItems)
	for i := range items {
		name := fmt.Sprintf("x%d", i)
		dms := []string{name + "-dm0", name + "-dm1", name + "-dm2"}
		// Latencies well above the sim scheduler's sleep granularity, so
		// p99 reflects protocol round trips, not timer jitter: a quorum
		// read cannot finish before the second-fastest replica answers,
		// a hinted read needs only dm0.
		net.SetNodeLatency(dms[1], 3*time.Millisecond, 4*time.Millisecond)
		net.SetNodeLatency(dms[2], 6*time.Millisecond, 8*time.Millisecond)
		items[i] = cluster.ItemSpec{Name: name, Initial: 0, DMs: dms, Config: quorum.Majority(dms)}
	}
	opts := []cluster.Option{cluster.WithCallTimeout(50 * time.Millisecond), cluster.WithSeed(1)}
	if lease {
		opts = append(opts, cluster.WithReadLease(true), cluster.WithReadLeaseTTL(time.Second))
	}
	store, err := cluster.Open(net, items, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	ctx := context.Background()
	// Warm-up: one committed write per item (the commit is what first
	// proves freshness at its write quorum) and one quorum read (whose
	// hinted piggyback primes the client's target cache).
	for i := 0; i < nItems; i++ {
		item := fmt.Sprintf("x%d", i)
		if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, item, 0) }); err != nil {
			b.Fatal(err)
		}
		if err := store.Run(ctx, func(tx *cluster.Txn) error { _, e := tx.Read(ctx, item); return e }); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	var readMsgs int64
	var reads, writes int
	var latencies []float64
	hintReads0 := store.Stats.HintReads.Value()
	hintHits0 := store.Stats.HintHits.Value()
	hintMisses0 := store.Stats.HintMisses.Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := fmt.Sprintf("x%d", rng.Intn(nItems))
		if rng.Float64() < 0.05 {
			if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, item, i) }); err != nil {
				b.Fatal(err)
			}
			writes++
			continue
		}
		before := net.Stats().Sent
		start := time.Now()
		if err := store.Run(ctx, func(tx *cluster.Txn) error { _, e := tx.Read(ctx, item); return e }); err != nil {
			b.Fatal(err)
		}
		latencies = append(latencies, float64(time.Since(start).Microseconds()))
		readMsgs += net.Stats().Sent - before
		reads++
	}
	b.StopTimer()
	if reads == 0 {
		return
	}
	b.ReportMetric(float64(readMsgs)/float64(reads), "msgs/read-txn")
	sort.Float64s(latencies)
	b.ReportMetric(latencies[len(latencies)*99/100], "read-p99-us")
	hintReads := store.Stats.HintReads.Value() - hintReads0
	hits := store.Stats.HintHits.Value() - hintHits0
	misses := store.Stats.HintMisses.Value() - hintMisses0
	b.ReportMetric(float64(hits)/float64(reads), "hint-hit-ratio")
	b.ReportMetric(float64(misses)/float64(max64(hintReads, 1)), "fallback-rate")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkE15_ReadMostly_HintOn(b *testing.B) {
	benchE15(b, true)
}

func BenchmarkE15_ReadMostly_HintOff(b *testing.B) {
	benchE15(b, false)
}

// E16: sharded scale-out. Each benchmark runs one arm of the shard-scale
// experiment — the identical 95/5 zipfian closed-loop workload against 1,
// 2, 4 or 8 replica groups, every replica behind the same simulated
// service time — and reports throughput plus the read-latency quantiles.
// Compare txn/s across arms: with fixed offered load and per-replica
// capacity, throughput must rise with the group count (the qchaos
// -shardscale gate requires 4-shard >= 2.5x 1-shard) while read p99
// falls as queues drain.
func benchShardScaleArm(b *testing.B, shards int) {
	ctx := context.Background()
	var committed, failed int
	var elapsed time.Duration
	var last chaos.ShardScaleArm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arm, err := chaos.RunShardScaleArm(ctx, chaos.ShardScaleConfig{Seed: int64(i + 1)}, shards)
		if err != nil {
			b.Fatal(err)
		}
		committed += arm.Committed
		failed += arm.Failed
		elapsed += arm.Elapsed
		last = arm
	}
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(committed)/elapsed.Seconds(), "txn/s")
	}
	b.ReportMetric(float64(failed)/float64(b.N), "failed/op")
	b.ReportMetric(float64(last.ReadP50.Microseconds()), "read-p50-us")
	b.ReportMetric(float64(last.ReadP99.Microseconds()), "read-p99-us")
}

func BenchmarkE16_ShardScale_1(b *testing.B) { benchShardScaleArm(b, 1) }
func BenchmarkE16_ShardScale_2(b *testing.B) { benchShardScaleArm(b, 2) }
func BenchmarkE16_ShardScale_4(b *testing.B) { benchShardScaleArm(b, 4) }
func BenchmarkE16_ShardScale_8(b *testing.B) { benchShardScaleArm(b, 8) }

// E17: non-blocking commit. The clean-path pairs price what Paxos Commit's
// extra fan-out costs a healthy write transaction — one ballot-0 accept
// round at the acceptor cohort between the write phase and the commit
// broadcast. Compare msgs/txn and ns/op against the TwoPhase arm at the
// same replica count. Reads are identical under both protocols (a
// read-only transaction has no acceptor cohort), so only writes are paired.

func benchE17Cluster(b *testing.B, n int, proto commit.Protocol) (*cluster.Store, *sim.Network) {
	b.Helper()
	dms := make([]string, n)
	for i := range dms {
		dms[i] = fmt.Sprintf("dm%d", i)
	}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(1),
		cluster.WithCommitProtocol(proto))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net
}

func BenchmarkE17_Write_TwoPhase_N3(b *testing.B) {
	store, net := benchE17Cluster(b, 3, commit.TwoPhase)
	benchOps(b, store, net, true)
}

func BenchmarkE17_Write_Paxos_N3(b *testing.B) {
	store, net := benchE17Cluster(b, 3, commit.PaxosCommit)
	benchOps(b, store, net, true)
}

func BenchmarkE17_Write_TwoPhase_N5(b *testing.B) {
	store, net := benchE17Cluster(b, 5, commit.TwoPhase)
	benchOps(b, store, net, true)
}

func BenchmarkE17_Write_Paxos_N5(b *testing.B) {
	store, net := benchE17Cluster(b, 5, commit.PaxosCommit)
	benchOps(b, store, net, true)
}

// BenchmarkE17_InDoubt_* measures the in-doubt window in the one scenario
// 2PC cannot shrink: the coordinator dies partway through the commit
// broadcast (exactly one replica learned the outcome), and that knowing
// replica then crashes. The 2PC inquiry cannot presume abort — an
// unreachable peer might hold the commit, and here it does — so the item
// stays wedged until the knowing replica returns (the harness restarts it
// after three lease TTLs). Paxos Commit reconstructs the decision from the
// surviving acceptor majority in the first inquiry round. The
// ttl-rounds-to-writable metric is the window: expect 1 for Paxos and 4
// for 2PC (three stalled rounds plus one after the restart).
func benchE17InDoubt(b *testing.B, proto commit.Protocol) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: 1})
	clk := sim.NewManualClock(time.Unix(0, 0))
	ttl := 50 * time.Millisecond
	store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		cluster.WithSeed(1), cluster.WithCallTimeout(25*time.Millisecond),
		cluster.WithLeaseTTL(ttl), cluster.WithClock(clk),
		cluster.WithRetryBackoff(time.Millisecond), cluster.WithSynchronousCleanup(true),
		cluster.WithCommitProtocol(proto))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		store.Close()
		net.Close()
	})
	ctx := context.Background()
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, cerr := store.CrashCommit(ctx, "x", i, cluster.CommitCrashOptions{
			Stage: cluster.CommitCrashMidLearn, Deliver: 1,
		})
		if !errors.Is(cerr, cluster.ErrCommitAbandoned) {
			b.Fatal(cerr)
		}
		if rep.Learned != 1 {
			b.Fatalf("%d replicas learned, want exactly 1", rep.Learned)
		}
		learned := ""
		for _, dm := range rep.DMs {
			if p, perr := store.ResolutionProbe(ctx, dm, rep.Txn); perr == nil && p.Known {
				learned = dm
				break
			}
		}
		if learned == "" {
			b.Fatal("no replica knows the outcome")
		}
		net.Crash(learned)
		down := true
		for r := 1; ; r++ {
			clk.Advance(ttl + time.Millisecond)
			if _, serr := store.SweepOnce(ctx); serr != nil {
				b.Fatal(serr)
			}
			net.Quiesce()
			werr := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, "x", i) })
			if werr == nil {
				rounds += r
				break
			}
			if r == 3 {
				// Give 2PC its blocked window back: the knowing replica
				// returns, the inquiry finds the commit record, the reap
				// finishes the transaction.
				net.Restart(learned)
				down = false
			}
			if r > 6 {
				b.Fatalf("item never unwedged: %v", werr)
			}
		}
		if down {
			net.Restart(learned)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rounds)/float64(b.N), "ttl-rounds-to-writable")
}

func BenchmarkE17_InDoubt_TwoPhase(b *testing.B) {
	benchE17InDoubt(b, commit.TwoPhase)
}

func BenchmarkE17_InDoubt_Paxos(b *testing.B) {
	benchE17InDoubt(b, commit.PaxosCommit)
}

// E18: storage-fault recovery. Each iteration builds a durable 3-replica
// cluster, commits a write history, then destroys one replica's log on
// disk — a seeded bit flip through the fault-injecting filesystem — and
// restarts it, which detects the damage at recovery and quarantines the
// replica. Only the quorum peer rebuild is timed: move the damaged log
// aside, pull certified state from every peer, merge at the maximum
// version per item, re-seed a synthetic snapshot, rejoin. The metrics
// qualify the transfer (items and resolution records restored per
// rebuild) and prove the rebuilt replica rejoined writable.
func BenchmarkE18_PeerRebuild(b *testing.B) {
	ctx := context.Background()
	dms := []string{"dm0", "dm1", "dm2"}
	var items, resolved int
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		ffs := wal.NewFaultFS(int64(i + 1))
		dir := b.TempDir()
		net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: int64(i + 1)})
		store, err := cluster.Open(net, []cluster.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
			cluster.WithCallTimeout(25*time.Millisecond), cluster.WithSeed(int64(i+1)),
			cluster.WithDurability(dir),
			cluster.WithWALOptions(wal.WithFsync(false), wal.WithFS(ffs), wal.WithSegmentBytes(256)))
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= 16; j++ {
			if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, "x", j) }); err != nil {
				b.Fatal(err)
			}
		}
		if err := store.StopDM("dm0"); err != nil {
			b.Fatal(err)
		}
		if _, _, hit, cerr := ffs.CorruptSegmentFrame(filepath.Join(dir, "dm0")); cerr != nil || !hit {
			b.Fatalf("corrupt: hit=%v err=%v", hit, cerr)
		}
		if _, err := store.RestartDM("dm0"); err != nil {
			b.Fatal(err)
		}
		if qs := store.QuarantinedDMs(); len(qs) != 1 {
			b.Fatalf("quarantined %v, want exactly dm0", qs)
		}
		b.StartTimer()
		st, rerr := store.RebuildReplica(ctx, "dm0")
		b.StopTimer()
		if rerr != nil {
			b.Fatal(rerr)
		}
		items += st.Items
		resolved += st.Resolved
		if err := store.Run(ctx, func(tx *cluster.Txn) error { return tx.Write(ctx, "x", 99) }); err != nil {
			b.Fatal(err)
		}
		if qs := store.QuarantinedDMs(); len(qs) != 0 {
			b.Fatalf("still quarantined after rebuild: %v", qs)
		}
		store.Close()
		net.Close()
	}
	b.ReportMetric(float64(items)/float64(b.N), "items/rebuild")
	b.ReportMetric(float64(resolved)/float64(b.N), "resolved/rebuild")
}
