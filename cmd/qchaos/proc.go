package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

// runProcGate runs the process-level kill -9 recovery scenario: a real
// multi-process qcstore cluster over TCP, one replica SIGKILLed and
// restarted, recovery verified from the write-ahead log alone. Returns a
// process exit code.
func runProcGate(ctx context.Context, bin string, replicas int, verbose bool) int {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	start := time.Now()
	rep, err := chaos.RunProc(ctx, chaos.ProcConfig{Bin: bin, Replicas: replicas, Verbose: verbose})
	if err != nil {
		fmt.Fprintln(os.Stderr, "proc gate FAILED:", err)
		return 1
	}
	fmt.Printf("proc gate passed in %v: %d real processes, %s SIGKILLed and recovered (%d WAL records replayed, vn %d), then disk-corrupted and rebuilt from peers (%d item(s), serving %d), cluster read %d (vn %d), clean shutdown\n",
		time.Since(start).Round(time.Millisecond), rep.Replicas, rep.Killed,
		rep.Replayed, rep.RecoveredVN, rep.RebuiltItems, rep.PostRebuildValue,
		rep.FinalValue, rep.FinalVN)
	return 0
}
