// Command qchaos runs seeded deterministic chaos campaigns against the
// quorum-consensus cluster and verifies every committed history for
// cross-item serializability. A failing campaign prints its seed and exact
// replay instructions; with the same flags and seed, the campaign — down
// to the network's fate counters — reproduces bit-for-bit.
//
// With -overload it instead runs the three-arm overload experiment (E14):
// a cluster at capacity, the same protections under 2x load, and 2x load
// with every protection ablated — and gates on goodput: the protected arm
// must stay within 20% of capacity while the ablation collapses.
//
// With -shardscale it runs the shard scale-out experiment (E16): the same
// 95/5 zipfian workload against 1, 2, 4 and 8 consistent-hash shards of
// service-time-bounded replicas — and gates on scaling: the 4-shard arm
// must deliver at least 2.5x the 1-shard throughput without regressing
// read latency.
//
// Usage:
//
//	qchaos -seed 1 -campaigns 50
//	qchaos -seed 99 -duration 30s -faults crash,partition,dup
//	qchaos -seed 1 -first 17 -campaigns 1 -v   # replay campaign 17
//	qchaos -overload                           # goodput-under-overload gate
//	qchaos -shardscale                         # shard scale-out gate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/checker"
	"repro/internal/commit"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base seed; campaign i runs with CampaignSeed(seed, i)")
		campaigns  = flag.Int("campaigns", 10, "number of campaigns (ignored when -duration is set)")
		duration   = flag.Duration("duration", 0, "run campaigns until this much wall time has elapsed")
		first      = flag.Int("first", 0, "index of the first campaign (for replaying one campaign of a larger run)")
		faults     = flag.String("faults", "all", "comma-separated fault classes: crash,amnesia,partition,straggler,drop,dup,reorder,flap,clientcrash,overload,stalehint,migrate,coordcrash,diskfault")
		protocol   = flag.String("protocol", "2pc", "commit protocol: 2pc or paxos (paxos resolves coordinator crashes through acceptor recovery instead of lease-TTL presumption)")
		items      = flag.Int("items", 2, "replicated items per campaign")
		replicas   = flag.Int("replicas", 3, "replicas (DMs) per item")
		rounds     = flag.Int("rounds", 4, "workload rounds per campaign (faults advance between rounds)")
		txns       = flag.Int("txns", 8, "top-level transactions per round")
		live       = flag.Bool("live", false, "live mode: fan-out, hedging, concurrent workers (forfeits exact replay)")
		selfheal   = flag.String("selfheal", "auto", "lease reaper + failure detector: auto (on when flap/clientcrash faults run), on, off")
		overload   = flag.Bool("overload", false, "run the three-arm overload goodput experiment instead of campaigns")
		shardscale = flag.Bool("shardscale", false, "run the shard scale-out throughput experiment instead of campaigns")
		proc       = flag.Bool("proc", false, "run the process-level kill -9 recovery check against real qcstore processes over TCP")
		procBin    = flag.String("bin", "", "qcstore binary for -proc (empty builds it with `go build`)")
		verbose    = flag.Bool("v", false, "print one line per campaign")
	)
	flag.Parse()

	ctx := context.Background()
	if *proc {
		os.Exit(runProcGate(ctx, *procBin, *replicas, *verbose))
	}
	if *overload {
		os.Exit(runOverloadGate(ctx, *seed))
	}
	if *shardscale {
		os.Exit(runShardScaleGate(ctx, *seed))
	}

	fs, err := chaos.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	proto, err := commit.ParseProtocol(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var heal chaos.SelfHealMode
	switch *selfheal {
	case "auto":
		heal = chaos.SelfHealAuto
	case "on":
		heal = chaos.SelfHealOn
	case "off":
		heal = chaos.SelfHealOff
	default:
		fmt.Fprintf(os.Stderr, "unknown -selfheal mode %q (want auto, on or off)\n", *selfheal)
		os.Exit(2)
	}

	start := time.Now()
	var agg chaos.Result
	ran := 0
	for i := *first; ; i++ {
		if *duration > 0 {
			if time.Since(start) >= *duration {
				break
			}
		} else if i >= *first+*campaigns {
			break
		}
		cseed := chaos.CampaignSeed(*seed, i)
		cfg := chaos.Config{
			Seed:         cseed,
			Items:        *items,
			Replicas:     *replicas,
			Rounds:       *rounds,
			TxnsPerRound: *txns,
			Faults:       fs,
			Live:         *live,
			SelfHeal:     heal,
			Protocol:     proto,
		}
		res, err := chaos.Run(ctx, cfg)
		ran++
		if *verbose {
			fmt.Printf("campaign %d seed=%d committed=%d failed=%d tolerated=%d ops=%d finalround=%d sent=%d delivered=%d dropped=%d dup=%d reordered=%d recoveries=%d replayed=%d orphans=%d reaps=%d/%d queries=%d wedged=%d bursts=%d shed=%d expired=%d injected=%v\n",
				i, cseed, res.Committed, res.Failed, res.Tolerated, res.Ops, res.FinalRoundCommitted,
				res.Net.Sent, res.Net.Delivered, res.Net.Dropped,
				res.Net.Duplicated, res.Net.Reordered,
				res.Recoveries, res.ReplayedRecords,
				res.Orphans, res.ReapsAborted, res.ReapsCommitted,
				res.ResolutionQueries, res.Wedged,
				res.Bursts, res.Shed, res.ExpiredOnArrival, res.Injected)
			if res.Migrations > 0 || res.MigrationsAbandoned > 0 {
				fmt.Printf("campaign %d migrations: clean=%d abandoned=%d redirects=%d\n",
					i, res.Migrations, res.MigrationsAbandoned, res.WrongShardRedirects)
			}
			if res.StaleHints > 0 || res.HintReads > 0 {
				fmt.Printf("campaign %d hints: stale=%d reads=%d hits=%d misses=%d fences=%d fencemisses=%d\n",
					i, res.StaleHints, res.HintReads, res.HintHits, res.HintMisses,
					res.HintFences, res.HintFenceMisses)
			}
			if res.DiskFaults > 0 {
				fmt.Printf("campaign %d disk: faults=%d quarantines=%d rebuilds=%d rebuilt_items=%d\n",
					i, res.DiskFaults, res.DiskQuarantines, res.DiskRebuilds, res.DiskRebuiltItems)
			}
			if res.CoordCrashes > 0 || res.PaxosCommits > 0 {
				// Decisions learned from acceptor hard state vs decisions
				// presumed/served by the lease reaper — the E17 contrast.
				fmt.Printf("campaign %d commit(%s): paxoscommits=%d coordcrashes=%d crashresolved=%d commit / %d abort | via acceptors=%d commit / %d abort, via reaper=%d abort / %d commit\n",
					i, proto, res.PaxosCommits, res.CoordCrashes,
					res.CoordCrashCommitted, res.CoordCrashAborted,
					res.AcceptorResolvesCommitted, res.AcceptorResolvesAborted,
					res.ReapsAborted, res.ReapsCommitted)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign %d (seed %d) FAILED: %v\n", i, cseed, err)
			var v *checker.Violation
			if errors.As(err, &v) {
				fmt.Fprintln(os.Stderr, v.Diagnostic())
			}
			fmt.Fprintf(os.Stderr, "replay: go run ./cmd/qchaos -seed %d -first %d -campaigns 1 -faults %s -selfheal %s -protocol %s -items %d -replicas %d -rounds %d -txns %d -v\n",
				*seed, i, *faults, *selfheal, proto, *items, *replicas, *rounds, *txns)
			os.Exit(1)
		}
		agg.Committed += res.Committed
		agg.Failed += res.Failed
		agg.Tolerated += res.Tolerated
		agg.Ops += res.Ops
		agg.Recoveries += res.Recoveries
		agg.ReplayedRecords += res.ReplayedRecords
		agg.Orphans += res.Orphans
		agg.ReapsAborted += res.ReapsAborted
		agg.ReapsCommitted += res.ReapsCommitted
		agg.ResolutionQueries += res.ResolutionQueries
		agg.Wedged += res.Wedged
		agg.StaleHints += res.StaleHints
		agg.HintReads += res.HintReads
		agg.HintHits += res.HintHits
		agg.HintMisses += res.HintMisses
		agg.HintFences += res.HintFences
		agg.HintFenceMisses += res.HintFenceMisses
		agg.Bursts += res.Bursts
		agg.Shed += res.Shed
		agg.ExpiredOnArrival += res.ExpiredOnArrival
		agg.Migrations += res.Migrations
		agg.MigrationsAbandoned += res.MigrationsAbandoned
		agg.WrongShardRedirects += res.WrongShardRedirects
		agg.CoordCrashes += res.CoordCrashes
		agg.CoordCrashCommitted += res.CoordCrashCommitted
		agg.CoordCrashAborted += res.CoordCrashAborted
		agg.PaxosCommits += res.PaxosCommits
		agg.AcceptorResolvesCommitted += res.AcceptorResolvesCommitted
		agg.AcceptorResolvesAborted += res.AcceptorResolvesAborted
		agg.DiskFaults += res.DiskFaults
		agg.DiskQuarantines += res.DiskQuarantines
		agg.DiskRebuilds += res.DiskRebuilds
		agg.DiskRebuiltItems += res.DiskRebuiltItems
		agg.FinalRoundCommitted += res.FinalRoundCommitted
		agg.Net.Sent += res.Net.Sent
		agg.Net.Delivered += res.Net.Delivered
		agg.Net.Dropped += res.Net.Dropped
		agg.Net.Duplicated += res.Net.Duplicated
		agg.Net.Reordered += res.Net.Reordered
	}
	fmt.Printf("%d campaigns verified in %v: committed=%d failed=%d tolerated=%d ops=%d finalround=%d recoveries=%d replayed=%d | orphans=%d reaps=%d aborted / %d committed, queries=%d wedged=%d | bursts=%d shed=%d expired=%d | stalehints=%d hintreads=%d hinthits=%d fencemisses=%d | migrations=%d abandoned=%d redirects=%d | commit(%s) paxoscommits=%d coordcrashes=%d crashresolved=%d/%d, via acceptors=%d commit / %d abort | disk faults=%d quarantines=%d rebuilds=%d rebuilt_items=%d | net sent=%d delivered=%d dropped=%d dup=%d reordered=%d\n",
		ran, time.Since(start).Round(time.Millisecond),
		agg.Committed, agg.Failed, agg.Tolerated, agg.Ops, agg.FinalRoundCommitted,
		agg.Recoveries, agg.ReplayedRecords,
		agg.Orphans, agg.ReapsAborted, agg.ReapsCommitted, agg.ResolutionQueries, agg.Wedged,
		agg.Bursts, agg.Shed, agg.ExpiredOnArrival,
		agg.StaleHints, agg.HintReads, agg.HintHits, agg.HintFenceMisses,
		agg.Migrations, agg.MigrationsAbandoned, agg.WrongShardRedirects,
		proto, agg.PaxosCommits, agg.CoordCrashes, agg.CoordCrashCommitted, agg.CoordCrashAborted,
		agg.AcceptorResolvesCommitted, agg.AcceptorResolvesAborted,
		agg.DiskFaults, agg.DiskQuarantines, agg.DiskRebuilds, agg.DiskRebuiltItems,
		agg.Net.Sent, agg.Net.Delivered, agg.Net.Dropped, agg.Net.Duplicated, agg.Net.Reordered)
}

// runOverloadGate runs the three-arm overload experiment and applies the
// E14 gate. Goodput is a wall-clock measurement, so a failed gate gets one
// retry on a fresh seed before it is declared real.
func runOverloadGate(ctx context.Context, seed int64) int {
	for attempt := 0; ; attempt++ {
		res, err := chaos.RunOverload(ctx, chaos.OverloadConfig{Seed: seed + int64(attempt)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "overload experiment: %v\n", err)
			return 1
		}
		for _, a := range []chaos.OverloadArm{res.Capacity, res.Overload, res.Ablation} {
			fmt.Printf("arm=%-8s workers=%2d offered=%d committed=%d overloaded=%d expired=%d shed=%d expired_on_arrival=%d served_expired=%d p50=%v p99=%v goodput=%.0f txn/s\n",
				a.Name, a.Workers, a.Offered, a.Committed, a.Overloaded, a.Expired,
				a.Shed, a.ExpiredOnArrival, a.ServedExpired, a.P50, a.P99, a.Goodput)
		}
		gerr := res.Check()
		if gerr == nil {
			fmt.Printf("overload gate PASS: 2x-load goodput %.0f txn/s >= 80%% of capacity %.0f txn/s; ablation collapsed to %.0f txn/s\n",
				res.Overload.Goodput, res.Capacity.Goodput, res.Ablation.Goodput)
			return 0
		}
		if attempt == 0 {
			fmt.Fprintf(os.Stderr, "overload gate failed (%v); retrying once with seed %d\n", gerr, seed+1)
			continue
		}
		fmt.Fprintf(os.Stderr, "overload gate FAILED: %v\n", gerr)
		return 1
	}
}

// runShardScaleGate runs the shard scale-out experiment and applies the
// E16 gate. Throughput is a wall-clock measurement, so a failed gate gets
// one retry on a fresh seed before it is declared real.
func runShardScaleGate(ctx context.Context, seed int64) int {
	for attempt := 0; ; attempt++ {
		res, err := chaos.RunShardScale(ctx, chaos.ShardScaleConfig{Seed: seed + int64(attempt)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardscale experiment: %v\n", err)
			return 1
		}
		for _, a := range res.Arms {
			fmt.Printf("arm=%d-shard workers=%d committed=%d failed=%d tput=%.0f txn/s p50=%v p99=%v read_p50=%v read_p99=%v\n",
				a.Shards, a.Workers, a.Committed, a.Failed, a.Throughput, a.P50, a.P99, a.ReadP50, a.ReadP99)
		}
		gerr := res.Check()
		if gerr == nil {
			one, _ := res.Arm(1)
			four, _ := res.Arm(4)
			fmt.Printf("shardscale gate PASS: 4-shard %.0f txn/s = %.1fx 1-shard %.0f txn/s; read p99 %v -> %v\n",
				four.Throughput, four.Throughput/one.Throughput, one.Throughput, one.ReadP99, four.ReadP99)
			return 0
		}
		if attempt == 0 {
			fmt.Fprintf(os.Stderr, "shardscale gate failed (%v); retrying once with seed %d\n", gerr, seed+1)
			continue
		}
		fmt.Fprintf(os.Stderr, "shardscale gate FAILED: %v\n", gerr)
		return 1
	}
}
