// Command qchaos runs seeded deterministic chaos campaigns against the
// quorum-consensus cluster and verifies every committed history for
// cross-item serializability. A failing campaign prints its seed and exact
// replay instructions; with the same flags and seed, the campaign — down
// to the network's fate counters — reproduces bit-for-bit.
//
// Usage:
//
//	qchaos -seed 1 -campaigns 50
//	qchaos -seed 99 -duration 30s -faults crash,partition,dup
//	qchaos -seed 1 -first 17 -campaigns 1 -v   # replay campaign 17
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/checker"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base seed; campaign i runs with CampaignSeed(seed, i)")
		campaigns = flag.Int("campaigns", 10, "number of campaigns (ignored when -duration is set)")
		duration  = flag.Duration("duration", 0, "run campaigns until this much wall time has elapsed")
		first     = flag.Int("first", 0, "index of the first campaign (for replaying one campaign of a larger run)")
		faults    = flag.String("faults", "all", "comma-separated fault classes: crash,amnesia,partition,straggler,drop,dup,reorder,flap,clientcrash")
		items     = flag.Int("items", 2, "replicated items per campaign")
		replicas  = flag.Int("replicas", 3, "replicas (DMs) per item")
		rounds    = flag.Int("rounds", 4, "workload rounds per campaign (faults advance between rounds)")
		txns      = flag.Int("txns", 8, "top-level transactions per round")
		live      = flag.Bool("live", false, "live mode: fan-out, hedging, concurrent workers (forfeits exact replay)")
		selfheal  = flag.String("selfheal", "auto", "lease reaper + failure detector: auto (on when flap/clientcrash faults run), on, off")
		verbose   = flag.Bool("v", false, "print one line per campaign")
	)
	flag.Parse()

	fs, err := chaos.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var heal chaos.SelfHealMode
	switch *selfheal {
	case "auto":
		heal = chaos.SelfHealAuto
	case "on":
		heal = chaos.SelfHealOn
	case "off":
		heal = chaos.SelfHealOff
	default:
		fmt.Fprintf(os.Stderr, "unknown -selfheal mode %q (want auto, on or off)\n", *selfheal)
		os.Exit(2)
	}

	ctx := context.Background()
	start := time.Now()
	var agg chaos.Result
	ran := 0
	for i := *first; ; i++ {
		if *duration > 0 {
			if time.Since(start) >= *duration {
				break
			}
		} else if i >= *first+*campaigns {
			break
		}
		cseed := chaos.CampaignSeed(*seed, i)
		cfg := chaos.Config{
			Seed:         cseed,
			Items:        *items,
			Replicas:     *replicas,
			Rounds:       *rounds,
			TxnsPerRound: *txns,
			Faults:       fs,
			Live:         *live,
			SelfHeal:     heal,
		}
		res, err := chaos.Run(ctx, cfg)
		ran++
		if *verbose {
			fmt.Printf("campaign %d seed=%d committed=%d failed=%d tolerated=%d ops=%d finalround=%d sent=%d delivered=%d dropped=%d dup=%d reordered=%d recoveries=%d replayed=%d orphans=%d reaps=%d/%d queries=%d wedged=%d injected=%v\n",
				i, cseed, res.Committed, res.Failed, res.Tolerated, res.Ops, res.FinalRoundCommitted,
				res.Net.Sent, res.Net.Delivered, res.Net.Dropped,
				res.Net.Duplicated, res.Net.Reordered,
				res.Recoveries, res.ReplayedRecords,
				res.Orphans, res.ReapsAborted, res.ReapsCommitted,
				res.ResolutionQueries, res.Wedged, res.Injected)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign %d (seed %d) FAILED: %v\n", i, cseed, err)
			var v *checker.Violation
			if errors.As(err, &v) {
				fmt.Fprintln(os.Stderr, v.Diagnostic())
			}
			fmt.Fprintf(os.Stderr, "replay: go run ./cmd/qchaos -seed %d -first %d -campaigns 1 -faults %s -selfheal %s -items %d -replicas %d -rounds %d -txns %d -v\n",
				*seed, i, *faults, *selfheal, *items, *replicas, *rounds, *txns)
			os.Exit(1)
		}
		agg.Committed += res.Committed
		agg.Failed += res.Failed
		agg.Tolerated += res.Tolerated
		agg.Ops += res.Ops
		agg.Recoveries += res.Recoveries
		agg.ReplayedRecords += res.ReplayedRecords
		agg.Orphans += res.Orphans
		agg.ReapsAborted += res.ReapsAborted
		agg.ReapsCommitted += res.ReapsCommitted
		agg.ResolutionQueries += res.ResolutionQueries
		agg.Wedged += res.Wedged
		agg.FinalRoundCommitted += res.FinalRoundCommitted
		agg.Net.Sent += res.Net.Sent
		agg.Net.Delivered += res.Net.Delivered
		agg.Net.Dropped += res.Net.Dropped
		agg.Net.Duplicated += res.Net.Duplicated
		agg.Net.Reordered += res.Net.Reordered
	}
	fmt.Printf("%d campaigns verified in %v: committed=%d failed=%d tolerated=%d ops=%d finalround=%d recoveries=%d replayed=%d | orphans=%d reaps=%d aborted / %d committed, queries=%d wedged=%d | net sent=%d delivered=%d dropped=%d dup=%d reordered=%d\n",
		ran, time.Since(start).Round(time.Millisecond),
		agg.Committed, agg.Failed, agg.Tolerated, agg.Ops, agg.FinalRoundCommitted,
		agg.Recoveries, agg.ReplayedRecords,
		agg.Orphans, agg.ReapsAborted, agg.ReapsCommitted, agg.ResolutionQueries, agg.Wedged,
		agg.Net.Sent, agg.Net.Delivered, agg.Net.Dropped, agg.Net.Duplicated, agg.Net.Reordered)
}
