// Command qcsim drives randomized executions of the paper's automaton
// systems and runs the mechanized correctness checks on them.
//
// Usage:
//
//	qcsim -mode serial    -seed 7           # system B + Lemma 8 + Theorem 10
//	qcsim -mode concurrent -seed 7          # system C + Theorem 11
//	qcsim -mode reconfig   -seed 7          # Section 4 system + invariants
//	qcsim -mode exhaustive -budget 50000    # enumerate ALL schedules of a tiny scenario
//	qcsim -mode serial -scenario paper -print  # print the whole schedule
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/reconfig"
)

func main() {
	var (
		mode     = flag.String("mode", "serial", "serial | concurrent | reconfig | exhaustive")
		budget   = flag.Int("budget", 50000, "schedule budget for -mode exhaustive")
		scenario = flag.String("scenario", "random", "random | paper")
		seed     = flag.Int64("seed", 1, "driver seed (also shapes random scenarios)")
		aborts   = flag.Float64("aborts", 0.1, "relative weight of scheduler ABORT choices")
		print    = flag.Bool("print", false, "print the full schedule")
	)
	flag.Parse()
	if *mode == "exhaustive" {
		if err := runExhaustive(*budget); err != nil {
			fmt.Fprintln(os.Stderr, "qcsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*mode, *scenario, *seed, *aborts, *print); err != nil {
		fmt.Fprintln(os.Stderr, "qcsim:", err)
		os.Exit(1)
	}
}

func spec(scenario string, seed int64) core.Spec {
	if scenario == "paper" {
		return core.PaperSpec()
	}
	params := core.DefaultRandParams()
	params.RetryAccesses = true
	return core.RandomSpec(rand.New(rand.NewSource(seed)), params)
}

func bias(aborts float64) func(ioa.Op) float64 {
	return func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return aborts
		}
		return 1
	}
}

func run(mode, scenario string, seed int64, aborts float64, printSched bool) error {
	switch mode {
	case "serial":
		b, err := core.BuildB(spec(scenario, seed))
		if err != nil {
			return err
		}
		d := ioa.NewDriver(b.Sys, seed)
		d.Bias = bias(aborts)
		d.OnStep = b.Lemma8Checker()
		sched, quiescent, err := d.Run(1_000_000)
		if err != nil {
			return err
		}
		report(sched, quiescent, printSched)
		fmt.Println("lemma 8 invariant: held after every step")
		if err := b.CheckTheorem10(sched); err != nil {
			return err
		}
		fmt.Println("theorem 10 simulation (B -> A): OK")
	case "concurrent":
		s := spec(scenario, seed)
		s.SequentialTMs = true
		c, err := cc.BuildC(s)
		if err != nil {
			return err
		}
		d := ioa.NewDriver(c.Sys, seed)
		d.Bias = bias(aborts)
		sched, quiescent, err := d.Run(1_000_000)
		if err != nil {
			return err
		}
		report(sched, quiescent, printSched)
		if !cc.Completed(c, sched) {
			fmt.Println("run did not complete (lock waits aborted); rerun with another seed for the full check")
			return nil
		}
		if err := cc.CheckTheorem11(c, sched); err != nil {
			return err
		}
		fmt.Println("theorem 11 (serialize, then theorem 10): OK")
	case "reconfig":
		cs := spec(scenario, seed)
		rs := reconfig.Spec{Core: cs, NewConfigs: map[string]([]quorum.Config){}, ReconfigsPerUser: 1}
		for _, it := range cs.Items {
			rs.NewConfigs[it.Name] = []quorum.Config{
				quorum.ReadOneWriteAll(it.DMs), quorum.Majority(it.DMs),
			}
		}
		b, err := reconfig.BuildB(rs)
		if err != nil {
			return err
		}
		d := ioa.NewDriver(b.Sys, seed)
		d.Bias = bias(aborts)
		d.OnStep = b.Checker()
		sched, quiescent, err := d.Run(1_000_000)
		if err != nil {
			return err
		}
		report(sched, quiescent, printSched)
		fmt.Println("reconfiguration invariant: held after every step")
		if err := b.CheckSimulation(sched); err != nil {
			return err
		}
		fmt.Println("simulation to non-replicated system A: OK")
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// runExhaustive enumerates every schedule (up to budget) of a two-replica
// scenario, checking the Lemma 8 invariant at each and the Theorem 10
// simulation at every quiescent one.
func runExhaustive(budget int) error {
	dms := []string{"d1", "d2"}
	tiny := core.Spec{
		Items: []core.ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.ReadOneWriteAll(dms)}},
		Top:   []core.TxnSpec{core.Sub("u", core.WriteItem("w", "x", 1), core.ReadItem("r", "x"))},
	}
	tiny.Top[0].Sequential = true
	var cur *core.SystemB
	quiescent := 0
	ex := &ioa.Explorer{
		Build: func() (*ioa.System, error) {
			b, err := core.BuildB(tiny)
			if err != nil {
				return nil, err
			}
			cur = b
			return b.Sys, nil
		},
		Budget: budget,
	}
	ex.Visit = func(sys *ioa.System, sched ioa.Schedule) error {
		for _, it := range tiny.Items {
			if err := cur.CheckLemma8(it.Name, sched); err != nil {
				return err
			}
		}
		if len(sys.Enabled()) == 0 {
			quiescent++
			return cur.CheckTheorem10(sched)
		}
		return nil
	}
	err := ex.Run()
	covered := err == nil
	if err != nil && !errors.Is(err, ioa.ErrExploreBudget) {
		return err
	}
	fmt.Printf("explored %d schedules (%d quiescent); full space covered: %v\n", ex.Visited(), quiescent, covered)
	fmt.Println("lemma 8 held at every state; theorem 10 held at every quiescent schedule")
	return nil
}

func report(sched ioa.Schedule, quiescent, printSched bool) {
	fmt.Printf("schedule: %d operations, quiescent=%v\n", len(sched), quiescent)
	if printSched {
		fmt.Println(sched)
	}
}
