// Command treeviz renders the paper's Figure 1 (transaction tree of the
// replicated serial system B) and Figure 2 (the tree of the corresponding
// non-replicated serial system A) from the same scenario description.
//
// Usage:
//
//	treeviz            # both figures
//	treeviz -system B  # Figure 1 only
//	treeviz -system A  # Figure 2 only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	system := flag.String("system", "both", "which system tree to render: B, A, or both")
	flag.Parse()
	if err := run(*system); err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
}

func run(system string) error {
	spec := core.PaperSpec()
	if system == "B" || system == "both" {
		b, err := core.BuildB(spec)
		if err != nil {
			return err
		}
		fmt.Println("Figure 1 — replicated serial system B:")
		fmt.Println(b.Tree.Render())
	}
	if system == "A" || system == "both" {
		a, err := core.BuildA(spec)
		if err != nil {
			return err
		}
		fmt.Println("Figure 2 — non-replicated serial system A:")
		fmt.Println(a.Tree.Render())
	}
	return nil
}
