// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON snapshot. It writes BENCH_<n>.json in the current
// directory, picking the smallest unused n (override with -o), so
// successive runs accumulate side by side for comparison:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson
//
// Each benchmark becomes one object with its name (CPU suffix stripped),
// iteration count, ns/op, B/op and allocs/op when -benchmem was on, and
// any custom b.ReportMetric units under "extra".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type row struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default: the first unused BENCH_<n>.json)")
	flag.Parse()

	rows, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	path := *out
	if path == "" {
		for n := 1; ; n++ {
			path = fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				break
			}
		}
	}
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(rows), path)
}

// parse extracts benchmark result lines. The text format is
//
//	BenchmarkName[-P]  <iters>  <value> <unit>  [<value> <unit>]...
//
// where -P is the GOMAXPROCS suffix (absent on single-proc runs).
func parse(r *os.File) ([]row, error) {
	var rows []row
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		rw := row{Name: name, Iterations: iters}
		seen := false
		for i := 2; i+1 < len(f); i += 2 {
			val, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				rw.NsPerOp = val
				seen = true
			case "B/op":
				v := int64(val)
				rw.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				rw.AllocsPerOp = &v
			default:
				if rw.Extra == nil {
					rw.Extra = map[string]float64{}
				}
				rw.Extra[unit] = val
			}
		}
		if seen {
			rows = append(rows, rw)
		}
	}
	return rows, sc.Err()
}
