// Command qcstore demonstrates the cluster-layer store end to end on a
// simulated network: nested transactions with tolerated subtransaction
// aborts, replica crashes survived through quorums, and an online
// reconfiguration that shrinks the quorums to the live replicas. With
// -dir, every replica keeps a write-ahead log there, and the demo closes
// the whole store and reopens it from the logs alone before reading the
// final state back.
//
// The serve and client subcommands (see proc.go) run the same store as
// real processes over TCP; pass -shards to both to run a sharded keyspace
// on replica groups, and `client -inspect placement` to print the ring's
// item placement.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// Subcommand dispatch: `qcstore serve` and `qcstore client` run the
	// store as real processes over TCP; bare `qcstore` keeps the original
	// single-process simulated demo.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			os.Exit(serveMain(os.Args[2:]))
		case "client":
			os.Exit(clientMain(os.Args[2:]))
		}
	}
	var (
		n       = flag.Int("replicas", 5, "number of DMs")
		seed    = flag.Int64("seed", 1, "simulation seed")
		dir     = flag.String("dir", "", "durable mode: keep per-replica write-ahead logs under this directory, then close, reopen from them, and read the state back")
		showLog = flag.Bool("trace", false, "print the event timeline at the end")
	)
	flag.Parse()
	if err := run(*n, *seed, *dir, *showLog); err != nil {
		fmt.Fprintln(os.Stderr, "qcstore:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, dir string, showLog bool) error {
	dms := make([]string, n)
	for i := range dms {
		dms[i] = fmt.Sprintf("dm%d", i)
	}
	net := sim.NewNetwork(sim.Config{MinLatency: 200 * time.Microsecond, MaxLatency: 2 * time.Millisecond, Seed: seed})
	defer net.Close()
	log := trace.NewLog()
	items := []cluster.ItemSpec{
		{Name: "balance/alice", Initial: 100, DMs: dms, Config: quorum.Majority(dms)},
	}
	opts := []cluster.Option{cluster.WithSeed(seed), cluster.WithTrace(log)}
	if dir != "" {
		opts = append(opts, cluster.WithDurability(dir))
	}
	store, err := cluster.Open(net, items, opts...)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			store.Close()
		}
	}()
	ctx := context.Background()

	fmt.Printf("cluster: %d replicas, majority quorums\n", n)

	// A nested transaction whose subtransaction fails; the parent
	// tolerates the abort — the paper's motivating capability.
	errRisky := errors.New("risky step failed")
	err = store.Run(ctx, func(tx *cluster.Txn) error {
		if err := tx.Write(ctx, "balance/alice", 150); err != nil {
			return err
		}
		if err := tx.Sub(ctx, func(sub *cluster.Txn) error {
			if err := sub.Write(ctx, "balance/alice", -1); err != nil {
				return err
			}
			return errRisky // abort the subtransaction only
		}); !errors.Is(err, errRisky) {
			return err
		}
		v, err := tx.Read(ctx, "balance/alice")
		if err != nil {
			return err
		}
		fmt.Printf("inside txn after tolerated sub-abort: balance = %v\n", v)
		return nil
	})
	if err != nil {
		return err
	}

	// Crash a minority; quorum operations keep working.
	net.Crash(dms[n-1])
	net.Crash(dms[n-2])
	fmt.Printf("crashed %s and %s\n", dms[n-1], dms[n-2])
	if err := store.Run(ctx, func(tx *cluster.Txn) error {
		v, err := tx.Read(ctx, "balance/alice")
		if err != nil {
			return err
		}
		fmt.Printf("read with 2 replicas down: balance = %v\n", v)
		return tx.Write(ctx, "balance/alice", 175)
	}); err != nil {
		return err
	}

	// Reconfigure to the live replicas so later operations stop paying
	// timeouts on the dead ones.
	live := dms[:n-2]
	if err := store.Reconfigure(ctx, "balance/alice", quorum.Majority(live)); err != nil {
		return err
	}
	fmt.Printf("reconfigured to majority over %v\n", live)
	if err := store.Run(ctx, func(tx *cluster.Txn) error {
		v, err := tx.Read(ctx, "balance/alice")
		if err != nil {
			return err
		}
		fmt.Printf("read after reconfiguration: balance = %v\n", v)
		return nil
	}); err != nil {
		return err
	}
	if dir != "" {
		// Durability proof: restart the crashed replicas, tear the whole
		// store down (memory gone), and reopen it from the write-ahead logs
		// alone. The recovered cluster must serve the last committed balance.
		net.Restart(dms[n-1])
		net.Restart(dms[n-2])
		store.Close()
		closed = true
		fmt.Printf("closed store; reopening from write-ahead logs under %s\n", dir)
		reopened, err := cluster.Open(net, items, opts...)
		if err != nil {
			return err
		}
		store = reopened
		closed = false
		var got any
		if err := store.Run(ctx, func(tx *cluster.Txn) error {
			v, err := tx.Read(ctx, "balance/alice")
			got = v
			return err
		}); err != nil {
			return err
		}
		fmt.Printf("recovered: balance = %v (%d replica recoveries, %d log records replayed)\n",
			got, store.Stats.Recoveries.Value(), store.Stats.ReplayedRecords.Value())
		if got != 175 {
			return fmt.Errorf("recovered balance = %v, want 175", got)
		}
	}

	if showLog {
		fmt.Println("\nevent timeline:")
		fmt.Print(log.Render())
	}
	stats := net.Stats()
	fmt.Printf("network: %d messages sent, %d delivered, %d dropped\n", stats.Sent, stats.Delivered, stats.Dropped)
	fmt.Printf("store:   %d commits, %d aborts, %d busy-retries, %d hedges, %d extra-lock releases\n",
		store.Stats.Commits.Value(), store.Stats.Aborts.Value(), store.Stats.BusyRetries.Value(),
		store.Stats.Hedges.Value(), store.Stats.ExtraLockReleases.Value())
	return nil
}
