package main

// The serve and client subcommands run the store as a real multi-process
// deployment: N `qcstore serve` processes each host one DM replica behind
// the TCP transport, and `qcstore client` attaches to them over the same
// peer map to run transactions. Every process derives the same item layout
// from the sorted peer names, so no configuration file is needed — the
// peer map IS the cluster description.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/quorum"
	"repro/internal/transport/tcp"
)

// theItem is the single replicated item the multi-process demo serves.
const theItem = "balance/alice"

// parsePeers parses "dm0=127.0.0.1:7100,dm1=127.0.0.1:7101,..." into a
// name→address map.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, errors.New("missing -peers (e.g. -peers dm0=127.0.0.1:7100,dm1=127.0.0.1:7101)")
	}
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=host:port)", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("duplicate peer %q", name)
		}
		peers[name] = addr
	}
	return peers, nil
}

// itemsFor derives the shared item layout from the peer map: one item,
// replicated at every peer, majority quorums. Every process computes the
// same layout from the same -peers flag.
func itemsFor(peers map[string]string) []cluster.ItemSpec {
	dms := make([]string, 0, len(peers))
	for name := range peers {
		dms = append(dms, name)
	}
	sort.Strings(dms)
	return []cluster.ItemSpec{
		{Name: theItem, Initial: 100, DMs: dms, Config: quorum.Majority(dms)},
	}
}

// serveMain hosts one DM replica until SIGINT/SIGTERM, then closes it in
// order (endpoint first, write-ahead log last) and exits 0. SIGKILL is the
// amnesia crash the WAL exists for: restart with the same flags and the
// replica recovers from the log.
func serveMain(args []string) int {
	fs := flag.NewFlagSet("qcstore serve", flag.ExitOnError)
	var (
		id       = fs.String("id", "", "this replica's DM name (must appear in -peers)")
		peersArg = fs.String("peers", "", "comma-separated name=host:port for every replica")
		dir      = fs.String("dir", "", "keep a write-ahead log under this directory (dir/<id>); empty serves volatile")
		lease    = fs.Duration("lease", 0, "lock-lease TTL for orphan reaping; 0 disables leases")
	)
	fs.Parse(args)
	peers, err := parsePeers(*peersArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore serve:", err)
		return 2
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "qcstore serve: missing -id")
		return 2
	}
	if _, ok := peers[*id]; !ok {
		fmt.Fprintf(os.Stderr, "qcstore serve: -id %s not in -peers\n", *id)
		return 2
	}
	tr := tcp.New(tcp.WithPeers(peers))
	defer tr.Close()
	opts := []cluster.Option{}
	if *dir != "" {
		opts = append(opts, cluster.WithDurability(*dir))
	}
	if *lease > 0 {
		opts = append(opts, cluster.WithLeaseTTL(*lease))
	}
	host, err := cluster.ServeDM(tr, *id, itemsFor(peers), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore serve:", err)
		return 1
	}
	rec := host.Recovery()
	fmt.Printf("qcstore: %s serving at %s (snapshot=%v replayed=%d)\n",
		*id, tr.Addr(*id), rec.FromSnapshot, rec.Replayed)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	host.Close()
	fmt.Printf("qcstore: %s shut down cleanly\n", *id)
	return 0
}

// clientMain attaches to a running multi-process cluster and performs one
// operation: -get, -set N, -inspect <dm>, or (default) the nested-
// transaction demo.
func clientMain(args []string) int {
	fs := flag.NewFlagSet("qcstore client", flag.ExitOnError)
	var (
		peersArg = fs.String("peers", "", "comma-separated name=host:port for every replica")
		get      = fs.Bool("get", false, "read the balance and print it")
		set      = fs.String("set", "", "write this integer balance in a transaction")
		inspect  = fs.String("inspect", "", "print one replica's committed state (bypasses quorums)")
		timeout  = fs.Duration("timeout", 5*time.Second, "overall operation deadline")
	)
	fs.Parse(args)
	peers, err := parsePeers(*peersArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore client:", err)
		return 2
	}
	tr := tcp.New(tcp.WithPeers(peers))
	defer tr.Close()
	// The PID tag keeps this process's transaction IDs disjoint from every
	// other client process of the same cluster (see WithClientTag).
	store, err := cluster.OpenClient(tr, itemsFor(peers),
		cluster.WithCallTimeout(time.Second),
		cluster.WithClientTag(fmt.Sprintf("p%d-", os.Getpid())))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore client:", err)
		return 1
	}
	defer store.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := clientOp(ctx, store, *get, *set, *inspect); err != nil {
		fmt.Fprintln(os.Stderr, "qcstore client:", err)
		return 1
	}
	return 0
}

func clientOp(ctx context.Context, store *cluster.Store, get bool, set, inspect string) error {
	switch {
	case inspect != "":
		resp, err := store.Inspect(ctx, inspect, theItem)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s = %v (vn %d, gen %d, %d locks, %d intents)\n",
			inspect, theItem, resp.Val, resp.VN, resp.Gen, resp.Locks, resp.Intents)
		return nil
	case get:
		return store.Run(ctx, func(tx *cluster.Txn) error {
			v, vn, err := tx.ReadVersioned(ctx, theItem)
			if err != nil {
				return err
			}
			fmt.Printf("%s = %v (vn %d)\n", theItem, v, vn)
			return nil
		})
	case set != "":
		var n int
		if _, err := fmt.Sscanf(set, "%d", &n); err != nil {
			return fmt.Errorf("bad -set value %q: %w", set, err)
		}
		if err := store.Run(ctx, func(tx *cluster.Txn) error {
			return tx.Write(ctx, theItem, n)
		}); err != nil {
			return err
		}
		fmt.Printf("%s := %d committed\n", theItem, n)
		return nil
	default:
		return clientDemo(ctx, store)
	}
}

// clientDemo is the nested-transaction walkthrough of the sim demo, run
// against real processes: a subtransaction aborts, the parent tolerates it
// and commits.
func clientDemo(ctx context.Context, store *cluster.Store) error {
	errRisky := errors.New("risky step failed")
	err := store.Run(ctx, func(tx *cluster.Txn) error {
		if err := tx.Write(ctx, theItem, 150); err != nil {
			return err
		}
		if err := tx.Sub(ctx, func(sub *cluster.Txn) error {
			if err := sub.Write(ctx, theItem, -1); err != nil {
				return err
			}
			return errRisky
		}); !errors.Is(err, errRisky) {
			return err
		}
		v, err := tx.Read(ctx, theItem)
		if err != nil {
			return err
		}
		fmt.Printf("inside txn after tolerated sub-abort: %s = %v\n", theItem, v)
		return nil
	})
	if err != nil {
		return err
	}
	return store.Run(ctx, func(tx *cluster.Txn) error {
		v, vn, err := tx.ReadVersioned(ctx, theItem)
		if err != nil {
			return err
		}
		fmt.Printf("committed: %s = %v (vn %d)\n", theItem, v, vn)
		return nil
	})
}
