package main

// The serve and client subcommands run the store as a real multi-process
// deployment: N `qcstore serve` processes each host one DM replica behind
// the TCP transport, and `qcstore client` attaches to them over the same
// peer map to run transactions. Every process derives the same item layout
// from the sorted peer names, so no configuration file is needed — the
// peer map IS the cluster description.
//
// With -shards (e.g. -shards g0=dm0:dm1:dm2,g1=dm3:dm4:dm5) the layout is
// sharded instead: -keys data items placed on the replica groups by the
// deterministic consistent-hash ring, every process deriving the same ring
// from the same -shards/-keys/-ringseed flags. Clients route per key and
// chase WrongShard redirects; `client -inspect placement` prints the ring
// epoch and each item's group with per-replica version numbers.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/quorum"
	"repro/internal/shard"
	"repro/internal/transport/tcp"
)

// theItem is the single replicated item the multi-process demo serves.
const theItem = "balance/alice"

// parsePeers parses "dm0=127.0.0.1:7100,dm1=127.0.0.1:7101,..." into a
// name→address map.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, errors.New("missing -peers (e.g. -peers dm0=127.0.0.1:7100,dm1=127.0.0.1:7101)")
	}
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=host:port)", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("duplicate peer %q", name)
		}
		peers[name] = addr
	}
	return peers, nil
}

// itemsFor derives the shared item layout from the peer map: one item,
// replicated at every peer, majority quorums. Every process computes the
// same layout from the same -peers flag.
func itemsFor(peers map[string]string) []cluster.ItemSpec {
	dms := make([]string, 0, len(peers))
	for name := range peers {
		dms = append(dms, name)
	}
	sort.Strings(dms)
	return []cluster.ItemSpec{
		{Name: theItem, Initial: 100, DMs: dms, Config: quorum.Majority(dms)},
	}
}

// shardLayout derives the sharded deployment's ring and item layout from
// the -shards/-keys/-ringseed flags. Every process — servers and clients —
// computes the same placement from the same flags, so the flags are the
// whole cluster description, just like -peers in the unsharded layout.
func shardLayout(spec string, nkeys int, seed int64, peers map[string]string) (*shard.Ring, []cluster.ItemSpec, error) {
	groups, err := shard.ParseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	ring, err := shard.New(seed, 64, groups)
	if err != nil {
		return nil, nil, err
	}
	for _, dm := range ring.DMs() {
		if _, ok := peers[dm]; !ok {
			return nil, nil, fmt.Errorf("shard DM %q missing from -peers", dm)
		}
	}
	if nkeys <= 0 {
		return nil, nil, fmt.Errorf("bad -keys %d (want > 0)", nkeys)
	}
	items, err := cluster.ShardItems(ring, shard.Keys("k", nkeys), 0)
	if err != nil {
		return nil, nil, err
	}
	return ring, items, nil
}

// serveMain hosts one DM replica until SIGINT/SIGTERM, then closes it in
// order (endpoint first, write-ahead log last) and exits 0. SIGKILL is the
// amnesia crash the WAL exists for: restart with the same flags and the
// replica recovers from the log.
func serveMain(args []string) int {
	fs := flag.NewFlagSet("qcstore serve", flag.ExitOnError)
	var (
		id       = fs.String("id", "", "this replica's DM name (must appear in -peers)")
		peersArg = fs.String("peers", "", "comma-separated name=host:port for every replica")
		dir      = fs.String("dir", "", "keep a write-ahead log under this directory (dir/<id>); empty serves volatile")
		lease    = fs.Duration("lease", 0, "lock-lease TTL for orphan reaping; 0 disables leases")
		shards   = fs.String("shards", "", "shard the keyspace onto replica groups, e.g. g0=dm0:dm1:dm2,g1=dm3:dm4:dm5")
		nkeys    = fs.Int("keys", 16, "sharded keyspace size (k0..kN-1); only with -shards")
		ringseed = fs.Int64("ringseed", 1, "consistent-hash ring seed; must match on every process")
	)
	fs.Parse(args)
	peers, err := parsePeers(*peersArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore serve:", err)
		return 2
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "qcstore serve: missing -id")
		return 2
	}
	if _, ok := peers[*id]; !ok {
		fmt.Fprintf(os.Stderr, "qcstore serve: -id %s not in -peers\n", *id)
		return 2
	}
	tr := tcp.New(tcp.WithPeers(peers))
	defer tr.Close()
	opts := []cluster.Option{}
	if *dir != "" {
		opts = append(opts, cluster.WithDurability(*dir))
	}
	if *lease > 0 {
		opts = append(opts, cluster.WithLeaseTTL(*lease))
	}
	items := itemsFor(peers)
	if *shards != "" {
		ring, sharded, err := shardLayout(*shards, *nkeys, *ringseed, peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qcstore serve:", err)
			return 2
		}
		items = sharded
		opts = append(opts, cluster.WithRing(ring))
	}
	host, err := cluster.ServeDM(tr, *id, items, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore serve:", err)
		return 1
	}
	rec := host.Recovery()
	switch {
	case host.Rebuilt != nil:
		// The log was corrupt beyond a torn tail and the automatic peer
		// rebuild restored the replica's state from the live peers.
		fmt.Printf("qcstore: %s serving at %s (rebuilt items=%d resolved=%d acceptors=%d from %d peers)\n",
			*id, tr.Addr(*id), host.Rebuilt.Items, host.Rebuilt.Resolved, host.Rebuilt.Acceptors, host.Rebuilt.Peers)
	case host.Quarantined != nil:
		// Corrupt log AND the rebuild failed (peers unreachable): the
		// replica serves only the typed refusal until restarted against
		// reachable peers.
		fmt.Printf("qcstore: %s serving at %s (QUARANTINED: %v)\n", *id, tr.Addr(*id), host.Quarantined)
	default:
		fmt.Printf("qcstore: %s serving at %s (snapshot=%v replayed=%d)\n",
			*id, tr.Addr(*id), rec.FromSnapshot, rec.Replayed)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	host.Close()
	fmt.Printf("qcstore: %s shut down cleanly\n", *id)
	return 0
}

// clientMain attaches to a running multi-process cluster and performs one
// operation: -get, -set N, -inspect <dm>, or (default) the nested-
// transaction demo.
func clientMain(args []string) int {
	fs := flag.NewFlagSet("qcstore client", flag.ExitOnError)
	var (
		peersArg = fs.String("peers", "", "comma-separated name=host:port for every replica")
		get      = fs.Bool("get", false, "read the item and print it")
		set      = fs.String("set", "", "write this integer value in a transaction")
		inspect  = fs.String("inspect", "", "print one replica's committed state (bypasses quorums); \"health\" prints every replica's status; with -shards, \"placement\" prints the whole ring layout")
		item     = fs.String("item", "", "data item for -get/-set/-inspect (default: the demo item, or k0 with -shards)")
		timeout  = fs.Duration("timeout", 5*time.Second, "overall operation deadline")
		shards   = fs.String("shards", "", "shard the keyspace onto replica groups, e.g. g0=dm0:dm1:dm2,g1=dm3:dm4:dm5")
		nkeys    = fs.Int("keys", 16, "sharded keyspace size (k0..kN-1); only with -shards")
		ringseed = fs.Int64("ringseed", 1, "consistent-hash ring seed; must match on every process")
	)
	fs.Parse(args)
	peers, err := parsePeers(*peersArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore client:", err)
		return 2
	}
	items := itemsFor(peers)
	opts := []cluster.Option{
		cluster.WithCallTimeout(time.Second),
		// The PID tag keeps this process's transaction IDs disjoint from
		// every other client process of the same cluster (see WithClientTag).
		cluster.WithClientTag(fmt.Sprintf("p%d-", os.Getpid())),
	}
	var ring *shard.Ring
	if *shards != "" {
		r, sharded, err := shardLayout(*shards, *nkeys, *ringseed, peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qcstore client:", err)
			return 2
		}
		ring, items = r, sharded
		opts = append(opts, cluster.WithRing(ring))
	}
	if *item == "" {
		*item = theItem
		if ring != nil {
			*item = "k0"
		}
	}
	tr := tcp.New(tcp.WithPeers(peers))
	defer tr.Close()
	store, err := cluster.OpenClient(tr, items, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcstore client:", err)
		return 1
	}
	defer store.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := clientOp(ctx, store, ring, *nkeys, *item, *get, *set, *inspect); err != nil {
		fmt.Fprintln(os.Stderr, "qcstore client:", err)
		return 1
	}
	return 0
}

func clientOp(ctx context.Context, store *cluster.Store, ring *shard.Ring, nkeys int, item string, get bool, set, inspect string) error {
	switch {
	case inspect == "placement" && ring != nil:
		return printPlacement(ctx, store, ring, shard.Keys("k", nkeys))
	case inspect == "health":
		// One line per replica: healthy replicas answer the ping, a
		// quarantined one serves its typed refusal (with the corruption
		// that put it there), a dead one times out.
		for _, h := range store.ProbeHealth(ctx) {
			if h.Detail != "" {
				fmt.Printf("%-8s %-12s %s\n", h.DM, h.Status, h.Detail)
			} else {
				fmt.Printf("%-8s %s\n", h.DM, h.Status)
			}
		}
		return nil
	case inspect != "":
		resp, err := store.Inspect(ctx, inspect, item)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s = %v (vn %d, gen %d, %d locks, %d intents)\n",
			inspect, item, resp.Val, resp.VN, resp.Gen, resp.Locks, resp.Intents)
		return nil
	case get:
		return store.Run(ctx, func(tx *cluster.Txn) error {
			v, vn, err := tx.ReadVersioned(ctx, item)
			if err != nil {
				return err
			}
			fmt.Printf("%s = %v (vn %d)\n", item, v, vn)
			return nil
		})
	case set != "":
		var n int
		if _, err := fmt.Sscanf(set, "%d", &n); err != nil {
			return fmt.Errorf("bad -set value %q: %w", set, err)
		}
		if err := store.Run(ctx, func(tx *cluster.Txn) error {
			return tx.Write(ctx, item, n)
		}); err != nil {
			return err
		}
		fmt.Printf("%s := %d committed\n", item, n)
		return nil
	default:
		return clientDemo(ctx, store)
	}
}

// printPlacement renders the sharded deployment's layout: the client's
// ring epoch, then each item's owning group with the committed version
// number at every replica of that group (an unreachable replica prints
// "?" rather than failing the whole table).
func printPlacement(ctx context.Context, store *cluster.Store, ring *shard.Ring, keys []string) error {
	fmt.Printf("ring epoch %d, %d groups (%s)\n",
		store.RingEpoch(), len(ring.GroupNames()), shard.FormatSpec(groupsOf(ring)))
	for _, k := range keys {
		g, ok := ring.GroupOf(k)
		if !ok {
			return fmt.Errorf("item %q maps to no group", k)
		}
		parts := make([]string, 0, len(g.DMs))
		for _, dm := range g.DMs {
			resp, err := store.Inspect(ctx, dm, k)
			if err != nil {
				parts = append(parts, dm+"=?")
				continue
			}
			parts = append(parts, fmt.Sprintf("%s=vn%d", dm, resp.VN))
		}
		fmt.Printf("%-8s -> %-8s %s\n", k, g.Name, strings.Join(parts, " "))
	}
	return nil
}

// groupsOf lists a ring's groups for FormatSpec.
func groupsOf(ring *shard.Ring) []shard.Group {
	names := ring.GroupNames()
	groups := make([]shard.Group, 0, len(names))
	for _, name := range names {
		if g, ok := ring.Group(name); ok {
			groups = append(groups, g)
		}
	}
	return groups
}

// clientDemo is the nested-transaction walkthrough of the sim demo, run
// against real processes: a subtransaction aborts, the parent tolerates it
// and commits.
func clientDemo(ctx context.Context, store *cluster.Store) error {
	errRisky := errors.New("risky step failed")
	err := store.Run(ctx, func(tx *cluster.Txn) error {
		if err := tx.Write(ctx, theItem, 150); err != nil {
			return err
		}
		if err := tx.Sub(ctx, func(sub *cluster.Txn) error {
			if err := sub.Write(ctx, theItem, -1); err != nil {
				return err
			}
			return errRisky
		}); !errors.Is(err, errRisky) {
			return err
		}
		v, err := tx.Read(ctx, theItem)
		if err != nil {
			return err
		}
		fmt.Printf("inside txn after tolerated sub-abort: %s = %v\n", theItem, v)
		return nil
	})
	if err != nil {
		return err
	}
	return store.Run(ctx, func(tx *cluster.Txn) error {
		v, vn, err := tx.ReadVersioned(ctx, theItem)
		if err != nil {
			return err
		}
		fmt.Printf("committed: %s = %v (vn %d)\n", theItem, v, vn)
		return nil
	})
}
