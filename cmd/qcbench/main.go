// Command qcbench regenerates the evaluation tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	qcbench -exp all
//	qcbench -exp figures|model|messages|availability|latency|nesting|faults|reconfig-ablation
//	qcbench -exp messages -txns 200
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run")
		txns  = flag.Int("txns", 100, "transactions per experiment cell")
		seeds = flag.Int("seeds", 25, "seeds per model check")
	)
	flag.Parse()
	if err := run(*exp, *txns, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "qcbench:", err)
		os.Exit(1)
	}
}

func run(exp string, txns, seeds int) error {
	w := os.Stdout
	section := func(name string) { fmt.Fprintf(w, "\n== %s ==\n", name) }
	all := exp == "all"
	if all || exp == "figures" {
		section("F1/F2 figures")
		if err := experiments.Figures(w); err != nil {
			return err
		}
	}
	if all || exp == "model" {
		section("E1-E4 mechanized theorem checks")
		if err := experiments.ModelChecks(w, seeds); err != nil {
			return err
		}
	}
	if all || exp == "messages" {
		section("E5 messages per transaction")
		if err := experiments.Messages(w, txns); err != nil {
			return err
		}
	}
	if all || exp == "availability" {
		section("E6 availability (exact)")
		if err := experiments.Availability(w); err != nil {
			return err
		}
	}
	if all || exp == "latency" {
		section("E7a latency vs quorum size")
		if err := experiments.Latency(w, txns); err != nil {
			return err
		}
	}
	if all || exp == "nesting" {
		section("E7b nesting depth")
		if err := experiments.Nesting(w, txns); err != nil {
			return err
		}
	}
	if all || exp == "faults" {
		section("E8 crash tolerance and reconfiguration")
		if err := experiments.Faults(w, txns); err != nil {
			return err
		}
	}
	if all || exp == "read-repair" {
		section("E9 read repair")
		if err := experiments.ReadRepair(w, 40); err != nil {
			return err
		}
	}
	if all || exp == "reconfig-ablation" {
		section("A1 reconfiguration write rule ablation")
		if err := experiments.ReconfigAblation(w, 10); err != nil {
			return err
		}
	}
	return nil
}
