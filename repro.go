// Package repro is the public facade of the reproduction of Goldman &
// Lynch, "Quorum Consensus in Nested Transaction Systems" (PODC 1987).
//
// It exposes two layers:
//
//   - The model layer — an executable transcription of the paper's I/O
//     automata: replicated serial system B, non-replicated serial system A,
//     the concurrent system C of Theorem 11, the reconfigurable system of
//     Section 4, plus mechanized checkers for Lemma 8, Theorem 10 and
//     Theorem 11. Build systems from a Spec, explore them with a seeded
//     Driver, and check every execution.
//
//   - The systems layer — a replicated key-value store with nested
//     transactions, running on a simulated goroutine cluster: quorum reads,
//     version-numbered quorum writes, Moss locking with intention lists,
//     subtransaction aborts, crash tolerance and online reconfiguration.
//
// See examples/ for runnable entry points and DESIGN.md for the
// paper-to-module map.
package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/reconfig"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Model-layer types.
type (
	// Spec describes a scenario: replicated items, plain objects, and the
	// user-transaction forest.
	Spec = core.Spec
	// ItemSpec describes a replicated logical data item.
	ItemSpec = core.ItemSpec
	// ObjectSpec describes a non-replicated basic object.
	ObjectSpec = core.ObjectSpec
	// TxnSpec describes one user transaction or logical access.
	TxnSpec = core.TxnSpec
	// SystemB is the replicated serial system (Section 3.1).
	SystemB = core.SystemB
	// SystemA is the non-replicated serial system (Section 3.2).
	SystemA = core.SystemA
	// Schedule is a finite sequence of operations.
	Schedule = ioa.Schedule
	// Op is a single nested-transaction operation.
	Op = ioa.Op
	// Config is a quorum configuration (sets of read- and write-quorums).
	Config = quorum.Config
	// QuorumSet is a single quorum: a set of DM names.
	QuorumSet = quorum.Set
	// ReconfigSpec describes a reconfigurable scenario (Section 4).
	ReconfigSpec = reconfig.Spec
)

// Operation kinds (re-exported from internal/ioa).
const (
	OpCreate        = ioa.OpCreate
	OpRequestCreate = ioa.OpRequestCreate
	OpRequestCommit = ioa.OpRequestCommit
	OpCommit        = ioa.OpCommit
	OpAbort         = ioa.OpAbort
)

// Scenario constructors (re-exported from internal/core).
var (
	// Sub builds a nested user transaction spec.
	Sub = core.Sub
	// ReadItem builds a logical-read spec.
	ReadItem = core.ReadItem
	// WriteItem builds a logical-write spec.
	WriteItem = core.WriteItem
	// BuildB constructs the replicated serial system B.
	BuildB = core.BuildB
	// BuildA constructs the non-replicated serial system A.
	BuildA = core.BuildA
	// BuildC constructs the concurrent system C (Moss locking scheduler).
	BuildC = cc.BuildC
	// BuildReconfigurable constructs the Section 4 system with
	// reconfigure-TMs, coordinators and spies.
	BuildReconfigurable = reconfig.BuildB
	// CheckTheorem11 validates the Theorem 11 chain on a concurrent run.
	CheckTheorem11 = cc.CheckTheorem11
	// Majority returns the majority-quorum configuration.
	Majority = quorum.Majority
	// ReadOneWriteAll returns the read-one/write-all configuration.
	ReadOneWriteAll = quorum.ReadOneWriteAll
	// Voting builds a configuration from Gifford weighted voting.
	Voting = quorum.Voting
)

// RunSerial drives system B for at most maxSteps operations with the given
// seed, checking the Lemma 8 invariant after every step, and returns the
// schedule. abortWeight tunes how often the scheduler chooses to abort a
// requested transaction relative to other enabled operations (0 disables
// aborts).
func RunSerial(b *SystemB, seed int64, maxSteps int, abortWeight float64) (Schedule, error) {
	d := ioa.NewDriver(b.Sys, seed)
	d.Bias = func(op Op) float64 {
		if op.Kind == ioa.OpAbort {
			return abortWeight
		}
		return 1
	}
	d.OnStep = b.Lemma8Checker()
	sched, _, err := d.Run(maxSteps)
	if err != nil {
		return sched, fmt.Errorf("repro: serial run: %w", err)
	}
	return sched, nil
}

// RunSerialNoChecks drives a replicated system (serial B or concurrent C)
// to quiescence without invariant hooks or scheduler aborts, returning the
// schedule. Use it for concurrent systems, whose interleavings the Lemma 8
// even-length condition does not apply to.
func RunSerialNoChecks(b *SystemB, seed int64) (Schedule, error) {
	d := ioa.NewDriver(b.Sys, seed)
	d.Bias = func(op Op) float64 {
		if op.Kind == ioa.OpAbort {
			return 0
		}
		return 1
	}
	sched, _, err := d.Run(1_000_000)
	return sched, err
}

// RunAndCheck builds system B from spec, drives it to quiescence, and runs
// the Theorem 10 simulation check, returning the schedule.
func RunAndCheck(spec Spec, seed int64, abortWeight float64) (Schedule, error) {
	b, err := BuildB(spec)
	if err != nil {
		return nil, err
	}
	sched, err := RunSerial(b, seed, 1_000_000, abortWeight)
	if err != nil {
		return sched, err
	}
	if err := b.CheckTheorem10(sched); err != nil {
		return sched, err
	}
	return sched, nil
}

// Cluster-layer types.
type (
	// Store is the replicated key-value store client.
	Store = cluster.Store
	// Txn is a (possibly nested) cluster transaction.
	Txn = cluster.Txn
	// ClusterItem describes one replicated item of a cluster store.
	ClusterItem = cluster.ItemSpec
	// ClusterOption configures the store client (see the With… option
	// constructors).
	ClusterOption = cluster.Option
	// Network is the simulated network.
	Network = sim.Network
	// NetworkConfig parameterizes the simulated network.
	NetworkConfig = sim.Config
	// ConflictError details a lock conflict that exhausted its retries.
	ConflictError = cluster.ConflictError
	// UnavailableError details a quorum phase that found no quorum.
	UnavailableError = cluster.UnavailableError
	// LeaseExpiredError reports a commit fenced out because the
	// transaction's lock lease lapsed (matches both ErrLeaseExpired and
	// ErrConflict, so Run retries it).
	LeaseExpiredError = cluster.LeaseExpiredError
)

// Cluster sentinel errors (match with errors.Is).
var (
	// ErrConflict is wrapped by every ConflictError.
	ErrConflict = cluster.ErrConflict
	// ErrUnavailable is wrapped by every UnavailableError.
	ErrUnavailable = cluster.ErrUnavailable
	// ErrLeaseExpired is wrapped by every LeaseExpiredError.
	ErrLeaseExpired = cluster.ErrLeaseExpired
)

// Store option constructors (re-exported from internal/cluster).
var (
	// WithCallTimeout bounds each quorum phase and control RPC.
	WithCallTimeout = cluster.WithCallTimeout
	// WithHedgeDelay sets the delay before re-issuing a phase's request to
	// silent replicas; zero disables hedging.
	WithHedgeDelay = cluster.WithHedgeDelay
	// WithHedgeMax caps request copies per replica per phase.
	WithHedgeMax = cluster.WithHedgeMax
	// WithLockRetries sets the per-phase lock-conflict retry budget;
	// zero means fail on the first conflict.
	WithLockRetries = cluster.WithLockRetries
	// WithRetryBackoff sets the base backoff between lock retries.
	WithRetryBackoff = cluster.WithRetryBackoff
	// WithTxnRetries sets how many times Run restarts a conflicted
	// transaction.
	WithTxnRetries = cluster.WithTxnRetries
	// WithReadRepair enables background repair of stale replicas.
	WithReadRepair = cluster.WithReadRepair
	// WithSequentialPhases restores the seed's one-quorum-at-a-time
	// assembly (ablation baseline).
	WithSequentialPhases = cluster.WithSequentialPhases
	// WithSeed seeds quorum shuffling and backoff jitter.
	WithSeed = cluster.WithSeed
	// WithTrace directs structured per-operation events to a trace log.
	WithTrace = cluster.WithTrace
	// WithLeaseTTL enables lock leases and the presumed-abort orphan
	// reaper; a client crash wedges an item for at most one TTL.
	WithLeaseTTL = cluster.WithLeaseTTL
	// WithHealthProbes enables the per-replica failure detector and
	// circuit-broken quorum selection.
	WithHealthProbes = cluster.WithHealthProbes
	// WithAntiEntropy starts a background sweeper repairing stale
	// replicas at the given interval.
	WithAntiEntropy = cluster.WithAntiEntropy
	// WithReadLease enables the freshness-hint read fast lane: a
	// hinted item is read from one replica, no quorum, inside the TTL.
	WithReadLease = cluster.WithReadLease
	// WithReadLeaseTTL sets the freshness-hint TTL — the bound on how
	// long an unreachable replica's hint outlives its revocation.
	WithReadLeaseTTL = cluster.WithReadLeaseTTL
	// WithCommitProtocol selects the top-level commit strategy: TwoPhase
	// (default) or PaxosCommit (non-blocking commit — a coordinator crash
	// around the commit point resolves from acceptor state in one inquiry
	// round trip instead of blocking on an unreachable replica).
	WithCommitProtocol = cluster.WithCommitProtocol
)

// CommitProtocol selects the top-level commit strategy for
// WithCommitProtocol.
type CommitProtocol = commit.Protocol

// Commit protocol constants.
const (
	// TwoPhase is the classic coordinator-decides broadcast (default).
	TwoPhase = commit.TwoPhase
	// PaxosCommit replicates the commit decision itself across acceptors
	// co-located on the replica group (DESIGN.md §11).
	PaxosCommit = commit.PaxosCommit
)

// OpenSim builds a simulated network with the given latency range and a
// store over it. Close the store and then the network when done.
func OpenSim(items []ClusterItem, minLatency, maxLatency time.Duration, seed int64) (*Store, *Network, error) {
	return OpenSimOptions(items, NetworkConfig{MinLatency: minLatency, MaxLatency: maxLatency, Seed: seed},
		cluster.WithSeed(seed))
}

// OpenSimOptions is OpenSim with full control: an explicit network
// configuration and any store options. Close the store and then the
// network when done.
func OpenSimOptions(items []ClusterItem, netCfg NetworkConfig, opts ...ClusterOption) (*Store, *Network, error) {
	net := sim.NewNetwork(netCfg)
	store, err := cluster.Open(net, items, opts...)
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return store, net, nil
}

// ReadAs reads item inside t and asserts the value to T (zero value for
// never-written nil items).
func ReadAs[T any](ctx context.Context, t *Txn, item string) (T, error) {
	return cluster.ReadAs[T](ctx, t, item)
}

// ReadForUpdateAs is ReadAs taking write locks, for read-modify-write
// transactions.
func ReadForUpdateAs[T any](ctx context.Context, t *Txn, item string) (T, error) {
	return cluster.ReadForUpdateAs[T](ctx, t, item)
}

// WriteAs writes a T to item inside t.
func WriteAs[T any](ctx context.Context, t *Txn, item string, val T) error {
	return cluster.WriteAs[T](ctx, t, item, val)
}

// RenderTree draws a system's transaction tree in the style of the paper's
// Figure 1 (system B) and Figure 2 (system A).
func RenderTree(t *tree.Tree) string { return t.Render() }
