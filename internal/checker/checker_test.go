package checker

import (
	"strings"
	"testing"
	"time"
)

func at(ms int) time.Time {
	return time.Unix(0, int64(ms)*int64(time.Millisecond))
}

func ev(kind Kind, val any, vn, start, end int) Event {
	return Event{Kind: kind, Item: "x", Value: val, VN: vn, Start: at(start), End: at(end)}
}

func TestVerifyAcceptsSequentialHistory(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpRead, 0, 0, 0, 1),
		ev(OpWrite, "a", 1, 2, 3),
		ev(OpRead, "a", 1, 4, 5),
		ev(OpWrite, "b", 2, 6, 7),
		ev(OpRead, "b", 2, 8, 9),
	}}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAcceptsConcurrentOverlaps(t *testing.T) {
	// Two overlapping writes may commit in either version order; an
	// overlapping read may see either.
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpWrite, "a", 2, 0, 10),
		ev(OpWrite, "b", 1, 0, 10),
		ev(OpRead, "b", 1, 5, 6),
	}}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsStaleRead(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpWrite, "a", 1, 0, 1),
		ev(OpRead, 0, 0, 2, 3), // reads the initial state after a write committed
	}}
	if err := h.Verify(); err == nil || !strings.Contains(err.Error(), "real-time violation") {
		t.Fatalf("stale read accepted: %v", err)
	}
}

func TestVerifyRejectsDuplicateVersions(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpWrite, "a", 1, 0, 1),
		ev(OpWrite, "b", 1, 2, 3),
	}}
	if err := h.Verify(); err == nil || !strings.Contains(err.Error(), "installed twice") {
		t.Fatalf("duplicate version accepted: %v", err)
	}
}

func TestVerifyRejectsPhantomRead(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpRead, "ghost", 4, 0, 1),
	}}
	if err := h.Verify(); err == nil || !strings.Contains(err.Error(), "no committed write") {
		t.Fatalf("phantom read accepted: %v", err)
	}
}

func TestVerifyRejectsWrongValueForVersion(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpWrite, "a", 1, 0, 1),
		ev(OpRead, "b", 1, 2, 3),
	}}
	if err := h.Verify(); err == nil || !strings.Contains(err.Error(), "write installed") {
		t.Fatalf("wrong value accepted: %v", err)
	}
}

func TestVerifyRejectsWrongInitialValue(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpRead, 42, 0, 0, 1),
	}}
	if err := h.Verify(); err == nil {
		t.Fatal("wrong initial value accepted")
	}
}

func TestVerifyRejectsSequentialWritesSharingVersion(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		{Kind: OpWrite, Item: "x", Value: "a", VN: 1, Start: at(0), End: at(1)},
		{Kind: OpWrite, Item: "x", Value: "a", VN: 1, Start: at(5), End: at(6)},
	}}
	// Same value dodges the duplicate-install message path only if values
	// matched; versions still collide.
	if err := h.Verify(); err == nil {
		t.Fatal("sequential writes sharing a version accepted")
	}
}

func TestVerifyRejectsVersionInversion(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpWrite, "a", 2, 0, 1),
		ev(OpWrite, "b", 1, 5, 6), // strictly later write with a smaller version
	}}
	if err := h.Verify(); err == nil || !strings.Contains(err.Error(), "real-time violation") {
		t.Fatalf("version inversion accepted: %v", err)
	}
}

func TestVerifyRejectsForeignItem(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		{Kind: OpRead, Item: "y", VN: 0, Value: 0},
	}}
	if err := h.Verify(); err == nil {
		t.Fatal("foreign item accepted")
	}
}

func TestVerifyEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		h       History
		wantErr string // substring of the Violation reason; "" means the history must verify
	}{
		{
			name: "empty history",
			h:    History{Item: "x", Initial: 0},
		},
		{
			name: "duplicate write VN",
			h: History{Item: "x", Initial: 0, Events: []Event{
				ev(OpWrite, "a", 3, 0, 1),
				ev(OpWrite, "b", 3, 0, 1), // concurrent, so only the install check sees it
			}},
			wantErr: "installed twice",
		},
		{
			name: "read of never-installed version",
			h: History{Item: "x", Initial: 0, Events: []Event{
				ev(OpWrite, "a", 1, 0, 1),
				ev(OpRead, "a", 2, 2, 3),
			}},
			wantErr: "no committed write",
		},
		{
			name: "foreign-item event",
			h: History{Item: "x", Initial: 0, Events: []Event{
				{Kind: OpWrite, Item: "y", Value: "a", VN: 1, Start: at(0), End: at(1)},
			}},
			wantErr: "foreign item",
		},
		{
			name: "equal-VN concurrent reads",
			h: History{Item: "x", Initial: 0, Events: []Event{
				ev(OpWrite, "a", 1, 0, 1),
				ev(OpRead, "a", 1, 2, 10),
				ev(OpRead, "a", 1, 3, 9), // overlapping reads of one version commute
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.h.Verify()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected violation: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want reason containing %q", err, tc.wantErr)
			}
			v, ok := err.(*Violation)
			if !ok {
				t.Fatalf("error is %T, want *Violation", err)
			}
			if len(v.Events) == 0 {
				t.Error("violation carries no witnessing events")
			}
		})
	}
}

func TestVerifyRejectsZeroVersionWrite(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		ev(OpWrite, "a", 0, 0, 1),
	}}
	if err := h.Verify(); err == nil {
		t.Fatal("write with version 0 accepted")
	}
}
