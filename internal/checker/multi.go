package checker

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Op is one logical operation a transaction committed: what it read or
// wrote, and the version-number witness that came with it. Start is taken
// when the operation was issued; the operation takes effect no later than
// its transaction's commit.
type Op struct {
	Kind  Kind
	Item  string
	Value any
	VN    int
	Start time.Time
}

// TxnRecord is one committed top-level transaction: its identity, its
// real-time interval (Start when the attempt began, End after commit
// acknowledgement), and its operations in program order. Operations of
// aborted transactions — and of aborted subtransactions inside committed
// ones — must not appear; only effects that became durable belong here.
type TxnRecord struct {
	ID    string
	Start time.Time
	End   time.Time
	Ops   []Op
}

// Recorder accumulates committed transactions from concurrently running
// clients. It is safe for concurrent use; clients attach it via the
// cluster store's WithHistory option and call RecordTxn at each top-level
// commit.
type Recorder struct {
	mu       sync.Mutex
	initials map[string]any
	txns     []TxnRecord
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{initials: map[string]any{}}
}

// DeclareItem registers an item's initial value, the version-0 state
// reads may legitimately observe.
func (r *Recorder) DeclareItem(item string, initial any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.initials[item] = initial
}

// RecordTxn appends one committed transaction.
func (r *Recorder) RecordTxn(t TxnRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.txns = append(r.txns, t)
}

// History snapshots everything recorded so far as a MultiHistory.
func (r *Recorder) History() MultiHistory {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := MultiHistory{Initials: make(map[string]any, len(r.initials)), Txns: append([]TxnRecord(nil), r.txns...)}
	for k, v := range r.initials {
		m.Initials[k] = v
	}
	return m
}

// MultiHistory is a set of committed transactions over many items, with
// each item's initial value.
type MultiHistory struct {
	Initials map[string]any
	Txns     []TxnRecord
}

// Events returns the total number of committed operations.
func (m MultiHistory) Events() int {
	n := 0
	for _, t := range m.Txns {
		n += len(t.Ops)
	}
	return n
}

// Histories projects the transactions onto per-item single-item
// histories, sorted by item name. Each event's End is its transaction's
// commit time — the latest moment the operation can have taken effect.
func (m MultiHistory) Histories() []History {
	byItem := map[string]*History{}
	for item, init := range m.Initials {
		byItem[item] = &History{Item: item, Initial: init}
	}
	for _, t := range m.Txns {
		for _, op := range t.Ops {
			h, ok := byItem[op.Item]
			if !ok {
				h = &History{Item: op.Item}
				byItem[op.Item] = h
			}
			h.Events = append(h.Events, Event{
				Kind: op.Kind, Item: op.Item, Value: op.Value, VN: op.VN,
				Txn: t.ID, Start: op.Start, End: t.End,
			})
		}
	}
	names := make([]string, 0, len(byItem))
	for n := range byItem {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]History, 0, len(names))
	for _, n := range names {
		out = append(out, *byItem[n])
	}
	return out
}

// span is one transaction's footprint on one item in serialization-point
// coordinates: a write of version v sits at point 2v, a read of version v
// at 2v+1 (after its dictating write, before the next). A serializable
// transaction occupies the contiguous range [lo, hi].
type span struct {
	lo, hi     int
	loOp, hiOp Event
}

// edge justifies one precedence between two transactions.
type edge struct {
	item   string // "" for real-time edges
	before Event  // the earlier transaction's witnessing op
	after  Event  // the later transaction's witnessing op
}

func pos(op Op) int {
	if op.Kind == OpWrite {
		return 2 * op.VN
	}
	return 2*op.VN + 1
}

// Verify checks the whole multi-item history:
//
//  1. each item's projection is linearizable as an atomic register
//     (History.Verify, version numbers as the witness);
//  2. the transactions are serializable across items: version numbers
//     assign every transaction a serialization point per item, and the
//     union of the per-item orders with the real-time order (txn A
//     committed before txn B began) must be acyclic.
//
// Failures are *Violation values carrying the minimal witnessing events.
func (m MultiHistory) Verify() error {
	for _, h := range m.Histories() {
		if err := h.Verify(); err != nil {
			return err
		}
	}
	n := len(m.Txns)
	spans := make([]map[string]*span, n)
	for i, t := range m.Txns {
		spans[i] = map[string]*span{}
		for _, op := range t.Ops {
			p := pos(op)
			ev := Event{Kind: op.Kind, Item: op.Item, Value: op.Value, VN: op.VN, Txn: t.ID, Start: op.Start, End: t.End}
			s, ok := spans[i][op.Item]
			if !ok {
				spans[i][op.Item] = &span{lo: p, hi: p, loOp: ev, hiOp: ev}
				continue
			}
			if p < s.lo {
				s.lo, s.loOp = p, ev
			}
			if p > s.hi {
				s.hi, s.hiOp = p, ev
			}
		}
	}

	// Item-order edges between every pair sharing an item. A nil entry
	// means no order; a present edge means row-txn precedes column-txn.
	adj := make([]map[int]edge, n)
	for i := range adj {
		adj[i] = map[int]edge{}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for item, a := range spans[i] {
				b, shared := spans[j][item]
				if !shared {
					continue
				}
				rel, err := relate(item, m.Txns[i].ID, m.Txns[j].ID, a, b)
				if err != nil {
					return err
				}
				switch {
				case rel < 0:
					if _, dup := adj[i][j]; !dup {
						adj[i][j] = edge{item: item, before: a.hiOp, after: b.loOp}
					}
				case rel > 0:
					if _, dup := adj[j][i]; !dup {
						adj[j][i] = edge{item: item, before: b.hiOp, after: a.loOp}
					}
				}
			}
			// Direct contradiction: two items order the pair both ways.
			if eij, ok := adj[i][j]; ok {
				if eji, ok := adj[j][i]; ok {
					return violate(
						[]Event{eij.before, eij.after, eji.before, eji.after},
						"serializability violation: txn %s precedes %s on item %s but follows it on item %s",
						m.Txns[i].ID, m.Txns[j].ID, eij.item, eji.item)
				}
			}
		}
	}

	// Real-time edges: a transaction that committed before another began
	// must serialize before it. A real-time edge against an item-order
	// edge is a direct contradiction with a two-event witness.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !m.Txns[i].End.Before(m.Txns[j].Start) {
				continue
			}
			if e, ok := adj[j][i]; ok {
				return violate([]Event{e.before, e.after},
					"serializability violation: txn %s committed before %s began, but item %s orders %s first",
					m.Txns[i].ID, m.Txns[j].ID, e.item, m.Txns[j].ID)
			}
			if _, ok := adj[i][j]; !ok {
				adj[i][j] = edge{}
			}
		}
	}

	// Longer cycles: depth-first search over the combined order.
	if cyc := findCycle(adj); cyc != nil {
		var events []Event
		var names []string
		for k, from := range cyc {
			to := cyc[(k+1)%len(cyc)]
			names = append(names, m.Txns[from].ID)
			if e := adj[from][to]; e.item != "" {
				events = append(events, e.before, e.after)
			}
		}
		return violate(events, "serializability violation: cycle %s -> %s",
			strings.Join(names, " -> "), names[0])
	}
	return nil
}

// relate orders two spans on one item: -1 if a precedes b, +1 if b
// precedes a, 0 if unordered (identical single read points). Interleaved
// spans — neither wholly before the other — admit no serialization point
// at all and are an immediate violation.
func relate(item, aID, bID string, a, b *span) (int, error) {
	singleReads := a.lo == a.hi && b.lo == b.hi && a.lo == b.lo && a.lo%2 == 1
	switch {
	case singleReads:
		return 0, nil
	case a.hi < b.lo || (a.hi == b.lo && a.hi%2 == 1):
		return -1, nil
	case b.hi < a.lo || (b.hi == a.lo && b.hi%2 == 1):
		return 1, nil
	}
	// Overlapping footprints: some operation of one transaction lands
	// strictly inside the other's range. Witness with the enclosing
	// transaction's endpoints around the intruding op.
	intruder, enclosing := a, b
	if a.lo <= b.lo {
		intruder, enclosing = b, a
	}
	return 0, violate([]Event{enclosing.loOp, intruder.loOp, enclosing.hiOp},
		"serializability violation: txns %s and %s interleave on item %s (no single serialization point)",
		aID, bID, item)
}

// findCycle returns the node indices of one cycle in adj, or nil.
func findCycle(adj []map[int]edge) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(adj))
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for v := range adj[u] {
			if color[v] == gray {
				// Back edge: walk parents from u back to v.
				cycle = append(cycle, v)
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into cycle order v -> ... -> u.
				for l, r := 0, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := range adj {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}
