package checker

import (
	"errors"
	"strings"
	"testing"
)

// wop / rop build ops; times are via at(ms) from checker_test.go.
func wop(item string, val any, vn, start int) Op {
	return Op{Kind: OpWrite, Item: item, Value: val, VN: vn, Start: at(start)}
}

func rop(item string, val any, vn, start int) Op {
	return Op{Kind: OpRead, Item: item, Value: val, VN: vn, Start: at(start)}
}

func multi(txns ...TxnRecord) MultiHistory {
	return MultiHistory{Initials: map[string]any{"x": 0, "y": 0, "z": 0}, Txns: txns}
}

func TestMultiVerifyAcceptsSerializableHistory(t *testing.T) {
	m := multi(
		TxnRecord{ID: "t1", Start: at(0), End: at(10), Ops: []Op{wop("x", "a", 1, 1), wop("y", "b", 1, 2)}},
		TxnRecord{ID: "t2", Start: at(11), End: at(20), Ops: []Op{rop("x", "a", 1, 12), wop("y", "c", 2, 13)}},
		TxnRecord{ID: "t3", Start: at(21), End: at(30), Ops: []Op{rop("x", "a", 1, 22), rop("y", "c", 2, 23)}},
	)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.Events() != 6 {
		t.Errorf("Events() = %d, want 6", m.Events())
	}
}

func TestMultiVerifyAcceptsEqualReadPoints(t *testing.T) {
	// Two concurrent transactions reading the same version commute; no
	// order between them is required in either direction.
	m := multi(
		TxnRecord{ID: "w", Start: at(0), End: at(5), Ops: []Op{wop("x", "a", 1, 1)}},
		TxnRecord{ID: "r1", Start: at(6), End: at(20), Ops: []Op{rop("x", "a", 1, 7)}},
		TxnRecord{ID: "r2", Start: at(6), End: at(20), Ops: []Op{rop("x", "a", 1, 8)}},
	)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiVerifyRejectsAntisymmetricPair(t *testing.T) {
	// t1 precedes t2 on x (wrote 1, t2 wrote 2) but follows it on y.
	// Concurrent in real time, so only the cross-item check can see it.
	m := multi(
		TxnRecord{ID: "t1", Start: at(0), End: at(20), Ops: []Op{wop("x", "a", 1, 1), wop("y", "d", 2, 2)}},
		TxnRecord{ID: "t2", Start: at(0), End: at(20), Ops: []Op{wop("x", "b", 2, 1), wop("y", "c", 1, 2)}},
	)
	err := m.Verify()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if !strings.Contains(v.Reason, "precedes") {
		t.Errorf("reason = %q", v.Reason)
	}
	if len(v.Events) != 4 {
		t.Errorf("witness has %d events, want 4: %s", len(v.Events), v.Diagnostic())
	}
}

func TestMultiVerifyRejectsRealTimeContradiction(t *testing.T) {
	// t1 committed strictly before t2 began, yet the version order on x
	// says t2 wrote first. Each committed write is fine per item — vn 1
	// then vn 2 with t2's op earlier would be caught per-item, so use a
	// read to dodge the single-item check: t1 read version 2 (fine per
	// item: concurrent with the write there) — but t1 as a whole ended
	// before t2 began, contradiction.
	m := MultiHistory{
		Initials: map[string]any{"x": 0, "y": 0},
		Txns: []TxnRecord{
			{ID: "t1", Start: at(0), End: at(10), Ops: []Op{rop("x", "b", 2, 1)}},
			{ID: "t2", Start: at(20), End: at(40), Ops: []Op{wop("x", "b", 2, 21)}},
		},
	}
	err := m.Verify()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if len(v.Events) != 2 {
		t.Errorf("witness has %d events, want 2: %s", len(v.Events), v.Diagnostic())
	}
}

func TestMultiVerifyRejectsInterleavedSpans(t *testing.T) {
	// t2's write of version 2 lands strictly between t1's writes of
	// versions 1 and 3: t1 has no single serialization point. All three
	// writes are concurrent, so per-item real-time checks stay silent.
	m := multi(
		TxnRecord{ID: "t1", Start: at(0), End: at(20), Ops: []Op{wop("x", "a", 1, 1), wop("x", "c", 3, 2)}},
		TxnRecord{ID: "t2", Start: at(0), End: at(20), Ops: []Op{wop("x", "b", 2, 1)}},
	)
	err := m.Verify()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if !strings.Contains(v.Reason, "interleave") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestMultiVerifyRejectsThreeCycle(t *testing.T) {
	// Pairwise consistent, globally cyclic: x orders t1<t2, y orders
	// t2<t3, z orders t3<t1. Only cycle detection can reject it.
	m := multi(
		TxnRecord{ID: "t1", Start: at(0), End: at(30), Ops: []Op{wop("x", "a", 1, 1), wop("z", "f", 2, 2)}},
		TxnRecord{ID: "t2", Start: at(0), End: at(30), Ops: []Op{wop("x", "b", 2, 1), wop("y", "c", 1, 2)}},
		TxnRecord{ID: "t3", Start: at(0), End: at(30), Ops: []Op{wop("y", "d", 2, 1), wop("z", "e", 1, 2)}},
	)
	err := m.Verify()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if !strings.Contains(v.Reason, "cycle") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestMultiVerifyCatchesPerItemViolations(t *testing.T) {
	// The per-item register check still runs under the multi-item entry
	// point: two committed writes installing the same version.
	m := multi(
		TxnRecord{ID: "t1", Start: at(0), End: at(10), Ops: []Op{wop("x", "a", 1, 1)}},
		TxnRecord{ID: "t2", Start: at(20), End: at(30), Ops: []Op{wop("x", "b", 1, 21)}},
	)
	err := m.Verify()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if !strings.Contains(v.Reason, "installed twice") || len(v.Events) != 2 {
		t.Errorf("violation = %s", v.Diagnostic())
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.DeclareItem("x", 0)
	r.DeclareItem("y", "init")
	r.RecordTxn(TxnRecord{ID: "t1", Start: at(0), End: at(10), Ops: []Op{wop("x", "a", 1, 1)}})
	r.RecordTxn(TxnRecord{ID: "t2", Start: at(11), End: at(20), Ops: []Op{rop("x", "a", 1, 12), rop("y", "init", 0, 13)}})
	m := r.History()
	if len(m.Txns) != 2 || m.Events() != 3 {
		t.Fatalf("snapshot: %d txns, %d events", len(m.Txns), m.Events())
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	hs := m.Histories()
	if len(hs) != 2 || hs[0].Item != "x" || hs[1].Item != "y" {
		t.Errorf("histories = %+v", hs)
	}
}

func TestViolationDiagnosticListsEvents(t *testing.T) {
	h := History{Item: "x", Initial: 0, Events: []Event{
		{Kind: OpWrite, Item: "x", Value: "a", VN: 1, Txn: "t1", Start: at(0), End: at(1)},
		{Kind: OpWrite, Item: "x", Value: "b", VN: 1, Txn: "t2", Start: at(2), End: at(3)},
	}}
	err := h.Verify()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %v", err)
	}
	d := v.Diagnostic()
	if !strings.Contains(d, "t1") || !strings.Contains(d, "t2") || strings.Count(d, "\n") != 2 {
		t.Errorf("diagnostic = %q", d)
	}
}
