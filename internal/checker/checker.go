// Package checker verifies observed cluster histories. Quorum consensus
// maintains version numbers as a built-in linearization witness: each
// committed write installs a unique version number, and each read returns
// the value of some installed version. A history of committed operations
// over one item is linearizable as an atomic register if and only if
// ordering operations by version number (reads after their dictating
// write) is consistent with the real-time partial order. The checker
// verifies exactly that, making it sound and complete given the witness.
//
// Beyond the single-item register check, the package verifies cross-item
// serializability of whole transactions (MultiHistory.Verify): version
// numbers give every transaction a serialization point per item, and the
// union of those per-item orders with real time must be acyclic. A
// Recorder collects committed transactions concurrently from live
// clients; failures come back as *Violation values that carry the
// minimal witnessing events for diagnostics.
package checker

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	OpRead Kind = iota + 1
	OpWrite
)

// Event is one committed client operation on one item. Start is taken
// before the operation is issued and End after its top-level transaction
// commits; VN is the version number observed (reads) or installed
// (writes). Txn, when set, names the top-level transaction the operation
// committed under (diagnostics only; verification ignores it).
type Event struct {
	Kind  Kind
	Item  string
	Value any
	VN    int
	Txn   string
	Start time.Time
	End   time.Time
}

// History is a set of committed events over one logical item.
type History struct {
	Item    string
	Initial any
	Events  []Event
}

// Violation is a failed check: a reason plus the minimal set of events —
// usually a pair — that witnesses the contradiction. Error returns the
// reason alone; Diagnostic renders the witnessing events too.
type Violation struct {
	Reason string
	Events []Event
}

// Error implements error.
func (v *Violation) Error() string { return v.Reason }

// Diagnostic renders the violation with its witnessing events, one per
// line, for failure reports.
func (v *Violation) Diagnostic() string {
	var b strings.Builder
	b.WriteString(v.Reason)
	for _, e := range v.Events {
		b.WriteString("\n  ")
		b.WriteString(describe(e))
	}
	return b.String()
}

// violate builds a Violation whose reason is prefixed "checker: ".
func violate(events []Event, format string, args ...any) *Violation {
	return &Violation{Reason: "checker: " + fmt.Sprintf(format, args...), Events: events}
}

// Verify checks that the history is linearizable as an atomic register,
// using version numbers as the witness:
//
//  1. every write installed a distinct version number ≥ 1;
//  2. every read's (version, value) matches the initial state (version 0)
//     or exactly one write;
//  3. the version order respects real time: if event A ended before event
//     B started, then VN(A) ≤ VN(B), strictly so when both are writes.
//
// Failures are returned as *Violation carrying the witnessing events.
func (h History) Verify() error {
	writes := map[int]Event{}
	for _, e := range h.Events {
		if e.Item != h.Item {
			return violate([]Event{e}, "event for foreign item %q", e.Item)
		}
		if e.Kind != OpWrite {
			continue
		}
		if e.VN < 1 {
			return violate([]Event{e}, "write installed version %d < 1", e.VN)
		}
		if prev, dup := writes[e.VN]; dup {
			return violate([]Event{prev, e}, "version %d installed twice (%v and %v)", e.VN, prev.Value, e.Value)
		}
		writes[e.VN] = e
	}
	for _, e := range h.Events {
		if e.Kind != OpRead {
			continue
		}
		switch {
		case e.VN == 0:
			if !reflect.DeepEqual(e.Value, h.Initial) {
				return violate([]Event{e}, "read of version 0 returned %v, initial is %v", e.Value, h.Initial)
			}
		default:
			w, ok := writes[e.VN]
			if !ok {
				return violate([]Event{e}, "read returned version %d, which no committed write installed", e.VN)
			}
			if !reflect.DeepEqual(e.Value, w.Value) {
				return violate([]Event{w, e}, "read of version %d returned %v, write installed %v", e.VN, e.Value, w.Value)
			}
		}
	}
	// Real-time consistency: sort by start, compare all strictly-ordered
	// pairs. O(n²) worst case over committed ops — fine at test scale.
	events := append([]Event(nil), h.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Start.Before(events[j].Start) })
	for i, a := range events {
		for _, b := range events[i+1:] {
			if !a.End.Before(b.Start) {
				continue // concurrent: no constraint
			}
			if a.VN > b.VN {
				return violate([]Event{a, b}, "real-time violation: %v (vn %d) finished before %v (vn %d) started",
					describe(a), a.VN, describe(b), b.VN)
			}
			if a.VN == b.VN && a.Kind == OpWrite && b.Kind == OpWrite {
				return violate([]Event{a, b}, "two sequential writes share version %d", a.VN)
			}
			// A write must not be ordered after a read that already saw a
			// later state... covered by a.VN > b.VN above; a read before a
			// write with the same VN means the read saw the write's value
			// before the write's top-level commit ended — impossible for
			// committed reads under 2PL, and detectable:
			if a.VN == b.VN && a.Kind == OpRead && b.Kind == OpWrite {
				return violate([]Event{a, b}, "read of version %d completed before its dictating write", a.VN)
			}
		}
	}
	return nil
}

func describe(e Event) string {
	who := ""
	if e.Txn != "" {
		who = fmt.Sprintf(" [txn %s]", e.Txn)
	}
	if e.Kind == OpRead {
		return fmt.Sprintf("read(%s)=%v (vn %d)%s", e.Item, e.Value, e.VN, who)
	}
	return fmt.Sprintf("write(%s, %v) (vn %d)%s", e.Item, e.Value, e.VN, who)
}
