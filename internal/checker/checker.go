// Package checker verifies observed cluster histories. Quorum consensus
// maintains version numbers as a built-in linearization witness: each
// committed write installs a unique version number, and each read returns
// the value of some installed version. A history of committed operations
// over one item is linearizable as an atomic register if and only if
// ordering operations by version number (reads after their dictating
// write) is consistent with the real-time partial order. The checker
// verifies exactly that, making it sound and complete given the witness.
package checker

import (
	"fmt"
	"reflect"
	"sort"
	"time"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	OpRead Kind = iota + 1
	OpWrite
)

// Event is one committed client operation on one item. Start is taken
// before the operation is issued and End after its top-level transaction
// commits; VN is the version number observed (reads) or installed
// (writes).
type Event struct {
	Kind  Kind
	Item  string
	Value any
	VN    int
	Start time.Time
	End   time.Time
}

// History is a set of committed events over one logical item.
type History struct {
	Item    string
	Initial any
	Events  []Event
}

// Verify checks that the history is linearizable as an atomic register,
// using version numbers as the witness:
//
//  1. every write installed a distinct version number ≥ 1;
//  2. every read's (version, value) matches the initial state (version 0)
//     or exactly one write;
//  3. the version order respects real time: if event A ended before event
//     B started, then VN(A) ≤ VN(B), strictly so when both are writes.
func (h History) Verify() error {
	writes := map[int]Event{}
	for _, e := range h.Events {
		if e.Item != h.Item {
			return fmt.Errorf("checker: event for foreign item %q", e.Item)
		}
		if e.Kind != OpWrite {
			continue
		}
		if e.VN < 1 {
			return fmt.Errorf("checker: write installed version %d < 1", e.VN)
		}
		if prev, dup := writes[e.VN]; dup {
			return fmt.Errorf("checker: version %d installed twice (%v and %v)", e.VN, prev.Value, e.Value)
		}
		writes[e.VN] = e
	}
	for _, e := range h.Events {
		if e.Kind != OpRead {
			continue
		}
		switch {
		case e.VN == 0:
			if !reflect.DeepEqual(e.Value, h.Initial) {
				return fmt.Errorf("checker: read of version 0 returned %v, initial is %v", e.Value, h.Initial)
			}
		default:
			w, ok := writes[e.VN]
			if !ok {
				return fmt.Errorf("checker: read returned version %d, which no committed write installed", e.VN)
			}
			if !reflect.DeepEqual(e.Value, w.Value) {
				return fmt.Errorf("checker: read of version %d returned %v, write installed %v", e.VN, e.Value, w.Value)
			}
		}
	}
	// Real-time consistency: sort by start, compare all strictly-ordered
	// pairs. O(n²) worst case over committed ops — fine at test scale.
	events := append([]Event(nil), h.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Start.Before(events[j].Start) })
	for i, a := range events {
		for _, b := range events[i+1:] {
			if !a.End.Before(b.Start) {
				continue // concurrent: no constraint
			}
			if a.VN > b.VN {
				return fmt.Errorf("checker: real-time violation: %v (vn %d) finished before %v (vn %d) started",
					describe(a), a.VN, describe(b), b.VN)
			}
			if a.VN == b.VN && a.Kind == OpWrite && b.Kind == OpWrite {
				return fmt.Errorf("checker: two sequential writes share version %d", a.VN)
			}
			// A write must not be ordered after a read that already saw a
			// later state... covered by a.VN > b.VN above; a read before a
			// write with the same VN means the read saw the write's value
			// before the write's top-level commit ended — impossible for
			// committed reads under 2PL, and detectable:
			if a.VN == b.VN && a.Kind == OpRead && b.Kind == OpWrite {
				return fmt.Errorf("checker: read of version %d completed before its dictating write", a.VN)
			}
		}
	}
	return nil
}

func describe(e Event) string {
	if e.Kind == OpRead {
		return fmt.Sprintf("read(%s)=%v", e.Item, e.Value)
	}
	return fmt.Sprintf("write(%s, %v)", e.Item, e.Value)
}
