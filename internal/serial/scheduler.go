// Package serial implements the serial scheduler of paper Section 2.2 and
// helpers for building and checking serial systems. The serial scheduler
// controls communication between the system primitives (transactions and
// basic objects) and runs transactions according to a depth-first traversal
// of the transaction tree: a transaction is created only after all its
// created siblings have returned, and commits only after all its created
// children have returned. It may nondeterministically abort any transaction
// that was requested but never created ("the semantics of ABORT(T) are that
// T was never created").
package serial

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// Scheduler is the serial scheduler automaton. Its state components are
// exactly the paper's: create-requested, created, commit-requested,
// committed, aborted, and returned. Initially create-requested = {T0} and
// the rest are empty.
type Scheduler struct {
	tr *tree.Tree

	createRequested map[ioa.TxnName]bool
	created         map[ioa.TxnName]bool
	aborted         map[ioa.TxnName]bool
	returned        map[ioa.TxnName]bool
	commitRequested map[ioa.TxnName][]ioa.Value
	committed       map[ioa.TxnName]ioa.Value
}

var _ ioa.Automaton = (*Scheduler)(nil)

// NewScheduler returns a serial scheduler for the given transaction tree.
func NewScheduler(tr *tree.Tree) *Scheduler {
	return &Scheduler{
		tr:              tr,
		createRequested: map[ioa.TxnName]bool{tree.Root: true},
		created:         map[ioa.TxnName]bool{},
		aborted:         map[ioa.TxnName]bool{},
		returned:        map[ioa.TxnName]bool{},
		commitRequested: map[ioa.TxnName][]ioa.Value{},
		committed:       map[ioa.TxnName]ioa.Value{},
	}
}

// Name implements ioa.Automaton.
func (s *Scheduler) Name() string { return "serial-scheduler" }

// HasOp reports true for every operation naming a transaction of the tree:
// the scheduler mediates all communication in the system.
func (s *Scheduler) HasOp(op ioa.Op) bool { return s.tr.Contains(op.Txn) }

// IsOutput reports whether op is CREATE, COMMIT or ABORT.
func (s *Scheduler) IsOutput(op ioa.Op) bool {
	if !s.tr.Contains(op.Txn) {
		return false
	}
	return op.Kind == ioa.OpCreate || op.Kind == ioa.OpCommit || op.Kind == ioa.OpAbort
}

// Created reports whether CREATE(t) has occurred.
func (s *Scheduler) Created(t ioa.TxnName) bool { return s.created[t] }

// Returned reports whether t has committed or aborted.
func (s *Scheduler) Returned(t ioa.TxnName) bool { return s.returned[t] }

// Committed returns the commit value for t and whether t committed.
func (s *Scheduler) Committed(t ioa.TxnName) (ioa.Value, bool) {
	v, ok := s.committed[t]
	return v, ok
}

// siblingsQuiet reports whether siblings(T) ∩ created ⊆ returned, the
// depth-first condition shared by the CREATE and ABORT preconditions.
func (s *Scheduler) siblingsQuiet(t ioa.TxnName) bool {
	for _, sib := range s.tr.Siblings(t) {
		if s.created[sib] && !s.returned[sib] {
			return false
		}
	}
	return true
}

// childrenReturned reports whether children(T) ∩ create-requested ⊆
// returned, the COMMIT precondition.
func (s *Scheduler) childrenReturned(t ioa.TxnName) bool {
	for _, c := range s.tr.Children(t) {
		if s.createRequested[c] && !s.returned[c] {
			return false
		}
	}
	return true
}

// createEnabled reports whether the shared CREATE/ABORT precondition holds
// for t.
func (s *Scheduler) createEnabled(t ioa.TxnName) bool {
	return s.createRequested[t] && !s.created[t] && !s.aborted[t] && s.siblingsQuiet(t)
}

// Enabled returns the enabled CREATE, COMMIT and ABORT operations.
// ABORT(T0) is excluded: the root models the environment and may neither
// commit nor abort. Candidates are enumerated in sorted name order so that
// drivers are reproducible from their seed.
func (s *Scheduler) Enabled() []ioa.Op {
	var out []ioa.Op
	for _, t := range sortedKeys(s.createRequested) {
		if s.createEnabled(t) {
			out = append(out, ioa.Create(t))
			if t != tree.Root {
				out = append(out, ioa.Abort(t))
			}
		}
	}
	for _, t := range sortedCommitKeys(s.commitRequested) {
		if s.returned[t] || !s.childrenReturned(t) {
			continue
		}
		for _, v := range s.commitRequested[t] {
			out = append(out, ioa.Commit(t, v))
		}
	}
	return out
}

func sortedKeys(m map[ioa.TxnName]bool) []ioa.TxnName {
	out := make([]ioa.TxnName, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedCommitKeys(m map[ioa.TxnName][]ioa.Value) []ioa.TxnName {
	out := make([]ioa.TxnName, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step implements ioa.Automaton, validating the paper's preconditions for
// output operations and applying the postconditions.
func (s *Scheduler) Step(op ioa.Op) error {
	if !s.tr.Contains(op.Txn) {
		return fmt.Errorf("scheduler: unknown transaction %v", op.Txn)
	}
	switch op.Kind {
	case ioa.OpRequestCreate:
		s.createRequested[op.Txn] = true
		return nil
	case ioa.OpRequestCommit:
		s.commitRequested[op.Txn] = append(s.commitRequested[op.Txn], op.Val)
		return nil
	case ioa.OpCreate:
		if !s.createEnabled(op.Txn) {
			return fmt.Errorf("%w: CREATE(%v)", ioa.ErrNotEnabled, op.Txn)
		}
		s.created[op.Txn] = true
		return nil
	case ioa.OpAbort:
		if op.Txn == tree.Root || !s.createEnabled(op.Txn) {
			return fmt.Errorf("%w: ABORT(%v)", ioa.ErrNotEnabled, op.Txn)
		}
		s.aborted[op.Txn] = true
		s.returned[op.Txn] = true
		return nil
	case ioa.OpCommit:
		if s.returned[op.Txn] || !s.childrenReturned(op.Txn) || !s.commitRequestedWith(op.Txn, op.Val) {
			return fmt.Errorf("%w: COMMIT(%v, %v)", ioa.ErrNotEnabled, op.Txn, op.Val)
		}
		s.committed[op.Txn] = op.Val
		s.returned[op.Txn] = true
		return nil
	default:
		return fmt.Errorf("scheduler: unknown op kind %v", op.Kind)
	}
}

func (s *Scheduler) commitRequestedWith(t ioa.TxnName, v ioa.Value) bool {
	for _, w := range s.commitRequested[t] {
		if reflect.DeepEqual(v, w) {
			return true
		}
	}
	return false
}
