package serial

import (
	"errors"
	"testing"

	"repro/internal/ioa"
	"repro/internal/tree"
)

func sampleTree(t *testing.T) *tree.Tree {
	t.Helper()
	tr := tree.New()
	tr.MustAddChild(tree.Root, "u1", tree.KindUser)
	tr.MustAddChild(tree.Root, "u2", tree.KindUser)
	tr.MustAddChild("T0/u1", "c1", tree.KindUser)
	tr.MustAddChild("T0/u1", "c2", tree.KindUser)
	return tr
}

func TestInitiallyOnlyRootCreatable(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	enabled := s.Enabled()
	if len(enabled) != 1 || !enabled[0].Equal(ioa.Create(tree.Root)) {
		t.Fatalf("enabled = %v, want only CREATE(T0)", enabled)
	}
}

func TestRootCannotAbort(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	if err := s.Step(ioa.Abort(tree.Root)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("ABORT(T0) must be rejected, got %v", err)
	}
}

func TestDepthFirstSiblingRule(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	must := func(op ioa.Op) {
		t.Helper()
		if err := s.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	must(ioa.Create(tree.Root))
	must(ioa.RequestCreate("T0/u1"))
	must(ioa.RequestCreate("T0/u2"))
	must(ioa.Create("T0/u1"))
	// u1 is created and unreturned: CREATE(u2) violates the sibling rule.
	if err := s.Step(ioa.Create("T0/u2")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("sibling rule not enforced: %v", err)
	}
	// ABORT(u2) shares the precondition.
	if err := s.Step(ioa.Abort("T0/u2")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("abort sibling rule not enforced: %v", err)
	}
	must(ioa.RequestCommit("T0/u1", nil))
	must(ioa.Commit("T0/u1", nil))
	// Now u2 can be created (or aborted).
	must(ioa.Create("T0/u2"))
}

func TestCommitRequiresChildrenReturned(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	for _, op := range []ioa.Op{
		ioa.Create(tree.Root),
		ioa.RequestCreate("T0/u1"),
		ioa.Create("T0/u1"),
		ioa.RequestCreate("T0/u1/c1"),
		ioa.RequestCommit("T0/u1", "v"),
	} {
		if err := s.Step(op); err != nil {
			t.Fatal(err)
		}
	}
	// c1 was requested and has not returned: COMMIT(u1) must wait.
	if err := s.Step(ioa.Commit("T0/u1", "v")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("commit before children returned: %v", err)
	}
	if err := s.Step(ioa.Abort("T0/u1/c1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(ioa.Commit("T0/u1", "v")); err != nil {
		t.Fatalf("commit after child aborted: %v", err)
	}
	if v, ok := s.Committed("T0/u1"); !ok || v != "v" {
		t.Errorf("Committed = %v %v", v, ok)
	}
}

func TestCommitValueMustMatchRequest(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	for _, op := range []ioa.Op{
		ioa.Create(tree.Root),
		ioa.RequestCreate("T0/u2"),
		ioa.Create("T0/u2"),
		ioa.RequestCommit("T0/u2", 1),
	} {
		if err := s.Step(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Step(ioa.Commit("T0/u2", 2)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("commit with unrequested value: %v", err)
	}
	if err := s.Step(ioa.Commit("T0/u2", 1)); err != nil {
		t.Fatal(err)
	}
	// A second return is rejected.
	if err := s.Step(ioa.Commit("T0/u2", 1)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("duplicate commit: %v", err)
	}
}

func TestAbortMeansNeverCreated(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	for _, op := range []ioa.Op{
		ioa.Create(tree.Root),
		ioa.RequestCreate("T0/u1"),
		ioa.Create("T0/u1"),
	} {
		if err := s.Step(op); err != nil {
			t.Fatal(err)
		}
	}
	// u1 is created: it can no longer abort.
	if err := s.Step(ioa.Abort("T0/u1")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("abort of created transaction: %v", err)
	}
}

func TestCreateRequiresRequest(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	if err := s.Step(ioa.Create("T0/u1")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("create without request: %v", err)
	}
	if err := s.Step(ioa.Create("nope")); err == nil {
		t.Fatal("unknown transaction accepted")
	}
}

func TestSchedulerOwnsAllTreeOps(t *testing.T) {
	s := NewScheduler(sampleTree(t))
	for _, op := range []ioa.Op{
		ioa.Create("T0/u1"), ioa.RequestCreate("T0/u1"),
		ioa.RequestCommit("T0/u1", nil), ioa.Commit("T0/u1", nil), ioa.Abort("T0/u1"),
	} {
		if !s.HasOp(op) {
			t.Errorf("scheduler must have op %v", op)
		}
	}
	if s.HasOp(ioa.Create("zzz")) {
		t.Error("foreign transaction op claimed")
	}
	if s.IsOutput(ioa.RequestCreate("T0/u1")) || !s.IsOutput(ioa.Create("T0/u1")) {
		t.Error("output classification broken")
	}
}
