// Package transport defines the RPC seam between the cluster layer and
// whatever carries its messages. The cluster's protocol code (quorum
// fan-out, commit/abort control rounds, lease gossip) speaks only to the
// three small interfaces here; internal/sim implements them over the
// deterministic in-process network, internal/transport/tcp over real
// sockets. The envelope semantics every backend must carry:
//
//   - Request/reply matching: a Call is answered by exactly one reply (or
//     an error); Notify is fire-and-forget and never answered.
//   - Deadline propagation: a Call stamps its context deadline onto the
//     wire so an overload-protected receiver can discard requests whose
//     caller already gave up (expired-on-arrival).
//   - Typed errors: a Call that gets no answer fails with ErrTimeout (the
//     context expired — the caller cannot tell a lost request from a slow
//     peer) or ErrLost (the backend knows no answer is coming: a severed
//     connection, a crashed peer, a sampled drop under fate feedback).
//     Raw backend errors (net.OpError and friends) never escape.
//   - Fate feedback where supported: a backend that learns a message's
//     fate early fails the pending call with ErrLost the moment the fate
//     is decided instead of burning the caller's timeout. The sim network
//     does this under Config.FateFeedback; TCP does it on connection loss.
package transport

import (
	"context"
	"errors"
	"time"
)

// ErrTimeout is returned by Call when the context expires before a reply
// arrives — lost request, lost reply, crashed server, or slow link; the
// caller cannot tell, exactly as in a real network.
var ErrTimeout = errors.New("rpc timeout")

// ErrLost is returned by Call when the backend knows no answer is coming —
// a severed connection, a refused dial, a crashed peer, or (under the sim
// network's fate feedback) a sampled drop. It means the same as ErrTimeout
// but arrives the moment the fate is decided.
var ErrLost = errors.New("rpc call lost")

// Handler processes one request addressed to a served name and answers
// through reply, which may be invoked at most once — synchronously or
// later from another goroutine (the decoupling a durable replica needs to
// keep absorbing requests while earlier acks wait on a log flush). For
// fire-and-forget traffic reply is a no-op. Backends invoke the handler on
// a single goroutine per served name, so handler state needs no locking —
// the actor discipline.
type Handler func(from string, req any, reply func(resp any))

// Client is a caller endpoint: it can address any served name on the
// transport. Implementations are safe for concurrent use.
type Client interface {
	// ID is the endpoint's own name, which receivers see as `from`.
	ID() string
	// Call sends req to the named server and waits for its reply or ctx
	// expiry. The context deadline, when present, is propagated on the
	// wire. No-answer failures are ErrTimeout or ErrLost (matched with
	// errors.Is); backend-specific errors never escape unwrapped.
	Call(ctx context.Context, to string, req any) (any, error)
	// Notify sends req without waiting for — or ever receiving — a reply.
	// Best-effort: a lost notify is silent and must be harmless to the
	// protocol (releases, repairs, lease gossip all are).
	Notify(to string, req any)
	// Close releases the endpoint. Pending calls fail.
	Close()
}

// Server is a serving endpoint returned by Transport.Serve. It can also
// originate fire-and-forget traffic under its own name — DM state machines
// gossip lease-resolution inquiries to peers this way.
type Server interface {
	// ID is the served name.
	ID() string
	// Notify sends a fire-and-forget message from this server's name.
	Notify(to string, req any)
	// Close stops serving: an orderly departure, not a crash. Requests the
	// backend already delivered are served before the handler goes away,
	// so a durable replica's log never misses a release or commit its
	// sender rightly believes delivered. Idempotent.
	Close()
}

// Transport binds names to handlers and hands out caller endpoints. One
// Transport instance is one view of the cluster: the sim network routes by
// registered inbox, the TCP transport by a peer address map plus the
// listeners it opened itself.
type Transport interface {
	// Serve binds id to h and starts serving. The returned Server's Close
	// unbinds it; a later Serve of the same id on the same transport must
	// work (recovery restarts a replica under its old name).
	Serve(id string, h Handler, opts ...ServeOption) (Server, error)
	// Client returns a caller endpoint named id.
	Client(id string) (Client, error)
	// Quiesce blocks until traffic the transport has already accepted has
	// settled, as far as the backend can know: the sim network drains its
	// in-flight messages; TCP waits for delivered-but-unserved requests
	// only, since bytes in flight on a socket cannot be tracked. An
	// orderly Store close calls this before closing replica logs.
	Quiesce()
}

// ServeConfig is the resolved per-server configuration.
type ServeConfig struct {
	// Admission, when non-nil, gives the server a bounded prioritized
	// service queue (see AdmissionConfig) instead of unbounded inline
	// service.
	Admission *AdmissionConfig
}

// A ServeOption configures one Serve call.
type ServeOption func(*ServeConfig)

// WithAdmission bounds and prioritizes the server's service queue.
func WithAdmission(cfg AdmissionConfig) ServeOption {
	return func(c *ServeConfig) { c.Admission = &cfg }
}

// ResolveServeOptions folds opts over the zero ServeConfig; backends call
// it at the top of Serve.
func ResolveServeOptions(opts []ServeOption) ServeConfig {
	var c ServeConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// OverloadHarness is the optional capability interface of servers whose
// admission queue exposes the deterministic harness hooks: hold the
// service loop, inject a seeded burst straight into the queue, resume, and
// read the counters. Both backends' servers implement it when admission is
// armed; harness code type-asserts and degrades gracefully when absent.
type OverloadHarness interface {
	// Overload returns the admission counters (zero without admission).
	Overload() OverloadStats
	// HoldService pauses the service loop: requests keep being admitted
	// (or shed) but none are served until ResumeService.
	HoldService()
	// ResumeService undoes HoldService.
	ResumeService()
	// WaitServiceIdle blocks until the queue is empty and no request is
	// being served. Callers must not hold the service.
	WaitServiceIdle()
	// Inject offers a request straight to the admission queue, bypassing
	// the network, as if it had arrived from `from` with the given
	// deadline. Fire-and-forget: no reply is sent. Reports admission.
	Inject(from string, req any, deadline time.Time) bool
}
