package transport

import (
	"sync"
	"time"
)

// Clock abstracts time for components that must behave deterministically
// under the simulated network: lock leases expire against a Clock, so a
// seeded chaos campaign can advance time explicitly between rounds instead
// of racing wall-clock timers against the scheduler.
type Clock interface {
	Now() time.Time
}

// wallClock reads the real time.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall is the real-time clock; production stores use it.
var Wall Clock = wallClock{}

// ManualClock is a Clock that only moves when told to. Safe for concurrent
// use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a ManualClock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current frozen time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
