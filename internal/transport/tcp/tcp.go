// Package tcp implements the transport seam over real sockets: every served
// name is a TCP listener, every Call one length-prefixed gob frame and its
// reply on a pooled connection. It is the backend that turns a quorum
// cluster into N ordinary OS processes — same protocol code, same envelope
// semantics as the deterministic sim network:
//
//   - Deadlines propagate on the wire (Frame.Deadline), so an
//     overload-protected replica discards requests whose caller gave up.
//   - No-answer failures are the shared typed sentinels: context expiry is
//     transport.ErrTimeout; a refused dial, an unknown peer, or a severed
//     connection is transport.ErrLost. Raw net errors never escape.
//   - Connection loss is the fate feedback this backend supports: every
//     call pending on a broken connection fails with ErrLost the moment the
//     reader sees the break, instead of burning its timeout.
//   - Handlers keep the actor discipline: each server serves on a single
//     goroutine (its dispatch loop, or its admission queue's service
//     goroutine), whatever the connection fan-in.
package tcp

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Compile-time interface conformance.
var (
	_ transport.Transport       = (*Transport)(nil)
	_ transport.Client          = (*Client)(nil)
	_ transport.Server          = (*Server)(nil)
	_ transport.OverloadHarness = (*Server)(nil)
)

// Transport is one process's view of a TCP cluster: a static peer address
// map (other processes' replicas), plus the listeners this process opened
// itself. Names resolve locally first, so a single-process loopback cluster
// needs no peer map at all — Serve on :0 and every Client finds it.
type Transport struct {
	dialTimeout time.Duration

	mu      sync.Mutex
	peers   map[string]string // static name → host:port
	local   map[string]string // names served by this transport → bound addr
	servers map[string]*Server
	callers map[*Client]struct{}
	closed  bool
}

// An Option configures a Transport.
type Option func(*Transport)

// WithPeers installs the static name → "host:port" map. A Serve of a
// mapped name listens on exactly that address; calls to a mapped name not
// served locally dial it. This is how N processes agree on who is where.
func WithPeers(peers map[string]string) Option {
	return func(t *Transport) {
		for id, addr := range peers {
			t.peers[id] = addr
		}
	}
}

// WithDialTimeout bounds connection establishment (default 2s). A Call's
// context deadline still applies on top.
func WithDialTimeout(d time.Duration) Option {
	return func(t *Transport) {
		if d > 0 {
			t.dialTimeout = d
		}
	}
}

// New builds a TCP transport.
func New(opts ...Option) *Transport {
	t := &Transport{
		dialTimeout: 2 * time.Second,
		peers:       map[string]string{},
		local:       map[string]string{},
		servers:     map[string]*Server{},
		callers:     map[*Client]struct{}{},
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// resolve maps a served name to a dialable address: local listeners first,
// then the static peer map.
func (t *Transport) resolve(to string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr, ok := t.local[to]; ok {
		return addr, true
	}
	addr, ok := t.peers[to]
	return addr, ok
}

// Addr returns the bound address of a name served by this transport, or ""
// if it is not served here. Useful when serving on :0 and advertising the
// picked port.
func (t *Transport) Addr(id string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.local[id]
}

// Serve binds id to h on this transport: it listens on the peer-mapped
// address for id, or on a kernel-assigned loopback port when the map has no
// entry. Serving the same id again after its server closed works — that is
// how a recovered replica rejoins under its old name.
func (t *Transport) Serve(id string, h transport.Handler, opts ...transport.ServeOption) (transport.Server, error) {
	cfg := transport.ResolveServeOptions(opts)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: transport closed")
	}
	if _, dup := t.servers[id]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: %q is already served", id)
	}
	addr, mapped := t.peers[id]
	t.mu.Unlock()
	if !mapped {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: serve %q: %w", id, err)
	}
	s := &Server{
		tr:      t,
		id:      id,
		ln:      ln,
		handler: h,
		reqs:    make(chan serverReq, serverBacklog),
		conns:   map[net.Conn]struct{}{},
		routes:  map[routeKey]*srvConn{},
		done:    make(chan struct{}),
		out:     newCaller(t, id),
	}
	s.idle = sync.NewCond(&s.mu)
	if cfg.Admission != nil {
		s.adm = transport.NewQueue(*cfg.Admission, s.serveQueued, s.sendRejection)
	}
	t.mu.Lock()
	t.servers[id] = s
	t.local[id] = ln.Addr().String()
	t.mu.Unlock()
	go s.acceptLoop()
	go s.dispatchLoop()
	return s, nil
}

// Client returns a caller endpoint named id. Connections are dialed lazily,
// one per destination, and redialed after loss.
func (t *Transport) Client(id string) (transport.Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("tcp: transport closed")
	}
	c := &Client{caller: newCaller(t, id)}
	t.callers[c] = struct{}{}
	return c, nil
}

// Quiesce waits until every request this transport's servers have already
// read off their connections has been served. Bytes still in flight on a
// socket cannot be awaited — this is the honest TCP analogue of the sim
// network's drain, and it is weaker: the caller must have stopped issuing
// new work first (an orderly Store close has).
func (t *Transport) Quiesce() {
	t.mu.Lock()
	servers := make([]*Server, 0, len(t.servers))
	for _, s := range t.servers {
		servers = append(servers, s)
	}
	t.mu.Unlock()
	for _, s := range servers {
		s.waitIdle()
	}
}

// Close shuts down every server and caller endpoint. Not part of the
// transport interface — a process-level teardown convenience.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	servers := make([]*Server, 0, len(t.servers))
	for _, s := range t.servers {
		servers = append(servers, s)
	}
	callers := make([]*Client, 0, len(t.callers))
	for c := range t.callers {
		callers = append(callers, c)
	}
	t.mu.Unlock()
	for _, c := range callers {
		c.Close()
	}
	for _, s := range servers {
		s.Close()
	}
}

// dropServer unregisters a closed server. Its resolved address stays in
// t.local: callers that race the shutdown get a refused dial — ErrLost, a
// dead peer — rather than a confusing "unknown peer".
func (t *Transport) dropServer(s *Server) {
	t.mu.Lock()
	if t.servers[s.id] == s {
		delete(t.servers, s.id)
	}
	t.mu.Unlock()
}

// serverBacklog bounds the dispatch channel of a server without admission
// control. A full backlog blocks the connection readers, which is exactly
// TCP's native backpressure.
const serverBacklog = 1024

// lostMarker is delivered on a pending call's channel when its connection
// died: the transport knows no answer is coming.
type lostMarker struct{}

// caller owns this endpoint's outbound connections: at most one per
// destination, dialed lazily, evicted and redialed after loss. Both Client
// endpoints and server-originated Notify traffic use one.
type caller struct {
	tr     *Transport
	id     string
	nextID atomic.Uint64

	mu     sync.Mutex
	conns  map[string]*clientConn
	closed bool
}

func newCaller(t *Transport, id string) *caller {
	return &caller{tr: t, id: id, conns: map[string]*clientConn{}}
}

// clientConn is one pooled outbound connection and the calls pending on it.
type clientConn struct {
	c   net.Conn
	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan any
	dead    bool
}

func (cc *clientConn) write(f Frame) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeFrame(cc.c, f)
}

func (cc *clientConn) addPending(id uint64, ch chan any) {
	cc.mu.Lock()
	cc.pending[id] = ch
	cc.mu.Unlock()
}

func (cc *clientConn) takePending(id uint64) chan any {
	cc.mu.Lock()
	ch := cc.pending[id]
	delete(cc.pending, id)
	cc.mu.Unlock()
	return ch
}

// fail marks the connection dead and delivers the lost fate to every
// pending call — the moment the break is known, not a timeout later.
func (cc *clientConn) fail() {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	pending := cc.pending
	cc.pending = map[uint64]chan any{}
	cc.mu.Unlock()
	cc.c.Close()
	for _, ch := range pending {
		ch <- lostMarker{}
	}
}

// get returns the pooled connection to `to`, dialing if needed.
func (c *caller) get(to string) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("tcp: endpoint %q closed", c.id)
	}
	if cc := c.conns[to]; cc != nil {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	addr, ok := c.tr.resolve(to)
	if !ok {
		return nil, fmt.Errorf("tcp: unknown peer %q", to)
	}
	conn, err := net.DialTimeout("tcp", addr, c.tr.dialTimeout)
	if err != nil {
		// A refused or unreachable dial is a dead peer: the lost fate.
		return nil, transport.ErrLost
	}
	cc := &clientConn{c: conn, pending: map[uint64]chan any{}}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("tcp: endpoint %q closed", c.id)
	}
	if raced := c.conns[to]; raced != nil {
		// Another goroutine dialed first; keep its connection.
		c.mu.Unlock()
		conn.Close()
		return raced, nil
	}
	c.conns[to] = cc
	c.mu.Unlock()
	go c.readLoop(to, cc)
	return cc, nil
}

// evict removes a dead connection from the pool so the next call redials —
// which is how callers ride out a replica restart.
func (c *caller) evict(to string, cc *clientConn) {
	c.mu.Lock()
	if c.conns[to] == cc {
		delete(c.conns, to)
	}
	c.mu.Unlock()
}

// readLoop delivers replies arriving on one connection and turns any read
// failure into the lost fate for every call pending on it.
func (c *caller) readLoop(to string, cc *clientConn) {
	for {
		f, err := readFrame(cc.c)
		if err != nil {
			c.evict(to, cc)
			cc.fail()
			return
		}
		if f.Kind != kindReply {
			continue // a confused peer; replies are all a caller accepts
		}
		if ch := cc.takePending(f.ID); ch != nil {
			ch <- f.Resp
		}
	}
}

// call implements Call for Client (and would for any other caller role).
func (c *caller) call(ctx context.Context, to string, req any) (any, error) {
	cc, err := c.get(to)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch := make(chan any, 1)
	cc.addPending(id, ch)
	f := Frame{Kind: kindCall, ID: id, From: c.id, Req: req}
	if dl, ok := ctx.Deadline(); ok {
		// Deadline propagation: the receiver learns when this caller gives
		// up, so its admission queue can discard the request at dequeue
		// instead of doing work nobody will read.
		f.Deadline = dl
	}
	if err := c.send(to, cc, f); err != nil {
		cc.takePending(id)
		return nil, err
	}
	select {
	case v := <-ch:
		if _, lost := v.(lostMarker); lost {
			return nil, transport.ErrLost
		}
		return v, nil
	case <-ctx.Done():
		cc.takePending(id)
		return nil, transport.ErrTimeout
	}
}

// send writes one frame, mapping transmission failure to the lost fate and
// keeping encode failures (unregistered payload types — a programming
// error) distinct and loud.
func (c *caller) send(to string, cc *clientConn, f Frame) error {
	body, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	cc.wmu.Lock()
	werr := writeBody(cc.c, body)
	cc.wmu.Unlock()
	if werr != nil {
		c.evict(to, cc)
		cc.fail()
		return transport.ErrLost
	}
	return nil
}

// notify sends one fire-and-forget frame, best-effort.
func (c *caller) notify(to string, req any) {
	cc, err := c.get(to)
	if err != nil {
		return
	}
	c.send(to, cc, Frame{Kind: kindNotify, From: c.id, Req: req})
}

func (c *caller) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := c.conns
	c.conns = map[string]*clientConn{}
	c.mu.Unlock()
	for _, cc := range conns {
		cc.fail()
	}
}

// Client is a TCP caller endpoint.
type Client struct {
	*caller
}

// ID returns the endpoint's name, which receivers see as `from`.
func (c *Client) ID() string { return c.caller.id }

// Call sends req to the named server and waits for its reply or ctx expiry.
func (c *Client) Call(ctx context.Context, to string, req any) (any, error) {
	return c.caller.call(ctx, to, req)
}

// Notify sends req without waiting for — or ever receiving — a reply.
func (c *Client) Notify(to string, req any) { c.caller.notify(to, req) }

// Close releases the endpoint; pending calls fail with ErrLost.
func (c *Client) Close() {
	c.caller.close()
	c.caller.tr.mu.Lock()
	delete(c.caller.tr.callers, c)
	c.caller.tr.mu.Unlock()
}

// routeKey addresses the connection owed one reply: caller name + call ID.
type routeKey struct {
	from string
	id   uint64
}

// srvConn wraps one accepted connection with a write lock, so synchronous
// and late (async-handler) replies can interleave safely.
type srvConn struct {
	c   net.Conn
	wmu sync.Mutex
}

func (sc *srvConn) write(f Frame) {
	body, err := EncodeFrame(f)
	if err != nil {
		return // unencodable reply: the caller will time out, loudly
	}
	sc.wmu.Lock()
	writeBody(sc.c, body)
	sc.wmu.Unlock()
}

func writeBody(c net.Conn, body []byte) error {
	var hdr [4]byte
	hdr[0] = byte(len(body) >> 24)
	hdr[1] = byte(len(body) >> 16)
	hdr[2] = byte(len(body) >> 8)
	hdr[3] = byte(len(body))
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(body)
	return err
}

// serverReq is one delivered request on its way to the dispatch loop.
type serverReq struct {
	f  Frame
	sc *srvConn
}

// Server is one served name: a listener, its accepted connections, and a
// single service goroutine (the dispatch loop, or the admission queue's).
type Server struct {
	tr      *Transport
	id      string
	ln      net.Listener
	handler transport.Handler
	adm     *transport.Queue
	reqs    chan serverReq
	out     *caller // server-originated Notify (lease gossip)

	mu       sync.Mutex
	idle     *sync.Cond
	conns    map[net.Conn]struct{}
	routes   map[routeKey]*srvConn
	inflight int // read-off-the-wire but not yet served (non-admission path)
	closed   bool

	readers   sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// ID returns the served name.
func (s *Server) ID() string { return s.id }

// Notify sends a fire-and-forget message under this server's name.
func (s *Server) Notify(to string, req any) { s.out.notify(to, req) }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.readers.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop turns one connection's frames into dispatched requests. Any read
// error — clean close, reset, or a malformed frame — retires the
// connection; the protocol state it carried (pending reply routes) dies
// with it, exactly like a crashed peer.
func (s *Server) readLoop(conn net.Conn) {
	defer s.readers.Done()
	sc := &srvConn{c: conn}
	for {
		f, err := readFrame(conn)
		if err != nil {
			s.retire(conn, sc)
			return
		}
		if f.Kind != kindCall && f.Kind != kindNotify {
			continue
		}
		if s.adm != nil {
			if f.ID != 0 {
				s.addRoute(f.From, f.ID, sc)
			}
			s.adm.Offer(transport.Queued{From: f.From, ID: f.ID, Req: f.Req, Deadline: f.Deadline})
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.retire(conn, sc)
			return
		}
		s.inflight++
		s.mu.Unlock()
		s.reqs <- serverReq{f: f, sc: sc}
	}
}

func (s *Server) retire(conn net.Conn, sc *srvConn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	for k, rc := range s.routes {
		if rc == sc {
			delete(s.routes, k)
		}
	}
	s.mu.Unlock()
}

func (s *Server) addRoute(from string, id uint64, sc *srvConn) {
	s.mu.Lock()
	s.routes[routeKey{from, id}] = sc
	s.mu.Unlock()
}

func (s *Server) takeRoute(from string, id uint64) *srvConn {
	s.mu.Lock()
	sc := s.routes[routeKey{from, id}]
	delete(s.routes, routeKey{from, id})
	s.mu.Unlock()
	return sc
}

// replier builds the reply function for one request: it answers on the
// connection the request arrived on, and is safe to call later from another
// goroutine (async handlers). Fire-and-forget traffic gets a no-op.
func (s *Server) replier(sc *srvConn, id uint64) func(any) {
	if id == 0 {
		return func(any) {}
	}
	return func(resp any) { sc.write(Frame{Kind: kindReply, ID: id, Resp: resp}) }
}

// dispatchLoop is the non-admission single service goroutine. With
// admission it still runs (the queue's goroutine does the serving) but only
// to drain a possible race remainder at close; reqs stays empty.
func (s *Server) dispatchLoop() {
	defer close(s.done)
	for req := range s.reqs {
		s.handler(req.f.From, req.f.Req, s.replier(req.sc, req.f.ID))
		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
}

// serveQueued runs one admitted request through the handler — the admission
// queue's single service goroutine calling in.
func (s *Server) serveQueued(q transport.Queued) {
	reply := func(any) {}
	if q.ID != 0 {
		if sc := s.takeRoute(q.From, q.ID); sc != nil {
			reply = s.replier(sc, q.ID)
		}
	}
	s.handler(q.From, q.Req, reply)
}

// sendRejection transmits an explicit admission rejection to the caller.
func (s *Server) sendRejection(q transport.Queued, resp any) {
	if sc := s.takeRoute(q.From, q.ID); sc != nil {
		sc.write(Frame{Kind: kindReply, ID: q.ID, Resp: resp})
	}
}

// waitIdle blocks until every request already read off a connection has
// been served.
func (s *Server) waitIdle() {
	if s.adm != nil {
		s.adm.WaitIdle()
		return
	}
	s.mu.Lock()
	for s.inflight > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Close stops serving: the listener closes, connections retire, and the
// service goroutine drains every request already dispatched before exiting
// — an orderly departure, not a crash, so a durable replica's log never
// misses a request the transport had already delivered. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		s.ln.Close()
		for _, c := range conns {
			c.Close()
		}
		s.readers.Wait() // no goroutine will send on reqs past this point
		close(s.reqs)
		if s.adm != nil {
			s.adm.Close()
		}
		s.out.close()
		s.tr.dropServer(s)
	})
	<-s.done
}

// Overload returns the admission counters (zero without admission).
func (s *Server) Overload() transport.OverloadStats {
	if s.adm == nil {
		return transport.OverloadStats{}
	}
	return s.adm.Stats()
}

// HoldService pauses the admission service loop; no-op without admission.
func (s *Server) HoldService() {
	if s.adm != nil {
		s.adm.Hold()
	}
}

// ResumeService undoes HoldService.
func (s *Server) ResumeService() {
	if s.adm != nil {
		s.adm.Resume()
	}
}

// WaitServiceIdle blocks until the admission queue is drained.
func (s *Server) WaitServiceIdle() {
	if s.adm != nil {
		s.adm.WaitIdle()
	}
}

// Inject offers a request straight to the admission queue, bypassing the
// sockets — the deterministic burst-harness device. False without
// admission.
func (s *Server) Inject(from string, req any, deadline time.Time) bool {
	if s.adm == nil {
		return false
	}
	return s.adm.Offer(transport.Queued{From: from, ID: 0, Req: req, Deadline: deadline})
}
