package tcp

import (
	"context"
	"encoding/gob"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

type echoReq struct{ N int }
type echoResp struct{ N int }

func init() {
	gob.Register(echoReq{})
	gob.Register(echoResp{})
}

func echo(from string, req any, reply func(any)) {
	reply(echoResp{N: req.(echoReq).N + 1})
}

func TestCallReply(t *testing.T) {
	tr := New()
	defer tr.Close()
	if _, err := tr.Serve("s", echo); err != nil {
		t.Fatal(err)
	}
	c, err := tr.Client("c")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 50; i++ {
		resp, err := c.Call(ctx, "s", echoReq{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.(echoResp).N; got != i+1 {
			t.Fatalf("call %d answered %d", i, got)
		}
	}
}

func TestConcurrentCallsMatchReplies(t *testing.T) {
	tr := New()
	defer tr.Close()
	if _, err := tr.Serve("s", echo); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		go func(n int) {
			resp, err := c.Call(ctx, "s", echoReq{N: n})
			if err != nil {
				errs <- err
				return
			}
			if resp.(echoResp).N != n+1 {
				errs <- errors.New("reply routed to wrong caller")
				return
			}
			errs <- nil
		}(g * 100)
	}
	for g := 0; g < 32; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownPeerFailsTyped(t *testing.T) {
	tr := New()
	defer tr.Close()
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "nobody", echoReq{}); err == nil {
		t.Fatal("call to unknown peer succeeded")
	}
}

func TestDeadPeerIsErrLost(t *testing.T) {
	tr := New()
	defer tr.Close()
	srv, err := tr.Serve("s", echo)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // address stays resolvable; dial is refused
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = c.Call(ctx, "s", echoReq{})
	if !errors.Is(err, transport.ErrLost) {
		t.Fatalf("dead peer gave %v, want ErrLost", err)
	}
}

func TestMidCallConnectionLossIsErrLost(t *testing.T) {
	tr := New()
	defer tr.Close()
	gate := make(chan struct{})
	srv, err := tr.Serve("s", func(from string, req any, reply func(any)) {
		close(gate) // request arrived; never reply
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, "s", echoReq{})
		done <- err
	}()
	<-gate
	srv.Close() // severs the connection under the pending call
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrLost) {
			t.Fatalf("severed call gave %v, want ErrLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call did not fail on connection loss")
	}
}

func TestContextExpiryIsErrTimeout(t *testing.T) {
	tr := New()
	defer tr.Close()
	if _, err := tr.Serve("s", func(from string, req any, reply func(any)) {
		// Never reply; the connection stays healthy.
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "s", echoReq{})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("expired call gave %v, want ErrTimeout", err)
	}
}

// TestDeadlinePropagatesOnWire proves a Call's context deadline rides the
// frame: a request held in an admission queue past its caller's deadline is
// discarded expired-on-arrival at dequeue — which can only happen when the
// receiver knows the deadline.
func TestDeadlinePropagatesOnWire(t *testing.T) {
	tr := New()
	defer tr.Close()
	srv, err := tr.Serve("s", func(from string, req any, reply func(any)) {
		reply(echoResp{})
	}, transport.WithAdmission(transport.AdmissionConfig{Capacity: 8}))
	if err != nil {
		t.Fatal(err)
	}
	oh := srv.(transport.OverloadHarness)
	oh.HoldService()
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, "s", echoReq{}); !errors.Is(err, transport.ErrTimeout) {
		// The held queue cannot answer before the deadline; the caller
		// times out locally while the request waits with its wire deadline.
		t.Fatalf("held call gave %v, want ErrTimeout", err)
	}
	// The offer happens on the reader goroutine; wait for it to land, then
	// let the wire deadline lapse before resuming service.
	deadlineAdmit := time.Now().Add(2 * time.Second)
	for oh.Overload().Admitted == 0 {
		if time.Now().After(deadlineAdmit) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	oh.ResumeService()
	oh.WaitServiceIdle()
	if st := oh.Overload(); st.ExpiredDropped != 1 {
		t.Fatalf("expired-on-arrival = %d, want 1 (deadline did not propagate)", st.ExpiredDropped)
	}
}

func TestServerRestartUnderSameName(t *testing.T) {
	tr := New()
	defer tr.Close()
	srv, err := tr.Serve("s", echo)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "s", echoReq{N: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := tr.Serve("s", echo); err != nil {
		t.Fatalf("re-serve after close: %v", err)
	}
	// The pooled connection died with the old server; the next call must
	// redial and reach the new incarnation.
	var lastErr error
	for i := 0; i < 20; i++ {
		if _, lastErr = c.Call(ctx, "s", echoReq{N: 2}); lastErr == nil {
			return
		}
	}
	t.Fatalf("calls never reached restarted server: %v", lastErr)
}

func TestNotifyReachesServer(t *testing.T) {
	tr := New()
	defer tr.Close()
	got := make(chan int, 1)
	if _, err := tr.Serve("s", func(from string, req any, reply func(any)) {
		got <- req.(echoReq).N
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	c.Notify("s", echoReq{N: 42})
	select {
	case n := <-got:
		if n != 42 {
			t.Fatalf("notify delivered %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notify never delivered")
	}
}

func TestServerToServerNotify(t *testing.T) {
	tr := New()
	defer tr.Close()
	got := make(chan string, 1)
	if _, err := tr.Serve("a", func(from string, req any, reply func(any)) {
		got <- from
	}); err != nil {
		t.Fatal(err)
	}
	b, err := tr.Serve("b", func(from string, req any, reply func(any)) {})
	if err != nil {
		t.Fatal(err)
	}
	b.Notify("a", echoReq{N: 7})
	select {
	case from := <-got:
		if from != "b" {
			t.Fatalf("peer notify arrived from %q, want b", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer notify never delivered")
	}
}

func TestAsyncReplyAfterHandlerReturns(t *testing.T) {
	tr := New()
	defer tr.Close()
	if _, err := tr.Serve("s", func(from string, req any, reply func(any)) {
		go func() {
			time.Sleep(10 * time.Millisecond)
			reply(echoResp{N: 99})
		}()
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Call(ctx, "s", echoReq{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).N != 99 {
		t.Fatalf("async reply = %v", resp)
	}
}

func TestQuiesceWaitsForDispatchedWork(t *testing.T) {
	tr := New()
	defer tr.Close()
	var served atomic.Int64
	if _, err := tr.Serve("s", func(from string, req any, reply func(any)) {
		time.Sleep(time.Millisecond)
		served.Add(1)
		reply(echoResp{})
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Client("c")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 20
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			c.Call(ctx, "s", echoReq{})
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	tr.Quiesce()
	if got := served.Load(); got != n {
		t.Fatalf("after Quiesce served = %d, want %d", got, n)
	}
}

func TestDuplicateServeRejected(t *testing.T) {
	tr := New()
	defer tr.Close()
	if _, err := tr.Serve("s", echo); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Serve("s", echo); err == nil {
		t.Fatal("duplicate serve of a live name succeeded")
	}
}
