package tcp

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"
)

// The wire format is deliberately dumb: every message is one frame, a
// 4-byte big-endian body length followed by a gob-encoded Frame. A fresh
// encoder per frame costs a re-sent type descriptor but makes frames
// self-contained — a reader can join, drop, or replay a stream at any frame
// boundary, and a corrupted frame poisons nothing beyond itself. Concrete
// request/response types carried through the interface fields must be
// gob-registered by the protocol layer (internal/cluster does this in
// wire.go, once, for the WAL and the wire together).

// Frame kinds.
const (
	// kindCall is a request that expects exactly one kindReply with the
	// same ID on the same connection.
	kindCall = 1 + iota
	// kindNotify is fire-and-forget: ID 0, never answered.
	kindNotify
	// kindReply answers one kindCall.
	kindReply
)

// MaxFrame bounds one frame's body. A peer announcing a larger body is
// malformed (or malicious) and fails decoding before any allocation.
const MaxFrame = 8 << 20

// Frame is one wire message. Zero-valued fields are omitted by gob, so a
// reply costs no From/Req/Deadline bytes and a notify no Resp.
type Frame struct {
	Kind     int
	ID       uint64
	From     string
	Req      any
	Resp     any
	Deadline time.Time
}

// DecodeError is the typed failure for any malformed inbound frame: a
// corrupt length prefix, an over-limit announcement, a truncated body, or a
// gob stream that does not decode. It is a decoding verdict, never a panic
// — the fuzz harness holds the codec to that.
type DecodeError struct {
	Reason string
	Err    error // underlying cause, when one exists
}

func (e *DecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("tcp: bad frame: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("tcp: bad frame: %s", e.Reason)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// EncodeFrame serializes one frame body (no length prefix). It fails only
// on unencodable payloads — a concrete type nobody gob-registered — which
// is a programming error surfaced to the caller, not hidden in transit.
func EncodeFrame(f Frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("tcp: encode frame: %w", err)
	}
	if buf.Len() > MaxFrame {
		return nil, fmt.Errorf("tcp: encode frame: body %d exceeds MaxFrame", buf.Len())
	}
	return buf.Bytes(), nil
}

// DecodeFrame reverses EncodeFrame. Every failure is a *DecodeError.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) > MaxFrame {
		return Frame{}, &DecodeError{Reason: fmt.Sprintf("body %d exceeds MaxFrame", len(b))}
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return Frame{}, &DecodeError{Reason: "gob decode", Err: err}
	}
	switch f.Kind {
	case kindCall, kindNotify, kindReply:
	default:
		return Frame{}, &DecodeError{Reason: fmt.Sprintf("unknown frame kind %d", f.Kind)}
	}
	return f, nil
}

// writeFrame writes one length-prefixed frame to w.
func writeFrame(w io.Writer, f Frame) error {
	body, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame from r. io.EOF at a frame
// boundary is returned as-is (a clean connection close); everything else
// malformed is a *DecodeError.
func readFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, &DecodeError{Reason: "short header", Err: err}
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, &DecodeError{Reason: fmt.Sprintf("announced body %d exceeds MaxFrame", n)}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, &DecodeError{Reason: "short body", Err: err}
	}
	return DecodeFrame(body)
}
