package tcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// FuzzEnvelope holds the frame codec to its two contracts: a well-formed
// frame round-trips exactly, and a malformed byte stream — truncated,
// bit-flipped, over-length, or adversarial — produces a typed *DecodeError
// (or a clean io.EOF at a frame boundary), never a panic.
func FuzzEnvelope(f *testing.F) {
	// Seed with real encoded frames of each kind…
	seedFrames := []Frame{
		{Kind: kindCall, ID: 1, From: "client-a", Req: echoReq{N: 7}, Deadline: time.Unix(1700000000, 0).UTC()},
		{Kind: kindNotify, From: "dm0", Req: echoReq{N: -1}},
		{Kind: kindReply, ID: 9, Resp: echoResp{N: 42}},
	}
	for _, fr := range seedFrames {
		body, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
		// …and their length-prefixed stream forms.
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Adversarial seeds: an over-limit length announcement, a lying header.
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrame+1)
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 200, 1, 2, 3}) // announces 200 bytes, ships 3
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeFrame must return a frame or a *DecodeError — no panics,
		// no raw gob errors.
		if fr, err := DecodeFrame(data); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("DecodeFrame error is %T, want *DecodeError: %v", err, err)
			}
		} else {
			// A frame that decodes must re-encode and decode to the same
			// wire meaning. (Payloads are interface values; compare the
			// re-encoded bytes' decodability and the envelope fields.)
			body, err := EncodeFrame(fr)
			if err != nil {
				// Decodable but not re-encodable payloads cannot occur for
				// registered types; gob may accept streams naming types we
				// never registered only by failing at re-encode — that is a
				// decode-side acceptance, not a crash, so tolerate it.
				t.Skip()
			}
			fr2, err := DecodeFrame(body)
			if err != nil {
				t.Fatalf("re-decode of re-encoded frame failed: %v", err)
			}
			if fr2.Kind != fr.Kind || fr2.ID != fr.ID || fr2.From != fr.From || !fr2.Deadline.Equal(fr.Deadline) {
				t.Fatalf("round trip changed envelope: %+v vs %+v", fr, fr2)
			}
		}

		// readFrame over the same bytes as a stream: frame, *DecodeError,
		// or io.EOF — never a panic, never a raw error.
		if _, err := readFrame(bytes.NewReader(data)); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) && !errors.Is(err, io.EOF) {
				t.Fatalf("readFrame error is %T, want *DecodeError or io.EOF: %v", err, err)
			}
		}
	})
}

// TestEnvelopeRoundTrip is the deterministic companion of FuzzEnvelope:
// every frame kind survives the stream codec bit-for-bit in meaning.
func TestEnvelopeRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: kindCall, ID: 3, From: "c", Req: echoReq{N: 5}, Deadline: time.Now().Add(time.Second).Truncate(0)},
		{Kind: kindNotify, From: "dm1", Req: echoReq{N: 0}},
		{Kind: kindReply, ID: 3, Resp: echoResp{N: 6}},
	}
	var buf bytes.Buffer
	for _, fr := range frames {
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || got.From != want.From {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
		if !got.Deadline.Equal(want.Deadline) {
			t.Fatalf("frame %d deadline: %v != %v", i, got.Deadline, want.Deadline)
		}
	}
	if _, err := readFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end gave %v, want io.EOF", err)
	}
}
