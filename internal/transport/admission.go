package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a request's admission class at an overload-protected server.
// The ladder exists so traffic that finishes transactions — and thereby
// frees locks — can never be starved by fresh work: an overloaded replica
// that sheds a new read merely slows one caller, but shedding a commit
// would strand locks the whole cluster is waiting on.
type Priority int

const (
	// PrioRead is fresh read traffic: first to be shed under pressure.
	PrioRead Priority = iota
	// PrioWrite is write-intent traffic. Writes usually belong to
	// transactions already holding locks elsewhere, so under pressure a
	// write may displace a queued read rather than be shed itself.
	PrioWrite
	// PrioControl is must-finish traffic (commit, abort, release, lease,
	// reap): always admitted, never bounded, served first.
	PrioControl
)

// AdmissionConfig bounds and prioritizes a server's service queue. A
// server with an admission config stops serving requests inline on its
// receive path: delivered requests are classified and enqueued (or
// explicitly rejected), and a dedicated service goroutine drains the queue
// highest priority first. Handlers still run on that single goroutine, so
// the actor discipline — server state needs no locking — is preserved.
type AdmissionConfig struct {
	// Capacity bounds the queued PrioRead+PrioWrite requests. Control
	// traffic is exempt. Values below 1 are treated as 1.
	Capacity int
	// Classify maps a request to its priority; nil classifies everything
	// PrioRead.
	Classify func(req any) Priority
	// Reject builds the explicit response for a shed or expired request,
	// so callers learn "overloaded" immediately instead of timing out.
	// Nil (or a nil return) sheds silently; fire-and-forget requests
	// (Notify, envelope ID 0) are always shed without a reply.
	Reject func(req any, expired bool) any
	// Clock drives expired-on-arrival checks against request deadlines.
	// Nil means Wall. Deterministic harnesses pass their manual clock.
	Clock Clock
	// ServiceDelay models the CPU cost of serving one data request (read
	// and write classes). Zero (the default) serves instantly; overload and
	// scale experiments set it so a replica has a finite service rate worth
	// protecting. Control traffic (commit, release, lease renewal) is
	// served free of the delay: its real cost is bookkeeping, and charging
	// it like data work would make lock-release chatter — not data service
	// — the modeled bottleneck.
	ServiceDelay time.Duration
	// ServeExpired, when set, serves expired requests anyway (counting
	// them) instead of discarding them at dequeue — the "dead work"
	// ablation arm of overload experiments. Default off: expired requests
	// are rejected at dequeue without touching the handler.
	ServeExpired bool
	// OnShed, OnExpired and OnDepth are observation hooks, called from the
	// server's receive and service goroutines: shed requests, expired-on-
	// arrival discards, and the bulk queue depth after each admission.
	OnShed    func(req any)
	OnExpired func(req any)
	OnDepth   func(depth int)
}

// OverloadStats are one server's admission counters.
type OverloadStats struct {
	// Admitted counts requests accepted into the service queue.
	Admitted int64
	// Shed counts requests explicitly rejected at admission (queue full).
	Shed int64
	// ExpiredDropped counts admitted requests discarded at dequeue because
	// their deadline had already passed — work that would have been dead.
	ExpiredDropped int64
	// ServedExpired counts expired requests served anyway (only under
	// AdmissionConfig.ServeExpired): the measured dead work of the
	// no-protection ablation.
	ServedExpired int64
}

// Queued is one request offered to an admission queue. ID 0 marks
// fire-and-forget traffic, which is never answered — not even with a
// rejection.
type Queued struct {
	From     string
	ID       uint64
	Req      any
	Deadline time.Time
}

// Queue is the bounded priority queue between a server's receive path and
// its single service goroutine. Both backends use it, so shed counts,
// displacement order, and expiry semantics cannot drift between sim and
// TCP. Construct with NewQueue, feed with Offer, stop with Close.
type Queue struct {
	cfg        AdmissionConfig
	serve      func(Queued)
	sendReject func(q Queued, resp any)
	cond       *sync.Cond

	mu      sync.Mutex
	queues  [PrioControl + 1][]Queued
	bulk    int // queued PrioRead + PrioWrite
	held    bool
	closed  bool
	serving bool

	closeOnce sync.Once
	done      chan struct{}

	admitted       atomic.Int64
	shed           atomic.Int64
	expiredDropped atomic.Int64
	servedExpired  atomic.Int64
}

// NewQueue normalizes cfg and starts the service goroutine. serve runs one
// dequeued request through the owner's handler; sendReject transmits an
// explicit rejection built by cfg.Reject back to the caller (the queue
// decides when one is owed).
func NewQueue(cfg AdmissionConfig, serve func(Queued), sendReject func(q Queued, resp any)) *Queue {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = Wall
	}
	a := &Queue{cfg: cfg, serve: serve, sendReject: sendReject, done: make(chan struct{})}
	a.cond = sync.NewCond(&a.mu)
	go a.serviceLoop()
	return a
}

// queuedLocked returns the total queued requests; callers hold a.mu.
func (a *Queue) queuedLocked() int {
	return a.bulk + len(a.queues[PrioControl])
}

// popLocked removes and returns the highest-priority queued request;
// callers hold a.mu and guarantee the queue is non-empty.
func (a *Queue) popLocked() Queued {
	for pr := PrioControl; pr >= PrioRead; pr-- {
		q := a.queues[pr]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		a.queues[pr] = q[1:]
		if pr != PrioControl {
			a.bulk--
		}
		return head
	}
	panic("transport: popLocked on empty admission queue")
}

// Close wakes the service goroutine for its final drain and waits for it
// to exit: an orderly shutdown serves everything already admitted.
// Idempotent.
func (a *Queue) Close() {
	a.closeOnce.Do(func() {
		a.mu.Lock()
		a.closed = true
		a.cond.Broadcast()
		a.mu.Unlock()
	})
	<-a.done
}

// Offer classifies and enqueues one request, shedding under pressure.
// Returns whether the request entered the queue. Safe to call from any
// goroutine (receive loops, harness Inject).
func (a *Queue) Offer(q Queued) bool {
	pr := a.classify(q.Req)
	var displaced *Queued
	admitted := true
	a.mu.Lock()
	switch {
	case pr == PrioControl:
		a.queues[PrioControl] = append(a.queues[PrioControl], q)
	case a.bulk < a.cfg.Capacity:
		a.queues[pr] = append(a.queues[pr], q)
		a.bulk++
	case pr == PrioWrite && len(a.queues[PrioRead]) > 0:
		// Full, but a write outranks queued reads: shed the newest queued
		// read (it has waited least) and admit the write in its place.
		reads := a.queues[PrioRead]
		d := reads[len(reads)-1]
		a.queues[PrioRead] = reads[:len(reads)-1]
		displaced = &d
		a.queues[PrioWrite] = append(a.queues[PrioWrite], q)
	default:
		admitted = false
	}
	depth := a.bulk
	a.cond.Broadcast()
	a.mu.Unlock()
	if admitted {
		a.admitted.Add(1)
		if a.cfg.OnDepth != nil {
			a.cfg.OnDepth(depth)
		}
	}
	if displaced != nil {
		a.reject(*displaced, false)
	}
	if !admitted {
		a.reject(q, false)
	}
	return admitted
}

// reject counts a shed or expired request and, for calls that expect an
// answer, sends the explicit rejection so the caller fails fast instead of
// burning its timeout.
func (a *Queue) reject(q Queued, expired bool) {
	if expired {
		a.expiredDropped.Add(1)
		if a.cfg.OnExpired != nil {
			a.cfg.OnExpired(q.Req)
		}
	} else {
		a.shed.Add(1)
		if a.cfg.OnShed != nil {
			a.cfg.OnShed(q.Req)
		}
	}
	if q.ID == 0 || a.cfg.Reject == nil || a.sendReject == nil {
		return
	}
	if resp := a.cfg.Reject(q.Req, expired); resp != nil {
		a.sendReject(q, resp)
	}
}

// serviceLoop drains the queue highest priority first. Requests whose
// deadline passed while they queued are discarded at dequeue — "expired on
// arrival" — so an overloaded replica never spends its service capacity on
// work whose caller already gave up.
func (a *Queue) serviceLoop() {
	defer close(a.done)
	for {
		a.mu.Lock()
		for !a.closed && (a.held || a.queuedLocked() == 0) {
			a.cond.Wait()
		}
		if a.queuedLocked() == 0 {
			// Closed and drained.
			a.mu.Unlock()
			return
		}
		q := a.popLocked()
		a.serving = true
		a.mu.Unlock()

		if !q.Deadline.IsZero() && a.cfg.Clock.Now().After(q.Deadline) {
			if a.cfg.ServeExpired {
				a.servedExpired.Add(1)
				a.serveOne(q)
			} else {
				a.reject(q, true)
			}
		} else {
			a.serveOne(q)
		}

		a.mu.Lock()
		a.serving = false
		if a.queuedLocked() == 0 {
			a.cond.Broadcast() // wake WaitIdle
		}
		a.mu.Unlock()
	}
}

// serveOne runs one dequeued request through the owner's handler, charging
// the configured service delay first for data-class requests.
func (a *Queue) serveOne(q Queued) {
	if d := a.cfg.ServiceDelay; d > 0 && a.classify(q.Req) != PrioControl {
		time.Sleep(d)
	}
	a.serve(q)
}

// classify maps a request to its priority per the configured classifier.
func (a *Queue) classify(req any) Priority {
	if a.cfg.Classify != nil {
		return a.cfg.Classify(req)
	}
	return PrioRead
}

// Stats returns the queue's admission counters.
func (a *Queue) Stats() OverloadStats {
	return OverloadStats{
		Admitted:       a.admitted.Load(),
		Shed:           a.shed.Load(),
		ExpiredDropped: a.expiredDropped.Load(),
		ServedExpired:  a.servedExpired.Load(),
	}
}

// Hold pauses the service goroutine: offered requests keep being admitted
// (or shed) but none are served until Resume. A harness device —
// deterministic overload campaigns hold a replica, offer a seeded burst
// against the bounded queue, and resume, so the shed and expiry counts are
// a pure function of the burst.
func (a *Queue) Hold() {
	a.mu.Lock()
	a.held = true
	a.mu.Unlock()
}

// Resume undoes Hold.
func (a *Queue) Resume() {
	a.mu.Lock()
	a.held = false
	a.cond.Broadcast()
	a.mu.Unlock()
}

// WaitIdle blocks until the queue is empty and no request is being served.
// Callers must not hold the service (Resume first).
func (a *Queue) WaitIdle() {
	a.mu.Lock()
	for !a.closed && (a.queuedLocked() > 0 || a.serving) {
		a.cond.Wait()
	}
	a.mu.Unlock()
}
