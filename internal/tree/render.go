package tree

import (
	"fmt"
	"strings"
)

// Render draws the transaction tree as ASCII art, labeling nodes in the
// paper's Figure 1/Figure 2 style: U for user transactions, TM kinds for
// transaction managers, and the object name for accesses.
func (t *Tree) Render() string {
	var b strings.Builder
	var rec func(n *Node, prefix string, last bool)
	rec = func(n *Node, prefix string, last bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if n.parent == nil {
			connector, childPrefix = "", ""
		}
		b.WriteString(prefix + connector + label(n) + "\n")
		kids := n.children
		for i, c := range kids {
			rec(c, childPrefix, i == len(kids)-1)
		}
	}
	rec(t.root, "", true)
	return b.String()
}

// label renders one node in the figure style.
func label(n *Node) string {
	short := string(n.name)
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	switch n.kind {
	case KindRoot:
		return "T0 (root)"
	case KindUser:
		return fmt.Sprintf("U:%s", short)
	case KindReadTM:
		return fmt.Sprintf("read-TM:%s [item %s]", short, n.Item)
	case KindWriteTM:
		return fmt.Sprintf("write-TM:%s [item %s := %v]", short, n.Item, n.Data)
	case KindReconfigTM:
		return fmt.Sprintf("reconfigure-TM:%s [item %s]", short, n.Item)
	case KindCoordinator:
		return fmt.Sprintf("coordinator:%s [item %s]", short, n.Item)
	case KindAccess:
		return fmt.Sprintf("%s access %s → %s", n.Access, short, n.Object)
	default:
		return short
	}
}
