package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

func buildSample(t *testing.T) *Tree {
	t.Helper()
	tr := New()
	u1 := tr.MustAddChild(Root, "u1", KindUser)
	u2 := tr.MustAddChild(Root, "u2", KindUser)
	tm := tr.MustAddChild(u1.Name(), "r", KindReadTM)
	a := tr.MustAddChild(tm.Name(), "a1", KindAccess)
	a.Object = "x1"
	a.Access = ReadAccess
	b := tr.MustAddChild(u2.Name(), "w", KindAccess)
	b.Object = "obj"
	b.Access = WriteAccess
	return tr
}

func TestTreeStructure(t *testing.T) {
	tr := buildSample(t)
	if tr.Len() != 6 {
		t.Errorf("Len = %d", tr.Len())
	}
	if p, ok := tr.Parent("T0/u1/r"); !ok || p != "T0/u1" {
		t.Errorf("Parent = %v %v", p, ok)
	}
	if _, ok := tr.Parent(Root); ok {
		t.Error("root has no parent")
	}
	if got := tr.Children(Root); len(got) != 2 {
		t.Errorf("Children(root) = %v", got)
	}
	if sib := tr.Siblings("T0/u1"); len(sib) != 1 || sib[0] != "T0/u2" {
		t.Errorf("Siblings = %v", sib)
	}
	if d := tr.Depth("T0/u1/r/a1"); d != 3 {
		t.Errorf("Depth = %d", d)
	}
	if d := tr.Depth("nope"); d != -1 {
		t.Errorf("Depth(unknown) = %d", d)
	}
}

func TestAncestryAndLCA(t *testing.T) {
	tr := buildSample(t)
	if !tr.IsAncestor("T0", "T0/u1/r/a1") {
		t.Error("root is everyone's ancestor")
	}
	if !tr.IsAncestor("T0/u1/r", "T0/u1/r") {
		t.Error("a transaction is its own ancestor")
	}
	if tr.IsAncestor("T0/u1/r/a1", "T0/u1") {
		t.Error("descendant is not ancestor")
	}
	if tr.IsAncestor("T0/u1", "T0/u2") {
		t.Error("siblings are not ancestors")
	}
	if lca := tr.LCA("T0/u1/r/a1", "T0/u2/w"); lca != "T0" {
		t.Errorf("LCA = %v", lca)
	}
	if lca := tr.LCA("T0/u1/r", "T0/u1/r/a1"); lca != "T0/u1/r" {
		t.Errorf("LCA = %v", lca)
	}
}

func TestAddChildValidation(t *testing.T) {
	tr := buildSample(t)
	if _, err := tr.AddChild("nope", "x", KindUser); err == nil {
		t.Error("unknown parent must fail")
	}
	if _, err := tr.AddChild(Root, "u1", KindUser); err == nil {
		t.Error("duplicate name must fail")
	}
	if _, err := tr.AddChild(Root, "a/b", KindUser); err == nil {
		t.Error("label with slash must fail")
	}
	if _, err := tr.AddChild(Root, "", KindUser); err == nil {
		t.Error("empty label must fail")
	}
	if _, err := tr.AddChild("T0/u1/r/a1", "c", KindUser); err == nil {
		t.Error("accesses are leaves; children must fail")
	}
}

func TestAccessesAndObjects(t *testing.T) {
	tr := buildSample(t)
	if got := tr.Objects(); len(got) != 2 || got[0] != "obj" || got[1] != "x1" {
		t.Errorf("Objects = %v", got)
	}
	if got := tr.AccessesTo("x1"); len(got) != 1 || got[0].Name() != "T0/u1/r/a1" {
		t.Errorf("AccessesTo = %v", got)
	}
	if got := tr.Accesses(); len(got) != 2 {
		t.Errorf("Accesses = %v", got)
	}
}

func TestWalkOrder(t *testing.T) {
	tr := buildSample(t)
	var names []ioa.TxnName
	tr.Walk(func(n *Node) { names = append(names, n.Name()) })
	if names[0] != Root {
		t.Error("walk must start at the root")
	}
	seen := map[ioa.TxnName]bool{Root: true}
	for _, n := range names[1:] {
		p, _ := tr.Parent(n)
		if !seen[p] {
			t.Errorf("node %v visited before its parent", n)
		}
		seen[n] = true
	}
	if len(names) != tr.Len() {
		t.Errorf("walk visited %d of %d", len(names), tr.Len())
	}
}

func TestExtension(t *testing.T) {
	small := New()
	small.MustAddChild(Root, "u", KindUser)
	big := New()
	big.MustAddChild(Root, "u", KindUser)
	big.MustAddChild("T0/u", "c", KindAccess)
	if !big.IsExtensionOf(small) {
		t.Error("big extends small")
	}
	if small.IsExtensionOf(big) {
		t.Error("small does not extend big")
	}
	// Same name, different parent: not an extension.
	other := New()
	other.MustAddChild(Root, "v", KindUser)
	other.MustAddChild("T0/v", "u", KindUser)
	if other.IsExtensionOf(small) {
		t.Error("differently-parented name must break extension")
	}
}

// TestRandomTreeProperties exercises structural invariants on random trees
// via testing/quick.
func TestRandomTreeProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		nodes := []ioa.TxnName{Root}
		for i := 0; i < 40; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			if tr.Node(parent).Kind() == KindAccess {
				continue
			}
			kind := KindUser
			if rng.Float64() < 0.3 {
				kind = KindAccess
			}
			n, err := tr.AddChild(parent, string(rune('a'+i%26))+strings.Repeat("x", i/26), kind)
			if err != nil {
				return false
			}
			nodes = append(nodes, n.Name())
		}
		// Invariants: every node's LCA with an ancestor is the ancestor;
		// depth increases by one from parent to child; sibling lists
		// exclude self.
		for _, n := range nodes {
			if p, ok := tr.Parent(n); ok {
				if tr.LCA(p, n) != p {
					return false
				}
				if tr.Depth(n) != tr.Depth(p)+1 {
					return false
				}
			}
			for _, s := range tr.Siblings(n) {
				if s == n {
					return false
				}
			}
			if !tr.IsAncestor(Root, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTxnWellFormed(t *testing.T) {
	tr := New()
	tr.MustAddChild(Root, "u", KindUser)
	tr.MustAddChild("T0/u", "c", KindUser)
	u := ioa.TxnName("T0/u")
	c := ioa.TxnName("T0/u/c")

	good := ioa.Schedule{
		ioa.Create(u),
		ioa.RequestCreate(c),
		ioa.Commit(c, 1),
		ioa.RequestCommit(u, 2),
	}
	if err := tr.CheckTxnWellFormed(u, good); err != nil {
		t.Errorf("good sequence rejected: %v", err)
	}

	bad := []struct {
		name string
		seq  ioa.Schedule
	}{
		{"duplicate create", ioa.Schedule{ioa.Create(u), ioa.Create(u)}},
		{"return before request", ioa.Schedule{ioa.Create(u), ioa.Commit(c, 1)}},
		{"duplicate return", ioa.Schedule{ioa.Create(u), ioa.RequestCreate(c), ioa.Commit(c, 1), ioa.Abort(c)}},
		{"request before create", ioa.Schedule{ioa.RequestCreate(c)}},
		{"request after commit", ioa.Schedule{ioa.Create(u), ioa.RequestCommit(u, nil), ioa.RequestCreate(c)}},
		{"double request-commit", ioa.Schedule{ioa.Create(u), ioa.RequestCommit(u, nil), ioa.RequestCommit(u, nil)}},
		{"duplicate request-create", ioa.Schedule{ioa.Create(u), ioa.RequestCreate(c), ioa.RequestCreate(c)}},
	}
	for _, tc := range bad {
		if err := tr.CheckTxnWellFormed(u, tc.seq); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCheckObjectWellFormed(t *testing.T) {
	tr := New()
	tm := tr.MustAddChild(Root, "u", KindUser)
	a1 := tr.MustAddChild(tm.Name(), "a1", KindAccess)
	a1.Object = "x"
	a2 := tr.MustAddChild(tm.Name(), "a2", KindAccess)
	a2.Object = "x"

	good := ioa.Schedule{
		ioa.Create(a1.Name()), ioa.RequestCommit(a1.Name(), 1),
		ioa.Create(a2.Name()), ioa.RequestCommit(a2.Name(), 1),
	}
	if err := tr.CheckObjectWellFormed("x", good); err != nil {
		t.Errorf("good object sequence rejected: %v", err)
	}
	bad := []struct {
		name string
		seq  ioa.Schedule
	}{
		{"create while pending", ioa.Schedule{ioa.Create(a1.Name()), ioa.Create(a2.Name())}},
		{"commit without create", ioa.Schedule{ioa.RequestCommit(a1.Name(), 1)}},
		{"duplicate create", ioa.Schedule{
			ioa.Create(a1.Name()), ioa.RequestCommit(a1.Name(), 1), ioa.Create(a1.Name()),
		}},
		{"mismatched commit", ioa.Schedule{ioa.Create(a1.Name()), ioa.RequestCommit(a2.Name(), 1)}},
	}
	for _, tc := range bad {
		if err := tr.CheckObjectWellFormed("x", tc.seq); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestOrphans(t *testing.T) {
	tr := New()
	tr.MustAddChild(Root, "u", KindUser)
	tr.MustAddChild("T0/u", "c", KindUser)
	tr.MustAddChild("T0/u/c", "d", KindAccess)
	sched := ioa.Schedule{ioa.Abort("T0/u/c")}
	orphans := tr.Orphans(sched)
	if !orphans["T0/u/c"] || !orphans["T0/u/c/d"] {
		t.Errorf("orphans = %v", orphans)
	}
	if orphans["T0/u"] || orphans[Root] {
		t.Error("ancestors of the aborted transaction are not orphans")
	}
}

func TestRenderContainsAllNodes(t *testing.T) {
	tr := buildSample(t)
	out := tr.Render()
	for _, frag := range []string{"T0 (root)", "U:u1", "U:u2", "read-TM:r", "read access a1 → x1", "write access w → obj"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindRoot: "root", KindUser: "user", KindReadTM: "read-TM",
		KindWriteTM: "write-TM", KindReconfigTM: "reconfigure-TM",
		KindCoordinator: "coordinator", KindAccess: "access",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
	if ReadAccess.String() != "read" || WriteAccess.String() != "write" {
		t.Error("access kind strings")
	}
}
