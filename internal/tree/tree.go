// Package tree implements system types for nested transaction systems
// (paper Section 2.2): the transaction tree (T, parent), the partition O of
// accesses into objects, and the extension relation between system types
// used to relate replicated and non-replicated systems (Section 2.3).
package tree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ioa"
)

// Root is the name of the root transaction T0, which models the external
// environment. It may neither commit nor abort.
const Root ioa.TxnName = "T0"

// Kind classifies a transaction node.
type Kind int

// Transaction kinds. User transactions are the non-access transactions that
// do not model part of the replication algorithm; TMs are the read-, write-
// and reconfigure- transaction managers; coordinators are the extra nesting
// level of Section 4; accesses are the leaves.
const (
	KindRoot Kind = iota + 1
	KindUser
	KindReadTM
	KindWriteTM
	KindReconfigTM
	KindCoordinator
	KindAccess
)

// String returns a short label for the kind.
func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindUser:
		return "user"
	case KindReadTM:
		return "read-TM"
	case KindWriteTM:
		return "write-TM"
	case KindReconfigTM:
		return "reconfigure-TM"
	case KindCoordinator:
		return "coordinator"
	case KindAccess:
		return "access"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AccessKind distinguishes read and write accesses to read-write objects.
type AccessKind int

// Access kinds for read-write objects (paper Section 2.3).
const (
	ReadAccess AccessKind = iota + 1
	WriteAccess
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	if k == ReadAccess {
		return "read"
	}
	return "write"
}

// Node is one transaction in the tree.
type Node struct {
	name     ioa.TxnName
	kind     Kind
	parent   *Node
	children []*Node

	// Object is the object the access belongs to (accesses only). For
	// replica accesses this is the DM name; for non-replica accesses the
	// basic object name.
	Object string
	// Access is the access kind (accesses only, read-write objects).
	Access AccessKind
	// Item is the logical data item the node serves (TMs, coordinators and
	// replica accesses); empty for user transactions and non-replica
	// accesses.
	Item string
	// Data is kind(T)-dependent payload: for write accesses, data(T) (the
	// value to be written, possibly bound at REQUEST-CREATE time); for
	// write-TMs, value(T); for reconfigure-TMs, the new configuration.
	Data ioa.Value
}

// Name returns the transaction's name.
func (n *Node) Name() ioa.TxnName { return n.name }

// Kind returns the node's kind.
func (n *Node) Kind() Kind { return n.kind }

// Parent returns the parent node, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children in insertion order.
func (n *Node) Children() []*Node { return append([]*Node(nil), n.children...) }

// IsAccess reports whether the node is a leaf access.
func (n *Node) IsAccess() bool { return n.kind == KindAccess }

// Tree is a finite transaction tree. The paper's tree is conceptually
// infinite — a naming scheme for all transactions that might ever be
// invoked — but any finite execution touches only finitely many names, so
// each scenario instantiates the finite subtree it can use.
type Tree struct {
	root   *Node
	byName map[ioa.TxnName]*Node
}

// New returns a tree containing only the root transaction T0.
func New() *Tree {
	root := &Node{name: Root, kind: KindRoot}
	return &Tree{root: root, byName: map[ioa.TxnName]*Node{Root: root}}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Node returns the node with the given name, or nil.
func (t *Tree) Node(name ioa.TxnName) *Node { return t.byName[name] }

// Contains reports whether name is a transaction of this tree.
func (t *Tree) Contains(name ioa.TxnName) bool { return t.byName[name] != nil }

// Len returns the number of transactions in the tree.
func (t *Tree) Len() int { return len(t.byName) }

// Names returns all transaction names, sorted.
func (t *Tree) Names() []ioa.TxnName {
	out := make([]ioa.TxnName, 0, len(t.byName))
	for n := range t.byName {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddChild inserts a new node under parent and returns it. The child's name
// is parent's name + "/" + label.
func (t *Tree) AddChild(parent ioa.TxnName, label string, kind Kind) (*Node, error) {
	p := t.byName[parent]
	if p == nil {
		return nil, fmt.Errorf("tree: unknown parent %q", parent)
	}
	if p.kind == KindAccess {
		return nil, fmt.Errorf("tree: access %q cannot have children", parent)
	}
	if strings.ContainsRune(label, '/') || label == "" {
		return nil, fmt.Errorf("tree: invalid label %q", label)
	}
	name := parent + "/" + ioa.TxnName(label)
	if t.byName[name] != nil {
		return nil, fmt.Errorf("tree: duplicate transaction %q", name)
	}
	n := &Node{name: name, kind: kind, parent: p}
	p.children = append(p.children, n)
	t.byName[name] = n
	return n, nil
}

// MustAddChild is AddChild that panics on error; for use by builders with
// programmatically generated, collision-free labels.
func (t *Tree) MustAddChild(parent ioa.TxnName, label string, kind Kind) *Node {
	n, err := t.AddChild(parent, label, kind)
	if err != nil {
		panic(err)
	}
	return n
}

// Parent returns the parent of name and whether name has one (the root and
// unknown names do not).
func (t *Tree) Parent(name ioa.TxnName) (ioa.TxnName, bool) {
	n := t.byName[name]
	if n == nil || n.parent == nil {
		return "", false
	}
	return n.parent.name, true
}

// ParentFn returns the parent function in the form used by
// ioa.Schedule.OpsFor.
func (t *Tree) ParentFn() func(ioa.TxnName) (ioa.TxnName, bool) {
	return t.Parent
}

// Children returns the names of name's children.
func (t *Tree) Children(name ioa.TxnName) []ioa.TxnName {
	n := t.byName[name]
	if n == nil {
		return nil
	}
	out := make([]ioa.TxnName, len(n.children))
	for i, c := range n.children {
		out[i] = c.name
	}
	return out
}

// Siblings returns the names of name's siblings (excluding name itself).
func (t *Tree) Siblings(name ioa.TxnName) []ioa.TxnName {
	n := t.byName[name]
	if n == nil || n.parent == nil {
		return nil
	}
	out := make([]ioa.TxnName, 0, len(n.parent.children)-1)
	for _, c := range n.parent.children {
		if c.name != name {
			out = append(out, c.name)
		}
	}
	return out
}

// IsAncestor reports whether a is an ancestor of b. Per the paper, a
// transaction is its own ancestor.
func (t *Tree) IsAncestor(a, b ioa.TxnName) bool {
	n := t.byName[b]
	for n != nil {
		if n.name == a {
			return true
		}
		n = n.parent
	}
	return false
}

// LCA returns the least common ancestor of a and b, or "" if either name is
// unknown.
func (t *Tree) LCA(a, b ioa.TxnName) ioa.TxnName {
	na, nb := t.byName[a], t.byName[b]
	if na == nil || nb == nil {
		return ""
	}
	seen := map[ioa.TxnName]bool{}
	for n := na; n != nil; n = n.parent {
		seen[n.name] = true
	}
	for n := nb; n != nil; n = n.parent {
		if seen[n.name] {
			return n.name
		}
	}
	return ""
}

// Depth returns the number of edges from the root to name (root has depth
// 0), or -1 for unknown names.
func (t *Tree) Depth(name ioa.TxnName) int {
	n := t.byName[name]
	if n == nil {
		return -1
	}
	d := 0
	for n.parent != nil {
		d++
		n = n.parent
	}
	return d
}

// Accesses returns all leaf access nodes, sorted by name. Together with the
// Object field this realizes the partition O of the system type.
func (t *Tree) Accesses() []*Node {
	var out []*Node
	for _, n := range t.byName {
		if n.kind == KindAccess {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// AccessesTo returns the access nodes of the given object, sorted by name.
func (t *Tree) AccessesTo(object string) []*Node {
	var out []*Node
	for _, n := range t.byName {
		if n.kind == KindAccess && n.Object == object {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Objects returns the distinct object names accessed in the tree, sorted.
func (t *Tree) Objects() []string {
	set := map[string]bool{}
	for _, n := range t.byName {
		if n.kind == KindAccess && n.Object != "" {
			set[n.Object] = true
		}
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Walk visits every node in depth-first order, parents before children.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// IsExtensionOf reports whether t's transaction tree extends other's: every
// transaction of other appears in t with the same parent, and the trees
// share the root (paper Section 2.3). When true, the identity mapping on
// names is the T_{other,t} correspondence.
func (t *Tree) IsExtensionOf(other *Tree) bool {
	for name, n := range other.byName {
		m := t.byName[name]
		if m == nil {
			return false
		}
		switch {
		case n.parent == nil && m.parent != nil,
			n.parent != nil && m.parent == nil,
			n.parent != nil && m.parent != nil && n.parent.name != m.parent.name:
			return false
		}
	}
	return true
}
