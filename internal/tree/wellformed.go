package tree

import (
	"fmt"

	"repro/internal/ioa"
)

// CheckTxnWellFormed verifies that seq is a well-formed sequence of
// operations of transaction t, per the recursive definition in Section 2.2:
//
//   - CREATE(t) occurs at most once;
//   - COMMIT(t',v)/ABORT(t') only for children t' whose REQUEST-CREATE(t')
//     appeared earlier and that have no earlier return operation;
//   - REQUEST-CREATE(t') at most once per child, only after CREATE(t) and
//     never after a REQUEST-COMMIT for t;
//   - REQUEST-COMMIT for t at most once, only after CREATE(t).
//
// seq must already be projected onto t (e.g. via Schedule.OpsFor).
func (t *Tree) CheckTxnWellFormed(txn ioa.TxnName, seq ioa.Schedule) error {
	created := false
	committed := false // REQUEST-COMMIT for txn seen
	requested := map[ioa.TxnName]bool{}
	returned := map[ioa.TxnName]bool{}
	for i, op := range seq {
		switch op.Kind {
		case ioa.OpCreate:
			if op.Txn != txn {
				return fmt.Errorf("op %d: CREATE for foreign transaction %v", i, op.Txn)
			}
			if created {
				return fmt.Errorf("op %d: duplicate CREATE(%v)", i, txn)
			}
			created = true
		case ioa.OpCommit, ioa.OpAbort:
			if p, ok := t.Parent(op.Txn); !ok || p != txn {
				return fmt.Errorf("op %d: return for non-child %v", i, op.Txn)
			}
			if !requested[op.Txn] {
				return fmt.Errorf("op %d: return for %v before REQUEST-CREATE", i, op.Txn)
			}
			if returned[op.Txn] {
				return fmt.Errorf("op %d: duplicate return for %v", i, op.Txn)
			}
			returned[op.Txn] = true
		case ioa.OpRequestCreate:
			if p, ok := t.Parent(op.Txn); !ok || p != txn {
				return fmt.Errorf("op %d: REQUEST-CREATE for non-child %v", i, op.Txn)
			}
			if requested[op.Txn] {
				return fmt.Errorf("op %d: duplicate REQUEST-CREATE(%v)", i, op.Txn)
			}
			if committed {
				return fmt.Errorf("op %d: REQUEST-CREATE(%v) after REQUEST-COMMIT of %v", i, op.Txn, txn)
			}
			if !created {
				return fmt.Errorf("op %d: REQUEST-CREATE(%v) before CREATE(%v)", i, op.Txn, txn)
			}
			requested[op.Txn] = true
		case ioa.OpRequestCommit:
			if op.Txn != txn {
				return fmt.Errorf("op %d: REQUEST-COMMIT for foreign transaction %v", i, op.Txn)
			}
			if committed {
				return fmt.Errorf("op %d: duplicate REQUEST-COMMIT of %v", i, txn)
			}
			if !created {
				return fmt.Errorf("op %d: REQUEST-COMMIT before CREATE(%v)", i, txn)
			}
			committed = true
		default:
			return fmt.Errorf("op %d: unknown kind %v", i, op.Kind)
		}
	}
	return nil
}

// CheckObjectWellFormed verifies that seq is a well-formed sequence of
// operations of a basic object: alternating CREATE / REQUEST-COMMIT
// operations starting with a CREATE, each pair for the same access, each
// access created at most once (Section 2.2).
//
// seq must already be projected onto the object's accesses.
func (t *Tree) CheckObjectWellFormed(object string, seq ioa.Schedule) error {
	var pending ioa.TxnName
	created := map[ioa.TxnName]bool{}
	for i, op := range seq {
		n := t.Node(op.Txn)
		if n == nil || n.kind != KindAccess || n.Object != object {
			return fmt.Errorf("op %d: %v is not an access to %s", i, op.Txn, object)
		}
		switch op.Kind {
		case ioa.OpCreate:
			if created[op.Txn] {
				return fmt.Errorf("op %d: duplicate CREATE(%v)", i, op.Txn)
			}
			if pending != "" {
				return fmt.Errorf("op %d: CREATE(%v) while %v is pending", i, op.Txn, pending)
			}
			created[op.Txn] = true
			pending = op.Txn
		case ioa.OpRequestCommit:
			if pending != op.Txn {
				return fmt.Errorf("op %d: REQUEST-COMMIT(%v) but pending access is %q", i, op.Txn, pending)
			}
			pending = ""
		default:
			return fmt.Errorf("op %d: operation %v is not an object operation", i, op)
		}
	}
	return nil
}

// CheckScheduleWellFormed verifies that every transaction projection and
// every basic-object projection of sched is well-formed. Per [16] all
// schedules of serial systems are well-formed; this checker is used to
// validate that property empirically and to vet hand-built sequences.
func (t *Tree) CheckScheduleWellFormed(sched ioa.Schedule) error {
	for _, name := range t.Names() {
		n := t.Node(name)
		if n.kind == KindAccess {
			continue
		}
		if err := t.CheckTxnWellFormed(name, sched.OpsFor(name, t.Parent)); err != nil {
			return fmt.Errorf("transaction %v: %w", name, err)
		}
	}
	for _, obj := range t.Objects() {
		proj := sched.Filter(func(op ioa.Op) bool {
			n := t.Node(op.Txn)
			if n == nil || n.kind != KindAccess || n.Object != obj {
				return false
			}
			return op.Kind == ioa.OpCreate || op.Kind == ioa.OpRequestCommit
		})
		if err := t.CheckObjectWellFormed(obj, proj); err != nil {
			return fmt.Errorf("object %s: %w", obj, err)
		}
	}
	return nil
}

// Orphans returns the transactions that are orphans in sched: T is an
// orphan if ABORT(T') occurs in sched for some ancestor T' of T (footnote
// 4 of the paper).
func (t *Tree) Orphans(sched ioa.Schedule) map[ioa.TxnName]bool {
	aborted := map[ioa.TxnName]bool{}
	for _, op := range sched {
		if op.Kind == ioa.OpAbort {
			aborted[op.Txn] = true
		}
	}
	orphans := map[ioa.TxnName]bool{}
	var rec func(n *Node, orphan bool)
	rec = func(n *Node, orphan bool) {
		orphan = orphan || aborted[n.name]
		if orphan {
			orphans[n.name] = true
		}
		for _, c := range n.children {
			rec(c, orphan)
		}
	}
	rec(t.root, false)
	return orphans
}
