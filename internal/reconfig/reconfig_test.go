package reconfig

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// scenario returns a reconfigurable spec: one item on 5 DMs starting as
// majority, reconfigurable to read-one/write-all and back; nested user
// transactions doing reads and writes.
func scenario() Spec {
	dms := []string{"d1", "d2", "d3", "d4", "d5"}
	coreSpec := core.Spec{
		Items: []core.ItemSpec{{
			Name:    "x",
			Initial: 0,
			DMs:     dms,
			Config:  quorum.Majority(dms),
		}},
		Top: []core.TxnSpec{
			core.Sub("u1", core.WriteItem("w1", "x", 100), core.ReadItem("r1", "x")),
			core.Sub("u2",
				core.Sub("s", core.WriteItem("w2", "x", 200)),
				core.ReadItem("r2", "x"),
			),
			core.Sub("u3", core.ReadItem("r3", "x"), core.WriteItem("w3", "x", 300)),
		},
	}
	return Spec{
		Core: coreSpec,
		NewConfigs: map[string][]quorum.Config{
			"x": {quorum.ReadOneWriteAll(dms), quorum.Majority(dms)},
		},
		ReconfigsPerUser: 2,
	}
}

func drive(t *testing.T, b *SystemB, seed int64, abortWeight float64) ioa.Schedule {
	t.Helper()
	d := ioa.NewDriver(b.Sys, seed)
	d.Bias = func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return abortWeight
		}
		return 1
	}
	d.OnStep = b.Checker()
	sched, quiescent, err := d.Run(200000)
	if err != nil {
		t.Fatalf("seed %d: %v\nschedule:\n%v", seed, err, sched)
	}
	if !quiescent {
		t.Fatalf("seed %d: system did not quiesce", seed)
	}
	return sched
}

func TestReconfigRunsWithInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		b, err := BuildB(scenario())
		if err != nil {
			t.Fatal(err)
		}
		drive(t, b, seed, 0.15) // Checker validates reads + invariant each step
	}
}

func TestReconfigSimulation(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		b, err := BuildB(scenario())
		if err != nil {
			t.Fatal(err)
		}
		sched := drive(t, b, seed+500, 0.15)
		if err := b.CheckSimulation(sched); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%v", seed, err, sched)
		}
	}
}

func TestReconfigurationsActuallyHappen(t *testing.T) {
	happened := false
	for seed := int64(0); seed < 20 && !happened; seed++ {
		b, err := BuildB(scenario())
		if err != nil {
			t.Fatal(err)
		}
		sched := drive(t, b, seed, 0)
		for _, op := range sched {
			if op.Kind == ioa.OpCommit && b.tmKind[op.Txn] == tree.KindReconfigTM {
				happened = true
				break
			}
		}
	}
	if !happened {
		t.Fatal("no reconfigure-TM ever committed across 20 seeds")
	}
}

func TestSpyStopsAfterUserCommits(t *testing.T) {
	// In every run, no REQUEST-CREATE of a reconfigure-TM appears after the
	// REQUEST-COMMIT of its user transaction.
	for seed := int64(0); seed < 20; seed++ {
		b, err := BuildB(scenario())
		if err != nil {
			t.Fatal(err)
		}
		sched := drive(t, b, seed, 0.1)
		committed := map[ioa.TxnName]bool{}
		for _, op := range sched {
			switch op.Kind {
			case ioa.OpRequestCommit:
				committed[op.Txn] = true
			case ioa.OpRequestCreate:
				if b.tmKind[op.Txn] == tree.KindReconfigTM {
					if parent, ok := b.Tree.Parent(op.Txn); ok && committed[parent] {
						t.Fatalf("seed %d: spy invoked %v after %v requested to commit", seed, op.Txn, parent)
					}
				}
			}
		}
	}
}

func TestWellFormedWithReconfig(t *testing.T) {
	b, err := BuildB(scenario())
	if err != nil {
		t.Fatal(err)
	}
	sched := drive(t, b, 3, 0.2)
	if err := b.Tree.CheckScheduleWellFormed(sched); err != nil {
		t.Fatalf("schedule not well-formed: %v", err)
	}
}

func TestFixedSubsetBehavesLikeCore(t *testing.T) {
	// With ReconfigsPerUser = 0 the reconfigurable machinery reduces to
	// fixed quorum consensus with coordinators; the simulation still holds.
	spec := scenario()
	spec.ReconfigsPerUser = 0
	for seed := int64(0); seed < 20; seed++ {
		b, err := BuildB(spec)
		if err != nil {
			t.Fatal(err)
		}
		sched := drive(t, b, seed, 0.2)
		if err := b.CheckSimulation(sched); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCoordinatorRetriesSurviveAborts(t *testing.T) {
	spec := scenario()
	spec.CoordsPerPhase = 2
	for seed := int64(0); seed < 15; seed++ {
		b, err := BuildB(spec)
		if err != nil {
			t.Fatal(err)
		}
		sched := drive(t, b, seed, 0.8)
		if err := b.CheckSimulation(sched); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomScenariosWithReconfig(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cs := core.RandomSpec(rng, core.DefaultRandParams())
		spec := Spec{Core: cs, NewConfigs: map[string][]quorum.Config{}, ReconfigsPerUser: 1}
		for _, it := range cs.Items {
			spec.NewConfigs[it.Name] = []quorum.Config{
				quorum.ReadOneWriteAll(it.DMs),
				quorum.Majority(it.DMs),
			}
		}
		b, err := BuildB(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sched := drive(t, b, seed+900, 0.1)
		if err := b.CheckSimulation(sched); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
