package reconfig

import (
	"fmt"
	"reflect"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// DM is a reconfigurable data manager: a basic object over the RData
// domain. Read accesses return the whole replica state; write accesses
// carry either a VWrite (value/version update) or a CWrite
// (configuration/generation update) as their data attribute. The two write
// kinds update disjoint fields, which is what lets a reconfiguration write
// the new configuration without touching the value.
//
// The PODC abstract describes the replicas only abstractly; the split into
// field-masked writes is our reconstruction of the full algorithm of
// TR-390, and is the minimal structure the Section 4 prose requires.
type DM struct {
	name string
	tr   *tree.Tree

	accesses map[ioa.TxnName]*tree.Node

	active ioa.TxnName
	data   RData
}

var _ ioa.Automaton = (*DM)(nil)

// NewDM returns a reconfigurable DM named name holding initial.
func NewDM(tr *tree.Tree, name string, initial RData) *DM {
	d := &DM{name: name, tr: tr, accesses: map[ioa.TxnName]*tree.Node{}, data: initial}
	for _, n := range tr.AccessesTo(name) {
		d.accesses[n.Name()] = n
	}
	return d
}

// Name implements ioa.Automaton.
func (d *DM) Name() string { return d.name }

// Data returns the replica's current state.
func (d *DM) Data() RData { return d.data }

// HasOp implements ioa.Automaton.
func (d *DM) HasOp(op ioa.Op) bool {
	if op.Kind != ioa.OpCreate && op.Kind != ioa.OpRequestCommit {
		return false
	}
	return d.accesses[op.Txn] != nil
}

// IsOutput implements ioa.Automaton.
func (d *DM) IsOutput(op ioa.Op) bool {
	return op.Kind == ioa.OpRequestCommit && d.accesses[op.Txn] != nil
}

// Enabled implements ioa.Automaton.
func (d *DM) Enabled() []ioa.Op {
	if d.active == "" {
		return nil
	}
	n := d.accesses[d.active]
	if n == nil {
		return nil
	}
	if n.Access == tree.ReadAccess {
		return []ioa.Op{ioa.RequestCommit(d.active, d.data)}
	}
	return []ioa.Op{ioa.RequestCommit(d.active, nil)}
}

// Step implements ioa.Automaton.
func (d *DM) Step(op ioa.Op) error {
	n := d.accesses[op.Txn]
	if n == nil {
		return fmt.Errorf("dm %s: %v is not an access", d.name, op.Txn)
	}
	switch op.Kind {
	case ioa.OpCreate:
		d.active = op.Txn
		return nil
	case ioa.OpRequestCommit:
		if d.active != op.Txn {
			return fmt.Errorf("%w: dm %s: REQUEST-COMMIT(%v) but active = %q", ioa.ErrNotEnabled, d.name, op.Txn, d.active)
		}
		if n.Access == tree.ReadAccess {
			if !reflect.DeepEqual(op.Val, d.data) {
				return fmt.Errorf("%w: dm %s: read access %v returned %v, data is %v", ioa.ErrNotEnabled, d.name, op.Txn, op.Val, d.data)
			}
			d.active = ""
			return nil
		}
		if op.Val != nil {
			return fmt.Errorf("%w: dm %s: write access %v must return nil", ioa.ErrNotEnabled, d.name, op.Txn)
		}
		switch w := n.Data.(type) {
		case VWrite:
			d.data.VN = w.VN
			d.data.Val = w.Val
		case CWrite:
			d.data.Gen = w.Gen
			d.data.Cfg = w.Cfg
		default:
			return fmt.Errorf("dm %s: write access %v carries unknown payload %T", d.name, op.Txn, n.Data)
		}
		d.active = ""
		return nil
	default:
		return fmt.Errorf("dm %s: unexpected op %v", d.name, op)
	}
}
