package reconfig

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// AccessSequence returns the logical access sequence of item in beta: the
// CREATE and REQUEST-COMMIT operations of the read-, write- and
// reconfigure-TMs for item.
func (b *SystemB) AccessSequence(item string, beta ioa.Schedule) ioa.Schedule {
	return beta.Filter(func(op ioa.Op) bool {
		if op.Kind != ioa.OpCreate && op.Kind != ioa.OpRequestCommit {
			return false
		}
		return b.tmItem[op.Txn] == item
	})
}

// LogicalState returns the expected value of a logical read of item after
// beta: value(T) of the last committed write-TM, or the initial value.
// Reconfigure-TMs never change the logical state.
func (b *SystemB) LogicalState(item string, beta ioa.Schedule) ioa.Value {
	var state ioa.Value
	if it, ok := itemSpec(b.Spec.Core, item); ok {
		state = it.Initial
	}
	for _, op := range beta {
		if op.Kind == ioa.OpRequestCommit && b.tmItem[op.Txn] == item && b.tmKind[op.Txn] == tree.KindWriteTM {
			state = b.Tree.Node(op.Txn).Data
		}
	}
	return state
}

// configChain reconstructs the installed configurations by generation
// number from the committed config writes in beta: generation 0 is the
// initial configuration; each committed CWrite installs its generation.
func (b *SystemB) configChain(item string, beta ioa.Schedule) map[int]quorum.Config {
	chain := map[int]quorum.Config{}
	if it, ok := itemSpec(b.Spec.Core, item); ok {
		chain[0] = it.Config
	}
	for _, op := range beta {
		if op.Kind != ioa.OpRequestCommit {
			continue
		}
		n := b.Tree.Node(op.Txn)
		if n == nil || !n.IsAccess() || n.Item != item {
			continue
		}
		if cw, ok := n.Data.(CWrite); ok {
			chain[cw.Gen] = cw.Cfg
		}
	}
	return chain
}

// CheckInvariant verifies the reconfigurable analog of Lemma 8 for item
// after beta, when no logical access to item is in progress:
//
//   - no replica's generation exceeds the highest installed generation G,
//     and no replica's version number exceeds the highest VN held;
//   - for every g < G, some write-quorum of configuration c_g holds
//     generation ≥ g+1 (so any read-quorum of a stale configuration
//     discovers a newer one);
//   - some write-quorum of the current configuration c_G holds the current
//     version number, and every replica at the current version number holds
//     the logical state.
func (b *SystemB) CheckInvariant(item string, beta ioa.Schedule) error {
	if len(b.AccessSequence(item, beta))%2 != 0 {
		return nil // a logical access is in progress
	}
	it, ok := itemSpec(b.Spec.Core, item)
	if !ok {
		return fmt.Errorf("reconfig: unknown item %q", item)
	}
	chain := b.configChain(item, beta)
	maxGen := 0
	for g := range chain {
		if g > maxGen {
			maxGen = g
		}
	}
	state := b.LogicalState(item, beta)

	// Replica snapshot.
	curVN := 0
	for _, dm := range it.DMs {
		d := b.DMs[dm].Data()
		if d.Gen > maxGen {
			return fmt.Errorf("reconfig: item %s: DM %s at generation %d above installed max %d", item, dm, d.Gen, maxGen)
		}
		if d.VN > curVN {
			curVN = d.VN
		}
	}

	// Chain reachability: every stale configuration's write-quorums expose
	// the next generation.
	for g := 0; g < maxGen; g++ {
		cfg, ok := chain[g]
		if !ok {
			return fmt.Errorf("reconfig: item %s: missing configuration for generation %d", item, g)
		}
		newer := map[string]bool{}
		for _, dm := range it.DMs {
			if b.DMs[dm].Data().Gen >= g+1 {
				newer[dm] = true
			}
		}
		if !cfg.HasWriteQuorum(newer) {
			return fmt.Errorf("reconfig: item %s: no write-quorum of generation-%d config exposes generation %d", item, g, g+1)
		}
	}

	// Current configuration carries the current version number and state.
	cur := chain[maxGen]
	atVN := map[string]bool{}
	for _, dm := range it.DMs {
		d := b.DMs[dm].Data()
		if d.VN == curVN {
			atVN[dm] = true
			if !reflect.DeepEqual(d.Val, state) {
				return fmt.Errorf("reconfig: item %s: DM %s at current vn %d holds %v, logical-state is %v", item, dm, curVN, d.Val, state)
			}
		}
	}
	if !cur.HasWriteQuorum(atVN) {
		return fmt.Errorf("reconfig: item %s: no write-quorum of the current config holds current vn %d", item, curVN)
	}
	return nil
}

// Checker returns a driver hook verifying, after every step, the
// reconfiguration invariant for every item and — the user-visible
// correctness condition — that every read-TM that requests to commit
// returns the logical state.
func (b *SystemB) Checker() func(op ioa.Op, sched ioa.Schedule) error {
	return func(op ioa.Op, sched ioa.Schedule) error {
		if op.Kind == ioa.OpRequestCommit && b.tmKind[op.Txn] == tree.KindReadTM {
			item := b.tmItem[op.Txn]
			if want := b.LogicalState(item, sched); !reflect.DeepEqual(op.Val, want) {
				return fmt.Errorf("reconfig: read-TM %v returned %v, logical-state is %v", op.Txn, op.Val, want)
			}
		}
		for _, it := range b.Spec.Core.Items {
			if err := b.CheckInvariant(it.Name, sched); err != nil {
				return err
			}
		}
		return nil
	}
}

// removedFromA reports whether ops of txn are absent from the
// non-replicated system A: replica accesses, coordinators, and
// reconfigure-TMs (which run transparently and have no counterpart in A).
func (b *SystemB) removedFromA(txn ioa.TxnName) bool {
	n := b.Tree.Node(txn)
	if n == nil {
		return true
	}
	switch n.Kind() {
	case tree.KindCoordinator, tree.KindReconfigTM:
		return true
	case tree.KindAccess:
		return n.Item != ""
	default:
		return false
	}
}

// ProjectToA builds the system-A schedule corresponding to beta by removing
// every operation of the replication machinery.
func (b *SystemB) ProjectToA(beta ioa.Schedule) ioa.Schedule {
	return beta.Filter(func(op ioa.Op) bool { return !b.removedFromA(op.Txn) })
}

// CheckSimulation verifies the Theorem 10 analog for the reconfigurable
// system: the projection of beta is a schedule of the non-replicated serial
// system A built from the same core scenario, and every user transaction's
// own operations (excluding the spy-driven reconfigure machinery, which the
// user program never sees) are identical in both.
func (b *SystemB) CheckSimulation(beta ioa.Schedule) error {
	alpha := b.ProjectToA(beta)
	a, err := core.BuildA(b.Spec.Core)
	if err != nil {
		return fmt.Errorf("reconfig simulation: build system A: %w", err)
	}
	if i, err := a.Sys.Replay(alpha); err != nil {
		return fmt.Errorf("reconfig simulation: α is not a schedule of A at index %d: %w", i, err)
	}
	for name, autoB := range b.userAutos {
		autoA := a.Sys.Component(string(name))
		if autoA == nil {
			return fmt.Errorf("reconfig simulation: user %v missing from system A", name)
		}
		if !beta.Project(autoB).Equal(alpha.Project(autoA)) {
			return fmt.Errorf("reconfig simulation: user transaction %v distinguishes the systems", name)
		}
	}
	for _, os := range b.Spec.Core.Objects {
		oB, oA := b.Sys.Component(os.Name), a.Sys.Component(os.Name)
		if !beta.Project(oB).Equal(alpha.Project(oA)) {
			return fmt.Errorf("reconfig simulation: projections on object %s differ", os.Name)
		}
	}
	return nil
}
