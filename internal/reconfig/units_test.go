package reconfig

import (
	"errors"
	"testing"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

func dmFixture(t *testing.T) (*tree.Tree, *DM, RData) {
	t.Helper()
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	mk := func(label string, kind tree.AccessKind) *tree.Node {
		n := tr.MustAddChild(u.Name(), label, tree.KindAccess)
		n.Object = "d1"
		n.Access = kind
		n.Item = "x"
		return n
	}
	mk("r", tree.ReadAccess)
	mk("wv", tree.WriteAccess)
	mk("wc", tree.WriteAccess)
	initial := RData{VN: 0, Val: "init", Gen: 0, Cfg: quorum.ReadOneWriteAll([]string{"d1"})}
	return tr, NewDM(tr, "d1", initial), initial
}

func TestDMReadReturnsWholeReplicaState(t *testing.T) {
	_, dm, initial := dmFixture(t)
	if err := dm.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	enabled := dm.Enabled()
	if len(enabled) != 1 || !enabled[0].Equal(ioa.RequestCommit("T0/u/r", initial)) {
		t.Fatalf("enabled = %v", enabled)
	}
	if err := dm.Step(enabled[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDMValueWriteLeavesConfigUntouched(t *testing.T) {
	tr, dm, initial := dmFixture(t)
	tr.Node("T0/u/wv").Data = VWrite{VN: 3, Val: "new"}
	if err := dm.Step(ioa.Create("T0/u/wv")); err != nil {
		t.Fatal(err)
	}
	if err := dm.Step(ioa.RequestCommit("T0/u/wv", nil)); err != nil {
		t.Fatal(err)
	}
	d := dm.Data()
	if d.VN != 3 || d.Val != "new" {
		t.Errorf("value write not applied: %v", d)
	}
	if d.Gen != initial.Gen || !d.Cfg.Legal() {
		t.Errorf("value write must not touch configuration: %v", d)
	}
}

func TestDMConfigWriteLeavesValueUntouched(t *testing.T) {
	tr, dm, _ := dmFixture(t)
	newCfg := quorum.Majority([]string{"d1"})
	tr.Node("T0/u/wc").Data = CWrite{Gen: 1, Cfg: newCfg}
	if err := dm.Step(ioa.Create("T0/u/wc")); err != nil {
		t.Fatal(err)
	}
	if err := dm.Step(ioa.RequestCommit("T0/u/wc", nil)); err != nil {
		t.Fatal(err)
	}
	d := dm.Data()
	if d.Gen != 1 {
		t.Errorf("config write not applied: %v", d)
	}
	if d.VN != 0 || d.Val != "init" {
		t.Errorf("config write must not touch the value: %v", d)
	}
}

func TestDMRejectsUnboundWritePayload(t *testing.T) {
	_, dm, _ := dmFixture(t)
	if err := dm.Step(ioa.Create("T0/u/wv")); err != nil {
		t.Fatal(err)
	}
	// Data never bound: neither VWrite nor CWrite.
	if err := dm.Step(ioa.RequestCommit("T0/u/wv", nil)); err == nil {
		t.Fatal("write access with unbound payload accepted")
	}
}

func TestDMReadValueValidated(t *testing.T) {
	_, dm, _ := dmFixture(t)
	if err := dm.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	if err := dm.Step(ioa.RequestCommit("T0/u/r", RData{VN: 99})); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("wrong read value accepted: %v", err)
	}
}

func coordFixture(t *testing.T) (*tree.Tree, RData) {
	t.Helper()
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	tm := tr.MustAddChild(u.Name(), "tm", tree.KindReadTM)
	tm.Item = "x"
	rc := tr.MustAddChild(tm.Name(), "rc", tree.KindCoordinator)
	rc.Item = "x"
	wc := tr.MustAddChild(tm.Name(), "wc", tree.KindCoordinator)
	wc.Item = "x"
	for _, dm := range []string{"d1", "d2", "d3"} {
		a := tr.MustAddChild(rc.Name(), "r."+dm, tree.KindAccess)
		a.Object = dm
		a.Access = tree.ReadAccess
		a.Item = "x"
		wa := tr.MustAddChild(wc.Name(), "w."+dm, tree.KindAccess)
		wa.Object = dm
		wa.Access = tree.WriteAccess
		wa.Item = "x"
	}
	initial := RData{VN: 0, Val: "init", Gen: 0, Cfg: quorum.Majority([]string{"d1", "d2", "d3"})}
	return tr, initial
}

func TestReadCoordinatorChasesGenerations(t *testing.T) {
	tr, initial := coordFixture(t)
	c := NewReadCoordinator(tr, "T0/u/tm/rc", initial)
	step := func(op ioa.Op) {
		t.Helper()
		if err := c.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	step(ioa.Create("T0/u/tm/rc"))
	step(ioa.RequestCreate("T0/u/tm/rc/r.d1"))
	step(ioa.RequestCreate("T0/u/tm/rc/r.d2"))
	// d1 and d2 form a majority of the initial config, but d2 reveals a
	// newer generation whose only read-quorum is {d3}: the coordinator
	// must keep reading.
	newCfg := quorum.Config{R: []quorum.Set{quorum.NewSet("d3")}, W: []quorum.Set{quorum.NewSet("d3", "d1"), quorum.NewSet("d3", "d2")}}
	step(ioa.Commit("T0/u/tm/rc/r.d1", RData{VN: 1, Val: "a", Gen: 0, Cfg: initial.Cfg}))
	step(ioa.Commit("T0/u/tm/rc/r.d2", RData{VN: 1, Val: "a", Gen: 1, Cfg: newCfg}))
	for _, op := range c.Enabled() {
		if op.Kind == ioa.OpRequestCommit {
			t.Fatal("coordinator committed with a stale configuration's quorum")
		}
	}
	step(ioa.RequestCreate("T0/u/tm/rc/r.d3"))
	step(ioa.Commit("T0/u/tm/rc/r.d3", RData{VN: 2, Val: "b", Gen: 1, Cfg: newCfg}))
	want := ReadResult{VN: 2, Val: "b", Gen: 1, Cfg: newCfg}
	found := false
	for _, op := range c.Enabled() {
		if op.Kind == ioa.OpRequestCommit && op.Equal(ioa.RequestCommit("T0/u/tm/rc", want)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("coordinator should commit %v; enabled = %v", want, c.Enabled())
	}
}

func TestWriteCoordinatorRequiresTask(t *testing.T) {
	tr, _ := coordFixture(t)
	c := NewWriteCoordinator(tr, "T0/u/tm/wc")
	if err := c.Step(ioa.Create("T0/u/tm/wc")); err == nil {
		t.Fatal("write coordinator created without a bound task")
	}
	tr.Node("T0/u/tm/wc").Data = WriteTask{
		Payload: VWrite{VN: 1, Val: "v"},
		Cfg:     quorum.Majority([]string{"d1", "d2", "d3"}),
	}
	if err := c.Step(ioa.Create("T0/u/tm/wc")); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(ioa.RequestCreate("T0/u/tm/wc/w.d1")); err != nil {
		t.Fatal(err)
	}
	// The payload is bound onto the access at request time.
	if d, ok := tr.Node("T0/u/tm/wc/w.d1").Data.(VWrite); !ok || d.VN != 1 {
		t.Fatalf("access payload = %v", tr.Node("T0/u/tm/wc/w.d1").Data)
	}
	// One commit of three is not a write-quorum.
	if err := c.Step(ioa.Commit("T0/u/tm/wc/w.d1", nil)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(ioa.RequestCommit("T0/u/tm/wc", nil)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("commit without write-quorum: %v", err)
	}
	if err := c.Step(ioa.RequestCreate("T0/u/tm/wc/w.d2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(ioa.Commit("T0/u/tm/wc/w.d2", nil)); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(ioa.RequestCommit("T0/u/tm/wc", nil)); err != nil {
		t.Fatal(err)
	}
}

func TestSpyLifecycle(t *testing.T) {
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	rec := tr.MustAddChild(u.Name(), "reconf0", tree.KindReconfigTM)
	s := NewSpy(tr, u.Name(), []ioa.TxnName{rec.Name()})

	// Asleep until its transaction is created.
	if got := s.Enabled(); len(got) != 0 {
		t.Errorf("asleep spy enabled %v", got)
	}
	if err := s.Step(ioa.RequestCreate(rec.Name())); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("asleep spy acted: %v", err)
	}
	if err := s.Step(ioa.Create(u.Name())); err != nil {
		t.Fatal(err)
	}
	got := s.Enabled()
	if len(got) != 1 || !got[0].Equal(ioa.RequestCreate(rec.Name())) {
		t.Fatalf("awake spy enabled %v", got)
	}
	// The spy falls silent when the user transaction requests to commit.
	if err := s.Step(ioa.RequestCommit(u.Name(), nil)); err != nil {
		t.Fatal(err)
	}
	if got := s.Enabled(); len(got) != 0 {
		t.Errorf("spy active after user's REQUEST-COMMIT: %v", got)
	}
	if err := s.Step(ioa.RequestCreate(rec.Name())); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("spy invoked reconfiguration after commit request: %v", err)
	}
}

func TestSpyOwnsReconfigInvocations(t *testing.T) {
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	rec := tr.MustAddChild(u.Name(), "reconf0", tree.KindReconfigTM)
	s := NewSpy(tr, u.Name(), []ioa.TxnName{rec.Name()})
	if !s.IsOutput(ioa.RequestCreate(rec.Name())) {
		t.Error("REQUEST-CREATE of the reconfigure-TM is the spy's output")
	}
	if s.IsOutput(ioa.Create(u.Name())) || s.IsOutput(ioa.RequestCommit(u.Name(), nil)) {
		t.Error("the user's operations are inputs to the spy")
	}
	if !s.HasOp(ioa.Commit(rec.Name(), nil)) || !s.HasOp(ioa.Abort(rec.Name())) {
		t.Error("the reconfigure-TM's returns go to the spy")
	}
}

func TestReconfigTMWritesBothTasks(t *testing.T) {
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	tmNode := tr.MustAddChild(u.Name(), "rec", tree.KindReconfigTM)
	tmNode.Item = "x"
	mkCoord := func(label string, kind tree.AccessKind) ioa.TxnName {
		c := tr.MustAddChild(tmNode.Name(), label, tree.KindCoordinator)
		c.Item = "x"
		a := tr.MustAddChild(c.Name(), "a.d1", tree.KindAccess)
		a.Object = "d1"
		a.Access = kind
		a.Item = "x"
		return c.Name()
	}
	rc := mkCoord("rc", tree.ReadAccess)
	wv := mkCoord("wv", tree.WriteAccess)
	wc := mkCoord("wcfg", tree.WriteAccess)
	oldCfg := quorum.ReadOneWriteAll([]string{"d1"})
	newCfg := quorum.Majority([]string{"d1"})
	tm := NewReconfigTM(tr, tmNode.Name(), "x", newCfg, []ioa.TxnName{rc}, []ioa.TxnName{wv}, []ioa.TxnName{wc})

	step := func(op ioa.Op) {
		t.Helper()
		if err := tm.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	step(ioa.Create(tmNode.Name()))
	// Write coordinators gated on the read phase.
	if err := tm.Step(ioa.RequestCreate(wv)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("value write before read phase: %v", err)
	}
	step(ioa.RequestCreate(rc))
	step(ioa.Commit(rc, ReadResult{VN: 7, Val: "v", Gen: 2, Cfg: oldCfg}))
	step(ioa.RequestCreate(wv))
	step(ioa.RequestCreate(wc))
	// The value task copies (v, t) unchanged to the NEW configuration; the
	// config task writes (c', g+1) to the OLD configuration.
	vt, ok := tr.Node(wv).Data.(WriteTask)
	if !ok {
		t.Fatal("value task unbound")
	}
	if p := vt.Payload.(VWrite); p.VN != 7 || p.Val != "v" {
		t.Errorf("value task payload = %v", p)
	}
	if vt.Cfg.String() != newCfg.String() {
		t.Errorf("value task targets %v, want the new config", vt.Cfg)
	}
	ct := tr.Node(wc).Data.(WriteTask)
	if p := ct.Payload.(CWrite); p.Gen != 3 {
		t.Errorf("config task generation = %d, want 3", p.Gen)
	}
	if ct.Cfg.String() != oldCfg.String() {
		t.Errorf("config task targets %v, want the old config", ct.Cfg)
	}
	// Commit only after both write phases.
	if err := tm.Step(ioa.RequestCommit(tmNode.Name(), nil)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("commit before writes: %v", err)
	}
	step(ioa.Commit(wv, nil))
	step(ioa.Commit(wc, nil))
	step(ioa.RequestCommit(tmNode.Name(), nil))
}
