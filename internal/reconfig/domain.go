// Package reconfig implements Section 4 of the paper: Quorum Consensus
// with dynamic reconfiguration. Each replica of x carries, in addition to a
// value and version number, a configuration and a generation number. Read-,
// write- and reconfigure-TMs delegate their work to coordinator
// subtransactions (one extra level of nesting, as the paper introduces to
// modularize the algorithm), and reconfigure-TMs are invoked spontaneously
// and transparently by spy automata attached to the user transactions.
package reconfig

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/quorum"
)

// RData is the domain of a reconfigurable DM: value, version number,
// configuration and generation number. Initially every replica of x holds
// (i_x, 0, c0, 0) for the item's initial configuration c0.
type RData struct {
	VN  int
	Val ioa.Value
	Gen int
	Cfg quorum.Config
}

// String renders the replica state.
func (d RData) String() string {
	return fmt.Sprintf("(vn=%d val=%v gen=%d)", d.VN, d.Val, d.Gen)
}

// VWrite is the payload of a write access that updates the value and
// version number of a replica, leaving its configuration untouched.
type VWrite struct {
	VN  int
	Val ioa.Value
}

// CWrite is the payload of a write access that updates the configuration
// and generation number of a replica, leaving its value untouched.
type CWrite struct {
	Gen int
	Cfg quorum.Config
}

// ReadResult is the value a read coordinator reports to its TM: the value
// and version number from the replica with the highest version number seen,
// and the configuration and generation number from the replica with the
// highest generation number seen.
type ReadResult struct {
	VN  int
	Val ioa.Value
	Gen int
	Cfg quorum.Config
}

// WriteTask parameterizes a write coordinator: the payload to write to
// every access and the configuration whose write-quorums must be covered.
// The TM binds the task to the coordinator's tree node at REQUEST-CREATE
// time, just as write-access data is bound in the fixed algorithm.
type WriteTask struct {
	Payload ioa.Value // VWrite or CWrite
	Cfg     quorum.Config
}
