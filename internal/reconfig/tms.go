package reconfig

import (
	"fmt"
	"reflect"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// tmBase carries the bookkeeping shared by the three TM kinds: waking up,
// requesting coordinators once each, and recording the read phase's result.
type tmBase struct {
	tr   *tree.Tree
	name ioa.TxnName
	item string

	coords map[ioa.TxnName]bool // all coordinator children

	awake     bool
	requested map[ioa.TxnName]bool
	have      bool
	res       ReadResult
}

func newTMBase(tr *tree.Tree, name ioa.TxnName, item string) tmBase {
	return tmBase{
		tr:        tr,
		name:      name,
		item:      item,
		coords:    map[ioa.TxnName]bool{},
		requested: map[ioa.TxnName]bool{},
	}
}

func (b *tmBase) register(children []ioa.TxnName) {
	for _, c := range children {
		b.coords[c] = true
	}
}

func (b *tmBase) hasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == b.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return b.coords[op.Txn]
	default:
		return false
	}
}

func (b *tmBase) isOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == b.name
	case ioa.OpRequestCreate:
		return b.coords[op.Txn]
	default:
		return false
	}
}

// recordRead stores the first read-coordinator result. Later results are
// necessarily identical in a serial system (nothing intervenes between two
// coordinators of the same TM), so keeping the first preserves
// state-determinism without loss.
func (b *tmBase) recordRead(v ioa.Value) error {
	res, ok := v.(ReadResult)
	if !ok {
		return fmt.Errorf("tm %v: coordinator committed non-result %v", b.name, v)
	}
	if !b.have {
		b.have = true
		b.res = res
	}
	return nil
}

// requestCoord validates and records a REQUEST-CREATE of a coordinator.
func (b *tmBase) requestCoord(op ioa.Op) error {
	if !b.awake || b.requested[op.Txn] {
		return fmt.Errorf("%w: %v by TM %v", ioa.ErrNotEnabled, op, b.name)
	}
	b.requested[op.Txn] = true
	return nil
}

// ReadTM performs a logical read of item x under reconfiguration: it runs a
// read coordinator and returns the value component of the result.
type ReadTM struct {
	tmBase
	readCoords []ioa.TxnName
}

var _ ioa.Automaton = (*ReadTM)(nil)

// NewReadTM builds the reconfigurable read-TM named name whose children are
// the given read coordinators.
func NewReadTM(tr *tree.Tree, name ioa.TxnName, item string, readCoords []ioa.TxnName) *ReadTM {
	t := &ReadTM{tmBase: newTMBase(tr, name, item), readCoords: readCoords}
	t.register(readCoords)
	return t
}

// Name implements ioa.Automaton.
func (t *ReadTM) Name() string { return string(t.name) }

// HasOp implements ioa.Automaton.
func (t *ReadTM) HasOp(op ioa.Op) bool { return t.hasOp(op) }

// IsOutput implements ioa.Automaton.
func (t *ReadTM) IsOutput(op ioa.Op) bool { return t.isOutput(op) }

// Enabled implements ioa.Automaton.
func (t *ReadTM) Enabled() []ioa.Op {
	if !t.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range t.readCoords {
		if !t.requested[c] {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if t.have {
		out = append(out, ioa.RequestCommit(t.name, t.res.Val))
	}
	return out
}

// Step implements ioa.Automaton.
func (t *ReadTM) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		t.awake = true
		return nil
	case ioa.OpCommit:
		return t.recordRead(op.Val)
	case ioa.OpAbort:
		return nil
	case ioa.OpRequestCreate:
		return t.requestCoord(op)
	case ioa.OpRequestCommit:
		if !t.awake || !t.have {
			return fmt.Errorf("%w: %v: read phase incomplete", ioa.ErrNotEnabled, op)
		}
		if !reflect.DeepEqual(op.Val, t.res.Val) {
			return fmt.Errorf("%w: %v: state requires value %v", ioa.ErrNotEnabled, op, t.res.Val)
		}
		t.awake = false
		return nil
	default:
		return fmt.Errorf("read-TM %v: unexpected op %v", t.name, op)
	}
}

// WriteTM performs a logical write of value(T) under reconfiguration: it
// runs a read coordinator, then a write coordinator carrying
// (t+1, value(T)) aimed at a write-quorum of the configuration the read
// phase discovered, then commits with nil.
type WriteTM struct {
	tmBase
	value       ioa.Value
	readCoords  []ioa.TxnName
	writeCoords []ioa.TxnName

	written bool
}

var _ ioa.Automaton = (*WriteTM)(nil)

// NewWriteTM builds the reconfigurable write-TM named name.
func NewWriteTM(tr *tree.Tree, name ioa.TxnName, item string, value ioa.Value, readCoords, writeCoords []ioa.TxnName) *WriteTM {
	t := &WriteTM{
		tmBase:      newTMBase(tr, name, item),
		value:       value,
		readCoords:  readCoords,
		writeCoords: writeCoords,
	}
	t.register(readCoords)
	t.register(writeCoords)
	return t
}

// Name implements ioa.Automaton.
func (t *WriteTM) Name() string { return string(t.name) }

// HasOp implements ioa.Automaton.
func (t *WriteTM) HasOp(op ioa.Op) bool { return t.hasOp(op) }

// IsOutput implements ioa.Automaton.
func (t *WriteTM) IsOutput(op ioa.Op) bool { return t.isOutput(op) }

// task returns the write task derived from the read phase.
func (t *WriteTM) task() WriteTask {
	return WriteTask{Payload: VWrite{VN: t.res.VN + 1, Val: t.value}, Cfg: t.res.Cfg}
}

// Enabled implements ioa.Automaton.
func (t *WriteTM) Enabled() []ioa.Op {
	if !t.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range t.readCoords {
		if !t.requested[c] {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if t.have {
		for _, c := range t.writeCoords {
			if !t.requested[c] {
				out = append(out, ioa.RequestCreate(c))
			}
		}
	}
	if t.written {
		out = append(out, ioa.RequestCommit(t.name, nil))
	}
	return out
}

// Step implements ioa.Automaton.
func (t *WriteTM) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		t.awake = true
		return nil
	case ioa.OpCommit:
		if isIn(t.readCoords, op.Txn) {
			return t.recordRead(op.Val)
		}
		t.written = true
		return nil
	case ioa.OpAbort:
		return nil
	case ioa.OpRequestCreate:
		if isIn(t.writeCoords, op.Txn) {
			if !t.have {
				return fmt.Errorf("%w: %v: write phase before read-quorum", ioa.ErrNotEnabled, op)
			}
			if err := t.requestCoord(op); err != nil {
				return err
			}
			t.tr.Node(op.Txn).Data = t.task()
			return nil
		}
		return t.requestCoord(op)
	case ioa.OpRequestCommit:
		if !t.awake || !t.written {
			return fmt.Errorf("%w: %v: no write-quorum written", ioa.ErrNotEnabled, op)
		}
		if op.Val != nil {
			return fmt.Errorf("%w: %v: write-TM must return nil", ioa.ErrNotEnabled, op)
		}
		t.awake = false
		return nil
	default:
		return fmt.Errorf("write-TM %v: unexpected op %v", t.name, op)
	}
}

// ReconfigTM changes the configuration of item x to value(T) = c': after
// the read phase discovers (v, t, c, g), it writes (v, t) to a write-quorum
// of c' and writes (c', g+1) to a write-quorum of the old configuration c.
// Per the paper's observation (footnote 6), writing the new configuration
// to an old write-quorum alone suffices; Gifford's original writes it to
// both, which the cluster layer offers as an ablation.
type ReconfigTM struct {
	tmBase
	newCfg       quorum.Config
	readCoords   []ioa.TxnName
	valueCoords  []ioa.TxnName // write (v, t) to a write-quorum of c'
	configCoords []ioa.TxnName // write (c', g+1) to a write-quorum of c

	valWritten bool
	cfgWritten bool
}

var _ ioa.Automaton = (*ReconfigTM)(nil)

// NewReconfigTM builds the reconfigure-TM named name installing newCfg.
func NewReconfigTM(tr *tree.Tree, name ioa.TxnName, item string, newCfg quorum.Config, readCoords, valueCoords, configCoords []ioa.TxnName) *ReconfigTM {
	t := &ReconfigTM{
		tmBase:       newTMBase(tr, name, item),
		newCfg:       newCfg,
		readCoords:   readCoords,
		valueCoords:  valueCoords,
		configCoords: configCoords,
	}
	t.register(readCoords)
	t.register(valueCoords)
	t.register(configCoords)
	return t
}

// Name implements ioa.Automaton.
func (t *ReconfigTM) Name() string { return string(t.name) }

// HasOp implements ioa.Automaton.
func (t *ReconfigTM) HasOp(op ioa.Op) bool { return t.hasOp(op) }

// IsOutput implements ioa.Automaton.
func (t *ReconfigTM) IsOutput(op ioa.Op) bool { return t.isOutput(op) }

// Enabled implements ioa.Automaton.
func (t *ReconfigTM) Enabled() []ioa.Op {
	if !t.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range t.readCoords {
		if !t.requested[c] {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if t.have {
		for _, c := range t.valueCoords {
			if !t.requested[c] {
				out = append(out, ioa.RequestCreate(c))
			}
		}
		for _, c := range t.configCoords {
			if !t.requested[c] {
				out = append(out, ioa.RequestCreate(c))
			}
		}
	}
	if t.valWritten && t.cfgWritten {
		out = append(out, ioa.RequestCommit(t.name, nil))
	}
	return out
}

// Step implements ioa.Automaton.
func (t *ReconfigTM) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		t.awake = true
		return nil
	case ioa.OpCommit:
		switch {
		case isIn(t.readCoords, op.Txn):
			return t.recordRead(op.Val)
		case isIn(t.valueCoords, op.Txn):
			t.valWritten = true
		default:
			t.cfgWritten = true
		}
		return nil
	case ioa.OpAbort:
		return nil
	case ioa.OpRequestCreate:
		switch {
		case isIn(t.readCoords, op.Txn):
			return t.requestCoord(op)
		case !t.have:
			return fmt.Errorf("%w: %v: write phase before read-quorum", ioa.ErrNotEnabled, op)
		case isIn(t.valueCoords, op.Txn):
			if err := t.requestCoord(op); err != nil {
				return err
			}
			t.tr.Node(op.Txn).Data = WriteTask{Payload: VWrite{VN: t.res.VN, Val: t.res.Val}, Cfg: t.newCfg}
			return nil
		default:
			if err := t.requestCoord(op); err != nil {
				return err
			}
			t.tr.Node(op.Txn).Data = WriteTask{Payload: CWrite{Gen: t.res.Gen + 1, Cfg: t.newCfg}, Cfg: t.res.Cfg}
			return nil
		}
	case ioa.OpRequestCommit:
		if !t.awake || !t.valWritten || !t.cfgWritten {
			return fmt.Errorf("%w: %v: reconfiguration incomplete", ioa.ErrNotEnabled, op)
		}
		if op.Val != nil {
			return fmt.Errorf("%w: %v: reconfigure-TM must return nil", ioa.ErrNotEnabled, op)
		}
		t.awake = false
		return nil
	default:
		return fmt.Errorf("reconfigure-TM %v: unexpected op %v", t.name, op)
	}
}

func isIn(list []ioa.TxnName, t ioa.TxnName) bool {
	for _, x := range list {
		if x == t {
			return true
		}
	}
	return false
}
