package reconfig

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// Spy is the automaton the paper associates with each user transaction to
// resolve the modeling conflict of Section 4: reconfigure-TMs must be
// children of user transactions (for atomicity) but must run spontaneously
// and transparently (the user program never sees their invocations or
// returns). The spy wakes up with its associated transaction and
// nondeterministically invokes reconfigure-TMs until the transaction
// requests to commit.
//
// The spy — not the user-transaction automaton — owns the REQUEST-CREATE
// operations of the reconfigure-TM children, and receives their return
// operations; the user automaton's operation set excludes them entirely.
type Spy struct {
	tr   *tree.Tree
	user ioa.TxnName

	pool []ioa.TxnName // reconfigure-TM children of user

	awake     bool
	requested map[ioa.TxnName]bool
}

var _ ioa.Automaton = (*Spy)(nil)

// NewSpy builds the spy attached to user, driving the given reconfigure-TM
// children.
func NewSpy(tr *tree.Tree, user ioa.TxnName, pool []ioa.TxnName) *Spy {
	return &Spy{tr: tr, user: user, pool: pool, requested: map[ioa.TxnName]bool{}}
}

// Name implements ioa.Automaton.
func (s *Spy) Name() string { return "spy(" + string(s.user) + ")" }

// HasOp implements ioa.Automaton. The spy observes its transaction's
// CREATE and REQUEST-COMMIT and owns the reconfigure-TMs' invocations.
func (s *Spy) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == s.user
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return isIn(s.pool, op.Txn)
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton: only the REQUEST-CREATE of the
// reconfigure-TMs. CREATE and REQUEST-COMMIT of the user transaction are
// inputs here (they are outputs of the scheduler and the user automaton).
func (s *Spy) IsOutput(op ioa.Op) bool {
	return op.Kind == ioa.OpRequestCreate && isIn(s.pool, op.Txn)
}

// Enabled implements ioa.Automaton.
func (s *Spy) Enabled() []ioa.Op {
	if !s.awake {
		return nil
	}
	var out []ioa.Op
	for _, r := range s.pool {
		if !s.requested[r] {
			out = append(out, ioa.RequestCreate(r))
		}
	}
	return out
}

// Step implements ioa.Automaton.
func (s *Spy) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		s.awake = true
	case ioa.OpRequestCommit:
		s.awake = false
	case ioa.OpCommit, ioa.OpAbort:
		// The spy does not care how its reconfigurations fare.
	case ioa.OpRequestCreate:
		if !s.awake || s.requested[op.Txn] {
			return fmt.Errorf("%w: %v by %s", ioa.ErrNotEnabled, op, s.Name())
		}
		s.requested[op.Txn] = true
	default:
		return fmt.Errorf("%s: unexpected op %v", s.Name(), op)
	}
	return nil
}
