package reconfig

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/object"
	"repro/internal/quorum"
	"repro/internal/serial"
	"repro/internal/tree"
	"repro/internal/txn"
)

// Spec describes a reconfigurable scenario: a core scenario (whose item
// configurations become the initial configurations held by every replica)
// plus the reconfigurations the spies may launch.
type Spec struct {
	Core core.Spec

	// NewConfigs lists, per item, the configurations reconfigure-TMs may
	// install. Spies cycle through them.
	NewConfigs map[string][]quorum.Config

	// ReconfigsPerUser is how many reconfigure-TM children each user
	// transaction gets (cycling through items and NewConfigs). 0 disables
	// reconfiguration, reducing the system to fixed quorum consensus with
	// coordinators.
	ReconfigsPerUser int

	// CoordsPerPhase is how many coordinators each TM phase gets (default
	// 1); higher values let a TM retry a phase whose coordinator aborted.
	CoordsPerPhase int
}

func (s Spec) coordsPerPhase() int {
	if s.CoordsPerPhase <= 0 {
		return 1
	}
	return s.CoordsPerPhase
}

// SystemB is the replicated serial system with reconfiguration.
type SystemB struct {
	Spec Spec
	Sys  *ioa.System
	Tree *tree.Tree

	DMs map[string]*DM
	// tms maps read-/write-TM names to their item ("user visible" logical
	// accesses); recTMs maps reconfigure-TM names to their item.
	tms    map[ioa.TxnName]ioa.TxnName
	tmItem map[ioa.TxnName]string
	tmKind map[ioa.TxnName]tree.Kind

	userAutos map[ioa.TxnName]*txn.User
}

// initialRData returns the common initial replica state for an item.
func initialRData(it core.ItemSpec) RData {
	return RData{VN: 0, Val: it.Initial, Gen: 0, Cfg: it.Config}
}

// addCoordinator adds a coordinator node with one access child per DM.
func addCoordinator(tr *tree.Tree, parent ioa.TxnName, label, item string, dms []string, kind tree.AccessKind) ioa.TxnName {
	c := tr.MustAddChild(parent, label, tree.KindCoordinator)
	c.Item = item
	for _, dm := range dms {
		a := tr.MustAddChild(c.Name(), string(kind.String()[0])+"."+dm, tree.KindAccess)
		a.Object = dm
		a.Access = kind
		a.Item = item
	}
	return c.Name()
}

// BuildB constructs the reconfigurable replicated serial system.
func BuildB(spec Spec) (*SystemB, error) {
	if err := spec.Core.Validate(); err != nil {
		return nil, err
	}
	for item, cfgs := range spec.NewConfigs {
		it, ok := itemSpec(spec.Core, item)
		if !ok {
			return nil, fmt.Errorf("reconfig: NewConfigs references unknown item %q", item)
		}
		for _, c := range cfgs {
			if err := c.Validate(it.DMs); err != nil {
				return nil, fmt.Errorf("reconfig: item %q: %w", item, err)
			}
		}
	}

	b := &SystemB{
		Spec:      spec,
		Tree:      tree.New(),
		DMs:       map[string]*DM{},
		tms:       map[ioa.TxnName]ioa.TxnName{},
		tmItem:    map[ioa.TxnName]string{},
		tmKind:    map[ioa.TxnName]tree.Kind{},
		userAutos: map[ioa.TxnName]*txn.User{},
	}
	tr := b.Tree
	var autos []ioa.Automaton

	// Recursively build the user forest, expanding logical accesses into
	// TM + coordinator + access subtrees.
	type userRec struct {
		name ioa.TxnName
		spec core.TxnSpec
	}
	var users []userRec
	var walk func(parent ioa.TxnName, ts []core.TxnSpec) error
	walk = func(parent ioa.TxnName, ts []core.TxnSpec) error {
		for _, t := range ts {
			switch t.Kind {
			case core.StepSub:
				n, err := tr.AddChild(parent, t.Label, tree.KindUser)
				if err != nil {
					return err
				}
				users = append(users, userRec{n.Name(), t})
				if err := walk(n.Name(), t.Children); err != nil {
					return err
				}
			case core.StepReadItem:
				it, _ := itemSpec(spec.Core, t.Item)
				tm := tr.MustAddChild(parent, t.Label, tree.KindReadTM)
				tm.Item = t.Item
				var rcs []ioa.TxnName
				for i := 1; i <= spec.coordsPerPhase(); i++ {
					rcs = append(rcs, addCoordinator(tr, tm.Name(), fmt.Sprintf("rc%d", i), t.Item, it.DMs, tree.ReadAccess))
				}
				autos = append(autos, NewReadTM(tr, tm.Name(), t.Item, rcs))
				b.registerTM(tm.Name(), t.Item, tree.KindReadTM)
				for _, rc := range rcs {
					autos = append(autos, NewReadCoordinator(tr, rc, initialRData(it)))
				}
			case core.StepWriteItem:
				it, _ := itemSpec(spec.Core, t.Item)
				tm := tr.MustAddChild(parent, t.Label, tree.KindWriteTM)
				tm.Item = t.Item
				tm.Data = t.Value
				var rcs, wcs []ioa.TxnName
				for i := 1; i <= spec.coordsPerPhase(); i++ {
					rcs = append(rcs, addCoordinator(tr, tm.Name(), fmt.Sprintf("rc%d", i), t.Item, it.DMs, tree.ReadAccess))
					wcs = append(wcs, addCoordinator(tr, tm.Name(), fmt.Sprintf("wc%d", i), t.Item, it.DMs, tree.WriteAccess))
				}
				autos = append(autos, NewWriteTM(tr, tm.Name(), t.Item, t.Value, rcs, wcs))
				b.registerTM(tm.Name(), t.Item, tree.KindWriteTM)
				for _, rc := range rcs {
					autos = append(autos, NewReadCoordinator(tr, rc, initialRData(it)))
				}
				for _, wc := range wcs {
					autos = append(autos, NewWriteCoordinator(tr, wc))
				}
			case core.StepAccessObject:
				n, err := tr.AddChild(parent, t.Label, tree.KindAccess)
				if err != nil {
					return err
				}
				n.Object = t.Object
				n.Access = t.Access
				n.Data = t.Value
			}
		}
		return nil
	}
	if err := walk(tree.Root, spec.Core.Top); err != nil {
		return nil, err
	}

	// Attach reconfigure-TMs (with their coordinators) and spies to every
	// user transaction.
	reconfigurable := reconfigurableItems(spec)
	for _, u := range users {
		var pool []ioa.TxnName
		for i := 0; i < spec.ReconfigsPerUser && len(reconfigurable) > 0; i++ {
			item := reconfigurable[i%len(reconfigurable)]
			it, _ := itemSpec(spec.Core, item)
			cfgs := spec.NewConfigs[item]
			newCfg := cfgs[i%len(cfgs)]
			tm := tr.MustAddChild(u.name, fmt.Sprintf("reconf%d", i), tree.KindReconfigTM)
			tm.Item = item
			tm.Data = newCfg
			var rcs, wvs, wcs []ioa.TxnName
			for j := 1; j <= spec.coordsPerPhase(); j++ {
				rcs = append(rcs, addCoordinator(tr, tm.Name(), fmt.Sprintf("rc%d", j), item, it.DMs, tree.ReadAccess))
				wvs = append(wvs, addCoordinator(tr, tm.Name(), fmt.Sprintf("wv%d", j), item, it.DMs, tree.WriteAccess))
				wcs = append(wcs, addCoordinator(tr, tm.Name(), fmt.Sprintf("wcfg%d", j), item, it.DMs, tree.WriteAccess))
			}
			autos = append(autos, NewReconfigTM(tr, tm.Name(), item, newCfg, rcs, wvs, wcs))
			b.registerTM(tm.Name(), item, tree.KindReconfigTM)
			for _, rc := range rcs {
				autos = append(autos, NewReadCoordinator(tr, rc, initialRData(it)))
			}
			for _, wc := range append(append([]ioa.TxnName{}, wvs...), wcs...) {
				autos = append(autos, NewWriteCoordinator(tr, wc))
			}
			pool = append(pool, tm.Name())
		}
		if len(pool) > 0 {
			autos = append(autos, NewSpy(tr, u.name, pool))
		}
	}

	// User automata manage only their non-reconfigure children.
	for _, u := range users {
		var managed []ioa.TxnName
		for _, c := range tr.Children(u.name) {
			if tr.Node(c).Kind() != tree.KindReconfigTM {
				managed = append(managed, c)
			}
		}
		opts := []txn.Option{txn.Manage(managed...)}
		if u.spec.Sequential {
			opts = append(opts, txn.Sequential())
		}
		if u.spec.Eager {
			opts = append(opts, txn.Eager())
		}
		if u.spec.ValueFn != nil {
			opts = append(opts, txn.WithValue(u.spec.ValueFn))
		}
		ua, err := txn.NewUser(tr, u.name, opts...)
		if err != nil {
			return nil, err
		}
		b.userAutos[u.name] = ua
		autos = append(autos, ua)
	}

	// DMs and non-replica objects.
	for _, it := range spec.Core.Items {
		for _, dm := range it.DMs {
			d := NewDM(tr, dm, initialRData(it))
			b.DMs[dm] = d
			autos = append(autos, d)
		}
	}
	for _, os := range spec.Core.Objects {
		autos = append(autos, object.NewRW(tr, os.Name, os.Initial))
	}

	autos = append(autos, serial.NewScheduler(tr), txn.NewRoot(tr))
	b.Sys = ioa.NewSystem(autos...)
	return b, nil
}

func (b *SystemB) registerTM(name ioa.TxnName, item string, kind tree.Kind) {
	b.tmItem[name] = item
	b.tmKind[name] = kind
}

func itemSpec(s core.Spec, name string) (core.ItemSpec, bool) {
	for _, it := range s.Items {
		if it.Name == name {
			return it, true
		}
	}
	return core.ItemSpec{}, false
}

func reconfigurableItems(spec Spec) []string {
	var out []string
	for _, it := range spec.Core.Items {
		if len(spec.NewConfigs[it.Name]) > 0 {
			out = append(out, it.Name)
		}
	}
	return out
}
