package reconfig

import (
	"fmt"
	"reflect"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// ReadCoordinator performs the read phase shared by all three TM kinds
// (Section 4): it reads DMs for x, keeping the value v and version number t
// from the replica with the highest version number seen, the configuration
// c and generation number g from the replica with the highest generation
// number seen, and the set d of replicas read. When c acquires a
// read-quorum that is a subset of d, the coordinator may commit, reporting
// (v, t, c, g) to its TM.
type ReadCoordinator struct {
	tr   *tree.Tree
	name ioa.TxnName

	children []ioa.TxnName
	dmOf     map[ioa.TxnName]string

	awake     bool
	res       ReadResult
	read      map[string]bool // d
	requested map[ioa.TxnName]bool
}

var _ ioa.Automaton = (*ReadCoordinator)(nil)

// NewReadCoordinator builds the automaton for the coordinator node name,
// whose children are read accesses to the item's DMs. initial is the
// replicas' common initial state.
func NewReadCoordinator(tr *tree.Tree, name ioa.TxnName, initial RData) *ReadCoordinator {
	c := &ReadCoordinator{
		tr:        tr,
		name:      name,
		dmOf:      map[ioa.TxnName]string{},
		res:       ReadResult{VN: initial.VN, Val: initial.Val, Gen: initial.Gen, Cfg: initial.Cfg},
		read:      map[string]bool{},
		requested: map[ioa.TxnName]bool{},
	}
	for _, ch := range tr.Children(name) {
		c.children = append(c.children, ch)
		c.dmOf[ch] = tr.Node(ch).Object
	}
	return c
}

// Name implements ioa.Automaton.
func (c *ReadCoordinator) Name() string { return string(c.name) }

// HasOp implements ioa.Automaton.
func (c *ReadCoordinator) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == c.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return c.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (c *ReadCoordinator) IsOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == c.name
	case ioa.OpRequestCreate:
		return c.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// quorumRead reports whether c (the highest-generation configuration seen)
// has a read-quorum contained in d.
func (c *ReadCoordinator) quorumRead() bool { return c.res.Cfg.HasReadQuorum(c.read) }

// Enabled implements ioa.Automaton.
func (c *ReadCoordinator) Enabled() []ioa.Op {
	if !c.awake {
		return nil
	}
	var out []ioa.Op
	for _, ch := range c.children {
		if !c.requested[ch] {
			out = append(out, ioa.RequestCreate(ch))
		}
	}
	if c.quorumRead() {
		out = append(out, ioa.RequestCommit(c.name, c.res))
	}
	return out
}

// Step implements ioa.Automaton.
func (c *ReadCoordinator) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		c.awake = true
	case ioa.OpCommit:
		d, ok := op.Val.(RData)
		if !ok {
			return fmt.Errorf("read-coordinator %v: COMMIT(%v) value %v is not replica data", c.name, op.Txn, op.Val)
		}
		c.read[c.dmOf[op.Txn]] = true
		if d.VN > c.res.VN {
			c.res.VN, c.res.Val = d.VN, d.Val
		}
		if d.Gen > c.res.Gen {
			c.res.Gen, c.res.Cfg = d.Gen, d.Cfg
		}
	case ioa.OpAbort:
		// No postconditions.
	case ioa.OpRequestCreate:
		if !c.awake || c.requested[op.Txn] {
			return fmt.Errorf("%w: %v by read-coordinator %v", ioa.ErrNotEnabled, op, c.name)
		}
		c.requested[op.Txn] = true
	case ioa.OpRequestCommit:
		if !c.awake || !c.quorumRead() {
			return fmt.Errorf("%w: %v: no read-quorum of the current configuration read", ioa.ErrNotEnabled, op)
		}
		if !reflect.DeepEqual(op.Val, c.res) {
			return fmt.Errorf("%w: %v: state requires %v", ioa.ErrNotEnabled, op, c.res)
		}
		c.awake = false
	default:
		return fmt.Errorf("read-coordinator %v: unexpected op %v", c.name, op)
	}
	return nil
}

// WriteCoordinator performs a write phase: it writes its task's payload to
// the item's DMs until commits have been received from some write-quorum of
// the task's configuration, then may commit (returning nil). The task is
// bound to the coordinator's tree node by the parent TM at REQUEST-CREATE
// time and loaded when the coordinator is created.
type WriteCoordinator struct {
	tr   *tree.Tree
	name ioa.TxnName

	children []ioa.TxnName
	dmOf     map[ioa.TxnName]string

	awake     bool
	task      WriteTask
	written   map[string]bool
	requested map[ioa.TxnName]bool
}

var _ ioa.Automaton = (*WriteCoordinator)(nil)

// NewWriteCoordinator builds the automaton for the coordinator node name,
// whose children are write accesses to the item's DMs.
func NewWriteCoordinator(tr *tree.Tree, name ioa.TxnName) *WriteCoordinator {
	c := &WriteCoordinator{
		tr:        tr,
		name:      name,
		dmOf:      map[ioa.TxnName]string{},
		written:   map[string]bool{},
		requested: map[ioa.TxnName]bool{},
	}
	for _, ch := range tr.Children(name) {
		c.children = append(c.children, ch)
		c.dmOf[ch] = tr.Node(ch).Object
	}
	return c
}

// Name implements ioa.Automaton.
func (c *WriteCoordinator) Name() string { return string(c.name) }

// HasOp implements ioa.Automaton.
func (c *WriteCoordinator) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == c.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return c.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (c *WriteCoordinator) IsOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == c.name
	case ioa.OpRequestCreate:
		return c.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// quorumWritten reports whether the task's configuration has a write-quorum
// among the committed writes.
func (c *WriteCoordinator) quorumWritten() bool { return c.task.Cfg.HasWriteQuorum(c.written) }

// Enabled implements ioa.Automaton.
func (c *WriteCoordinator) Enabled() []ioa.Op {
	if !c.awake {
		return nil
	}
	var out []ioa.Op
	for _, ch := range c.children {
		if !c.requested[ch] {
			out = append(out, ioa.RequestCreate(ch))
		}
	}
	if c.quorumWritten() {
		out = append(out, ioa.RequestCommit(c.name, nil))
	}
	return out
}

// Step implements ioa.Automaton.
func (c *WriteCoordinator) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		task, ok := c.tr.Node(c.name).Data.(WriteTask)
		if !ok {
			return fmt.Errorf("write-coordinator %v: created without a bound task", c.name)
		}
		c.task = task
		c.awake = true
	case ioa.OpCommit:
		c.written[c.dmOf[op.Txn]] = true
	case ioa.OpAbort:
		// No postconditions.
	case ioa.OpRequestCreate:
		if !c.awake || c.requested[op.Txn] {
			return fmt.Errorf("%w: %v by write-coordinator %v", ioa.ErrNotEnabled, op, c.name)
		}
		// Bind the access's data attribute to the task payload.
		c.tr.Node(op.Txn).Data = c.task.Payload
		c.requested[op.Txn] = true
	case ioa.OpRequestCommit:
		if !c.awake || !c.quorumWritten() {
			return fmt.Errorf("%w: %v: no write-quorum written", ioa.ErrNotEnabled, op)
		}
		if op.Val != nil {
			return fmt.Errorf("%w: %v: write-coordinator must return nil", ioa.ErrNotEnabled, op)
		}
		c.awake = false
	default:
		return fmt.Errorf("write-coordinator %v: unexpected op %v", c.name, op)
	}
	return nil
}
