// Package metrics provides the small stdlib-only counters and latency
// histograms the benchmark harness reports.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// It is lock-free: replica service loops increment counters on every
// request, so a mutex here would serialize the hot path it measures.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable instantaneous value safe for concurrent use — the
// "how many right now" counterpart to Counter (suspect replicas, open
// circuits, live leases). Lock-free for the same reason Counter is.
type Gauge struct {
	n atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram records duration samples and reports simple summary statistics.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// ObserveSince records the time elapsed since t0 as one sample — the
// common "time this phase" pattern without the time.Since noise at every
// call site.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0))
}

// intHistWindow bounds how many samples an IntHistogram retains. Queue
// depths are observed once per admitted request, so a sustained overload
// campaign would otherwise grow the sample slice without bound while
// Snapshot sorts it under the same lock the recording path needs.
const intHistWindow = 1 << 16

// IntHistogram records dimensionless integer samples (batch sizes, queue
// depths, replay counts) and reports simple summary statistics over a
// sliding window of the most recent intHistWindow observations. The
// duration Histogram stays separate so call sites never mix units.
//
// It is safe for concurrent use: replica service goroutines record into it
// while store accessors snapshot it.
type IntHistogram struct {
	mu      sync.Mutex
	samples []int64
	total   int64 // observations ever, including ones the window evicted
}

// Observe records one sample.
func (h *IntHistogram) Observe(v int64) {
	h.mu.Lock()
	if len(h.samples) < intHistWindow {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.total%intHistWindow] = v
	}
	h.total++
	h.mu.Unlock()
}

// IntSummary holds the statistics of an IntHistogram snapshot. Count is
// the total number of observations ever recorded; the quantiles summarize
// the retained window.
type IntSummary struct {
	Count int
	Mean  float64
	P50   int64
	P95   int64
	Max   int64
}

// Count returns the number of samples recorded so far.
func (h *IntHistogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.total)
}

// Snapshot computes summary statistics over the retained sample window.
func (h *IntHistogram) Snapshot() IntSummary {
	h.mu.Lock()
	samples := append([]int64(nil), h.samples...)
	total := h.total
	h.mu.Unlock()
	if len(samples) == 0 {
		return IntSummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, s := range samples {
		sum += s
	}
	pct := func(p float64) int64 {
		return samples[int(p*float64(len(samples)-1))]
	}
	return IntSummary{
		Count: int(total),
		Mean:  float64(sum) / float64(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		Max:   samples[len(samples)-1],
	}
}

// String renders the summary compactly.
func (s IntSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d max=%d", s.Count, s.Mean, s.P50, s.P95, s.Max)
}

// Summary holds the statistics of a histogram snapshot.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Count returns the number of samples recorded so far.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Snapshot computes summary statistics over the samples so far.
func (h *Histogram) Snapshot() Summary { return h.SnapshotAfter(0) }

// SnapshotAfter computes summary statistics over the samples recorded
// after the first skip ones — a window for per-phase reporting.
func (h *Histogram) SnapshotAfter(skip int) Summary {
	h.mu.Lock()
	var samples []time.Duration
	if skip < len(h.samples) {
		samples = append(samples, h.samples[skip:]...)
	}
	h.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return Summary{
		Count: len(samples),
		Mean:  total / time.Duration(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   samples[len(samples)-1],
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v", s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
