// Package metrics provides the small stdlib-only counters and latency
// histograms the benchmark harness reports.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Gauge is a settable instantaneous value safe for concurrent use — the
// "how many right now" counterpart to Counter (suspect replicas, open
// circuits, live leases).
type Gauge struct {
	mu sync.Mutex
	n  int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.n = v
	g.mu.Unlock()
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	g.mu.Lock()
	g.n += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Histogram records duration samples and reports simple summary statistics.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// ObserveSince records the time elapsed since t0 as one sample — the
// common "time this phase" pattern without the time.Since noise at every
// call site.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0))
}

// IntHistogram records dimensionless integer samples (batch sizes, queue
// depths, replay counts) and reports simple summary statistics. The
// duration Histogram stays separate so call sites never mix units.
type IntHistogram struct {
	mu      sync.Mutex
	samples []int64
}

// Observe records one sample.
func (h *IntHistogram) Observe(v int64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// IntSummary holds the statistics of an IntHistogram snapshot.
type IntSummary struct {
	Count int
	Mean  float64
	P50   int64
	P95   int64
	Max   int64
}

// Count returns the number of samples recorded so far.
func (h *IntHistogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Snapshot computes summary statistics over the samples so far.
func (h *IntHistogram) Snapshot() IntSummary {
	h.mu.Lock()
	samples := append([]int64(nil), h.samples...)
	h.mu.Unlock()
	if len(samples) == 0 {
		return IntSummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total int64
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) int64 {
		return samples[int(p*float64(len(samples)-1))]
	}
	return IntSummary{
		Count: len(samples),
		Mean:  float64(total) / float64(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		Max:   samples[len(samples)-1],
	}
}

// String renders the summary compactly.
func (s IntSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d max=%d", s.Count, s.Mean, s.P50, s.P95, s.Max)
}

// Summary holds the statistics of a histogram snapshot.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Count returns the number of samples recorded so far.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Snapshot computes summary statistics over the samples so far.
func (h *Histogram) Snapshot() Summary { return h.SnapshotAfter(0) }

// SnapshotAfter computes summary statistics over the samples recorded
// after the first skip ones — a window for per-phase reporting.
func (h *Histogram) SnapshotAfter(skip int) Summary {
	h.mu.Lock()
	var samples []time.Duration
	if skip < len(h.samples) {
		samples = append(samples, h.samples[skip:]...)
	}
	h.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return Summary{
		Count: len(samples),
		Mean:  total / time.Duration(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   samples[len(samples)-1],
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v", s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
