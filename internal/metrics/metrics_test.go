package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 5000 {
		t.Errorf("Value = %d, want 5000", c.Value())
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P95 < 90*time.Millisecond || s.P95 > 100*time.Millisecond {
		t.Errorf("P95 = %v", s.P95)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v", s.Mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestSnapshotAfterWindows(t *testing.T) {
	var h Histogram
	h.Observe(time.Second) // old phase
	mark := h.Count()
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	s := h.SnapshotAfter(mark)
	if s.Count != 2 || s.Max != 20*time.Millisecond {
		t.Errorf("windowed snapshot = %+v", s)
	}
	if s := h.SnapshotAfter(100); s.Count != 0 {
		t.Errorf("over-skip snapshot = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if got := h.Snapshot().String(); got == "" {
		t.Error("empty String")
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	t0 := time.Now().Add(-10 * time.Millisecond)
	h.ObserveSince(t0)
	s := h.Snapshot()
	if s.Count != 1 || s.Max < 10*time.Millisecond {
		t.Errorf("ObserveSince sample = %+v, want one sample >= 10ms", s)
	}
}
