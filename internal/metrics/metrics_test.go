package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 5000 {
		t.Errorf("Value = %d, want 5000", c.Value())
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P95 < 90*time.Millisecond || s.P95 > 100*time.Millisecond {
		t.Errorf("P95 = %v", s.P95)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v", s.Mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestSnapshotAfterWindows(t *testing.T) {
	var h Histogram
	h.Observe(time.Second) // old phase
	mark := h.Count()
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	s := h.SnapshotAfter(mark)
	if s.Count != 2 || s.Max != 20*time.Millisecond {
		t.Errorf("windowed snapshot = %+v", s)
	}
	if s := h.SnapshotAfter(100); s.Count != 0 {
		t.Errorf("over-skip snapshot = %+v", s)
	}
}

func TestIntHistogramSummary(t *testing.T) {
	var h IntHistogram
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Errorf("P50 = %d", s.P50)
	}
	if s.Mean != 50.5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestIntHistogramWindowBounded(t *testing.T) {
	var h IntHistogram
	n := intHistWindow + 5000
	for i := 0; i < n; i++ {
		h.Observe(int64(i))
	}
	if h.Count() != n {
		t.Errorf("Count = %d, want %d (evicted samples still counted)", h.Count(), n)
	}
	s := h.Snapshot()
	if len(h.samples) != intHistWindow {
		t.Errorf("retained %d samples, want window of %d", len(h.samples), intHistWindow)
	}
	if s.Max != int64(n-1) {
		t.Errorf("Max = %d, want newest sample %d retained", s.Max, n-1)
	}
}

// TestIntHistogramConcurrentHammer is the -race gate for the overload
// instrumentation path: replica service goroutines observe queue depths
// into the same IntHistogram that store metrics accessors snapshot
// concurrently. The hammer runs writers, snapshotters, and counters at
// once; the race detector (make verify runs this package under -race)
// flags any unsynchronized access, and the final count pins that no
// observation was lost.
func TestIntHistogramConcurrentHammer(t *testing.T) {
	var h IntHistogram
	const writers, perWriter = 8, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Snapshot()
					_ = h.Count()
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()
	if h.Count() != writers*perWriter {
		t.Errorf("Count = %d, want %d", h.Count(), writers*perWriter)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Add(2)
			g.Add(-1)
		}()
	}
	wg.Wait()
	if g.Value() != 50 {
		t.Errorf("Value = %d, want 50", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("Value = %d after Set", g.Value())
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if got := h.Snapshot().String(); got == "" {
		t.Error("empty String")
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	t0 := time.Now().Add(-10 * time.Millisecond)
	h.ObserveSince(t0)
	s := h.Snapshot()
	if s.Count != 1 || s.Max < 10*time.Millisecond {
		t.Errorf("ObserveSince sample = %+v, want one sample >= 10ms", s)
	}
}
