package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestLogRecordsAndRenders(t *testing.T) {
	l := NewLog()
	l.Add("t1", "write", "x := %d", 42)
	l.Add("t1", "commit", "done")
	l.Add("dm0", "crash", "killed by harness")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	out := l.Render()
	for _, frag := range []string{"t1", "write", "x := 42", "commit", "crash"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestFilterByKind(t *testing.T) {
	l := NewLog()
	l.Add("a", "read", "r1")
	l.Add("a", "write", "w1")
	l.Add("b", "read", "r2")
	reads := l.Filter("read")
	if len(reads) != 2 {
		t.Fatalf("filter returned %d", len(reads))
	}
	if all := l.Filter(); len(all) != 3 {
		t.Fatalf("empty filter should return all, got %d", len(all))
	}
}

func TestSummaryCounts(t *testing.T) {
	l := NewLog()
	l.Add("a", "read", "")
	l.Add("a", "read", "")
	l.Add("a", "commit", "")
	s := l.Summary()
	if s["read"] != 2 || s["commit"] != 1 {
		t.Errorf("summary = %v", s)
	}
}

func TestConcurrentAdds(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Add("w", "op", "n")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 1000 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Events() must be time-sorted.
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatal("events not time-sorted")
		}
	}
}
