// Package trace records structured, timestamped event logs from cluster
// runs and renders them as human-readable timelines. It is the systems
// layer's counterpart of the model layer's schedules: where a schedule is
// the formal object the theorems quantify over, a trace is the operational
// record an engineer reads when a run misbehaves.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	At    time.Time
	Actor string // transaction ID, node name, or subsystem
	Kind  string // short category: "read", "write", "commit", "abort", "crash", ...
	Msg   string
}

// Log collects events; safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewLog returns an empty log whose timeline starts now.
func NewLog() *Log {
	return &Log{start: time.Now()}
}

// Add records an event with the current timestamp.
func (l *Log) Add(actor, kind, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{
		At:    time.Now(),
		Actor: actor,
		Kind:  kind,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a time-sorted copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Filter returns the events whose kind is in kinds (all if empty).
func (l *Log) Filter(kinds ...string) []Event {
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range l.Events() {
		if len(want) == 0 || want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Render draws the timeline, one event per line, with offsets from the
// log's start.
func (l *Log) Render() string {
	var b strings.Builder
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "%10s  %-10s %-8s %s\n",
			e.At.Sub(l.start).Round(10*time.Microsecond), e.Actor, e.Kind, e.Msg)
	}
	return b.String()
}

// Summary counts events per kind.
func (l *Log) Summary() map[string]int {
	out := map[string]int{}
	for _, e := range l.Events() {
		out[e.Kind]++
	}
	return out
}
