package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ShardScaleConfig parameterizes the shard scale-out experiment (E16):
// the same read-heavy zipfian workload driven against clusters of 1, 2, 4
// and 8 shards (replica groups), each replica behind a finite simulated
// service time, so throughput is bounded by aggregate service capacity —
// the thing sharding is supposed to scale. Zero values take the defaults
// noted on each field.
type ShardScaleConfig struct {
	// Seed drives key placement and workload content. Like E14 the
	// experiment measures wall-clock throughput, so it is reproducible in
	// distribution, not bit for bit.
	Seed int64
	// Shards lists the arm sizes (default 1, 2, 4, 8 groups).
	Shards []int
	// Replicas is the number of DMs per group (default 3, majority quorums).
	Replicas int
	// Keys is the keyspace size (default 128: wide enough that even the
	// zipfian head spreads across shards once ranks are striped).
	Keys int
	// Workers is the closed-loop client concurrency, identical across arms
	// (default 8): enough to saturate the 1-shard arm's service capacity
	// while the same load spread over 4 groups leaves headroom — the
	// throughput gain and the latency relief are the measurement.
	Workers int
	// TxnsPerWorker is how many transactions each worker drives
	// (default 80).
	TxnsPerWorker int
	// ServiceTime is the simulated per-request service delay at every
	// replica (default 400µs): large enough that queueing at saturated
	// groups, not host CPU contention, decides each arm's throughput.
	ServiceTime time.Duration
	// ReadFraction (default 0.95) and Theta (default 0.9) shape the 95/5
	// zipfian mix. The theta default sits below YCSB's 0.99 deliberately:
	// at 0.99 a quarter of all traffic lands on one key, and the exclusive
	// write lock on that key — not service capacity — becomes the
	// bottleneck, which no amount of sharding removes (or should appear
	// to).
	ReadFraction float64
	Theta        float64
}

func (c ShardScaleConfig) withDefaults() ShardScaleConfig {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Keys <= 0 {
		c.Keys = 128
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.TxnsPerWorker <= 0 {
		c.TxnsPerWorker = 80
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 400 * time.Microsecond
	}
	if c.ReadFraction <= 0 {
		c.ReadFraction = 0.95
	}
	if c.Theta <= 0 {
		c.Theta = 0.9
	}
	return c
}

// ShardScaleArm is one arm's outcome.
type ShardScaleArm struct {
	Shards    int
	Replicas  int
	Workers   int
	Committed int
	Failed    int
	// Throughput is committed transactions per second of wall time. P50 and
	// P99 are latency quantiles over all committed transactions; ReadP50
	// and ReadP99 restrict to read-only transactions — the gated series,
	// since the all-txn tail is writer lock-wait on the zipfian head, a
	// contention cost sharding does not claim to remove.
	Throughput       float64
	P50, P99         time.Duration
	ReadP50, ReadP99 time.Duration
	Elapsed          time.Duration
}

// ShardScaleResult holds every arm, smallest first.
type ShardScaleResult struct {
	Arms []ShardScaleArm
}

// Arm returns the arm with the given shard count.
func (r ShardScaleResult) Arm(shards int) (ShardScaleArm, bool) {
	for _, a := range r.Arms {
		if a.Shards == shards {
			return a, true
		}
	}
	return ShardScaleArm{}, false
}

// Check is the E16 gate: scale-out must actually scale. With identical
// offered load and per-replica service capacity, the 4-shard arm must
// deliver at least 2.5x the 1-shard arm's throughput, and the latency of
// committed (read-dominated) work must not regress — more capacity can
// only shorten queues. A generous absolute allowance keeps scheduler
// noise on loaded CI hosts from failing a healthy run.
func (r ShardScaleResult) Check() error {
	one, ok1 := r.Arm(1)
	four, ok4 := r.Arm(4)
	if !ok1 || !ok4 {
		return fmt.Errorf("shardscale: need 1- and 4-shard arms to gate (have %d arms)", len(r.Arms))
	}
	for _, a := range r.Arms {
		if a.Committed == 0 {
			return fmt.Errorf("shardscale: %d-shard arm committed nothing", a.Shards)
		}
		if a.Failed*20 > a.Committed {
			return fmt.Errorf("shardscale: %d-shard arm failed %d of %d transactions — beyond starved hot-key writers",
				a.Shards, a.Failed, a.Committed+a.Failed)
		}
	}
	if four.Throughput < 2.5*one.Throughput {
		return fmt.Errorf("shardscale: 4-shard throughput %.0f txn/s < 2.5x 1-shard %.0f txn/s",
			four.Throughput, one.Throughput)
	}
	if four.ReadP99 > one.ReadP99+one.ReadP99/2+2*time.Millisecond {
		return fmt.Errorf("shardscale: read p99 regressed %v -> %v going 1 -> 4 shards", one.ReadP99, four.ReadP99)
	}
	return nil
}

// RunShardScale runs every arm back to back, each on a fresh cluster.
func RunShardScale(ctx context.Context, cfg ShardScaleConfig) (ShardScaleResult, error) {
	cfg = cfg.withDefaults()
	var res ShardScaleResult
	for _, n := range cfg.Shards {
		arm, err := RunShardScaleArm(ctx, cfg, n)
		if err != nil {
			return res, fmt.Errorf("shardscale: %d-shard arm: %w", n, err)
		}
		res.Arms = append(res.Arms, arm)
	}
	return res, nil
}

// RunShardScaleArm runs one arm — a fresh sharded cluster of n replica
// groups under the configured workload — in isolation, for benchmarks
// that want per-arm series; RunShardScale composes the sweep and Check
// gates on the comparison.
func RunShardScaleArm(ctx context.Context, cfg ShardScaleConfig, n int) (ShardScaleArm, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		return ShardScaleArm{}, fmt.Errorf("chaos: shard arm size %d", n)
	}
	groups := make([]shard.Group, n)
	for i := range groups {
		dms := make([]string, cfg.Replicas)
		for j := range dms {
			dms[j] = fmt.Sprintf("g%d-dm%d", i, j)
		}
		groups[i] = shard.Group{Name: fmt.Sprintf("g%d", i), DMs: dms}
	}
	ring, err := shard.New(cfg.Seed, 64, groups)
	if err != nil {
		return ShardScaleArm{}, err
	}
	keys := shard.Keys("k", cfg.Keys)
	// Consistent hashing balances key count, not key heat: a zipfian head
	// that the hash happens to co-locate would measure placement luck, not
	// scale-out. Stripe ranks round-robin instead — the balanced placement
	// an operator converges on with MigrateShard once heat is known.
	for i, k := range keys {
		if err := ring.MoveKey(k, fmt.Sprintf("g%d", i%n)); err != nil {
			return ShardScaleArm{}, err
		}
	}
	items, err := cluster.ShardItems(ring, keys, 0)
	if err != nil {
		return ShardScaleArm{}, err
	}
	net := sim.NewNetwork(sim.Config{Seed: cfg.Seed})
	defer net.Close()
	store, err := cluster.Open(net, items,
		cluster.WithSeed(cfg.Seed),
		cluster.WithCallTimeout(time.Second),
		cluster.WithHedgeDelay(0), // hedges would inflate offered load
		// The service delay only bites behind an admission queue (that is
		// where the single service goroutine lives); a deep bound keeps the
		// finite service rate without ever shedding the closed-loop load.
		cluster.WithAdmissionCapacity(1024),
		cluster.WithServiceTime(cfg.ServiceTime),
		cluster.WithRing(ring),
		// The 5% writes collide on the zipfian head; generous retries with a
		// short backoff let them serialize instead of failing the run.
		cluster.WithLockRetries(10),
		cluster.WithTxnRetries(10),
		cluster.WithRetryBackoff(500*time.Microsecond),
	)
	if err != nil {
		return ShardScaleArm{}, err
	}
	defer store.Close()

	workers := cfg.Workers
	wres, werr := workload.Run(ctx, store, workload.Profile{
		ReadFraction: cfg.ReadFraction,
		OpsPerTxn:    1, // single-key txns: the scaling measurement; cross-shard txns are the router tests' job
		Items:        keys,
		Distribution: workload.DistZipfian,
		Theta:        cfg.Theta,
		Seed:         CampaignSeed(cfg.Seed, n),
	}, workers*cfg.TxnsPerWorker, workers)
	if werr != nil && !errors.Is(werr, cluster.ErrConflict) {
		// Conflict-exhausted writes are starved writers on the zipfian
		// head — shed load the arm reports (Failed) and Check bounds, not
		// a harness failure. Anything else is.
		return ShardScaleArm{}, werr
	}
	return ShardScaleArm{
		Shards:     n,
		Replicas:   cfg.Replicas,
		Workers:    workers,
		Committed:  wres.Committed,
		Failed:     wres.Failed,
		Throughput: wres.Throughput(),
		P50:        wres.P50,
		P99:        wres.P99,
		ReadP50:    wres.ReadP50,
		ReadP99:    wres.ReadP99,
		Elapsed:    wres.Elapsed,
	}, ctx.Err()
}
