package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// OverloadConfig parameterizes the three-arm overload experiment (E14).
// Zero values take the defaults noted on each field.
type OverloadConfig struct {
	// Seed drives workload content (item choice per worker). The experiment
	// measures wall-clock goodput, so unlike a campaign it is reproducible
	// in distribution, not bit for bit.
	Seed int64
	// Items (default 2) and Replicas (default 3) shape the cluster.
	Items    int
	Replicas int
	// Workers is the capacity arm's concurrency (default 6); the overload
	// and ablation arms run 2x.
	Workers int
	// TxnsPerWorker is how many transactions each worker attempts
	// (default 60).
	TxnsPerWorker int
	// ServiceTime is the simulated per-request service delay at every
	// replica (default 2ms) — it is what makes service capacity finite. It
	// is deliberately large so queueing physics, not host CPU contention,
	// decides the outcome.
	ServiceTime time.Duration
	// Deadline is each transaction's end-to-end budget (default 25ms),
	// propagated through every hop.
	Deadline time.Duration
	// AdmitCapacity is the replica admission queue bound on the protected
	// arms (default 2). The ablation arm runs effectively unbounded.
	AdmitCapacity int
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Items <= 0 {
		c.Items = 2
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Workers <= 0 {
		c.Workers = 6
	}
	if c.TxnsPerWorker <= 0 {
		c.TxnsPerWorker = 60
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 2 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 25 * time.Millisecond
	}
	if c.AdmitCapacity <= 0 {
		c.AdmitCapacity = 2
	}
	return c
}

// OverloadArm is one arm's outcome.
type OverloadArm struct {
	Name    string
	Workers int
	// Offered is transactions attempted; Committed is transactions that
	// finished inside their deadline — the goodput numerator.
	Offered   int
	Committed int
	// Client-side failure classes: Overloaded (typed fast rejections),
	// Expired (the transaction's own deadline lapsed), Other.
	Overloaded int
	Expired    int
	Other      int
	// Replica-side admission verdicts, summed over all DMs: requests shed
	// at a full queue, admitted requests discarded at dequeue because their
	// deadline had lapsed, and — ablation only — expired requests served
	// anyway (dead work burning real service capacity).
	Shed             int64
	ExpiredOnArrival int64
	ServedExpired    int64
	// P50/P99 are latency quantiles of committed transactions only: the
	// experience of admitted work.
	P50, P99 time.Duration
	Elapsed  time.Duration
	// Goodput is committed transactions per second of wall time.
	Goodput float64
}

// OverloadResult is the three-arm comparison: a healthy cluster at
// capacity, the same protections under 2x load, and 2x load with every
// protection ablated (unbounded queues, expired work served, no retry
// budget, no concurrency limiter).
type OverloadResult struct {
	Capacity OverloadArm
	Overload OverloadArm
	Ablation OverloadArm
}

// RunOverload runs the three arms back to back, each on a fresh cluster.
func RunOverload(ctx context.Context, cfg OverloadConfig) (OverloadResult, error) {
	cfg = cfg.withDefaults()
	var res OverloadResult
	var err error
	if res.Capacity, err = runOverloadArm(ctx, cfg, "capacity", cfg.Workers, true); err != nil {
		return res, err
	}
	if res.Overload, err = runOverloadArm(ctx, cfg, "overload", 2*cfg.Workers, true); err != nil {
		return res, err
	}
	if res.Ablation, err = runOverloadArm(ctx, cfg, "ablation", 2*cfg.Workers, false); err != nil {
		return res, err
	}
	return res, nil
}

// RunOverloadArm runs one named arm — "capacity", "overload" or
// "ablation" — in isolation, for benchmarks that want per-arm series;
// RunOverload composes all three and Check gates on the comparison.
func RunOverloadArm(ctx context.Context, cfg OverloadConfig, arm string) (OverloadArm, error) {
	cfg = cfg.withDefaults()
	switch arm {
	case "capacity":
		return runOverloadArm(ctx, cfg, arm, cfg.Workers, true)
	case "overload":
		return runOverloadArm(ctx, cfg, arm, 2*cfg.Workers, true)
	case "ablation":
		return runOverloadArm(ctx, cfg, arm, 2*cfg.Workers, false)
	}
	return OverloadArm{}, fmt.Errorf("chaos: unknown overload arm %q", arm)
}

// Check is the E14 gate: under 2x load the protections must hold goodput
// within 20% of single-load capacity without ever serving expired work,
// admitted work's p99 must not blow up, and the ablation must demonstrate
// the meltdown the protections exist to prevent.
func (r OverloadResult) Check() error {
	c, o, a := r.Capacity, r.Overload, r.Ablation
	if c.Committed == 0 {
		return fmt.Errorf("overload: capacity arm committed nothing")
	}
	if o.Goodput < 0.8*c.Goodput {
		return fmt.Errorf("overload: goodput at 2x load = %.0f txn/s, want >= 80%% of capacity (%.0f txn/s)",
			o.Goodput, c.Goodput)
	}
	if c.ServedExpired != 0 || o.ServedExpired != 0 {
		return fmt.Errorf("overload: protected arms served expired work (capacity=%d overload=%d), want zero",
			c.ServedExpired, o.ServedExpired)
	}
	if o.Shed == 0 {
		return fmt.Errorf("overload: 2x load shed nothing — admission never engaged, the arm proves nothing")
	}
	if o.P99 > 5*c.P99+5*time.Millisecond {
		return fmt.Errorf("overload: p99 of admitted work regressed %v -> %v under 2x load", c.P99, o.P99)
	}
	if a.ServedExpired == 0 {
		return fmt.Errorf("overload: ablation served no expired work — the meltdown mechanism never engaged")
	}
	if a.Goodput >= 0.8*o.Goodput {
		return fmt.Errorf("overload: ablation goodput %.0f txn/s did not collapse below protected %.0f txn/s",
			a.Goodput, o.Goodput)
	}
	return nil
}

func runOverloadArm(ctx context.Context, cfg OverloadConfig, name string, workers int, protected bool) (OverloadArm, error) {
	net := sim.NewNetwork(sim.Config{Seed: cfg.Seed})
	defer net.Close()
	items := make([]cluster.ItemSpec, cfg.Items)
	names := make([]string, cfg.Items)
	for i := range items {
		n := fmt.Sprintf("x%d", i)
		dms := make([]string, cfg.Replicas)
		for j := range dms {
			dms[j] = fmt.Sprintf("%s-dm%d", n, j)
		}
		items[i] = cluster.ItemSpec{Name: n, Initial: 0, DMs: dms, Config: quorum.Majority(dms)}
		names[i] = n
	}
	opts := []cluster.Option{
		cluster.WithSeed(cfg.Seed),
		cluster.WithCallTimeout(time.Second), // backstop; the deadline clamps it
		cluster.WithHedgeDelay(0),            // hedges would amplify offered load
		cluster.WithServiceTime(cfg.ServiceTime),
		cluster.WithLockRetries(2),
		cluster.WithTxnRetries(0),
	}
	if protected {
		opts = append(opts,
			cluster.WithAdmissionCapacity(cfg.AdmitCapacity),
			cluster.WithRetryBudget(0.5),
			cluster.WithInflightLimit(workers),
			// A generous hop allowance makes deadline propagation bite early:
			// a phase with under 3ms of budget left fails at the caller
			// instead of burning scarce service on work it cannot finish,
			// and in-queue requests expire (and are discarded) 3ms sooner.
			cluster.WithHopAllowance(3*time.Millisecond),
		)
	} else {
		// Every protection ablated: a queue too deep to ever shed, expired
		// work served as if fresh, unlimited retries and concurrency.
		opts = append(opts,
			cluster.WithAdmissionCapacity(1<<20),
			cluster.WithExpiredService(true),
		)
	}
	store, err := cluster.Open(net, items, opts...)
	if err != nil {
		return OverloadArm{}, err
	}
	defer store.Close()

	arm := OverloadArm{Name: name, Workers: workers}
	var mu sync.Mutex
	var lat []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(CampaignSeed(cfg.Seed, w)))
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				if ctx.Err() != nil {
					return
				}
				item := names[rng.Intn(len(names))]
				tctx, cancel := context.WithTimeout(ctx, cfg.Deadline)
				t0 := time.Now()
				rerr := store.Run(tctx, func(tx *cluster.Txn) error {
					_, err := tx.Read(tctx, item)
					return err
				})
				d := time.Since(t0)
				cancel()
				mu.Lock()
				arm.Offered++
				switch {
				case rerr == nil:
					arm.Committed++
					lat = append(lat, d)
				case errors.Is(rerr, cluster.ErrOverloaded):
					arm.Overloaded++
				case errors.Is(rerr, context.DeadlineExceeded):
					arm.Expired++
				default:
					arm.Other++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	arm.Elapsed = time.Since(start)
	if arm.Elapsed > 0 {
		arm.Goodput = float64(arm.Committed) / arm.Elapsed.Seconds()
	}
	totals := store.OverloadTotals()
	arm.Shed = totals.Shed
	arm.ExpiredOnArrival = totals.ExpiredDropped
	arm.ServedExpired = totals.ServedExpired
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		arm.P50 = lat[len(lat)/2]
		arm.P99 = lat[len(lat)*99/100]
	}
	return arm, ctx.Err()
}
