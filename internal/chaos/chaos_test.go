package chaos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/commit"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// shortCfg keeps campaigns small enough for the tier-1 suite.
func shortCfg(seed int64) Config {
	return Config{
		Seed:         seed,
		Items:        2,
		Replicas:     3,
		Rounds:       2,
		TxnsPerRound: 4,
	}
}

// TestCampaignSmoke is the tier-1 chaos gate: ten short seeded campaigns
// with the full fault mix, every history verified.
func TestCampaignSmoke(t *testing.T) {
	ctx := testCtx(t)
	for i := 0; i < 10; i++ {
		seed := CampaignSeed(1, i)
		res, err := Run(ctx, shortCfg(seed))
		if err != nil {
			t.Fatalf("campaign %d (seed %d): %v", i, seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("campaign %d (seed %d): no transactions committed", i, seed)
		}
	}
}

// skipReplayUnderRace guards the exact-replay assertions. Replay
// determinism holds under the wall-clock margins the campaigns were
// engineered for; the race detector's 5–20x slowdown erodes them enough
// that real-time call budgets occasionally fire on calls the unraced run
// completes, shifting message counts. Campaign correctness (histories,
// convergence, zero-wedged) still runs under race — only the DeepEqual
// replay checks are timing-exact.
func skipReplayUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("exact replay is wall-clock sensitive; race slowdown fires spurious call-budget timeouts")
	}
}

// TestCampaignDeterministic reruns one campaign with the same seed and
// demands identical results down to the network's fate counters — the
// property that makes a failing seed replayable.
func TestCampaignDeterministic(t *testing.T) {
	skipReplayUnderRace(t)
	ctx := testCtx(t)
	cfg := shortCfg(7)
	cfg.Rounds = 3
	a, errA := Run(ctx, cfg)
	b, errB := Run(ctx, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}

// TestAmnesiaCampaign runs amnesia-only campaigns: replicas keep having
// their memory wiped and rebuilt from their write-ahead logs mid-campaign,
// and every history must still verify. Aggregate recovery counters prove
// the fate actually fired and actually replayed log records.
func TestAmnesiaCampaign(t *testing.T) {
	ctx := testCtx(t)
	injected, recoveries := 0, 0
	var replayed int64
	for i := 0; i < 5; i++ {
		cfg := shortCfg(CampaignSeed(21, i))
		cfg.Faults = []Fault{FaultAmnesia}
		cfg.Rounds = 3
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("amnesia campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("campaign %d committed nothing", i)
		}
		if res.Injected[FaultAmnesia] > 0 && res.Recoveries == 0 {
			t.Errorf("campaign %d injected amnesia %d times but recovered no DM",
				i, res.Injected[FaultAmnesia])
		}
		injected += res.Injected[FaultAmnesia]
		recoveries += res.Recoveries
		replayed += res.ReplayedRecords
	}
	if injected == 0 || recoveries == 0 || replayed == 0 {
		t.Errorf("amnesia fate never exercised recovery: injected=%d recoveries=%d replayed=%d",
			injected, recoveries, replayed)
	}
}

// TestClientCrashCampaign runs clientcrash-focused campaigns with
// self-healing on (the default for this fault): orphans are planted every
// campaign, the lease reaper resolves every one of them, no item ends
// permanently wedged, and the final round still commits transactions —
// throughput is re-attained after the damage.
func TestClientCrashCampaign(t *testing.T) {
	ctx := testCtx(t)
	orphans, queries := 0, int64(0)
	var reaped int64
	for i := 0; i < 3; i++ {
		cfg := shortCfg(CampaignSeed(31, i))
		cfg.Faults = []Fault{FaultClientCrash}
		cfg.Rounds = 3
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("clientcrash campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Wedged != 0 {
			t.Errorf("campaign %d left %d item(s) wedged", i, res.Wedged)
		}
		if res.Orphans > 0 && res.ReapsAborted+res.ReapsCommitted == 0 {
			t.Errorf("campaign %d planted %d orphan(s) but reaped none", i, res.Orphans)
		}
		if res.Committed == 0 || res.FinalRoundCommitted == 0 {
			t.Errorf("campaign %d: committed=%d finalRound=%d, want both > 0",
				i, res.Committed, res.FinalRoundCommitted)
		}
		orphans += res.Orphans
		reaped += res.ReapsAborted + res.ReapsCommitted
		queries += res.ResolutionQueries
	}
	if orphans == 0 || reaped == 0 || queries == 0 {
		t.Errorf("clientcrash fate never exercised the reaper: orphans=%d reaped=%d queries=%d",
			orphans, reaped, queries)
	}
}

// TestSelfHealCampaignDeterministic reruns one campaign combining the two
// self-healing faults — flapping replicas and crashed clients — and
// demands byte-identical results: the manual lease clock, the
// counter-driven health board, and the quiesce-fenced reap cascades keep
// the whole self-healing machinery inside the seeded replay.
func TestSelfHealCampaignDeterministic(t *testing.T) {
	skipReplayUnderRace(t)
	ctx := testCtx(t)
	cfg := shortCfg(5) // seed 5 injects both flap episodes and orphans
	cfg.Faults = []Fault{FaultFlap, FaultClientCrash}
	cfg.Rounds = 3
	a, errA := Run(ctx, cfg)
	b, errB := Run(ctx, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
	if a.Injected[FaultFlap] == 0 {
		t.Error("no flap episodes injected")
	}
}

// TestSelfHealOffAblation is the control group: the same clientcrash fate
// with the reaper disabled leaves orphaned locks in place forever, and the
// final writability probe finds wedged items — the failure mode the lease
// subsystem exists to rule out. (Without self-healing the wedge is
// reported, not fatal: it is the expected outcome.)
func TestSelfHealOffAblation(t *testing.T) {
	ctx := testCtx(t)
	wedged, orphans := 0, 0
	for i := 0; i < 3; i++ {
		cfg := shortCfg(CampaignSeed(41, i))
		cfg.Faults = []Fault{FaultClientCrash}
		cfg.SelfHeal = SelfHealOff
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("ablation campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.ReapsAborted+res.ReapsCommitted != 0 {
			t.Errorf("campaign %d reaped with self-healing off", i)
		}
		wedged += res.Wedged
		orphans += res.Orphans
	}
	if orphans == 0 {
		t.Fatal("ablation planted no orphans; the comparison is vacuous")
	}
	if wedged == 0 {
		t.Error("no wedged items with the reaper off — the ablation shows no effect")
	}
}

// TestMutationIsCaught plants a fault-masking bug via the store's
// test-only hook — version increments past 1 are silently masked, so a
// second write reinstalls an existing version — and asserts the checker
// rejects the campaign with the minimal two-event witness.
func TestMutationIsCaught(t *testing.T) {
	ctx := testCtx(t)
	cfg := shortCfg(3)
	cfg.Faults = []Fault{} // healthy network: the bug alone must trip it
	cfg.ReadFraction = 0.2 // mostly writes, to collide versions quickly
	cfg.MutateVN = func(item string, vn int) int {
		if vn > 1 {
			return vn - 1
		}
		return vn
	}
	_, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("masked version increments went undetected")
	}
	var v *checker.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *checker.Violation, got %T: %v", err, err)
	}
	if !strings.Contains(v.Reason, "installed twice") {
		t.Errorf("reason = %q, want duplicate-install", v.Reason)
	}
	if len(v.Events) != 2 {
		t.Errorf("witness has %d events, want the minimal pair:\n%s", len(v.Events), v.Diagnostic())
	}
}

// TestLiveCampaignVerifies runs a campaign in live mode — fan-out,
// hedging, concurrent workers — and requires the history to still verify;
// only exact counter replay is forfeited.
func TestLiveCampaignVerifies(t *testing.T) {
	ctx := testCtx(t)
	cfg := shortCfg(11)
	cfg.Live = true
	cfg.Rounds = 3
	res, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("live campaign: %v", err)
	}
	if res.Committed == 0 {
		t.Error("live campaign committed nothing")
	}
}

// TestOverloadCampaign runs overload-focused campaigns: seeded bursts slam
// replica admission queues between rounds, requests are shed and expired
// deterministically, and the workload still commits — overload at one
// replica must never corrupt or wedge the cluster.
func TestOverloadCampaign(t *testing.T) {
	ctx := testCtx(t)
	bursts := 0
	var shed, expired int64
	for i := 0; i < 5; i++ {
		cfg := shortCfg(CampaignSeed(51, i))
		cfg.Faults = []Fault{FaultOverload}
		cfg.Rounds = 3
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("overload campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("campaign %d committed nothing", i)
		}
		if res.Injected[FaultOverload] != res.Bursts {
			t.Errorf("campaign %d: injected=%d bursts=%d, want equal",
				i, res.Injected[FaultOverload], res.Bursts)
		}
		if res.Bursts > 0 && res.Shed == 0 {
			t.Errorf("campaign %d fired %d burst(s) but shed nothing — bursts always exceed capacity",
				i, res.Bursts)
		}
		bursts += res.Bursts
		shed += res.Shed
		expired += res.ExpiredOnArrival
	}
	if bursts == 0 || shed == 0 || expired == 0 {
		t.Errorf("overload fate never exercised admission: bursts=%d shed=%d expired=%d",
			bursts, shed, expired)
	}

	// Bursts bypass the network, so the overload counters replay bit for bit
	// (skipped under race for the same call-budget reason as the dedicated
	// *Deterministic tests).
	if !raceEnabled {
		cfg := shortCfg(CampaignSeed(51, 0))
		cfg.Faults = []Fault{FaultOverload}
		cfg.Rounds = 3
		a, errA := Run(ctx, cfg)
		b, errB := Run(ctx, cfg)
		if errA != nil || errB != nil {
			t.Fatalf("replay errors: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
		}
	}
}

// TestOverloadExperimentMechanics runs a scaled-down three-arm overload
// experiment and checks its structural invariants — the ones that do not
// depend on wall-clock throughput, which the qchaos -overload gate (and
// E14) measures on top: protected arms never serve expired work, admission
// engages under 2x load, and the ablation demonstrably serves dead work.
func TestOverloadExperimentMechanics(t *testing.T) {
	ctx := testCtx(t)
	res, err := RunOverload(ctx, OverloadConfig{Seed: 1, TxnsPerWorker: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []OverloadArm{res.Capacity, res.Overload, res.Ablation} {
		if a.Offered != a.Workers*30 {
			t.Errorf("%s: offered %d, want %d", a.Name, a.Offered, a.Workers*30)
		}
		if a.Committed == 0 {
			t.Errorf("%s: committed nothing", a.Name)
		}
	}
	if res.Capacity.ServedExpired != 0 || res.Overload.ServedExpired != 0 {
		t.Errorf("protected arms served expired work: %d/%d",
			res.Capacity.ServedExpired, res.Overload.ServedExpired)
	}
	if res.Overload.Shed == 0 {
		t.Error("2x load never shed — admission did not engage")
	}
	if res.Ablation.Shed != 0 {
		t.Errorf("ablation shed %d despite an unbounded queue", res.Ablation.Shed)
	}
	if res.Ablation.ServedExpired == 0 {
		t.Error("ablation served no expired work — the ablated discard had no effect")
	}
}

// TestShardScaleMechanics runs a scaled-down two-arm shard sweep and
// checks its structural invariants — the ones independent of wall-clock
// throughput, which the qchaos -shardscale gate (and E16) measures on
// top: every arm commits its full offered load on a healthy network and
// reports latency quantiles for the read series.
func TestShardScaleMechanics(t *testing.T) {
	ctx := testCtx(t)
	cfg := ShardScaleConfig{Seed: 1, Shards: []int{1, 2}, Workers: 4, TxnsPerWorker: 10, Keys: 16}
	res, err := RunShardScale(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("arms = %d, want 2", len(res.Arms))
	}
	for _, a := range res.Arms {
		if a.Committed+a.Failed != 4*10 {
			t.Errorf("%d-shard arm: committed %d + failed %d != offered 40", a.Shards, a.Committed, a.Failed)
		}
		if a.Committed == 0 || a.Throughput <= 0 {
			t.Errorf("%d-shard arm committed nothing", a.Shards)
		}
		if a.ReadP99 <= 0 || a.ReadP99 < a.ReadP50 {
			t.Errorf("%d-shard arm read quantiles p50=%v p99=%v", a.Shards, a.ReadP50, a.ReadP99)
		}
	}
	if _, ok := res.Arm(2); !ok {
		t.Error("Arm(2) not found")
	}
	if _, ok := res.Arm(4); ok {
		t.Error("Arm(4) invented an arm")
	}
}

// TestStalehintCampaign runs stalehint-focused campaigns: the scheduler
// reads the client's own fast-lane cache to find the replica the next
// hinted read would trust, partitions exactly that replica with its hint
// outstanding, commits a newer version through the survivors, heals, and
// lets the workload read — the adversarial schedule for freshness-hint
// staleness. Every history must verify (the TTL discipline expires the
// stranded hint before the heal), and the aggregate counters prove the
// fast lane was genuinely exercised, not silently bypassed.
func TestStalehintCampaign(t *testing.T) {
	ctx := testCtx(t)
	injected := 0
	var reads, hits, fences, fenceMisses int64
	for i := 0; i < 5; i++ {
		cfg := shortCfg(CampaignSeed(61, i))
		cfg.Faults = []Fault{FaultStalehint}
		cfg.Rounds = 4
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("stalehint campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("campaign %d committed nothing", i)
		}
		if res.Injected[FaultStalehint] != res.StaleHints {
			t.Errorf("campaign %d: injected=%d stales=%d, want equal",
				i, res.Injected[FaultStalehint], res.StaleHints)
		}
		injected += res.StaleHints
		reads += res.HintReads
		hits += res.HintHits
		fences += res.HintFences
		fenceMisses += res.HintFenceMisses
	}
	if injected == 0 {
		t.Error("no stalehint episodes injected across five campaigns")
	}
	if reads == 0 || hits == 0 {
		t.Errorf("fast lane never served: reads=%d hits=%d", reads, hits)
	}
	if fences == 0 {
		t.Errorf("writers never fenced: fences=%d", fences)
	}
	if fenceMisses == 0 {
		t.Error("no fence ever missed a partitioned hint holder — the fate never forced the TTL wait-out")
	}
}

// TestStalehintCampaignDeterministic reruns one stalehint campaign with
// the same seed and demands byte-identical results — down to the
// network's fate counters and the hint-lane statistics — so a failing
// adversarial schedule is exactly replayable.
func TestStalehintCampaignDeterministic(t *testing.T) {
	skipReplayUnderRace(t)
	ctx := testCtx(t)
	cfg := shortCfg(CampaignSeed(61, 0))
	cfg.Faults = []Fault{FaultStalehint}
	cfg.Rounds = 4
	a, errA := Run(ctx, cfg)
	b, errB := Run(ctx, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}

// TestMigrateCampaign runs migrate-focused campaigns: the scheduler
// live-migrates items between replica groups at round boundaries and kills
// the coordinator at the two nastiest points (before any commit delivery,
// and partway through the broadcast). Across the seeds both clean
// migrations and abandoned coordinators must occur, no item may end
// wedged, and every history must verify — whichever way each crash
// resolved.
func TestMigrateCampaign(t *testing.T) {
	ctx := testCtx(t)
	migrations, abandoned := 0, 0
	for i := 0; i < 5; i++ {
		cfg := shortCfg(CampaignSeed(71, i))
		cfg.Faults = []Fault{FaultMigrate}
		cfg.Rounds = 4
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("migrate campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("campaign %d committed nothing", i)
		}
		if res.Wedged != 0 {
			t.Errorf("campaign %d left %d item(s) wedged after migration crashes", i, res.Wedged)
		}
		migrations += res.Migrations
		abandoned += res.MigrationsAbandoned
	}
	if migrations == 0 {
		t.Error("no clean migration completed across five campaigns")
	}
	if abandoned == 0 {
		t.Error("no coordinator was ever killed mid-migration — the crash modes never fired")
	}
}

// TestMigrateCampaignDeterministic reruns one migrate campaign with the
// same seed and demands byte-identical results — migrations, abandoned
// coordinators, redirects and the network's fate counters — so a failing
// cutover schedule replays exactly.
func TestMigrateCampaignDeterministic(t *testing.T) {
	skipReplayUnderRace(t)
	ctx := testCtx(t)
	cfg := shortCfg(CampaignSeed(71, 0))
	cfg.Faults = []Fault{FaultMigrate}
	cfg.Rounds = 4
	a, errA := Run(ctx, cfg)
	b, errB := Run(ctx, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}

// TestStalehintAfterMigrateCampaign combines the two newest fault classes:
// items migrate between replica groups while the freshness-hint fast lane
// is live and under adversarial staleness schedules. A hint cached before
// a migration points at a replica that may since have retired — the
// ring-epoch invalidation must keep such hints from ever serving a
// superseded version, and the checker gates exactly that across the
// campaign.
func TestStalehintAfterMigrateCampaign(t *testing.T) {
	ctx := testCtx(t)
	moved, reads := 0, int64(0)
	for i := 0; i < 5; i++ {
		cfg := shortCfg(CampaignSeed(81, i))
		cfg.Faults = []Fault{FaultStalehint, FaultMigrate}
		cfg.Rounds = 4
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("stalehint+migrate campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Committed == 0 {
			t.Errorf("campaign %d committed nothing", i)
		}
		if res.Wedged != 0 {
			t.Errorf("campaign %d left %d item(s) wedged", i, res.Wedged)
		}
		moved += res.Migrations + res.MigrationsAbandoned
		reads += res.HintReads
	}
	if moved == 0 {
		t.Error("no migration attempt across five combined campaigns")
	}
	if reads == 0 {
		t.Error("fast lane never exercised in the combined campaigns")
	}
}

// TestCoordCrashCampaign runs coordinator-kill campaigns under both commit
// protocols: the scheduler kills a commit coordinator at seeded instants
// around the commit point, the settle pass holds every crash to the
// convergence contract (one outcome, decided commits honored, un-voted
// transactions never committed), and no item may end wedged. The Paxos arm
// must additionally resolve through acceptor recovery — Run fails the
// campaign internally on any breach, so the assertions here are that the
// crash modes fired at all and both resolution directions occur.
func TestCoordCrashCampaign(t *testing.T) {
	ctx := testCtx(t)
	for _, proto := range []commit.Protocol{commit.TwoPhase, commit.PaxosCommit} {
		crashes, committed, aborted := 0, 0, 0
		acceptorResolves := int64(0)
		for i := 0; i < 6; i++ {
			cfg := shortCfg(CampaignSeed(91, i))
			cfg.Faults = []Fault{FaultCoordCrash}
			cfg.Rounds = 4
			cfg.Protocol = proto
			res, err := Run(ctx, cfg)
			if err != nil {
				t.Fatalf("%s coordcrash campaign %d (seed %d): %v", proto, i, cfg.Seed, err)
			}
			if res.Committed == 0 {
				t.Errorf("%s campaign %d committed nothing", proto, i)
			}
			if res.Wedged != 0 {
				t.Errorf("%s campaign %d left %d item(s) wedged after coordinator kills", proto, i, res.Wedged)
			}
			if res.CoordCrashCommitted+res.CoordCrashAborted != res.CoordCrashes {
				t.Errorf("%s campaign %d: %d crashes but %d+%d resolutions", proto, i,
					res.CoordCrashes, res.CoordCrashCommitted, res.CoordCrashAborted)
			}
			crashes += res.CoordCrashes
			committed += res.CoordCrashCommitted
			aborted += res.CoordCrashAborted
			acceptorResolves += res.AcceptorResolvesCommitted + res.AcceptorResolvesAborted
			if proto == commit.PaxosCommit && res.PaxosCommits == 0 {
				t.Errorf("paxos campaign %d decided nothing through the acceptors", i)
			}
		}
		if crashes == 0 {
			t.Errorf("%s: no coordinator was ever killed across six campaigns", proto)
		}
		if committed == 0 || aborted == 0 {
			t.Errorf("%s: crash resolutions never split both ways (%d committed, %d aborted)", proto, committed, aborted)
		}
		if proto == commit.PaxosCommit && acceptorResolves == 0 {
			t.Error("paxos: no crash was ever resolved through acceptor recovery")
		}
	}
}

// TestCoordCrashCampaignDeterministic reruns one Paxos coordcrash campaign
// with the same seed and demands byte-identical results, so a failing
// crash schedule replays exactly.
func TestCoordCrashCampaignDeterministic(t *testing.T) {
	skipReplayUnderRace(t)
	ctx := testCtx(t)
	cfg := shortCfg(CampaignSeed(91, 0))
	cfg.Faults = []Fault{FaultCoordCrash}
	cfg.Rounds = 4
	cfg.Protocol = commit.PaxosCommit
	a, errA := Run(ctx, cfg)
	b, errB := Run(ctx, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}

// TestDiskfaultCampaign runs diskfault-focused campaigns under both commit
// protocols: replicas keep having their logs scrambled at rest, their disks
// filled mid-round, and (mode C) commit coordinators killed with a cohort
// disk scrambled in the same breath. Every quarantine must end in a peer
// rebuild, every history must verify, and no item may end wedged.
func TestDiskfaultCampaign(t *testing.T) {
	ctx := testCtx(t)
	for _, proto := range []commit.Protocol{commit.TwoPhase, commit.PaxosCommit} {
		faults, quarantines, rebuilds := 0, int64(0), int64(0)
		for i := 0; i < 4; i++ {
			cfg := shortCfg(CampaignSeed(103, i))
			cfg.Faults = []Fault{FaultDiskfault}
			cfg.Rounds = 5
			cfg.Protocol = proto
			res, err := Run(ctx, cfg)
			if err != nil {
				t.Fatalf("%s diskfault campaign %d (seed %d): %v", proto, i, cfg.Seed, err)
			}
			if res.Committed == 0 {
				t.Errorf("%s campaign %d committed nothing", proto, i)
			}
			if res.Wedged != 0 {
				t.Errorf("%s campaign %d left %d item(s) wedged after disk faults", proto, i, res.Wedged)
			}
			if res.DiskQuarantines > 0 && res.DiskRebuilds == 0 {
				t.Errorf("%s campaign %d quarantined %d replica(s) but rebuilt none",
					proto, i, res.DiskQuarantines)
			}
			faults += res.DiskFaults
			quarantines += res.DiskQuarantines
			rebuilds += res.DiskRebuilds
		}
		if faults == 0 || quarantines == 0 || rebuilds == 0 {
			t.Errorf("%s: disk fate never exercised the rebuild path: faults=%d quarantines=%d rebuilds=%d",
				proto, faults, quarantines, rebuilds)
		}
	}
}

// TestDiskfaultCampaignDeterministic reruns one Paxos diskfault campaign
// with the same seed and demands byte-identical results: which file, which
// offset, which bit — and every quarantine and rebuild count — replay
// exactly.
func TestDiskfaultCampaignDeterministic(t *testing.T) {
	skipReplayUnderRace(t)
	ctx := testCtx(t)
	cfg := shortCfg(CampaignSeed(103, 0))
	cfg.Faults = []Fault{FaultDiskfault}
	cfg.Rounds = 5
	cfg.Protocol = commit.PaxosCommit
	a, errA := Run(ctx, cfg)
	b, errB := Run(ctx, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("campaign errors: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}

// TestDiskfaultWithAmnesiaCampaign mixes disk corruption with amnesia
// crashes: a rebuild pull may find a peer freshly recovered from its own
// log, and a heal may have to wait out a crashed peer. Histories must
// still verify and every quarantine must still end rebuilt.
func TestDiskfaultWithAmnesiaCampaign(t *testing.T) {
	ctx := testCtx(t)
	faults := 0
	for i := 0; i < 3; i++ {
		cfg := shortCfg(CampaignSeed(107, i))
		cfg.Faults = []Fault{FaultAmnesia, FaultDiskfault}
		cfg.Rounds = 5
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("diskfault+amnesia campaign %d (seed %d): %v", i, cfg.Seed, err)
		}
		if res.Wedged != 0 {
			t.Errorf("campaign %d left %d item(s) wedged", i, res.Wedged)
		}
		faults += res.DiskFaults
	}
	if faults == 0 {
		t.Error("no disk fault ever injected across three campaigns")
	}
}

// TestParseFaults covers the CLI's fault-list parsing.
func TestParseFaults(t *testing.T) {
	all, err := ParseFaults("all")
	if err != nil || len(all) != len(AllFaults) {
		t.Fatalf("all: %v %v", all, err)
	}
	got, err := ParseFaults("crash, dup")
	if err != nil || len(got) != 2 || got[0] != FaultCrash || got[1] != FaultDup {
		t.Fatalf("crash,dup: %v %v", got, err)
	}
	if _, err := ParseFaults("crash,flood"); err == nil {
		t.Fatal("unknown fault accepted")
	}
}
