package chaos

// Process-level chaos: where chaos.Run crashes simulated nodes inside one
// process, RunProc drives a real multi-process cluster — N `qcstore serve`
// OS processes over TCP — through the harshest fault the WAL claims to
// survive: kill -9. The driver commits through quorums, SIGKILLs a
// replica, proves the survivors keep committing, restarts the victim and
// proves it recovered its pre-crash state from the log alone, then shuts
// the cluster down orderly and checks every exit code. It is the
// end-to-end counterpart of the in-process amnesia campaigns: same
// protocol, real sockets, real processes, a real kernel delivering the
// kill.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wal"
)

// syncBuffer is a bytes.Buffer safe to read while exec's pipe-copier
// goroutine writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// ProcConfig configures one process-level crash-recovery run.
type ProcConfig struct {
	// Bin is the qcstore binary. Empty builds it with `go build` into
	// Dir, which requires running inside the module tree.
	Bin string
	// Replicas is the cluster size (default 3).
	Replicas int
	// Dir is the scratch directory for WALs and logs. Empty uses a fresh
	// temporary directory, removed on success and kept on failure for
	// inspection.
	Dir string
	// Verbose echoes every step and child-process line.
	Verbose bool
}

// ProcReport summarizes a successful run.
type ProcReport struct {
	Replicas int
	// Killed is the DM that took the SIGKILL.
	Killed string
	// Replayed is how many WAL records the restarted victim re-applied.
	Replayed int
	// RecoveredVN is the victim's committed version right after recovery —
	// its exact pre-crash state, missing only what committed while it was
	// dead.
	RecoveredVN int
	// RebuiltItems is what the second act restored: the victim SIGKILLed
	// again, one bit of a sealed WAL record flipped on its real disk, and
	// the restarted process detecting the corruption and rebuilding itself
	// from its live peers instead of serving the damage. PostRebuildValue
	// is the victim's own state right after — the value committed while it
	// was dead, proving the rebuild pulled current peer state, not the
	// corrupt history.
	RebuiltItems     int
	PostRebuildValue int
	// FinalValue and FinalVN are the quorum read's answer at the end.
	FinalValue int
	FinalVN    int
}

// replica tracks one spawned serve process.
type procReplica struct {
	id   string
	cmd  *exec.Cmd
	out  *syncBuffer
	done chan error
}

// RunProc runs the kill -9 recovery scenario and returns a report, or an
// error naming the first step that broke.
func RunProc(ctx context.Context, cfg ProcConfig) (ProcReport, error) {
	n := cfg.Replicas
	if n <= 0 {
		n = 3
	}
	dir := cfg.Dir
	ephemeral := false
	if dir == "" {
		d, err := os.MkdirTemp("", "qcproc")
		if err != nil {
			return ProcReport{}, err
		}
		dir, ephemeral = d, true
	}
	bin := cfg.Bin
	if bin == "" {
		bin = filepath.Join(dir, "qcstore")
		build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/qcstore")
		if out, err := build.CombinedOutput(); err != nil {
			return ProcReport{}, fmt.Errorf("proc: build qcstore: %v\n%s", err, out)
		}
	}
	logf := func(format string, args ...any) {
		if cfg.Verbose {
			fmt.Printf("proc: "+format+"\n", args...)
		}
	}

	// Pick N free loopback ports by binding :0 and releasing. The window
	// between release and the serve process re-binding is racy in theory;
	// in practice nothing else grabs an just-released ephemeral port, and
	// a collision fails loudly at serve startup.
	ports := make([]int, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ProcReport{}, err
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	var peerList []string
	for i, p := range ports {
		peerList = append(peerList, fmt.Sprintf("dm%d=127.0.0.1:%d", i, p))
	}
	peers := strings.Join(peerList, ",")
	walDir := filepath.Join(dir, "wal")
	logf("peers: %s", peers)

	spawn := func(id string) (*procReplica, error) {
		r := &procReplica{
			id:   id,
			out:  &syncBuffer{},
			done: make(chan error, 1),
			cmd:  exec.Command(bin, "serve", "-id", id, "-peers", peers, "-dir", walDir),
		}
		r.cmd.Stdout = r.out
		r.cmd.Stderr = r.out
		if err := r.cmd.Start(); err != nil {
			return nil, fmt.Errorf("proc: start %s: %w", id, err)
		}
		go func() { r.done <- r.cmd.Wait() }()
		logf("spawned %s (pid %d)", id, r.cmd.Process.Pid)
		return r, nil
	}
	replicas := make(map[string]*procReplica, n)
	failed := func(err error) (ProcReport, error) {
		// Leave the scratch directory behind with every child's output.
		for id, r := range replicas {
			r.cmd.Process.Kill()
			os.WriteFile(filepath.Join(dir, id+".log"), r.out.Bytes(), 0o644)
		}
		return ProcReport{}, fmt.Errorf("%w (logs kept in %s)", err, dir)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("dm%d", i)
		r, err := spawn(id)
		if err != nil {
			return failed(err)
		}
		replicas[id] = r
	}

	client := func(args ...string) (string, error) {
		full := append([]string{"client", "-peers", peers, "-timeout", "10s"}, args...)
		out, err := exec.CommandContext(ctx, bin, full...).CombinedOutput()
		s := strings.TrimSpace(string(out))
		if cfg.Verbose && s != "" {
			fmt.Println(indent(s))
		}
		if err != nil {
			return s, fmt.Errorf("proc: qcstore %s: %v: %s", strings.Join(args, " "), err, s)
		}
		return s, nil
	}

	// Readiness: retry a quorum read until the cluster answers.
	var err error
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err = client("-get"); err == nil {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return failed(fmt.Errorf("proc: cluster never became ready: %w", err))
		}
		time.Sleep(100 * time.Millisecond)
	}
	logf("cluster ready")

	// A nested transaction with a tolerated subtransaction abort — the
	// paper's motivating capability — against real processes.
	if _, err := client(); err != nil {
		return failed(err)
	}
	if _, err := client("-set", "175"); err != nil {
		return failed(err)
	}
	logf("committed 175 through quorums")

	// SIGKILL one replica: amnesia, no goodbye. The kernel delivers this
	// one — no flushing, no deferred closes.
	victim := fmt.Sprintf("dm%d", n-1)
	v := replicas[victim]
	if err := v.cmd.Process.Kill(); err != nil {
		return failed(fmt.Errorf("proc: kill %s: %w", victim, err))
	}
	<-v.done
	logf("killed %s with SIGKILL", victim)

	// The survivors still form majorities: commits must keep flowing.
	if _, err := client("-set", "180"); err != nil {
		return failed(fmt.Errorf("proc: commit with %s dead: %w", victim, err))
	}
	logf("committed 180 with %s dead", victim)

	// Restart the victim with the same flags: it must recover from its
	// write-ahead log alone.
	v2, err := spawn(victim)
	if err != nil {
		return failed(err)
	}
	replicas[victim] = v2
	report := ProcReport{Replicas: n, Killed: victim}
	rdeadline := time.Now().Add(15 * time.Second)
	for {
		var snap bool
		if _, serr := fmt.Sscanf(firstLine(v2.out.String()),
			"qcstore: "+victim+" serving at %s (snapshot=%t replayed=%d)",
			new(string), &snap, &report.Replayed); serr == nil {
			break
		}
		if time.Now().After(rdeadline) || ctx.Err() != nil {
			return failed(fmt.Errorf("proc: %s never came back: %q", victim, v2.out.String()))
		}
		time.Sleep(100 * time.Millisecond)
	}
	if report.Replayed == 0 {
		return failed(fmt.Errorf("proc: restarted %s replayed 0 records — recovery did not read the WAL", victim))
	}
	logf("%s recovered, %d records replayed", victim, report.Replayed)

	// The victim's own replica state must be its exact pre-crash state:
	// the 175 it acknowledged before the kill (vn 2), not the 180 that
	// committed while it was dead and not initial state.
	insp, err := client("-inspect", victim)
	if err != nil {
		return failed(err)
	}
	var val int
	if _, err := fmt.Sscanf(insp, victim+": balance/alice = %d (vn %d,", &val, &report.RecoveredVN); err != nil {
		return failed(fmt.Errorf("proc: parse inspect %q: %w", insp, err))
	}
	if report.RecoveredVN < 2 {
		return failed(fmt.Errorf("proc: %s recovered vn %d, want >= 2 (lost acknowledged state)", victim, report.RecoveredVN))
	}

	// And the cluster-level read must see the post-kill commit.
	got, err := client("-get")
	if err != nil {
		return failed(err)
	}
	if _, err := fmt.Sscanf(got, "balance/alice = %d (vn %d)", &report.FinalValue, &report.FinalVN); err != nil {
		return failed(fmt.Errorf("proc: parse get %q: %w", got, err))
	}
	if report.FinalValue != 180 {
		return failed(fmt.Errorf("proc: final read %d, want 180", report.FinalValue))
	}

	// Second act: the disk itself fails. Commit once more so the victim's
	// log holds fresh records, SIGKILL it again, flip one bit in a sealed
	// WAL record on its real disk, and restart it with the same flags. The
	// process must detect the corruption, refuse to serve the damage, and
	// rebuild itself from its live peers — coming back with the cluster's
	// current state, not its corrupt history.
	if _, err := client("-set", "185"); err != nil {
		return failed(err)
	}
	v3 := replicas[victim]
	if err := v3.cmd.Process.Kill(); err != nil {
		return failed(fmt.Errorf("proc: second kill of %s: %w", victim, err))
	}
	<-v3.done
	if err := corruptFirstFrame(filepath.Join(walDir, victim)); err != nil {
		return failed(fmt.Errorf("proc: corrupt %s's log: %w", victim, err))
	}
	logf("killed %s again and flipped a bit in its WAL", victim)

	// Survivors still commit; the health inspection sees the dead peer.
	if _, err := client("-set", "190"); err != nil {
		return failed(fmt.Errorf("proc: commit with %s's disk corrupt: %w", victim, err))
	}
	health, err := client("-inspect", "health")
	if err != nil {
		return failed(err)
	}
	if strings.Count(health, "healthy") != n-1 || !strings.Contains(health, "unreachable") {
		return failed(fmt.Errorf("proc: health with %s dead reads wrong:\n%s", victim, health))
	}

	v4, err := spawn(victim)
	if err != nil {
		return failed(err)
	}
	replicas[victim] = v4
	bdeadline := time.Now().Add(15 * time.Second)
	for {
		var resolved, acceptors, peersN int
		if _, serr := fmt.Sscanf(firstLine(v4.out.String()),
			"qcstore: "+victim+" serving at %s (rebuilt items=%d resolved=%d acceptors=%d from %d peers)",
			new(string), &report.RebuiltItems, &resolved, &acceptors, &peersN); serr == nil {
			break
		}
		if time.Now().After(bdeadline) || ctx.Err() != nil {
			return failed(fmt.Errorf("proc: %s never reported a rebuild: %q", victim, v4.out.String()))
		}
		time.Sleep(100 * time.Millisecond)
	}
	if report.RebuiltItems == 0 {
		return failed(fmt.Errorf("proc: restarted %s rebuilt 0 items", victim))
	}
	logf("%s detected the corruption and rebuilt %d item(s) from its peers", victim, report.RebuiltItems)

	// The rebuilt replica's own state is the cluster's CURRENT state — the
	// 190 that committed while it was dead — and the whole cluster reads
	// healthy again.
	insp2, err := client("-inspect", victim)
	if err != nil {
		return failed(err)
	}
	var vn2 int
	if _, err := fmt.Sscanf(insp2, victim+": balance/alice = %d (vn %d,", &report.PostRebuildValue, &vn2); err != nil {
		return failed(fmt.Errorf("proc: parse inspect %q: %w", insp2, err))
	}
	if report.PostRebuildValue != 190 {
		return failed(fmt.Errorf("proc: rebuilt %s serves %d, want 190", victim, report.PostRebuildValue))
	}
	health, err = client("-inspect", "health")
	if err != nil {
		return failed(err)
	}
	if strings.Count(health, "healthy") != n {
		return failed(fmt.Errorf("proc: health after rebuild reads wrong:\n%s", health))
	}
	got, err = client("-get")
	if err != nil {
		return failed(err)
	}
	if _, err := fmt.Sscanf(got, "balance/alice = %d (vn %d)", &report.FinalValue, &report.FinalVN); err != nil {
		return failed(fmt.Errorf("proc: parse get %q: %w", got, err))
	}
	if report.FinalValue != 190 {
		return failed(fmt.Errorf("proc: final read %d, want 190", report.FinalValue))
	}

	// Orderly shutdown: SIGINT everyone, every process must exit 0.
	for _, r := range replicas {
		r.cmd.Process.Signal(os.Interrupt)
	}
	for id, r := range replicas {
		select {
		case werr := <-r.done:
			if werr != nil {
				return failed(fmt.Errorf("proc: %s exited dirty: %v: %s", id, werr, r.out.String()))
			}
		case <-time.After(10 * time.Second):
			return failed(fmt.Errorf("proc: %s did not exit on SIGINT", id))
		}
	}
	logf("all replicas exited 0")
	if ephemeral {
		os.RemoveAll(dir)
	}
	return report, nil
}

// corruptFirstFrame flips one bit in the first record frame of the oldest
// segment in dir — damage recovery must classify as corruption (valid
// frames follow it), never as a torn tail. The bit lands in the frame's
// last byte: payload or CRC, never the length prefix, so the frame chain
// stays walkable and the checksum convicts the record.
func corruptFirstFrame(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("no segments in %s", dir)
	}
	sort.Strings(segs)
	path := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, n, err := wal.DecodeFrame(b)
	if err != nil {
		return fmt.Errorf("decode first frame of %s: %w", segs[0], err)
	}
	if n >= len(b) && len(segs) == 1 {
		return fmt.Errorf("segment %s holds a single frame; corrupting it would read as a torn tail", segs[0])
	}
	b[n-1] ^= 0x01
	return os.WriteFile(path, b, 0o644)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func indent(s string) string {
	return "  | " + strings.ReplaceAll(s, "\n", "\n  | ")
}
