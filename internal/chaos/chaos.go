// Package chaos runs seeded, deterministic fault campaigns against a
// replicated cluster store and checks every committed operation against
// the serializability checker. A campaign interleaves rounds of randomized
// nested-transaction workload with a fault scheduler that crashes and
// restarts replicas, amnesia-crashes them (memory wiped, state rebuilt
// from the replica's write-ahead log), partitions them from the client,
// slows them down, and injects message loss, duplication and bounded
// reordering — all driven by one int64 seed, so a failing campaign
// replays exactly from its seed.
//
// Determinism engineering: fault transitions happen only between rounds,
// behind a network Quiesce barrier, so no transaction ever spans a fault
// toggle; the store runs with sequential quorum phases, no hedging,
// synchronous control cleanup and a single workload worker, so the message
// sequence on every network lane — and with it every per-lane fate stream
// — is a pure function of the seed. Live mode (Config.Live) re-enables the
// fan-out, hedging and concurrency for realism at the cost of exact
// replay; histories are verified either way.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/quorum"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Fault identifies one injectable fault class.
type Fault string

// The fault classes a campaign can inject.
const (
	FaultCrash     Fault = "crash"     // crash a replica, restart it later
	FaultAmnesia   Fault = "amnesia"   // crash a replica, wipe its memory, recover it from its WAL
	FaultPartition Fault = "partition" // sever the client↔replica link
	FaultStraggler Fault = "straggler" // per-node delivery latency
	FaultDrop      Fault = "drop"      // network-wide message loss
	FaultDup       Fault = "dup"       // network-wide message duplication
	FaultReorder   Fault = "reorder"   // bounded cross-lane reordering
	// FaultFlap bounces one replica at every round boundary for the
	// episode's lifetime — never down long enough to count as dead, never
	// up long enough to be trusted. The failure detector's worst customer.
	FaultFlap Fault = "flap"
	// FaultClientCrash simulates a client that died mid-transaction: a
	// write-quorum's worth of write locks is planted under a transaction id
	// nobody will ever resolve. Without the lease reaper the item wedges
	// forever; with it, the orphan is presumed aborted once its lease
	// lapses. There is no heal — recovery is the store's job.
	FaultClientCrash Fault = "clientcrash"
	// FaultOverload slams one replica's admission queue with a seeded burst
	// of inert requests (some pre-expired), injected behind a held service
	// loop and bypassing the network, so the admit/shed/expire verdicts are
	// a pure function of the burst shape. Selecting it runs every DM with
	// bounded admission; the burst is instantaneous, so there is no heal.
	FaultOverload Fault = "overload"
	// FaultStalehint is the adversarial schedule against the freshness-hint
	// fast lane: partition the client from exactly the replica its next
	// hinted read would use — while that replica still holds a live hint —
	// then commit a newer version through the survivors (whose fence cannot
	// reach the hint holder), and heal only after the campaign clock has
	// expired every pre-partition hint. Selecting it runs the store with
	// WithReadLease on at a hint TTL of two lease TTLs: long enough that the
	// injection finds a live cached target from the previous round, short
	// enough that the round-boundary clock advances provably expire it
	// before the earliest heal. The serializability checker then gates the
	// whole discipline: a hinted read served from the superseded version
	// anywhere in the campaign is a violation.
	FaultStalehint Fault = "stalehint"
	// FaultMigrate live-migrates one item to a different replica group at a
	// round boundary — and, half the time, kills the migration coordinator
	// at its nastiest moments: after every intention is buffered but before
	// any CommitTopReq (the lease reaper must presume abort), or partway
	// through the commit broadcast (one delivered copy decides commit; the
	// reaper's peer inquiry must finish the job). Selecting it runs the
	// store sharded (a consistent-hash ring over the per-item replica
	// groups) with self-healing on: abandoned coordinators are exactly
	// orphaned clients. The campaign's final writability probe then gates
	// zero wedged items and the checker zero serializability violations,
	// whichever way each crash resolved.
	FaultMigrate Fault = "migrate"
	// FaultCoordCrash kills a top-level transaction's commit coordinator at
	// a seeded instant around the commit point: before any decide message,
	// partway through the Phase-2a accept fan-out (PaxosCommit), after the
	// decision but before any replica learns it, or partway through the
	// learn broadcast — locks, intentions, and acceptor votes left dangling
	// exactly as a kill -9 would leave them. Selecting it runs the reaper
	// stack; the campaign then holds every crash to the convergence
	// contract: exactly one outcome cluster-wide, a decided commit never
	// aborted, an un-voted transaction never committed, and — under
	// PaxosCommit — every outcome that reached an acceptor resolved by
	// acceptor recovery (one inquiry round trip) rather than a lease-TTL
	// presumption. Resolved commits are backfilled into the history, so the
	// serializability checker gates every crash's resolution too.
	FaultCoordCrash Fault = "coordcrash"
	// FaultDiskfault turns the stable storage the WAL is named after into a
	// fault domain of its own: at a seeded boundary one replica's log is
	// scrambled on disk (a bit flip in a sealed segment, a whole segment
	// dropped, or the snapshot damaged) and the replica restarted onto the
	// wreckage, or its disk "fills" so the next logged write fails its
	// append — and, at its nastiest, a commit coordinator is killed around
	// the commit point with a cohort member's disk scrambled in the same
	// breath. The replica must fail closed into quarantine (serving the
	// typed refusal, never corrupt state), the cluster must keep serving
	// through the remaining majority, and the heal is a peer rebuild that
	// pulls the committed state back from ALL peers. Selecting it runs the
	// durability + self-healing stacks; at most a minority of any group is
	// disk-impaired, and only one disk at a time (a rebuild needs every
	// peer answering). The campaign's final gates then hold the whole path
	// to account: zero serializability violations, zero permanently
	// quarantined replicas, and a writable cluster.
	FaultDiskfault Fault = "diskfault"
)

// AllFaults lists every fault class in canonical order. Newer classes
// (stalehint, then migrate, then coordcrash, then diskfault) come last so
// enabling them never perturbs the draw order — and with it the schedule —
// of seeded campaigns that predate them.
var AllFaults = []Fault{FaultCrash, FaultAmnesia, FaultPartition, FaultStraggler, FaultDrop, FaultDup, FaultReorder, FaultFlap, FaultClientCrash, FaultOverload, FaultStalehint, FaultMigrate, FaultCoordCrash, FaultDiskfault}

// overloadAdmitCap is the per-DM admission queue capacity campaigns use
// when FaultOverload is selected: small enough that a burst always sheds,
// large enough that the campaign's own workload (queue depth ≤ a few under
// sequential phases) never does.
const overloadAdmitCap = 8

// ParseFaults parses a comma-separated fault list such as
// "crash,partition,dup". Empty input and "all" select every class.
func ParseFaults(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return append([]Fault(nil), AllFaults...), nil
	}
	known := map[Fault]bool{}
	for _, f := range AllFaults {
		known[f] = true
	}
	var out []Fault
	for _, part := range strings.Split(s, ",") {
		f := Fault(strings.TrimSpace(part))
		if !known[f] {
			return nil, fmt.Errorf("chaos: unknown fault %q (known: %v)", f, AllFaults)
		}
		out = append(out, f)
	}
	return out, nil
}

// Config parameterizes one campaign.
type Config struct {
	// Seed drives everything: workload content, fault schedule, and the
	// network's per-lane fate streams.
	Seed int64
	// Items is the number of replicated logical items (default 2). Each
	// item gets its own disjoint replica group.
	Items int
	// Replicas is the number of DMs per item (default 3), under a
	// majority quorum configuration.
	Replicas int
	// Rounds is the number of workload rounds; the fault schedule advances
	// between rounds (default 4).
	Rounds int
	// TxnsPerRound is the number of top-level transactions per round
	// (default 8).
	TxnsPerRound int
	// OpsPerTxn, NestDepth, SubAbortProb and ReadFraction shape the
	// workload profile (defaults 3, 1, 0.1, 0.5).
	OpsPerTxn    int
	NestDepth    int
	SubAbortProb float64
	ReadFraction float64
	// Faults is the set of fault classes to inject; nil means all.
	Faults []Fault
	// CallTimeout bounds each RPC (default 10ms). It must exceed the
	// worst straggler latency or timeouts become scheduling races.
	CallTimeout time.Duration
	// Live disables the determinism constraints: first-to-quorum fan-out,
	// hedging and concurrent workers come back on. Campaigns still verify,
	// but exact replay of network counters is no longer guaranteed.
	Live bool
	// Workers is the number of concurrent workload workers in live mode
	// (default 2; deterministic mode always uses 1).
	Workers int
	// MutateVN, when set, is installed as the store's test-only write
	// version mutation hook — the self-test uses it to plant a
	// fault-masking bug and assert the checker catches it.
	MutateVN func(item string, vn int) int
	// SelfHeal controls the self-healing stack: lock leases with orphan
	// reaping (on a campaign-driven manual clock, one TTL per round
	// boundary), failure-detector steering, and anti-entropy sweeps between
	// rounds. Auto (the default) enables it exactly when a fault class that
	// needs it — flap or clientcrash — is selected.
	SelfHeal SelfHealMode
	// LeaseTTL is the lock-lease duration under self-healing (default 1s).
	// The campaign's manual clock advances one TTL per round boundary, so a
	// lease stamped in round k is expired — and its holder reapable — from
	// round k+1 on.
	LeaseTTL time.Duration
	// Protocol selects the store's commit protocol. The zero value is
	// TwoPhase, so seeded campaigns that predate the option replay
	// unchanged; commit.PaxosCommit arms the non-blocking commit path and
	// tightens the coordcrash convergence contract (acceptor recovery, not
	// TTL presumption, must resolve every outcome an acceptor holds).
	Protocol commit.Protocol
}

// SelfHealMode selects how a campaign decides to run the self-healing
// stack.
type SelfHealMode int

// Self-heal modes.
const (
	SelfHealAuto SelfHealMode = iota // on iff flap or clientcrash is enabled
	SelfHealOn
	SelfHealOff
)

func (c Config) withDefaults() Config {
	if c.Items <= 0 {
		c.Items = 2
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.TxnsPerRound <= 0 {
		c.TxnsPerRound = 8
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 3
	}
	if c.NestDepth == 0 {
		c.NestDepth = 1
	}
	if c.SubAbortProb == 0 {
		c.SubAbortProb = 0.1
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.Faults == nil {
		c.Faults = AllFaults
	}
	if c.CallTimeout <= 0 {
		// With fate feedback on, every lost call fails the instant its
		// fate is decided, so the timeout is pure backstop and almost
		// never fires. It sits far above the worst straggler round trip
		// because a timeout that CAN fire on a scheduling hiccup is a
		// wall-clock race that would fork an otherwise seeded replay.
		c.CallTimeout = 100 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	return c
}

// selfHeal resolves the SelfHealMode against the selected faults.
func (c Config) selfHeal() bool {
	switch c.SelfHeal {
	case SelfHealOn:
		return true
	case SelfHealOff:
		return false
	}
	for _, f := range c.Faults {
		if f == FaultFlap || f == FaultClientCrash || f == FaultStalehint || f == FaultMigrate || f == FaultCoordCrash || f == FaultDiskfault {
			// Stalehint needs the manual clock: hint expiry at round
			// boundaries is what makes an unfenceable (partitioned) hint
			// holder safe, and that argument must be a pure function of the
			// seed. Migrate needs the reaper: a killed migration coordinator
			// is an orphaned client whose locks only the reaper resolves.
			// Coordcrash needs both: the reaper's inquiry is the trigger that
			// routes an abandoned commit into acceptor recovery. Diskfault
			// needs them too — a transaction whose locks died with a
			// corrupted replica resolves only through lease expiry against
			// the rebuilt replica's renewal fence.
			return true
		}
	}
	return false
}

// Result summarizes one campaign.
type Result struct {
	Seed      int64
	Rounds    int
	Committed int
	Failed    int
	Tolerated int
	// Ops is the number of committed operations the checker verified.
	Ops int
	// Injected counts fault episodes started, by class.
	Injected map[Fault]int
	// Recoveries counts DM state machines rebuilt from their write-ahead
	// logs (amnesia heals); ReplayedRecords totals the log records those
	// recoveries re-applied. Zero when FaultAmnesia is not in play.
	Recoveries      int
	ReplayedRecords int64
	// Orphans counts transactions deliberately orphaned by clientcrash
	// faults. ReapsAborted and ReapsCommitted count the lease reaper's
	// resolutions (presumed aborts and peer-served commits);
	// ResolutionQueries the peer inquiries behind them.
	Orphans           int
	ReapsAborted      int64
	ReapsCommitted    int64
	ResolutionQueries int64
	// Wedged counts items still unwritable after the final heal and two
	// lease TTLs of reap settling — the campaign's permanently-wedged
	// check. Always zero with self-healing on; the self-heal-off ablation
	// with clientcrash faults shows why.
	Wedged int
	// Bursts counts overload fault injections; Shed and ExpiredOnArrival
	// total the admission verdicts across them (requests rejected at a full
	// queue, and admitted requests discarded at dequeue because their
	// deadline had lapsed). Bursts bypass the network, so all three are
	// replayable bit for bit from the seed.
	Bursts           int
	Shed             int64
	ExpiredOnArrival int64
	// StaleHints counts stalehint injections: a live fast-lane target
	// partitioned away with its hint outstanding while a newer version
	// committed through the survivors. HintReads/HintHits/HintMisses are
	// the store's fast-lane counters across the campaign, and
	// HintFences/HintFenceMisses the write-path fence rounds and the
	// unreachable replicas they could only outwait. All zero when
	// FaultStalehint is not in play.
	StaleHints      int
	HintReads       int64
	HintHits        int64
	HintMisses      int64
	HintFences      int64
	HintFenceMisses int64
	// Migrations counts live migrations the scheduler completed cleanly;
	// MigrationsAbandoned the ones whose coordinator it killed (before
	// commit or mid-broadcast — both left for the lease reaper to resolve).
	// WrongShardRedirects is the store's count of redirects absorbed from
	// retired replicas. All zero when FaultMigrate is not in play.
	Migrations          int
	MigrationsAbandoned int
	WrongShardRedirects int64
	// CoordCrashes counts commit coordinators killed at the commit point;
	// CoordCrashCommitted and CoordCrashAborted how the cluster resolved
	// them (every crash resolves exactly one way — the settle pass fails the
	// campaign otherwise). PaxosCommits is the store's count of clean-path
	// decisions through the acceptors; AcceptorResolvesCommitted/Aborted its
	// acceptor-recovery resolutions — the decisions learned from acceptor
	// hard state in one inquiry round trip, where TwoPhase would have waited
	// out a lease TTL (those show up in ReapsAborted/ReapsCommitted
	// instead). All zero when FaultCoordCrash is off and the protocol is
	// TwoPhase.
	CoordCrashes              int
	CoordCrashCommitted       int
	CoordCrashAborted         int
	PaxosCommits              int64
	AcceptorResolvesCommitted int64
	AcceptorResolvesAborted   int64
	// DiskFaults counts diskfault episodes injected (a log scrambled at
	// rest, a disk filling mid-round, or a coordinator kill with a cohort
	// disk scrambled — those crashes also count under CoordCrashes).
	// DiskQuarantines is the store's count of replicas that failed closed
	// into quarantine, DiskRebuilds its completed peer rebuilds, and
	// DiskRebuiltItems the item replicas those rebuilds restored. All zero
	// when FaultDiskfault is not in play.
	DiskFaults       int
	DiskQuarantines  int64
	DiskRebuilds     int64
	DiskRebuiltItems int64
	// FinalRoundCommitted is the last round's committed transactions — the
	// throughput the cluster re-attained after its accumulated damage.
	FinalRoundCommitted int
	// Net is the network's final counter snapshot; with the same seed and
	// deterministic mode it is identical run to run.
	Net sim.Stats
}

// CampaignSeed derives the i-th campaign's seed from a base seed using a
// splitmix64 finalization round, so campaign seeds are decorrelated while
// remaining a pure function of (base, i).
func CampaignSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes one campaign and verifies the recorded history. The error
// is a *checker.Violation when the history fails verification; the Result
// is valid (counters populated) in that case too.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	// FateFeedback makes a lost call fail the moment the network decides
	// its fate instead of waiting out a timeout: campaigns run orders of
	// magnitude faster under crash/partition/loss, and failure detection
	// stops being a wall-clock race the replay could lose.
	net := sim.NewNetwork(sim.Config{Seed: cfg.Seed, FateFeedback: true})
	defer net.Close()

	rec := checker.NewRecorder()
	items := make([]cluster.ItemSpec, cfg.Items)
	itemNames := make([]string, cfg.Items)
	groups := make([][]string, cfg.Items)
	for i := range items {
		name := fmt.Sprintf("x%d", i)
		dms := make([]string, cfg.Replicas)
		for j := range dms {
			dms[j] = fmt.Sprintf("%s-dm%d", name, j)
		}
		items[i] = cluster.ItemSpec{Name: name, Initial: 0, DMs: dms, Config: quorum.Majority(dms)}
		itemNames[i] = name
		groups[i] = dms
		rec.DeclareItem(name, 0)
	}

	opts := []cluster.Option{
		cluster.WithSeed(cfg.Seed),
		cluster.WithCallTimeout(cfg.CallTimeout),
		cluster.WithHistory(rec),
		cluster.WithCommitProtocol(cfg.Protocol),
	}
	amnesiaOn, overloadOn, staleOn, migrateOn, diskOn := false, false, false, false, false
	for _, f := range cfg.Faults {
		if f == FaultAmnesia {
			amnesiaOn = true
		}
		if f == FaultOverload {
			overloadOn = true
		}
		if f == FaultStalehint {
			staleOn = true
		}
		if f == FaultMigrate {
			migrateOn = true
		}
		if f == FaultDiskfault {
			diskOn = true
		}
	}
	if migrateOn {
		// Migrate needs somewhere to migrate to: shard the store over a
		// consistent-hash ring with one named group per replica group, each
		// item pinned (ring override) to the group that already hosts it, so
		// the ring starts out agreeing with the item specs.
		sgroups := make([]shard.Group, cfg.Items)
		for i := range sgroups {
			sgroups[i] = shard.Group{Name: fmt.Sprintf("g%d", i), DMs: groups[i]}
		}
		ring, rerr := shard.New(cfg.Seed, 32, sgroups)
		if rerr != nil {
			return Result{}, rerr
		}
		for i, name := range itemNames {
			if merr := ring.MoveKey(name, fmt.Sprintf("g%d", i)); merr != nil {
				return Result{}, merr
			}
		}
		opts = append(opts, cluster.WithRing(ring))
	}
	if staleOn {
		// Stalehint needs something to poison: the freshness-hint fast lane.
		// The hint TTL is two lease TTLs — the injection needs a target cached
		// in the previous round to still be live (one boundary advance old),
		// and the earliest heal is three boundary advances after any
		// pre-partition hint was stamped, so expiry strictly precedes it.
		opts = append(opts,
			cluster.WithReadLease(true),
			cluster.WithReadLeaseTTL(2*cfg.LeaseTTL),
		)
	}
	if overloadOn {
		// Overload needs something to overload: run every DM behind a
		// bounded admission queue. The client-side retry budget stays off —
		// under the campaign's loss faults it would (by design) deny the
		// very retries that ride out transient drops, starving the workload;
		// the budget is exercised by the overload experiment instead, where
		// load, not loss, is the failure mode.
		opts = append(opts, cluster.WithAdmissionCapacity(overloadAdmitCap))
	}
	var ffs *wal.FaultFS
	var walDir string
	if amnesiaOn || diskOn {
		// Amnesia needs somewhere to forget from, and diskfault something to
		// scramble: give every DM a WAL in a scratch directory. Fsync stays
		// off because a simulated crash loses the process heap, not the page
		// cache — the recovery logic exercised is identical, and the wal
		// package's own tests plus the E12 experiment cover real fsync.
		dir, err := os.MkdirTemp("", "chaos-wal-")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(dir)
		walDir = dir
		walOpts := []wal.Option{wal.WithFsync(false)}
		if diskOn {
			// Diskfault routes every log I/O through a seeded fault-injecting
			// filesystem, with segments kept small so even a few rounds of
			// workload seal segments for the at-rest corruptor to target. The
			// FS seed derives from the campaign seed, so what gets corrupted
			// — file, offset, bit — replays exactly.
			ffs = wal.NewFaultFS(CampaignSeed(cfg.Seed, 0xD15F))
			walOpts = append(walOpts, wal.WithFS(ffs), wal.WithSegmentBytes(512))
		}
		opts = append(opts,
			cluster.WithDurability(dir),
			cluster.WithWALOptions(walOpts...),
		)
	}
	if !cfg.Live {
		opts = append(opts,
			cluster.WithSequentialPhases(true),
			cluster.WithHedgeDelay(0),
			cluster.WithSynchronousCleanup(true),
			// One worker means lock conflicts cannot happen, so deep retry
			// loops would only re-probe quorums whose members stay crashed
			// for the whole round — each probe a full call timeout. A few
			// retries still ride out transient message loss.
			cluster.WithLockRetries(4),
		)
	}
	selfHeal := cfg.selfHeal()
	var clk *sim.ManualClock
	if selfHeal {
		// Leases expire against a campaign-driven manual clock: time moves
		// only at round boundaries, behind a quiesce barrier, so lease
		// expiry — and every reap it triggers — is a pure function of the
		// seed, never of wall-clock scheduling.
		clk = sim.NewManualClock(time.Unix(0, 0))
		opts = append(opts,
			cluster.WithLeaseTTL(cfg.LeaseTTL),
			cluster.WithClock(clk),
			cluster.WithHealthProbes(true),
			// Adaptive timeouts derive from measured wall-clock latency
			// EWMAs — the one health-board input the seed does not fix.
			// Under load (think -race) a borderline call could time out in
			// one run and retry, forking the message counters of an exact
			// replay; pin every call to the full budget instead.
			cluster.WithFixedTimeouts(true),
			// Reap-vs-retry margin: a conflict retry that raced the inquiry
			// round trip it triggered would make the retry's outcome a
			// scheduling race. 4ms of backoff dwarfs the in-process message
			// round trip, so by the time a conflicted writer retries, the
			// reap it provoked has long settled.
			cluster.WithRetryBackoff(4*time.Millisecond),
		)
	}
	store, err := cluster.Open(net, items, opts...)
	if err != nil {
		return Result{}, err
	}
	defer store.Close()
	store.Hooks.MutateWriteVN = cfg.MutateVN
	if selfHeal && !cfg.Live {
		// Each sweep inspection doubles as an orphan sweep at the DM and may
		// fire an asynchronous inquiry/recovery cascade. Drain each DM's
		// cascade before inspecting the next, or cascades from different DMs
		// interleave on near-tie message latencies — the decided-vs-heard
		// race double-counts resolutions and forks an exact replay.
		store.Hooks.SweepBarrier = net.Quiesce
	}

	// Prime every client↔DM lane in a fixed order. Lane fate streams are
	// seeded by creation order; without priming, the first concurrent
	// quorum phase would race lanes into existence and reshuffle the
	// streams run to run.
	client := store.ClientNode()
	var allDMs []string
	for _, g := range groups {
		allDMs = append(allDMs, g...)
	}
	sort.Strings(allDMs)
	for _, dm := range allDMs {
		net.PrimeLane(client, dm)
		net.PrimeLane(dm, client)
	}
	if selfHeal {
		// Lease-resolution inquiries gossip DM↔DM; prime those lanes too so
		// their fate streams do not depend on which conflict fired first.
		for _, a := range allDMs {
			for _, b := range allDMs {
				if a != b {
					net.PrimeLane(a, b)
				}
			}
		}
	}

	sched := newScheduler(net, store, client, groups, cfg)
	sched.ffs, sched.walDir = ffs, walDir
	res := Result{Seed: cfg.Seed, Injected: map[Fault]int{}}
	workers := 1
	if cfg.Live {
		workers = cfg.Workers
	}
	for round := 0; round < cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		net.Quiesce()
		if clk != nil {
			// One TTL per boundary: every lease stamped last round is now
			// expired, so this round's conflicts (and the sweep's
			// inspections) reap last round's orphans. The quiesce after the
			// sweep drains the inquiry/answer/reap cascade before any fault
			// state changes.
			clk.Advance(cfg.LeaseTTL + time.Millisecond)
			if _, err := store.SweepOnce(ctx); err != nil {
				return res, err
			}
			net.Quiesce()
			// The sweep above gave every pending coordinator crash its
			// inquiry round trip; hold each resolved one to the convergence
			// contract before any fault state changes. The probes only run
			// when crashes are pending, so the message sequence stays a pure
			// function of the seed.
			if err := sched.settleCoordCrashes(ctx, rec, false); err != nil {
				return res, err
			}
		}
		sched.advance(round, res.Injected)
		if sched.err != nil {
			return res, sched.err
		}
		if clk != nil {
			// Orphans planted by this boundary's clientcrash rolls carry a
			// fresh lease; expire it now, before the round's workload runs,
			// so the first transaction that trips over the orphan reaps it
			// after one backoff instead of burning its whole retry budget
			// against a lease that cannot lapse mid-round (the clock only
			// moves at boundaries).
			clk.Advance(cfg.LeaseTTL + time.Millisecond)
		}
		p := workload.Profile{
			ReadFraction: cfg.ReadFraction,
			OpsPerTxn:    cfg.OpsPerTxn,
			NestDepth:    cfg.NestDepth,
			SubAbortProb: cfg.SubAbortProb,
			Items:        itemNames,
			// Each round draws fresh transactions; workload seeds per-txn
			// generators at Seed+txnIndex, so offset rounds far apart.
			Seed: cfg.Seed + int64(round)*1_000_003,
		}
		wres, werr := workload.Run(ctx, store, p, cfg.TxnsPerRound, workers)
		res.Committed += wres.Committed
		res.Failed += wres.Failed
		res.Tolerated += wres.Tolerated
		res.FinalRoundCommitted = wres.Committed
		if werr != nil && !expectedUnderFaults(werr) {
			return res, werr
		}
		res.Rounds++
	}
	// Settle the last round's stragglers under the round's own fault state
	// BEFORE healing: a stray held-back message racing the heal would be
	// delivered in some runs and dropped in others, forking the counters.
	net.Quiesce()
	sched.healAll()
	if sched.err != nil {
		return res, sched.err
	}
	net.Quiesce()
	if clk != nil {
		// Reap settle: two TTL advances with a sweep each, so even an
		// inquiry that went stale against a then-crashed peer re-polls and
		// resolves on the now-healthy network.
		for i := 0; i < 2; i++ {
			clk.Advance(cfg.LeaseTTL + time.Millisecond)
			if _, err := store.SweepOnce(ctx); err != nil {
				return res, err
			}
			net.Quiesce()
		}
	}
	// Every injected coordinator crash must be resolved by now — the final
	// settle fails the campaign on any transaction still in doubt.
	if err := sched.settleCoordCrashes(ctx, rec, true); err != nil {
		return res, err
	}
	// Final writability probe: after every fault healed (and, under
	// self-healing, every orphan given two TTLs to be reaped), each item
	// must accept a write within the store's normal retry budget. An item
	// that cannot is permanently wedged — exactly what the lease reaper
	// exists to rule out.
	for _, name := range itemNames {
		perr := store.Run(ctx, func(t *cluster.Txn) error {
			return t.Write(ctx, name, fmt.Sprintf("final-%s", name))
		})
		if perr != nil {
			res.Wedged++
		}
	}

	hist := rec.History()
	res.Ops = hist.Events()
	res.Net = net.Stats()
	res.Recoveries = int(store.Stats.Recoveries.Value())
	res.ReplayedRecords = store.Stats.ReplayedRecords.Value()
	res.Orphans = sched.orphans
	res.StaleHints = sched.stales
	res.HintReads = store.Stats.HintReads.Value()
	res.HintHits = store.Stats.HintHits.Value()
	res.HintMisses = store.Stats.HintMisses.Value()
	res.HintFences = store.Stats.HintFences.Value()
	res.HintFenceMisses = store.Stats.HintFenceMisses.Value()
	res.Bursts = sched.bursts
	res.Shed = sched.shed
	res.ExpiredOnArrival = sched.expired
	res.Migrations = sched.migrations
	res.MigrationsAbandoned = sched.abandoned
	res.WrongShardRedirects = store.Stats.WrongShardRedirects.Value()
	res.ReapsAborted = store.Stats.OrphanReapsAborted.Value()
	res.ReapsCommitted = store.Stats.OrphanReapsCommitted.Value()
	res.ResolutionQueries = store.Stats.ResolutionQueries.Value()
	res.CoordCrashes = sched.coordCrashes
	res.CoordCrashCommitted = sched.crashCommitted
	res.CoordCrashAborted = sched.crashAborted
	res.PaxosCommits = store.Stats.PaxosCommits.Value()
	res.AcceptorResolvesCommitted = store.Stats.AcceptorResolvesCommitted.Value()
	res.AcceptorResolvesAborted = store.Stats.AcceptorResolvesAborted.Value()
	res.DiskFaults = sched.diskFaults
	res.DiskQuarantines = store.Stats.Quarantines.Value()
	res.DiskRebuilds = store.Stats.Rebuilds.Value()
	res.DiskRebuiltItems = store.Stats.RebuiltItems.Value()
	if err := hist.Verify(); err != nil {
		return res, err
	}
	if qs := store.QuarantinedDMs(); len(qs) > 0 {
		// Every quarantined replica must have been rebuilt by the final
		// heal: a quarantine that outlives the campaign is lost redundancy
		// the operator never got back.
		return res, fmt.Errorf("chaos: replica(s) still quarantined after final heal: %v", qs)
	}
	if selfHeal && res.Wedged > 0 {
		return res, fmt.Errorf("chaos: %d item(s) permanently wedged after heal and reap settle", res.Wedged)
	}
	return res, nil
}

// expectedUnderFaults reports whether a workload error is an anticipated
// consequence of fault injection rather than a harness failure: lock
// conflicts past the retry budget, unreachable quorums, and deadline
// expiry all happen by design while faults are active.
func expectedUnderFaults(err error) bool {
	return errors.Is(err, cluster.ErrConflict) ||
		errors.Is(err, cluster.ErrUnavailable) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// episode is one active fault: what was injected, where, and the round
// index at which it heals.
type episode struct {
	fault Fault
	dm    string // node-scoped faults; "" for network-wide ones
	group int    // replica group index for node-scoped faults
	until int
	down  bool // flap only: whether the replica is currently crashed
	mode  int  // diskfault only: which disk fault was injected
}

// The diskfault injection modes.
const (
	diskAtRest    = iota // stop the replica, scramble its log, restart it
	diskNoSpace          // fail every append: the disk "fills" mid-round
	diskMidCommit        // kill a commit coordinator AND scramble a cohort disk
)

// scheduler owns the fault schedule. All randomness comes from its own
// generator, and every decision is made in a fixed iteration order, so the
// schedule is a pure function of the campaign seed.
type scheduler struct {
	rng     *rand.Rand
	net     *sim.Network
	store   *cluster.Store
	client  string
	groups  [][]string
	cfg     Config
	enabled map[Fault]bool
	active  []episode
	orphans int   // transactions orphaned by clientcrash faults
	stales  int   // stalehint injections (hint holder partitioned, newer VN committed)
	bursts  int   // overload bursts fired
	shed    int64 // requests shed at admission across all bursts
	expired int64 // admitted requests expired at dequeue across all bursts
	err     error // first amnesia-recovery failure; fails the campaign

	// migrate fault bookkeeping: home[i] is the group index item x<i> is
	// believed to live on (updated only on clean cutover — a killed
	// coordinator leaves the outcome to the reaper, and the next roll's
	// no-op/migrate either way is valid); migrations and abandoned count
	// clean and coordinator-killed injections.
	home       []int
	migrations int
	abandoned  int

	// coordcrash bookkeeping: crashes holds the injected coordinator kills
	// not yet observed resolved; the settle pass drains it, splitting into
	// crashCommitted/crashAborted and failing the campaign on any
	// convergence-contract breach.
	crashes        []coordCrash
	coordCrashes   int
	crashCommitted int
	crashAborted   int

	// diskfault bookkeeping: the fault-injecting filesystem every DM's log
	// runs through, the root its per-DM directories live under (both nil/""
	// unless diskfault or amnesia is selected), and the injection count.
	ffs        *wal.FaultFS
	walDir     string
	diskFaults int
}

// coordCrash is one injected coordinator kill awaiting resolution.
type coordCrash struct {
	rep cluster.CrashReport
	// base is the acceptor-recovery resolution count at injection: under
	// PaxosCommit a crash whose Phase-2a reached an acceptor but whose learn
	// reached nobody must advance it — resolution through acceptor state,
	// not TTL presumption.
	base int64
}

// acceptorResolves is the store's total acceptor-recovery resolutions.
func (s *scheduler) acceptorResolves() int64 {
	return s.store.Stats.AcceptorResolvesCommitted.Value() + s.store.Stats.AcceptorResolvesAborted.Value()
}

// settleCoordCrashes probes every replica a pending crashed coordinator
// may have left state at and enforces the convergence contract: one
// outcome cluster-wide, a decided commit never aborted, an un-voted
// transaction never committed, and (PaxosCommit) acceptor recovery — not a
// TTL presumption — resolving every outcome an acceptor held. A crash no
// reachable replica knows resolved yet stays pending — unless final, when
// doubt is a campaign failure. Resolved commits are backfilled into the
// history so the checker verifies their writes against every later read.
func (s *scheduler) settleCoordCrashes(ctx context.Context, rec *checker.Recorder, final bool) error {
	if len(s.crashes) == 0 {
		return nil
	}
	paxos := s.cfg.Protocol == commit.PaxosCommit
	var still []coordCrash
	for _, c := range s.crashes {
		known, committed, holds := 0, 0, 0
		for _, dm := range c.rep.DMs {
			resp, perr := s.store.ResolutionProbe(ctx, dm, c.rep.Txn)
			if perr != nil {
				continue // crashed or partitioned replica: no verdict from it
			}
			if resp.Holds {
				holds++
			}
			if resp.Known {
				known++
				if resp.Committed {
					committed++
				}
			}
		}
		if known == 0 {
			if final {
				return fmt.Errorf("chaos: coordcrash txn %s still in doubt after final settle", c.rep.Txn)
			}
			still = append(still, c)
			continue
		}
		if committed != 0 && committed != known {
			return fmt.Errorf("chaos: coordcrash txn %s split outcome: %d of %d knowing replicas committed", c.rep.Txn, committed, known)
		}
		didCommit := committed > 0
		if c.rep.Decided && !didCommit {
			return fmt.Errorf("chaos: coordcrash txn %s resolved abort over a decided commit", c.rep.Txn)
		}
		// Sends (dispatched requests), not Accepts (observed acks), gates
		// the no-evidence assertion: a lossy network can deliver an accept
		// and drop its ack, leaving a durable vote the coordinator never
		// saw — recovery is then obligated to complete the commit.
		if !c.rep.Decided && c.rep.Sends == 0 && didCommit {
			return fmt.Errorf("chaos: coordcrash txn %s resolved commit though no commit-carrying request was ever sent", c.rep.Txn)
		}
		if paxos && c.rep.Accepts > 0 && c.rep.Learned == 0 && s.acceptorResolves() == c.base {
			return fmt.Errorf("chaos: coordcrash txn %s resolved without acceptor recovery", c.rep.Txn)
		}
		if final && holds > 0 {
			return fmt.Errorf("chaos: coordcrash txn %s still holds locks at %d replica(s) after final settle", c.rep.Txn, holds)
		}
		if didCommit {
			s.crashCommitted++
			rec.RecordTxn(checker.TxnRecord{
				ID: string(c.rep.Txn), Start: c.rep.Start, End: c.rep.End, Ops: c.rep.Ops,
			})
		} else {
			s.crashAborted++
		}
	}
	s.crashes = still
	return nil
}

func newScheduler(net *sim.Network, store *cluster.Store, client string, groups [][]string, cfg Config) *scheduler {
	enabled := map[Fault]bool{}
	for _, f := range cfg.Faults {
		enabled[f] = true
	}
	home := make([]int, len(groups))
	for i := range home {
		home[i] = i
	}
	return &scheduler{
		// Offset the seed so the scheduler's stream is independent of the
		// store's and the network's.
		rng:     rand.New(rand.NewSource(CampaignSeed(cfg.Seed, 0x5eed))),
		net:     net,
		store:   store,
		client:  client,
		groups:  groups,
		cfg:     cfg,
		enabled: enabled,
		home:    home,
	}
}

// impairBudget is how many replicas of one group may be node-impaired at
// once: a minority, so every item keeps a live majority quorum.
func (s *scheduler) impairBudget() int {
	return (s.cfg.Replicas - 1) / 2
}

// impaired counts the active node-scoped faults per group.
func (s *scheduler) impaired(group int) int {
	n := 0
	for _, e := range s.active {
		if e.dm != "" && e.group == group {
			n++
		}
	}
	return n
}

// advance heals expired episodes and rolls for new ones. It must only be
// called with the network quiesced and no transactions in flight, so no
// transaction observes a fault transition mid-run.
func (s *scheduler) advance(round int, injected map[Fault]int) {
	kept := s.active[:0]
	for _, e := range s.active {
		if e.until <= round {
			if e.fault == FaultDiskfault && !s.healDisk(e) {
				// The rebuild needs every peer answering, and one of them is
				// crashed or partitioned at this boundary. The replica stays
				// quarantined (still counted against the group's impair
				// budget) and the heal retries next boundary; the final
				// healAll runs disk heals after every other fault is gone.
				e.until = round + 1
				kept = append(kept, e)
				continue
			}
			if e.fault != FaultDiskfault {
				s.heal(e)
			}
			continue
		}
		if e.fault == FaultFlap {
			// The flap IS the fault: the replica bounces at every boundary,
			// never down long enough to be declared dead, never up long
			// enough to be trusted again.
			if e.down {
				s.net.Restart(e.dm)
			} else {
				s.net.Crash(e.dm)
			}
			e.down = !e.down
		}
		kept = append(kept, e)
	}
	s.active = kept

	for _, f := range AllFaults { // fixed order: determinism
		if !s.enabled[f] {
			continue
		}
		if s.rng.Float64() >= 0.5 {
			continue
		}
		ttl := round + 1 + s.rng.Intn(2)
		switch f {
		case FaultCrash, FaultAmnesia, FaultPartition, FaultStraggler, FaultFlap:
			g := s.rng.Intn(len(s.groups))
			if s.impaired(g) >= s.impairBudget() {
				continue
			}
			dm := s.groups[g][s.rng.Intn(len(s.groups[g]))]
			if s.nodeFaulted(dm) {
				continue
			}
			switch f {
			case FaultCrash, FaultAmnesia:
				// Amnesia injects like a crash; the difference is the heal,
				// which wipes the DM's memory and rebuilds it from its WAL.
				s.net.Crash(dm)
			case FaultFlap:
				s.net.Crash(dm)
			case FaultPartition:
				s.net.Disconnect(s.client, dm)
			case FaultStraggler:
				// Kept far below the call timeout so a straggler's reply —
				// the one case fate feedback cannot settle early — never
				// races the timer.
				d := time.Duration(1+s.rng.Intn(2)) * time.Millisecond
				s.net.SetNodeLatency(dm, d, d)
			}
			s.active = append(s.active, episode{fault: f, dm: dm, group: g, until: ttl, down: f == FaultFlap})
		case FaultDrop:
			if s.faultActive(f) {
				continue
			}
			// Kept modest: every lost request or reply stalls its caller
			// for a full call timeout, so loss dominates campaign wall
			// time well before it adds test power.
			s.net.SetDropProb(0.03 + 0.07*s.rng.Float64())
			s.active = append(s.active, episode{fault: f, until: ttl})
		case FaultDup:
			if s.faultActive(f) {
				continue
			}
			s.net.SetDupProb(0.10 + 0.20*s.rng.Float64())
			s.active = append(s.active, episode{fault: f, until: ttl})
		case FaultReorder:
			if s.faultActive(f) {
				continue
			}
			s.net.SetReorder(0.10+0.20*s.rng.Float64(), time.Millisecond)
			s.active = append(s.active, episode{fault: f, until: ttl})
		case FaultClientCrash:
			g := s.rng.Intn(len(s.groups))
			item := fmt.Sprintf("x%d", g)
			// The orphaned transaction holds write locks at a full write
			// quorum, so the item is unreadable and unwritable until the
			// lease reaper presumes it aborted. No episode is recorded:
			// there is nothing the scheduler can heal — recovery is the
			// store's job, and the final writability probe checks it did.
			if _, perr := s.store.PlantOrphan(context.Background(), item); perr != nil {
				continue // a fully impaired group may refuse; the roll is spent
			}
			s.orphans++
		case FaultOverload:
			// A seeded burst at one replica's admission queue: always larger
			// than the queue, with a pre-expired prefix. Injection bypasses
			// the network behind a held service loop, and the scheduler only
			// runs with the network quiesced, so the queue is empty and the
			// verdict counts depend on nothing but the burst shape.
			g := s.rng.Intn(len(s.groups))
			dm := s.groups[g][s.rng.Intn(len(s.groups[g]))]
			k := overloadAdmitCap + 2 + s.rng.Intn(8)
			rep := s.store.Burst(dm, k, s.rng.Intn(3))
			s.bursts++
			s.shed += int64(rep.Shed)
			s.expired += int64(rep.Expired)
		case FaultStalehint:
			// The adversarial hint schedule: partition exactly the replica the
			// client's next hinted read would use — while both sides still
			// believe the hint — then commit a newer version through the
			// survivors. The writer's fence cannot reach the partitioned
			// holder and (manual clock) proceeds counting the miss; safety
			// rests entirely on the round-boundary TTL advances expiring the
			// orphaned hint before the heal, which is exactly what the
			// checker gates.
			g := s.rng.Intn(len(s.groups))
			item := fmt.Sprintf("x%d", g)
			dm, ok := s.store.HintTarget(item)
			if !ok {
				continue // no live cached target this boundary; the roll is spent
			}
			if s.impaired(g) >= s.impairBudget() || s.nodeFaulted(dm) {
				continue
			}
			s.net.Disconnect(s.client, dm)
			s.active = append(s.active, episode{fault: f, dm: dm, group: g, until: ttl})
			s.stales++
			val := fmt.Sprintf("stalehint-%d", s.stales)
			if werr := s.store.Run(context.Background(), func(t *cluster.Txn) error {
				return t.Write(context.Background(), item, val)
			}); werr != nil && !expectedUnderFaults(werr) {
				if s.err == nil {
					s.err = fmt.Errorf("chaos: stalehint write through survivors: %w", werr)
				}
				return
			}
		case FaultMigrate:
			if len(s.groups) < 2 {
				continue
			}
			i := s.rng.Intn(len(s.groups))
			tg := s.rng.Intn(len(s.groups) - 1)
			if tg >= s.home[i] {
				tg++ // a group other than the believed home
			}
			mode := s.rng.Intn(4)
			deliver := s.rng.Intn(3)
			// A target group already node-impaired would just fail the adopt
			// round (every new replica must host the placeholder); spend the
			// roll elsewhere. The believed-home group may be impaired — the
			// old side only needs quorums, and failing against them is part
			// of the exercise.
			if s.impaired(tg) > 0 {
				continue
			}
			item := fmt.Sprintf("x%d", i)
			target := fmt.Sprintf("g%d", tg)
			var mopts cluster.MigrateOptions
			switch mode {
			case 2:
				mopts.Crash = cluster.MigrateCrashBeforeCommit
			case 3:
				mopts.Crash = cluster.MigrateCrashMidCommit
				mopts.CrashDeliver = deliver
			}
			merr := s.store.MigrateItemOpts(context.Background(), item, target, mopts)
			switch {
			case merr == nil:
				if mopts.Crash == cluster.MigrateCrashNone {
					s.migrations++
					s.home[i] = tg
				}
			case errors.Is(merr, cluster.ErrMigrationAbandoned):
				// The injected coordinator kill. The item's fate — old group
				// at the old generation, or new group at gen+1 — now rests
				// with the lease reaper; the final writability probe and the
				// checker hold it to exactly one of those.
				s.abandoned++
			case expectedUnderFaults(merr):
				// Adopt/copy/fence lost to a concurrent fault before the
				// commit point; the coordinator aborted cleanly.
			default:
				if s.err == nil {
					s.err = fmt.Errorf("chaos: migrate %s -> %s: %w", item, target, merr)
				}
				return
			}
		case FaultCoordCrash:
			g := s.rng.Intn(len(s.groups))
			stage := cluster.CommitCrashStage(1 + s.rng.Intn(4))
			deliver := s.rng.Intn(s.cfg.Replicas)
			item := fmt.Sprintf("x%d", g)
			base := s.acceptorResolves()
			val := fmt.Sprintf("coordcrash-%d-%d", round, s.coordCrashes)
			rep, cerr := s.store.CrashCommit(context.Background(), item, val,
				cluster.CommitCrashOptions{Stage: stage, Deliver: deliver})
			switch {
			case errors.Is(cerr, cluster.ErrCommitAbandoned):
				// The injected kill. The transaction's locks (and any
				// acceptor votes) now dangle; the settle pass holds the
				// cluster's resolution to the convergence contract.
				s.coordCrashes++
				s.crashes = append(s.crashes, coordCrash{rep: rep, base: base})
			case expectedUnderFaults(cerr):
				continue // lost to a concurrent fault before the commit point; the roll is spent
			default:
				if s.err == nil {
					s.err = fmt.Errorf("chaos: coordcrash on %s: %w", item, cerr)
				}
				return
			}
		case FaultDiskfault:
			// One scrambled disk at a time: a rebuild pulls from EVERY peer,
			// so two concurrently quarantined replicas would fail each
			// other's pulls by construction, not by bug.
			if s.faultActive(f) {
				continue
			}
			g := s.rng.Intn(len(s.groups))
			if s.impaired(g) >= s.impairBudget() {
				continue
			}
			dm := s.groups[g][s.rng.Intn(len(s.groups[g]))]
			if s.nodeFaulted(dm) {
				continue
			}
			mode := s.rng.Intn(3)
			switch mode {
			case diskNoSpace:
				// The disk fills mid-round: the first logged write the
				// workload lands at this replica fails its append and the
				// replica quarantines itself — fail closed, no ack for state
				// the disk does not back.
				s.ffs.FailAppends(filepath.Join(s.walDir, dm), true)
			case diskMidCommit:
				// The nastiest seeded instant: kill a commit coordinator
				// around the commit point AND scramble a cohort member's disk
				// in the same breath. Under TwoPhase the stage is clamped to
				// BeforeDecide — a mid-learn 2PC commit whose only learner's
				// disk then dies is a genuinely lost decided commit (DESIGN.md
				// §12); PaxosCommit's majority-durable decision tolerates any
				// stage, which is exactly the point of running it here.
				stage := cluster.CommitCrashStage(1 + s.rng.Intn(4))
				deliver := s.rng.Intn(s.cfg.Replicas)
				if s.cfg.Protocol != commit.PaxosCommit {
					stage = cluster.CommitCrashBeforeDecide
				}
				base := s.acceptorResolves()
				item := fmt.Sprintf("x%d", g)
				val := fmt.Sprintf("diskfault-%d-%d", round, s.diskFaults)
				rep, cerr := s.store.CrashCommit(context.Background(), item, val,
					cluster.CommitCrashOptions{Stage: stage, Deliver: deliver})
				switch {
				case errors.Is(cerr, cluster.ErrCommitAbandoned):
					s.coordCrashes++
					s.crashes = append(s.crashes, coordCrash{rep: rep, base: base})
				case expectedUnderFaults(cerr):
					continue // lost to a concurrent fault; the roll is spent
				default:
					if s.err == nil {
						s.err = fmt.Errorf("chaos: diskfault mid-commit on %s: %w", item, cerr)
					}
					return
				}
				if !s.corruptAtRest(dm) {
					if s.err != nil {
						return
					}
					continue // nothing corruptible yet; the crash alone stands
				}
			case diskAtRest:
				if !s.corruptAtRest(dm) {
					if s.err != nil {
						return
					}
					continue // log too young to have sealed anything; the roll is spent
				}
			}
			s.active = append(s.active, episode{fault: f, dm: dm, group: g, until: ttl, mode: mode})
			s.diskFaults++
		}
		injected[f]++
	}
}

// corruptAtRest stops a replica, scrambles its log on the (virtual) disk —
// a bit flip in a sealed segment frame, else a whole sealed segment
// dropped, else the snapshot damaged — and restarts it onto the wreckage.
// The restart comes back quarantined (verified by the heal, which must
// rebuild it). Returns false when the log is still too young to hold
// anything corruptible; harness errors land in s.err.
func (s *scheduler) corruptAtRest(dm string) bool {
	dir := filepath.Join(s.walDir, dm)
	if err := s.store.StopDM(dm); err != nil {
		s.fail(fmt.Errorf("chaos: diskfault stop %s: %w", dm, err))
		return false
	}
	hit := false
	if _, _, ok, err := s.ffs.CorruptSegmentFrame(dir); err != nil {
		s.fail(fmt.Errorf("chaos: diskfault corrupt %s: %w", dm, err))
	} else if ok {
		hit = true
	}
	if !hit && s.err == nil {
		if _, ok, err := s.ffs.DropSegment(dir); err != nil {
			s.fail(fmt.Errorf("chaos: diskfault drop segment %s: %w", dm, err))
		} else if ok {
			hit = true
		}
	}
	if !hit && s.err == nil {
		if _, ok, err := s.ffs.CorruptSnapshot(dir); err != nil {
			s.fail(fmt.Errorf("chaos: diskfault corrupt snapshot %s: %w", dm, err))
		} else if ok {
			hit = true
		}
	}
	if _, err := s.store.RestartDM(dm); err != nil {
		s.fail(fmt.Errorf("chaos: diskfault restart %s: %w", dm, err))
		return false
	}
	return hit && s.err == nil
}

// healDisk disarms a diskfault episode and, when the replica actually
// quarantined, rebuilds it from its peers. Returns false when the rebuild
// cannot complete at this boundary (the pull needs ALL peers answering and
// one is crashed or partitioned); the caller retries at the next one.
func (s *scheduler) healDisk(e episode) bool {
	if e.mode == diskNoSpace {
		s.ffs.FailAppends(filepath.Join(s.walDir, e.dm), false)
	}
	quar := false
	for _, q := range s.store.QuarantinedDMs() {
		if q == e.dm {
			quar = true
		}
	}
	if !quar {
		// Mode B that never saw a logged write, or an at-rest scramble whose
		// restart somehow recovered: nothing to rebuild.
		return true
	}
	if _, err := s.store.RebuildReplica(context.Background(), e.dm); err != nil {
		return false
	}
	return true
}

func (s *scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *scheduler) nodeFaulted(dm string) bool {
	for _, e := range s.active {
		if e.dm == dm {
			return true
		}
	}
	return false
}

func (s *scheduler) faultActive(f Fault) bool {
	for _, e := range s.active {
		if e.fault == f {
			return true
		}
	}
	return false
}

func (s *scheduler) heal(e episode) {
	switch e.fault {
	case FaultCrash:
		s.net.Restart(e.dm)
	case FaultFlap:
		if e.down {
			s.net.Restart(e.dm)
		}
	case FaultAmnesia:
		// The heal IS the amnesia: discard the replica's state machine,
		// rebuild it from its log, and only then let traffic back in. Heals
		// run behind a Quiesce barrier, so replay sees a settled log.
		if _, err := s.store.RestartDM(e.dm); err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("chaos: amnesia recovery of %s: %w", e.dm, err)
			}
			return
		}
		s.net.Restart(e.dm)
	case FaultPartition, FaultStalehint:
		s.net.Reconnect(s.client, e.dm)
	case FaultStraggler:
		s.net.SetNodeLatency(e.dm, 0, 0)
	case FaultDrop:
		s.net.SetDropProb(0)
	case FaultDup:
		s.net.SetDupProb(0)
	case FaultReorder:
		s.net.SetReorder(0, 0)
	}
}

// healAll reverts every active fault; the final verification round runs on
// a healthy network. Disk heals run last — their rebuilds need every peer
// back, so every crash and partition must lift first.
func (s *scheduler) healAll() {
	var disks []episode
	for _, e := range s.active {
		if e.fault == FaultDiskfault {
			disks = append(disks, e)
			continue
		}
		s.heal(e)
	}
	for _, e := range disks {
		if !s.healDisk(e) {
			s.fail(fmt.Errorf("chaos: final rebuild of %s failed with every other fault healed", e.dm))
		}
	}
	s.active = nil
}
