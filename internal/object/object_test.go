package object

import (
	"errors"
	"testing"

	"repro/internal/ioa"
	"repro/internal/tree"
)

func buildObject(t *testing.T) (*tree.Tree, *RW) {
	t.Helper()
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	r := tr.MustAddChild(u.Name(), "r", tree.KindAccess)
	r.Object = "x"
	r.Access = tree.ReadAccess
	w := tr.MustAddChild(u.Name(), "w", tree.KindAccess)
	w.Object = "x"
	w.Access = tree.WriteAccess
	w.Data = 42
	return tr, NewRW(tr, "x", 7)
}

func TestReadAccessReturnsData(t *testing.T) {
	_, o := buildObject(t)
	if err := o.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	enabled := o.Enabled()
	if len(enabled) != 1 {
		t.Fatalf("enabled = %v", enabled)
	}
	want := ioa.RequestCommit("T0/u/r", 7)
	if !enabled[0].Equal(want) {
		t.Fatalf("enabled = %v, want %v", enabled[0], want)
	}
	if err := o.Step(want); err != nil {
		t.Fatal(err)
	}
	if o.Active() != "" {
		t.Error("active must clear after return")
	}
}

func TestReadAccessRejectsWrongValue(t *testing.T) {
	_, o := buildObject(t)
	if err := o.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	err := o.Step(ioa.RequestCommit("T0/u/r", 999))
	if !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("want precondition failure, got %v", err)
	}
}

func TestWriteAccessSetsData(t *testing.T) {
	_, o := buildObject(t)
	if err := o.Step(ioa.Create("T0/u/w")); err != nil {
		t.Fatal(err)
	}
	// Write accesses return nil.
	if err := o.Step(ioa.RequestCommit("T0/u/w", 7)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("non-nil return must fail, got %v", err)
	}
	if err := o.Step(ioa.RequestCommit("T0/u/w", nil)); err != nil {
		t.Fatal(err)
	}
	if o.Data() != 42 {
		t.Errorf("data = %v, want 42", o.Data())
	}
}

func TestNoPendingMeansNothingEnabled(t *testing.T) {
	_, o := buildObject(t)
	if got := o.Enabled(); len(got) != 0 {
		t.Errorf("idle object enabled %v", got)
	}
	err := o.Step(ioa.RequestCommit("T0/u/r", 7))
	if !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("return without pending access must fail, got %v", err)
	}
}

func TestHasOpAndIsOutput(t *testing.T) {
	_, o := buildObject(t)
	if !o.HasOp(ioa.Create("T0/u/r")) || !o.HasOp(ioa.RequestCommit("T0/u/w", nil)) {
		t.Error("object must claim its accesses' invocations and returns")
	}
	if o.HasOp(ioa.RequestCreate("T0/u/r")) {
		t.Error("REQUEST-CREATE is not an object operation")
	}
	if o.HasOp(ioa.Create("T0/u")) {
		t.Error("non-access ops are foreign")
	}
	if o.IsOutput(ioa.Create("T0/u/r")) {
		t.Error("CREATE is an input")
	}
	if !o.IsOutput(ioa.RequestCommit("T0/u/r", 1)) {
		t.Error("REQUEST-COMMIT is an output")
	}
}

func TestForeignAccessRejected(t *testing.T) {
	_, o := buildObject(t)
	if err := o.Step(ioa.Create("T0/u")); err == nil {
		t.Error("non-access op must be rejected")
	}
}

func TestSequentialAccessesAccumulateWrites(t *testing.T) {
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	for i, val := range []int{1, 2, 3} {
		w := tr.MustAddChild(u.Name(), string(rune('a'+i)), tree.KindAccess)
		w.Object = "x"
		w.Access = tree.WriteAccess
		w.Data = val
	}
	o := NewRW(tr, "x", 0)
	for _, acc := range tr.AccessesTo("x") {
		if err := o.Step(ioa.Create(acc.Name())); err != nil {
			t.Fatal(err)
		}
		if err := o.Step(ioa.RequestCommit(acc.Name(), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if o.Data() != 3 {
		t.Errorf("data = %v, want the last write (3)", o.Data())
	}
}
