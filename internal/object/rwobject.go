// Package object implements basic objects and, in particular, the fully
// specified read-write objects of paper Section 2.3. Each replica (DM) and
// each non-replicated data item is modeled as a read-write object.
package object

import (
	"fmt"
	"reflect"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// RW is a read-write object: a basic object automaton over some domain D
// with an initial value. Its state has two components, active (the name of
// the current access, "" for nil) and data (an element of D).
//
// For a read access T, REQUEST-COMMIT(T, v) has preconditions active = T
// and v = data; for a write access T with data(T) = d, the preconditions
// are active = T and v = nil, and the postcondition sets data = d.
type RW struct {
	name string
	tr   *tree.Tree

	accesses map[ioa.TxnName]*tree.Node

	active ioa.TxnName
	data   ioa.Value
}

var _ ioa.Automaton = (*RW)(nil)

// NewRW returns a read-write object automaton named name whose accesses are
// the access leaves of tr with Object == name, with the given initial data.
func NewRW(tr *tree.Tree, name string, initial ioa.Value) *RW {
	o := &RW{
		name:     name,
		tr:       tr,
		accesses: map[ioa.TxnName]*tree.Node{},
		data:     initial,
	}
	for _, n := range tr.AccessesTo(name) {
		o.accesses[n.Name()] = n
	}
	return o
}

// Name returns the object's name.
func (o *RW) Name() string { return o.name }

// Data returns the current data component of the object's state.
func (o *RW) Data() ioa.Value { return o.data }

// Active returns the name of the current access, or "" if none is pending.
func (o *RW) Active() ioa.TxnName { return o.active }

// HasOp reports whether op is an invocation or return operation of one of
// this object's accesses.
func (o *RW) HasOp(op ioa.Op) bool {
	if op.Kind != ioa.OpCreate && op.Kind != ioa.OpRequestCommit {
		return false
	}
	return o.accesses[op.Txn] != nil
}

// IsOutput reports whether op is REQUEST-COMMIT of one of this object's
// accesses.
func (o *RW) IsOutput(op ioa.Op) bool {
	return op.Kind == ioa.OpRequestCommit && o.accesses[op.Txn] != nil
}

// Enabled returns the REQUEST-COMMIT operation for the active access, if
// any. For read accesses the returned value is the current data; for write
// accesses it is nil.
func (o *RW) Enabled() []ioa.Op {
	if o.active == "" {
		return nil
	}
	n := o.accesses[o.active]
	if n == nil {
		return nil
	}
	if n.Access == tree.ReadAccess {
		return []ioa.Op{ioa.RequestCommit(o.active, o.data)}
	}
	return []ioa.Op{ioa.RequestCommit(o.active, nil)}
}

// Step applies op. CREATE(T) is an input and always accepted, setting
// active = T (the environment is responsible for preserving well-formedness
// by not invoking an access while another is pending, exactly as in the
// paper). REQUEST-COMMIT is an output and is validated.
func (o *RW) Step(op ioa.Op) error {
	n := o.accesses[op.Txn]
	if n == nil {
		return fmt.Errorf("object %s: %v is not an access", o.name, op.Txn)
	}
	switch op.Kind {
	case ioa.OpCreate:
		o.active = op.Txn
		return nil
	case ioa.OpRequestCommit:
		if o.active != op.Txn {
			return fmt.Errorf("%w: object %s: REQUEST-COMMIT(%v) but active = %q", ioa.ErrNotEnabled, o.name, op.Txn, o.active)
		}
		switch n.Access {
		case tree.ReadAccess:
			if !reflect.DeepEqual(op.Val, o.data) {
				return fmt.Errorf("%w: object %s: read access %v returned %v, data is %v", ioa.ErrNotEnabled, o.name, op.Txn, op.Val, o.data)
			}
			o.active = ""
		case tree.WriteAccess:
			if op.Val != nil {
				return fmt.Errorf("%w: object %s: write access %v must return nil, got %v", ioa.ErrNotEnabled, o.name, op.Txn, op.Val)
			}
			o.data = n.Data
			o.active = ""
		default:
			return fmt.Errorf("object %s: access %v has no access kind", o.name, op.Txn)
		}
		return nil
	default:
		return fmt.Errorf("object %s: unexpected op %v", o.name, op)
	}
}
