package core

import (
	"fmt"
	"reflect"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// CheckLemma8 verifies the two conclusions of Lemma 8 for item x after the
// schedule beta of system b, provided access(x, β) has even length (i.e. no
// logical access to x is in progress):
//
//  1. (a) some write-quorum q ∈ config(x).w exists such that every DM in q
//     holds version number current-vn(x, β), and (b) every DM holding
//     version number current-vn(x, β) holds value logical-state(x, β);
//  2. if β ends in REQUEST-COMMIT(T, u) with T ∈ tm_r(x), then
//     u = logical-state(x, β).
//
// The DM states are read from the live object automata of b, which must be
// in the state reached by executing beta.
func (b *SystemB) CheckLemma8(item string, beta ioa.Schedule) error {
	acc := b.AccessSequence(item, beta)
	if len(acc)%2 != 0 {
		return nil // a logical access is in progress; the lemma does not apply
	}
	it, ok := b.Spec.item(item)
	if !ok {
		return fmt.Errorf("lemma8: unknown item %q", item)
	}
	vn := b.CurrentVN(item, beta)
	state := b.LogicalState(item, beta)

	// Condition 1(a): a write-quorum entirely at current-vn.
	atVN := map[string]bool{}
	for _, dm := range it.DMs {
		d, ok := b.DMs[dm].Data().(Versioned)
		if !ok {
			return fmt.Errorf("lemma8: DM %s holds non-versioned data %v", dm, b.DMs[dm].Data())
		}
		if d.VN == vn {
			atVN[dm] = true
		}
		// Condition 1(b): DMs at current-vn hold the logical state.
		if d.VN == vn && !reflect.DeepEqual(d.Val, state) {
			return fmt.Errorf("lemma8(1b): item %s: DM %s at vn %d holds %v, logical-state is %v", item, dm, vn, d.Val, state)
		}
		if d.VN > vn {
			return fmt.Errorf("lemma8: item %s: DM %s holds vn %d above current-vn %d (Lemma 7 violated)", item, dm, d.VN, vn)
		}
	}
	if !it.Config.HasWriteQuorum(atVN) {
		return fmt.Errorf("lemma8(1a): item %s: no write-quorum holds current-vn %d (DMs at vn: %v)", item, vn, atVN)
	}

	// Condition 2: a read-TM's REQUEST-COMMIT returns the logical state.
	if len(beta) > 0 {
		last := beta[len(beta)-1]
		if last.Kind == ioa.OpRequestCommit && b.tms[last.Txn] == item &&
			b.Tree.Node(last.Txn).Kind() == tree.KindReadTM {
			if !reflect.DeepEqual(last.Val, state) {
				return fmt.Errorf("lemma8(2): item %s: read-TM %v returned %v, logical-state is %v", item, last.Txn, last.Val, state)
			}
		}
	}
	return nil
}

// Lemma8Checker returns a driver OnStep hook checking Lemma 8 for every
// item after every step.
func (b *SystemB) Lemma8Checker() func(op ioa.Op, sched ioa.Schedule) error {
	return func(_ ioa.Op, sched ioa.Schedule) error {
		for _, it := range b.Spec.Items {
			if err := b.CheckLemma8(it.Name, sched); err != nil {
				return err
			}
		}
		return nil
	}
}
