package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// BlindWriteTM is an intentionally incorrect write-TM used as ablation A2:
// it skips the version-number discovery read phase and writes its value
// with a constant version number to a write-quorum. Without the read
// phase, a second logical write does not dominate the first (version
// numbers stop being monotone across writers), so reads can return stale
// values. The A2 test demonstrates that the Lemma 8 checker catches this —
// i.e. that the paper's read-before-write rule is load-bearing and that
// the mechanized checks detect real protocol bugs.
type BlindWriteTM struct {
	tr    *tree.Tree
	name  ioa.TxnName
	item  string
	cfg   quorum.Config
	value ioa.Value

	writeChildren []ioa.TxnName
	dmOf          map[ioa.TxnName]string

	awake     bool
	requested map[ioa.TxnName]bool
	written   map[string]bool
}

var _ ioa.Automaton = (*BlindWriteTM)(nil)

// NewBlindWriteTM builds the faulty TM over the write-access children of
// node name.
func NewBlindWriteTM(tr *tree.Tree, name ioa.TxnName, item string, cfg quorum.Config, value ioa.Value) *BlindWriteTM {
	t := &BlindWriteTM{
		tr:        tr,
		name:      name,
		item:      item,
		cfg:       cfg,
		value:     value,
		dmOf:      map[ioa.TxnName]string{},
		requested: map[ioa.TxnName]bool{},
		written:   map[string]bool{},
	}
	for _, c := range tr.Children(name) {
		n := tr.Node(c)
		if n.Access == tree.WriteAccess {
			t.writeChildren = append(t.writeChildren, c)
			t.dmOf[c] = n.Object
		}
	}
	return t
}

// Name implements ioa.Automaton.
func (t *BlindWriteTM) Name() string { return string(t.name) }

// HasOp implements ioa.Automaton.
func (t *BlindWriteTM) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == t.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return t.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (t *BlindWriteTM) IsOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == t.name
	case ioa.OpRequestCreate:
		return t.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// Enabled implements ioa.Automaton.
func (t *BlindWriteTM) Enabled() []ioa.Op {
	if !t.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range t.writeChildren {
		if !t.requested[c] {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if t.cfg.HasWriteQuorum(t.written) {
		out = append(out, ioa.RequestCommit(t.name, nil))
	}
	return out
}

// Step implements ioa.Automaton.
func (t *BlindWriteTM) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		t.awake = true
	case ioa.OpCommit:
		t.written[t.dmOf[op.Txn]] = true
	case ioa.OpAbort:
	case ioa.OpRequestCreate:
		if !t.awake || t.requested[op.Txn] {
			return fmt.Errorf("%w: %v", ioa.ErrNotEnabled, op)
		}
		// The bug: no read phase; every write uses version number 1.
		t.tr.Node(op.Txn).Data = Versioned{VN: 1, Val: t.value}
		t.requested[op.Txn] = true
	case ioa.OpRequestCommit:
		if !t.awake || !t.cfg.HasWriteQuorum(t.written) {
			return fmt.Errorf("%w: %v", ioa.ErrNotEnabled, op)
		}
		t.awake = false
	default:
		return fmt.Errorf("blind-write-TM %v: unexpected op %v", t.name, op)
	}
	return nil
}

// BuildBlindWriteSystem builds system B for spec but replaces every
// write-TM with the faulty BlindWriteTM (ablation A2).
func BuildBlindWriteSystem(spec Spec) (*SystemB, error) {
	b, err := BuildB(spec)
	if err != nil {
		return nil, err
	}
	autos := make([]ioa.Automaton, 0, len(b.Sys.Components()))
	for _, a := range b.Sys.Components() {
		if tm, ok := a.(*WriteTM); ok {
			it, _ := spec.item(tm.Item())
			autos = append(autos, NewBlindWriteTM(b.Tree, ioa.TxnName(tm.Name()), tm.Item(), it.Config, tm.Value()))
			continue
		}
		autos = append(autos, a)
	}
	b.Sys = ioa.NewSystem(autos...)
	return b, nil
}
