package core

import (
	"repro/internal/quorum"
	"repro/internal/tree"
)

// PaperSpec returns the scenario of the paper's Figure 1: one replicated
// logical data item x implemented by three DMs (x1, x2, x3), two
// non-replica objects a and b, and user transactions that mix non-replica
// accesses with logical reads and writes of x. Building system B from it
// yields the Figure 1 transaction tree; building system A yields Figure 2.
func PaperSpec() Spec {
	dms := []string{"x1", "x2", "x3"}
	return Spec{
		Items: []ItemSpec{{
			Name:    "x",
			Initial: 0,
			DMs:     dms,
			Config:  quorum.Majority(dms),
		}},
		Objects: []ObjectSpec{
			{Name: "a", Initial: "a0"},
			{Name: "b", Initial: "b0"},
		},
		Top: []TxnSpec{
			Sub("u1",
				AccessObject("a", "a", tree.ReadAccess, nil),
				ReadItem("r1", "x"),
				WriteItem("w1", "x", 7),
			),
			Sub("u2",
				WriteItem("w2", "x", 9),
				AccessObject("b", "b", tree.WriteAccess, "b1"),
				ReadItem("r2", "x"),
			),
		},
	}
}
