package core

import (
	"fmt"
	"math/rand"

	"repro/internal/quorum"
	"repro/internal/tree"
)

// RandParams bounds the shape of randomly generated scenarios.
type RandParams struct {
	MaxItems    int // replicated items (≥1)
	MaxDMs      int // DMs per item (≥1)
	MaxObjects  int // non-replicated objects
	MaxTop      int // top-level user transactions (≥1)
	MaxChildren int // children per user transaction (≥1)
	MaxDepth    int // nesting depth of user transactions (≥1)
	// RetryAccesses gives TMs two accesses per DM instead of one, so a TM
	// can tolerate an aborted access and still reach a quorum.
	RetryAccesses bool
	// DeadlockAverse shapes user transactions for lock-based concurrent
	// schedulers: every user transaction is sequential and performs its
	// logical writes before its logical reads, so no transaction acquires
	// read locks it later needs to upgrade. (Cross-item cycles remain
	// possible; lock-based systems resolve those by restarting, which the
	// cluster layer implements and the model layer sidesteps by workload.)
	DeadlockAverse bool
}

// DefaultRandParams returns the bounds used by the property tests.
func DefaultRandParams() RandParams {
	return RandParams{MaxItems: 3, MaxDMs: 4, MaxObjects: 2, MaxTop: 3, MaxChildren: 3, MaxDepth: 3}
}

// RandomSpec generates a valid random scenario: items with random DM counts
// and random legal configurations, a few plain objects, and a random
// user-transaction forest mixing nested transactions, logical reads/writes,
// and non-replica accesses, with random behavior knobs.
func RandomSpec(rng *rand.Rand, p RandParams) Spec {
	var spec Spec
	nItems := 1 + rng.Intn(p.MaxItems)
	for i := 0; i < nItems; i++ {
		name := fmt.Sprintf("x%d", i)
		nDMs := 1 + rng.Intn(p.MaxDMs)
		dms := make([]string, nDMs)
		for j := range dms {
			dms[j] = fmt.Sprintf("%s.dm%d", name, j)
		}
		spec.Items = append(spec.Items, ItemSpec{
			Name:    name,
			Initial: rng.Intn(100),
			DMs:     dms,
			Config:  randomConfig(rng, dms),
		})
	}
	for i := 0; i < rng.Intn(p.MaxObjects+1); i++ {
		spec.Objects = append(spec.Objects, ObjectSpec{Name: fmt.Sprintf("obj%d", i), Initial: rng.Intn(100)})
	}
	if p.RetryAccesses {
		spec.ReadAccessesPerDM = 2
		spec.WriteAccessesPerDM = 2
	}

	valueSeq := 1000
	var gen func(depth int) []TxnSpec
	gen = func(depth int) []TxnSpec {
		n := 1 + rng.Intn(p.MaxChildren)
		out := make([]TxnSpec, 0, n)
		for i := 0; i < n; i++ {
			label := fmt.Sprintf("t%d", i)
			switch {
			case depth < p.MaxDepth && rng.Float64() < 0.4:
				sub := Sub(label, gen(depth+1)...)
				sub.Sequential = rng.Float64() < 0.5
				sub.Eager = rng.Float64() < 0.2
				out = append(out, sub)
			case rng.Float64() < 0.5:
				it := spec.Items[rng.Intn(len(spec.Items))]
				out = append(out, ReadItem(label, it.Name))
			case len(spec.Objects) > 0 && rng.Float64() < 0.25:
				obj := spec.Objects[rng.Intn(len(spec.Objects))]
				kind := tree.ReadAccess
				var val any
				if rng.Float64() < 0.5 {
					kind = tree.WriteAccess
					val = rng.Intn(100)
				}
				out = append(out, AccessObject(label, obj.Name, kind, val))
			default:
				it := spec.Items[rng.Intn(len(spec.Items))]
				valueSeq++
				out = append(out, WriteItem(label, it.Name, valueSeq))
			}
		}
		return out
	}
	nTop := 1 + rng.Intn(p.MaxTop)
	for i := 0; i < nTop; i++ {
		top := Sub(fmt.Sprintf("u%d", i), gen(1)...)
		top.Sequential = rng.Float64() < 0.5
		spec.Top = append(spec.Top, top)
	}
	if p.DeadlockAverse {
		for i := range spec.Top {
			makeDeadlockAverse(&spec.Top[i])
		}
	}
	return spec
}

// makeDeadlockAverse rewrites a user-transaction spec in place: sequential
// execution with logical writes ordered before logical reads at every
// nesting level.
func makeDeadlockAverse(t *TxnSpec) {
	if t.Kind != StepSub {
		return
	}
	t.Sequential = true
	t.Eager = false
	var writes, rest []TxnSpec
	for i := range t.Children {
		makeDeadlockAverse(&t.Children[i])
		if t.Children[i].Kind == StepWriteItem {
			writes = append(writes, t.Children[i])
		} else {
			rest = append(rest, t.Children[i])
		}
	}
	t.Children = append(writes, rest...)
}

// randomConfig picks a random legal configuration over dms: one of the
// standard strategies, or a voting configuration with random votes.
func randomConfig(rng *rand.Rand, dms []string) quorum.Config {
	switch rng.Intn(4) {
	case 0:
		return quorum.ReadOneWriteAll(dms)
	case 1:
		return quorum.Majority(dms)
	case 2:
		// Weighted voting with random votes; retry until thresholds valid.
		votes := map[string]int{}
		total := 0
		for _, d := range dms {
			v := 1 + rng.Intn(3)
			votes[d] = v
			total += v
		}
		wq := total/2 + 1 + rng.Intn((total+1)-(total/2+1))
		if wq > total {
			wq = total
		}
		minRQ := total - wq + 1
		rq := minRQ + rng.Intn(total-minRQ+1)
		cfg, err := quorum.Voting(votes, rq, wq)
		if err == nil {
			return cfg
		}
		return quorum.Majority(dms)
	default:
		// Read-all/write-all: the single quorum for both.
		all := quorum.NewSet(dms...)
		return quorum.Config{R: []quorum.Set{all.Clone()}, W: []quorum.Set{all}}
	}
}
