package core

import (
	"repro/internal/ioa"
	"repro/internal/tree"
)

// AccessSequence returns access(x, β): the subsequence of β containing the
// CREATE and REQUEST-COMMIT operations for the members of tm(x) — the
// sequence of logical accesses to x (paper Section 3.1).
func (b *SystemB) AccessSequence(item string, beta ioa.Schedule) ioa.Schedule {
	return beta.Filter(func(op ioa.Op) bool {
		if op.Kind != ioa.OpCreate && op.Kind != ioa.OpRequestCommit {
			return false
		}
		return b.tms[op.Txn] == item
	})
}

// LogicalState returns logical-state(x, β): value(T) of the last write-TM
// whose REQUEST-COMMIT appears in access(x, β), or i_x if there is none —
// the expected return value of a logical read after β.
func (b *SystemB) LogicalState(item string, beta ioa.Schedule) ioa.Value {
	var state ioa.Value
	if it, ok := b.Spec.item(item); ok {
		state = it.Initial
	}
	for _, op := range beta {
		if op.Kind != ioa.OpRequestCommit || b.tms[op.Txn] != item {
			continue
		}
		if n := b.Tree.Node(op.Txn); n.Kind() == tree.KindWriteTM {
			state = n.Data // value(T)
		}
	}
	return state
}

// CurrentVN returns current-vn(x, β): with last(x, β) the set of accesses T
// in acc(x) whose REQUEST-COMMIT is the last REQUEST-COMMIT of a write
// access to O(T) in β, current-vn is the maximum data(T).version-number
// over last(x, β), or 0 if the set is empty.
func (b *SystemB) CurrentVN(item string, beta ioa.Schedule) int {
	lastPerDM := map[string]ioa.TxnName{}
	for _, op := range beta {
		if op.Kind != ioa.OpRequestCommit {
			continue
		}
		n := b.Tree.Node(op.Txn)
		if n == nil || !n.IsAccess() || n.Item != item || n.Access != tree.WriteAccess {
			continue
		}
		lastPerDM[n.Object] = op.Txn
	}
	vn := 0
	for _, acc := range lastPerDM {
		if d, ok := b.Tree.Node(acc).Data.(Versioned); ok && d.VN > vn {
			vn = d.VN
		}
	}
	return vn
}
