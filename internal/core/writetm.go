package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// WriteTM is the write transaction manager automaton for a logical data
// item (paper Section 3.1). It performs a logical write of value(T): it
// first invokes read accesses to discover version numbers, and once
// commits from a read-quorum of DMs have been collected it may invoke
// write accesses carrying (highest-vn-seen + 1, value(T)); once commits
// from a write-quorum of DMs have been received it may request to commit,
// returning nil.
//
// Some read accesses may commit only after write accesses have been
// invoked, possibly returning the TM's own data. To prevent the TM from
// seeing its own writes and incorrectly increasing its version number, the
// COMMIT of a read access modifies the state only if no write access has
// been requested yet — exactly the paper's rule.
type WriteTM struct {
	tr    *tree.Tree
	name  ioa.TxnName
	item  string
	cfg   quorum.Config
	value ioa.Value // value(T)

	readChildren  []ioa.TxnName
	writeChildren []ioa.TxnName
	dmOf          map[ioa.TxnName]string
	kindOf        map[ioa.TxnName]tree.AccessKind

	// sequential restricts the TM to one outstanding access at a time,
	// requested in child order (Spec.SequentialTMs).
	sequential bool

	awake          bool
	vn             int // data(s).version-number; the value component is never used
	readRequested  map[ioa.TxnName]bool
	writeRequested map[ioa.TxnName]bool
	outstanding    int // requested children that have not returned
	read           map[string]bool
	written        map[string]bool
	done           bool
}

var _ ioa.Automaton = (*WriteTM)(nil)

// NewWriteTM builds the automaton for the write-TM node named name in tr.
// Children with ReadAccess kind are the version-number-discovery accesses;
// children with WriteAccess kind are the write accesses, whose data
// attribute is bound when the TM first requests them. initialVN is 0, the
// version number of (0, i_x).
func NewWriteTM(tr *tree.Tree, name ioa.TxnName, item string, cfg quorum.Config, value ioa.Value, initialVN int) *WriteTM {
	t := &WriteTM{
		tr:             tr,
		name:           name,
		item:           item,
		cfg:            cfg,
		value:          value,
		dmOf:           map[ioa.TxnName]string{},
		kindOf:         map[ioa.TxnName]tree.AccessKind{},
		vn:             initialVN,
		readRequested:  map[ioa.TxnName]bool{},
		writeRequested: map[ioa.TxnName]bool{},
		read:           map[string]bool{},
		written:        map[string]bool{},
	}
	for _, c := range tr.Children(name) {
		n := tr.Node(c)
		t.dmOf[c] = n.Object
		t.kindOf[c] = n.Access
		if n.Access == tree.ReadAccess {
			t.readChildren = append(t.readChildren, c)
		} else {
			t.writeChildren = append(t.writeChildren, c)
		}
	}
	return t
}

// SetSequential switches the TM to single-outstanding, in-order access
// requests (see Spec.SequentialTMs).
func (t *WriteTM) SetSequential(on bool) { t.sequential = on }

// seqReady reports whether sequential mode permits requesting c next among
// the given ordered children.
func (t *WriteTM) seqReady(children []ioa.TxnName, requested map[ioa.TxnName]bool, c ioa.TxnName) bool {
	if !t.sequential {
		return true
	}
	if t.outstanding > 0 {
		return false
	}
	for _, prev := range children {
		if prev == c {
			return true
		}
		if !requested[prev] {
			return false
		}
	}
	return false
}

// readRequestEnabled reports whether the TM may request read child c.
func (t *WriteTM) readRequestEnabled(c ioa.TxnName) bool {
	return t.awake && !t.readRequested[c] && t.seqReady(t.readChildren, t.readRequested, c)
}

// writeRequestEnabled reports whether the TM may request write child c.
func (t *WriteTM) writeRequestEnabled(c ioa.TxnName) bool {
	return t.awake && t.hasReadQuorum() && !t.writeRequested[c] && t.seqReady(t.writeChildren, t.writeRequested, c)
}

// Name implements ioa.Automaton.
func (t *WriteTM) Name() string { return string(t.name) }

// Item returns the logical data item this TM writes.
func (t *WriteTM) Item() string { return t.item }

// Value returns value(T), the value this TM writes.
func (t *WriteTM) Value() ioa.Value { return t.value }

// HasOp implements ioa.Automaton.
func (t *WriteTM) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == t.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return t.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (t *WriteTM) IsOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == t.name
	case ioa.OpRequestCreate:
		return t.dmOf[op.Txn] != ""
	default:
		return false
	}
}

func (t *WriteTM) hasReadQuorum() bool  { return t.cfg.HasReadQuorum(t.read) }
func (t *WriteTM) hasWriteQuorum() bool { return t.cfg.HasWriteQuorum(t.written) }

// Enabled implements ioa.Automaton.
func (t *WriteTM) Enabled() []ioa.Op {
	if !t.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range t.readChildren {
		if t.readRequestEnabled(c) {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	for _, c := range t.writeChildren {
		if t.writeRequestEnabled(c) {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if t.hasWriteQuorum() {
		out = append(out, ioa.RequestCommit(t.name, nil))
	}
	return out
}

// Step implements ioa.Automaton.
func (t *WriteTM) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		t.awake = true
	case ioa.OpCommit:
		switch t.kindOf[op.Txn] {
		case tree.ReadAccess:
			if len(t.writeRequested) == 0 {
				d, ok := op.Val.(Versioned)
				if !ok {
					return fmt.Errorf("write-TM %v: COMMIT(%v) value %v is not versioned", t.name, op.Txn, op.Val)
				}
				t.read[t.dmOf[op.Txn]] = true
				if d.VN > t.vn {
					t.vn = d.VN
				}
			}
		case tree.WriteAccess:
			t.written[t.dmOf[op.Txn]] = true
		}
		t.outstanding--
	case ioa.OpAbort:
		// The paper's automaton has no postconditions here; tracking the
		// return is the efficiency heuristic sequential mode relies on.
		t.outstanding--
	case ioa.OpRequestCreate:
		switch t.kindOf[op.Txn] {
		case tree.ReadAccess:
			if !t.readRequestEnabled(op.Txn) {
				return fmt.Errorf("%w: %v by write-TM %v", ioa.ErrNotEnabled, op, t.name)
			}
			t.readRequested[op.Txn] = true
		case tree.WriteAccess:
			if !t.writeRequestEnabled(op.Txn) {
				return fmt.Errorf("%w: %v by write-TM %v", ioa.ErrNotEnabled, op, t.name)
			}
			// Bind the access's data attribute: d = (vn+1, value(T)).
			// Conceptually this selects, from the infinite tree of
			// possible write accesses, the one whose data attribute is d.
			t.tr.Node(op.Txn).Data = Versioned{VN: t.vn + 1, Val: t.value}
			t.writeRequested[op.Txn] = true
		default:
			return fmt.Errorf("write-TM %v: unknown child %v", t.name, op.Txn)
		}
		t.outstanding++
	case ioa.OpRequestCommit:
		if !t.awake || !t.hasWriteQuorum() {
			return fmt.Errorf("%w: %v: no write-quorum written", ioa.ErrNotEnabled, op)
		}
		if op.Val != nil {
			return fmt.Errorf("%w: %v: write-TM must return nil", ioa.ErrNotEnabled, op)
		}
		t.awake = false
		t.done = true
	default:
		return fmt.Errorf("write-TM %v: unexpected op %v", t.name, op)
	}
	return nil
}
