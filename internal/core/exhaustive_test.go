package core

import (
	"errors"
	"testing"

	"repro/internal/ioa"
	"repro/internal/quorum"
)

// tinySpec is small enough to explore exhaustively: one item on two DMs
// (read-one/write-all), one user transaction with a write then a read.
func tinySpec() Spec {
	dms := []string{"d1", "d2"}
	spec := Spec{
		Items: []ItemSpec{{
			Name: "x", Initial: 0, DMs: dms, Config: quorum.ReadOneWriteAll(dms),
		}},
		Top: []TxnSpec{Sub("u", WriteItem("w", "x", 1), ReadItem("r", "x"))},
	}
	spec.Top[0].Sequential = true
	return spec
}

// TestExhaustiveLemma8NoAborts verifies the Lemma 8 invariant on EVERY
// schedule of the tiny scenario's system B with aborts pruned — complete
// coverage of the failure-free state space, not sampling.
func TestExhaustiveLemma8NoAborts(t *testing.T) {
	spec := tinySpec()
	// Build stashes the SystemB handle so Visit can check the invariant on
	// the very instance the explorer replayed into.
	var cur *SystemB
	ex := &ioa.Explorer{
		Build: func() (*ioa.System, error) {
			b, err := BuildB(spec)
			if err != nil {
				return nil, err
			}
			cur = b
			return b.Sys, nil
		},
		Prune: func(op ioa.Op, _ int) bool { return op.Kind == ioa.OpAbort },
	}
	if testing.Short() {
		ex.Budget = 50000
	}
	ex.Visit = func(sys *ioa.System, sched ioa.Schedule) error {
		for _, it := range spec.Items {
			if err := cur.CheckLemma8(it.Name, sched); err != nil {
				return err
			}
		}
		return nil
	}
	err := ex.Run()
	if err != nil && !errors.Is(err, ioa.ErrExploreBudget) {
		t.Fatal(err)
	}
	if ex.Visited() < 1000 {
		t.Fatalf("suspiciously small state space: %d schedules", ex.Visited())
	}
	t.Logf("exhaustively verified Lemma 8 over %d schedules (full space: %v)", ex.Visited(), err == nil)
}

// TestExhaustiveTheorem10WithAborts verifies the Theorem 10 simulation on
// every complete (quiescent) schedule of the tiny scenario, with aborts
// included but the state space bounded by budget.
func TestExhaustiveTheorem10WithAborts(t *testing.T) {
	spec := tinySpec()
	quiescentChecked := 0
	var cur *SystemB
	ex := &ioa.Explorer{
		Build: func() (*ioa.System, error) {
			b, err := BuildB(spec)
			if err != nil {
				return nil, err
			}
			cur = b
			return b.Sys, nil
		},
		Budget: 60000,
	}
	if testing.Short() {
		ex.Budget = 15000
	}
	ex.Visit = func(sys *ioa.System, sched ioa.Schedule) error {
		if len(sys.Enabled()) > 0 {
			return nil // only check maximal schedules; prefixes are covered by extension
		}
		quiescentChecked++
		return cur.CheckTheorem10(sched)
	}
	err := ex.Run()
	if err != nil && !errors.Is(err, ioa.ErrExploreBudget) {
		t.Fatal(err)
	}
	if quiescentChecked == 0 {
		t.Fatal("no quiescent schedules reached within budget")
	}
	t.Logf("theorem 10 verified on %d quiescent schedules (%d visited, budget hit: %v)",
		quiescentChecked, ex.Visited(), errors.Is(err, ioa.ErrExploreBudget))
}

// TestExhaustiveEverySchedulePrefixClosed checks a structural property on
// the full bounded tree: every prefix of a schedule is a schedule (the
// definition of schedules as behaviors of an automaton), exercised by the
// explorer's replay machinery itself.
func TestExhaustiveEverySchedulePrefixClosed(t *testing.T) {
	spec := tinySpec()
	ex := &ioa.Explorer{
		Build: func() (*ioa.System, error) {
			b, err := BuildB(spec)
			if err != nil {
				return nil, err
			}
			return b.Sys, nil
		},
		MaxDepth: 14,
		Prune:    func(op ioa.Op, _ int) bool { return op.Kind == ioa.OpAbort },
	}
	ex.Visit = func(sys *ioa.System, sched ioa.Schedule) error {
		// Well-formedness must hold for every prefix (the paper: all
		// serial schedules are well-formed).
		b, err := BuildB(spec)
		if err != nil {
			return err
		}
		return b.Tree.CheckScheduleWellFormed(sched)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
}
