package core

import (
	"errors"
	"testing"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// tmFixture builds a tree holding one read-TM and one write-TM over three
// DMs with majority quorums, returning the automata unattached to any
// system so the paper's pre/postconditions can be probed step by step.
func tmFixture(t *testing.T) (*tree.Tree, *ReadTM, *WriteTM) {
	t.Helper()
	tr := tree.New()
	u := tr.MustAddChild(tree.Root, "u", tree.KindUser)
	dms := []string{"d1", "d2", "d3"}
	cfg := quorum.Majority(dms)

	rtm := tr.MustAddChild(u.Name(), "r", tree.KindReadTM)
	rtm.Item = "x"
	for _, dm := range dms {
		a := tr.MustAddChild(rtm.Name(), "r1."+dm, tree.KindAccess)
		a.Object = dm
		a.Access = tree.ReadAccess
		a.Item = "x"
	}
	wtm := tr.MustAddChild(u.Name(), "w", tree.KindWriteTM)
	wtm.Item = "x"
	wtm.Data = "val"
	for _, dm := range dms {
		a := tr.MustAddChild(wtm.Name(), "r1."+dm, tree.KindAccess)
		a.Object = dm
		a.Access = tree.ReadAccess
		a.Item = "x"
		wa := tr.MustAddChild(wtm.Name(), "w1."+dm, tree.KindAccess)
		wa.Object = dm
		wa.Access = tree.WriteAccess
		wa.Item = "x"
	}
	r := NewReadTM(tr, rtm.Name(), "x", cfg, Versioned{VN: 0, Val: "init"})
	w := NewWriteTM(tr, wtm.Name(), "x", cfg, "val", 0)
	return tr, r, w
}

func TestReadTMAsleepHasNoOutputs(t *testing.T) {
	_, r, _ := tmFixture(t)
	if got := r.Enabled(); len(got) != 0 {
		t.Errorf("asleep TM enabled %v", got)
	}
	if err := r.Step(ioa.RequestCreate("T0/u/r/r1.d1")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("request before CREATE: %v", err)
	}
}

func TestReadTMKeepsHighestVersion(t *testing.T) {
	_, r, _ := tmFixture(t)
	step := func(op ioa.Op) {
		t.Helper()
		if err := r.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	step(ioa.Create("T0/u/r"))
	step(ioa.RequestCreate("T0/u/r/r1.d1"))
	step(ioa.RequestCreate("T0/u/r/r1.d2"))
	// d2 returns a newer version than d1; order of arrival must not matter.
	step(ioa.Commit("T0/u/r/r1.d2", Versioned{VN: 5, Val: "new"}))
	step(ioa.Commit("T0/u/r/r1.d1", Versioned{VN: 2, Val: "old"}))
	// Quorum (2 of 3) reached: REQUEST-COMMIT must carry the value of the
	// highest version number seen.
	want := ioa.RequestCommit("T0/u/r", "new")
	found := false
	for _, op := range r.Enabled() {
		if op.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("enabled = %v, want %v", r.Enabled(), want)
	}
	// Any other return value violates the precondition.
	if err := r.Step(ioa.RequestCommit("T0/u/r", "old")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("stale value accepted: %v", err)
	}
	step(want)
	if got := r.Enabled(); len(got) != 0 {
		t.Errorf("outputs after REQUEST-COMMIT: %v", got)
	}
}

func TestReadTMNoCommitWithoutQuorum(t *testing.T) {
	_, r, _ := tmFixture(t)
	if err := r.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(ioa.RequestCreate("T0/u/r/r1.d1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(ioa.Commit("T0/u/r/r1.d1", Versioned{VN: 1, Val: "v"})); err != nil {
		t.Fatal(err)
	}
	// One DM of three is not a majority read-quorum.
	if err := r.Step(ioa.RequestCommit("T0/u/r", "v")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("commit without read-quorum: %v", err)
	}
}

func TestReadTMAbortHasNoPostconditions(t *testing.T) {
	_, r, _ := tmFixture(t)
	if err := r.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	for _, c := range []ioa.TxnName{"T0/u/r/r1.d1", "T0/u/r/r1.d2", "T0/u/r/r1.d3"} {
		if err := r.Step(ioa.RequestCreate(c)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Step(ioa.Abort("T0/u/r/r1.d1")); err != nil {
		t.Fatal(err)
	}
	// The abort changed nothing: still no quorum, and d1 stays requested.
	for _, op := range r.Enabled() {
		if op.Kind == ioa.OpRequestCommit {
			t.Fatal("abort must not contribute to the read set")
		}
		if op.Kind == ioa.OpRequestCreate && op.Txn == "T0/u/r/r1.d1" {
			t.Fatal("aborted child re-offered; children are requested at most once")
		}
	}
}

func TestWriteTMPhases(t *testing.T) {
	tr, _, w := tmFixture(t)
	step := func(op ioa.Op) {
		t.Helper()
		if err := w.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	step(ioa.Create("T0/u/w"))
	// Write accesses are not requestable before a read-quorum is seen.
	if err := w.Step(ioa.RequestCreate("T0/u/w/w1.d1")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("write access before read-quorum: %v", err)
	}
	step(ioa.RequestCreate("T0/u/w/r1.d1"))
	step(ioa.RequestCreate("T0/u/w/r1.d3"))
	step(ioa.Commit("T0/u/w/r1.d1", Versioned{VN: 4, Val: "a"}))
	step(ioa.Commit("T0/u/w/r1.d3", Versioned{VN: 9, Val: "b"}))
	// Read-quorum reached: write accesses become requestable, carrying
	// (highest vn + 1, value(T)).
	step(ioa.RequestCreate("T0/u/w/w1.d2"))
	if d, ok := tr.Node("T0/u/w/w1.d2").Data.(Versioned); !ok || d.VN != 10 || d.Val != "val" {
		t.Fatalf("bound write data = %v, want (10, val)", tr.Node("T0/u/w/w1.d2").Data)
	}
	// No write-quorum yet: REQUEST-COMMIT disabled.
	if err := w.Step(ioa.RequestCommit("T0/u/w", nil)); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("commit without write-quorum: %v", err)
	}
	step(ioa.RequestCreate("T0/u/w/w1.d1"))
	step(ioa.Commit("T0/u/w/w1.d2", nil))
	step(ioa.Commit("T0/u/w/w1.d1", nil))
	// Two writes committed = write-quorum; value must be nil.
	if err := w.Step(ioa.RequestCommit("T0/u/w", "something")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("non-nil write-TM return: %v", err)
	}
	step(ioa.RequestCommit("T0/u/w", nil))
}

func TestWriteTMIgnoresLateReadsAfterWritePhase(t *testing.T) {
	// "In order to prevent the write-TM from seeing the data it wrote and
	// incorrectly increasing its version-number, the COMMIT operation for
	// read accesses is defined so that the state of the write-TM is
	// modified only if no write accesses have been invoked."
	tr, _, w := tmFixture(t)
	step := func(op ioa.Op) {
		t.Helper()
		if err := w.Step(op); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	step(ioa.Create("T0/u/w"))
	step(ioa.RequestCreate("T0/u/w/r1.d1"))
	step(ioa.RequestCreate("T0/u/w/r1.d2"))
	step(ioa.RequestCreate("T0/u/w/r1.d3"))
	step(ioa.Commit("T0/u/w/r1.d1", Versioned{VN: 1, Val: "a"}))
	step(ioa.Commit("T0/u/w/r1.d2", Versioned{VN: 1, Val: "a"}))
	step(ioa.RequestCreate("T0/u/w/w1.d1")) // write phase begins: vn+1 = 2
	// A straggler read returns the TM's own write (vn 2). It must not
	// bump the version number.
	step(ioa.Commit("T0/u/w/r1.d3", Versioned{VN: 2, Val: "val"}))
	step(ioa.RequestCreate("T0/u/w/w1.d2"))
	if d := tr.Node("T0/u/w/w1.d2").Data.(Versioned); d.VN != 2 {
		t.Fatalf("version number incorrectly increased to %d after seeing own write", d.VN)
	}
}

func TestSequentialTMOneOutstanding(t *testing.T) {
	_, r, _ := tmFixture(t)
	r.SetSequential(true)
	if err := r.Step(ioa.Create("T0/u/r")); err != nil {
		t.Fatal(err)
	}
	got := r.Enabled()
	if len(got) != 1 || got[0].Txn != "T0/u/r/r1.d1" {
		t.Fatalf("sequential TM should offer exactly the first child, got %v", got)
	}
	if err := r.Step(ioa.RequestCreate("T0/u/r/r1.d2")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Fatalf("out-of-order request: %v", err)
	}
	if err := r.Step(ioa.RequestCreate("T0/u/r/r1.d1")); err != nil {
		t.Fatal(err)
	}
	if len(r.Enabled()) != 0 {
		t.Fatalf("one outstanding access max, got %v", r.Enabled())
	}
	if err := r.Step(ioa.Abort("T0/u/r/r1.d1")); err != nil {
		t.Fatal(err)
	}
	got = r.Enabled()
	if len(got) != 1 || got[0].Txn != "T0/u/r/r1.d2" {
		t.Fatalf("after return, next child should be offered: %v", got)
	}
}

func TestTMOpOwnership(t *testing.T) {
	_, r, w := tmFixture(t)
	if !r.HasOp(ioa.Commit("T0/u/r/r1.d1", Versioned{})) {
		t.Error("read-TM must receive its children's returns")
	}
	if r.HasOp(ioa.Commit("T0/u/w/r1.d1", Versioned{})) {
		t.Error("read-TM must not receive the write-TM's children's returns")
	}
	if !r.IsOutput(ioa.RequestCommit("T0/u/r", "v")) {
		t.Error("REQUEST-COMMIT is the TM's output")
	}
	if r.IsOutput(ioa.Commit("T0/u/r/r1.d1", nil)) {
		t.Error("COMMIT is the scheduler's output, not the TM's")
	}
	if !w.IsOutput(ioa.RequestCreate("T0/u/w/w1.d3")) {
		t.Error("write-TM owns its children's REQUEST-CREATEs")
	}
}

func TestAccessSequenceAlternates(t *testing.T) {
	// Lemma 6: access(x, β) alternates CREATE / REQUEST-COMMIT for TMs,
	// starting with a CREATE.
	b, err := BuildB(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := ioa.NewDriver(b.Sys, 5)
	sched, _, err := d.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	acc := b.AccessSequence("x", sched)
	for i, op := range acc {
		if i%2 == 0 && op.Kind != ioa.OpCreate {
			t.Fatalf("access sequence position %d should be CREATE: %v", i, acc)
		}
		if i%2 == 1 {
			if op.Kind != ioa.OpRequestCommit {
				t.Fatalf("access sequence position %d should be REQUEST-COMMIT: %v", i, acc)
			}
			if op.Txn != acc[i-1].Txn {
				t.Fatalf("REQUEST-COMMIT for %v does not match preceding CREATE(%v)", op.Txn, acc[i-1].Txn)
			}
		}
	}
}

func TestCurrentVNEmpty(t *testing.T) {
	b, err := BuildB(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if vn := b.CurrentVN("x", nil); vn != 0 {
		t.Errorf("current-vn of empty schedule = %d", vn)
	}
	if st := b.LogicalState("x", nil); st != 0 {
		t.Errorf("logical-state of empty schedule = %v", st)
	}
}
