package core

import (
	"fmt"
	"reflect"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
)

// ReadTM is the read transaction manager automaton for a logical data item
// (paper Section 3.1). It performs a logical read: it invokes read accesses
// to DMs for x, always keeping the data from the DM with the highest
// version number seen so far, and once COMMIT operations have been received
// from some read-quorum of DMs it may request to commit, returning the
// value component of its data.
//
// The automaton is deliberately nondeterministic, exactly as in the paper:
// it does not set out to access a particular read-quorum, it simply invokes
// accesses until it notices that commits from some read-quorum have
// arrived. ABORT of a child has no postconditions.
type ReadTM struct {
	tr   *tree.Tree
	name ioa.TxnName
	item string
	cfg  quorum.Config

	children []ioa.TxnName          // read-access children, in tree order
	dmOf     map[ioa.TxnName]string // O(T') for each child T'

	// sequential restricts the TM to one outstanding access at a time,
	// requested in child order (Spec.SequentialTMs).
	sequential bool

	awake       bool
	data        Versioned
	requested   map[ioa.TxnName]bool
	outstanding int             // requested children that have not returned
	read        map[string]bool // DMs whose accesses have committed
}

var _ ioa.Automaton = (*ReadTM)(nil)

// NewReadTM builds the automaton for the read-TM node named name in tr,
// whose children are read accesses to the DMs of item (Object field holds
// the DM name). initial is (0, i_x), the initial data.
func NewReadTM(tr *tree.Tree, name ioa.TxnName, item string, cfg quorum.Config, initial Versioned) *ReadTM {
	t := &ReadTM{
		tr:        tr,
		name:      name,
		item:      item,
		cfg:       cfg,
		dmOf:      map[ioa.TxnName]string{},
		data:      initial,
		requested: map[ioa.TxnName]bool{},
		read:      map[string]bool{},
	}
	for _, c := range tr.Children(name) {
		n := tr.Node(c)
		t.children = append(t.children, c)
		t.dmOf[c] = n.Object
	}
	return t
}

// SetSequential switches the TM to single-outstanding, in-order access
// requests (see Spec.SequentialTMs).
func (t *ReadTM) SetSequential(on bool) { t.sequential = on }

// requestCreateEnabled reports whether the TM may request child c now.
func (t *ReadTM) requestCreateEnabled(c ioa.TxnName) bool {
	if !t.awake || t.requested[c] {
		return false
	}
	if !t.sequential {
		return true
	}
	if t.outstanding > 0 {
		return false
	}
	for _, prev := range t.children {
		if prev == c {
			return true
		}
		if !t.requested[prev] {
			return false
		}
	}
	return false
}

// Name implements ioa.Automaton.
func (t *ReadTM) Name() string { return string(t.name) }

// Item returns the logical data item this TM reads.
func (t *ReadTM) Item() string { return t.item }

// HasOp implements ioa.Automaton.
func (t *ReadTM) HasOp(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpCreate, ioa.OpRequestCommit:
		return op.Txn == t.name
	case ioa.OpRequestCreate, ioa.OpCommit, ioa.OpAbort:
		return t.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// IsOutput implements ioa.Automaton.
func (t *ReadTM) IsOutput(op ioa.Op) bool {
	switch op.Kind {
	case ioa.OpRequestCommit:
		return op.Txn == t.name
	case ioa.OpRequestCreate:
		return t.dmOf[op.Txn] != ""
	default:
		return false
	}
}

// hasReadQuorum reports whether read(s) contains some read-quorum of the
// configuration.
func (t *ReadTM) hasReadQuorum() bool { return t.cfg.HasReadQuorum(t.read) }

// Enabled implements ioa.Automaton.
func (t *ReadTM) Enabled() []ioa.Op {
	if !t.awake {
		return nil
	}
	var out []ioa.Op
	for _, c := range t.children {
		if t.requestCreateEnabled(c) {
			out = append(out, ioa.RequestCreate(c))
		}
	}
	if t.hasReadQuorum() {
		out = append(out, ioa.RequestCommit(t.name, t.data.Val))
	}
	return out
}

// Step implements ioa.Automaton.
func (t *ReadTM) Step(op ioa.Op) error {
	switch op.Kind {
	case ioa.OpCreate:
		t.awake = true
	case ioa.OpCommit:
		d, ok := op.Val.(Versioned)
		if !ok {
			return fmt.Errorf("read-TM %v: COMMIT(%v) value %v is not versioned", t.name, op.Txn, op.Val)
		}
		t.read[t.dmOf[op.Txn]] = true
		if d.VN > t.data.VN {
			t.data = d
		}
		t.outstanding--
	case ioa.OpAbort:
		// The paper's automaton has no postconditions here; tracking the
		// return is the efficiency heuristic sequential mode relies on.
		t.outstanding--
	case ioa.OpRequestCreate:
		if !t.requestCreateEnabled(op.Txn) {
			return fmt.Errorf("%w: %v by read-TM %v", ioa.ErrNotEnabled, op, t.name)
		}
		t.requested[op.Txn] = true
		t.outstanding++
	case ioa.OpRequestCommit:
		if !t.awake || !t.hasReadQuorum() {
			return fmt.Errorf("%w: %v: no read-quorum read", ioa.ErrNotEnabled, op)
		}
		if !reflect.DeepEqual(op.Val, t.data.Val) {
			return fmt.Errorf("%w: %v: state requires value %v", ioa.ErrNotEnabled, op, t.data.Val)
		}
		t.awake = false
	default:
		return fmt.Errorf("read-TM %v: unexpected op %v", t.name, op)
	}
	return nil
}
