package core

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/quorum"
)

// TestBlindWriteViolatesLemma8 is ablation A2: removing the write-TM's
// version-number discovery read phase breaks the algorithm, and the
// mechanized Lemma 8 checker detects it. Two sequential logical writes with
// blind version numbers leave the second write unable to dominate the
// first, so either the write-quorum invariant (1a/1b) or a read's return
// value (condition 2) fails in some execution.
func TestBlindWriteViolatesLemma8(t *testing.T) {
	dms := []string{"d1", "d2", "d3"}
	spec := Spec{
		Items: []ItemSpec{{
			Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms),
		}},
		Top: []TxnSpec{
			Sub("u", WriteItem("w1", "x", 111), WriteItem("w2", "x", 222), ReadItem("r", "x")),
		},
	}
	spec.Top[0].Sequential = true

	caught := false
	for seed := int64(0); seed < 30 && !caught; seed++ {
		b, err := BuildBlindWriteSystem(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := ioa.NewDriver(b.Sys, seed)
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0
			}
			return 1
		}
		d.OnStep = b.Lemma8Checker()
		if _, _, err := d.Run(100000); err != nil {
			caught = true
		}
	}
	if !caught {
		t.Fatal("blind writes never violated Lemma 8 across 30 seeds; the checker (or the ablation) is broken")
	}
}

// TestCorrectWriteTMNeverCaught is the control for A2: the same scenario
// with the paper's write-TM passes the checker on every seed.
func TestCorrectWriteTMNeverCaught(t *testing.T) {
	dms := []string{"d1", "d2", "d3"}
	spec := Spec{
		Items: []ItemSpec{{
			Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms),
		}},
		Top: []TxnSpec{
			Sub("u", WriteItem("w1", "x", 111), WriteItem("w2", "x", 222), ReadItem("r", "x")),
		},
	}
	spec.Top[0].Sequential = true
	for seed := int64(0); seed < 30; seed++ {
		b, err := BuildB(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := ioa.NewDriver(b.Sys, seed)
		d.Bias = func(op ioa.Op) float64 {
			if op.Kind == ioa.OpAbort {
				return 0
			}
			return 1
		}
		d.OnStep = b.Lemma8Checker()
		if _, _, err := d.Run(100000); err != nil {
			t.Fatalf("seed %d: correct write-TM flagged: %v", seed, err)
		}
	}
}
