package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/tree"
	"repro/internal/txn"
)

// StepKind classifies a node of a scenario's user-transaction tree.
type StepKind int

// Scenario step kinds. Sub transactions nest; ReadItem and WriteItem are
// logical accesses to replicated items (TMs in system B, accesses in system
// A); AccessObject is a direct access to a non-replicated basic object,
// identical in both systems.
const (
	StepSub StepKind = iota + 1
	StepReadItem
	StepWriteItem
	StepAccessObject
)

// TxnSpec describes one user transaction or logical access in a scenario.
type TxnSpec struct {
	// Label names the node; it must be unique among its siblings.
	Label string
	Kind  StepKind

	// Item is the logical data item (ReadItem/WriteItem).
	Item string
	// Value is the value written (WriteItem, or AccessObject with a write).
	Value ioa.Value

	// Object and Access describe a non-replica access (AccessObject).
	Object string
	Access tree.AccessKind

	// Children are the sub-steps of a Sub transaction.
	Children []TxnSpec

	// Sequential and Eager select the user-transaction behavior (StepSub).
	Sequential bool
	Eager      bool
	// ValueFn computes the commit value of a Sub transaction.
	ValueFn txn.ValueFn
}

// Sub builds a nested user transaction spec.
func Sub(label string, children ...TxnSpec) TxnSpec {
	return TxnSpec{Label: label, Kind: StepSub, Children: children}
}

// ReadItem builds a logical-read spec for item.
func ReadItem(label, item string) TxnSpec {
	return TxnSpec{Label: label, Kind: StepReadItem, Item: item}
}

// WriteItem builds a logical-write spec for item with the given value.
func WriteItem(label, item string, value ioa.Value) TxnSpec {
	return TxnSpec{Label: label, Kind: StepWriteItem, Item: item, Value: value}
}

// AccessObject builds a direct access spec to a non-replicated object.
func AccessObject(label, obj string, kind tree.AccessKind, value ioa.Value) TxnSpec {
	return TxnSpec{Label: label, Kind: StepAccessObject, Object: obj, Access: kind, Value: value}
}

// ItemSpec describes a replicated logical data item: its domain's initial
// value i_x, the DMs implementing it (dm(x) — disjoint across items), and
// its legal quorum configuration.
type ItemSpec struct {
	Name    string
	Initial ioa.Value
	DMs     []string
	Config  quorum.Config
}

// ObjectSpec describes a non-replicated basic object present in both
// systems.
type ObjectSpec struct {
	Name    string
	Initial ioa.Value
}

// Spec is a complete scenario: the replicated items, the plain objects, and
// the user transaction forest under T0.
type Spec struct {
	Items   []ItemSpec
	Objects []ObjectSpec
	Top     []TxnSpec

	// ReadAccessesPerDM is how many read-access children each TM gets per
	// DM (default 1). Values above 1 let a TM retry a DM whose access
	// aborted, exercising the algorithm's abort tolerance.
	ReadAccessesPerDM int
	// WriteAccessesPerDM is the analogous knob for write accesses of
	// write-TMs (default 1).
	WriteAccessesPerDM int

	// SequentialTMs restricts each TM to one outstanding access at a time,
	// requested in a fixed (DM-name) order. The paper's TMs are maximally
	// nondeterministic and note that efficiency heuristics like this one
	// preserve all results ("all of our results apply even if such
	// heuristics are added"); under a lock-based concurrent scheduler,
	// ordered single-outstanding acquisition is what keeps quorum gathering
	// deadlock-averse, with scheduler aborts acting as lock-wait timeouts.
	SequentialTMs bool
}

// Validate checks the scenario's static requirements: unique item names,
// DM sets disjoint across items (dm(x) ∩ dm(y) = ∅), legal configurations
// over the item's DMs, and references resolving.
func (s Spec) Validate() error {
	items := map[string]ItemSpec{}
	dmOwner := map[string]string{}
	for _, it := range s.Items {
		if _, dup := items[it.Name]; dup {
			return fmt.Errorf("spec: duplicate item %q", it.Name)
		}
		if len(it.DMs) == 0 {
			return fmt.Errorf("spec: item %q has no DMs", it.Name)
		}
		items[it.Name] = it
		for _, d := range it.DMs {
			if owner, dup := dmOwner[d]; dup {
				return fmt.Errorf("spec: DM %q belongs to both %q and %q", d, owner, it.Name)
			}
			dmOwner[d] = it.Name
		}
		if err := it.Config.Validate(it.DMs); err != nil {
			return fmt.Errorf("spec: item %q: %w", it.Name, err)
		}
	}
	objects := map[string]bool{}
	for _, o := range s.Objects {
		if objects[o.Name] {
			return fmt.Errorf("spec: duplicate object %q", o.Name)
		}
		if dmOwner[o.Name] != "" {
			return fmt.Errorf("spec: object %q collides with a DM name", o.Name)
		}
		for _, it := range s.Items {
			if o.Name == "O("+it.Name+")" {
				return fmt.Errorf("spec: object %q collides with item %q's object in system A", o.Name, it.Name)
			}
		}
		objects[o.Name] = true
	}
	var walk func(path string, ts []TxnSpec) error
	walk = func(path string, ts []TxnSpec) error {
		seen := map[string]bool{}
		for _, t := range ts {
			if t.Label == "" || seen[t.Label] {
				return fmt.Errorf("spec: missing or duplicate label %q under %s", t.Label, path)
			}
			seen[t.Label] = true
			switch t.Kind {
			case StepSub:
				if err := walk(path+"/"+t.Label, t.Children); err != nil {
					return err
				}
			case StepReadItem, StepWriteItem:
				if _, ok := items[t.Item]; !ok {
					return fmt.Errorf("spec: %s/%s references unknown item %q", path, t.Label, t.Item)
				}
			case StepAccessObject:
				if !objects[t.Object] {
					return fmt.Errorf("spec: %s/%s references unknown object %q", path, t.Label, t.Object)
				}
				if t.Access != tree.ReadAccess && t.Access != tree.WriteAccess {
					return fmt.Errorf("spec: %s/%s has no access kind", path, t.Label)
				}
			default:
				return fmt.Errorf("spec: %s/%s has unknown kind %d", path, t.Label, int(t.Kind))
			}
		}
		return nil
	}
	return walk("T0", s.Top)
}

// readsPerDM returns the effective ReadAccessesPerDM.
func (s Spec) readsPerDM() int {
	if s.ReadAccessesPerDM <= 0 {
		return 1
	}
	return s.ReadAccessesPerDM
}

// writesPerDM returns the effective WriteAccessesPerDM.
func (s Spec) writesPerDM() int {
	if s.WriteAccessesPerDM <= 0 {
		return 1
	}
	return s.WriteAccessesPerDM
}

// item returns the ItemSpec with the given name.
func (s Spec) item(name string) (ItemSpec, bool) {
	for _, it := range s.Items {
		if it.Name == name {
			return it, true
		}
	}
	return ItemSpec{}, false
}
