package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/object"
	"repro/internal/serial"
	"repro/internal/tree"
	"repro/internal/txn"
)

// SystemB is the replicated serial system of Section 3.1: logical data
// items implemented as collections of DMs, with logical accesses managed by
// read- and write-TM automata, composed with a serial scheduler.
type SystemB struct {
	Spec Spec
	Sys  *ioa.System
	Tree *tree.Tree

	// DMs maps each DM name to its read-write object automaton.
	DMs map[string]*object.RW
	// dmItem maps a DM name to the item it replicates.
	dmItem map[string]string
	// tms maps a TM transaction name to its item.
	tms map[ioa.TxnName]string
}

// SystemA is the corresponding non-replicated serial system of Section 3.2:
// the same user transactions, with each logical data item implemented as a
// single read-write object O(x) and the former TMs as its accesses.
type SystemA struct {
	Spec Spec
	Sys  *ioa.System
	Tree *tree.Tree

	// Objects maps each logical item name to its read-write object O(x).
	Objects map[string]*object.RW
}

// objectName returns the name of O(x) in system A.
func objectName(item string) string { return "O(" + item + ")" }

// buildUserTree adds the user-transaction forest of spec under T0,
// specializing logical accesses per system: expand decides whether a
// ReadItem/WriteItem spec becomes a TM subtree (system B) or a single
// access to O(x) (system A). It returns the user-transaction nodes created.
func buildUserTree(spec Spec, tr *tree.Tree, replicated bool) ([]*tree.Node, error) {
	var users []*tree.Node
	var walk func(parent ioa.TxnName, ts []TxnSpec) error
	walk = func(parent ioa.TxnName, ts []TxnSpec) error {
		for _, t := range ts {
			switch t.Kind {
			case StepSub:
				n, err := tr.AddChild(parent, t.Label, tree.KindUser)
				if err != nil {
					return err
				}
				users = append(users, n)
				if err := walk(n.Name(), t.Children); err != nil {
					return err
				}
			case StepReadItem, StepWriteItem:
				if replicated {
					if err := addTMSubtree(spec, tr, parent, t); err != nil {
						return err
					}
				} else if err := addLogicalAccess(tr, parent, t); err != nil {
					return err
				}
			case StepAccessObject:
				n, err := tr.AddChild(parent, t.Label, tree.KindAccess)
				if err != nil {
					return err
				}
				n.Object = t.Object
				n.Access = t.Access
				n.Data = t.Value
			}
		}
		return nil
	}
	if err := walk(tree.Root, spec.Top); err != nil {
		return nil, err
	}
	return users, nil
}

// addTMSubtree adds a read- or write-TM node plus its replica-access
// children for system B.
func addTMSubtree(spec Spec, tr *tree.Tree, parent ioa.TxnName, t TxnSpec) error {
	it, ok := spec.item(t.Item)
	if !ok {
		return fmt.Errorf("core: unknown item %q", t.Item)
	}
	kind := tree.KindReadTM
	if t.Kind == StepWriteItem {
		kind = tree.KindWriteTM
	}
	tm, err := tr.AddChild(parent, t.Label, kind)
	if err != nil {
		return err
	}
	tm.Item = t.Item
	tm.Data = t.Value
	for _, dm := range it.DMs {
		for i := 1; i <= spec.readsPerDM(); i++ {
			a := tr.MustAddChild(tm.Name(), fmt.Sprintf("r%d.%s", i, dm), tree.KindAccess)
			a.Object = dm
			a.Access = tree.ReadAccess
			a.Item = t.Item
		}
		if t.Kind == StepWriteItem {
			for i := 1; i <= spec.writesPerDM(); i++ {
				a := tr.MustAddChild(tm.Name(), fmt.Sprintf("w%d.%s", i, dm), tree.KindAccess)
				a.Object = dm
				a.Access = tree.WriteAccess
				a.Item = t.Item
				// Data is bound by the write-TM at REQUEST-CREATE time.
			}
		}
	}
	return nil
}

// addLogicalAccess adds the system-A access T_BA(tm): an access to O(x)
// with the same name the TM has in system B.
func addLogicalAccess(tr *tree.Tree, parent ioa.TxnName, t TxnSpec) error {
	n, err := tr.AddChild(parent, t.Label, tree.KindAccess)
	if err != nil {
		return err
	}
	n.Object = objectName(t.Item)
	n.Item = t.Item
	if t.Kind == StepWriteItem {
		n.Access = tree.WriteAccess
		n.Data = t.Value
	} else {
		n.Access = tree.ReadAccess
	}
	return nil
}

// userOptions converts a TxnSpec's behavior knobs into txn options.
func userOptions(t TxnSpec) []txn.Option {
	var opts []txn.Option
	if t.Sequential {
		opts = append(opts, txn.Sequential())
	}
	if t.Eager {
		opts = append(opts, txn.Eager())
	}
	if t.ValueFn != nil {
		opts = append(opts, txn.WithValue(t.ValueFn))
	}
	return opts
}

// collectUserAutomata instantiates the user-transaction automata for the
// scenario over the given tree (shared by systems A and B, whose user trees
// are identical above the TM level).
func collectUserAutomata(spec Spec, tr *tree.Tree) []ioa.Automaton {
	var autos []ioa.Automaton
	var walk func(parent ioa.TxnName, ts []TxnSpec)
	walk = func(parent ioa.TxnName, ts []TxnSpec) {
		for _, t := range ts {
			if t.Kind != StepSub {
				continue
			}
			name := parent + "/" + ioa.TxnName(t.Label)
			autos = append(autos, txn.MustNewUser(tr, name, userOptions(t)...))
			walk(name, t.Children)
		}
	}
	walk(tree.Root, spec.Top)
	return autos
}

// BuildB constructs the replicated serial system B for the scenario.
func BuildB(spec Spec) (*SystemB, error) {
	return NewReplicatedSystem(spec, func(tr *tree.Tree) ioa.Automaton { return serial.NewScheduler(tr) })
}

// NewReplicatedSystem builds the replicated system's primitives (user
// transactions, TMs, DMs, plain objects) composed with the scheduler
// returned by mkSched. With a serial scheduler this is system B; with a
// concurrency-control scheduler (internal/cc) it is a concurrent system C
// of the same type, as used by Theorem 11.
func NewReplicatedSystem(spec Spec, mkSched func(*tree.Tree) ioa.Automaton) (*SystemB, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr := tree.New()
	if _, err := buildUserTree(spec, tr, true); err != nil {
		return nil, err
	}
	b := &SystemB{
		Spec:   spec,
		Tree:   tr,
		DMs:    map[string]*object.RW{},
		dmItem: map[string]string{},
		tms:    map[ioa.TxnName]string{},
	}
	autos := []ioa.Automaton{mkSched(tr), txn.NewRoot(tr)}
	autos = append(autos, collectUserAutomata(spec, tr)...)
	tr.Walk(func(n *tree.Node) {
		switch n.Kind() {
		case tree.KindReadTM:
			it, _ := spec.item(n.Item)
			tm := NewReadTM(tr, n.Name(), n.Item, it.Config, Versioned{VN: 0, Val: it.Initial})
			tm.SetSequential(spec.SequentialTMs)
			autos = append(autos, tm)
			b.tms[n.Name()] = n.Item
		case tree.KindWriteTM:
			it, _ := spec.item(n.Item)
			tm := NewWriteTM(tr, n.Name(), n.Item, it.Config, n.Data, 0)
			tm.SetSequential(spec.SequentialTMs)
			autos = append(autos, tm)
			b.tms[n.Name()] = n.Item
		}
	})
	for _, it := range spec.Items {
		for _, dm := range it.DMs {
			o := object.NewRW(tr, dm, Versioned{VN: 0, Val: it.Initial})
			b.DMs[dm] = o
			b.dmItem[dm] = it.Name
			autos = append(autos, o)
		}
	}
	for _, os := range spec.Objects {
		autos = append(autos, object.NewRW(tr, os.Name, os.Initial))
	}
	b.Sys = ioa.NewSystem(autos...)
	return b, nil
}

// BuildA constructs the non-replicated serial system A for the scenario.
func BuildA(spec Spec) (*SystemA, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr := tree.New()
	if _, err := buildUserTree(spec, tr, false); err != nil {
		return nil, err
	}
	a := &SystemA{Spec: spec, Tree: tr, Objects: map[string]*object.RW{}}
	autos := []ioa.Automaton{serial.NewScheduler(tr), txn.NewRoot(tr)}
	autos = append(autos, collectUserAutomata(spec, tr)...)
	for _, it := range spec.Items {
		o := object.NewRW(tr, objectName(it.Name), it.Initial)
		a.Objects[it.Name] = o
		autos = append(autos, o)
	}
	for _, os := range spec.Objects {
		autos = append(autos, object.NewRW(tr, os.Name, os.Initial))
	}
	a.Sys = ioa.NewSystem(autos...)
	return a, nil
}

// IsReplicaAccess reports whether name is an access in acc(x) for some
// item x — i.e. an access to a DM.
func (b *SystemB) IsReplicaAccess(name ioa.TxnName) bool {
	n := b.Tree.Node(name)
	return n != nil && n.IsAccess() && n.Item != ""
}

// IsTM reports whether name is in tm(x) for some item x.
func (b *SystemB) IsTM(name ioa.TxnName) bool { return b.tms[name] != "" }

// UserTxns returns the names of the user transactions of the system (the
// non-access transactions not in tm(x) for any x), excluding the root.
func (b *SystemB) UserTxns() []ioa.TxnName {
	var out []ioa.TxnName
	b.Tree.Walk(func(n *tree.Node) {
		if n.Kind() == tree.KindUser {
			out = append(out, n.Name())
		}
	})
	return out
}
