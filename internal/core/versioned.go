// Package core implements the paper's primary contribution: the
// generalized Quorum Consensus algorithm for nested transaction systems
// with fixed configurations (Section 3). It provides the DM, read-TM and
// write-TM automata, builders for the replicated serial system B and the
// corresponding non-replicated serial system A, the logical-state and
// current-version-number functions, a mechanized Lemma 8 invariant checker,
// and the Theorem 10 simulation checker.
package core

import (
	"fmt"

	"repro/internal/ioa"
)

// Versioned is an element of the DM domain D_x = N × V_x: a
// (version-number, value) pair. DMs for item x are read-write objects over
// this domain with initial data (0, i_x).
type Versioned struct {
	VN  int
	Val ioa.Value
}

// String renders the pair as "(vn, value)".
func (v Versioned) String() string { return fmt.Sprintf("(%d, %v)", v.VN, v.Val) }
