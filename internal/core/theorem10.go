package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/tree"
)

// ProjectToA constructs the schedule α of Theorem 10 from a schedule β of
// system b: α is β with every REQUEST-CREATE, CREATE, REQUEST-COMMIT,
// COMMIT and ABORT operation for transactions in acc(x) (for all items x)
// removed.
func (b *SystemB) ProjectToA(beta ioa.Schedule) ioa.Schedule {
	return beta.Filter(func(op ioa.Op) bool { return !b.IsReplicaAccess(op.Txn) })
}

// CheckTheorem10 verifies Theorem 10 for a schedule β of system b: the
// projection α is a schedule of the non-replicated serial system A built
// from the same scenario, α agrees with β at every object that is not a DM,
// and α|T_BA(T) = β|T for every user transaction T. A fresh instance of
// system A is built and α is replayed against it, so every automaton
// precondition — in particular the read-write object's rule that a read
// access returns the object's current data — is checked at each step.
func (b *SystemB) CheckTheorem10(beta ioa.Schedule) error {
	alpha := b.ProjectToA(beta)
	a, err := BuildA(b.Spec)
	if err != nil {
		return fmt.Errorf("theorem10: build system A: %w", err)
	}
	if i, err := a.Sys.Replay(alpha); err != nil {
		return fmt.Errorf("theorem10: α is not a schedule of A at index %d: %w", i, err)
	}

	// Condition 1: α|O = β|O for every object O not in dm(x) for any x.
	for _, os := range b.Spec.Objects {
		oB := b.Sys.Component(os.Name)
		oA := a.Sys.Component(os.Name)
		if oB == nil || oA == nil {
			return fmt.Errorf("theorem10: object %s missing from a system", os.Name)
		}
		if !beta.Project(oB).Equal(alpha.Project(oA)) {
			return fmt.Errorf("theorem10: projections on object %s differ", os.Name)
		}
	}

	// Condition 2: α|T_BA(T) = β|T for every user transaction T. The
	// projection must be computed against each system's own tree (the
	// parent functions agree on user transactions by the extension
	// property, checked here as well).
	if !b.Tree.IsExtensionOf(a.Tree) {
		return fmt.Errorf("theorem10: system B's tree does not extend system A's (Lemma 9 violated)")
	}
	for _, u := range b.UserTxns() {
		pb := beta.OpsFor(u, b.Tree.Parent)
		pa := alpha.OpsFor(u, a.Tree.Parent)
		if !pb.Equal(pa) {
			return fmt.Errorf("theorem10: user transaction %v distinguishes the systems:\nβ|T:\n%v\nα|T:\n%v", u, pb, pa)
		}
	}
	// The root also observes the same behavior.
	if !beta.OpsFor(tree.Root, b.Tree.Parent).Equal(alpha.OpsFor(tree.Root, a.Tree.Parent)) {
		return fmt.Errorf("theorem10: the root transaction distinguishes the systems")
	}
	return nil
}
