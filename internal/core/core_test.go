package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ioa"
	"repro/internal/quorum"
)

// paperSpec is the Figure 1 scenario (see PaperSpec in figures.go).
func paperSpec() Spec { return PaperSpec() }

// run drives system b to quiescence with the given seed and abort bias,
// checking Lemma 8 after every step.
func run(t *testing.T, b *SystemB, seed int64, abortWeight float64) ioa.Schedule {
	t.Helper()
	d := ioa.NewDriver(b.Sys, seed)
	d.Bias = func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return abortWeight
		}
		return 1
	}
	d.OnStep = b.Lemma8Checker()
	sched, quiescent, err := d.Run(100000)
	if err != nil {
		t.Fatalf("seed %d: driver: %v\nschedule:\n%v", seed, err, sched)
	}
	if !quiescent {
		t.Fatalf("seed %d: system did not quiesce in 100000 steps", seed)
	}
	return sched
}

func TestPaperScenarioRunsToQuiescence(t *testing.T) {
	b, err := BuildB(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	sched := run(t, b, 1, 0)
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	// Without aborts every user transaction commits.
	for _, u := range b.UserTxns() {
		found := sched.Index(func(op ioa.Op) bool { return op.Kind == ioa.OpCommit && op.Txn == u })
		if found < 0 {
			t.Errorf("user transaction %v did not commit:\n%v", u, sched)
		}
	}
}

func TestScheduleWellFormed(t *testing.T) {
	b, err := BuildB(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	sched := run(t, b, 2, 0.3)
	if err := b.Tree.CheckScheduleWellFormed(sched); err != nil {
		t.Fatalf("serial schedule is not well-formed: %v\n%v", err, sched)
	}
}

func TestTheorem10PaperScenario(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		b, err := BuildB(paperSpec())
		if err != nil {
			t.Fatal(err)
		}
		sched := run(t, b, seed, 0.2)
		if err := b.CheckTheorem10(sched); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%v", seed, err, sched)
		}
	}
}

func TestLemma8RandomScenarios(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := RandomSpec(rng, DefaultRandParams())
		b, err := BuildB(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		run(t, b, seed, 0.1) // Lemma 8 checked on every step
	}
}

func TestTheorem10RandomScenarios(t *testing.T) {
	params := DefaultRandParams()
	params.RetryAccesses = true
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := RandomSpec(rng, params)
		b, err := BuildB(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sched := run(t, b, seed+1000, 0.25)
		if err := b.CheckTheorem10(sched); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%v", seed, err, sched)
		}
	}
}

func TestSystemBExtendsSystemA(t *testing.T) {
	spec := paperSpec()
	b, err := BuildB(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildA(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Tree.IsExtensionOf(a.Tree) {
		t.Error("system B's tree should extend system A's (Lemma 9)")
	}
	if a.Tree.IsExtensionOf(b.Tree) {
		t.Error("system A's tree should not extend system B's")
	}
}

func TestLogicalStateFollowsWrites(t *testing.T) {
	spec := Spec{
		Items: []ItemSpec{{
			Name: "x", Initial: "init",
			DMs:    []string{"d1", "d2", "d3"},
			Config: quorum.Majority([]string{"d1", "d2", "d3"}),
		}},
		Top: []TxnSpec{
			Sub("u", WriteItem("w1", "x", "v1"), WriteItem("w2", "x", "v2"), ReadItem("r", "x")),
		},
	}
	// Sequential to force w1 < w2 < r in the access sequence.
	spec.Top[0].Sequential = true
	b, err := BuildB(spec)
	if err != nil {
		t.Fatal(err)
	}
	sched := run(t, b, 7, 0)
	if got := b.LogicalState("x", sched); got != "v2" {
		t.Errorf("logical-state = %v, want v2", got)
	}
	if vn := b.CurrentVN("x", sched); vn != 2 {
		t.Errorf("current-vn = %d, want 2", vn)
	}
	// The read-TM must have returned v2.
	i := sched.Index(func(op ioa.Op) bool {
		return op.Kind == ioa.OpRequestCommit && op.Txn == "T0/u/r"
	})
	if i < 0 {
		t.Fatal("read-TM never requested to commit")
	}
	if sched[i].Val != "v2" {
		t.Errorf("read-TM returned %v, want v2", sched[i].Val)
	}
}

func TestAbortedTMsTolerated(t *testing.T) {
	// With retry accesses and heavy abort bias, runs complete and the
	// simulation still holds even when many accesses abort.
	params := DefaultRandParams()
	params.RetryAccesses = true
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := RandomSpec(rng, params)
		b, err := BuildB(spec)
		if err != nil {
			t.Fatal(err)
		}
		sched := run(t, b, seed, 1.5)
		if err := b.CheckTheorem10(sched); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestProjectToARemovesExactlyReplicaAccesses(t *testing.T) {
	b, err := BuildB(paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	sched := run(t, b, 11, 0.2)
	alpha := b.ProjectToA(sched)
	for _, op := range alpha {
		if b.IsReplicaAccess(op.Txn) {
			t.Fatalf("projection kept replica-access op %v", op)
		}
	}
	kept := 0
	for _, op := range sched {
		if !b.IsReplicaAccess(op.Txn) {
			kept++
		}
	}
	if len(alpha) != kept {
		t.Fatalf("projection dropped non-replica ops: %d != %d", len(alpha), kept)
	}
}

func TestBuildBValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"duplicate item", Spec{Items: []ItemSpec{
			{Name: "x", DMs: []string{"d1"}, Config: quorum.ReadOneWriteAll([]string{"d1"})},
			{Name: "x", DMs: []string{"d2"}, Config: quorum.ReadOneWriteAll([]string{"d2"})},
		}}},
		{"shared DM", Spec{Items: []ItemSpec{
			{Name: "x", DMs: []string{"d"}, Config: quorum.ReadOneWriteAll([]string{"d"})},
			{Name: "y", DMs: []string{"d"}, Config: quorum.ReadOneWriteAll([]string{"d"})},
		}}},
		{"illegal config", Spec{Items: []ItemSpec{{
			Name: "x", DMs: []string{"d1", "d2"},
			Config: quorum.Config{R: []quorum.Set{quorum.NewSet("d1")}, W: []quorum.Set{quorum.NewSet("d2")}},
		}}}},
		{"unknown item", Spec{
			Items: []ItemSpec{{Name: "x", DMs: []string{"d1"}, Config: quorum.ReadOneWriteAll([]string{"d1"})}},
			Top:   []TxnSpec{Sub("u", ReadItem("r", "nope"))},
		}},
		{"foreign quorum member", Spec{Items: []ItemSpec{{
			Name: "x", DMs: []string{"d1"},
			Config: quorum.Config{R: []quorum.Set{quorum.NewSet("zz")}, W: []quorum.Set{quorum.NewSet("zz")}},
		}}}},
		{"object collides with system-A item object", Spec{
			Items:   []ItemSpec{{Name: "x", DMs: []string{"d1"}, Config: quorum.ReadOneWriteAll([]string{"d1"})}},
			Objects: []ObjectSpec{{Name: "O(x)"}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildB(tc.spec); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same seed over the same scenario reproduces the same schedule,
	// and the schedule replays cleanly on a fresh instance of B.
	spec := paperSpec()
	b1, _ := BuildB(spec)
	s1 := run(t, b1, 42, 0.2)
	b2, _ := BuildB(spec)
	s2 := run(t, b2, 42, 0.2)
	if !s1.Equal(s2) {
		t.Fatal("same seed produced different schedules")
	}
	b3, _ := BuildB(spec)
	if i, err := b3.Sys.Replay(s1); err != nil {
		t.Fatalf("replay failed at %d: %v", i, err)
	}
}

func ExampleSystemB_CheckTheorem10() {
	spec := Spec{
		Items: []ItemSpec{{
			Name: "x", Initial: 0,
			DMs:    []string{"x1", "x2", "x3"},
			Config: quorum.Majority([]string{"x1", "x2", "x3"}),
		}},
		Top: []TxnSpec{Sub("u", WriteItem("w", "x", 42), ReadItem("r", "x"))},
	}
	spec.Top[0].Sequential = true
	b, _ := BuildB(spec)
	d := ioa.NewDriver(b.Sys, 1)
	d.Bias = func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return 0 // failure-free run
		}
		return 1
	}
	sched, _, _ := d.Run(10000)
	fmt.Println("theorem 10:", b.CheckTheorem10(sched) == nil)
	fmt.Println("logical state:", b.LogicalState("x", sched))
	// Output:
	// theorem 10: true
	// logical state: 42
}
