package commit

import (
	"reflect"
	"testing"
)

func TestProtocolRoundTrip(t *testing.T) {
	for _, p := range []Protocol{TwoPhase, PaxosCommit} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParseProtocol(""); err != nil || p != TwoPhase {
		t.Fatalf("empty spelling should default to 2pc, got %v, %v", p, err)
	}
	if _, err := ParseProtocol("3pc"); err == nil {
		t.Fatal("unknown protocol must error")
	}
}

// TestAcceptorOrdering is the table-driven core of the acceptor contract:
// promises and accepts are granted exactly when the ballot is no lower
// than the promise watermark, and every grant moves the watermark.
func TestAcceptorOrdering(t *testing.T) {
	commit := Decision{Commit: true, Subs: []string{"s1"}, Final: map[string]int{"x": 3}}
	abort := Decision{Commit: false}
	type step struct {
		prepare bool // else accept
		bal     int
		val     Decision
		wantOK  bool
		wantMut bool
	}
	cases := []struct {
		name  string
		steps []step
		// final expected hard state
		promised, accBal int
		accCommit        bool
	}{
		{
			name: "coordinator fast path: bare accept at ballot 0",
			steps: []step{
				{prepare: false, bal: 0, val: commit, wantOK: true, wantMut: true},
			},
			promised: 0, accBal: 0, accCommit: true,
		},
		{
			name: "recovery prepare blocks stale coordinator accept",
			steps: []step{
				{prepare: true, bal: 2, wantOK: true, wantMut: true},
				{prepare: false, bal: 0, val: commit, wantOK: false, wantMut: false},
				{prepare: false, bal: 2, val: abort, wantOK: true, wantMut: true},
			},
			promised: 2, accBal: 2, accCommit: false,
		},
		{
			name: "higher ballot overrides accepted value",
			steps: []step{
				{prepare: false, bal: 0, val: commit, wantOK: true, wantMut: true},
				{prepare: true, bal: 3, wantOK: true, wantMut: true},
				{prepare: false, bal: 3, val: commit, wantOK: true, wantMut: true},
			},
			promised: 3, accBal: 3, accCommit: true,
		},
		{
			name: "duplicate prepare re-acks without mutation",
			steps: []step{
				{prepare: true, bal: 4, wantOK: true, wantMut: true},
				{prepare: true, bal: 4, wantOK: true, wantMut: false},
				{prepare: true, bal: 1, wantOK: false, wantMut: false},
			},
			promised: 4, accBal: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAcceptor([]string{"dm0", "dm1", "dm2"})
			for i, s := range tc.steps {
				var ok, mut bool
				if s.prepare {
					ok, mut = a.Prepare(s.bal)
				} else {
					ok, mut = a.Accept(s.bal, s.val)
				}
				if ok != s.wantOK || mut != s.wantMut {
					t.Fatalf("step %d: got ok=%v mut=%v, want ok=%v mut=%v", i, ok, mut, s.wantOK, s.wantMut)
				}
			}
			if a.Promised != tc.promised || a.AccBal != tc.accBal {
				t.Fatalf("final state promised=%d accBal=%d, want %d/%d", a.Promised, a.AccBal, tc.promised, tc.accBal)
			}
			if tc.accBal >= 0 && a.AccVal.Commit != tc.accCommit {
				t.Fatalf("accepted commit=%v, want %v", a.AccVal.Commit, tc.accCommit)
			}
		})
	}
}

func TestChoose(t *testing.T) {
	commit := Decision{Commit: true, Final: map[string]int{"x": 1}}
	cases := []struct {
		name     string
		promises []Promise
		want     bool
	}{
		{"no accepted value defaults to abort", []Promise{{OK: true, AccBal: -1}, {OK: true, AccBal: -1}}, false},
		{"single accepted value adopted", []Promise{{OK: true, AccBal: 0, AccVal: commit}, {OK: true, AccBal: -1}}, true},
		{"highest ballot wins", []Promise{
			{OK: true, AccBal: 0, AccVal: commit},
			{OK: true, AccBal: 2, AccVal: Decision{Commit: false}},
		}, false},
		{"rejected promises ignored", []Promise{{OK: false, AccBal: 5, AccVal: commit}, {OK: true, AccBal: -1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Choose(tc.promises); got.Commit != tc.want {
				t.Fatalf("Choose = %+v, want commit=%v", got, tc.want)
			}
		})
	}
}

func TestChooseAdoptsValueWhole(t *testing.T) {
	val := Decision{Commit: true, Subs: []string{"a", "b"}, Final: map[string]int{"x": 7}}
	got := Choose([]Promise{{OK: true, AccBal: 3, AccVal: val}})
	if !reflect.DeepEqual(got, val) {
		t.Fatalf("Choose must adopt the accepted value unchanged: got %+v", got)
	}
}

func TestQuorumAndBallots(t *testing.T) {
	for n, want := range map[int]int{1: 1, 3: 2, 5: 3, 7: 4} {
		if got := Quorum(n); got != want {
			t.Fatalf("Quorum(%d) = %d, want %d", n, got, want)
		}
	}
	// Ballots must be unique across (attempt, proposer) pairs and > 0.
	seen := map[int]bool{}
	for attempt := 0; attempt < 3; attempt++ {
		for idx := 0; idx < 5; idx++ {
			b := RecoveryBallot(attempt, idx, 5)
			if b <= 0 {
				t.Fatalf("recovery ballot %d not above coordinator ballot 0", b)
			}
			if seen[b] {
				t.Fatalf("duplicate recovery ballot %d", b)
			}
			seen[b] = true
		}
	}
}
