// Package commit holds the commit-protocol seam shared by the cluster
// client and the replica servers: the protocol selector, the outcome
// value transactions reach consensus on, and the per-transaction Paxos
// acceptor state machine of Gray & Lamport's Paxos Commit.
//
// The formulation is deliberately the simplest one that is non-blocking:
// ONE Paxos consensus instance per top-level transaction, on the complete
// outcome value (commit/abort plus the committed-subtransaction set and
// final version numbers the learn fan-out needs). The coordinator that ran
// the transaction owns ballot 0 and may skip Phase 1 entirely — no other
// proposer ever uses ballot 0, so a bare Phase-2a at ballot 0 is safe.
// Recovery proposers (replicas that find a dangling lock after the
// coordinator died) use higher ballots made unique per proposer by
// RecoveryBallot, run Phase 1 to learn any accepted value, and are bound
// by the usual Paxos rule: adopt the highest-ballot accepted value seen,
// and only when no acceptor in a majority accepted anything propose the
// default — abort, mirroring presumed abort.
package commit

import "fmt"

// Protocol selects how a top-level transaction's outcome is decided.
type Protocol int

const (
	// TwoPhase is the seed's coordinator-decides commit: the first
	// CommitTopReq send is the commit point, and a coordinator crash
	// around it leans on lease reaping (presumed abort after a TTL).
	TwoPhase Protocol = iota
	// PaxosCommit replicates the commit decision itself across the
	// acceptors co-located on the transaction's replica groups before
	// any CommitTopReq is sent, so no single failure leaves the outcome
	// in doubt: any majority of acceptors can reconstruct it.
	PaxosCommit
)

func (p Protocol) String() string {
	switch p {
	case TwoPhase:
		return "2pc"
	case PaxosCommit:
		return "paxos"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol maps the CLI spellings to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "2pc", "twophase", "2PC":
		return TwoPhase, nil
	case "paxos", "paxoscommit":
		return PaxosCommit, nil
	default:
		return TwoPhase, fmt.Errorf("commit: unknown protocol %q (want 2pc or paxos)", s)
	}
}

// Decision is the value a transaction's consensus instance decides: the
// full outcome, carrying everything a replica needs to apply it without
// asking anyone else. Subs and Final mirror CommitTopReq so a recovered
// decision can drive the same learn path the coordinator would have.
type Decision struct {
	Commit bool
	Subs   []string
	Final  map[string]int
}

// Acceptor is the per-transaction Paxos acceptor hard state. It lives in
// the replica server's state map, is mutated only through WAL-logged
// requests (persist-before-ack), and is carried whole inside snapshots —
// all fields are exported for gob.
type Acceptor struct {
	// Promised is the highest ballot this acceptor has promised. Zero is
	// meaningful (the coordinator's own ballot), so Prepared/Accepted
	// track whether anything happened at all.
	Promised int
	// AccBal is the ballot of the accepted value, -1 if none accepted.
	AccBal int
	// AccVal is the accepted outcome, meaningful iff AccBal >= 0.
	AccVal Decision
	// Cohort is the full acceptor set for this transaction's instance,
	// recorded at first contact so any replica can later run recovery
	// without knowing the transaction's footprint.
	Cohort []string
}

// NewAcceptor returns the initial acceptor state for a cohort.
func NewAcceptor(cohort []string) *Acceptor {
	return &Acceptor{Promised: -1, AccBal: -1, Cohort: cohort}
}

// Prepare handles a Phase-1a message at ballot bal. It reports whether the
// promise was granted and whether hard state changed (callers log only
// mutations).
func (a *Acceptor) Prepare(bal int) (ok, mutated bool) {
	if bal < a.Promised {
		return false, false
	}
	mutated = bal > a.Promised
	a.Promised = bal
	return true, mutated
}

// Accept handles a Phase-2a message at ballot bal with value val. Granting
// an accept also promises the ballot (the standard acceptor collapse).
func (a *Acceptor) Accept(bal int, val Decision) (ok, mutated bool) {
	if bal < a.Promised {
		return false, false
	}
	a.Promised = bal
	a.AccBal = bal
	a.AccVal = val
	return true, true
}

// Promise is one acceptor's Phase-1b answer, as collected by a recovery
// proposer.
type Promise struct {
	OK     bool
	AccBal int
	AccVal Decision
}

// Choose applies the Paxos value-selection rule to a set of promises: the
// value accepted at the highest ballot wins; with no accepted value
// anywhere, the default outcome is abort (presumed abort carried over).
func Choose(promises []Promise) Decision {
	best := -1
	val := Decision{Commit: false}
	for _, p := range promises {
		if p.OK && p.AccBal >= 0 && p.AccBal > best {
			best = p.AccBal
			val = p.AccVal
		}
	}
	return val
}

// Quorum is the majority threshold for a cohort of n acceptors: with
// n = 2F+1 the instance tolerates F acceptor failures.
func Quorum(n int) int { return n/2 + 1 }

// RecoveryBallot returns the attempt-th ballot for the recovery proposer
// at index idx among n possible proposers. Ballots are distinct across
// proposers and attempts and strictly greater than the coordinator's
// ballot 0, so a duel between concurrent recoverers resolves by the usual
// ballot ordering.
func RecoveryBallot(attempt, idx, n int) int {
	if n < 1 {
		n = 1
	}
	return 1 + idx + attempt*n
}
