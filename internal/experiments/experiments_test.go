package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFiguresContainBothTrees(t *testing.T) {
	var buf bytes.Buffer
	if err := Figures(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Figure 1", "Figure 2", "read-TM", "write-TM", "O(x)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("figures output missing %q", frag)
		}
	}
}

func TestModelChecksSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := ModelChecks(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"E1", "E2", "E3", "E4", "3/3 seeds"} {
		if !strings.Contains(out, frag) {
			t.Errorf("model checks output missing %q:\n%s", frag, out)
		}
	}
}

func TestAvailabilityTableShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Availability(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The classic shape: read-one/write-all at n=3, p=0.99 has read
	// availability 1.000 and write 0.970.
	if !strings.Contains(out, "1.000/0.970") {
		t.Errorf("expected the known rowa n=3 p=0.99 cell:\n%s", out)
	}
	if !strings.Contains(out, "majority") {
		t.Error("majority rows missing")
	}
}

func TestMessagesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	var buf bytes.Buffer
	if err := Messages(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "read-one/write-all") {
		t.Errorf("messages table malformed:\n%s", buf.String())
	}
}

func TestNestingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	var buf bytes.Buffer
	if err := Nesting(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "depth") {
		t.Errorf("nesting table malformed:\n%s", buf.String())
	}
}

func TestFaultsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	var buf bytes.Buffer
	if err := Faults(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"healthy", "no reconfig", "reconfigured"} {
		if !strings.Contains(out, frag) {
			t.Errorf("faults table missing %q:\n%s", frag, out)
		}
	}
}

func TestReconfigAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	var buf bytes.Buffer
	if err := ReconfigAblation(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "old write-quorum only") || !strings.Contains(out, "Gifford") {
		t.Errorf("ablation table malformed:\n%s", out)
	}
}

func TestLatencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	var buf bytes.Buffer
	if err := Latency(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "read p50") {
		t.Errorf("latency table malformed:\n%s", buf.String())
	}
}
