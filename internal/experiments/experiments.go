// Package experiments implements the evaluation harness: every figure the
// paper contains (F1, F2) and every systems experiment DESIGN.md defines
// (E1–E9, A1) can be regenerated through the functions here. cmd/qcbench
// is a thin flag wrapper; the root bench_test.go wraps the same functions in
// testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cc"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/reconfig"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ConfigKind names a quorum strategy under test.
type ConfigKind string

// The strategies swept by the experiments.
const (
	KindReadOneWriteAll ConfigKind = "read-one/write-all"
	KindMajority        ConfigKind = "majority"
	KindReadAllWriteOne ConfigKind = "read-all/write-one"
)

// makeConfig builds the named configuration over the DMs.
func makeConfig(kind ConfigKind, dms []string) quorum.Config {
	switch kind {
	case KindReadOneWriteAll:
		return quorum.ReadOneWriteAll(dms)
	case KindReadAllWriteOne:
		return quorum.ReadAllWriteOne(dms)
	default:
		return quorum.Majority(dms)
	}
}

func dmNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dm%d", i)
	}
	return out
}

// newCluster builds a fresh network + store for one experiment cell. The
// 40ms call timeout and the per-cell seed are defaults; options the caller
// passes come later in the list and therefore win.
func newCluster(n int, kind ConfigKind, seed int64, lat time.Duration, opts ...cluster.Option) (*cluster.Store, *sim.Network, error) {
	net := sim.NewNetwork(sim.Config{MinLatency: lat / 5, MaxLatency: lat, Seed: seed})
	dms := dmNames(n)
	all := append([]cluster.Option{
		cluster.WithCallTimeout(40 * time.Millisecond),
		cluster.WithSeed(seed),
	}, opts...)
	store, err := cluster.Open(net, []cluster.ItemSpec{{
		Name: "x", Initial: 0, DMs: dms, Config: makeConfig(kind, dms),
	}}, all...)
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return store, net, nil
}

// Figures prints the paper's Figure 1 (system B transaction tree) and
// Figure 2 (the corresponding system A tree) from the same scenario.
func Figures(w io.Writer) error {
	spec := core.PaperSpec()
	b, err := core.BuildB(spec)
	if err != nil {
		return err
	}
	a, err := core.BuildA(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1 — transaction tree of replicated serial system B:")
	fmt.Fprintln(w, b.Tree.Render())
	fmt.Fprintln(w, "Figure 2 — transaction tree of non-replicated serial system A:")
	fmt.Fprintln(w, a.Tree.Render())
	return nil
}

// ModelChecks runs the mechanized theorem checks (E1–E4) over the given
// number of random seeds each and reports pass counts.
func ModelChecks(w io.Writer, seeds int) error {
	fmt.Fprintf(w, "%-55s %s\n", "check", "result")

	// E1+E2: Lemma 8 invariant on every step and Theorem 10 simulation.
	pass := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		params := core.DefaultRandParams()
		params.RetryAccesses = true
		spec := core.RandomSpec(rng, params)
		b, err := core.BuildB(spec)
		if err != nil {
			return err
		}
		d := ioa.NewDriver(b.Sys, seed)
		d.Bias = abortBias(0.15)
		d.OnStep = b.Lemma8Checker()
		sched, _, err := d.Run(1_000_000)
		if err != nil {
			return fmt.Errorf("E1 seed %d: %w", seed, err)
		}
		if err := b.CheckTheorem10(sched); err != nil {
			return fmt.Errorf("E2 seed %d: %w", seed, err)
		}
		pass++
	}
	fmt.Fprintf(w, "%-55s %d/%d seeds\n", "E1 Lemma 8 invariant (every step, random scenarios)", pass, seeds)
	fmt.Fprintf(w, "%-55s %d/%d seeds\n", "E2 Theorem 10 simulation B -> A", pass, seeds)

	// E3: Theorem 11 over the concurrent system.
	passed, completed := 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		params := core.DefaultRandParams()
		params.RetryAccesses = true
		params.DeadlockAverse = true
		spec := core.RandomSpec(rng, params)
		spec.SequentialTMs = true
		c, err := cc.BuildC(spec)
		if err != nil {
			return err
		}
		d := ioa.NewDriver(c.Sys, seed+7777)
		d.Bias = abortBias(0.02)
		gamma, _, err := d.Run(1_000_000)
		if err != nil {
			return fmt.Errorf("E3 seed %d: %w", seed, err)
		}
		if !cc.Completed(c, gamma) {
			continue
		}
		completed++
		if err := cc.CheckTheorem11(c, gamma); err != nil {
			return fmt.Errorf("E3 seed %d: %w", seed, err)
		}
		passed++
	}
	fmt.Fprintf(w, "%-55s %d/%d completed runs\n", "E3 Theorem 11 (concurrent C, Moss locks, serialized)", passed, completed)

	// E4: reconfiguration invariants + simulation.
	pass = 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		cs := core.RandomSpec(rng, core.DefaultRandParams())
		spec := reconfig.Spec{Core: cs, NewConfigs: map[string][]quorum.Config{}, ReconfigsPerUser: 1}
		for _, it := range cs.Items {
			spec.NewConfigs[it.Name] = []quorum.Config{
				quorum.ReadOneWriteAll(it.DMs), quorum.Majority(it.DMs),
			}
		}
		b, err := reconfig.BuildB(spec)
		if err != nil {
			return err
		}
		d := ioa.NewDriver(b.Sys, seed+3333)
		d.Bias = abortBias(0.1)
		d.OnStep = b.Checker()
		sched, _, err := d.Run(1_000_000)
		if err != nil {
			return fmt.Errorf("E4 seed %d: %w", seed, err)
		}
		if err := b.CheckSimulation(sched); err != nil {
			return fmt.Errorf("E4 seed %d: %w", seed, err)
		}
		pass++
	}
	fmt.Fprintf(w, "%-55s %d/%d seeds\n", "E4 Reconfiguration invariant + simulation (Section 4)", pass, seeds)
	return nil
}

func abortBias(weight float64) func(ioa.Op) float64 {
	return func(op ioa.Op) float64 {
		if op.Kind == ioa.OpAbort {
			return weight
		}
		return 1
	}
}

// Messages (E5) measures network messages per committed transaction for a
// read-only and a write-only workload across strategies and replica counts.
func Messages(w io.Writer, txns int) error {
	fmt.Fprintf(w, "%-20s %3s  %14s  %14s\n", "configuration", "n", "read msgs/txn", "write msgs/txn")
	for _, kind := range []ConfigKind{KindReadOneWriteAll, KindMajority, KindReadAllWriteOne} {
		for _, n := range []int{3, 5, 7, 9} {
			var perOp [2]float64
			for i, readFrac := range []float64{1, 0} {
				store, net, err := newCluster(n, kind, int64(n)*100+int64(i), 200*time.Microsecond)
				if err != nil {
					return err
				}
				before := net.Stats().Sent
				res, err := workload.Run(context.Background(), store, workload.Profile{
					ReadFraction: readFrac, OpsPerTxn: 1, Items: []string{"x"}, Seed: int64(i),
				}, txns, 1)
				if err != nil {
					store.Close()
					net.Close()
					return err
				}
				perOp[i] = float64(net.Stats().Sent-before) / float64(max(res.Committed, 1))
				store.Close()
				net.Close()
			}
			fmt.Fprintf(w, "%-20s %3d  %14.1f  %14.1f\n", kind, n, perOp[0], perOp[1])
		}
	}
	return nil
}

// Availability (E6) prints exact read/write availability per strategy and
// replica count as the per-DM up-probability varies — the classic Gifford
// trade-off table.
func Availability(w io.Writer) error {
	ps := []float64{0.50, 0.80, 0.90, 0.95, 0.99}
	fmt.Fprintf(w, "%-20s %3s", "configuration", "n")
	for _, p := range ps {
		fmt.Fprintf(w, "  %12s", fmt.Sprintf("p=%.2f", p))
	}
	fmt.Fprintln(w)
	for _, kind := range []ConfigKind{KindReadOneWriteAll, KindMajority, KindReadAllWriteOne} {
		for _, n := range []int{3, 5, 7} {
			dms := dmNames(n)
			cfg := makeConfig(kind, dms)
			fmt.Fprintf(w, "%-20s %3d", kind, n)
			for _, p := range ps {
				a := quorum.ExactAvailability(cfg, quorum.UniformUp(dms, p))
				fmt.Fprintf(w, "  %5.3f/%5.3f", a.Read, a.Write)
			}
			fmt.Fprintln(w)
		}
	}
	// The tree quorum extension, on a complete ternary tree of 13.
	dms := dmNames(13)
	if tq, err := quorum.TreeQuorum(dms, 3); err == nil {
		fmt.Fprintf(w, "%-20s %3d", "tree-quorum (k=3)", 13)
		for _, p := range ps {
			a := quorum.ExactAvailability(tq, quorum.UniformUp(dms, p))
			fmt.Fprintf(w, "  %5.3f/%5.3f", a.Read, a.Write)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(cells are read-availability/write-availability)")
	return nil
}

// ReadRepair (E9) measures how quickly a restarted, stale replica catches
// up under a read-only workload, with and without read repair: the
// fraction of reads until the replica holds the current version.
func ReadRepair(w io.Writer, reads int) error {
	fmt.Fprintf(w, "%-14s  %18s  %12s\n", "read repair", "reads until caught up", "repairs sent")
	for _, enabled := range []bool{false, true} {
		net := sim.NewNetwork(sim.Config{MinLatency: 40 * time.Microsecond, MaxLatency: 400 * time.Microsecond, Seed: 55})
		dms := dmNames(3)
		store, err := cluster.Open(net, []cluster.ItemSpec{{
			Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms),
		}}, cluster.WithCallTimeout(20*time.Millisecond), cluster.WithReadRepair(enabled), cluster.WithSeed(55))
		if err != nil {
			net.Close()
			return err
		}
		ctx := context.Background()
		// Make dm2 stale.
		net.Crash("dm2")
		if err := store.Run(ctx, func(t *cluster.Txn) error { return t.Write(ctx, "x", 1) }); err != nil {
			store.Close()
			net.Close()
			return err
		}
		net.Restart("dm2")
		caught := -1
		for i := 1; i <= reads; i++ {
			if err := store.Run(ctx, func(t *cluster.Txn) error {
				_, err := t.Read(ctx, "x")
				return err
			}); err != nil {
				store.Close()
				net.Close()
				return err
			}
			time.Sleep(time.Millisecond) // let fire-and-forget repairs land
			if resp, err := store.Inspect(ctx, "dm2", "x"); err == nil && resp.VN >= 1 {
				caught = i
				break
			}
		}
		caughtStr := "never"
		if caught >= 0 {
			caughtStr = fmt.Sprintf("%d", caught)
		}
		label := "off"
		if enabled {
			label = "on"
		}
		fmt.Fprintf(w, "%-14s  %18s  %12d\n", label, caughtStr, store.Stats.Repairs.Value())
		store.Close()
		net.Close()
	}
	fmt.Fprintln(w, "(without repair the replica stays stale until the next direct write; reads stay correct either way via quorum intersection)")
	return nil
}

// Latency (E7a) measures read and write latency per strategy and replica
// count under a simulated-latency network.
func Latency(w io.Writer, txns int) error {
	fmt.Fprintf(w, "%-20s %3s  %12s  %12s\n", "configuration", "n", "read p50", "write p50")
	for _, kind := range []ConfigKind{KindReadOneWriteAll, KindMajority} {
		for _, n := range []int{3, 5, 7} {
			store, net, err := newCluster(n, kind, int64(n), 2*time.Millisecond)
			if err != nil {
				return err
			}
			_, err = workload.Run(context.Background(), store, workload.Profile{
				ReadFraction: 0.5, OpsPerTxn: 2, Items: []string{"x"}, Seed: 1,
			}, txns, 2)
			if err != nil {
				store.Close()
				net.Close()
				return err
			}
			r := store.Stats.ReadLatency.Snapshot()
			wr := store.Stats.WriteLatency.Snapshot()
			fmt.Fprintf(w, "%-20s %3d  %12v  %12v\n", kind, n, r.P50.Round(10*time.Microsecond), wr.P50.Round(10*time.Microsecond))
			store.Close()
			net.Close()
		}
	}
	return nil
}

// Nesting (E7b) measures throughput and tolerated subtransaction aborts as
// nesting depth grows.
func Nesting(w io.Writer, txns int) error {
	fmt.Fprintf(w, "%-6s  %12s  %10s  %10s\n", "depth", "txn/s", "committed", "tolerated")
	for _, depth := range []int{0, 1, 2, 3} {
		store, net, err := newCluster(5, KindMajority, int64(depth)+40, 200*time.Microsecond)
		if err != nil {
			return err
		}
		res, err := workload.Run(context.Background(), store, workload.Profile{
			ReadFraction: 0.5, OpsPerTxn: 2, NestDepth: depth, SubAbortProb: 0.2,
			Items: []string{"x"}, Seed: int64(depth),
		}, txns, 2)
		if err != nil {
			store.Close()
			net.Close()
			return err
		}
		fmt.Fprintf(w, "%-6d  %12.0f  %10d  %10d\n", depth, res.Throughput(), res.Committed, res.Tolerated)
		store.Close()
		net.Close()
	}
	return nil
}

// Faults (E8) crashes replicas mid-run and compares success and latency
// without and with reconfiguration around the failures.
func Faults(w io.Writer, txns int) error {
	fmt.Fprintf(w, "%-34s  %10s  %10s  %12s\n", "phase (n=5, majority)", "committed", "failed", "read p50")
	run := func(store *cluster.Store, label string, seed int64) error {
		before := store.Stats.ReadLatency.Count()
		res, err := workload.Run(context.Background(), store, workload.Profile{
			ReadFraction: 0.7, OpsPerTxn: 2, Items: []string{"x"}, Seed: seed,
		}, txns, 2)
		if err != nil && res.Committed == 0 {
			return err
		}
		snap := store.Stats.ReadLatency.SnapshotAfter(before)
		fmt.Fprintf(w, "%-34s  %10d  %10d  %12v\n", label, res.Committed, res.Failed, snap.P50.Round(10*time.Microsecond))
		return nil
	}
	store, net, err := newCluster(5, KindMajority, 99, 500*time.Microsecond,
		cluster.WithCallTimeout(8*time.Millisecond))
	if err != nil {
		return err
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	if err := run(store, "healthy", 1); err != nil {
		return err
	}
	net.Crash("dm3")
	net.Crash("dm4")
	if err := run(store, "2/5 crashed, no reconfig", 2); err != nil {
		return err
	}
	live := []string{"dm0", "dm1", "dm2"}
	if err := store.Reconfigure(context.Background(), "x", quorum.Majority(live)); err != nil {
		return fmt.Errorf("reconfigure: %w", err)
	}
	if err := run(store, "2/5 crashed, reconfigured to 3", 3); err != nil {
		return err
	}
	net.Restart("dm3")
	net.Restart("dm4")
	if err := store.Reconfigure(context.Background(), "x", quorum.Majority(dmNames(5))); err != nil {
		return fmt.Errorf("reconfigure back: %w", err)
	}
	if err := run(store, "restarted, reconfigured to 5", 4); err != nil {
		return err
	}
	return nil
}

// ReconfigAblation (A1) compares message cost of a reconfiguration writing
// the new configuration to an old write-quorum only (the paper's
// optimization) against Gifford's original both-quorums rule.
func ReconfigAblation(w io.Writer, rounds int) error {
	fmt.Fprintf(w, "%-28s  %16s\n", "rule", "msgs/reconfig")
	for _, both := range []bool{false, true} {
		store, net, err := newCluster(5, KindMajority, 7, 200*time.Microsecond,
			cluster.WithWriteConfigToBothQuorums(both))
		if err != nil {
			return err
		}
		dms := dmNames(5)
		before := net.Stats().Sent
		for i := 0; i < rounds; i++ {
			cfg := quorum.Majority(dms)
			if i%2 == 1 {
				cfg = quorum.ReadOneWriteAll(dms)
			}
			if err := store.Reconfigure(context.Background(), "x", cfg); err != nil {
				store.Close()
				net.Close()
				return err
			}
		}
		per := float64(net.Stats().Sent-before) / float64(rounds)
		label := "old write-quorum only"
		if both {
			label = "both quorums (Gifford)"
		}
		fmt.Fprintf(w, "%-28s  %16.1f\n", label, per)
		store.Close()
		net.Close()
	}
	return nil
}
