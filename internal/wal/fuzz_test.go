package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecord drives the frame codec with arbitrary bytes, interpreted two
// ways: as a raw byte stream handed to the decoder (must never panic, and
// must classify every failure as torn or corrupt), and as a payload to
// round-trip (encode → decode must be the identity, and any strict prefix
// of the encoding must read as torn, never as a different valid record).
func FuzzRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello, wal"))
	f.Add(AppendFrame(nil, []byte("framed")))
	f.Add(AppendFrame(AppendFrame(nil, []byte("a")), []byte("b")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary input: decode must return a valid frame or a typed
		// error — no panics, no silent successes on bad checksums.
		payload, n, err := DecodeFrame(data)
		switch {
		case err == nil:
			if n < frameHeaderSize || n > len(data) {
				t.Fatalf("frame length %d out of bounds (input %d)", n, len(data))
			}
			// Re-encoding what we decoded must reproduce the input frame
			// bit for bit; otherwise two distinct frames collide.
			if !bytes.Equal(AppendFrame(nil, payload), data[:n]) {
				t.Fatalf("decode/encode mismatch on %x", data[:n])
			}
		case errors.Is(err, ErrTorn), errors.Is(err, ErrCorrupt):
			// Classified failure: fine.
		default:
			t.Fatalf("unclassified decode error: %v", err)
		}

		// Treat the input as a payload: round-trip identity.
		frame := AppendFrame(nil, data)
		got, n2, err := DecodeFrame(frame)
		if err != nil || n2 != len(frame) || !bytes.Equal(got, data) {
			t.Fatalf("round-trip failed: n=%d err=%v", n2, err)
		}
		// Every strict prefix must read as torn — a truncated frame must
		// error, never decode as some other valid record. (Skip-and-
		// continue past a valid record is impossible when truncation is
		// always detected.)
		for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize, len(frame) - 1} {
			if cut >= len(frame) || cut < 0 {
				continue
			}
			if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrTorn) {
				t.Fatalf("prefix of %d/%d bytes decoded with err=%v, want ErrTorn", cut, len(frame), err)
			}
		}
	})
}

// FuzzSegment drives whole-segment recovery with arbitrary segment
// contents, interpreted two ways. As the FINAL segment, a damaged tail
// may be truncated away but recovery must return exactly the clean frame
// prefix — never a record from beyond the first damage. As a NON-FINAL
// segment (an intact segment follows it), any damage at all must fail the
// open as corruption: truncate-and-continue is only sound where a torn
// append could have happened. Either way, recovery must never panic. The
// corpus seeds include segments damaged by the seeded FaultFS.
func FuzzSegment(f *testing.F) {
	var clean []byte
	for i := 0; i < 5; i++ {
		clean = AppendFrame(clean, []byte(fmt.Sprintf("record-%d", i)))
	}
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	flip := append([]byte(nil), clean...)
	flip[9] ^= 1 // interior bit rot
	f.Add(flip)

	// FaultFS-generated damage: a real multi-segment log, one seeded bit
	// flip, and the damaged segment's bytes join the corpus.
	seedDir := f.TempDir()
	l, _, err := Open(seedDir, WithFsync(false), WithSegmentBytes(64))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.Append([]byte(fmt.Sprintf("faultfs-seed-%d", i))); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	ffs := NewFaultFS(0xD15C)
	if name, _, ok, err := ffs.CorruptSegmentFrame(seedDir); err == nil && ok {
		if b, err := os.ReadFile(filepath.Join(seedDir, name)); err == nil {
			f.Add(b)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// The clean frame prefix of data: what a correct recovery may
		// return, and one frame fewer than which it must never return.
		var prefix [][]byte
		damaged := false
		off := 0
		for off < len(data) {
			payload, n, err := DecodeFrame(data[off:])
			if err != nil {
				damaged = true
				break
			}
			prefix = append(prefix, append([]byte(nil), payload...))
			off += n
		}

		check := func(rec Recovery, wantLen int, ctx string) {
			t.Helper()
			if len(rec.Records) != wantLen {
				t.Fatalf("%s: recovered %d records, want %d", ctx, len(rec.Records), wantLen)
			}
			for i := 0; i < wantLen && i < len(prefix); i++ {
				if !bytes.Equal(rec.Records[i], prefix[i]) {
					t.Fatalf("%s: record %d = %q, want %q", ctx, i, rec.Records[i], prefix[i])
				}
			}
		}

		// Interpretation 1: data is the final (and only) segment.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, WithFsync(false))
		if err == nil {
			l.Close()
			check(rec, len(prefix), "final segment")
			if damaged && rec.TruncatedBytes == 0 {
				t.Fatal("final segment: damage neither truncated nor reported")
			}
		} else if !IsCorruption(err) {
			t.Fatalf("final segment: unclassified open error: %v", err)
		}

		// Interpretation 2: data is a non-final segment — an intact
		// successor follows, so nothing in data may be torn.
		dir2 := t.TempDir()
		sentinel := []byte("sentinel-after-damage")
		if err := os.WriteFile(filepath.Join(dir2, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, segName(1)), AppendFrame(nil, sentinel), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec2, err := Open(dir2, WithFsync(false))
		switch {
		case err == nil:
			l2.Close()
			if damaged {
				t.Fatal("non-final segment: open skipped past damage")
			}
			check(rec2, len(prefix)+1, "non-final segment")
			if !bytes.Equal(rec2.Records[len(prefix)], sentinel) {
				t.Fatalf("non-final segment: last record %q, want sentinel", rec2.Records[len(prefix)])
			}
		case IsCorruption(err):
			if !damaged {
				t.Fatalf("non-final segment: clean data rejected: %v", err)
			}
		default:
			t.Fatalf("non-final segment: unclassified open error: %v", err)
		}
	})
}
