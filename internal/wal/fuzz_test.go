package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRecord drives the frame codec with arbitrary bytes, interpreted two
// ways: as a raw byte stream handed to the decoder (must never panic, and
// must classify every failure as torn or corrupt), and as a payload to
// round-trip (encode → decode must be the identity, and any strict prefix
// of the encoding must read as torn, never as a different valid record).
func FuzzRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello, wal"))
	f.Add(AppendFrame(nil, []byte("framed")))
	f.Add(AppendFrame(AppendFrame(nil, []byte("a")), []byte("b")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary input: decode must return a valid frame or a typed
		// error — no panics, no silent successes on bad checksums.
		payload, n, err := DecodeFrame(data)
		switch {
		case err == nil:
			if n < frameHeaderSize || n > len(data) {
				t.Fatalf("frame length %d out of bounds (input %d)", n, len(data))
			}
			// Re-encoding what we decoded must reproduce the input frame
			// bit for bit; otherwise two distinct frames collide.
			if !bytes.Equal(AppendFrame(nil, payload), data[:n]) {
				t.Fatalf("decode/encode mismatch on %x", data[:n])
			}
		case errors.Is(err, ErrTorn), errors.Is(err, ErrCorrupt):
			// Classified failure: fine.
		default:
			t.Fatalf("unclassified decode error: %v", err)
		}

		// Treat the input as a payload: round-trip identity.
		frame := AppendFrame(nil, data)
		got, n2, err := DecodeFrame(frame)
		if err != nil || n2 != len(frame) || !bytes.Equal(got, data) {
			t.Fatalf("round-trip failed: n=%d err=%v", n2, err)
		}
		// Every strict prefix must read as torn — a truncated frame must
		// error, never decode as some other valid record. (Skip-and-
		// continue past a valid record is impossible when truncation is
		// always detected.)
		for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize, len(frame) - 1} {
			if cut >= len(frame) || cut < 0 {
				continue
			}
			if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrTorn) {
				t.Fatalf("prefix of %d/%d bytes decoded with err=%v, want ErrTorn", cut, len(frame), err)
			}
		}
	})
}
