package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrNoSpace is the injected append failure: the faultfs analogue of
// ENOSPC. The log treats it like any other write error — poison the log,
// fail the waiters, never acknowledge — and the replica layer answers by
// quarantining the DM.
var ErrNoSpace = errors.New("wal: no space left on device (injected)")

// FaultStats counts every fault a FaultFS injected. Chaos campaigns gate
// on bit-for-bit equality of these counters across seeded replays.
type FaultStats struct {
	// BitFlips counts frames damaged in place (segments and snapshots).
	BitFlips int
	// DroppedSegments counts whole segment files removed.
	DroppedSegments int
	// ShortReads counts reads that returned fewer bytes than the file holds.
	ShortReads int
	// FailedAppends counts appends refused with ErrNoSpace.
	FailedAppends int
	// Crashes counts CrashLoseUnsynced invocations; LostBytes is the
	// unsynced data they destroyed.
	Crashes   int
	LostBytes int64
}

// FaultFS is a fault-injecting FS for storage-fault campaigns. It passes
// everything through to the real filesystem while (a) tracking which byte
// prefix of every file it created has actually been fsynced, so a
// simulated power failure can destroy exactly the unsynced suffix, and
// (b) offering seeded at-rest damage — bit flips, dropped segments,
// snapshot corruption — and op-level faults (ENOSPC on append, short
// reads, per-op latency). Every random choice comes from one rand.Rand
// seeded at construction, so a campaign that replays the same seed
// injects the identical faults.
//
// The at-rest helpers deliberately refuse to damage the final segment:
// recovery cannot distinguish damage at the tail of the last segment from
// the torn tail of a crashed append, so it would truncate-and-continue —
// silently losing acknowledged records instead of detecting corruption.
// That blind spot is inherent to torn-tail recovery (see DESIGN.md §12);
// the campaigns therefore aim their bit flips where detection is possible
// and rely on crash-loss simulation to exercise the tail path.
type FaultFS struct {
	base FS

	mu          sync.Mutex
	rng         *rand.Rand
	stats       FaultStats
	latency     time.Duration
	failAppends map[string]bool // dir -> every append fails with ErrNoSpace
	shortReads  map[string]bool // dir -> non-final segment reads come back short
	written     map[string]int64
	synced      map[string]int64
}

// NewFaultFS returns a FaultFS over the real filesystem, drawing every
// fault from seed.
func NewFaultFS(seed int64) *FaultFS {
	return &FaultFS{
		base:        OSFS,
		rng:         rand.New(rand.NewSource(seed)),
		failAppends: make(map[string]bool),
		shortReads:  make(map[string]bool),
		written:     make(map[string]int64),
		synced:      make(map[string]int64),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// SetLatency adds a fixed delay to every filesystem operation.
func (f *FaultFS) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// FailAppends arms (or disarms) ENOSPC injection: while armed, every
// append to a log in dir fails with ErrNoSpace.
func (f *FaultFS) FailAppends(dir string, on bool) {
	f.mu.Lock()
	f.failAppends[filepath.Clean(dir)] = on
	f.mu.Unlock()
}

// ArmShortReads arms (or disarms) short reads: while armed, reading a
// non-final segment in dir returns a truncated prefix, which recovery
// must classify as corruption — never as a torn tail.
func (f *FaultFS) ArmShortReads(dir string, on bool) {
	f.mu.Lock()
	f.shortReads[filepath.Clean(dir)] = on
	f.mu.Unlock()
}

// pause sleeps the configured per-op latency.
func (f *FaultFS) pause() {
	f.mu.Lock()
	d := f.latency
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	f.pause()
	return f.base.MkdirAll(dir, perm)
}

func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error) {
	f.pause()
	return f.base.ReadDir(dir)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.pause()
	b, err := f.base.ReadFile(path)
	if err != nil {
		return b, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shortReads[filepath.Dir(path)] && len(b) > 0 && f.isNonFinalSegment(path) {
		f.stats.ShortReads++
		return b[:f.shortCut(b)], nil
	}
	return b, nil
}

// shortCut picks the length a short read of b stops at: inside a seeded
// frame, never on a frame boundary — a boundary cut would decode cleanly
// with records silently missing, which no reader can detect. Called with
// f.mu held.
func (f *FaultFS) shortCut(b []byte) int {
	type span struct{ off, size int }
	var frames []span
	off := 0
	for off < len(b) {
		_, n, err := DecodeFrame(b[off:])
		if err != nil {
			break
		}
		frames = append(frames, span{off, n})
		off += n
	}
	if len(frames) == 0 {
		return len(b) - 1 - f.rng.Intn(len(b)) // no clean frame to respect
	}
	fr := frames[f.rng.Intn(len(frames))]
	return fr.off + 1 + f.rng.Intn(fr.size-1)
}

// isNonFinalSegment reports whether path is a segment file other than the
// highest-indexed one in its directory — the only files short reads and
// at-rest damage may touch, because only there is damage detectable.
// Called with f.mu held.
func (f *FaultFS) isNonFinalSegment(path string) bool {
	idx, ok := parseIdx(filepath.Base(path), segPrefix, segSuffix)
	if !ok {
		return false
	}
	segs, err := f.listSegments(filepath.Dir(path))
	if err != nil || len(segs) == 0 {
		return false
	}
	return idx < segs[len(segs)-1]
}

// listSegments returns the sorted segment indexes present in dir.
func (f *FaultFS) listSegments(dir string) ([]uint64, error) {
	entries, err := f.base.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if idx, ok := parseIdx(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func (f *FaultFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	f.pause()
	if err := f.base.WriteFile(path, data, perm); err != nil {
		return err
	}
	f.mu.Lock()
	f.written[path] = int64(len(data))
	f.synced[path] = 0
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	f.pause()
	file, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.written[path] = 0
	f.synced[path] = 0
	f.mu.Unlock()
	return &faultFile{fs: f, path: path, f: file}, nil
}

func (f *FaultFS) Truncate(path string, size int64) error {
	f.pause()
	if err := f.base.Truncate(path, size); err != nil {
		return err
	}
	f.mu.Lock()
	if n, ok := f.written[path]; ok && n > size {
		f.written[path] = size
	}
	if n, ok := f.synced[path]; ok && n > size {
		f.synced[path] = size
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.pause()
	if err := f.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if n, ok := f.written[oldpath]; ok {
		f.written[newpath] = n
		delete(f.written, oldpath)
	}
	if n, ok := f.synced[oldpath]; ok {
		f.synced[newpath] = n
		delete(f.synced, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Remove(path string) error {
	f.pause()
	if err := f.base.Remove(path); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.written, path)
	delete(f.synced, path)
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) SyncFile(path string) error {
	f.pause()
	if err := f.base.SyncFile(path); err != nil {
		return err
	}
	f.mu.Lock()
	if n, ok := f.written[path]; ok {
		f.synced[path] = n
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) SyncDir(dir string) {
	f.pause()
	f.base.SyncDir(dir)
}

// faultFile is an open append handle with fault hooks.
type faultFile struct {
	fs   *FaultFS
	path string
	f    File
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.pause()
	w.fs.mu.Lock()
	if w.fs.failAppends[filepath.Dir(w.path)] {
		w.fs.stats.FailedAppends++
		w.fs.mu.Unlock()
		return 0, ErrNoSpace
	}
	w.fs.mu.Unlock()
	n, err := w.f.Write(p)
	w.fs.mu.Lock()
	w.fs.written[w.path] += int64(n)
	w.fs.mu.Unlock()
	return n, err
}

func (w *faultFile) Sync() error {
	w.fs.pause()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fs.mu.Lock()
	w.fs.synced[w.path] = w.fs.written[w.path]
	w.fs.mu.Unlock()
	return nil
}

func (w *faultFile) Close() error { return w.f.Close() }

// CrashLoseUnsynced simulates a power failure for the log in dir: every
// file the FaultFS wrote there is cut back to its last fsynced prefix,
// destroying data the OS had accepted but never promised durable. The cut
// lands at a seeded point inside the unsynced suffix, so the tail can be
// ragged — whole unacknowledged frames followed by a partial one, the
// multi-record torn write the single-record truncation in readSegment
// must still recover from. Call only while the log is closed (the crash
// precedes the restart). Returns the bytes destroyed.
func (f *FaultFS) CrashLoseUnsynced(dir string) (lost int64, err error) {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Crashes++
	for path, written := range f.written {
		if filepath.Dir(path) != dir {
			continue
		}
		keep := f.synced[path]
		if written <= keep {
			continue
		}
		// Keep a seeded prefix of the unsynced suffix: 0 models nothing
		// beyond the sync surviving, anything more models a ragged tear.
		keep += f.rng.Int63n(written - keep)
		if terr := f.base.Truncate(path, keep); terr != nil {
			return lost, terr
		}
		f.stats.LostBytes += written - keep
		lost += written - keep
		f.written[path] = keep
		if f.synced[path] > keep {
			f.synced[path] = keep
		}
	}
	return lost, nil
}

// CorruptSegmentFrame flips one seeded bit inside a complete frame of a
// non-final segment in dir — at-rest bit rot that recovery must detect as
// corruption, never skip, and never mistake for a torn tail. ok is false
// when dir holds no eligible frame (fewer than two segments, or no
// records outside the final one). Call only while the log is closed.
func (f *FaultFS) CorruptSegmentFrame(dir string) (file string, offset int64, ok bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	segs, err := f.listSegments(dir)
	if err != nil || len(segs) < 2 {
		return "", 0, false, err
	}
	// Collect every frame in every non-final segment.
	type frame struct {
		name      string
		off, size int
	}
	var frames []frame
	contents := make(map[string][]byte)
	for _, idx := range segs[:len(segs)-1] {
		name := segName(idx)
		b, rerr := f.base.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			return "", 0, false, rerr
		}
		contents[name] = b
		off := 0
		for off < len(b) {
			_, n, derr := DecodeFrame(b[off:])
			if derr != nil {
				break // already damaged; leave it be
			}
			frames = append(frames, frame{name: name, off: off, size: n})
			off += n
		}
	}
	if len(frames) == 0 {
		return "", 0, false, nil
	}
	target := frames[f.rng.Intn(len(frames))]
	b := contents[target.name]
	bit := f.rng.Intn(target.size * 8)
	b[target.off+bit/8] ^= 1 << (bit % 8)
	path := filepath.Join(dir, target.name)
	if werr := f.base.WriteFile(path, b, 0o644); werr != nil {
		return "", 0, false, werr
	}
	f.stats.BitFlips++
	return target.name, int64(target.off), true, nil
}

// DropSegment removes a seeded non-final segment in dir — a whole file of
// acknowledged records gone, which recovery must detect as a hole in the
// segment sequence. ok is false when dir has fewer than two segments.
// Call only while the log is closed.
func (f *FaultFS) DropSegment(dir string) (file string, ok bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	segs, err := f.listSegments(dir)
	if err != nil || len(segs) < 2 {
		return "", false, err
	}
	name := segName(segs[f.rng.Intn(len(segs)-1)])
	path := filepath.Join(dir, name)
	if rerr := f.base.Remove(path); rerr != nil {
		return "", false, rerr
	}
	delete(f.written, path)
	delete(f.synced, path)
	f.stats.DroppedSegments++
	return name, true, nil
}

// CorruptSnapshot flips one seeded bit in the newest snapshot in dir, so
// the next open fails its checksum. ok is false when dir holds no
// snapshot. Call only while the log is closed.
func (f *FaultFS) CorruptSnapshot(dir string) (file string, ok bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := f.base.ReadDir(dir)
	if err != nil {
		return "", false, err
	}
	var snaps []uint64
	for _, e := range entries {
		if idx, ok := parseIdx(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, idx)
		}
	}
	if len(snaps) == 0 {
		return "", false, nil
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	name := snapName(snaps[len(snaps)-1])
	path := filepath.Join(dir, name)
	b, err := f.base.ReadFile(path)
	if err != nil || len(b) == 0 {
		return "", false, err
	}
	bit := f.rng.Intn(len(b) * 8)
	b[bit/8] ^= 1 << (bit % 8)
	if werr := f.base.WriteFile(path, b, 0o644); werr != nil {
		return "", false, werr
	}
	f.stats.BitFlips++
	return name, true, nil
}
