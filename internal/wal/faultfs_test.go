package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// fillSegments appends enough records to spread the log over several
// segments, then closes it. Returns the appended payloads.
func fillSegments(t *testing.T, dir string, opts ...Option) [][]byte {
	t.Helper()
	l, _ := reopen(t, dir, append([]Option{WithFsync(false), WithSegmentBytes(128)}, opts...)...)
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("payload-%02d-abcdefghijklmnop", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestFaultFSBitFlipQuarantinesOpen(t *testing.T) {
	dir := t.TempDir()
	fillSegments(t, dir)
	ffs := NewFaultFS(1)
	file, off, ok, err := ffs.CorruptSegmentFrame(dir)
	if err != nil || !ok {
		t.Fatalf("CorruptSegmentFrame: ok=%v err=%v", ok, err)
	}
	_, _, err = Open(dir, WithFsync(false), WithFS(ffs))
	if !IsCorruption(err) {
		t.Fatalf("open after bit flip in %s@%d = %v, want CorruptionError", file, off, err)
	}
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
		t.Fatalf("corruption error %v does not unwrap to a frame sentinel", err)
	}
	if got := ffs.Stats().BitFlips; got != 1 {
		t.Fatalf("BitFlips = %d, want 1", got)
	}
}

func TestFaultFSDropSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	fillSegments(t, dir)
	ffs := NewFaultFS(2)
	file, ok, err := ffs.DropSegment(dir)
	if err != nil || !ok {
		t.Fatalf("DropSegment: ok=%v err=%v", ok, err)
	}
	_, _, err = Open(dir, WithFsync(false), WithFS(ffs))
	if !IsCorruption(err) {
		t.Fatalf("open after dropping %s = %v, want CorruptionError (segment gap)", file, err)
	}
}

func TestFaultFSCorruptSnapshotDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false))
	if err := l.Append([]byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	ffs := NewFaultFS(3)
	if _, ok, err := ffs.CorruptSnapshot(dir); err != nil || !ok {
		t.Fatalf("CorruptSnapshot: ok=%v err=%v", ok, err)
	}
	_, _, err := Open(dir, WithFsync(false), WithFS(ffs))
	if !IsCorruption(err) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt snapshot = %v, want CorruptionError/ErrCorrupt", err)
	}
}

func TestFaultFSShortReadDetected(t *testing.T) {
	dir := t.TempDir()
	fillSegments(t, dir)
	ffs := NewFaultFS(4)
	ffs.ArmShortReads(dir, true)
	_, _, err := Open(dir, WithFsync(false), WithFS(ffs))
	if !IsCorruption(err) {
		t.Fatalf("open under short reads = %v, want CorruptionError", err)
	}
	if ffs.Stats().ShortReads == 0 {
		t.Fatal("no short read recorded")
	}
	// Disarmed, the same directory is intact: short reads were a read-path
	// fault, not damage at rest.
	ffs.ArmShortReads(dir, false)
	l, rec := reopen(t, dir, WithFsync(false), WithFS(ffs))
	defer l.Close()
	if len(rec.Records) != 20 {
		t.Fatalf("recovered %d records after disarm, want 20", len(rec.Records))
	}
}

// TestFaultFSENOSPCFailsClosed is the fail-closed regression for injected
// write failures: the append must surface the typed error (never
// acknowledge), the log must poison itself, and a reopen after the
// condition clears must recover exactly the records acknowledged before
// the fault.
func TestFaultFSENOSPCFailsClosed(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(5)
	l, _ := reopen(t, dir, WithFsync(false), WithFS(ffs))
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ffs.FailAppends(dir, true)
	if err := l.Append([]byte("doomed")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append under ENOSPC = %v, want ErrNoSpace", err)
	}
	// The first failure is sticky: the log must not resume acknowledging.
	if err := l.Append([]byte("after")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append after poison = %v, want sticky ErrNoSpace", err)
	}
	if ffs.Stats().FailedAppends == 0 {
		t.Fatal("no failed append recorded")
	}
	l.Close()

	ffs.FailAppends(dir, false)
	l2, rec := reopen(t, dir, WithFsync(false), WithFS(ffs))
	defer l2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want the 5 acked ones", len(rec.Records))
	}
	for i, r := range rec.Records {
		if want := fmt.Sprintf("acked-%d", i); string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}

// TestFaultFSCrashLoseUnsynced checks the power-failure model: with fsync
// disabled nothing is ever promised durable, so a crash destroys a seeded
// suffix of the segment and recovery comes back with a clean prefix of
// the appended records — possibly after truncating a ragged torn tail.
func TestFaultFSCrashLoseUnsynced(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(6)
	l, _ := reopen(t, dir, WithFsync(false), WithFS(ffs))
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("unsynced-%d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	lost, err := ffs.CrashLoseUnsynced(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lost == 0 {
		t.Fatal("crash lost nothing despite fsync off")
	}
	l2, rec := reopen(t, dir, WithFsync(false), WithFS(ffs))
	defer l2.Close()
	if len(rec.Records) >= 10 {
		t.Fatalf("recovered all %d records after losing %d bytes", len(rec.Records), lost)
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, want[i]) {
			t.Fatalf("record %d = %q, want prefix of appended order", i, r)
		}
	}
	if st := ffs.Stats(); st.Crashes != 1 || st.LostBytes != lost {
		t.Fatalf("stats = %+v, want Crashes=1 LostBytes=%d", st, lost)
	}
}

// TestFaultFSCrashKeepsSynced is the other half of the crash model: what
// was fsynced survives. Per-record fsync mode syncs every append, so a
// crash destroys nothing acknowledged.
func TestFaultFSCrashKeepsSynced(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(7)
	l, _ := reopen(t, dir, WithFS(ffs), WithGroupCommit(false))
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("synced-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	lost, err := ffs.CrashLoseUnsynced(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("crash lost %d fsynced bytes", lost)
	}
	l2, rec := reopen(t, dir, WithFS(ffs))
	defer l2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want all 5 synced", len(rec.Records))
	}
}

// TestFaultFSSeededReplay: two FaultFS instances with the same seed over
// identical directories inject the identical faults — the property the
// chaos gate's bit-for-bit counter replay rests on.
func TestFaultFSSeededReplay(t *testing.T) {
	type outcome struct {
		file  string
		off   int64
		ok    bool
		stats FaultStats
	}
	run := func(seed int64) outcome {
		dir := t.TempDir()
		fillSegments(t, dir)
		ffs := NewFaultFS(seed)
		file, off, ok, err := ffs.CorruptSegmentFrame(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ffs.DropSegment(dir); err != nil {
			t.Fatal(err)
		}
		return outcome{file, off, ok, ffs.Stats()}
	}
	a, b := run(99), run(99)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
