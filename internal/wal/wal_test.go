package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// reopen closes nothing: it opens the directory fresh, as a restart would.
func reopen(t *testing.T, dir string, opts ...Option) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return l, rec
}

func TestAppendReopenReplaysInOrder(t *testing.T) {
	dir := t.TempDir()
	l, rec := reopen(t, dir, WithFsync(false))
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, rec := reopen(t, dir, WithFsync(false))
	defer l2.Close()
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, want[i])
		}
	}
}

func TestReopenWithoutCloseRecoversFlushed(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false))
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the "process" dies with the log open. Append returned only
	// after the flush, so everything must still be on disk.
	_, rec := reopen(t, dir, WithFsync(false))
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec.Records))
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, frameHeaderSize, frameHeaderSize + 3} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := reopen(t, dir, WithFsync(false))
			if err := l.Append([]byte("keep-me")); err != nil {
				t.Fatal(err)
			}
			if err := l.Append([]byte("tail-record")); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, segName(0))
			l.Close()
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the tail: drop the last cut bytes, simulating a crash
			// mid-append.
			if err := os.WriteFile(seg, b[:len(b)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l2, rec := reopen(t, dir, WithFsync(false))
			defer l2.Close()
			if len(rec.Records) != 1 || string(rec.Records[0]) != "keep-me" {
				t.Fatalf("recovered %q, want just keep-me", rec.Records)
			}
			if rec.TruncatedBytes == 0 {
				t.Error("truncation not reported")
			}
			// The torn bytes must be physically gone so the segment ends at
			// its last intact record.
			b2, _ := os.ReadFile(seg)
			if _, n, err := DecodeFrame(b2); err != nil || n != len(b2) {
				t.Errorf("segment not truncated to the last intact record: %d bytes left, err %v", len(b2), err)
			}
		})
	}
}

func TestInteriorCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false))
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	seg := filepath.Join(dir, segName(0))
	b, _ := os.ReadFile(seg)
	// Flip one payload byte of the FIRST record: the corrupt frame is
	// followed by an intact one, so open must refuse rather than skip.
	b[frameHeaderSize] ^= 0xFF
	os.WriteFile(seg, b, 0o644)
	if _, _, err := Open(dir, WithFsync(false)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open on interior corruption = %v, want ErrCorrupt", err)
	}
}

func TestRotationSpreadsSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false), WithSegmentBytes(256))
	for i := 0; i < 50; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Metrics().Rotations.Value(); got == 0 {
		t.Fatal("no rotations despite tiny segment size")
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v", segs)
	}
	_, rec := reopen(t, dir, WithFsync(false))
	if len(rec.Records) != 50 {
		t.Fatalf("recovered %d records across segments, want 50", len(rec.Records))
	}
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false), WithSegmentBytes(128))
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot([]byte("state-at-20")); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	_, rec := reopen(t, dir, WithFsync(false))
	if string(rec.Snapshot) != "state-at-20" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 3 || string(rec.Records[0]) != "post-0" {
		t.Fatalf("post-snapshot records = %q, want the 3 post records", rec.Records)
	}
	// Compaction must actually delete the pre-snapshot segments.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) > 3 {
		t.Errorf("compaction left %d segments: %v", len(segs), segs)
	}
}

func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	// Real fsync so flushes are slow enough to batch.
	l, _ := reopen(t, dir)
	defer l.Close()
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append([]byte(fmt.Sprintf("concurrent-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	appends := l.Metrics().Appends.Value()
	flushes := l.Metrics().Flushes.Value()
	if appends != n {
		t.Fatalf("appends = %d, want %d", appends, n)
	}
	if flushes >= appends {
		t.Errorf("group commit never batched: %d flushes for %d appends", flushes, appends)
	}
}

func TestPerRecordFsyncMode(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithGroupCommit(false), WithFsync(false))
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Metrics().Flushes.Value(); got != 10 {
		t.Errorf("per-record mode did %d flushes for 10 appends", got)
	}
	l.Close()
	_, rec := reopen(t, dir, WithFsync(false))
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}

func TestAppendCallbackOrder(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false))
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		err := l.AppendCallback([]byte{byte(i)}, func(err error) {
			if err != nil {
				t.Errorf("callback %d: %v", i, err)
			}
			mu.Lock()
			got = append(got, i)
			if len(got) == n {
				close(done)
			}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	<-done
	l.Close()
	for i, v := range got {
		if v != i {
			t.Fatalf("callback order broken at %d: got %v", i, got[:i+1])
		}
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false))
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.WriteSnapshot([]byte("s")); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close = %v", err)
	}
}

func TestCorruptSnapshotFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, dir, WithFsync(false))
	l.Append([]byte("r"))
	if err := l.WriteSnapshot([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	b, _ := os.ReadFile(snaps[0])
	b[len(b)-1] ^= 0xFF
	os.WriteFile(snaps[0], b, 0o644)
	if _, _, err := Open(dir, WithFsync(false)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt snapshot = %v, want ErrCorrupt", err)
	}
}
