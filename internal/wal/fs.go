package wal

import (
	"io"
	"os"
)

// FS is the filesystem seam the log runs on. Every byte the log reads or
// writes goes through one of these methods, so a test (or a chaos
// campaign) can substitute a fault-injecting implementation — see FaultFS
// — while production uses the operating system directly via OSFS. The
// interface is deliberately path-based and minimal: the log's access
// pattern is append-one-file-at-a-time plus whole-file reads at recovery,
// and a smaller seam is a smaller surface to inject faults through.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]os.DirEntry, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// WriteFile writes the whole file (snapshot temp files).
	WriteFile(path string, data []byte, perm os.FileMode) error
	// OpenAppend opens path for exclusive append-only creation — the open
	// segment. The log owns the returned handle until Close.
	OpenAppend(path string) (File, error)
	// Truncate cuts path to size bytes (torn-tail recovery).
	Truncate(path string, size int64) error
	// Rename atomically moves a file (snapshot publication).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (compaction).
	Remove(path string) error
	// SyncFile fsyncs path by opening it read-write.
	SyncFile(path string) error
	// SyncDir fsyncs a directory so renames within it are durable; best
	// effort, as not every filesystem supports it.
	SyncDir(dir string)
}

// File is an open append-only segment handle.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	// Close closes the handle.
	Close() error
}

// OSFS is the production filesystem: direct OS calls, no indirection.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (osFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}
func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
}
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error               { return os.Remove(path) }
func (osFS) SyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
func (osFS) SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
