package wal

import (
	"bufio"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: log closed")

// Segment and snapshot file names carry the segment index they begin at:
// snap-N covers everything before segment N, so recovery loads the newest
// snapshot and replays segments >= N.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(idx uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix) }
func snapName(idx uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, idx, snapSuffix) }

func parseIdx(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return idx, err == nil
}

// options is the resolved configuration.
type options struct {
	segmentBytes int64
	fsync        bool
	groupCommit  bool
	fs           FS
}

// Option configures a Log at Open.
type Option func(*options)

// WithSegmentBytes sets the rotation threshold: a segment that grows past
// it is closed and a fresh one started. Default 4 MiB.
func WithSegmentBytes(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.segmentBytes = n
		}
	}
}

// WithFsync controls whether flushes reach stable storage (fsync) or stop
// at the OS (write only). Default on. Simulated-crash harnesses turn it
// off: their "crashes" lose process memory, not the page cache, and the
// recovery logic under test is identical.
func WithFsync(on bool) Option {
	return func(o *options) { o.fsync = on }
}

// WithGroupCommit controls fsync batching. On (the default), a flush
// leader syncs every record framed since the last flush and concurrent
// appenders piggyback on its fsync. Off, every append flushes and syncs by
// itself, serialized, before returning — the per-record-fsync baseline the
// E12 experiment measures group commit against.
func WithGroupCommit(on bool) Option {
	return func(o *options) { o.groupCommit = on }
}

// WithFS substitutes the filesystem the log runs on. Default OSFS; fault
// campaigns pass a FaultFS to inject seeded storage faults.
func WithFS(fs FS) Option {
	return func(o *options) {
		if fs != nil {
			o.fs = fs
		}
	}
}

// Metrics exposes the log's operational counters.
type Metrics struct {
	// Appends counts records appended; Flushes counts flush+fsync rounds.
	// Their ratio is the realized group-commit batch size.
	Appends metrics.Counter
	Flushes metrics.Counter
	// BatchSize samples the number of records each flush made durable.
	BatchSize metrics.IntHistogram
	// FlushLatency times each flush+fsync round.
	FlushLatency metrics.Histogram
	// Rotations and Snapshots count segment rolls and snapshot compactions.
	Rotations metrics.Counter
	Snapshots metrics.Counter
}

// Recovery reports what Open rebuilt from disk.
type Recovery struct {
	// Snapshot is the newest durable snapshot payload, nil if none.
	Snapshot []byte
	// Records holds every record appended after the snapshot, in order.
	Records [][]byte
	// TruncatedBytes is the torn tail dropped from the last segment.
	TruncatedBytes int64
}

// A Log is an open write-ahead log. Append and AppendCallback are safe for
// concurrent use; WriteSnapshot must not run concurrently with appends
// whose records the snapshot state does not reflect (single-writer
// discipline — the replica layer's actor loop satisfies it trivially).
type Log struct {
	dir  string
	opts options
	m    Metrics

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when a flush round ends or the leader retires
	f        File
	bw       *bufio.Writer
	segIdx   uint64
	segBytes int64
	appended uint64 // records framed into the buffer
	flushed  uint64 // records made durable
	waiters  []waiter
	flushing bool  // a group-commit leader is active
	err      error // sticky: first flush failure poisons the log
	closed   bool
}

// waiter is one append awaiting durability.
type waiter struct {
	seq uint64
	fn  func(error)
}

// Open opens (creating if needed) the log in dir, recovers its durable
// state, and starts a fresh segment for new appends. The returned Recovery
// carries the newest snapshot and the records appended after it; a torn
// record at the very tail of the last segment is truncated away, while
// corruption anywhere else fails the open — a log must never silently skip
// past a valid record.
func Open(dir string, opt ...Option) (*Log, Recovery, error) {
	o := options{segmentBytes: 4 << 20, fsync: true, groupCommit: true, fs: OSFS}
	for _, fn := range opt {
		fn(&o)
	}
	if err := o.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	rec, nextIdx, err := scan(dir, o.fs)
	if err != nil {
		return nil, Recovery{}, err
	}
	l := &Log{dir: dir, opts: o, segIdx: nextIdx}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegmentLocked(nextIdx); err != nil {
		return nil, Recovery{}, err
	}
	return l, rec, nil
}

// scan reads dir and rebuilds the durable state: the newest valid
// snapshot, then every record in the segments at or after it. It returns
// the next free segment index. Damage beyond a torn tail — an unreadable
// or checksum-bad snapshot, a hole in the segment sequence, corruption
// inside a segment — comes back as a *CorruptionError.
func scan(dir string, fs FS) (Recovery, uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return Recovery{}, 0, err
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if idx, ok := parseIdx(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, idx)
		}
		if idx, ok := parseIdx(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	var rec Recovery
	var from uint64
	if len(snaps) > 0 {
		// Snapshots are written to a temp name and renamed, so any .snap
		// present is complete; its checksum still guards bit rot.
		sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
		idx := snaps[len(snaps)-1]
		b, err := fs.ReadFile(filepath.Join(dir, snapName(idx)))
		if err != nil {
			return Recovery{}, 0, &CorruptionError{Dir: dir, File: snapName(idx), Offset: -1, Err: err}
		}
		payload, n, err := DecodeFrame(b)
		if err != nil || n != len(b) {
			return Recovery{}, 0, &CorruptionError{Dir: dir, File: snapName(idx), Offset: -1, Err: ErrCorrupt}
		}
		rec.Snapshot = append([]byte(nil), payload...)
		from = idx
	}

	// Segments the snapshot does not supersede must form an unbroken
	// sequence from the snapshot index (from 0 on a never-snapshotted
	// log): rotation creates segment N before snap-N is published and
	// compaction only ever removes files below the newest snapshot, so a
	// hole means a whole file of acknowledged records vanished.
	nextIdx := from
	expect := from
	for i, idx := range segs {
		if idx >= nextIdx {
			nextIdx = idx + 1
		}
		if idx < from {
			continue // superseded by the snapshot; compaction leftover
		}
		if idx != expect {
			return Recovery{}, 0, &CorruptionError{Dir: dir, File: segName(expect), Offset: -1,
				Err: fmt.Errorf("segment missing: %w", ErrCorrupt)}
		}
		expect = idx + 1
		last := i == len(segs)-1
		records, truncated, err := readSegment(fs, filepath.Join(dir, segName(idx)), last)
		if err != nil {
			return Recovery{}, 0, err
		}
		rec.Records = append(rec.Records, records...)
		rec.TruncatedBytes += truncated
	}
	return rec, nextIdx, nil
}

// readSegment reads every record of one segment file. On the last segment
// a frame cut short by the end of the file — the torn tail of a crashed
// append — is truncated away; a corrupt frame with intact data after it is
// an error everywhere.
func readSegment(fs FS, path string, last bool) (records [][]byte, truncated int64, err error) {
	b, err := fs.ReadFile(path)
	if err != nil {
		return nil, 0, &CorruptionError{Dir: filepath.Dir(path), File: filepath.Base(path), Offset: -1, Err: err}
	}
	off := 0
	for off < len(b) {
		payload, n, err := DecodeFrame(b[off:])
		if err == nil {
			records = append(records, append([]byte(nil), payload...))
			off += n
			continue
		}
		tornTail := err == ErrTorn
		if !tornTail {
			// A checksum mismatch on a frame that reaches exactly to the end
			// of the file is a torn overwrite; one followed by more bytes is
			// interior corruption that must not be skipped.
			if frameLen, ok := frameExtent(b[off:]); ok && off+frameLen >= len(b) {
				tornTail = true
			}
		}
		if last && tornTail {
			truncated = int64(len(b) - off)
			if terr := fs.Truncate(path, int64(off)); terr != nil {
				return nil, 0, terr
			}
			return records, truncated, nil
		}
		return nil, 0, &CorruptionError{Dir: filepath.Dir(path), File: filepath.Base(path), Offset: int64(off), Err: err}
	}
	return records, 0, nil
}

// frameExtent reports the byte extent the frame at the head of b claims,
// without validating its checksum. ok is false when the header itself is
// short or claims an impossible length.
func frameExtent(b []byte) (frameLen int, ok bool) {
	if len(b) < frameHeaderSize {
		return len(b), false
	}
	size := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if size > MaxRecord {
		return frameHeaderSize, false
	}
	return frameHeaderSize + int(size), true
}

// openSegmentLocked starts segment idx as the append target.
func (l *Log) openSegmentLocked(idx uint64) error {
	f, err := l.opts.fs.OpenAppend(filepath.Join(l.dir, segName(idx)))
	if err != nil {
		return err
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segIdx = idx
	l.segBytes = 0
	return nil
}

// Metrics returns the log's counters.
func (l *Log) Metrics() *Metrics { return &l.m }

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Append frames payload into the log and returns once it is durable
// (flushed, and fsynced unless WithFsync(false)).
func (l *Log) Append(payload []byte) error {
	ch := make(chan error, 1)
	if err := l.AppendCallback(payload, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// AppendCallback frames payload into the log and returns immediately; fn
// is invoked with the flush outcome once the record is durable, possibly
// on another goroutine and possibly with internal locks held — it must be
// quick and must not call back into the log. Under group commit, callbacks
// fire in append order. The fast return is what lets a single-threaded
// replica actor keep absorbing requests while a flush is in flight — its
// acks ride the next group commit.
func (l *Log) AppendCallback(payload []byte, fn func(error)) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	frame := AppendFrame(nil, payload)
	if _, err := l.bw.Write(frame); err != nil {
		l.poisonLocked(err)
		l.mu.Unlock()
		return err
	}
	l.appended++
	l.segBytes += int64(len(frame))
	l.m.Appends.Inc()
	if fn != nil {
		l.waiters = append(l.waiters, waiter{seq: l.appended, fn: fn})
	}
	if !l.opts.groupCommit {
		// Per-record durability: flush and sync right here, fully
		// serialized under the lock, so every append pays its own disk
		// round trip — the baseline group commit exists to beat.
		err := l.flushRoundLocked(false)
		l.mu.Unlock()
		return err
	}
	if !l.flushing {
		l.flushing = true
		go l.flushLoop()
	}
	l.mu.Unlock()
	return nil
}

// flushLoop is the group-commit leader: it flushes everything framed so
// far, fires the covered callbacks, and repeats until no new records
// arrived during the flush, then retires.
func (l *Log) flushLoop() {
	l.mu.Lock()
	for l.err == nil && !l.closed && l.appended > l.flushed {
		if err := l.flushRoundLocked(true); err != nil {
			break
		}
	}
	l.flushing = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// flushRoundLocked makes every record framed so far durable and fires the
// callbacks it covers. Called with l.mu held and returns with it held.
// When unlockDuringSync is set (the group-commit leader), the fsync runs
// without the lock so concurrent appenders keep framing into the next
// batch; only one such caller may be active at a time.
func (l *Log) flushRoundLocked(unlockDuringSync bool) error {
	covered := l.appended
	batch := covered - l.flushed
	err := l.bw.Flush()
	f := l.f
	split := 0
	for split < len(l.waiters) && l.waiters[split].seq <= covered {
		split++
	}
	ws := l.waiters[:split:split]
	l.waiters = l.waiters[split:]

	if unlockDuringSync {
		l.mu.Unlock()
	}
	start := time.Now()
	if err == nil && l.opts.fsync {
		err = f.Sync()
	}
	l.m.FlushLatency.ObserveSince(start)
	l.m.Flushes.Inc()
	l.m.BatchSize.Observe(int64(batch))
	for _, w := range ws {
		w.fn(err)
	}
	if unlockDuringSync {
		l.mu.Lock()
	}

	if err != nil {
		l.poisonLocked(err)
		return err
	}
	l.flushed = covered
	l.cond.Broadcast()
	// Rotate only at a clean point: every framed record flushed, so the
	// buffered writer is empty and swapping files cannot strand bytes.
	if l.segBytes >= l.opts.segmentBytes && l.appended == l.flushed {
		return l.rotateLocked()
	}
	return nil
}

// poisonLocked latches the first I/O failure and fails every waiter: a log
// that cannot make records durable must stop acknowledging them.
func (l *Log) poisonLocked(err error) {
	if l.err == nil {
		l.err = err
	}
	for _, w := range l.waiters {
		w.fn(l.err)
	}
	l.waiters = nil
	l.cond.Broadcast()
}

// rotateLocked closes the current (fully flushed) segment and starts the
// next.
func (l *Log) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		l.poisonLocked(err)
		return err
	}
	l.m.Rotations.Inc()
	if err := l.openSegmentLocked(l.segIdx + 1); err != nil {
		l.poisonLocked(err)
		return err
	}
	return nil
}

// WriteSnapshot durably records state as a snapshot superseding every
// record appended so far, then deletes the segments and snapshots it
// obsoletes — the log's compaction. state must reflect every appended
// record (see the Log doc comment on the single-writer discipline).
func (l *Log) WriteSnapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	// Seal the current segment: flush, sync, settle the waiters this
	// covers, and rotate, so everything appended so far lives in segments
	// below the new one — exactly what the snapshot supersedes.
	if err := l.flushRoundLocked(false); err != nil {
		return err
	}
	if err := l.rotateLocked(); err != nil {
		return err
	}

	idx := l.segIdx // the snapshot covers segments < idx
	fs := l.opts.fs
	tmp := filepath.Join(l.dir, snapName(idx)+".tmp")
	if err := fs.WriteFile(tmp, AppendFrame(nil, state), 0o644); err != nil {
		return err
	}
	if l.opts.fsync {
		if err := fs.SyncFile(tmp); err != nil {
			return err
		}
	}
	if err := fs.Rename(tmp, filepath.Join(l.dir, snapName(idx))); err != nil {
		return err
	}
	if l.opts.fsync {
		fs.SyncDir(l.dir)
	}
	l.m.Snapshots.Inc()

	// Compaction: everything before the snapshot is dead weight.
	entries, err := fs.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if i, ok := parseIdx(e.Name(), segPrefix, segSuffix); ok && i < idx {
			fs.Remove(filepath.Join(l.dir, e.Name()))
		}
		if i, ok := parseIdx(e.Name(), snapPrefix, snapSuffix); ok && i < idx {
			fs.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	return nil
}

// Sync blocks until every record appended before the call is durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appended
	for l.flushed < target {
		if l.closed {
			return ErrClosed
		}
		if l.err != nil {
			return l.err
		}
		if !l.flushing {
			l.flushing = true
			go l.flushLoop()
		}
		l.cond.Wait()
	}
	return l.err
}

// Close flushes, syncs and closes the log. Pending callbacks fire before
// Close returns.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.flushing {
		l.cond.Wait()
	}
	l.closed = true // rejects new appends before the final flush below
	var err error
	if l.err == nil && l.appended > l.flushed {
		err = l.flushRoundLocked(false)
	}
	if l.err != nil && err == nil {
		err = l.err
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
