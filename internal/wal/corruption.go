package wal

import (
	"errors"
	"fmt"
)

// CorruptionError reports unrecoverable damage found while opening a log:
// a CRC mismatch with intact data after it, a torn frame in a non-final
// segment, a gap in the segment sequence (a whole segment missing), or an
// unreadable snapshot. It is distinct from a torn tail — the signature of
// a crash mid-append, which recovery truncates away — because corruption
// means acknowledged records may be missing or altered: the local log can
// no longer be trusted, and the replica's only safe recovery is a rebuild
// from its quorum peers (cluster.RebuildReplica). Callers classify with
// IsCorruption.
type CorruptionError struct {
	// Dir is the log directory.
	Dir string
	// File is the damaged file's base name; empty for structural damage
	// (a missing segment) not attributable to one file.
	File string
	// Offset is the byte offset of the damage within File, -1 when not
	// applicable.
	Offset int64
	// Err is the underlying classification: ErrCorrupt, ErrTorn (torn
	// frame in a non-final segment), or the I/O error that exposed the
	// damage.
	Err error
}

func (e *CorruptionError) Error() string {
	switch {
	case e.File == "":
		return fmt.Sprintf("wal: %s: %v", e.Dir, e.Err)
	case e.Offset < 0:
		return fmt.Sprintf("wal: %s/%s: %v", e.Dir, e.File, e.Err)
	default:
		return fmt.Sprintf("wal: %s/%s at offset %d: %v", e.Dir, e.File, e.Offset, e.Err)
	}
}

func (e *CorruptionError) Unwrap() error { return e.Err }

// IsCorruption reports whether err means the log's durable state is
// damaged beyond the torn-tail recovery Open performs itself — the
// condition that quarantines a replica and routes it to peer rebuild.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}
