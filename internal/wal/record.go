// Package wal is a segmented, append-only write-ahead log. Records are
// CRC-framed; opening a log replays the newest durable snapshot plus every
// record appended after it, truncating a torn tail (a record interrupted
// by a crash mid-write) but refusing corruption anywhere else. Appends are
// made durable by group commit: concurrent appenders share fsyncs, with a
// leader flushing the whole batch while followers wait, so throughput
// scales with concurrency instead of paying one disk sync per record.
//
// The log stores opaque byte payloads; callers bring their own record
// encoding. The replica layer (internal/cluster) logs its state-mutating
// RPCs before acknowledging them and replays them through the same state
// machine on restart, which is what turns a simulated crash into the
// paper's resilient-object assumption instead of a silent state wipe.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout: a fixed header of two little-endian uint32s — payload
// length, then CRC-32C of the payload — followed by the payload bytes.
const (
	frameHeaderSize = 8
	// MaxRecord bounds a single record's payload. A torn header whose
	// garbage length field exceeds it is detected as corruption instead of
	// being chased past the end of the file.
	MaxRecord = 1 << 26 // 64 MiB
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a frame whose contents contradict its checksum or
// whose header is impossible. A corrupt frame in the interior of a log —
// with intact records after it — is unrecoverable by truncation and fails
// the open.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrTorn reports a frame cut short by the end of input: the signature of
// a crash mid-append. Torn frames are recoverable — Open truncates the
// tail at the last intact record.
var ErrTorn = errors.New("wal: torn record")

// AppendFrame appends the framed encoding of payload to dst and returns
// the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes the first frame in b, returning the payload and the
// number of bytes the frame occupies. A short buffer yields ErrTorn; an
// impossible length or checksum mismatch yields ErrCorrupt. The returned
// payload aliases b.
func DecodeFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, ErrTorn
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	if size > MaxRecord {
		return nil, 0, fmt.Errorf("%w: length %d exceeds MaxRecord", ErrCorrupt, size)
	}
	end := frameHeaderSize + int(size)
	if len(b) < end {
		return nil, 0, ErrTorn
	}
	payload = b[frameHeaderSize:end]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, ErrCorrupt
	}
	return payload, end, nil
}
