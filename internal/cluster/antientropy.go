package cluster

import (
	"context"
	"time"
)

// Anti-entropy repair: where read repair waits for a lucky quorum read to
// notice a stale replica, the sweeper walks every replica of every item
// during idle ticks and pushes the observed maximum committed version and
// configuration generation to the laggards. Long partitions heal without
// traffic; and because the DMs treat inspections as an orphan sweep, idle
// items with expired-lease locks get reaped too.

// SweepOnce runs one synchronous anti-entropy pass: inspect every replica
// of every item (sorted order — deterministic harnesses call this behind a
// quiesce barrier), compute the maximum committed (vn, val) and (gen, cfg)
// among the respondents, and fire-and-forget a RepairReq to every replica
// that is behind. The DM-side guards (strictly newer, no writer in flight)
// make a stale or duplicated repair harmless. Returns the number of repair
// messages sent.
func (s *Store) SweepOnce(ctx context.Context) (int, error) {
	repairs := 0
	s.Stats.AntiEntropySweeps.Inc()
	for _, it := range s.Items() {
		if err := ctx.Err(); err != nil {
			return repairs, err
		}
		type replicaState struct {
			dm   string
			resp InspectResp
		}
		var got []replicaState
		for _, dm := range it.DMs {
			resp, err := s.Inspect(ctx, dm, it.Name)
			if barrier := s.Hooks.SweepBarrier; barrier != nil {
				barrier()
			}
			if err != nil {
				if ctx.Err() != nil {
					return repairs, ctx.Err()
				}
				continue // crashed or partitioned; next sweep catches it up
			}
			got = append(got, replicaState{dm: dm, resp: resp})
		}
		if len(got) == 0 {
			continue
		}
		var maxVN, maxGen int
		var bestVal any
		var bestCfg = it.Config
		for _, g := range got {
			if g.resp.VN > maxVN {
				maxVN, bestVal = g.resp.VN, g.resp.Val
			}
			if g.resp.Gen > maxGen {
				maxGen, bestCfg = g.resp.Gen, g.resp.Cfg
			}
		}
		for _, g := range got {
			req := RepairReq{Item: it.Name}
			if g.resp.VN < maxVN {
				req.VN, req.Val = maxVN, bestVal
			}
			if g.resp.Gen < maxGen {
				req.Gen, req.Cfg = maxGen, bestCfg.Clone()
			}
			if req.VN == 0 && req.Gen == 0 {
				continue
			}
			s.Stats.AntiEntropyRepairs.Inc()
			repairs++
			s.client.Notify(g.dm, req)
		}
		if maxGen > 0 {
			s.observeConfig(it.Name, maxGen, bestCfg)
		}
		// Freshness-hint grant (WithReadLease): only when EVERY replica of
		// the item responded and they are unanimous — same committed
		// (vn, gen), zero locks, zero intentions — is the observed maximum
		// provably the cluster maximum (a write in flight anywhere would
		// show as a lock or intention at its write quorum). Respondent-only
		// maxima are NOT enough: an unreachable replica may hold a newer
		// commit, which is exactly why sweep repairs never grant.
		if s.opts.readLease && len(got) == len(it.DMs) {
			unanimous := true
			for _, g := range got {
				if g.resp.VN != maxVN || g.resp.Gen != maxGen || g.resp.Locks != 0 || g.resp.Intents != 0 {
					unanimous = false
					break
				}
			}
			if unanimous {
				for _, g := range got {
					s.client.Notify(g.dm, HintGrantReq{Item: it.Name, VN: maxVN, Gen: maxGen})
				}
				s.Stats.HintGrants.Inc()
				s.noteHintTarget(it.Name, got[0].dm, maxGen)
			}
		}
	}
	return repairs, nil
}

// sweepAndCount runs one background sweep, counting rather than dropping
// its error — the loop has no caller to return it to, and a silent drop
// hides a sweeper that is failing every pass.
func (s *Store) sweepAndCount(ctx context.Context) {
	if _, err := s.SweepOnce(ctx); err != nil {
		s.Stats.AntiEntropySweepErrors.Inc()
	}
}

// antiEntropyLoop runs SweepOnce every WithAntiEntropy interval until the
// store closes.
func (s *Store) antiEntropyLoop() {
	defer s.bg.Done()
	tick := time.NewTicker(s.opts.antiEntropy)
	defer tick.Stop()
	for {
		select {
		case <-s.stopBg:
			return
		case <-tick.C:
			s.sweepAndCount(context.Background())
		}
	}
}
