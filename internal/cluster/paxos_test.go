package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/commit"
	"repro/internal/sim"
)

func openPaxos(t *testing.T, seed int64, opts ...Option) (*sim.Network, *Store, []string) {
	t.Helper()
	return openDurable(t, seed, append([]Option{WithCommitProtocol(commit.PaxosCommit)}, opts...)...)
}

// probeAll snapshots every DM's resolution/acceptor view of txn.
func probeAll(t *testing.T, store *Store, dms []string, txn TxnID) map[string]ResolutionProbeResp {
	t.Helper()
	ctx := context.Background()
	out := map[string]ResolutionProbeResp{}
	for _, dm := range dms {
		resp, err := store.ResolutionProbe(ctx, dm, txn)
		if err != nil {
			t.Fatalf("probe %s: %v", dm, err)
		}
		out[dm] = resp
	}
	return out
}

// TestPaxosCleanPathCommits is the smoke test: under PaxosCommit the
// ordinary Run path decides through the acceptors (PaxosCommits advances)
// and the committed values read back exactly as under TwoPhase.
func TestPaxosCleanPathCommits(t *testing.T) {
	net, store, _ := openPaxos(t, 91)
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 1; i <= 5; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 5 {
			t.Errorf("read %d, want 5", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats.PaxosCommits.Value(); got != 5 {
		t.Errorf("%d paxos commits, want 5", got)
	}
	if got := store.Stats.PaxosAccepts.Value(); got < 5*2 {
		t.Errorf("%d ballot-0 accepts, want at least a majority per txn", got)
	}
}

// TestAcceptorStateSurvivesAmnesia is the satellite-3 durability table: a
// coordinator dies mid-Phase-2a having delivered ballot-0 accepts to a
// prefix of the cohort, then every DM suffers an amnesia crash. The WAL
// replay must rebuild each acceptor to the identical promised/accepted
// state — including the DMs that never heard the 2a and must come back
// with no acceptor at all (not a fabricated one).
func TestAcceptorStateSurvivesAmnesia(t *testing.T) {
	cases := []struct {
		name        string
		deliver     int
		wantDecided bool
	}{
		{"no-accepts", 0, false},
		{"minority-accepted", 1, false},
		{"majority-accepted", 2, true},
		{"all-accepted", 3, true},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, store, dms := openPaxos(t, 100+int64(i), WithSynchronousCleanup(true))
			defer func() { store.Close(); net.Close() }()
			ctx := context.Background()

			rep, err := store.CrashCommit(ctx, "x", 42, CommitCrashOptions{
				Stage: CommitCrashMidDecide, Deliver: tc.deliver,
			})
			if !errors.Is(err, ErrCommitAbandoned) {
				t.Fatalf("CrashCommit: %v, want ErrCommitAbandoned", err)
			}
			if rep.Accepts != tc.deliver {
				t.Fatalf("%d accepts delivered, want %d", rep.Accepts, tc.deliver)
			}
			if rep.Decided != tc.wantDecided {
				t.Fatalf("decided=%v, want %v", rep.Decided, tc.wantDecided)
			}

			pre := probeAll(t, store, dms, rep.Txn)
			accepted := 0
			for dm, p := range pre {
				if p.AccBal >= 0 {
					accepted++
					if !p.AccCommit || p.Promised != 0 {
						t.Errorf("%s accepted state %+v, want ballot-0 commit", dm, p)
					}
				} else if p.Promised != -2 {
					t.Errorf("%s has acceptor state %+v without a delivered 2a", dm, p)
				}
			}
			if accepted != tc.deliver {
				t.Fatalf("%d acceptors hold the value, want %d", accepted, tc.deliver)
			}

			for _, dm := range dms {
				amnesia(t, store, dm)
			}
			post := probeAll(t, store, dms, rep.Txn)
			for _, dm := range dms {
				if pre[dm] != post[dm] {
					t.Errorf("%s replayed to %+v, want identical pre-crash %+v", dm, post[dm], pre[dm])
				}
			}
		})
	}
}

// TestRecoveryAdoptsDecidedOutcome pins the adoption rule: once a
// coordinator decided commit at an acceptor majority and died before any
// learn, (a) acceptor recovery must reconstruct and finish that commit —
// never presume abort over it — and (b) a restarted coordinator replaying
// its ballot-0 proposal against a resolved DM gets the decision back
// (Decided answer) instead of a vote it could mistake for an open round.
func TestRecoveryAdoptsDecidedOutcome(t *testing.T) {
	ttl := 50 * time.Millisecond
	clk := sim.NewManualClock(time.Unix(0, 0))
	net, store, dms := openPaxos(t, 110,
		WithSynchronousCleanup(true),
		WithCallTimeout(20*time.Millisecond),
		WithLeaseTTL(ttl),
		WithClock(clk),
	)
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	rep, err := store.CrashCommit(ctx, "x", 99, CommitCrashOptions{Stage: CommitCrashBeforeLearn})
	if !errors.Is(err, ErrCommitAbandoned) {
		t.Fatalf("CrashCommit: %v, want ErrCommitAbandoned", err)
	}
	if !rep.Decided {
		t.Fatalf("BeforeLearn crash must leave a decided outcome: %+v", rep)
	}
	// Nobody applied: the outcome exists only as acceptor hard state.
	for _, dm := range dms {
		if insp, err := store.Inspect(ctx, dm, "x"); err != nil || insp.Val == 99 {
			t.Fatalf("%s applied the commit before any learn (insp %+v, err %v)", dm, insp, err)
		}
	}

	// One reaper round: the expired lease triggers the peer inquiry, the
	// acceptor answer routes it into Paxos recovery, and recovery must
	// adopt the accepted commit.
	clk.Advance(ttl + time.Millisecond)
	if _, err := store.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()

	if got := store.Stats.AcceptorResolvesCommitted.Value(); got == 0 {
		t.Error("no acceptor-driven commit resolution recorded")
	}
	if got := store.Stats.OrphanReapsAborted.Value(); got != 0 {
		t.Errorf("%d abort reaps fired over a decided commit", got)
	}
	for _, dm := range dms {
		insp, err := store.Inspect(ctx, dm, "x")
		if err != nil {
			t.Fatal(err)
		}
		if insp.Val != 99 || insp.Locks != 0 || insp.Intents != 0 {
			t.Errorf("%s did not converge on the decided commit: %+v", dm, insp)
		}
	}

	// The restarted coordinator replays its ballot-0 proposal (amnesia: it
	// might even propose the wrong way). A resolved DM must answer with
	// the decision, and the decided state must not move.
	raw, err := store.client.Call(ctx, dms[0], PaxosAcceptReq{
		Txn: rep.Txn, Ballot: 0, Commit: false, Cohort: dms,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, ok := raw.(PaxosAcceptResp)
	if !ok || !ans.Decided || !ans.DecCommit {
		t.Fatalf("resolved DM answered %#v, want Decided commit", raw)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 99 {
			t.Errorf("read %d after replayed proposal, want 99", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLearnFanoutSurvivesCallerCancel is the satellite-4 guard: once the
// acceptors decided commit, the caller cancelling its context must not
// abandon the learn fan-out — the outcome is already chosen, so the
// broadcast runs detached from the caller's lifetime (mirroring the
// detached cleanup sweeps). Without that, a cancelled caller strands every
// replica un-applied and the commit surfaces only after recovery.
func TestLearnFanoutSurvivesCallerCancel(t *testing.T) {
	net, store, dms := openPaxos(t, 120, WithSynchronousCleanup(true))
	defer func() { store.Close(); net.Close() }()
	bg := context.Background()

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	store.Hooks.BeforeCommitTop = func(TxnID) { cancel() } // fires after the decide, before the learn
	err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 31) })
	store.Hooks.BeforeCommitTop = nil
	if err != nil {
		t.Fatalf("decided commit must survive caller cancel: %v", err)
	}
	if got := store.Stats.PaxosCommits.Value(); got != 1 {
		t.Fatalf("%d paxos commits, want 1", got)
	}
	for _, dm := range dms {
		insp, err := store.Inspect(bg, dm, "x")
		if err != nil {
			t.Fatal(err)
		}
		if insp.Val != 31 || insp.Locks != 0 || insp.Intents != 0 {
			t.Errorf("%s missed the learn fan-out: %+v", dm, insp)
		}
	}
}
