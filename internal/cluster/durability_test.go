package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/commit"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// amnesia wipes a DM's in-memory state and rebuilds it from its
// write-ahead log, proving recovery reads the disk and not the heap.
func amnesia(t *testing.T, store *Store, dm string) RecoveryStats {
	t.Helper()
	store.mu.Lock()
	h := store.dms[dm]
	store.mu.Unlock()
	if h == nil {
		t.Fatalf("no DM %q", dm)
	}
	// Zero the state machine before reopening: anything the recovered DM
	// serves afterwards can only have come from the log.
	h.srv.replicas = map[string]*replica{}
	h.srv.resolved = map[TxnID]*resolution{}
	h.srv.acceptors = map[TxnID]*commit.Acceptor{}
	stats, err := store.RestartDM(dm)
	if err != nil {
		t.Fatalf("restart %s: %v", dm, err)
	}
	return stats
}

func openDurable(t *testing.T, seed int64, opts ...Option) (*sim.Network, *Store, []string) {
	t.Helper()
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond,
		Seed: seed, FateFeedback: true,
	})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	all := append([]Option{WithSeed(seed), WithDurability(t.TempDir())}, opts...)
	store, err := Open(net, items, all...)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	return net, store, dms
}

// TestRestartServesDurableState is the direct restart proof: a DM whose
// memory is zeroed before reopening still serves its pre-crash version
// number, value, lock table and pending intentions — all replayed from its
// WAL. A logged abort is replayed too, so the aborted intention is not
// resurrected by a second restart.
func TestRestartServesDurableState(t *testing.T) {
	net, store, _ := openDurable(t, 61)
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 10; i <= 20; i += 10 {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	// Plant a pending intention with a raw write from a foreign
	// transaction that never resolves: the recovered DM must still buffer
	// it and hold its write lock.
	pending := TxnID("zz.t9")
	raw, err := store.client.Call(ctx, "dm0", WriteReq{Txn: pending, Item: "x", VN: 99, Val: 777, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wr, ok := raw.(WriteResp); !ok || !wr.OK {
		t.Fatalf("raw write refused: %#v", raw)
	}
	pre, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if pre.VN == 0 || pre.Intents == 0 || pre.Locks == 0 {
		t.Fatalf("precondition: dm0 must hold state, got %+v", pre)
	}

	stats := amnesia(t, store, "dm0")
	if stats.Replayed == 0 && !stats.FromSnapshot {
		t.Fatalf("recovery replayed nothing: %+v", stats)
	}
	post, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if post.VN != pre.VN || post.Val != pre.Val || post.Gen != pre.Gen ||
		post.Intents != pre.Intents || post.Locks != pre.Locks {
		t.Fatalf("recovered state %+v, want pre-crash %+v", post, pre)
	}
	if store.Stats.Recoveries.Value() == 0 || store.Stats.ReplayedRecords.Value() == 0 {
		t.Error("recovery counters not advanced")
	}

	// The cluster still works through the recovered replica.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 20 {
			t.Errorf("read %d after recovery, want 20", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Abort the planted transaction; the abort is logged, so even another
	// amnesia crash cannot resurrect the intention.
	if _, err := store.client.Call(ctx, "dm0", AbortReq{Txn: pending}); err != nil {
		t.Fatal(err)
	}
	amnesia(t, store, "dm0")
	post, err = store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if post.Intents != pre.Intents-1 {
		t.Fatalf("aborted intention resurrected: %+v", post)
	}
}

// TestAmnesiaMidCommitBroadcast crashes a minority replica exactly inside
// the commit-point window — after the commit decision, before any
// CommitTopReq lands — wipes its memory, recovers it from its WAL, and
// checks (a) the full history stays serializable and (b) the recovered
// replica still buffers the committed transaction's intention, which the
// crash prevented it from applying.
func TestAmnesiaMidCommitBroadcast(t *testing.T) {
	rec := checker.NewRecorder()
	rec.DeclareItem("x", 0)
	// Synchronous cleanup keeps the commit's control goroutines inside
	// Run: without it, a detached retry to a tentatively-touched replica
	// can outlive Run, land after the restart below, and legitimately
	// apply the commit — correct behaviour, but it would make the
	// pending-intention assertion racy.
	net, store, _ := openDurable(t, 62,
		WithHistory(rec),
		WithCallTimeout(20*time.Millisecond),
		WithLockRetries(3),
		WithSynchronousCleanup(true),
	)
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 1; i <= 3; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	crashed := false
	store.Hooks.BeforeCommitTop = func(TxnID) {
		if !crashed {
			crashed = true
			net.Crash("dm0")
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 100) }); err != nil {
		t.Fatalf("commit with crashed minority must succeed: %v", err)
	}
	store.Hooks.BeforeCommitTop = nil

	stats := amnesia(t, store, "dm0")
	net.Restart("dm0")
	if stats.Replayed == 0 && !stats.FromSnapshot {
		t.Fatalf("recovery replayed nothing: %+v", stats)
	}
	// dm0 acknowledged the write phase (persist-before-ack), then missed
	// the commit broadcast: recovery must resurrect the intention, not the
	// applied state.
	insp, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if insp.Intents == 0 {
		t.Errorf("recovered dm0 lost the committed txn's pending intention: %+v", insp)
	}

	// The cluster keeps serving — readers and writers route around the
	// straggler through quorums that applied the commit.
	for i := 101; i <= 103; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 103 {
			t.Errorf("read %d, want 103", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rec.History().Verify(); err != nil {
		t.Fatalf("history not serializable after amnesia recovery: %v", err)
	}
}

// TestDurableReopenAcrossStores runs the full restart cycle three times
// over one directory: open, run a workload (nested transaction with a
// tolerated sub-abort, two replica crashes, online reconfiguration, a
// final read-only transaction), Close, then open a fresh store over the
// same WALs and repeat. Each reopened cluster must serve the pre-close
// balance and grant locks freely. The final transaction is deliberately
// read-only — its commit has no required acks, so everything it tells
// the replicas rides on detached control sends; were Close to strand
// them, its read locks would be recovered into the next cycle and every
// later write would conflict (the regression this test pins).
func TestDurableReopenAcrossStores(t *testing.T) {
	dir := t.TempDir()
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	items := []ItemSpec{{Name: "x", Initial: 100, DMs: dms, Config: quorum.Majority(dms)}}
	ctx := context.Background()
	errRisky := errors.New("risky")

	cycle := func(n int, seed int64, want int) {
		net := sim.NewNetwork(sim.Config{
			MinLatency: 100 * time.Microsecond, MaxLatency: time.Millisecond, Seed: seed,
		})
		defer net.Close()
		store, err := Open(net, items, WithSeed(seed), WithDurability(dir))
		if err != nil {
			t.Fatalf("cycle %d: open: %v", n, err)
		}
		defer store.Close()
		if n > 1 {
			if got := store.Stats.Recoveries.Value(); got != int64(len(dms)) {
				t.Fatalf("cycle %d: %d recoveries, want %d", n, got, len(dms))
			}
			if store.Stats.ReplayedRecords.Value() == 0 {
				t.Fatalf("cycle %d: no records replayed", n)
			}
			for _, dm := range dms[:3] {
				insp, err := store.Inspect(ctx, dm, "x")
				if err != nil {
					t.Fatalf("cycle %d: inspect %s: %v", n, dm, err)
				}
				if insp.Locks != 0 {
					t.Fatalf("cycle %d: %s recovered %d stale lock(s)", n, dm, insp.Locks)
				}
			}
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			v, err := ReadAs[int](ctx, tx, "x")
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("cycle %d opened with balance %d, want %d", n, v, want)
			}
			if err := tx.Write(ctx, "x", 150); err != nil {
				return err
			}
			if err := tx.Sub(ctx, func(sub *Txn) error {
				if err := sub.Write(ctx, "x", -1); err != nil {
					return err
				}
				return errRisky
			}); !errors.Is(err, errRisky) {
				return fmt.Errorf("sub-abort not surfaced: %v", err)
			}
			return nil
		}); err != nil {
			t.Fatalf("cycle %d: txn1: %v", n, err)
		}
		net.Crash("dm3")
		net.Crash("dm4")
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 175) }); err != nil {
			t.Fatalf("cycle %d: txn2: %v", n, err)
		}
		if err := store.Reconfigure(ctx, "x", quorum.Majority(dms[:3])); err != nil {
			t.Fatalf("cycle %d: reconfigure: %v", n, err)
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			_, err := tx.Read(ctx, "x")
			return err
		}); err != nil {
			t.Fatalf("cycle %d: txn3: %v", n, err)
		}
	}

	cycle(1, 71, 100)
	cycle(2, 72, 175)
	cycle(3, 73, 175)
}

// TestCloseDrainsDetachedSweeps pins the drain-and-pin race between the
// detached cleanup sweeps and Close: a sweep that detaches while doClose is
// between "bar new detachments" and the transport Quiesce would either
// trip the WaitGroup (Add racing Wait) or fire sends into a torn-down
// transport. goDetached must refuse once closing — the refused caller
// falls back to a bounded in-line send — and Close must wait out every
// sweep it admitted. The workload is read-only transactions because their
// lock releases ride entirely on detached sends.
func TestCloseDrainsDetachedSweeps(t *testing.T) {
	for seed := int64(81); seed <= 85; seed++ {
		net, store, _ := openDurable(t, seed)
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 7) }); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Errors are expected once Close tears the cluster down;
					// the assertion is the absence of panics and strands.
					_ = store.Run(ctx, func(tx *Txn) error {
						_, err := tx.Read(ctx, "x")
						return err
					})
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		store.Close() // races the workers' detached release sweeps
		close(stop)
		wg.Wait()
		if store.goDetached(func() {}) {
			t.Fatal("goDetached accepted a sweep after Close")
		}
		net.Close()
	}
}

// TestReaperAndReplayConverge crosses the lease reaper with amnesia
// recovery: a replica crashes across the commit point, is amnesia-restarted
// (WAL replay resurrects the committed transaction's lock and intention,
// with a fresh lease), and the reaper then resolves the orphan from the
// peers' commit records. A second amnesia restart must converge to the same
// state purely from the log — the reap decision was persisted as a ReapReq
// record — and must not double-count the reap.
func TestReaperAndReplayConverge(t *testing.T) {
	ttl := 50 * time.Millisecond
	clk := sim.NewManualClock(time.Unix(0, 0))
	net, store, _ := openDurable(t, 65,
		WithCallTimeout(20*time.Millisecond),
		WithLockRetries(3),
		WithSynchronousCleanup(true),
		WithLeaseTTL(ttl),
		WithClock(clk),
	)
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatal(err)
	}
	crashed := false
	store.Hooks.BeforeCommitTop = func(TxnID) {
		if !crashed {
			crashed = true
			net.Crash("dm0")
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 42) }); err != nil {
		t.Fatalf("commit with crashed minority: %v", err)
	}
	store.Hooks.BeforeCommitTop = nil

	// Amnesia-restart the straggler: replay resurrects the committed
	// transaction's write lock and intention (persist-before-ack covered the
	// write phase), and recovery stamps them a fresh lease.
	stats := amnesia(t, store, "dm0")
	net.Restart("dm0")
	if stats.Replayed == 0 && !stats.FromSnapshot {
		t.Fatalf("recovery replayed nothing: %+v", stats)
	}
	pre, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Intents == 0 || pre.Locks == 0 {
		t.Fatalf("precondition: recovered dm0 should hold the orphan lock+intent, got %+v", pre)
	}

	clk.Advance(ttl + time.Millisecond)
	if _, err := store.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	if got := store.Stats.OrphanReapsCommitted.Value(); got != 1 {
		t.Fatalf("%d commit-reaps after sweep, want 1", got)
	}
	post, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if post.Intents != 0 || post.Locks != 0 || post.Val != 42 {
		t.Fatalf("reap did not converge dm0: %+v", post)
	}

	// Second amnesia restart, with no clock advance and no sweep: the only
	// way dm0 can come back already resolved is the logged ReapReq.
	amnesia(t, store, "dm0")
	replayed, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Intents != 0 || replayed.Locks != 0 || replayed.Val != 42 {
		t.Fatalf("replay lost the reap: %+v", replayed)
	}
	if got := store.Stats.OrphanReapsCommitted.Value(); got != 1 {
		t.Fatalf("replay double-counted the reap: %d", got)
	}
	// And the cluster as a whole still serves the committed value.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("read %d, want 42", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigGenerationSurvivesAmnesia reconfigures an item (generation
// 0 → 1), amnesia-crashes a write-quorum member that durably holds the new
// generation, and checks the recovered replica still serves generation 1 —
// and that a stale client chasing generation numbers through it converges
// on the new configuration.
func TestReconfigGenerationSurvivesAmnesia(t *testing.T) {
	net, store, dms := openDurable(t, 63)
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatal(err)
	}
	// New configuration: read anywhere, write everywhere. Its value write
	// reaches every DM, so single-replica reads stay safe.
	newCfg := quorum.ReadOneWriteAll(dms)
	if err := store.Reconfigure(ctx, "x", newCfg); err != nil {
		t.Fatal(err)
	}

	// Find a replica that durably installed generation 1 (the config write
	// needed only a write quorum of the old configuration).
	victim := ""
	for _, dm := range dms {
		if insp, err := store.Inspect(ctx, dm, "x"); err == nil && insp.Gen == 1 {
			victim = dm
			break
		}
	}
	if victim == "" {
		t.Fatal("no replica installed generation 1")
	}

	net.Crash(victim)
	stats := amnesia(t, store, victim)
	net.Restart(victim)
	if stats.Replayed == 0 && !stats.FromSnapshot {
		t.Fatalf("recovery replayed nothing: %+v", stats)
	}
	insp, err := store.Inspect(ctx, victim, "x")
	if err != nil {
		t.Fatal(err)
	}
	if insp.Gen != 1 {
		t.Fatalf("recovered %s serves generation %d, want 1", victim, insp.Gen)
	}

	// A stale client still believing generation 0 discovers the new
	// configuration through the generation chase — the recovered replica's
	// durable generation participates in that discovery.
	items := store.Items()
	stale, err := OpenClient(net, items, WithSeed(64))
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if err := stale.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("stale client read %d, want 1", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := stale.config("x"); got.gen != 1 {
		t.Errorf("stale client converged to generation %d, want 1", got.gen)
	}
	// Writes through the recovered replica under the new configuration
	// keep working (write-all includes the victim).
	if err := stale.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 2) }); err != nil {
		t.Fatal(err)
	}
}
