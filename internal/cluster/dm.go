package cluster

import (
	"sync"
	"time"

	"repro/internal/commit"
	"repro/internal/quorum"
	"repro/internal/shard"
	"repro/internal/transport"
)

// replica is one DM's state for one item: the committed versioned value and
// configuration, the Moss lock table, and the ordered intention list of
// uncommitted writes.
type replica struct {
	vn  int
	val any
	gen int
	cfg quorum.Config

	locks   map[TxnID]LockMode
	intents []intent

	// lockSeqs is the highest phase Seq that granted each live lock and
	// lockBorn the Seq that created it; together with the released
	// tombstones they decide whether a ReleaseReq may free the lock.
	// Lazily allocated so zero-value replicas (tests) keep working.
	lockSeqs map[TxnID]int
	lockBorn map[TxnID]int
	released map[TxnID]int
}

// intent is a buffered (deferred) update owned by a transaction.
type intent struct {
	owner    TxnID
	isConfig bool
	vn       int
	val      any
	gen      int
	cfg      quorum.Config
}

// resolution records the outcome of a finished top-level transaction. For
// commits it keeps the committed-subs list, so a lease-resolution inquiry
// can re-serve the full commit record to a straggler that must apply the
// transaction's subtree consistently.
type resolution struct {
	committed bool
	subs      []TxnID
}

// dmServer is the handler state of one DM node. It runs under the server
// actor discipline: the handler is invoked on a single goroutine, so no
// locking is needed (the lease sender hook is the one documented
// exception).
type dmServer struct {
	id       string
	replicas map[string]*replica

	// moved marks items this DM retired after a live migration, keyed by
	// item name, each carrying the redirect to answer with. Hard state:
	// installed through apply (WAL-logged, replayed), because a recovered
	// replica serving a retired item's stale bytes would be a split brain.
	moved map[string]WrongShardResp

	// ring is this replica's view of the placement ring, nil when the
	// deployment is unsharded. Soft state (gossip for routers): never
	// logged, never replayed, rebuilt from serve flags after amnesia.
	ring *shard.Ring

	// resolved remembers finished top-level transactions (committed or
	// aborted) so CommitTopReq is idempotent under client retries, so late
	// request copies from cancelled fan-outs cannot grant locks for a
	// transaction that no longer exists, and so lease-resolution inquiries
	// from peers can be answered authoritatively.
	resolved map[TxnID]*resolution

	// Resolved-record retention (DESIGN.md §12). resolvedLog remembers
	// resolution order; once it exceeds resolvedCap, the oldest records are
	// compacted to outcome tombstones — the committed/aborted verdict stays
	// forever (idempotency and settle probes need it), only the committed-
	// subs payload is dropped. Zero cap retains everything (standalone DMs,
	// replay — configureRetention runs only after recovery replay, so replay
	// itself never compacts).
	resolvedCap int
	resolvedLog []TxnID

	// Lease machinery (soft state: never snapshotted, never replayed —
	// recovery re-stamps fresh leases, which only delays reaping).
	leaseTTL  time.Duration
	clock     transport.Clock
	peers     []string // every other DM of the cluster, sorted
	stats     *Stats   // shared with the owning Store; nil for standalone DMs
	leases    map[TxnID]time.Time
	inquiries map[TxnID]*inquiry

	// Freshness-hint machinery (soft state like leases: never snapshotted,
	// never replayed — hintTTL is configured only after recovery replay, so
	// a rebuilt replica holds no hints until a commit or the sweeper
	// re-proves its freshness). Zero hintTTL disables the fast lane.
	hintTTL    time.Duration
	hints      map[string]itemHint
	hintFences map[string]hintFence

	// Paxos Commit state (DESIGN.md §11). acceptors is the per-transaction
	// acceptor hard state: WAL-logged through PaxosAcceptReq/PaxosPrepareReq
	// and carried in snapshots, so a majority of acceptors can reconstruct a
	// commit decision after any single failure — including this replica's
	// own amnesia crash. recoveries is the proposer side of acceptor
	// recovery: soft state like inquiries (a lost recovery round is simply
	// re-run when the next conflict finds the orphan still unresolved).
	acceptors  map[TxnID]*commit.Acceptor
	recoveries map[TxnID]*paxosRecovery

	// selfApply routes a reap decision into the state machine: the durable
	// path logs it like any other mutation, the volatile path applies it
	// directly. Nil (standalone servers) applies directly.
	selfApply func(req any)

	// persist logs one already-applied mutating request and calls done only
	// once the record is durable (immediately on volatile DMs, where it is
	// nil). The acceptor protocol needs the split: a promise or acceptance
	// must never leave the machine before it is stable, but the answer is
	// captured on the loop goroutine before the flush, so the flusher only
	// sends — it never reads actor state.
	persist func(req any, done func())

	// send delivers fire-and-forget protocol messages to peers. Guarded by
	// sendMu because the node that carries the messages is wired up after
	// the state machine is built.
	sendMu sync.Mutex
	send   func(to string, req any)
}

// inquiry tracks one in-flight resolution poll: which peers still owe an
// answer and when the poll started (stale polls are re-sent).
type inquiry struct {
	waiting map[string]bool
	started time.Time
}

// newDMState builds the state machine of a DM hosting the given items,
// each at its initial value and configuration.
func newDMState(id string, items []ItemSpec) *dmServer {
	s := &dmServer{
		id:         id,
		replicas:   map[string]*replica{},
		moved:      map[string]WrongShardResp{},
		resolved:   map[TxnID]*resolution{},
		clock:      transport.Wall,
		leases:     map[TxnID]time.Time{},
		inquiries:  map[TxnID]*inquiry{},
		acceptors:  map[TxnID]*commit.Acceptor{},
		recoveries: map[TxnID]*paxosRecovery{},
	}
	for _, it := range items {
		s.replicas[it.Name] = &replica{
			val:   it.Initial,
			cfg:   it.Config.Clone(),
			locks: map[TxnID]LockMode{},
		}
	}
	return s
}

// configureLeases arms the lease reaper: grants stamp leases of ttl, and
// conflicts with expired-lease holders trigger resolution inquiries to
// peers. Must be called before the server's node starts.
func (s *dmServer) configureLeases(ttl time.Duration, clock transport.Clock, peers []string, stats *Stats) {
	s.leaseTTL = ttl
	if clock != nil {
		s.clock = clock
	}
	s.peers = peers
	s.stats = stats
}

// configureRing hands the replica its initial placement-ring view (a deep
// copy). Like hint configuration it runs after recovery replay, so the
// ring a rebuilt replica gossips is the one from its serve flags, not a
// stale logged one — ring state is never logged at all.
func (s *dmServer) configureRing(r *shard.Ring) {
	if r != nil {
		s.ring = r.Clone()
	}
}

// configureRetention arms the resolved-record retention cap. Like the lease
// configuration it must run after recovery replay and before the server's
// node starts: replayed resolutions are never compacted (the replayed state
// can only carry MORE information than the pre-crash one, which is safe),
// new ones join the eviction log.
func (s *dmServer) configureRetention(n int) {
	if n > 0 {
		s.resolvedCap = n
	}
}

// setSender installs the peer-message transport.
func (s *dmServer) setSender(fn func(to string, req any)) {
	s.sendMu.Lock()
	s.send = fn
	s.sendMu.Unlock()
}

func (s *dmServer) notifyPeer(to string, req any) {
	s.sendMu.Lock()
	fn := s.send
	s.sendMu.Unlock()
	if fn != nil {
		fn(to, req)
	}
}

// NewDMServer starts a volatile DM server hosting the given items on the
// given transport and returns its server handle. This is the standalone
// entry point — no leases, no peers, no WAL — used by unit tests and as the
// simplest possible replica.
func NewDMServer(tr transport.Transport, id string, items []ItemSpec) (transport.Server, error) {
	srv := newDMState(id, items)
	server, err := tr.Serve(id, asyncify(srv.handle))
	if err != nil {
		return nil, err
	}
	srv.setSender(server.Notify)
	return server, nil
}

// canLock applies Moss's rule: a conflicting lock may be held only by
// ancestors of the requester.
func (r *replica) canLock(t TxnID, m LockMode) bool {
	for holder, hm := range r.locks {
		if holder == t {
			continue
		}
		if (m == LockWrite || hm == LockWrite) && !holder.IsAncestorOf(t) {
			return false
		}
	}
	return true
}

// grant records the lock, upgrading if needed.
func (r *replica) grant(t TxnID, m LockMode) {
	if r.locks[t] < m {
		r.locks[t] = m
	}
}

// noteGrant records which phase granted (and, when fresh, created) the
// transaction's lock, for the release guards.
func (r *replica) noteGrant(t TxnID, seq int, held bool) {
	if seq == 0 {
		return
	}
	if r.lockSeqs == nil {
		r.lockSeqs = map[TxnID]int{}
	}
	if r.lockSeqs[t] < seq {
		r.lockSeqs[t] = seq
	}
	if !held {
		if r.lockBorn == nil {
			r.lockBorn = map[TxnID]int{}
		}
		r.lockBorn[t] = seq
	}
}

// tombstoned reports whether phase seq of t was already released here, in
// which case a (late) request copy from that phase must not grant.
func (r *replica) tombstoned(t TxnID, seq int) bool {
	return seq != 0 && seq <= r.released[t]
}

// release processes a ReleaseReq: tombstone the phase, then free the lock
// only if this very phase created it, no later phase re-granted it, and no
// buffered intention of the transaction depends on it. Reports whether the
// lock was freed.
func (r *replica) release(t TxnID, seq int) bool {
	if seq == 0 {
		return false
	}
	if r.released == nil {
		r.released = map[TxnID]int{}
	}
	if r.released[t] < seq {
		r.released[t] = seq
	}
	if _, held := r.locks[t]; !held {
		return false
	}
	if r.lockBorn[t] != seq || r.lockSeqs[t] > seq || r.ownsIntent(t) {
		return false
	}
	delete(r.locks, t)
	delete(r.lockSeqs, t)
	delete(r.lockBorn, t)
	return true
}

// ownsIntent reports whether t owns a buffered intention on this replica.
func (r *replica) ownsIntent(t TxnID) bool {
	for _, in := range r.intents {
		if in.owner == t {
			return true
		}
	}
	return false
}

// hasIntentCopy reports whether t already buffered this exact logical
// write, so hedged duplicate requests install a single intention.
func (r *replica) hasIntentCopy(t TxnID, isConfig bool, vn, gen int) bool {
	for _, in := range r.intents {
		if in.owner != t || in.isConfig != isConfig {
			continue
		}
		if isConfig && in.gen == gen {
			return true
		}
		if !isConfig && in.vn == vn {
			return true
		}
	}
	return false
}

// view folds the intentions visible to t (those owned by t or its
// ancestors) over the committed state, yielding the state t must read.
func (r *replica) view(t TxnID) (vn int, val any, gen int, cfg quorum.Config) {
	vn, val, gen, cfg = r.vn, r.val, r.gen, r.cfg
	for _, in := range r.intents {
		if !in.owner.IsAncestorOf(t) {
			continue
		}
		if in.isConfig {
			gen, cfg = in.gen, in.cfg
		} else {
			vn, val = in.vn, in.val
		}
	}
	return vn, val, gen, cfg
}

// promote hands t's locks and intentions to its parent. The release
// tombstones stay behind: t's phases are over, and late copies of them
// must still be refused.
func (r *replica) promote(t TxnID) {
	parent, ok := t.Parent()
	if m, held := r.locks[t]; held {
		delete(r.locks, t)
		delete(r.lockSeqs, t)
		delete(r.lockBorn, t)
		if ok {
			if r.locks[parent] < m {
				r.locks[parent] = m
			}
		}
	}
	if ok {
		for i := range r.intents {
			if r.intents[i].owner == t {
				r.intents[i].owner = parent
			}
		}
	}
}

// drop removes every lock, intention, and phase record owned by t or its
// descendants.
func (r *replica) drop(t TxnID) {
	for holder := range r.locks {
		if t.IsAncestorOf(holder) {
			delete(r.locks, holder)
		}
	}
	for holder := range r.lockSeqs {
		if t.IsAncestorOf(holder) {
			delete(r.lockSeqs, holder)
		}
	}
	for holder := range r.lockBorn {
		if t.IsAncestorOf(holder) {
			delete(r.lockBorn, holder)
		}
	}
	for holder := range r.released {
		if t.IsAncestorOf(holder) {
			delete(r.released, holder)
		}
	}
	kept := r.intents[:0]
	for _, in := range r.intents {
		if !t.IsAncestorOf(in.owner) {
			kept = append(kept, in)
		}
	}
	r.intents = kept
}

// applyTop folds t's intentions into the committed state and releases its
// locks. committed names the committed subtransactions of t's tree: an
// intention still owned by one of them (its promote never arrived here)
// is committed state too and is applied, not discarded. Intentions fold
// in arrival order, which per item is write order: a later write is only
// issued after the earlier one's quorum acked, and tombstones refuse
// late duplicate copies.
func (r *replica) applyTop(t TxnID, committed map[TxnID]bool) {
	kept := r.intents[:0]
	for _, in := range r.intents {
		if in.owner != t && !committed[in.owner] {
			kept = append(kept, in)
			continue
		}
		if in.isConfig {
			r.gen, r.cfg = in.gen, in.cfg
		} else {
			r.vn, r.val = in.vn, in.val
		}
	}
	r.intents = kept
	r.drop(t)
}

// txnResolved reports whether the request's top-level transaction already
// committed or aborted, in which case no new lock may be granted to it.
func (s *dmServer) txnResolved(t TxnID) bool {
	return s.resolved[t.Top()] != nil
}

func (s *dmServer) markResolved(t TxnID, committed bool, subs []TxnID) {
	if s.resolved == nil {
		s.resolved = map[TxnID]*resolution{}
	}
	_, existed := s.resolved[t]
	s.resolved[t] = &resolution{committed: committed, subs: subs}
	if !existed && s.resolvedCap > 0 {
		// Retention: past the cap, the oldest records shed their subs
		// payload but keep the verdict — a tombstone still refuses late
		// commits, still answers inquiries and settle probes. Re-resolving
		// an already-resolved id (duplicate aborts) never re-logs it.
		s.resolvedLog = append(s.resolvedLog, t)
		for len(s.resolvedLog) > s.resolvedCap {
			old := s.resolvedLog[0]
			s.resolvedLog = s.resolvedLog[1:]
			if res := s.resolved[old]; res != nil && res.subs != nil {
				res.subs = nil
			}
			if s.stats != nil {
				s.stats.ResolvedEvictions.Inc()
			}
		}
	}
	if s.leases != nil {
		delete(s.leases, t)
	}
	if s.inquiries != nil {
		delete(s.inquiries, t)
	}
	// A resolved transaction's Paxos instance is over: queries answer from
	// the resolution record from here on, so the acceptor state (and any
	// in-flight recovery round of ours) can be retired with it.
	if s.acceptors != nil {
		delete(s.acceptors, t)
	}
	if s.recoveries != nil {
		delete(s.recoveries, t)
	}
}

// handle is the DM's RPC handler for the volatile (in-memory) path.
func (s *dmServer) handle(_ string, req any) any {
	// Hinted reads are validated OUTSIDE apply: a valid one is rewritten to
	// the ordinary ReadReq it is equivalent to (and logged/replayed as such
	// on durable DMs — replay never consults hint state), an invalid one is
	// answered with an unlogged miss.
	if q, ok := req.(HintReadReq); ok {
		rr, miss := s.hintCheck(q)
		if miss != nil {
			return *miss
		}
		req = rr
	}
	if resp, handled := s.coordinate(req); handled {
		return resp
	}
	resp, _ := s.apply(req)
	return resp
}

// apply executes one request against the DM state machine and reports
// whether it mutated state the replica is answerable for after a restart —
// lock grants, intentions, tombstones, committed versions, resolutions.
// The durable path logs exactly the requests apply reports as mutating, in
// arrival order, and recovery replays them through this same function, so
// apply must stay deterministic: same state + same request → same state and
// response.
func (s *dmServer) apply(req any) (resp any, mutated bool) {
	switch q := req.(type) {
	case PingReq:
		// Inert by contract (see PingReq): no locks, no leases, no state.
		_ = q
		return Ack{OK: true}, false
	case ReadReq:
		if w, ok := s.moved[q.Item]; ok {
			return w, false
		}
		r := s.replicas[q.Item]
		if r == nil {
			return ReadResp{}, false
		}
		if s.txnResolved(q.Txn) || r.tombstoned(q.Txn, q.Seq) {
			return ReadResp{}, false
		}
		if !r.canLock(q.Txn, q.Lock) {
			s.noteConflict(r, q.Txn)
			return ReadResp{Busy: true}, false
		}
		_, held := r.locks[q.Txn]
		r.grant(q.Txn, q.Lock)
		r.noteGrant(q.Txn, q.Seq, held)
		s.stampLease(q.Txn)
		vn, val, gen, cfg := r.view(q.Txn)
		// A granted read mutates the lock table: the grant is a promise
		// two-phase locking depends on, so a restarted replica must still
		// remember it. Hinted is response-only soft state (a replay's
		// discarded responses may differ in it; the hard state never does).
		return ReadResp{OK: true, Held: held, VN: vn, Val: val, Gen: gen, Cfg: cfg, Hinted: s.hintLive(q.Item, r)}, true
	case WriteReq:
		if w, ok := s.moved[q.Item]; ok {
			return w, false
		}
		r := s.replicas[q.Item]
		if r == nil {
			return WriteResp{}, false
		}
		if s.txnResolved(q.Txn) || r.tombstoned(q.Txn, q.Seq) {
			return WriteResp{}, false
		}
		if !r.canLock(q.Txn, LockWrite) {
			s.noteConflict(r, q.Txn)
			return WriteResp{Busy: true}, false
		}
		_, held := r.locks[q.Txn]
		r.grant(q.Txn, LockWrite)
		r.noteGrant(q.Txn, q.Seq, held)
		s.stampLease(q.Txn)
		// A write lock revokes the freshness hint here and stamps the fence:
		// the write-quorum members' fence rides the grant itself, only the
		// remaining replicas need an explicit HintFenceReq.
		s.fenceHintLocal(q.Item, q.Txn)
		if !r.hasIntentCopy(q.Txn, false, q.VN, 0) {
			r.intents = append(r.intents, intent{owner: q.Txn, vn: q.VN, val: q.Val})
		}
		return WriteResp{OK: true, Held: held}, true
	case ConfigWriteReq:
		if w, ok := s.moved[q.Item]; ok {
			return w, false
		}
		r := s.replicas[q.Item]
		if r == nil {
			return WriteResp{}, false
		}
		if s.txnResolved(q.Txn) || r.tombstoned(q.Txn, q.Seq) {
			return WriteResp{}, false
		}
		if !r.canLock(q.Txn, LockWrite) {
			s.noteConflict(r, q.Txn)
			return WriteResp{Busy: true}, false
		}
		_, held := r.locks[q.Txn]
		r.grant(q.Txn, LockWrite)
		r.noteGrant(q.Txn, q.Seq, held)
		s.stampLease(q.Txn)
		s.fenceHintLocal(q.Item, q.Txn)
		if !r.hasIntentCopy(q.Txn, true, 0, q.Gen) {
			r.intents = append(r.intents, intent{owner: q.Txn, isConfig: true, gen: q.Gen, cfg: q.Cfg.Clone()})
		}
		return WriteResp{OK: true, Held: held}, true
	case ReleaseReq:
		r := s.replicas[q.Item]
		if r == nil || q.Seq == 0 {
			return Ack{OK: true}, false
		}
		// Even a refused release installs the phase tombstone, which must
		// survive a restart or late request copies could re-grant.
		r.release(q.Txn, q.Seq)
		return Ack{OK: true}, true
	case RepairReq:
		r := s.replicas[q.Item]
		if r == nil {
			return Ack{}, false
		}
		// Safe when strictly newer and no writer is in flight: the repair
		// only advances the committed state to a value that is already
		// committed at a write-quorum, which every quorum read would
		// return anyway. Read locks do not block it. The same argument
		// covers configuration generations: a newer (gen, cfg) was
		// installed by a committed reconfiguration, and propagating it
		// only redirects clients sooner.
		writerInFlight := len(r.intents) > 0
		for _, m := range r.locks {
			if m == LockWrite {
				writerInFlight = true
			}
		}
		applied := false
		if q.VN > r.vn && !writerInFlight {
			r.vn, r.val = q.VN, q.Val
			applied = true
		}
		if q.Gen > r.gen && !writerInFlight {
			r.gen, r.cfg = q.Gen, q.Cfg.Clone()
			applied = true
		}
		return Ack{OK: true}, applied
	case InspectReq:
		r := s.replicas[q.Item]
		if r == nil {
			return InspectResp{}, false
		}
		// An inspection doubles as an orphan sweep: the anti-entropy
		// sweeper's idle-tick inspections hunt expired-lease holders even
		// when no client is conflicting with them.
		s.noteInspect(r)
		return InspectResp{
			OK: true, VN: r.vn, Val: r.val, Gen: r.gen, Cfg: r.cfg.Clone(),
			Locks: len(r.locks), Intents: len(r.intents),
		}, false
	case CommitSubReq:
		for _, r := range s.replicas {
			r.promote(q.Txn)
		}
		return Ack{OK: true}, true
	case AbortReq:
		if q.Txn.Top() == q.Txn {
			s.markResolved(q.Txn, false, nil)
		}
		for _, r := range s.replicas {
			r.drop(q.Txn)
		}
		return Ack{OK: true}, true
	case CommitTopReq:
		if res := s.resolved[q.Txn]; res != nil {
			// A transaction the lease reaper already presumed aborted must
			// not commit late — under the lease fence the client never
			// reaches this point, but a refused ack keeps even a fence
			// bypass from silently diverging.
			return Ack{OK: res.committed}, false
		}
		s.markResolved(q.Txn, true, q.Subs)
		committed := make(map[TxnID]bool, len(q.Subs))
		for _, sub := range q.Subs {
			committed[sub] = true
		}
		for name, r := range s.replicas {
			r.applyTop(q.Txn, committed)
			// The commit doubles as a freshness proof ONLY for replicas
			// whose post-apply version is the transaction's final one for
			// the item. Merely having advanced is not enough: a transaction
			// that wrote the item twice through different write quorums
			// leaves its earlier version at replicas the later quorum never
			// touched — they advance, but to a version that is already
			// superseded cluster-wide.
			if fin, ok := q.Final[name]; ok && r.vn == fin {
				s.grantHint(name, r, q.Txn)
			}
		}
		return Ack{OK: true}, true
	case AdoptItemReq:
		if _, hosts := s.replicas[q.Item]; hosts {
			// Idempotent: a retried adopt round must not regress a replica
			// that may already hold copied state or live locks.
			return Ack{OK: true}, false
		}
		// Adoption supersedes any old moved marker: the item is coming back
		// to this DM (migrations can round-trip). The replica starts at
		// version 0 with an empty config — it becomes a read target only
		// through the migration's copy + committed cutover config record.
		delete(s.moved, q.Item)
		s.replicas[q.Item] = &replica{
			val:   q.Initial,
			locks: map[TxnID]LockMode{},
		}
		return Ack{OK: true}, true
	case RetireItemReq:
		r := s.replicas[q.Item]
		if r == nil {
			// Already retired (or never hosted): idempotent only when the
			// marker is present, refused otherwise so a misdirected retire
			// is visible.
			_, ok := s.moved[q.Item]
			return Ack{OK: ok}, false
		}
		if len(r.locks) > 0 || len(r.intents) > 0 {
			// In-flight transactions finish against the old generation; the
			// coordinator retries retirement later (or leaves the replica —
			// the gen-chase redirects readers regardless).
			return Ack{OK: false}, false
		}
		delete(s.replicas, q.Item)
		s.moved[q.Item] = WrongShardResp{
			DM: s.id, Item: q.Item, Epoch: q.Epoch, Group: q.Group,
			DMs: append([]string(nil), q.DMs...), Gen: q.Gen, Cfg: q.Cfg.Clone(),
		}
		delete(s.hints, q.Item)
		return Ack{OK: true}, true
	case ReapReq:
		top := q.Txn.Top()
		if s.resolved[top] != nil {
			return Ack{OK: true}, false
		}
		if q.Commit {
			// A peer produced the commit record: apply the transaction here
			// exactly as a late CommitTopReq would, Subs and all.
			s.markResolved(top, true, q.Subs)
			committed := make(map[TxnID]bool, len(q.Subs))
			for _, sub := range q.Subs {
				committed[sub] = true
			}
			for _, r := range s.replicas {
				// No freshness grant here: a reaped commit carries no final
				// version map (the reaper reconstructs the verdict, not the
				// write set), so this replica cannot prove its applied state
				// is the cluster maximum. The sweeper re-proves it.
				r.applyTop(top, committed)
			}
		} else {
			// Presumed abort: no replica anywhere holds a commit record and
			// the lease lapsed, so the commit point was never passed. Drop
			// the whole subtree — descendants a promote already folded into
			// the parent fall with it, and descendants still under their own
			// ids are covered by drop's ancestor sweep.
			s.markResolved(top, false, nil)
			for _, r := range s.replicas {
				r.drop(top)
			}
		}
		return Ack{OK: true}, true
	case PaxosAcceptReq:
		// Phase 2a: accept the proposed outcome unless a higher ballot was
		// promised. Ballot 0 is the coordinator's fast path (it skips
		// Phase 1); recovery proposers arrive with ballots >= 1.
		if res := s.resolved[q.Txn]; res != nil {
			// Recovery already decided this instance — the caller adopts the
			// decision instead of counting this as a vote.
			return PaxosAcceptResp{Decided: true, DecCommit: res.committed}, false
		}
		acc := s.acceptors[q.Txn]
		if acc == nil {
			acc = commit.NewAcceptor(append([]string(nil), q.Cohort...))
		}
		ok, mutated := acc.Accept(q.Ballot, commit.Decision{
			Commit: q.Commit, Subs: txnsToStrings(q.Subs), Final: q.Final,
		})
		if !ok {
			return PaxosAcceptResp{OK: false, Promised: acc.Promised}, false
		}
		if s.acceptors == nil {
			s.acceptors = map[TxnID]*commit.Acceptor{}
		}
		s.acceptors[q.Txn] = acc
		return PaxosAcceptResp{OK: true, Promised: acc.Promised}, mutated
	case PaxosPrepareReq:
		// Phase 1a durability: self-applied by the recovering DM so the
		// promise watermark hits the log before the promise leaves the
		// machine. A resolved instance refuses — the recovery path answers
		// such queries from the resolution record instead.
		if s.resolved[q.Txn] != nil {
			return Ack{OK: false}, false
		}
		acc := s.acceptors[q.Txn]
		if acc == nil {
			acc = commit.NewAcceptor(append([]string(nil), q.Cohort...))
		}
		ok, mutated := acc.Prepare(q.Ballot)
		if ok {
			if s.acceptors == nil {
				s.acceptors = map[TxnID]*commit.Acceptor{}
			}
			s.acceptors[q.Txn] = acc
		}
		return Ack{OK: ok}, mutated
	case PaxosDecisionReq:
		// The learn message: install a decided outcome exactly as a late
		// CommitTopReq (or a reaped abort) would. Idempotent, and it retires
		// the instance's acceptor state via markResolved.
		top := q.Txn.Top()
		if s.resolved[top] != nil {
			return Ack{OK: true}, false
		}
		if q.Commit {
			s.markResolved(top, true, q.Subs)
			committed := make(map[TxnID]bool, len(q.Subs))
			for _, sub := range q.Subs {
				committed[sub] = true
			}
			for name, r := range s.replicas {
				r.applyTop(top, committed)
				// Same freshness rule as CommitTopReq: the decision carries
				// the final version map, so a replica landing on the final
				// version may self-grant a hint.
				if fin, ok := q.Final[name]; ok && r.vn == fin {
					s.grantHint(name, r, top)
				}
			}
		} else {
			s.markResolved(top, false, nil)
			for _, r := range s.replicas {
				r.drop(top)
			}
		}
		return Ack{OK: true}, true
	default:
		return Ack{OK: false}, false
	}
}
