package cluster

import (
	"repro/internal/quorum"
	"repro/internal/sim"
)

// replica is one DM's state for one item: the committed versioned value and
// configuration, the Moss lock table, and the ordered intention list of
// uncommitted writes.
type replica struct {
	vn  int
	val any
	gen int
	cfg quorum.Config

	locks   map[TxnID]LockMode
	intents []intent
}

// intent is a buffered (deferred) update owned by a transaction.
type intent struct {
	owner    TxnID
	isConfig bool
	vn       int
	val      any
	gen      int
	cfg      quorum.Config
}

// dmServer is the handler state of one DM node. It runs under the sim.Node
// actor discipline: the handler is invoked on a single goroutine, so no
// locking is needed.
type dmServer struct {
	id       string
	replicas map[string]*replica

	// appliedTop remembers applied top-level commits so CommitTopReq is
	// idempotent under client retries.
	appliedTop map[TxnID]bool
}

// NewDMServer starts a DM node hosting the given items and returns its
// sim.Node. Each item maps to its initial value and configuration.
func NewDMServer(net *sim.Network, id string, items []ItemSpec) *sim.Node {
	s := &dmServer{id: id, replicas: map[string]*replica{}, appliedTop: map[TxnID]bool{}}
	for _, it := range items {
		s.replicas[it.Name] = &replica{
			val:   it.Initial,
			cfg:   it.Config.Clone(),
			locks: map[TxnID]LockMode{},
		}
	}
	return sim.NewNode(net, id, s.handle)
}

// canLock applies Moss's rule: a conflicting lock may be held only by
// ancestors of the requester.
func (r *replica) canLock(t TxnID, m LockMode) bool {
	for holder, hm := range r.locks {
		if holder == t {
			continue
		}
		if (m == LockWrite || hm == LockWrite) && !holder.IsAncestorOf(t) {
			return false
		}
	}
	return true
}

// grant records the lock, upgrading if needed.
func (r *replica) grant(t TxnID, m LockMode) {
	if r.locks[t] < m {
		r.locks[t] = m
	}
}

// view folds the intentions visible to t (those owned by t or its
// ancestors) over the committed state, yielding the state t must read.
func (r *replica) view(t TxnID) (vn int, val any, gen int, cfg quorum.Config) {
	vn, val, gen, cfg = r.vn, r.val, r.gen, r.cfg
	for _, in := range r.intents {
		if !in.owner.IsAncestorOf(t) {
			continue
		}
		if in.isConfig {
			gen, cfg = in.gen, in.cfg
		} else {
			vn, val = in.vn, in.val
		}
	}
	return vn, val, gen, cfg
}

// promote hands t's locks and intentions to its parent.
func (r *replica) promote(t TxnID) {
	parent, ok := t.Parent()
	if m, held := r.locks[t]; held {
		delete(r.locks, t)
		if ok {
			if r.locks[parent] < m {
				r.locks[parent] = m
			}
		}
	}
	if ok {
		for i := range r.intents {
			if r.intents[i].owner == t {
				r.intents[i].owner = parent
			}
		}
	}
}

// drop removes every lock and intention owned by t or its descendants.
func (r *replica) drop(t TxnID) {
	for holder := range r.locks {
		if t.IsAncestorOf(holder) {
			delete(r.locks, holder)
		}
	}
	kept := r.intents[:0]
	for _, in := range r.intents {
		if !t.IsAncestorOf(in.owner) {
			kept = append(kept, in)
		}
	}
	r.intents = kept
}

// applyTop folds t's intentions into the committed state and releases its
// locks.
func (r *replica) applyTop(t TxnID) {
	kept := r.intents[:0]
	for _, in := range r.intents {
		if in.owner != t {
			kept = append(kept, in)
			continue
		}
		if in.isConfig {
			r.gen, r.cfg = in.gen, in.cfg
		} else {
			r.vn, r.val = in.vn, in.val
		}
	}
	r.intents = kept
	r.drop(t)
}

// handle is the DM's RPC handler.
func (s *dmServer) handle(_ string, req any) any {
	switch q := req.(type) {
	case ReadReq:
		r := s.replicas[q.Item]
		if r == nil {
			return ReadResp{}
		}
		if !r.canLock(q.Txn, q.Lock) {
			return ReadResp{Busy: true}
		}
		r.grant(q.Txn, q.Lock)
		vn, val, gen, cfg := r.view(q.Txn)
		return ReadResp{OK: true, VN: vn, Val: val, Gen: gen, Cfg: cfg}
	case WriteReq:
		r := s.replicas[q.Item]
		if r == nil {
			return WriteResp{}
		}
		if !r.canLock(q.Txn, LockWrite) {
			return WriteResp{Busy: true}
		}
		r.grant(q.Txn, LockWrite)
		r.intents = append(r.intents, intent{owner: q.Txn, vn: q.VN, val: q.Val})
		return WriteResp{OK: true}
	case ConfigWriteReq:
		r := s.replicas[q.Item]
		if r == nil {
			return WriteResp{}
		}
		if !r.canLock(q.Txn, LockWrite) {
			return WriteResp{Busy: true}
		}
		r.grant(q.Txn, LockWrite)
		r.intents = append(r.intents, intent{owner: q.Txn, isConfig: true, gen: q.Gen, cfg: q.Cfg.Clone()})
		return WriteResp{OK: true}
	case RepairReq:
		r := s.replicas[q.Item]
		if r == nil {
			return Ack{}
		}
		// Safe when strictly newer and no writer is in flight: the repair
		// only advances the committed state to a value that is already
		// committed at a write-quorum, which every quorum read would
		// return anyway. Read locks do not block it.
		writerInFlight := len(r.intents) > 0
		for _, m := range r.locks {
			if m == LockWrite {
				writerInFlight = true
			}
		}
		if q.VN > r.vn && !writerInFlight {
			r.vn, r.val = q.VN, q.Val
		}
		return Ack{OK: true}
	case InspectReq:
		r := s.replicas[q.Item]
		if r == nil {
			return InspectResp{}
		}
		return InspectResp{
			OK: true, VN: r.vn, Val: r.val, Gen: r.gen, Cfg: r.cfg.Clone(),
			Locks: len(r.locks), Intents: len(r.intents),
		}
	case CommitSubReq:
		for _, r := range s.replicas {
			r.promote(q.Txn)
		}
		return Ack{OK: true}
	case AbortReq:
		for _, r := range s.replicas {
			r.drop(q.Txn)
		}
		return Ack{OK: true}
	case CommitTopReq:
		if !s.appliedTop[q.Txn] {
			s.appliedTop[q.Txn] = true
			for _, r := range s.replicas {
				r.applyTop(q.Txn)
			}
		}
		return Ack{OK: true}
	default:
		return Ack{OK: false}
	}
}
