package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/commit"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/shard"
	"repro/internal/transport"
)

// ItemSpec describes one replicated logical data item: its initial value,
// the DMs that replicate it, and its initial quorum configuration.
type ItemSpec struct {
	Name    string
	Initial any
	DMs     []string
	Config  quorum.Config
}

// Stats aggregates client-side operation metrics.
type Stats struct {
	Reads       metrics.Counter
	Writes      metrics.Counter
	Commits     metrics.Counter
	Aborts      metrics.Counter
	Restarts    metrics.Counter
	BusyRetries metrics.Counter
	Repairs     metrics.Counter
	// Hedges counts duplicate request copies sent to replicas that had not
	// answered within the hedge delay.
	Hedges metrics.Counter
	// ExtraLockReleases counts read-phase locks retracted because the
	// fan-out assembled its quorum without them.
	ExtraLockReleases metrics.Counter
	ReadLatency       metrics.Histogram
	WriteLatency      metrics.Histogram
	TxnLatency        metrics.Histogram
	// ReadPhaseLatency and WritePhaseLatency time individual quorum
	// phases (one fan-out or one sequential quorum attempt), hedges
	// included; ControlLatency times commit/abort propagation rounds.
	ReadPhaseLatency  metrics.Histogram
	WritePhaseLatency metrics.Histogram
	ControlLatency    metrics.Histogram
	// Recoveries counts DM state machines rebuilt from a write-ahead log
	// (at Open of a non-empty log and at every RestartDM);
	// ReplayedRecords totals the log records those recoveries re-applied.
	Recoveries      metrics.Counter
	ReplayedRecords metrics.Counter
	// LeaseRenewals counts successful synchronous lease-renewal rounds
	// (pre-commit fences and background keep-alives); LeaseExpiries counts
	// transactions that failed the fence — some DM had already resolved or
	// reaped them — and were aborted and restarted.
	LeaseRenewals metrics.Counter
	LeaseExpiries metrics.Counter
	// OrphanReapsAborted and OrphanReapsCommitted count lease-reaper
	// resolutions of orphaned transactions: presumed aborts, and commits
	// re-served from a peer's resolution record. ResolutionQueries counts
	// the peer inquiries that preceded them.
	OrphanReapsAborted   metrics.Counter
	OrphanReapsCommitted metrics.Counter
	ResolutionQueries    metrics.Counter
	// CircuitOpens counts replica circuits opened by the failure detector;
	// SuspectReplicas gauges how many are open right now. ProbeTrials
	// counts half-open probe copies sent to suspects; SuspectSkips counts
	// fan-out sends avoided because the target was suspect.
	CircuitOpens    metrics.Counter
	SuspectReplicas metrics.Gauge
	ProbeTrials     metrics.Counter
	SuspectSkips    metrics.Counter
	// AntiEntropySweeps counts sweeper passes; AntiEntropyRepairs the
	// repair messages those passes pushed to stale replicas.
	AntiEntropySweeps  metrics.Counter
	AntiEntropyRepairs metrics.Counter
	// Overload protection (DESIGN.md §7). AdmissionSheds counts replies
	// where a DM rejected the request at its bounded queue;
	// ExpiredOnArrival counts replies where a DM discarded the request at
	// dequeue because its propagated deadline had passed.
	AdmissionSheds   metrics.Counter
	ExpiredOnArrival metrics.Counter
	// RetryBudgetDenied counts retries the token-bucket retry budget
	// refused; BrownoutEntries counts transitions into read-only degraded
	// mode and BrownoutWrites the write operations refused while in it.
	// InflightLimit gauges the AIMD limiter's current in-flight ceiling;
	// QueueDepth histograms the admission queue depths observed at DMs.
	RetryBudgetDenied metrics.Counter
	BrownoutEntries   metrics.Counter
	BrownoutWrites    metrics.Counter
	InflightLimit     metrics.Gauge
	QueueDepth        metrics.IntHistogram
	// AntiEntropySweepErrors counts sweeper passes that returned an error
	// (some replica unreachable mid-sweep). The background loop used to
	// swallow these silently; tests assert an error budget against it.
	AntiEntropySweepErrors metrics.Counter
	// Freshness-hint fast lane (DESIGN.md §9). HintReads counts
	// single-replica read attempts; HintHits the ones served from a live
	// hint, HintMisses the fallbacks to the quorum path. HintGrants counts
	// sweeper grant rounds pushed to replicas; HintFences counts write-path
	// fence rounds completed before commit points, and HintFenceMisses the
	// unreachable replicas a fence could not revoke (waited out under the
	// wall clock, counted and proceeded under a manual one).
	HintReads       metrics.Counter
	HintHits        metrics.Counter
	HintMisses      metrics.Counter
	HintGrants      metrics.Counter
	HintFences      metrics.Counter
	HintFenceMisses metrics.Counter
	// Sharded placement (DESIGN.md §10). WrongShardRedirects counts
	// redirects absorbed from retired replicas after a live migration;
	// Migrations counts MigrateItem cutovers this client completed.
	WrongShardRedirects metrics.Counter
	Migrations          metrics.Counter
	// Paxos Commit (DESIGN.md §11). PaxosAccepts counts durable ballot-0
	// acceptances coordinators collected; PaxosCommits counts commit
	// decisions reached through an acceptor majority on the clean path.
	// AcceptorRecoveries counts recovery rounds DMs started over orphaned
	// instances; AcceptorResolvesCommitted / AcceptorResolvesAborted count
	// outcomes those rounds decided — decisions learned via acceptors,
	// versus OrphanReaps*, outcomes learned by TTL-bounded lease reaping.
	PaxosAccepts              metrics.Counter
	PaxosCommits              metrics.Counter
	AcceptorRecoveries        metrics.Counter
	AcceptorResolvesCommitted metrics.Counter
	AcceptorResolvesAborted   metrics.Counter
	// Storage-fault tolerance (DESIGN.md §12). Quarantines counts replicas
	// that entered quarantine (a corrupt log at open, or a failed append at
	// runtime); Rebuilds counts successful peer rebuilds and RebuiltItems
	// totals the items those rebuilds restored. ResolvedEvictions counts
	// resolution records the retention cap compacted down to outcome
	// tombstones.
	Quarantines       metrics.Counter
	Rebuilds          metrics.Counter
	RebuiltItems      metrics.Counter
	ResolvedEvictions metrics.Counter
}

// Store is the client handle to a replicated store: it owns the DM server
// nodes and executes nested transactions against them.
type Store struct {
	tr     transport.Transport
	client transport.Client
	opts   settings

	items map[string]ItemSpec
	dms   map[string]*dmHandle

	mu       sync.Mutex
	rng      *rand.Rand
	believed map[string]genCfg

	// ring is this client's view of the consistent-hash placement, nil for
	// unsharded stores. Guarded by mu. Migration cutovers and WrongShard
	// redirects advance it; its epoch invalidates the freshness-hint cache,
	// so a hint primed before a migration can never serve after one.
	ring *shard.Ring

	// jitter feeds backoff sleeps and nothing else. It is separate from
	// rng because backoff is reached from concurrent control goroutines:
	// were they to share rng with quorum selection, the scheduling order
	// of their draws would reshuffle the quorum stream and break seeded
	// replay. Jitter order still varies, but jitter only shapes time.
	jitterMu sync.Mutex
	jitter   *rand.Rand

	// clientID prefixes every transaction ID issued by this client so IDs
	// from different clients of the same cluster never alias in the DMs'
	// lock tables.
	clientID string
	txnSeq   atomic.Uint64

	// detached counts control goroutines (commit/abort sweeps to replicas
	// whose ack the outcome does not need) still in flight. Close waits
	// them out: with durable replicas a resolution that dies with the
	// process would leave its locks held in the logs forever. detachMu
	// guards detachClosing: once Close decided to drain, no new sweep may
	// detach — a late Add would race the Wait, and the sweep's sends would
	// race the transport teardown.
	detached      sync.WaitGroup
	detachMu      sync.Mutex
	detachClosing bool

	// health is the failure detector's scoreboard; nil unless
	// WithHealthProbes is on.
	health *healthBoard

	// hintCache maps items to their cached fast-lane read targets
	// (WithReadLease); always usable, empty when the fast lane is off.
	hintCache hintCache

	// Overload protection (all nil/off unless the matching option armed
	// them): the retry token bucket, the AIMD in-flight limiter, and the
	// brownout state machine.
	budget  *retryBudget
	limiter *aimdLimiter
	brown   *brownout

	// closeOnce makes Close idempotent and safe to race; stopBg and bg
	// manage the background goroutines (lease renewer, anti-entropy loop).
	closeOnce sync.Once
	stopBg    chan struct{}
	bg        sync.WaitGroup

	// openTxns tracks in-flight top-level transactions for the background
	// lease renewer (guarded by mu); orphanSeq numbers PlantOrphan ids.
	openTxns  map[TxnID]*Txn
	orphanSeq atomic.Uint64

	Stats Stats

	// Hooks are test-only fault-injection points; leave zero in production
	// use. The chaos harness's self-test uses them to plant a bug and
	// assert the history checker catches it.
	Hooks Hooks
}

// Hooks are test-only fault-injection points on a Store.
type Hooks struct {
	// MutateWriteVN, when set, rewrites the version number a logical write
	// is about to install. The returned version is both sent to the
	// replicas and recorded in the attached history, so a mutation that
	// masks a version increment surfaces as a duplicate install to the
	// checker — the harness's detector-of-the-detector.
	MutateWriteVN func(item string, vn int) int
	// BeforeCommitTop, when set, runs immediately before the transaction's
	// CommitTopReq broadcast — after the commit decision, before any DM
	// hears it. Durability tests use it to crash replicas exactly inside
	// the commit-point window.
	BeforeCommitTop func(txn TxnID)
	// SweepBarrier, when set, runs after each replica inspection during
	// SweepOnce. An inspection doubles as an orphan sweep at the DM, which
	// may fire an asynchronous inquiry/recovery cascade; the deterministic
	// chaos harness sets this to the network's quiesce barrier so each
	// DM's cascade fully drains before the next DM is inspected — cascade
	// interleaving across DMs would otherwise fork counters on near-tie
	// message latencies.
	SweepBarrier func()
}

// dmHandle tracks one DM server the store spawned: its serving endpoint,
// state machine, hosted items, and (for durable stores) its write-ahead
// log. stopped marks handles torn down early (StopDM) so Close skips them.
type dmHandle struct {
	id      string
	items   []ItemSpec
	server  transport.Server
	srv     *dmServer
	wal     *dmWAL // nil on volatile stores and quarantined handles
	stopped bool

	// walPath is the DM's log directory, "" on volatile stores. It outlives
	// the log handle so RestartDM and RebuildReplica know where the durable
	// state lives even while the slot is quarantined (wal == nil).
	walPath string
	// quarantined, when non-nil, records why this handle came up refusing
	// service: its log failed to open with a CorruptionError. Runtime
	// quarantines live in wal.quarErr instead; quarantineReason merges both.
	quarantined error
}

// quarantineReason reports why this replica is quarantined, nil if healthy.
// It covers both flavors: a handle born quarantined (corrupt log at open)
// and a live handle whose log failed an append.
func (h *dmHandle) quarantineReason() error {
	if h.quarantined != nil {
		return h.quarantined
	}
	if h.wal != nil {
		return h.wal.quarantined()
	}
	return nil
}

type genCfg struct {
	gen int
	cfg quorum.Config
}

// Open spawns one DM server per replica and a client endpoint on the
// given transport, returning the store handle. Any transport.Transport
// works: a *sim.Network for deterministic in-process clusters, a
// tcp.Transport for real sockets.
func Open(tr transport.Transport, items []ItemSpec, opts ...Option) (*Store, error) {
	return newStore(tr, items, resolve(opts), true)
}

// OpenClient attaches an additional, independent client to a cluster whose
// DM servers were already spawned — by Open over the same transport, by
// ServeDM in other processes, or any mix. Each client keeps its own cached
// configurations, so reconfigurations performed through one client are
// discovered by others via the generation-number chase of the read rule —
// the realistic stale-client scenario of Section 4.
func OpenClient(tr transport.Transport, items []ItemSpec, opts ...Option) (*Store, error) {
	return newStore(tr, items, resolve(opts), false)
}

func newStore(tr transport.Transport, items []ItemSpec, st settings, spawnServers bool) (*Store, error) {
	s := &Store{
		tr:       tr,
		opts:     st,
		items:    map[string]ItemSpec{},
		dms:      map[string]*dmHandle{},
		rng:      rand.New(rand.NewSource(st.seed)),
		jitter:   rand.New(rand.NewSource(st.seed ^ 0x5DEECE66D)),
		believed: map[string]genCfg{},
	}
	if st.health {
		s.health = newHealthBoard(&s.Stats, st.fixedTimeout)
	}
	s.budget = newRetryBudget(st.retryRatio)
	s.limiter = newAIMDLimiter(st.inflightMax)
	s.brown = newBrownout(st.brownoutAfter)
	if s.limiter != nil {
		s.Stats.InflightLimit.Set(int64(s.limiter.ceiling()))
	}
	s.stopBg = make(chan struct{})
	if st.ring != nil {
		s.ring = st.ring.Clone()
		s.hintCache.setEpoch(s.ring.Epoch)
	}
	// Validation first, then spawning: the lease reaper needs every DM to
	// know its full peer set, which only exists once all items are walked.
	// Items are grouped per DM — one replica hosts every item whose spec
	// names it — so a sharded keyspace spawns one multi-item server per
	// replica-group member rather than one server per (item, replica) pair.
	type dmSite struct {
		id    string
		items []ItemSpec
	}
	var sites []dmSite
	siteIdx := map[string]int{}
	for _, it := range items {
		if err := it.Config.Validate(it.DMs); err != nil {
			return nil, fmt.Errorf("cluster: item %q: %w", it.Name, err)
		}
		if _, dup := s.items[it.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate item %q", it.Name)
		}
		s.items[it.Name] = it
		s.believed[it.Name] = genCfg{gen: 0, cfg: it.Config}
		if !spawnServers {
			continue
		}
		for _, dm := range it.DMs {
			i, ok := siteIdx[dm]
			if !ok {
				i = len(sites)
				siteIdx[dm] = i
				sites = append(sites, dmSite{id: dm})
			}
			sites[i].items = append(sites[i].items, it)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].id < sites[j].id })
	allDMs := make([]string, 0, len(sites))
	for _, site := range sites {
		allDMs = append(allDMs, site.id)
	}
	abandon := func() {
		for _, h := range s.dms {
			h.server.Close()
			if h.wal != nil {
				h.wal.log.Close()
			}
		}
	}
	for _, site := range sites {
		wire := s.leaseWiring(site.id, peersOf(site.id, allDMs))
		if st.walDir == "" {
			srv := newDMState(site.id, site.items)
			wire(srv)
			server, err := tr.Serve(site.id, asyncify(srv.handle), s.dmServeOpts(site.id)...)
			if err != nil {
				abandon()
				return nil, fmt.Errorf("cluster: serve DM %s: %w", site.id, err)
			}
			// The peer-gossip sender binds after Serve: setSender is the
			// documented late-binding hook, and an inquiry fired into the
			// gap is re-sent once its poll goes stale.
			srv.setSender(server.Notify)
			s.dms[site.id] = &dmHandle{
				id: site.id, items: site.items, srv: srv, server: server,
			}
			continue
		}
		h, stats, err := newDurableDM(tr, site.id, site.items, filepath.Join(st.walDir, site.id), st.walOpts, st.snapEvery, wire, s.dmServeOpts(site.id)...)
		if err != nil {
			abandon()
			return nil, err
		}
		s.dms[site.id] = h
		if h.quarantined != nil {
			// The slot came up quarantined (corrupt log at open): it serves
			// QuarantinedResp until RebuildReplica pulls fresh state from its
			// peers. Opening the store still succeeds — one bad disk must not
			// take down the cluster.
			s.Stats.Quarantines.Inc()
			continue
		}
		if stats.Replayed > 0 || stats.FromSnapshot {
			s.Stats.Recoveries.Inc()
			s.Stats.ReplayedRecords.Add(int64(stats.Replayed))
		}
	}
	s.clientID = fmt.Sprintf("c%d", clientSeq.Add(1))
	if spawnServers && st.walDir != "" {
		// Durable replicas remember resolved transaction ids across process
		// restarts, but clientSeq does not: a fresh process would mint c1
		// again and its c1.t1 would collide with a transaction the recovered
		// DMs already resolved. A persisted epoch, bumped once per durable
		// Open, keeps transaction ids unique across the directory's lifetime.
		epoch, err := bumpEpoch(st.walDir)
		if err != nil {
			return nil, err
		}
		s.clientID = fmt.Sprintf("e%d%s", epoch, s.clientID)
	}
	if st.clientTag != "" {
		// The tag goes outermost: it separates processes, the epoch and
		// sequence separate clients and restarts within one.
		s.clientID = st.clientTag + s.clientID
	}
	client, err := tr.Client(fmt.Sprintf("client-%s-%d", s.clientID, st.seed))
	if err != nil {
		abandon()
		return nil, fmt.Errorf("cluster: client endpoint: %w", err)
	}
	s.client = client
	if st.leaseTTL > 0 && st.clock == transport.Wall {
		// The background renewer exists for wall-clock deployments only:
		// under a manual clock (deterministic harnesses) time moves between
		// rounds, and a timer-driven renewal would fork seeded replays.
		s.bg.Add(1)
		go s.leaseRenewer()
	}
	if st.antiEntropy > 0 {
		s.bg.Add(1)
		go s.antiEntropyLoop()
	}
	return s, nil
}

// asyncify adapts a synchronous DM handler to the transport.Handler shape.
// The reply function is invoked before asyncify returns, so the actor
// discipline (one request at a time on the serving goroutine) holds.
func asyncify(h func(from string, req any) any) transport.Handler {
	return func(from string, req any, reply func(resp any)) {
		reply(h(from, req))
	}
}

// leaseWiring builds the pre-start configuration hook for one DM: lease
// parameters and the peer set for resolution inquiries. The peer-gossip
// sender itself is bound after Serve returns (srv.setSender(server.Notify))
// — setSender is guarded for exactly this late binding.
func (s *Store) leaseWiring(id string, peers []string) func(*dmServer) {
	return func(srv *dmServer) {
		srv.configureLeases(s.opts.leaseTTL, s.opts.clock, peers, &s.Stats)
		srv.configureRetention(s.opts.resolvedRetention)
		if s.opts.readLease {
			// Configured here — after recovery replay on durable DMs — so a
			// rebuilt replica starts with no hints and must re-prove freshness.
			srv.configureHints(s.opts.readLeaseTTL)
		}
		if s.opts.ring != nil {
			srv.configureRing(s.opts.ring)
		}
	}
}

// dmServeOpts builds the transport serve options for one DM the store
// spawns: with WithAdmissionCapacity armed, the server gets a bounded
// priority service queue that rejects shed and expired work with an
// explicit OverloadedResp naming the DM. Empty otherwise.
func (s *Store) dmServeOpts(dm string) []transport.ServeOption {
	return serveOptsFor(s.opts, dm, &s.Stats)
}

// serveOptsFor is dmServeOpts for any host of a DM — the Store and the
// standalone ServeDM share it, so a process-hosted replica sheds load
// exactly as a store-spawned one would.
func serveOptsFor(st settings, dm string, stats *Stats) []transport.ServeOption {
	if st.admitCap <= 0 {
		return nil
	}
	return []transport.ServeOption{transport.WithAdmission(transport.AdmissionConfig{
		Capacity:     st.admitCap,
		Classify:     classifyRequest,
		Reject:       func(req any, expired bool) any { return OverloadedResp{DM: dm, Expired: expired} },
		Clock:        st.clock,
		ServiceDelay: st.serviceTime,
		ServeExpired: st.admitServeExpired,
		OnDepth:      func(d int) { stats.QueueDepth.Observe(int64(d)) },
	})}
}

// goDetached runs fn as a detached background sweep registered with the
// close drain, or reports false once Close began draining — racing a
// WaitGroup.Add against its Wait is undefined, and the sweep's sends would
// race the transport teardown. A refused caller runs the sweep bounded by
// its own context instead.
func (s *Store) goDetached(fn func()) bool {
	s.detachMu.Lock()
	if s.detachClosing {
		s.detachMu.Unlock()
		return false
	}
	s.detached.Add(1)
	s.detachMu.Unlock()
	go func() {
		defer s.detached.Done()
		fn()
	}()
	return true
}

// peersOf returns all of the cluster's DMs except id, sorted.
func peersOf(id string, all []string) []string {
	out := make([]string, 0, len(all))
	for _, dm := range all {
		if dm != id {
			out = append(out, dm)
		}
	}
	return out
}

// now reads the store's clock (wall by default, manual in deterministic
// harnesses).
func (s *Store) now() time.Time { return s.opts.clock.Now() }

// observeDM feeds one call outcome to the failure detector, when present.
func (s *Store) observeDM(dm string, ok bool, rtt time.Duration) {
	if s.health != nil {
		s.health.observe(dm, ok, rtt)
	}
}

// clientSeq hands out process-unique client numbers; it exists solely to
// keep transaction IDs from distinct clients disjoint.
var clientSeq atomic.Uint64

// bumpEpoch increments the restart epoch persisted at dir/epoch and
// returns the new value. The write is tmp+rename so a crash mid-bump
// leaves either the old or the new epoch, never a torn file.
func bumpEpoch(dir string) (uint64, error) {
	path := filepath.Join(dir, "epoch")
	var e uint64
	if b, err := os.ReadFile(path); err == nil {
		fmt.Sscanf(strings.TrimSpace(string(b)), "%d", &e)
	}
	e++
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", e)), 0o644); err != nil {
		return 0, fmt.Errorf("cluster: persist client epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("cluster: persist client epoch: %w", err)
	}
	return e, nil
}

// Close shuts down the client and server nodes and closes any write-ahead
// logs, flushing their tails. Idempotent and safe to call concurrently:
// the first call does the work, the rest wait for nothing and return.
func (s *Store) Close() {
	s.closeOnce.Do(s.doClose)
}

func (s *Store) doClose() {
	// Stop the background goroutines (lease renewer, anti-entropy sweeper)
	// first so they do not issue new traffic into a closing cluster.
	close(s.stopBg)
	s.bg.Wait()
	// An orderly Close is not a crash (net.Crash models those, and loses
	// exactly what a crash may lose). Bar new detachments, wait out the
	// detached commit/abort sweeps already in flight, then let the
	// transport finish delivering their traffic and any fire-and-forget
	// releases, so durable replicas log every resolution the client
	// believes delivered before their WALs close.
	s.detachMu.Lock()
	s.detachClosing = true
	s.detachMu.Unlock()
	s.detached.Wait()
	s.tr.Quiesce()
	s.client.Close()
	s.mu.Lock()
	handles := make([]*dmHandle, 0, len(s.dms))
	for _, h := range s.dms {
		if !h.stopped {
			handles = append(handles, h)
		}
	}
	s.mu.Unlock()
	for _, h := range handles {
		h.server.Close()
		if h.wal != nil {
			h.wal.log.Close()
		}
	}
}

// StopDM tears down one DM server the store spawned without any recovery:
// its endpoint closes (orderly — requests already delivered are served)
// and, for durable stores, its write-ahead log is flushed and closed. The
// replica is gone until RestartDM (durable stores) brings it back; to the
// rest of the cluster it is indistinguishable from a dead peer. Transport-
// neutral harness device: sim tests also have net.Crash, which models the
// messier amnesia fate.
func (s *Store) StopDM(id string) error {
	s.mu.Lock()
	h := s.dms[id]
	if h != nil && h.stopped {
		s.mu.Unlock()
		return nil
	}
	if h != nil {
		h.stopped = true
	}
	s.mu.Unlock()
	if h == nil {
		return fmt.Errorf("cluster: unknown DM %q", id)
	}
	h.server.Close()
	if h.wal != nil {
		h.wal.log.Close()
	}
	return nil
}

// ClientNode returns the network node id of this store's client, so test
// harnesses can aim partitions at the client side of the cluster.
func (s *Store) ClientNode() string { return s.client.ID() }

// Items returns the store's current item specs — the opened set, with any
// live-migration relocations applied.
func (s *Store) Items() []ItemSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ItemSpec, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// traceEvent records an event when tracing is enabled.
func (s *Store) traceEvent(actor, kind, format string, args ...any) {
	if s.opts.trace != nil {
		s.opts.trace.Add(actor, kind, format, args...)
	}
}

func (s *Store) config(item string) genCfg {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.believed[item]
}

// itemSpec reads the store's current spec for item under the mutex. Specs
// are no longer immutable after Open: a live migration rewrites an item's
// replica set in place, so every phase re-resolves through here instead of
// touching the map directly.
func (s *Store) itemSpec(item string) (ItemSpec, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[item]
	return it, ok
}

// Ring returns a copy of the store's current placement view, or nil for
// unsharded stores.
func (s *Store) Ring() *shard.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return nil
	}
	return s.ring.Clone()
}

// relocateItem rewrites the client's view of where item lives: its replica
// set, believed generation/config, and (when the store is sharded) the
// ring override pinning it to the new group. Every freshness hint is
// dropped when the ring epoch advances — a hint primed against the old
// replica group must not serve after the move. Generation numbers only go
// forward, so a stale redirect (or a racing pair of them) cannot regress a
// newer placement.
// RingEpoch returns the store's current placement epoch (0 unsharded) —
// cheaper than Ring() when only staleness is being checked.
func (s *Store) RingEpoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return 0
	}
	return s.ring.Epoch
}

func (s *Store) relocateItem(item string, dms []string, gen int, cfg quorum.Config, group string, epoch int) {
	s.mu.Lock()
	if it, ok := s.items[item]; ok {
		if cur := s.believed[item]; gen >= cur.gen {
			it.DMs = append([]string(nil), dms...)
			it.Config = cfg.Clone()
			s.items[item] = it
			s.believed[item] = genCfg{gen: gen, cfg: cfg.Clone()}
		}
	}
	ringEpoch := 0
	if s.ring != nil && group != "" {
		if _, ok := s.ring.Group(group); ok && s.ring.Lookup(item) != group {
			_ = s.ring.MoveKey(item, group)
		}
		if epoch > s.ring.Epoch {
			s.ring.Epoch = epoch
		}
		ringEpoch = s.ring.Epoch
	}
	s.mu.Unlock()
	if ringEpoch > 0 {
		s.hintCache.setEpoch(ringEpoch)
	}
	s.hintCache.drop(item)
}

// adoptRedirect folds a WrongShard redirect into the client's placement
// view and reports whether it taught the client anything new — a fresh
// generation or a different replica set. A redirect that changes nothing
// means the client already believes the placement the marker names, so
// retrying under it cannot make progress.
func (s *Store) adoptRedirect(w WrongShardResp) bool {
	it, _ := s.itemSpec(w.Item)
	cur := s.config(w.Item)
	changed := w.Gen > cur.gen || !sameStrings(it.DMs, w.DMs)
	s.relocateItem(w.Item, w.DMs, w.Gen, w.Cfg, w.Group, w.Epoch)
	return changed
}

// sameStrings reports order-insensitive set equality of two DM lists.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// ForgetConfig resets the client's cached configuration for item to the
// initial one, simulating a client that has not heard about
// reconfigurations; the next read phase rediscovers the current
// configuration by chasing generation numbers.
func (s *Store) ForgetConfig(item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[item]; ok {
		s.believed[item] = genCfg{gen: 0, cfg: it.Config}
	}
}

func (s *Store) observeConfig(item string, gen int, cfg quorum.Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.believed[item]; !ok || gen > cur.gen {
		s.believed[item] = genCfg{gen: gen, cfg: cfg.Clone()}
	}
}

// shuffledQuorums returns the quorums in a random order, smallest first
// among equal random keys so cheap quorums are preferred. Used by the
// sequential ablation path.
func (s *Store) shuffledQuorums(qs []quorum.Set) []quorum.Set {
	out := append([]quorum.Set(nil), qs...)
	s.mu.Lock()
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	if s.health != nil {
		// Steer: quorums with the fewest suspect members first, keeping the
		// shuffled small-first order among equals.
		out = s.health.orderQuorums(out)
	}
	return out
}

// backoff sleeps for the attempt-scaled, jittered backoff or until ctx
// expires. The jitter breaks restart symmetry between conflicting
// transactions, which plain linear backoff can lock into livelock.
func (s *Store) backoff(ctx context.Context, attempt int) {
	base := s.opts.retryBackoff * time.Duration(attempt+1)
	s.jitterMu.Lock()
	d := base/2 + time.Duration(s.jitter.Int63n(int64(base)))
	s.jitterMu.Unlock()
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// touchLevel grades how certain the client is that a DM holds state for
// the transaction.
type touchLevel int

const (
	// touchMaybe: a request copy to the DM was abandoned in flight — it
	// may have granted after the phase completed. Control messages are
	// sent best-effort; the DM owes us nothing we can prove.
	touchMaybe touchLevel = iota + 1
	// touchGranted: the DM acknowledged a lock grant but buffered no
	// intention — it holds nothing a commit needs, only locks that should
	// be swept. Its commit ack is pursued but not required; aborts and
	// subtransaction promotions still demand it.
	touchGranted
	// touchWritten: the DM acknowledged a write-phase grant and buffers an
	// intention. The top-level commit must be acknowledged by every such
	// DM or the operation fails.
	touchWritten
)

// Txn is a (possibly nested) transaction handle. A Txn is not safe for
// concurrent use; run concurrent work in subtransactions via Sub or
// separate top-level transactions.
type Txn struct {
	store *Store
	id    TxnID

	mu       sync.Mutex
	touched  map[string]touchLevel
	childSeq int
	phaseSeq int
	done     bool
	ops      []checker.Op
	subs     []TxnID

	// wroteItems names the items this transaction (or a promoted child)
	// buffered writes for; the pre-commit hint fence revokes freshness
	// hints at every replica of each one (WithReadLease).
	wroteItems map[string]bool

	// wroteVNs maps each written item to the final version number this
	// transaction's committed tree installed — the commit broadcast carries
	// it so only replicas holding that exact version self-grant a
	// freshness hint (a multi-write transaction's earlier versions may sit
	// at replicas its later write quorums never touched).
	wroteVNs map[string]int

	// leaseStamp is the last time this client knowingly (re)stamped the
	// transaction's leases everywhere — at creation (no leases exist yet)
	// and after each successful renewLeases round. The pre-commit fence
	// skips its renewal round when the stamp is fresher than TTL/2.
	leaseStamp time.Time
}

// ID returns the transaction's hierarchical identifier.
func (t *Txn) ID() TxnID { return t.id }

func (t *Txn) touch(dm string) {
	t.mu.Lock()
	if t.touched[dm] < touchGranted {
		t.touched[dm] = touchGranted
	}
	t.mu.Unlock()
}

// touchWrite records a DM that granted a write phase and now buffers an
// intention for the transaction.
func (t *Txn) touchWrite(dm string) {
	t.mu.Lock()
	t.touched[dm] = touchWritten
	t.mu.Unlock()
}

// touchTentative records a DM an abandoned in-flight request copy may have
// granted at. A confirmed grant always outranks it.
func (t *Txn) touchTentative(dm string) {
	t.mu.Lock()
	if t.touched[dm] < touchMaybe {
		t.touched[dm] = touchMaybe
	}
	t.mu.Unlock()
}

func (t *Txn) touchedDMs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.touched))
	for dm := range t.touched {
		out = append(out, dm)
	}
	sort.Strings(out)
	return out
}

// controlSets partitions the touched DMs by how much the transaction's
// resolution owes them: written DMs buffer intentions, granted DMs hold
// only locks, tentative DMs may hold a late grant from an abandoned
// request copy.
func (t *Txn) controlSets() (written, granted, tentative []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for dm, lvl := range t.touched {
		switch {
		case lvl >= touchWritten:
			written = append(written, dm)
		case lvl >= touchGranted:
			granted = append(granted, dm)
		default:
			tentative = append(tentative, dm)
		}
	}
	sort.Strings(written)
	sort.Strings(granted)
	sort.Strings(tentative)
	return written, granted, tentative
}

// record logs one logical operation for the attached history recorder.
// Ops accumulate on the transaction and reach the recorder only if the
// top level commits; Sub adopts a child's ops only when the child
// promotes, so aborted effects never pollute the history.
func (t *Txn) record(kind checker.Kind, item string, val any, vn int, start time.Time) {
	if t.store.opts.history == nil {
		return
	}
	t.mu.Lock()
	t.ops = append(t.ops, checker.Op{Kind: kind, Item: item, Value: val, VN: vn, Start: start})
	t.mu.Unlock()
}

// adoptOps appends a promoted child's operation log to the parent's.
func (t *Txn) adoptOps(child *Txn) {
	if t.store.opts.history == nil {
		return
	}
	child.mu.Lock()
	ops := append([]checker.Op(nil), child.ops...)
	child.mu.Unlock()
	t.mu.Lock()
	t.ops = append(t.ops, ops...)
	t.mu.Unlock()
}

// nextSeq issues the transaction's next quorum-phase sequence number.
// Seq numbers order a transaction's phases at each DM, letting a
// ReleaseReq tombstone exactly one phase.
func (t *Txn) nextSeq() int {
	t.mu.Lock()
	t.phaseSeq++
	s := t.phaseSeq
	t.mu.Unlock()
	return s
}

// writeSet records one successful write phase: the item, the quorum sets
// the phase was judged against, and the DMs that granted (and so buffer
// an intention). The top-level commit is decided against these: it
// succeeds when every write phase has a complete quorum among the DMs
// that acknowledged the commit.
// adoptSubs records a committed child (and its own committed subs) on the
// parent, so the top-level CommitTopReq can name every committed
// subtransaction in the tree.
func (t *Txn) adoptSubs(child *Txn) {
	child.mu.Lock()
	ids := append([]TxnID{child.id}, child.subs...)
	child.mu.Unlock()
	t.mu.Lock()
	t.subs = append(t.subs, ids...)
	t.mu.Unlock()
}

// committedSubs snapshots the transaction's committed-subtransaction ids.
func (t *Txn) committedSubs() []TxnID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TxnID(nil), t.subs...)
}

// readResult aggregates a completed read phase.
type readResult struct {
	vn  int
	val any
	gen int
	cfg quorum.Config
}

// readPhase assembles a read-quorum of the item's current configuration,
// chasing generation numbers upward as newer configurations are discovered
// (Section 4's read rule), and returns the highest-version value seen.
//
// The fan-out path broadcasts to every replica any read-quorum mentions
// and completes on the first covered quorum; versions are folded over the
// winning quorum only, because grants beyond it are released (folding a
// released replica's value would use state no lock protects, breaking
// two-phase locking). Quorum intersection makes the winner sufficient:
// any read-quorum contains the highest version any write-quorum committed.
func (t *Txn) readPhase(ctx context.Context, item string, mode LockMode) (readResult, error) {
	it, ok := t.store.itemSpec(item)
	if !ok {
		return readResult{}, fmt.Errorf("cluster: unknown item %q", item)
	}
	// The fast lane sits ahead of both assembly strategies (fan-out and the
	// sequential ablation): one hinted replica first, any miss falls
	// through to the quorum path below without surfacing an error. Only
	// plain read locks qualify — update locking (LockWrite) is a write's
	// first phase and must assemble the quorum that serializes writers.
	if t.store.opts.readLease && mode == LockRead {
		if res, ok := t.tryHintRead(ctx, item); ok {
			return res, nil
		}
	}
	if t.store.opts.sequential {
		return t.readPhaseSequential(ctx, item, mode)
	}
	believed := t.store.config(item)
	res := readResult{val: it.Initial, gen: believed.gen, cfg: believed.cfg}
	sawBusy := false
	budgetDenied := false
	attempts := 0
	var lastCol *collector
	var lastTargets []string
	for attempt := 0; attempt <= t.store.opts.lockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return readResult{}, err
		}
		if attempt == 0 {
			t.store.budget.deposit()
		} else if !t.store.budget.allow() {
			// The retry budget is dry: retry traffic already runs at its
			// allowed fraction of first-attempt traffic, so piling on more
			// would amplify the very overload causing the retries.
			t.store.Stats.RetryBudgetDenied.Inc()
			budgetDenied = true
			break
		}
		attempts++
		start := time.Now()
		seq := t.nextSeq()
		spec := phaseSpec{
			item:    item,
			targets: union(believed.cfg.R),
			quorums: believed.cfg.R,
			req:     ReadReq{Txn: t.id, Item: item, Lock: mode, Seq: seq},
			seq:     seq,
		}
		col := t.runPhase(ctx, spec)
		t.store.Stats.ReadPhaseLatency.ObserveSince(start)
		t.settlePhase(spec, col)
		lastCol, lastTargets = col, spec.targets
		if col.sawBusy() {
			sawBusy = true
		}
		// Generation discovery may use every grant, winner or not: a newer
		// generation only redirects the next attempt, which assembles a
		// proper quorum of the newer configuration on its own.
		for _, m := range col.grantedResps() {
			if m.resp.Gen > res.gen {
				res.gen, res.cfg = m.resp.Gen, m.resp.Cfg
				t.store.observeConfig(item, m.resp.Gen, m.resp.Cfg)
			}
		}
		win, won := col.winner()
		if won && res.gen <= believed.gen {
			winner := col.winnerResps(win)
			for _, m := range winner {
				if m.resp.VN > res.vn {
					res.vn, res.val = m.resp.VN, m.resp.Val
				}
				if m.resp.VN == res.vn && m.resp.Val != nil {
					res.val = m.resp.Val
				}
			}
			// Hinted piggyback: a winner member advertising a live hint at the
			// quorum-maximum version becomes the next read's fast-lane target.
			for _, m := range winner {
				if m.resp.Hinted && m.resp.VN == res.vn {
					t.store.noteHintTarget(item, m.dm, res.gen)
					break
				}
			}
			if t.store.opts.readRepair {
				t.store.repairStale(item, res, col.grantedResps())
			}
			return res, nil
		}
		if res.gen > believed.gen {
			// A newer configuration was installed: re-read under it
			// immediately — that is progress, not a conflict.
			believed = genCfg{gen: res.gen, cfg: res.cfg}
			continue
		}
		if w, ok := col.sawWrongShard(); ok {
			// The replicas we asked retired this item after a migration. The
			// redirect carries the new placement; adopting it and re-reading
			// is progress exactly like the generation chase above. A redirect
			// that teaches us nothing new (we already believe that placement)
			// means the marker is circular — surface it instead of looping.
			t.store.Stats.WrongShardRedirects.Inc()
			if t.store.adoptRedirect(w) {
				believed = t.store.config(item)
				if believed.gen > res.gen {
					res.gen, res.cfg = believed.gen, believed.cfg
				}
				continue
			}
			return readResult{}, &WrongShardError{
				Item: item, Txn: t.id, Phase: "read",
				Group: w.Group, Epoch: w.Epoch, DMs: append([]string(nil), w.DMs...),
			}
		}
		t.store.backoff(ctx, attempt)
	}
	if err := ctx.Err(); err != nil {
		return readResult{}, err
	}
	if sawBusy {
		return readResult{}, &ConflictError{
			Item: item, Txn: t.id, Phase: "read",
			Attempts: attempts, Responded: lastCol.respondedDMs(),
		}
	}
	if lastCol.sawShed() {
		return readResult{}, &OverloadedError{
			Item: item, Txn: t.id, Phase: "read",
			Attempts: attempts, Shed: lastCol.shedDMs(),
			Expired: lastCol.expired, BudgetDenied: budgetDenied,
		}
	}
	return readResult{}, &UnavailableError{
		Item: item, Txn: t.id, Phase: "read",
		Attempts: attempts, Responded: lastCol.respondedDMs(),
		Missing: lastCol.missingDMs(lastTargets),
	}
}

// readPhaseSequential is the seed's quorum assembly — pick one shuffled
// quorum set per attempt and query only it — kept as the ablation baseline
// (WithSequentialPhases) that the fan-out benchmarks compare against.
func (t *Txn) readPhaseSequential(ctx context.Context, item string, mode LockMode) (readResult, error) {
	it, _ := t.store.itemSpec(item)
	believed := t.store.config(item)
	res := readResult{val: it.Initial, gen: believed.gen, cfg: believed.cfg}
	sawBusy := false
	attempts := 0
	for attempt := 0; attempt <= t.store.opts.lockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return readResult{}, err
		}
		progressed := false
		for _, q := range t.store.shuffledQuorums(believed.cfg.R) {
			attempts++
			start := time.Now()
			resps, wrong, busy, ok := t.queryQuorum(ctx, item, mode, q)
			t.store.Stats.ReadPhaseLatency.ObserveSince(start)
			if busy {
				sawBusy = true
			}
			if wrong != nil {
				t.store.Stats.WrongShardRedirects.Inc()
				if t.store.adoptRedirect(*wrong) {
					believed = t.store.config(item)
					if believed.gen > res.gen {
						res.gen, res.cfg = believed.gen, believed.cfg
					}
					progressed = true
					break
				}
				return readResult{}, &WrongShardError{
					Item: item, Txn: t.id, Phase: "read",
					Group: wrong.Group, Epoch: wrong.Epoch, DMs: append([]string(nil), wrong.DMs...),
				}
			}
			for _, m := range resps {
				r := m.resp
				if r.Gen > res.gen {
					res.gen, res.cfg = r.Gen, r.Cfg
					t.store.observeConfig(item, r.Gen, r.Cfg)
				}
				if r.VN > res.vn {
					res.vn, res.val = r.VN, r.Val
				}
				if r.VN == res.vn && r.Val != nil {
					res.val = r.Val
				}
			}
			if !ok {
				continue
			}
			if res.gen > believed.gen {
				// A newer configuration was installed: re-read under it.
				believed = genCfg{gen: res.gen, cfg: res.cfg}
				progressed = true
				break
			}
			for _, m := range resps {
				if m.resp.Hinted && m.resp.VN == res.vn {
					t.store.noteHintTarget(item, m.dm, res.gen)
					break
				}
			}
			if t.store.opts.readRepair {
				t.store.repairStale(item, res, resps)
			}
			return res, nil
		}
		if !progressed {
			t.store.backoff(ctx, attempt)
		}
	}
	if err := ctx.Err(); err != nil {
		return readResult{}, err
	}
	if sawBusy {
		return readResult{}, &ConflictError{Item: item, Txn: t.id, Phase: "read", Attempts: attempts}
	}
	return readResult{}, &UnavailableError{Item: item, Txn: t.id, Phase: "read", Attempts: attempts}
}

// queryQuorum issues ReadReqs to every member of q concurrently and
// reports whether all granted and whether any refused for a lock conflict.
// Members that grant are recorded as touched (they now hold locks for the
// transaction) even if the quorum as a whole fails. Sequential-path only.
func (t *Txn) queryQuorum(ctx context.Context, item string, mode LockMode, q quorum.Set) (granted []memberResp, wrong *WrongShardResp, sawBusy, allOK bool) {
	members := q.Names()
	resps := make([]ReadResp, len(members))
	oks := make([]bool, len(members))
	wrongs := make([]*WrongShardResp, len(members))
	var wg sync.WaitGroup
	for i, dm := range members {
		wg.Add(1)
		go func(i int, dm string) {
			defer wg.Done()
			callStart := time.Now()
			budget, derr := t.store.callBudget(ctx)
			if derr != nil {
				return
			}
			cctx, cancel := context.WithTimeout(ctx, budget)
			defer cancel()
			raw, err := t.store.client.Call(cctx, dm, ReadReq{Txn: t.id, Item: item, Lock: mode})
			if err != nil {
				if ctx.Err() == nil {
					t.store.observeDM(dm, false, 0)
				}
				return
			}
			t.store.observeDM(dm, true, time.Since(callStart))
			switch resp := raw.(type) {
			case ReadResp:
				resps[i] = resp
				oks[i] = resp.OK
				if resp.Busy {
					t.store.Stats.BusyRetries.Inc()
				}
			case WrongShardResp:
				wrongs[i] = &resp
			}
		}(i, dm)
	}
	wg.Wait()
	allOK = true
	for i := range members {
		if oks[i] {
			t.touch(members[i])
			granted = append(granted, memberResp{dm: members[i], resp: resps[i]})
		} else {
			allOK = false
			if resps[i].Busy {
				sawBusy = true
			}
			if wrongs[i] != nil && wrong == nil {
				wrong = wrongs[i]
			}
		}
	}
	return granted, wrong, sawBusy, allOK
}

// repairStale fire-and-forgets the quorum read's winning (version, value)
// to the replicas that answered with older version numbers. The DM applies
// it only if still strictly newer and idle; losing the message is
// harmless.
func (s *Store) repairStale(item string, res readResult, resps []memberResp) {
	for _, m := range resps {
		if m.resp.VN >= res.vn {
			continue
		}
		s.Stats.Repairs.Inc()
		s.client.Notify(m.dm, RepairReq{Item: item, VN: res.vn, Val: res.val})
	}
}

// Inspect returns a DM's committed replica state for tests and tooling.
func (s *Store) Inspect(ctx context.Context, dm, item string) (InspectResp, error) {
	budget, err := s.callBudget(ctx)
	if err != nil {
		return InspectResp{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	raw, err := s.client.Call(cctx, dm, InspectReq{Item: item})
	if err != nil {
		return InspectResp{}, err
	}
	resp, ok := raw.(InspectResp)
	if !ok || !resp.OK {
		return InspectResp{}, fmt.Errorf("cluster: no replica of %q at %s", item, dm)
	}
	return resp, nil
}

// writeQuorum fans the request built by mk out to every replica any
// write-quorum of cfg mentions and completes on the first covered
// write-quorum, retrying with backoff on conflicts. Replicas beyond the
// winning quorum that granted keep their intentions — extra copies of a
// committed write only help availability — so no locks are released.
func (t *Txn) writeQuorum(ctx context.Context, item, phase string, cfg quorum.Config, mk func(seq int) any) error {
	if t.store.opts.sequential {
		return t.writeQuorumSequential(ctx, item, phase, cfg, mk)
	}
	sawBusy := false
	budgetDenied := false
	attempts := 0
	var lastCol *collector
	targets := union(cfg.W)
	for attempt := 0; attempt <= t.store.opts.lockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt == 0 {
			t.store.budget.deposit()
		} else if !t.store.budget.allow() {
			t.store.Stats.RetryBudgetDenied.Inc()
			budgetDenied = true
			break
		}
		attempts++
		start := time.Now()
		seq := t.nextSeq()
		spec := phaseSpec{
			item:    item,
			targets: targets,
			quorums: cfg.W,
			req:     mk(seq),
			seq:     seq,
			isWrite: true,
		}
		col := t.runPhase(ctx, spec)
		t.store.Stats.WritePhaseLatency.ObserveSince(start)
		t.settlePhase(spec, col)
		lastCol = col
		if col.sawBusy() {
			sawBusy = true
		}
		if col.done() {
			t.noteWrittenItem(item)
			return nil
		}
		if w, ok := col.sawWrongShard(); ok {
			// A write cannot chase a redirect mid-phase: its version number
			// was derived from a read under the old placement. Adopt the new
			// placement and fail conflict-style so the whole transaction
			// restarts against it.
			t.store.Stats.WrongShardRedirects.Inc()
			t.store.adoptRedirect(w)
			return &WrongShardError{
				Item: item, Txn: t.id, Phase: phase,
				Group: w.Group, Epoch: w.Epoch, DMs: append([]string(nil), w.DMs...),
			}
		}
		t.store.backoff(ctx, attempt)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if sawBusy {
		return &ConflictError{
			Item: item, Txn: t.id, Phase: phase,
			Attempts: attempts, Responded: lastCol.respondedDMs(),
		}
	}
	if lastCol.sawShed() {
		return &OverloadedError{
			Item: item, Txn: t.id, Phase: phase,
			Attempts: attempts, Shed: lastCol.shedDMs(),
			Expired: lastCol.expired, BudgetDenied: budgetDenied,
		}
	}
	return &UnavailableError{
		Item: item, Txn: t.id, Phase: phase,
		Attempts: attempts, Responded: lastCol.respondedDMs(),
		Missing: lastCol.missingDMs(targets),
	}
}

// writeQuorumSequential is the seed's write path (one shuffled quorum set
// at a time), kept as the ablation baseline.
func (t *Txn) writeQuorumSequential(ctx context.Context, item, phase string, cfg quorum.Config, mk func(seq int) any) error {
	sawBusy := false
	attempts := 0
	for attempt := 0; attempt <= t.store.opts.lockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, q := range t.store.shuffledQuorums(cfg.W) {
			attempts++
			start := time.Now()
			members := q.Names()
			oks := make([]bool, len(members))
			busy := make([]bool, len(members))
			wrongs := make([]*WrongShardResp, len(members))
			var wg sync.WaitGroup
			for i, dm := range members {
				wg.Add(1)
				go func(i int, dm string) {
					defer wg.Done()
					callStart := time.Now()
					budget, derr := t.store.callBudget(ctx)
					if derr != nil {
						return
					}
					cctx, cancel := context.WithTimeout(ctx, budget)
					defer cancel()
					raw, err := t.store.client.Call(cctx, dm, mk(0))
					if err != nil {
						if ctx.Err() == nil {
							t.store.observeDM(dm, false, 0)
						}
						return
					}
					t.store.observeDM(dm, true, time.Since(callStart))
					switch resp := raw.(type) {
					case WriteResp:
						oks[i] = resp.OK
						busy[i] = resp.Busy
					case WrongShardResp:
						wrongs[i] = &resp
					}
				}(i, dm)
			}
			wg.Wait()
			t.store.Stats.WritePhaseLatency.ObserveSince(start)
			all := true
			var wrong *WrongShardResp
			for i := range members {
				if oks[i] {
					t.touchWrite(members[i])
				} else {
					all = false
					if busy[i] {
						sawBusy = true
						t.store.Stats.BusyRetries.Inc()
					}
					if wrongs[i] != nil && wrong == nil {
						wrong = wrongs[i]
					}
				}
			}
			if all {
				t.noteWrittenItem(item)
				return nil
			}
			if wrong != nil {
				t.store.Stats.WrongShardRedirects.Inc()
				t.store.adoptRedirect(*wrong)
				return &WrongShardError{
					Item: item, Txn: t.id, Phase: phase,
					Group: wrong.Group, Epoch: wrong.Epoch, DMs: append([]string(nil), wrong.DMs...),
				}
			}
		}
		t.store.backoff(ctx, attempt)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if sawBusy {
		return &ConflictError{Item: item, Txn: t.id, Phase: phase, Attempts: attempts}
	}
	return &UnavailableError{Item: item, Txn: t.id, Phase: phase, Attempts: attempts}
}

// Read performs a logical read: quorum-read the item and return the value
// with the highest version number.
func (t *Txn) Read(ctx context.Context, item string) (any, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockRead)
	if err != nil {
		return nil, err
	}
	t.store.Stats.Reads.Inc()
	t.store.Stats.ReadLatency.ObserveSince(start)
	t.record(checker.OpRead, item, res.val, res.vn, start)
	t.store.traceEvent(string(t.id), "read", "%s = %v (vn %d)", item, res.val, res.vn)
	return res.val, nil
}

// ReadVersioned is Read exposing the version number that accompanied the
// returned value — the linearization witness quorum consensus maintains.
// Intended for verification tooling (internal/checker) and diagnostics.
func (t *Txn) ReadVersioned(ctx context.Context, item string) (any, int, error) {
	if t.done {
		return nil, 0, ErrTxnDone
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockRead)
	if err != nil {
		return nil, 0, err
	}
	t.store.Stats.Reads.Inc()
	t.record(checker.OpRead, item, res.val, res.vn, start)
	return res.val, res.vn, nil
}

// ReadForUpdate performs a logical read that takes write locks, for
// read-modify-write transactions: acquiring the write intent up front
// avoids the read-to-write lock upgrade that deadlocks concurrent
// updaters.
func (t *Txn) ReadForUpdate(ctx context.Context, item string) (any, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if err := t.store.writeGate("read-for-update", item); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		t.store.noteWriteOutcome(err)
		return nil, err
	}
	t.store.noteWriteOutcome(nil)
	t.store.Stats.Reads.Inc()
	t.store.Stats.ReadLatency.ObserveSince(start)
	t.record(checker.OpRead, item, res.val, res.vn, start)
	return res.val, nil
}

// Write performs a logical write: discover the current version number from
// a read-quorum (under write locks — update locking), then write
// (vn+1, val) to a write-quorum.
func (t *Txn) Write(ctx context.Context, item string, val any) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.store.writeGate("write", item); err != nil {
		return err
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		t.store.noteWriteOutcome(err)
		return err
	}
	vn := t.nextWriteVN(item, res.vn)
	err = t.writeQuorum(ctx, item, "write", res.cfg, func(seq int) any {
		return WriteReq{Txn: t.id, Item: item, VN: vn, Val: val, Seq: seq}
	})
	t.store.noteWriteOutcome(err)
	if err != nil {
		return err
	}
	t.noteWrittenVN(item, vn)
	t.store.Stats.Writes.Inc()
	t.store.Stats.WriteLatency.ObserveSince(start)
	t.record(checker.OpWrite, item, val, vn, start)
	t.store.traceEvent(string(t.id), "write", "%s := %v (vn %d)", item, val, vn)
	return nil
}

// nextWriteVN computes the version a logical write installs: one past the
// read-quorum maximum, routed through the test-only mutation hook when one
// is planted.
func (t *Txn) nextWriteVN(item string, readVN int) int {
	vn := readVN + 1
	if mut := t.store.Hooks.MutateWriteVN; mut != nil {
		vn = mut(item, vn)
	}
	return vn
}

// WriteVersioned is Write exposing the version number the write installed
// — the linearization witness. Intended for verification tooling.
func (t *Txn) WriteVersioned(ctx context.Context, item string, val any) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if err := t.store.writeGate("write", item); err != nil {
		return 0, err
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		t.store.noteWriteOutcome(err)
		return 0, err
	}
	vn := t.nextWriteVN(item, res.vn)
	err = t.writeQuorum(ctx, item, "write", res.cfg, func(seq int) any {
		return WriteReq{Txn: t.id, Item: item, VN: vn, Val: val, Seq: seq}
	})
	t.store.noteWriteOutcome(err)
	if err != nil {
		return 0, err
	}
	t.noteWrittenVN(item, vn)
	t.store.Stats.Writes.Inc()
	t.record(checker.OpWrite, item, val, vn, start)
	return vn, nil
}

// tentativeControlRetries bounds control attempts to tentatively-touched
// DMs. Their acks are not required — they may hold nothing at all — so a
// few tries to clean up a possible late grant are enough; a crashed DM
// must not stall commits it was never part of.
const tentativeControlRetries = 2

// control sends a commit/abort control message to every touched DM
// concurrently and returns the required DMs that never acknowledged.
// Required DMs are retried until acknowledged or the retry budget runs
// out; the caller decides what a missing ack means (Sub fails outright,
// Run's commit checks write-quorum coverage). Cleanup DMs get the same
// retry budget but are never reported missing: they hold only locks the
// resolution should sweep, not state the outcome depends on. Tentative
// DMs (abandoned in-flight copies that may have granted) are retried a
// few times and given up on silently.
func (t *Txn) control(ctx context.Context, required, cleanup, tentative []string, req any) (missing []string) {
	if len(required) == 0 && len(cleanup) == 0 && len(tentative) == 0 {
		return nil
	}
	start := time.Now()
	acked := make([]bool, len(required))
	send := func(ctx context.Context, dm string, retries int) bool {
		for attempt := 0; attempt <= retries; attempt++ {
			// A dead context must end the round promptly: every Call below
			// inherits it and fails instantly, so without this check a
			// cancelled caller would still grind through the whole retry
			// budget of doomed calls and backoffs.
			if ctx.Err() != nil {
				return false
			}
			callStart := time.Now()
			budget, derr := t.store.callBudget(ctx)
			if derr != nil {
				return false
			}
			cctx, cancel := context.WithTimeout(ctx, budget)
			raw, err := t.store.client.Call(cctx, dm, req)
			cancel()
			if err == nil {
				t.store.observeDM(dm, true, time.Since(callStart))
			} else if ctx.Err() == nil {
				// Only a genuine non-answer blames the replica; a cancelled
				// caller proves nothing about the other end.
				t.store.observeDM(dm, false, 0)
			}
			if err == nil {
				if ack, ok := raw.(Ack); ok && ack.OK {
					return true
				}
			}
			t.store.backoff(ctx, attempt)
		}
		return false
	}
	var wg sync.WaitGroup
	for i, dm := range required {
		wg.Add(1)
		go func(i int, dm string) {
			defer wg.Done()
			acked[i] = send(ctx, dm, t.store.opts.lockRetries)
		}(i, dm)
	}
	// Cleanup and tentative rounds run detached: the operation's outcome
	// does not depend on them, and waiting would let a slow or dead
	// replica the transaction never used stall every commit. Under
	// WithSynchronousCleanup they are awaited instead, so no goroutine
	// outlives the operation — a replay requirement.
	//
	// Detached sends deliberately drop the operation's context: the
	// outcome is already decided, and a caller that cancels its context
	// right after Run returns (a CLI that exits, a request handler that
	// times out) must not revoke the lock sweep — over a real transport
	// the replicas outlive the client process, so an unswept read lock
	// wedges the item for every later writer. The sends stay bounded by
	// their per-call timeouts and retry budgets, and Close waits them out.
	detached := func(dm string, retries int) {
		if t.store.opts.syncCleanup {
			wg.Add(1)
			go func() {
				defer wg.Done()
				send(ctx, dm, retries)
			}()
			return
		}
		if t.store.goDetached(func() { send(context.Background(), dm, retries) }) {
			return
		}
		// The store is closing: the transport is about to quiesce, so a
		// detached sweep could not outlive this operation anyway. Run it
		// awaited on the caller's context instead — bounded, and never
		// racing the close drain.
		wg.Add(1)
		go func() {
			defer wg.Done()
			send(ctx, dm, retries)
		}()
	}
	for _, dm := range cleanup {
		detached(dm, t.store.opts.lockRetries)
	}
	for _, dm := range tentative {
		detached(dm, tentativeControlRetries)
	}
	wg.Wait()
	t.store.Stats.ControlLatency.ObserveSince(start)
	for i, ok := range acked {
		if !ok {
			missing = append(missing, required[i])
		}
	}
	return missing
}

// absorb merges a child's touched set into the parent, so the parent's
// final commit or abort reaches every DM the child may have left state at
// — including DMs a cancelled or failed child phase touched.
func (t *Txn) absorb(child *Txn) {
	child.mu.Lock()
	merged := make(map[string]touchLevel, len(child.touched))
	for dm, lvl := range child.touched {
		merged[dm] = lvl
	}
	wrote := make([]string, 0, len(child.wroteItems))
	for item := range child.wroteItems {
		wrote = append(wrote, item)
	}
	child.mu.Unlock()
	t.mu.Lock()
	for dm, lvl := range merged {
		if t.touched[dm] < lvl {
			t.touched[dm] = lvl
		}
	}
	// Written items ride along too (even from an aborted child, whose
	// buffered writes are discarded): the top-level hint fence over-fencing
	// an item only revokes hints, never correctness.
	if len(wrote) > 0 && t.wroteItems == nil {
		t.wroteItems = map[string]bool{}
	}
	for _, item := range wrote {
		t.wroteItems[item] = true
	}
	t.mu.Unlock()
}

// Sub runs fn in a subtransaction. If fn fails the subtransaction is
// aborted — its locks and buffered writes are discarded — and the error is
// returned for the parent to handle: a parent may tolerate the abort and
// continue, exactly the failure-handling the paper's algorithm supports.
// On success the subtransaction's locks and intentions are inherited by
// the parent.
func (t *Txn) Sub(ctx context.Context, fn func(*Txn) error) error {
	if t.done {
		return ErrTxnDone
	}
	t.mu.Lock()
	t.childSeq++
	child := &Txn{
		store:   t.store,
		id:      TxnID(fmt.Sprintf("%s/%d", t.id, t.childSeq)),
		touched: map[string]touchLevel{},
	}
	t.mu.Unlock()
	if err := fn(child); err != nil {
		child.abort(ctx)
		// The child's DMs stay on the parent's control list: its abort is
		// best-effort, and the top-level resolve must sweep any leftovers.
		t.absorb(child)
		return err
	}
	child.done = true
	written, granted, tentative := child.controlSets()
	// Promotion transfers locks as well as intentions to the parent, so
	// lock-only DMs are asked to confirm it too. The first CommitSubReq
	// send is a point of no return: a DM that promoted cannot demote, so
	// aborting the child here would leave its writes applied wherever the
	// promote landed while the history records an abort. Stragglers keep
	// the child's state under its own id; the top-level resolution sweeps
	// it — CommitTopReq names the child in Subs and applies it, AbortReq
	// drops the whole tree.
	required := append(written, granted...)
	sort.Strings(required)
	if m := t.control(ctx, required, nil, tentative, CommitSubReq{Txn: child.id}); len(m) > 0 {
		t.store.traceEvent(string(child.id), "sub-commit", "promote stragglers %v", m)
	}
	t.absorb(child)
	t.adoptWrites(child)
	t.adoptOps(child)
	t.adoptSubs(child)
	t.store.traceEvent(string(child.id), "sub-commit", "promoted to %s", t.id)
	return nil
}

// abort discards the transaction's locks and intentions everywhere it
// touched (best effort; DMs it cannot reach will shed the state when the
// top-level transaction resolves or on restart).
func (t *Txn) abort(ctx context.Context) {
	t.done = true
	if ctx.Err() != nil {
		// The caller's context is dead, so acked control rounds are
		// impossible — every Call would fail instantly. One fire-and-forget
		// AbortReq per touched DM still usually lands, and whatever it
		// misses the lease reaper sweeps once the leases lapse.
		for _, dm := range t.touchedDMs() {
			t.store.client.Notify(dm, AbortReq{Txn: t.id})
		}
		t.store.Stats.Aborts.Inc()
		t.store.traceEvent(string(t.id), "abort", "notified %v (ctx dead)", t.touchedDMs())
		return
	}
	written, granted, tentative := t.controlSets()
	required := append(written, granted...)
	sort.Strings(required)
	_ = t.control(ctx, required, nil, tentative, AbortReq{Txn: t.id})
	t.store.Stats.Aborts.Inc()
	t.store.traceEvent(string(t.id), "abort", "discarded at %v", t.touchedDMs())
}

// Run executes fn as a top-level transaction, restarting it (with a fresh
// transaction ID) up to WithTxnRetries times when it aborts due to lock
// conflicts — the cluster's deadlock/livelock resolution.
func (s *Store) Run(ctx context.Context, fn func(*Txn) error) error {
	// Admission before work: the AIMD limiter bounds in-flight top-level
	// transactions, and TxnLatency starts after the slot is granted so it
	// measures admitted work — the p99 an overload gate holds steady — not
	// time spent queueing for a slot.
	if err := s.limiter.acquire(ctx); err != nil {
		return err
	}
	defer s.limiter.release()
	start := time.Now()
	var err error
	for attempt := 0; attempt <= s.opts.txnRetries; attempt++ {
		attemptStart := time.Now()
		t := &Txn{
			store:      s,
			id:         TxnID(fmt.Sprintf("%s.t%d", s.clientID, s.txnSeq.Add(1))),
			touched:    map[string]touchLevel{},
			leaseStamp: s.now(),
		}
		s.trackTxn(t)
		err = fn(t)
		if err == nil {
			// The lease fence: renew at every touched DM before the commit
			// point. A refusal means some DM already resolved the
			// transaction — most likely the lease reaper presumed it aborted
			// — so committing would diverge; abort this attempt and restart
			// under a fresh id (LeaseExpiredError unwraps to ErrConflict).
			if ferr := t.ensureLease(ctx); ferr != nil {
				s.Stats.LeaseExpiries.Inc()
				err = ferr
			}
		}
		if err == nil {
			// The hint fence rides the same pre-commit slot as the lease
			// fence: revoke freshness hints at every replica of every written
			// item before the commit point, so no replica can serve a
			// single-replica read of the version this commit supersedes. A
			// refusal (a hinted reader's lock still live there) is a lock
			// conflict — abort and restart.
			if ferr := t.fenceHints(ctx); ferr != nil {
				err = ferr
			}
		}
		var inDoubt bool
		if err == nil && s.opts.protocol == commit.PaxosCommit {
			// The decide phase (DESIGN.md §11): the outcome is durably
			// accepted at a majority of the cohort BEFORE any DM hears a
			// commit, so a coordinator crash anywhere past this line leaves
			// an outcome any conflicting party reconstructs from the
			// acceptors in one round-trip. Read-only transactions (empty
			// cohort) skip consensus — they have no outcome to decide.
			if cohort := t.paxosCohort(); len(cohort) > 0 {
				inDoubt, err = t.paxosDecide(ctx, cohort)
			}
		}
		if err == nil {
			written, granted, tentative := t.controlSets()
			// The first CommitTopReq send is the commit point: every
			// written DM buffered the intention at a full write quorum, so
			// any delivered copy publishes the write to readers. Reporting
			// failure (or worse, aborting) after that would misreport a
			// visible commit — the unknown-outcome window chaos checking
			// trips over. A straggler that never hears the commit keeps
			// its locks, so no quorum it belongs to can read a stale
			// version or re-issue the version number: readers and writers
			// route around it through quorums whose intersection members
			// did apply.
			if hook := s.Hooks.BeforeCommitTop; hook != nil {
				hook(t.id)
			}
			learnCtx := ctx
			if s.opts.protocol == commit.PaxosCommit {
				// Under Paxos Commit the outcome is already decided at the
				// acceptors: a caller cancelling its context now must not
				// abandon the learn fan-out (the detached-cleanup rule
				// applied to commits). The sends stay bounded by per-call
				// timeouts and retry budgets, and stragglers are resolved by
				// acceptor recovery regardless.
				learnCtx = context.WithoutCancel(ctx)
			}
			missing := t.control(learnCtx, written, granted, tentative,
				CommitTopReq{Txn: t.id, Subs: t.committedSubs(), Final: t.finalVNs()})
			if len(missing) > 0 {
				s.traceEvent(string(t.id), "commit", "stragglers %v", missing)
			}
			t.primeHintTargets(missing)
			t.done = true
			s.untrackTxn(t)
			s.noteTxnOutcome(nil)
			s.Stats.Commits.Inc()
			s.Stats.TxnLatency.ObserveSince(start)
			if s.opts.history != nil {
				s.opts.history.RecordTxn(checker.TxnRecord{
					ID: string(t.id), Start: attemptStart, End: time.Now(), Ops: t.ops,
				})
			}
			s.traceEvent(string(t.id), "commit", "applied at %v", t.touchedDMs())
			return nil
		}
		if inDoubt {
			// The decide phase reached acceptors but no majority answered:
			// the outcome is whatever the cohort eventually decides, so both
			// aborting and retrying here could contradict it. The locks stand
			// until acceptor recovery resolves them — one conflict-triggered
			// round-trip, not a lease TTL.
			t.done = true
			s.untrackTxn(t)
			s.noteTxnOutcome(err)
			return err
		}
		t.abort(ctx)
		s.untrackTxn(t)
		if !errors.Is(err, ErrConflict) || ctx.Err() != nil {
			// Overload and unavailability deliberately do NOT restart here:
			// retrying a transaction the replicas just refused would amplify
			// the overload. The AIMD limiter hears the signal instead and
			// shrinks the in-flight ceiling.
			s.noteTxnOutcome(err)
			return err
		}
		if !s.budget.allow() {
			// Conflict restarts draw from the same retry budget as phase
			// retries: under overload-driven conflict storms the budget is
			// what stops goodput from collapsing into retry traffic.
			s.Stats.RetryBudgetDenied.Inc()
			s.noteTxnOutcome(err)
			return err
		}
		s.Stats.Restarts.Inc()
		s.backoff(ctx, attempt)
	}
	s.noteTxnOutcome(err)
	return err
}

// Reconfigure installs a new configuration for item as its own top-level
// transaction, following Section 4: read (v, t, c, g) from a read-quorum of
// the current configuration, write (v, t) to a write-quorum of the new
// configuration, and write (c', g+1) to a write-quorum of the old one (and
// also of the new one when WithWriteConfigToBothQuorums is set, Gifford's
// original rule).
func (s *Store) Reconfigure(ctx context.Context, item string, newCfg quorum.Config) error {
	it, ok := s.itemSpec(item)
	if !ok {
		return fmt.Errorf("cluster: unknown item %q", item)
	}
	if err := newCfg.Validate(it.DMs); err != nil {
		return err
	}
	if err := s.writeGate("reconfigure", item); err != nil {
		return err
	}
	return s.Run(ctx, func(t *Txn) error {
		res, err := t.readPhase(ctx, item, LockWrite)
		if err != nil {
			return err
		}
		err = t.writeQuorum(ctx, item, "reconfigure", newCfg, func(seq int) any {
			return WriteReq{Txn: t.id, Item: item, VN: res.vn, Val: res.val, Seq: seq}
		})
		if err != nil {
			return err
		}
		mkCfg := func(seq int) any {
			return ConfigWriteReq{Txn: t.id, Item: item, Gen: res.gen + 1, Cfg: newCfg, Seq: seq}
		}
		if err := t.writeQuorum(ctx, item, "reconfigure", res.cfg, mkCfg); err != nil {
			return err
		}
		if s.opts.bothQuorums {
			if err := t.writeQuorum(ctx, item, "reconfigure", newCfg, mkCfg); err != nil {
				return err
			}
		}
		s.observeConfig(item, res.gen+1, newCfg)
		s.traceEvent(string(t.id), "reconfig", "%s gen %d -> %d", item, res.gen, res.gen+1)
		return nil
	})
}
