package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ItemSpec describes one replicated logical data item: its initial value,
// the DMs that replicate it, and its initial quorum configuration.
type ItemSpec struct {
	Name    string
	Initial any
	DMs     []string
	Config  quorum.Config
}

// Options tune the client library.
type Options struct {
	// CallTimeout bounds each RPC (default 100ms).
	CallTimeout time.Duration
	// LockRetries is how many times a quorum phase is retried on lock
	// conflicts or unreachable replicas before giving up (default 12).
	LockRetries int
	// RetryBackoff is the base backoff between retries, growing linearly
	// (default 1ms).
	RetryBackoff time.Duration
	// TxnRetries is how many times Run restarts an aborted transaction
	// (default 8). Restart-on-conflict is the cluster's deadlock
	// resolution.
	TxnRetries int
	// ReadRepair propagates the winning (version, value) of a quorum read
	// to the stale replicas that answered with older versions — Gifford's
	// update of out-of-date copies, done fire-and-forget off the read
	// path.
	ReadRepair bool
	// WriteConfigToBothQuorums reproduces Gifford's original
	// reconfiguration rule (write the new configuration to both an old and
	// a new write-quorum); the paper observes an old write-quorum alone
	// suffices, which is the default. Benchmarked as ablation A1.
	WriteConfigToBothQuorums bool
	// Seed drives quorum selection randomness.
	Seed int64
	// Trace, when non-nil, receives a structured event per logical
	// operation, commit, abort, and reconfiguration.
	Trace *trace.Log
}

func (o Options) withDefaults() Options {
	if o.CallTimeout <= 0 {
		o.CallTimeout = 100 * time.Millisecond
	}
	if o.LockRetries <= 0 {
		o.LockRetries = 12
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	if o.TxnRetries <= 0 {
		o.TxnRetries = 8
	}
	return o
}

// Exported error conditions.
var (
	// ErrConflict reports that a quorum phase kept losing lock conflicts;
	// Run restarts the transaction when it sees this.
	ErrConflict = errors.New("cluster: lock conflict")
	// ErrUnavailable reports that no quorum could be assembled (too many
	// replicas down or unreachable).
	ErrUnavailable = errors.New("cluster: quorum unavailable")
	// ErrTxnDone reports use of a transaction after it finished.
	ErrTxnDone = errors.New("cluster: transaction already finished")
)

// Stats aggregates client-side operation metrics.
type Stats struct {
	Reads        metrics.Counter
	Writes       metrics.Counter
	Commits      metrics.Counter
	Aborts       metrics.Counter
	Restarts     metrics.Counter
	BusyRetries  metrics.Counter
	Repairs      metrics.Counter
	ReadLatency  metrics.Histogram
	WriteLatency metrics.Histogram
	TxnLatency   metrics.Histogram
}

// Store is the client handle to a replicated store: it owns the DM server
// nodes and executes nested transactions against them.
type Store struct {
	net    *sim.Network
	client *sim.Node
	opts   Options

	items   map[string]ItemSpec
	servers []*sim.Node

	mu       sync.Mutex
	rng      *rand.Rand
	believed map[string]genCfg

	// clientID prefixes every transaction ID issued by this client so IDs
	// from different clients of the same cluster never alias in the DMs'
	// lock tables.
	clientID string
	txnSeq   atomic.Uint64

	Stats Stats
}

type genCfg struct {
	gen int
	cfg quorum.Config
}

// New spawns one DM server node per replica and a client node, returning
// the store handle.
func New(net *sim.Network, items []ItemSpec, opts Options) (*Store, error) {
	return newStore(net, items, opts, true)
}

// NewClient attaches an additional, independent client to a cluster whose
// DM servers were already spawned by New over the same network and items.
// Each client keeps its own cached configurations, so reconfigurations
// performed through one client are discovered by others via the
// generation-number chase of the read rule — the realistic stale-client
// scenario of Section 4.
func NewClient(net *sim.Network, items []ItemSpec, opts Options) (*Store, error) {
	return newStore(net, items, opts, false)
}

func newStore(net *sim.Network, items []ItemSpec, opts Options, spawnServers bool) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		net:      net,
		opts:     opts,
		items:    map[string]ItemSpec{},
		rng:      rand.New(rand.NewSource(opts.Seed)),
		believed: map[string]genCfg{},
	}
	seen := map[string]bool{}
	for _, it := range items {
		if err := it.Config.Validate(it.DMs); err != nil {
			return nil, fmt.Errorf("cluster: item %q: %w", it.Name, err)
		}
		if _, dup := s.items[it.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate item %q", it.Name)
		}
		s.items[it.Name] = it
		s.believed[it.Name] = genCfg{gen: 0, cfg: it.Config}
		for _, dm := range it.DMs {
			if seen[dm] {
				return nil, fmt.Errorf("cluster: DM %q assigned twice", dm)
			}
			seen[dm] = true
			if spawnServers {
				s.servers = append(s.servers, NewDMServer(net, dm, []ItemSpec{it}))
			}
		}
	}
	s.clientID = fmt.Sprintf("c%d", clientSeq.Add(1))
	s.client = sim.NewNode(net, fmt.Sprintf("client-%s-%d", s.clientID, opts.Seed), nil)
	return s, nil
}

// clientSeq hands out process-unique client numbers; it exists solely to
// keep transaction IDs from distinct clients disjoint.
var clientSeq atomic.Uint64

// Close shuts down the client and server nodes.
func (s *Store) Close() {
	s.client.Shutdown()
	for _, srv := range s.servers {
		srv.Shutdown()
	}
}

// Items returns the item specs the store was opened with.
func (s *Store) Items() []ItemSpec {
	out := make([]ItemSpec, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// traceEvent records an event when tracing is enabled.
func (s *Store) traceEvent(actor, kind, format string, args ...any) {
	if s.opts.Trace != nil {
		s.opts.Trace.Add(actor, kind, format, args...)
	}
}

func (s *Store) config(item string) genCfg {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.believed[item]
}

// ForgetConfig resets the client's cached configuration for item to the
// initial one, simulating a client that has not heard about
// reconfigurations; the next read phase rediscovers the current
// configuration by chasing generation numbers.
func (s *Store) ForgetConfig(item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[item]; ok {
		s.believed[item] = genCfg{gen: 0, cfg: it.Config}
	}
}

func (s *Store) observeConfig(item string, gen int, cfg quorum.Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.believed[item]; !ok || gen > cur.gen {
		s.believed[item] = genCfg{gen: gen, cfg: cfg.Clone()}
	}
}

// shuffledQuorums returns the quorums in a random order, smallest first
// among equal random keys so cheap quorums are preferred.
func (s *Store) shuffledQuorums(qs []quorum.Set) []quorum.Set {
	out := append([]quorum.Set(nil), qs...)
	s.mu.Lock()
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

// backoff sleeps for the attempt-scaled, jittered backoff or until ctx
// expires. The jitter breaks restart symmetry between conflicting
// transactions, which plain linear backoff can lock into livelock.
func (s *Store) backoff(ctx context.Context, attempt int) {
	base := s.opts.RetryBackoff * time.Duration(attempt+1)
	s.mu.Lock()
	d := base/2 + time.Duration(s.rng.Int63n(int64(base)))
	s.mu.Unlock()
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// Txn is a (possibly nested) transaction handle. A Txn is not safe for
// concurrent use; run concurrent work in subtransactions via SubAsync or
// separate top-level transactions.
type Txn struct {
	store *Store
	id    TxnID

	mu       sync.Mutex
	touched  map[string]bool
	childSeq int
	done     bool
}

// ID returns the transaction's hierarchical identifier.
func (t *Txn) ID() TxnID { return t.id }

func (t *Txn) touch(dm string) {
	t.mu.Lock()
	t.touched[dm] = true
	t.mu.Unlock()
}

func (t *Txn) touchedDMs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.touched))
	for dm := range t.touched {
		out = append(out, dm)
	}
	sort.Strings(out)
	return out
}

// readResult aggregates a completed read phase.
type readResult struct {
	vn  int
	val any
	gen int
	cfg quorum.Config
}

// queryQuorum issues ReadReqs to every member of q concurrently and
// reports whether all granted and whether any refused for a lock conflict.
// Members that grant are recorded as touched (they now hold locks for the
// transaction) even if the quorum as a whole fails.
// memberResp pairs a replica's answer with its name, so the read phase
// can repair stale members afterwards.
type memberResp struct {
	dm   string
	resp ReadResp
}

func (t *Txn) queryQuorum(ctx context.Context, item string, mode LockMode, q quorum.Set) (granted []memberResp, sawBusy, allOK bool) {
	members := q.Names()
	resps := make([]ReadResp, len(members))
	oks := make([]bool, len(members))
	var wg sync.WaitGroup
	for i, dm := range members {
		wg.Add(1)
		go func(i int, dm string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, t.store.opts.CallTimeout)
			defer cancel()
			raw, err := t.store.client.Call(cctx, dm, ReadReq{Txn: t.id, Item: item, Lock: mode})
			if err != nil {
				return
			}
			if resp, ok := raw.(ReadResp); ok {
				resps[i] = resp
				oks[i] = resp.OK
				if resp.Busy {
					t.store.Stats.BusyRetries.Inc()
				}
			}
		}(i, dm)
	}
	wg.Wait()
	allOK = true
	for i := range members {
		if oks[i] {
			t.touch(members[i])
			granted = append(granted, memberResp{dm: members[i], resp: resps[i]})
		} else {
			allOK = false
			if resps[i].Busy {
				sawBusy = true
			}
		}
	}
	return granted, sawBusy, allOK
}

// readPhase assembles a read-quorum of the item's current configuration,
// chasing generation numbers upward as newer configurations are discovered
// (Section 4's read rule), and returns the highest-version value seen.
func (t *Txn) readPhase(ctx context.Context, item string, mode LockMode) (readResult, error) {
	it, ok := t.store.items[item]
	if !ok {
		return readResult{}, fmt.Errorf("cluster: unknown item %q", item)
	}
	believed := t.store.config(item)
	res := readResult{val: it.Initial, gen: believed.gen, cfg: believed.cfg}
	sawBusy := false
	for attempt := 0; attempt <= t.store.opts.LockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return readResult{}, err
		}
		progressed := false
		for _, q := range t.store.shuffledQuorums(believed.cfg.R) {
			resps, busy, ok := t.queryQuorum(ctx, item, mode, q)
			if busy {
				sawBusy = true
			}
			for _, m := range resps {
				r := m.resp
				if r.Gen > res.gen {
					res.gen, res.cfg = r.Gen, r.Cfg
					t.store.observeConfig(item, r.Gen, r.Cfg)
				}
				if r.VN > res.vn {
					res.vn, res.val = r.VN, r.Val
				}
				if r.VN == res.vn && r.Val != nil {
					res.val = r.Val
				}
			}
			if !ok {
				continue
			}
			if res.gen > believed.gen {
				// A newer configuration was installed: re-read under it.
				believed = genCfg{gen: res.gen, cfg: res.cfg}
				progressed = true
				break
			}
			if t.store.opts.ReadRepair {
				t.store.repairStale(item, res, resps)
			}
			return res, nil
		}
		if !progressed {
			t.store.backoff(ctx, attempt)
		}
	}
	if sawBusy {
		return readResult{}, fmt.Errorf("%w: read phase of %s for %s", ErrConflict, item, t.id)
	}
	return readResult{}, fmt.Errorf("%w: read phase of %s for %s", ErrUnavailable, item, t.id)
}

// repairStale fire-and-forgets the quorum read's winning (version, value)
// to the replicas that answered with older version numbers. The DM applies
// it only if still strictly newer and idle; losing the message is
// harmless.
func (s *Store) repairStale(item string, res readResult, resps []memberResp) {
	for _, m := range resps {
		if m.resp.VN >= res.vn {
			continue
		}
		s.Stats.Repairs.Inc()
		go func(dm string) {
			ctx, cancel := context.WithTimeout(context.Background(), s.opts.CallTimeout)
			defer cancel()
			_, _ = s.client.Call(ctx, dm, RepairReq{Item: item, VN: res.vn, Val: res.val})
		}(m.dm)
	}
}

// Inspect returns a DM's committed replica state for tests and tooling.
func (s *Store) Inspect(ctx context.Context, dm, item string) (InspectResp, error) {
	cctx, cancel := context.WithTimeout(ctx, s.opts.CallTimeout)
	defer cancel()
	raw, err := s.client.Call(cctx, dm, InspectReq{Item: item})
	if err != nil {
		return InspectResp{}, err
	}
	resp, ok := raw.(InspectResp)
	if !ok || !resp.OK {
		return InspectResp{}, fmt.Errorf("cluster: no replica of %q at %s", item, dm)
	}
	return resp, nil
}

// writeQuorum sends req built by mk to every member of some write-quorum of
// cfg, retrying across quorums and with backoff.
func (t *Txn) writeQuorum(ctx context.Context, cfg quorum.Config, mk func() any) error {
	sawBusy := false
	for attempt := 0; attempt <= t.store.opts.LockRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, q := range t.store.shuffledQuorums(cfg.W) {
			members := q.Names()
			oks := make([]bool, len(members))
			busy := make([]bool, len(members))
			var wg sync.WaitGroup
			for i, dm := range members {
				wg.Add(1)
				go func(i int, dm string) {
					defer wg.Done()
					cctx, cancel := context.WithTimeout(ctx, t.store.opts.CallTimeout)
					defer cancel()
					raw, err := t.store.client.Call(cctx, dm, mk())
					if err != nil {
						return
					}
					if resp, ok := raw.(WriteResp); ok {
						oks[i] = resp.OK
						busy[i] = resp.Busy
					}
				}(i, dm)
			}
			wg.Wait()
			all := true
			for i := range members {
				if oks[i] {
					t.touch(members[i])
				} else {
					all = false
					if busy[i] {
						sawBusy = true
						t.store.Stats.BusyRetries.Inc()
					}
				}
			}
			if all {
				return nil
			}
		}
		t.store.backoff(ctx, attempt)
	}
	if sawBusy {
		return fmt.Errorf("%w: write quorum for %s", ErrConflict, t.id)
	}
	return fmt.Errorf("%w: write quorum for %s", ErrUnavailable, t.id)
}

// Read performs a logical read: quorum-read the item and return the value
// with the highest version number.
func (t *Txn) Read(ctx context.Context, item string) (any, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockRead)
	if err != nil {
		return nil, err
	}
	t.store.Stats.Reads.Inc()
	t.store.Stats.ReadLatency.Observe(time.Since(start))
	t.store.traceEvent(string(t.id), "read", "%s = %v (vn %d)", item, res.val, res.vn)
	return res.val, nil
}

// ReadVersioned is Read exposing the version number that accompanied the
// returned value — the linearization witness quorum consensus maintains.
// Intended for verification tooling (internal/checker) and diagnostics.
func (t *Txn) ReadVersioned(ctx context.Context, item string) (any, int, error) {
	if t.done {
		return nil, 0, ErrTxnDone
	}
	res, err := t.readPhase(ctx, item, LockRead)
	if err != nil {
		return nil, 0, err
	}
	t.store.Stats.Reads.Inc()
	return res.val, res.vn, nil
}

// ReadForUpdate performs a logical read that takes write locks, for
// read-modify-write transactions: acquiring the write intent up front
// avoids the read-to-write lock upgrade that deadlocks concurrent
// updaters.
func (t *Txn) ReadForUpdate(ctx context.Context, item string) (any, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		return nil, err
	}
	t.store.Stats.Reads.Inc()
	t.store.Stats.ReadLatency.Observe(time.Since(start))
	return res.val, nil
}

// Write performs a logical write: discover the current version number from
// a read-quorum (under write locks — update locking), then write
// (vn+1, val) to a write-quorum.
func (t *Txn) Write(ctx context.Context, item string, val any) error {
	if t.done {
		return ErrTxnDone
	}
	start := time.Now()
	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		return err
	}
	req := WriteReq{Txn: t.id, Item: item, VN: res.vn + 1, Val: val}
	if err := t.writeQuorum(ctx, res.cfg, func() any { return req }); err != nil {
		return err
	}
	t.store.Stats.Writes.Inc()
	t.store.Stats.WriteLatency.Observe(time.Since(start))
	t.store.traceEvent(string(t.id), "write", "%s := %v (vn %d)", item, val, req.VN)
	return nil
}

// WriteVersioned is Write exposing the version number the write installed
// — the linearization witness. Intended for verification tooling.
func (t *Txn) WriteVersioned(ctx context.Context, item string, val any) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	res, err := t.readPhase(ctx, item, LockWrite)
	if err != nil {
		return 0, err
	}
	req := WriteReq{Txn: t.id, Item: item, VN: res.vn + 1, Val: val}
	if err := t.writeQuorum(ctx, res.cfg, func() any { return req }); err != nil {
		return 0, err
	}
	t.store.Stats.Writes.Inc()
	return req.VN, nil
}

// control sends a commit/abort control message to each DM, retrying until
// acknowledged or ctx expires.
func (t *Txn) control(ctx context.Context, dms []string, req any) error {
	var firstErr error
	for _, dm := range dms {
		acked := false
		for attempt := 0; attempt <= t.store.opts.LockRetries && !acked; attempt++ {
			cctx, cancel := context.WithTimeout(ctx, t.store.opts.CallTimeout)
			raw, err := t.store.client.Call(cctx, dm, req)
			cancel()
			if err == nil {
				if ack, ok := raw.(Ack); ok && ack.OK {
					acked = true
					break
				}
			}
			t.store.backoff(ctx, attempt)
		}
		if !acked && firstErr == nil {
			firstErr = fmt.Errorf("%w: no ack from %s", ErrUnavailable, dm)
		}
	}
	return firstErr
}

// Sub runs fn in a subtransaction. If fn fails the subtransaction is
// aborted — its locks and buffered writes are discarded — and the error is
// returned for the parent to handle: a parent may tolerate the abort and
// continue, exactly the failure-handling the paper's algorithm supports.
// On success the subtransaction's locks and intentions are inherited by
// the parent.
func (t *Txn) Sub(ctx context.Context, fn func(*Txn) error) error {
	if t.done {
		return ErrTxnDone
	}
	t.mu.Lock()
	t.childSeq++
	child := &Txn{
		store:   t.store,
		id:      TxnID(fmt.Sprintf("%s/%d", t.id, t.childSeq)),
		touched: map[string]bool{},
	}
	t.mu.Unlock()
	if err := fn(child); err != nil {
		child.abort(ctx)
		return err
	}
	child.done = true
	if err := t.control(ctx, child.touchedDMs(), CommitSubReq{Txn: child.id}); err != nil {
		// Could not promote everywhere: the sub's effects would be
		// partial, so abort it instead.
		child.done = false
		child.abort(ctx)
		return err
	}
	t.mu.Lock()
	for dm := range child.touched {
		t.touched[dm] = true
	}
	t.mu.Unlock()
	t.store.traceEvent(string(child.id), "sub-commit", "promoted to %s", t.id)
	return nil
}

// abort discards the transaction's locks and intentions everywhere it
// touched (best effort; DMs it cannot reach will shed the state when the
// top-level transaction resolves or on restart).
func (t *Txn) abort(ctx context.Context) {
	t.done = true
	_ = t.control(ctx, t.touchedDMs(), AbortReq{Txn: t.id})
	t.store.Stats.Aborts.Inc()
	t.store.traceEvent(string(t.id), "abort", "discarded at %v", t.touchedDMs())
}

// Run executes fn as a top-level transaction, restarting it (with a fresh
// transaction ID) up to Options.TxnRetries times when it aborts due to lock
// conflicts — the cluster's deadlock/livelock resolution.
func (s *Store) Run(ctx context.Context, fn func(*Txn) error) error {
	start := time.Now()
	var err error
	for attempt := 0; attempt <= s.opts.TxnRetries; attempt++ {
		t := &Txn{
			store:   s,
			id:      TxnID(fmt.Sprintf("%s.t%d", s.clientID, s.txnSeq.Add(1))),
			touched: map[string]bool{},
		}
		err = fn(t)
		if err == nil {
			err = t.control(ctx, t.touchedDMs(), CommitTopReq{Txn: t.id})
			if err == nil {
				t.done = true
				s.Stats.Commits.Inc()
				s.Stats.TxnLatency.Observe(time.Since(start))
				s.traceEvent(string(t.id), "commit", "applied at %v", t.touchedDMs())
				return nil
			}
		}
		t.abort(ctx)
		if !errors.Is(err, ErrConflict) || ctx.Err() != nil {
			return err
		}
		s.Stats.Restarts.Inc()
		s.backoff(ctx, attempt)
	}
	return err
}

// Reconfigure installs a new configuration for item as its own top-level
// transaction, following Section 4: read (v, t, c, g) from a read-quorum of
// the current configuration, write (v, t) to a write-quorum of the new
// configuration, and write (c', g+1) to a write-quorum of the old one (and
// also of the new one when WriteConfigToBothQuorums is set, Gifford's
// original rule).
func (s *Store) Reconfigure(ctx context.Context, item string, newCfg quorum.Config) error {
	it, ok := s.items[item]
	if !ok {
		return fmt.Errorf("cluster: unknown item %q", item)
	}
	if err := newCfg.Validate(it.DMs); err != nil {
		return err
	}
	return s.Run(ctx, func(t *Txn) error {
		res, err := t.readPhase(ctx, item, LockWrite)
		if err != nil {
			return err
		}
		vw := WriteReq{Txn: t.id, Item: item, VN: res.vn, Val: res.val}
		if err := t.writeQuorum(ctx, newCfg, func() any { return vw }); err != nil {
			return err
		}
		cw := ConfigWriteReq{Txn: t.id, Item: item, Gen: res.gen + 1, Cfg: newCfg}
		if err := t.writeQuorum(ctx, res.cfg, func() any { return cw }); err != nil {
			return err
		}
		if s.opts.WriteConfigToBothQuorums {
			if err := t.writeQuorum(ctx, newCfg, func() any { return cw }); err != nil {
				return err
			}
		}
		s.observeConfig(item, res.gen+1, newCfg)
		s.traceEvent(string(t.id), "reconfig", "%s gen %d -> %d", item, res.gen, res.gen+1)
		return nil
	})
}
