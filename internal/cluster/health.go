package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/quorum"
)

// healthBoard is the per-replica failure detector: every call outcome
// accrues evidence, consecutive failures open a replica's circuit
// ("suspect"), and fan-outs steer around suspects — probing them with a
// single half-open trial every few phases instead of burning full fan-out
// and hedge budget on a replica that has not answered in a while. Latency
// EWMAs feed adaptive per-replica call timeouts so a dead replica is
// detected in milliseconds, not a full call timeout.
//
// All state transitions are counter-driven (N consecutive failures open,
// one success closes, every Kth planning pass probes), never timer-driven:
// under a seeded deterministic network the board's decisions are a pure
// function of the call outcome sequence, so chaos replay holds.
type healthBoard struct {
	mu sync.Mutex
	// failThreshold consecutive failures open a replica's circuit.
	failThreshold int
	// probeEvery is how many planning passes an open replica sits out
	// between half-open probe trials.
	probeEvery int
	// fixedTimeout suppresses latency-adaptive call timeouts (the one
	// wall-clock-measured input to the board's behavior); deterministic
	// harnesses set it so replays cannot fork on scheduler noise.
	fixedTimeout bool
	nodes        map[string]*nodeHealth

	stats *Stats
}

type nodeHealth struct {
	consecFails int
	open        bool
	sincePlan   int     // planning passes since the last probe while open
	ewma        float64 // smoothed round-trip estimate, nanoseconds
	successes   int64
	failures    int64
}

const (
	defaultFailThreshold = 3
	defaultProbeEvery    = 4
	// ewmaWeight is the weight of the newest sample.
	ewmaWeight = 0.2
	// adaptiveTimeoutMult scales the EWMA into a per-call timeout;
	// adaptiveTimeoutFloor keeps scheduler hiccups from failing healthy
	// calls.
	adaptiveTimeoutMult  = 5
	adaptiveTimeoutFloor = 3 * time.Millisecond
)

func newHealthBoard(stats *Stats, fixedTimeout bool) *healthBoard {
	return &healthBoard{
		failThreshold: defaultFailThreshold,
		probeEvery:    defaultProbeEvery,
		fixedTimeout:  fixedTimeout,
		nodes:         map[string]*nodeHealth{},
		stats:         stats,
	}
}

func (b *healthBoard) node(dm string) *nodeHealth {
	n := b.nodes[dm]
	if n == nil {
		n = &nodeHealth{}
		b.nodes[dm] = n
	}
	return n
}

// observe folds one call outcome in. ok means the replica answered at all
// — a lock-conflict refusal is proof of liveness. rtt is meaningful only
// when ok.
func (b *healthBoard) observe(dm string, ok bool, rtt time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.node(dm)
	if ok {
		n.successes++
		n.consecFails = 0
		if n.open {
			n.open = false
			if b.stats != nil {
				b.stats.SuspectReplicas.Add(-1)
			}
		}
		if n.ewma == 0 {
			n.ewma = float64(rtt)
		} else {
			n.ewma = (1-ewmaWeight)*n.ewma + ewmaWeight*float64(rtt)
		}
		return
	}
	n.failures++
	n.consecFails++
	if !n.open && n.consecFails >= b.failThreshold {
		n.open = true
		n.sincePlan = 0
		if b.stats != nil {
			b.stats.CircuitOpens.Inc()
			b.stats.SuspectReplicas.Add(1)
		}
	}
}

// suspect reports whether dm's circuit is open.
func (b *healthBoard) suspect(dm string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.nodes[dm]
	return n != nil && n.open
}

// plan decides which targets a fan-out should actually dial. If every
// target is healthy, or no quorum is coverable by healthy targets alone,
// everyone is dialed (availability first — a degraded cluster cannot
// afford to skip anyone). Otherwise the suspects are skipped, except that
// a suspect due for its half-open trial gets exactly one probe copy;
// probes maps those, so the fan-out exempts them from hedging. skipped
// counts the suspects left out entirely.
func (b *healthBoard) plan(targets []string, quorums []quorum.Set) (send []string, probes map[string]bool, skipped int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	healthy := make(map[string]bool, len(targets))
	anySuspect := false
	for _, dm := range targets {
		n := b.nodes[dm]
		if n != nil && n.open {
			anySuspect = true
		} else {
			healthy[dm] = true
		}
	}
	if !anySuspect {
		return targets, nil, 0
	}
	covered := false
	for _, q := range quorums {
		if q.SubsetOf(healthy) {
			covered = true
			break
		}
	}
	if !covered {
		return targets, nil, 0
	}
	for _, dm := range targets {
		if healthy[dm] {
			send = append(send, dm)
			continue
		}
		n := b.node(dm)
		n.sincePlan++
		if n.sincePlan >= b.probeEvery {
			n.sincePlan = 0
			if probes == nil {
				probes = map[string]bool{}
			}
			probes[dm] = true
			send = append(send, dm)
		} else {
			skipped++
		}
	}
	return send, probes, skipped
}

// orderQuorums stable-sorts quorums by how many suspect members each
// contains, fewest first — the sequential path's steering: try the quorums
// most likely to answer before the ones that need a suspect.
func (b *healthBoard) orderQuorums(qs []quorum.Set) []quorum.Set {
	b.mu.Lock()
	count := func(q quorum.Set) int {
		n := 0
		for dm := range q {
			if h := b.nodes[dm]; h != nil && h.open {
				n++
			}
		}
		return n
	}
	counts := make(map[int]int, len(qs))
	for i, q := range qs {
		counts[i] = count(q)
	}
	b.mu.Unlock()
	out := append([]quorum.Set(nil), qs...)
	idx := make([]int, len(qs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, c int) bool { return counts[idx[a]] < counts[idx[c]] })
	for i, j := range idx {
		out[i] = qs[j]
	}
	return out
}

// timeout derives dm's adaptive call timeout from its latency EWMA,
// clamped to [adaptiveTimeoutFloor, base]. Unknown replicas get the full
// base timeout.
func (b *healthBoard) timeout(dm string, base time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.nodes[dm]
	if b.fixedTimeout || n == nil || n.ewma <= 0 {
		return base
	}
	d := time.Duration(adaptiveTimeoutMult * n.ewma)
	if d < adaptiveTimeoutFloor {
		d = adaptiveTimeoutFloor
	}
	if d > base {
		d = base
	}
	return d
}

// ReplicaHealth is one replica's scoreboard snapshot.
type ReplicaHealth struct {
	DM string
	// Suspect reports an open circuit: the replica failed its last
	// failThreshold calls and is only probed, not trusted.
	Suspect bool
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	Successes           int64
	Failures            int64
	// EWMA is the smoothed round-trip estimate; zero before any success.
	EWMA time.Duration
}

// Health returns the scoreboard snapshot, sorted by replica name. Empty
// unless WithHealthProbes is on.
func (s *Store) Health() []ReplicaHealth {
	if s.health == nil {
		return nil
	}
	b := s.health
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ReplicaHealth, 0, len(b.nodes))
	for dm, n := range b.nodes {
		out = append(out, ReplicaHealth{
			DM: dm, Suspect: n.open, ConsecutiveFailures: n.consecFails,
			Successes: n.successes, Failures: n.failures,
			EWMA: time.Duration(n.ewma),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DM < out[j].DM })
	return out
}
