package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/checker"
	"repro/internal/commit"
)

// ErrCommitAbandoned reports that a CrashCommit coordinator stopped at its
// injected crash stage: the transaction was neither committed nor aborted
// by the coordinator, so its locks, intentions, and (under PaxosCommit)
// acceptor votes dangle exactly as a kill -9 would leave them. Chaos
// campaigns inject these crashes around the commit point and then verify
// the cluster converges on exactly one outcome — and, under PaxosCommit,
// that it converges without waiting out a lease TTL.
var ErrCommitAbandoned = errors.New("cluster: commit coordinator crashed")

// CommitCrashStage selects where a chaos-injected coordinator crash cuts a
// transaction short. The stages bracket the commit decision — under
// PaxosCommit the decide phase splits 2PC's single ambiguous instant into
// three distinct windows, each with a provable outcome rule.
type CommitCrashStage int

const (
	// CommitCrashNone runs the commit to completion.
	CommitCrashNone CommitCrashStage = iota
	// CommitCrashBeforeDecide dies after every write buffered its intention
	// and the fences passed, but before any Phase-2a accept (PaxosCommit)
	// or any CommitTopReq (TwoPhase) was sent. No acceptor voted and no DM
	// can apply: the outcome is a provable abort under both protocols.
	CommitCrashBeforeDecide
	// CommitCrashMidDecide dies partway through the Phase-2a fan-out:
	// Deliver cohort members durably accept ballot 0, the rest never hear
	// it. A majority of deliveries decides commit; fewer leave the instance
	// open — acceptor recovery then decides either way, and the chaos gate
	// checks only that the cluster converges on ONE outcome. Under TwoPhase
	// there is no decide phase; the stage degrades to BeforeDecide.
	CommitCrashMidDecide
	// CommitCrashBeforeLearn dies after the outcome is decided at an
	// acceptor majority but before any DM hears the learn broadcast: the
	// one window 2PC cannot express at all — the outcome is a provable
	// commit that NO replica has applied yet. Acceptor recovery must
	// reconstruct and finish it. Under TwoPhase the commit point is the
	// first CommitTopReq send, so this too degrades to BeforeDecide.
	CommitCrashBeforeLearn
	// CommitCrashMidLearn dies partway through the CommitTopReq broadcast:
	// Deliver written DMs apply, the rest never hear it. Under PaxosCommit
	// the outcome was already decided commit; under TwoPhase one delivery
	// decides commit and zero leave a presumed abort.
	CommitCrashMidLearn
)

// CommitCrashOptions tunes a CrashCommit run; the zero value commits
// cleanly.
type CommitCrashOptions struct {
	// Stage selects the injected coordinator crash point.
	Stage CommitCrashStage
	// Deliver is, for the Mid stages, how many targets (in sorted order)
	// hear the fan-out before the coordinator dies. Values past the target
	// set mean everyone heard.
	Deliver int
}

// CrashReport describes what a crashed commit coordinator left behind —
// everything the chaos harness needs to predict the mandatory outcome and
// to backfill the serializability history once the cluster resolves the
// orphan.
type CrashReport struct {
	// Txn is the abandoned transaction.
	Txn TxnID
	// Decided reports whether the outcome was provably decided commit
	// before the crash (an acceptor majority under PaxosCommit, at least
	// one applied CommitTopReq under TwoPhase).
	Decided bool
	// Cohort is the acceptor cohort size (0 under TwoPhase).
	Cohort int
	// Accepts is how many acceptors durably accepted ballot 0 before the
	// crash. It counts acknowledgements: under a lossy network an acceptor
	// may have accepted while its ack was dropped, so Accepts is a lower
	// bound on durable votes.
	Accepts int
	// Learned is how many written DMs acknowledged CommitTopReq before the
	// crash (a lower bound, like Accepts).
	Learned int
	// Sends is how many commit-carrying requests (Phase-2a accepts or
	// CommitTopReqs) the coordinator dispatched before dying, whether or
	// not they were acknowledged. Sends == 0 means no replica anywhere can
	// hold evidence of a commit: the only outcome a harness may demand is
	// abort. Sends > 0 proves nothing either way — a dispatched request
	// may have been dropped, or delivered with its ack lost.
	Sends int
	// DMs is every replica the crashed transaction may have left state at —
	// written and lock-granting DMs plus the acceptor cohort — the set a
	// harness must probe to observe the cluster's eventual resolution.
	DMs []string
	// Ops is the transaction's operation log, withheld from the history
	// recorder: the harness records it only if the cluster resolves the
	// orphan as committed.
	Ops []checker.Op
	// Start and End bracket the attempt for the history record.
	Start, End time.Time
}

// CrashCommit runs one write transaction (item := val) up to its commit
// point and then simulates a coordinator kill -9 at the requested stage:
// no abort, no further sends, locks and votes left dangling for the
// cluster to resolve. Returns ErrCommitAbandoned (with the report) when
// the injected crash fired, nil when Stage is CommitCrashNone and the
// commit completed. Test/chaos harness use only.
//
// The transaction is assembled by hand rather than via Run for the same
// reason MigrateItemOpts's is: the crash must cut at exact instants
// (between the decide and learn fan-outs, mid-broadcast) that Run's loop
// never exposes, and the abandoned coordinator must leave its state
// dangling instead of aborting on the way out.
func (s *Store) CrashCommit(ctx context.Context, item string, val any, opts CommitCrashOptions) (CrashReport, error) {
	rep := CrashReport{Start: time.Now()}
	t := &Txn{
		store:      s,
		id:         TxnID(fmt.Sprintf("%s.x%d", s.clientID, s.txnSeq.Add(1))),
		touched:    map[string]touchLevel{},
		leaseStamp: s.now(),
	}
	rep.Txn = t.id
	s.trackTxn(t)
	var cohort []string
	fail := func(err error) (CrashReport, error) {
		t.abort(ctx)
		s.untrackTxn(t)
		return rep, err
	}
	abandon := func() (CrashReport, error) {
		// The injected crash: untrack without abort. The locks dangle.
		s.untrackTxn(t)
		written, granted, _ := t.controlSets()
		seen := map[string]bool{}
		for _, set := range [][]string{written, granted, cohort} {
			for _, dm := range set {
				if !seen[dm] {
					seen[dm] = true
					rep.DMs = append(rep.DMs, dm)
				}
			}
		}
		sort.Strings(rep.DMs)
		rep.End = time.Now()
		t.mu.Lock()
		rep.Ops = append([]checker.Op(nil), t.ops...)
		t.mu.Unlock()
		s.traceEvent(string(t.id), "crashcommit",
			"%s: coordinator crashed (stage %d, decided %v, accepts %d/%d, learned %d)",
			item, opts.Stage, rep.Decided, rep.Accepts, rep.Cohort, rep.Learned)
		return rep, ErrCommitAbandoned
	}

	if err := t.Write(ctx, item, val); err != nil {
		// A clean pre-commit failure (conflict, no quorum): nothing is in
		// doubt, the ordinary abort applies.
		return fail(err)
	}
	if err := t.ensureLease(ctx); err != nil {
		s.Stats.LeaseExpiries.Inc()
		return fail(err)
	}
	if err := t.fenceHints(ctx); err != nil {
		return fail(err)
	}

	paxos := s.opts.protocol == commit.PaxosCommit
	if paxos {
		cohort = t.paxosCohort()
	}
	stage := opts.Stage
	if !paxos && (stage == CommitCrashMidDecide || stage == CommitCrashBeforeLearn) {
		// TwoPhase has no decide phase: everything before the first
		// CommitTopReq send is one window.
		stage = CommitCrashBeforeDecide
	}
	if stage == CommitCrashBeforeDecide {
		return abandon()
	}

	written, granted, tentative := t.controlSets()
	learn := CommitTopReq{Txn: t.id, Subs: t.committedSubs(), Final: t.finalVNs()}

	if paxos {
		rep.Cohort = len(cohort)
		if stage == CommitCrashMidDecide {
			// Deliver ballot-0 accepts to a prefix of the cohort, then die.
			// Sequential raw calls, like MigrateCrashMidCommit's partial
			// broadcast: the count of durable acceptances is exact.
			n := opts.Deliver
			if n > len(cohort) {
				n = len(cohort)
			}
			req := PaxosAcceptReq{
				Txn: t.id, Ballot: 0, Commit: true,
				Subs: t.committedSubs(), Final: t.finalVNs(), Cohort: cohort,
			}
			for _, dm := range cohort[:n] {
				budget, derr := s.callBudget(ctx)
				if derr != nil {
					break
				}
				rep.Sends++
				cctx, cancel := context.WithTimeout(ctx, budget)
				raw, err := s.client.Call(cctx, dm, req)
				cancel()
				if err == nil {
					if ans, ok := raw.(PaxosAcceptResp); ok && ans.OK {
						rep.Accepts++
					}
				}
			}
			rep.Decided = rep.Accepts >= commit.Quorum(len(cohort))
			return abandon()
		}
		// BeforeLearn and MidLearn both run the full decide phase first.
		rep.Sends += len(cohort)
		inDoubt, err := t.paxosDecide(ctx, cohort)
		if err != nil {
			if inDoubt {
				// Genuinely undecided — rarer than an injected crash but the
				// same shape; the report says so and the cluster resolves it.
				return abandon()
			}
			return fail(err)
		}
		rep.Decided = true
		rep.Accepts = len(cohort) // a full decide acked everywhere it could; majority guaranteed
		if stage == CommitCrashBeforeLearn {
			return abandon()
		}
	}

	// MidLearn: deliver CommitTopReq to a prefix of the written DMs, die.
	n := opts.Deliver
	if n > len(written) {
		n = len(written)
	}
	for _, dm := range written[:n] {
		budget, derr := s.callBudget(ctx)
		if derr != nil {
			break
		}
		rep.Sends++
		cctx, cancel := context.WithTimeout(ctx, budget)
		raw, err := s.client.Call(cctx, dm, learn)
		cancel()
		if err == nil {
			if ack, ok := raw.(Ack); ok && ack.OK {
				rep.Learned++
			}
		}
	}
	if !paxos {
		// Under TwoPhase the first applied CommitTopReq decides commit.
		rep.Decided = rep.Learned >= 1
	}
	if stage == CommitCrashMidLearn {
		return abandon()
	}

	// CommitCrashNone: finish the broadcast like Run would.
	missing := t.control(ctx, written, granted, tentative, learn)
	t.primeHintTargets(missing)
	t.done = true
	s.untrackTxn(t)
	s.Stats.Commits.Inc()
	rep.Decided = true
	rep.End = time.Now()
	t.mu.Lock()
	rep.Ops = append([]checker.Op(nil), t.ops...)
	t.mu.Unlock()
	if s.opts.history != nil {
		s.opts.history.RecordTxn(checker.TxnRecord{
			ID: string(t.id), Start: rep.Start, End: rep.End, Ops: rep.Ops,
		})
	}
	return rep, nil
}
