package cluster

import (
	"sort"

	"repro/internal/transport"
)

// ShardStat is one replica group's slice of the store's placement and
// admission counters — the per-shard view behind qcstore -inspect and the
// shard-scale experiment's load-balance check.
type ShardStat struct {
	// Group names the replica group.
	Group string
	// DMs is the group's replica set (sorted).
	DMs []string
	// Items counts the items the ring currently places on this group,
	// migration overrides included.
	Items int
	// Overload sums the admission counters of the group's DMs that this
	// store spawned (zero for replicas served by other processes).
	Overload transport.OverloadStats
}

// ShardStats aggregates placement and admission counters per replica
// group. Nil for unsharded stores. Safe to call concurrently with
// transactions and migrations: the ring and handle set are snapshotted
// under the store mutex and the admission counters are atomics the DM
// harnesses update lock-free.
func (s *Store) ShardStats() []ShardStat {
	ring := s.Ring()
	if ring == nil {
		return nil
	}
	s.mu.Lock()
	handles := make(map[string]*dmHandle, len(s.dms))
	for id, h := range s.dms {
		handles[id] = h
	}
	counts := map[string]int{}
	for name := range s.items {
		counts[ring.Lookup(name)]++
	}
	s.mu.Unlock()

	names := ring.GroupNames()
	out := make([]ShardStat, 0, len(names))
	for _, name := range names {
		g, _ := ring.Group(name)
		dms := append([]string(nil), g.DMs...)
		sort.Strings(dms)
		stat := ShardStat{Group: name, DMs: dms, Items: counts[name]}
		for _, dm := range dms {
			h := handles[dm]
			if h == nil {
				continue
			}
			oh := h.harness()
			if oh == nil {
				continue
			}
			st := oh.Overload()
			stat.Overload.Admitted += st.Admitted
			stat.Overload.Shed += st.Shed
			stat.Overload.ExpiredDropped += st.ExpiredDropped
			stat.Overload.ServedExpired += st.ServedExpired
		}
		out = append(out, stat)
	}
	return out
}
