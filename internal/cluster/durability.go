package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/commit"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/wal"
)

// The durable replica path makes the paper's resilient-object assumption
// honest: a DM's versioned value, quorum configuration, lock table,
// intention list and resolution set live in a write-ahead log, and no
// state-mutating request is acknowledged before its log record is durable.
// Recovery rebuilds the DM by replaying the log through the same apply()
// state machine that produced it, so a restarted replica answers exactly as
// the pre-crash one would — which is what lets an amnesia-crashed
// write-quorum member keep counting toward the quorum intersection
// invariant (Lemma 8) after it comes back.

// walRecord wraps one logged request so gob can carry the request types
// through an interface field.
type walRecord struct {
	Req any
}

// The request types a WAL record can carry are gob-registered in wire.go
// alongside every other protocol type — one registry for log and network.

// encodeRecord serializes one state-mutating request for the log.
func encodeRecord(req any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(walRecord{Req: req}); err != nil {
		return nil, fmt.Errorf("cluster: encode wal record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRecord reverses encodeRecord.
func decodeRecord(b []byte) (any, error) {
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("cluster: decode wal record: %w", err)
	}
	return rec.Req, nil
}

// intentSnap is the exported mirror of intent for snapshots.
type intentSnap struct {
	Owner    TxnID
	IsConfig bool
	VN       int
	Val      any
	Gen      int
	Cfg      quorum.Config
}

// replicaSnap is the exported mirror of one replica's full state.
type replicaSnap struct {
	Item     string
	VN       int
	Val      any
	Gen      int
	Cfg      quorum.Config
	Locks    map[TxnID]LockMode
	Intents  []intentSnap
	LockSeqs map[TxnID]int
	LockBorn map[TxnID]int
	Released map[TxnID]int
}

// resolutionSnap is the exported mirror of a resolution record.
type resolutionSnap struct {
	Committed bool
	Subs      []TxnID
}

// dmSnap is a whole DM's state at one point in the log.
type dmSnap struct {
	Replicas []replicaSnap
	Resolved map[TxnID]resolutionSnap
	// Moved carries the migration retirement markers: hard state like the
	// replicas themselves — a compacted log must still answer WrongShard
	// redirects for items this DM retired.
	Moved map[string]WrongShardResp
	// Acceptors carries the Paxos Commit acceptor hard state (promise
	// watermarks and accepted outcome values): a compacted log must still
	// let a majority reconstruct an undecided instance's outcome. Absent
	// from pre-Paxos snapshots, which gob decodes as nil.
	Acceptors map[TxnID]commit.Acceptor
}

// encodeSnapshot serializes the DM's complete state. Replicas are listed in
// item order so snapshots of identical state are structurally identical.
// Leases, in-flight inquiries, and freshness hints are soft state and
// deliberately absent: recovery re-stamps fresh leases (which only delays
// reaping) and rebuilds an empty hint table (a recovered replica serves no
// hinted reads until a commit or the sweeper re-proves its freshness).
func encodeSnapshot(s *dmServer) ([]byte, error) {
	snap := dmSnap{Resolved: map[TxnID]resolutionSnap{}}
	for t, res := range s.resolved {
		snap.Resolved[t] = resolutionSnap{Committed: res.committed, Subs: res.subs}
	}
	if len(s.moved) > 0 {
		snap.Moved = map[string]WrongShardResp{}
		for item, w := range s.moved {
			snap.Moved[item] = w
		}
	}
	if len(s.acceptors) > 0 {
		snap.Acceptors = map[TxnID]commit.Acceptor{}
		for t, acc := range s.acceptors {
			snap.Acceptors[t] = *acc
		}
	}
	names := make([]string, 0, len(s.replicas))
	for name := range s.replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := s.replicas[name]
		rs := replicaSnap{
			Item: name, VN: r.vn, Val: r.val, Gen: r.gen, Cfg: r.cfg.Clone(),
			Locks:    r.locks,
			LockSeqs: r.lockSeqs, LockBorn: r.lockBorn, Released: r.released,
		}
		for _, in := range r.intents {
			rs.Intents = append(rs.Intents, intentSnap{
				Owner: in.owner, IsConfig: in.isConfig,
				VN: in.vn, Val: in.val, Gen: in.gen, Cfg: in.cfg.Clone(),
			})
		}
		snap.Replicas = append(snap.Replicas, rs)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("cluster: encode wal snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// restoreSnapshot overwrites the DM's state with a decoded snapshot.
func restoreSnapshot(s *dmServer, b []byte) error {
	var snap dmSnap
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return fmt.Errorf("cluster: decode wal snapshot: %w", err)
	}
	s.resolved = map[TxnID]*resolution{}
	for t, rs := range snap.Resolved {
		s.resolved[t] = &resolution{committed: rs.Committed, subs: rs.Subs}
	}
	s.moved = map[string]WrongShardResp{}
	for item, w := range snap.Moved {
		s.moved[item] = w
	}
	s.acceptors = map[TxnID]*commit.Acceptor{}
	for t, acc := range snap.Acceptors {
		a := acc
		s.acceptors[t] = &a
	}
	s.replicas = map[string]*replica{}
	for _, rs := range snap.Replicas {
		r := &replica{
			vn: rs.VN, val: rs.Val, gen: rs.Gen, cfg: rs.Cfg,
			locks:    rs.Locks,
			lockSeqs: rs.LockSeqs, lockBorn: rs.LockBorn, released: rs.Released,
		}
		if r.locks == nil {
			r.locks = map[TxnID]LockMode{}
		}
		for _, in := range rs.Intents {
			r.intents = append(r.intents, intent{
				owner: in.Owner, isConfig: in.IsConfig,
				vn: in.VN, val: in.Val, gen: in.Gen, cfg: in.Cfg,
			})
		}
		s.replicas[rs.Item] = r
	}
	return nil
}

// RecoveryStats reports what a durable DM rebuilt when it opened its log.
type RecoveryStats struct {
	// Replayed is the number of log records re-applied through the state
	// machine.
	Replayed int
	// FromSnapshot reports whether a snapshot seeded the state before
	// replay.
	FromSnapshot bool
	// TruncatedBytes is the torn log tail dropped during open.
	TruncatedBytes int64
}

// defaultSnapshotEvery is how many logged records a durable DM absorbs
// before writing a compacting snapshot.
const defaultSnapshotEvery = 1024

// dmWAL couples one DM state machine to its write-ahead log. Its handle
// method runs on the sim node's single loop goroutine (actor discipline);
// only the deferred replies escape to the log's flusher goroutine.
type dmWAL struct {
	srv *dmServer
	log *wal.Log

	snapEvery int
	sinceSnap int

	// quarMu guards quarErr, the sticky quarantine verdict. Set on the
	// first failed append (ENOSPC, I/O error — the log also poisons
	// itself), read by the handler on the loop goroutine and by Store
	// accessors on theirs. Once set, the DM answers QuarantinedResp to
	// everything: the in-memory state may already be ahead of the durable
	// log, so serving (or promising) anything would hand out state a
	// restart cannot honor. Only a peer rebuild clears the condition — by
	// replacing the whole handle.
	quarMu  sync.Mutex
	quarErr error
}

// quarantine records the fault that ends this incarnation's service,
// counting the first occurrence. Callable from the log's flusher goroutine
// (append callbacks) as well as the loop goroutine.
func (d *dmWAL) quarantine(err error) {
	d.quarMu.Lock()
	first := d.quarErr == nil
	d.quarErr = err
	d.quarMu.Unlock()
	if first && d.srv.stats != nil {
		d.srv.stats.Quarantines.Inc()
	}
}

// quarantined returns the sticky quarantine verdict, nil while healthy.
func (d *dmWAL) quarantined() error {
	d.quarMu.Lock()
	defer d.quarMu.Unlock()
	return d.quarErr
}

// handle applies a request and defers its reply until the corresponding log
// record is durable — the persist-before-ack discipline. Requests that
// mutate nothing (refusals, inspections, idempotent re-deliveries) reply
// immediately: a restart loses nothing they promised. Because the log is
// sequential, a record's durability implies every earlier record's, so an
// acked request can never be contradicted by recovery.
func (d *dmWAL) handle(_ string, req any, reply func(any)) {
	// A quarantined replica serves nothing — not even reads or lease
	// coordination. Its in-memory state may be ahead of the durable log
	// (the apply that hit the failed append already ran), and its log is
	// untrusted; every answer is the typed refusal until a peer rebuild
	// replaces this incarnation.
	if qerr := d.quarantined(); qerr != nil {
		reply(QuarantinedResp{DM: d.srv.id, Reason: qerr.Error()})
		return
	}
	// Hinted reads translate to plain ReadReqs before the apply/log path
	// sees them (as in the volatile handler): the log carries only the
	// equivalent ReadReq, so replay never consults hint state, and a miss
	// is answered without logging anything.
	if q, ok := req.(HintReadReq); ok {
		rr, miss := d.srv.hintCheck(q)
		if miss != nil {
			reply(*miss)
			return
		}
		req = rr
	}
	if resp, handled := d.srv.coordinate(req); handled {
		// Lease coordination (renewals, resolution queries and answers) is
		// soft state and never logged; the reap decisions it produces come
		// back through selfApply, which does persist them.
		reply(resp)
		return
	}
	resp, mutated := d.srv.apply(req)
	if !mutated {
		reply(resp)
		return
	}
	rec, err := encodeRecord(req)
	if err != nil {
		return // cannot persist ⇒ never acknowledge
	}
	// Fail closed on write errors: an append the log refuses (or fails at
	// flush — ENOSPC, a dying disk) quarantines the replica instead of
	// silently dropping the ack. The caller learns immediately rather than
	// burning its timeout, and no later request can be served from state
	// the log no longer backs.
	if aerr := d.log.AppendCallback(rec, func(ferr error) {
		if ferr == nil {
			reply(resp)
			return
		}
		d.quarantine(ferr)
		reply(QuarantinedResp{DM: d.srv.id, Reason: ferr.Error()})
	}); aerr != nil {
		d.quarantine(aerr)
		reply(QuarantinedResp{DM: d.srv.id, Reason: aerr.Error()})
		return
	}
	d.maybeSnapshot()
}

// selfApply routes a reap decision through the same apply+log path as
// client requests, minus the reply — there is no caller to acknowledge.
// It runs on the node's loop goroutine (coordinate calls it), so the
// single-writer discipline of the log holds. A reap whose record is lost
// to a crash before the flush is simply re-decided after recovery: the
// restored locks get fresh leases, lapse again, and the inquiry re-runs.
func (d *dmWAL) selfApply(req any) {
	if d.quarantined() != nil {
		return
	}
	_, mutated := d.srv.apply(req)
	if !mutated {
		return
	}
	rec, err := encodeRecord(req)
	if err != nil {
		return
	}
	if aerr := d.log.AppendCallback(rec, func(ferr error) {
		if ferr != nil {
			d.quarantine(ferr)
		}
	}); aerr != nil {
		d.quarantine(aerr)
		return
	}
	d.maybeSnapshot()
}

// persist logs one already-applied mutating request and runs done once the
// record is durable — the deferred half of the persist-before-ack
// discipline for acceptor answers that travel as peer notifications
// instead of replies. done is captured on the loop goroutine and only
// sends; it never reads actor state (it runs on the log's flusher).
// A record lost to a crash before the flush never answered, so the
// recovered acceptor never contradicts a promise it sent.
func (d *dmWAL) persist(req any, done func()) {
	if d.quarantined() != nil {
		return
	}
	rec, err := encodeRecord(req)
	if err != nil {
		return // cannot persist ⇒ never answer
	}
	if aerr := d.log.AppendCallback(rec, func(ferr error) {
		if ferr == nil {
			done()
			return
		}
		d.quarantine(ferr)
	}); aerr != nil {
		d.quarantine(aerr)
		return
	}
	d.maybeSnapshot()
}

func (d *dmWAL) maybeSnapshot() {
	d.sinceSnap++
	if d.sinceSnap < d.snapEvery {
		return
	}
	d.sinceSnap = 0
	// The state already reflects every appended record (single-writer:
	// this goroutine is the only appender), which is exactly what
	// WriteSnapshot requires.
	if state, err := encodeSnapshot(d.srv); err == nil {
		d.log.WriteSnapshot(state)
	}
}

// newDurableDM opens (or recovers) the write-ahead log in dir, rebuilds the
// DM state machine from it, and starts its server endpoint. wire, when
// non-nil, configures the recovered state machine (lease parameters, peer
// transport) after replay and before the endpoint starts serving.
//
// A log that fails to open with a CorruptionError — damage beyond the
// torn-tail truncation Open performs itself — does NOT fail the call:
// acknowledged state may be missing or altered, so instead of serving from
// an untrustworthy log (or crashing the whole store over one disk) the
// replica comes up quarantined, answering QuarantinedResp to everything
// until a peer rebuild (Store.RebuildReplica) replaces it. Callers detect
// the condition via dmHandle.quarantineReason.
func newDurableDM(tr transport.Transport, id string, items []ItemSpec, dir string, walOpts []wal.Option, snapEvery int, wire func(*dmServer), serveOpts ...transport.ServeOption) (*dmHandle, RecoveryStats, error) {
	log, rec, err := wal.Open(dir, walOpts...)
	if err != nil {
		if wal.IsCorruption(err) {
			h, qerr := quarantinedDM(tr, id, items, dir, fmt.Errorf("cluster: dm %s: %w", id, err), serveOpts...)
			return h, RecoveryStats{}, qerr
		}
		return nil, RecoveryStats{}, fmt.Errorf("cluster: dm %s: %w", id, err)
	}
	srv := newDMState(id, items)
	stats := RecoveryStats{TruncatedBytes: rec.TruncatedBytes}
	if rec.Snapshot != nil {
		if err := restoreSnapshot(srv, rec.Snapshot); err != nil {
			log.Close()
			return nil, RecoveryStats{}, err
		}
		stats.FromSnapshot = true
	}
	for _, raw := range rec.Records {
		req, err := decodeRecord(raw)
		if err != nil {
			log.Close()
			return nil, RecoveryStats{}, err
		}
		srv.apply(req)
		stats.Replayed++
	}
	h, err := startDurableDM(tr, id, items, dir, log, srv, snapEvery, wire, serveOpts...)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	return h, stats, nil
}

// startDurableDM couples an already-recovered (or rebuilt) state machine to
// its open log and starts the server endpoint — the shared tail of
// newDurableDM and rebuildReplica.
func startDurableDM(tr transport.Transport, id string, items []ItemSpec, dir string, log *wal.Log, srv *dmServer, snapEvery int, wire func(*dmServer), serveOpts ...transport.ServeOption) (*dmHandle, error) {
	if snapEvery <= 0 {
		snapEvery = defaultSnapshotEvery
	}
	d := &dmWAL{srv: srv, log: log, snapEvery: snapEvery}
	if wire != nil {
		wire(srv)
	}
	srv.selfApply = d.selfApply
	srv.persist = d.persist
	// Lease stamps from the previous incarnation are meaningless wall-clock
	// values; give every recovered lock holder a fresh lease. Delayed
	// reaping is always safe, invented expiry is not.
	srv.refreshLeases()
	h := &dmHandle{id: id, items: items, srv: srv, wal: d, walPath: dir}
	server, err := tr.Serve(id, d.handle, serveOpts...)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("cluster: dm %s: %w", id, err)
	}
	// The state machine's peer sender binds to the live endpoint only now;
	// any lease poll that fired during the gap is re-sent on the next
	// conflict, so the brief sender-less window is harmless.
	srv.setSender(server.Notify)
	h.server = server
	return h, nil
}

// quarantinedDM serves a replica slot whose log cannot be trusted: every
// request — reads, writes, leases, probes, Paxos — is answered with the
// typed refusal. The handle keeps the items and log path so RebuildReplica
// knows what to rebuild and where; srv is a fresh empty state machine so
// accessors that reach through the handle keep working.
func quarantinedDM(tr transport.Transport, id string, items []ItemSpec, dir string, cause error, serveOpts ...transport.ServeOption) (*dmHandle, error) {
	h := &dmHandle{
		id: id, items: items, srv: newDMState(id, items),
		walPath: dir, quarantined: cause,
	}
	reason := cause.Error()
	server, err := tr.Serve(id, func(_ string, _ any, reply func(any)) {
		reply(QuarantinedResp{DM: id, Reason: reason})
	}, serveOpts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: dm %s: %w", id, err)
	}
	h.server = server
	return h, nil
}

// RestartDM simulates recovery from an amnesia crash of one DM: the server
// endpoint is torn down, its in-memory state discarded, and a fresh state
// machine is rebuilt purely from the DM's write-ahead log. The endpoint
// then rejoins the transport under the same id. Only valid on stores
// opened with WithDurability.
func (s *Store) RestartDM(id string) (RecoveryStats, error) {
	s.mu.Lock()
	h := s.dms[id]
	s.mu.Unlock()
	if h == nil {
		return RecoveryStats{}, fmt.Errorf("cluster: unknown DM %q", id)
	}
	if h.walPath == "" {
		return RecoveryStats{}, fmt.Errorf("cluster: DM %q is not durable", id)
	}
	h.server.Close()
	if h.wal != nil {
		if err := h.wal.log.Close(); err != nil && h.wal.quarantined() == nil {
			// A quarantined incarnation's poisoned log reports its sticky
			// error at close; that is old news, not a reason to refuse the
			// restart (which will re-judge the log from disk).
			return RecoveryStats{}, fmt.Errorf("cluster: dm %s: close wal: %w", id, err)
		}
	}
	s.mu.Lock()
	all := make([]string, 0, len(s.dms))
	for dm := range s.dms {
		all = append(all, dm)
	}
	s.mu.Unlock()
	sort.Strings(all)
	nh, stats, err := newDurableDM(s.tr, id, h.items, h.walPath, s.opts.walOpts, s.opts.snapEvery, s.leaseWiring(id, peersOf(id, all)), s.dmServeOpts(id)...)
	if err != nil {
		return RecoveryStats{}, err
	}
	s.mu.Lock()
	s.dms[id] = nh
	s.mu.Unlock()
	if nh.quarantined != nil {
		// The restart found a log it cannot trust. The slot serves the typed
		// refusal until RebuildReplica replaces it; the restart itself did not
		// fail — the caller decides when (and whether) to rebuild.
		s.Stats.Quarantines.Inc()
		return RecoveryStats{}, nil
	}
	s.Stats.Recoveries.Inc()
	s.Stats.ReplayedRecords.Add(int64(stats.Replayed))
	return stats, nil
}

// WALMetrics returns the write-ahead-log metrics of one durable DM, or nil
// for volatile stores and unknown ids.
func (s *Store) WALMetrics(id string) *wal.Metrics {
	s.mu.Lock()
	h := s.dms[id]
	s.mu.Unlock()
	if h == nil || h.wal == nil {
		return nil
	}
	return h.wal.log.Metrics()
}
