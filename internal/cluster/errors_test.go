package cluster

import (
	"errors"
	"strings"
	"testing"
)

// TestTypedErrors pins the error contract across the shed, expiry-at-
// dequeue, brownout, conflict, unavailability and lease paths: every
// structured error matches its sentinel(s) through errors.Is, exposes its
// detail through errors.As, and never matches sentinels from other
// failure families.
func TestTypedErrors(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"conflict", ErrConflict},
		{"unavailable", ErrUnavailable},
		{"lease", ErrLeaseExpired},
		{"overloaded", ErrOverloaded},
		{"degraded", ErrDegraded},
	}
	cases := []struct {
		name    string
		err     error
		is      []error // sentinels that must match
		mention string  // substring the message must carry
	}{
		{
			name:    "conflict",
			err:     &ConflictError{Item: "x", Txn: "c1.t1", Phase: "read", Attempts: 3, Responded: []string{"B", "A"}},
			is:      []error{ErrConflict},
			mention: "lock conflict",
		},
		{
			name:    "unavailable",
			err:     &UnavailableError{Item: "x", Txn: "c1.t1", Phase: "write", Attempts: 2, Missing: []string{"C"}},
			is:      []error{ErrUnavailable},
			mention: "no quorum",
		},
		{
			name: "lease expired",
			err:  &LeaseExpiredError{Txn: "c1.t1", DM: "A"},
			// A lapsed lease aborts the transaction exactly like a conflict,
			// so Run's restart logic must see both.
			is:      []error{ErrLeaseExpired, ErrConflict},
			mention: "lease",
		},
		{
			name:    "shed at admission",
			err:     &OverloadedError{Item: "x", Txn: "c1.t1", Phase: "read", Attempts: 1, Shed: []string{"A", "B"}},
			is:      []error{ErrOverloaded},
			mention: "shed the request at admission",
		},
		{
			name:    "expired on arrival",
			err:     &OverloadedError{Item: "x", Txn: "c1.t1", Phase: "read", Attempts: 1, Shed: []string{"A"}, Expired: true},
			is:      []error{ErrOverloaded},
			mention: "expired in a replica queue",
		},
		{
			name:    "retry budget denied",
			err:     &OverloadedError{Item: "x", Txn: "c1.t1", Phase: "write", Attempts: 2, Shed: []string{"A"}, BudgetDenied: true},
			is:      []error{ErrOverloaded},
			mention: "retry budget",
		},
		{
			name: "brownout",
			err:  &DegradedError{Op: "write", Item: "x", Since: 3},
			// Brownout exists because write quorums stopped being
			// serviceable, so unavailability-aware callers must match too.
			is:      []error{ErrDegraded, ErrUnavailable},
			mention: "read-only degraded mode",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, want := range tc.is {
				if !errors.Is(tc.err, want) {
					t.Errorf("errors.Is(%T, %v) = false, want true", tc.err, want)
				}
			}
			// No cross-family matches beyond the declared ones.
			for _, s := range sentinels {
				declared := false
				for _, want := range tc.is {
					if s.err == want {
						declared = true
					}
				}
				if !declared && errors.Is(tc.err, s.err) {
					t.Errorf("errors.Is(%T, %v) = true, want false", tc.err, s.err)
				}
			}
			if !strings.Contains(tc.err.Error(), tc.mention) {
				t.Errorf("message %q does not mention %q", tc.err.Error(), tc.mention)
			}
		})
	}
}

// TestTypedErrorsAs pins errors.As extraction of the overload-path detail.
func TestTypedErrorsAs(t *testing.T) {
	var wrapped error = &OverloadedError{
		Item: "x", Txn: "c1.t1", Phase: "read",
		Attempts: 4, Shed: []string{"B", "A"}, Expired: true, BudgetDenied: true,
	}
	var oe *OverloadedError
	if !errors.As(wrapped, &oe) {
		t.Fatal("errors.As failed for OverloadedError")
	}
	if oe.Attempts != 4 || len(oe.Shed) != 2 || !oe.Expired || !oe.BudgetDenied {
		t.Errorf("extracted detail = %+v", oe)
	}

	var derr error = &DegradedError{Op: "reconfigure", Item: "y", Since: 5}
	var de *DegradedError
	if !errors.As(derr, &de) {
		t.Fatal("errors.As failed for DegradedError")
	}
	if de.Op != "reconfigure" || de.Since != 5 {
		t.Errorf("extracted detail = %+v", de)
	}
	var ue *UnavailableError
	if errors.As(derr, &ue) {
		t.Error("DegradedError must not extract as *UnavailableError (it only shares the sentinel)")
	}
}
