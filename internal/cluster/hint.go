package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Freshness hints: the read-dominant fast lane (DESIGN.md §9).
//
// A replica holds a per-item hint asserting that its committed (vn, gen)
// is the cluster maximum. While the hint is live — unexpired, still
// matching the replica's committed state, no writer in flight — the
// replica may serve a read alone, without a read quorum. The quorum
// intersection a single-replica read bypasses is restored by the write
// fence: before its commit point, a writer revokes the hint at every
// replica of each written item, and a fence that finds another
// transaction's lock (a hinted reader mid-transaction) is refused until
// that reader resolves — exactly the conflict the read quorum would have
// surfaced.
//
// Hints are soft state on both sides. DMs never log or snapshot them:
// after amnesia a replica proves freshness again (a commit it applies, or
// the sweeper's unanimous inspection) before serving alone. Clients cache
// at most one target replica per item and treat every miss as a free
// fallback to the quorum path.

// itemHint is one replica-side freshness bound.
type itemHint struct {
	vn     int
	gen    int
	expiry time.Time
}

// hintFence records the revocation a writer stamped on an item: who fenced
// and when. While the stamp is fresher than one hint TTL, grants are
// refused — except the fencing transaction's own commit, which IS the
// event the fence was protecting and may re-prove freshness immediately.
// The owner matters: a commit that arrives late, after a DIFFERENT writer
// fenced the item, must not re-grant (that writer is about to install a
// newer version at replicas this one may not be part of).
type hintFence struct {
	txn TxnID
	at  time.Time
}

// configureHints arms the replica-side hint machinery; ttl <= 0 leaves it
// off (every HintReadReq misses). Must be called before the server's node
// starts, like configureLeases.
func (s *dmServer) configureHints(ttl time.Duration) {
	s.hintTTL = ttl
	if ttl > 0 {
		if s.hints == nil {
			s.hints = map[string]itemHint{}
		}
		if s.hintFences == nil {
			s.hintFences = map[string]hintFence{}
		}
	}
}

// grantHint installs a freshness hint for item at the replica's current
// committed state — called at commit-apply, for each replica whose
// committed (vn, gen) the commit advanced: such a replica holds the newest
// committed version, the cluster maximum by write-lock serialization. A
// fresh fence stamped by a different transaction refuses the grant: this
// commit arrived late, after a newer writer already fenced, and the state
// it installed is about to be superseded at replicas it cannot see.
func (s *dmServer) grantHint(item string, r *replica, by TxnID) {
	if s.hintTTL <= 0 {
		return
	}
	now := s.clock.Now()
	if f, ok := s.hintFences[item]; ok && f.txn != by.Top() && now.Sub(f.at) < s.hintTTL {
		return
	}
	delete(s.hintFences, item)
	if s.hints == nil {
		s.hints = map[string]itemHint{}
	}
	s.hints[item] = itemHint{vn: r.vn, gen: r.gen, expiry: now.Add(s.hintTTL)}
}

// fenceHintLocal revokes item's hint and stamps the fence window for the
// writing transaction. Called from apply when a write lock is granted (the
// write-quorum members' fence rides the lock grant itself) and from the
// explicit HintFenceReq the writer sends to the remaining replicas. The
// stamp is soft state: a replay rebuilds an empty hint table, which is
// strictly safer.
func (s *dmServer) fenceHintLocal(item string, by TxnID) {
	if s.hintTTL <= 0 {
		return
	}
	delete(s.hints, item)
	s.hintFences[item] = hintFence{txn: by.Top(), at: s.clock.Now()}
}

// hintLive reports whether the replica currently holds a hint for item
// that matches its committed state, is unexpired, and has no writer in
// flight. Read locks are compatible — they cannot change the value.
func (s *dmServer) hintLive(item string, r *replica) bool {
	if s.hintTTL <= 0 {
		return false
	}
	h, ok := s.hints[item]
	if !ok {
		return false
	}
	if s.clock.Now().After(h.expiry) {
		delete(s.hints, item)
		return false
	}
	if h.vn != r.vn || h.gen != r.gen {
		delete(s.hints, item)
		return false
	}
	if len(r.intents) > 0 {
		return false
	}
	for _, m := range r.locks {
		if m == LockWrite {
			return false
		}
	}
	return true
}

// hintCheck validates a HintReadReq against the replica's hint. On success
// it returns the equivalent ReadReq — the caller feeds it through the
// ordinary apply path, so the fast lane grants a real read lock, stamps a
// real lease, and logs a real WAL record; a replay never consults hint
// state. On failure it returns the HintMissResp to answer with.
func (s *dmServer) hintCheck(q HintReadReq) (ReadReq, *HintMissResp) {
	miss := func(reason string) (ReadReq, *HintMissResp) {
		return ReadReq{}, &HintMissResp{DM: s.id, Reason: reason}
	}
	if _, ok := s.moved[q.Item]; ok {
		// Retired after a migration: the quorum path the miss forces will
		// hit the moved marker and absorb the WrongShard redirect.
		return miss("moved")
	}
	r := s.replicas[q.Item]
	if r == nil {
		return miss("unknown-item")
	}
	if s.hintTTL <= 0 {
		return miss("disabled")
	}
	h, ok := s.hints[q.Item]
	if !ok {
		return miss("none")
	}
	if s.clock.Now().After(h.expiry) {
		delete(s.hints, q.Item)
		return miss("expired")
	}
	if h.vn != r.vn || h.gen != r.gen {
		delete(s.hints, q.Item)
		return miss("stale")
	}
	if q.Gen != r.gen {
		return miss("gen")
	}
	if len(r.intents) > 0 {
		return miss("writer")
	}
	for _, m := range r.locks {
		if m == LockWrite {
			return miss("writer")
		}
	}
	return ReadReq{Txn: q.Txn, Item: q.Item, Lock: LockRead, Seq: q.Seq}, nil
}

// coordinateHints handles the hint-maintenance messages that never touch
// the replicated state machine: sweeper grants and write fences. Both are
// soft state, so like lease coordination they are never logged or
// replayed.
func (s *dmServer) coordinateHints(req any) (resp any, handled bool) {
	switch q := req.(type) {
	case HintGrantReq:
		r := s.replicas[q.Item]
		if r == nil || s.hintTTL <= 0 {
			return Ack{OK: false}, true
		}
		// Conditional accept: the grant proves (vn, gen) was the unanimous
		// committed state when the sweeper looked; accept only while that is
		// still this replica's state, no transaction holds any lock or
		// intention here, and no write fence is fresh — any of those means a
		// writer moved between inspection and delivery.
		if q.VN != r.vn || q.Gen != r.gen || len(r.locks) > 0 || len(r.intents) > 0 {
			return Ack{OK: false}, true
		}
		now := s.clock.Now()
		if f, ok := s.hintFences[q.Item]; ok && now.Sub(f.at) < s.hintTTL {
			// A writer fenced after the sweeper's inspection: its commit may
			// already be applied elsewhere with a version this replica has not
			// seen, so the inspected unanimity is no longer evidence.
			return Ack{OK: false}, true
		}
		s.hints[q.Item] = itemHint{vn: r.vn, gen: r.gen, expiry: now.Add(s.hintTTL)}
		return Ack{OK: true}, true
	case HintFenceReq:
		r := s.replicas[q.Item]
		if r == nil || s.hintTTL <= 0 {
			return Ack{OK: true}, true
		}
		// Revoke first, verdict second: even a refused fence stops new
		// hinted reads immediately.
		s.fenceHintLocal(q.Item, q.Txn)
		for holder := range r.locks {
			if holder.Top() != q.Txn.Top() {
				// Another transaction — possibly a hinted reader that holds
				// only this replica's lock — is still in flight on the item.
				// The writer must wait it out exactly as quorum intersection
				// would have made it; noteConflict gives expired-lease
				// holders (a crashed reader) to the orphan reaper.
				s.noteConflict(r, q.Txn)
				return Ack{OK: false}, true
			}
		}
		return Ack{OK: true}, true
	}
	return nil, false
}

// --- client side ---

// hintTarget is the client's cached fast-lane target for one item.
type hintTarget struct {
	dm     string
	gen    int
	expiry time.Time
}

// hintCache is the client-side map of items to hinted replicas. Guarded by
// its own mutex: the fan-out's response folding updates it concurrently.
// epoch is the placement-ring epoch the cache was last valid for; every
// advance clears the cache wholesale (setEpoch).
type hintCache struct {
	mu      sync.Mutex
	epoch   int
	targets map[string]hintTarget
}

// setEpoch invalidates the cache when the placement ring advances: every
// cached target was learned under the old placement, and a hint that
// survives a migration points a single-replica read at a retired replica.
// Clearing wholesale is cheap and total — ring epochs advance only on
// membership changes and cutovers, never on the data path.
func (c *hintCache) setEpoch(e int) {
	c.mu.Lock()
	if e > c.epoch {
		c.epoch = e
		c.targets = nil
	}
	c.mu.Unlock()
}

// note caches dm as item's fast-lane target.
func (c *hintCache) note(item, dm string, gen int, expiry time.Time) {
	c.mu.Lock()
	if c.targets == nil {
		c.targets = map[string]hintTarget{}
	}
	c.targets[item] = hintTarget{dm: dm, gen: gen, expiry: expiry}
	c.mu.Unlock()
}

// get returns the cached target if it is unexpired and was learned under
// the given configuration generation.
func (c *hintCache) get(item string, gen int, now time.Time) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.targets[item]
	if !ok || t.gen != gen || now.After(t.expiry) {
		if ok {
			delete(c.targets, item)
		}
		return "", false
	}
	return t.dm, true
}

// drop forgets item's cached target (after a miss or a transport error).
func (c *hintCache) drop(item string) {
	c.mu.Lock()
	delete(c.targets, item)
	c.mu.Unlock()
}

// noteHintTarget records a fast-lane target learned from a Hinted
// quorum-read reply or a sweeper grant round.
func (s *Store) noteHintTarget(item, dm string, gen int) {
	if !s.opts.readLease {
		return
	}
	s.hintCache.note(item, dm, gen, s.now().Add(s.opts.readLeaseTTL))
}

// HintTarget exposes the cached fast-lane target for harnesses (the chaos
// scheduler partitions exactly the replica the next hinted read would
// use). Second result false when no live target is cached.
func (s *Store) HintTarget(item string) (string, bool) {
	return s.hintCache.get(item, s.config(item).gen, s.now())
}

// tryHintRead attempts the single-replica fast lane: one HintReadReq to
// the cached target. ok=false means fall through to the quorum path — the
// fast lane never surfaces an error, because every failure mode (miss,
// conflict, dead replica, no cache entry) is answered authoritatively by
// a quorum read.
func (t *Txn) tryHintRead(ctx context.Context, item string) (readResult, bool) {
	s := t.store
	believed := s.config(item)
	dm, ok := s.hintCache.get(item, believed.gen, s.now())
	if !ok {
		return readResult{}, false
	}
	if s.health != nil && s.health.suspect(dm) {
		// The planner's steering applies to the fast lane too: a suspect
		// target gets no solo read — the quorum fan-out probes it instead.
		return readResult{}, false
	}
	s.Stats.HintReads.Inc()
	seq := t.nextSeq()
	budget, derr := s.callBudget(ctx)
	if derr != nil {
		return readResult{}, false
	}
	callStart := time.Now()
	cctx, cancel := context.WithTimeout(ctx, budget)
	raw, err := s.client.Call(cctx, dm, HintReadReq{Txn: t.id, Item: item, Seq: seq, Gen: believed.gen})
	cancel()
	if err != nil {
		// The request may have granted before the reply was lost: tombstone
		// the phase (late copies must not re-grant) and keep the DM on the
		// transaction's tentative control list, exactly like an abandoned
		// fan-out copy.
		t.touchTentative(dm)
		s.client.Notify(dm, ReleaseReq{Txn: t.id, Item: item, Seq: seq})
		if ctx.Err() == nil {
			s.observeDM(dm, false, 0)
		}
		s.hintCache.drop(item)
		s.Stats.HintMisses.Inc()
		return readResult{}, false
	}
	s.observeDM(dm, true, time.Since(callStart))
	switch resp := raw.(type) {
	case ReadResp:
		if resp.OK {
			t.touch(dm)
			s.Stats.HintHits.Inc()
			return readResult{vn: resp.VN, val: resp.Val, gen: resp.Gen, cfg: resp.Cfg}, true
		}
		// Busy (a conflicting writer) or refused (resolved/tombstoned):
		// the quorum path owns conflict arbitration and backoff.
		s.Stats.HintMisses.Inc()
		return readResult{}, false
	case HintMissResp:
		s.hintCache.drop(item)
		s.Stats.HintMisses.Inc()
		return readResult{}, false
	case WrongShardResp:
		// The cached target retired the item since the hint was primed.
		// Adopt the redirect (which also drops the stale cache entry) and
		// let the quorum path re-read under the new placement.
		s.Stats.WrongShardRedirects.Inc()
		s.adoptRedirect(resp)
		s.Stats.HintMisses.Inc()
		return readResult{}, false
	default:
		// Overloaded or unexpected: fall back, the quorum path classifies.
		s.Stats.HintMisses.Inc()
		return readResult{}, false
	}
}

// noteWrittenItem records an item this transaction buffered a write for;
// the pre-commit fence must revoke hints at every replica of each one.
func (t *Txn) noteWrittenItem(item string) {
	t.mu.Lock()
	if t.wroteItems == nil {
		t.wroteItems = map[string]bool{}
	}
	t.wroteItems[item] = true
	t.mu.Unlock()
}

// primeHintTargets is the write-through cache note: after its own commit,
// a writer already knows where freshness lives — every write-quorum
// replica that acked the commit applied the final version and
// self-granted a hint (the Final match in CommitTopReq handling). Priming
// the fast-lane cache with one such replica per written item lets the
// writer's next read go hinted immediately instead of relearning the
// target through a full quorum round — exactly the read that would
// otherwise always be a fallback. The note is only a guess (a replica
// holding an earlier version of a multi-write item carries no hint and
// answers with a miss), so a wrong prime costs one fallback, never
// correctness.
func (t *Txn) primeHintTargets(missing []string) {
	s := t.store
	if !s.opts.readLease {
		return
	}
	skip := make(map[string]bool, len(missing))
	for _, dm := range missing {
		skip[dm] = true
	}
	t.mu.Lock()
	items := make([]string, 0, len(t.wroteVNs))
	for item := range t.wroteVNs {
		items = append(items, item)
	}
	touched := make(map[string]touchLevel, len(t.touched))
	for dm, lvl := range t.touched {
		touched[dm] = lvl
	}
	t.mu.Unlock()
	for _, item := range items {
		it, ok := s.itemSpec(item)
		if !ok {
			continue
		}
		for _, dm := range it.DMs {
			if skip[dm] || touched[dm] < touchWritten {
				continue
			}
			s.noteHintTarget(item, dm, s.config(item).gen)
			break
		}
	}
}

// noteWrittenVN records the version number a successful write phase
// installed for item. Writes overwrite monotonically within one
// transaction tree (each picks read-quorum max + 1 under the tree's write
// locks), so the last note is the final version; max keeps the record
// correct even so. Kept separately from wroteItems: wroteItems absorbs
// aborted children too (over-fencing is harmless), while finalVNs must
// reflect only writes that reach the commit, so it merges on promote.
func (t *Txn) noteWrittenVN(item string, vn int) {
	t.mu.Lock()
	if t.wroteVNs == nil {
		t.wroteVNs = map[string]int{}
	}
	if vn > t.wroteVNs[item] {
		t.wroteVNs[item] = vn
	}
	t.mu.Unlock()
}

// adoptWrites merges a promoted child's final-version map into the
// parent. Called only on promote — an aborted child's writes are
// discarded at commit-apply and must not inflate the final numbers (an
// inflated Final matches no replica, silently costing hints).
func (t *Txn) adoptWrites(child *Txn) {
	child.mu.Lock()
	vns := make(map[string]int, len(child.wroteVNs))
	for item, vn := range child.wroteVNs {
		vns[item] = vn
	}
	child.mu.Unlock()
	t.mu.Lock()
	if len(vns) > 0 && t.wroteVNs == nil {
		t.wroteVNs = map[string]int{}
	}
	for item, vn := range vns {
		if vn > t.wroteVNs[item] {
			t.wroteVNs[item] = vn
		}
	}
	t.mu.Unlock()
}

// finalVNs snapshots the transaction tree's committed final version per
// written item, for the commit broadcast. Nil when nothing was written.
func (t *Txn) finalVNs() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.wroteVNs) == 0 {
		return nil
	}
	out := make(map[string]int, len(t.wroteVNs))
	for item, vn := range t.wroteVNs {
		out[item] = vn
	}
	return out
}

// writtenItems snapshots the transaction's written-item set, sorted.
func (t *Txn) writtenItems() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.wroteItems))
	for item := range t.wroteItems {
		out = append(out, item)
	}
	sort.Strings(out)
	return out
}

// fenceHints is the write fence: after the lease fence and before the
// commit point, revoke the freshness hint at every replica of every item
// this transaction wrote. A replica that refuses (another transaction's
// lock — a hinted reader still mid-flight) is retried and, if it keeps
// refusing, fails the fence as a lock conflict: the writer waits for the
// reader exactly as quorum intersection would have made it.
//
// A replica the fence cannot reach at all cannot be revoked, only
// outwaited: under the wall clock the fence blocks until one full hint TTL
// has passed since it started, by which point any hint the unreachable
// replica held has expired. Under a manual clock (deterministic
// harnesses) time cannot pass mid-round, so the miss is counted and the
// commit proceeds — the harness's round-boundary TTL advances expire the
// hint before the partition heals, and the serializability checker gates
// exactly that discipline.
func (t *Txn) fenceHints(ctx context.Context) error {
	s := t.store
	st := s.opts
	if !st.readLease {
		return nil
	}
	items := t.writtenItems()
	if len(items) == 0 {
		return nil
	}
	type target struct{ dm, item string }
	var targets []target
	for _, item := range items {
		it, ok := s.itemSpec(item)
		if !ok {
			continue
		}
		for _, dm := range it.DMs {
			targets = append(targets, target{dm: dm, item: item})
		}
	}
	start := s.now()
	const fenceRetries = 4
	refused := make([]bool, len(targets))
	unreached := make([]bool, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt target) {
			defer wg.Done()
			for attempt := 0; attempt <= fenceRetries; attempt++ {
				if ctx.Err() != nil {
					unreached[i] = true
					return
				}
				budget, derr := s.callBudget(ctx)
				if derr != nil {
					unreached[i] = true
					return
				}
				cctx, cancel := context.WithTimeout(ctx, budget)
				raw, err := s.client.Call(cctx, tgt.dm, HintFenceReq{Txn: t.id, Item: tgt.item})
				cancel()
				if err != nil {
					unreached[i] = true
					// A transport failure is not retried here: the replica is
					// down or partitioned, and the TTL wait below is the only
					// sound revocation for it.
					return
				}
				unreached[i] = false
				if ack, ok := raw.(Ack); ok && ack.OK {
					refused[i] = false
					return
				}
				refused[i] = true
				s.backoff(ctx, attempt)
			}
		}(i, tgt)
	}
	wg.Wait()
	misses := 0
	for i := range targets {
		if refused[i] {
			// A live lock refused the fence past the retry budget: surface it
			// as the lock conflict it is, so Run aborts and restarts.
			return &ConflictError{Item: targets[i].item, Txn: t.id, Phase: "hint-fence", Attempts: fenceRetries + 1}
		}
		if unreached[i] {
			misses++
		}
	}
	if misses == 0 {
		s.Stats.HintFences.Inc()
		return nil
	}
	s.Stats.HintFenceMisses.Add(int64(misses))
	if st.clock == transport.Wall {
		// Wait out the unreachable holders' hints: sleep the residual TTL
		// (measured from fence start, so reachable-replica round trips count
		// toward it).
		if remaining := st.readLeaseTTL - s.now().Sub(start); remaining > 0 {
			timer := time.NewTimer(remaining)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		}
	}
	s.Stats.HintFences.Inc()
	return nil
}
