package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Lock leases and orphan reaping.
//
// Every lock grant stamps a lease of WithLeaseTTL duration for the
// holder's top-level transaction; further grants and RenewLeaseReqs
// re-stamp it. A transaction whose client is alive keeps its leases fresh
// (grants during execution, the background renewer, and the synchronous
// pre-commit renewal); a transaction whose client crashed stops renewing,
// and once its lease lapses any DM that runs into its locks starts a
// resolution inquiry: poll every peer DM for a commit record. Any peer
// that resolved the transaction dictates the outcome (commit records carry
// the committed-subs list, so the straggler applies the subtree exactly as
// a late CommitTopReq would); if every peer answers "unknown", no replica
// anywhere heard CommitTopReq, so the commit point — the first
// CommitTopReq send, which requires a synchronous renewal at every touched
// DM just before it — was never passed, and the transaction is reaped as a
// presumed abort.
//
// Safety rests on the fence: the client renews synchronously at every
// written and granted DM before broadcasting CommitTopReq, and any refusal
// (the DM resolved the transaction — possibly by reaping it) or
// unreachable DM aborts the attempt instead. So "all peers unknown" at
// inquiry time genuinely implies the commit point is unreachable: passing
// it would require a successful renewal at a DM that has already refused
// forever.

// stampLease (re)stamps the lease of the holder's top-level transaction.
// Called on every grant; a no-op when leases are disabled.
func (s *dmServer) stampLease(t TxnID) {
	if s.leaseTTL <= 0 {
		return
	}
	if s.leases == nil {
		s.leases = map[TxnID]time.Time{}
	}
	s.leases[t.Top()] = s.clock.Now().Add(s.leaseTTL)
}

// leaseExpired reports whether the top-level transaction's lease lapsed. A
// holder without a lease entry (state restored from a snapshot before
// refreshLeases, or leases toggled) is granted a fresh lease rather than
// treated as expired — expiry must only ever shorten availability, never
// invent an orphan.
func (s *dmServer) leaseExpired(t TxnID) bool {
	if s.leaseTTL <= 0 {
		return false
	}
	top := t.Top()
	deadline, ok := s.leases[top]
	if !ok {
		s.stampLease(top)
		return false
	}
	return s.clock.Now().After(deadline)
}

// refreshLeases stamps a fresh lease for every lock holder — called after
// recovery, where lease wall-clock stamps from the previous incarnation
// are meaningless. Fresh stamps only delay reaping, which is always safe.
func (s *dmServer) refreshLeases() {
	if s.leaseTTL <= 0 {
		return
	}
	for _, r := range s.replicas {
		for holder := range r.locks {
			s.stampLease(holder)
		}
	}
}

// noteConflict runs on every refused lock request: if any conflicting
// holder's lease lapsed, its client may be gone — start (or refresh) a
// resolution inquiry for it. Lazy detection keeps the reaper off the
// clock: orphans are hunted exactly when they are in somebody's way (and
// by the anti-entropy sweeper's inspections during idle ticks).
func (s *dmServer) noteConflict(r *replica, requester TxnID) {
	if s.leaseTTL <= 0 {
		return
	}
	reqTop := requester.Top()
	for holder := range r.locks {
		if holder.Top() == reqTop {
			continue
		}
		if s.leaseExpired(holder) {
			s.maybeStartInquiry(holder.Top())
		}
	}
}

// noteInspect gives the anti-entropy sweeper's InspectReq the same
// orphan-detection power a conflict has: expired-lease holders on the
// inspected replica trigger inquiries even if no client is waiting on
// them.
func (s *dmServer) noteInspect(r *replica) {
	if s.leaseTTL <= 0 {
		return
	}
	for holder := range r.locks {
		if s.leaseExpired(holder) {
			s.maybeStartInquiry(holder.Top())
		}
	}
}

// maybeStartInquiry polls the peers for a resolution of top, unless one is
// already in flight and still fresh. With no peers (single-replica
// clusters) nobody else could hold a commit record, so the presumed abort
// is immediate.
func (s *dmServer) maybeStartInquiry(top TxnID) {
	if s.resolved[top] != nil {
		return
	}
	if acc := s.acceptors[top]; acc != nil {
		// Acceptor state lives here: the outcome may already be decided at a
		// majority of the cohort, so consult the acceptors (Paxos recovery)
		// instead of polling for commit records — a poll's all-unknown
		// verdict would presume abort over a possibly-decided commit.
		s.startPaxosRecovery(top, acc.Cohort)
		return
	}
	now := s.clock.Now()
	if inq := s.inquiries[top]; inq != nil {
		if now.Sub(inq.started) < s.leaseTTL {
			return
		}
		// Stale: some answers never arrived (lost, peer down). Re-poll the
		// peers still owing one.
		inq.started = now
		remaining := make([]string, 0, len(inq.waiting))
		for p := range inq.waiting {
			remaining = append(remaining, p)
		}
		sort.Strings(remaining)
		s.pollPeers(top, remaining)
		return
	}
	if s.stats != nil {
		s.stats.ResolutionQueries.Inc()
	}
	if len(s.peers) == 0 {
		s.reap(ReapReq{Txn: top})
		return
	}
	inq := &inquiry{started: now, waiting: map[string]bool{}}
	for _, p := range s.peers {
		inq.waiting[p] = true
	}
	if s.inquiries == nil {
		s.inquiries = map[TxnID]*inquiry{}
	}
	s.inquiries[top] = inq
	s.pollPeers(top, s.peers)
}

func (s *dmServer) pollPeers(top TxnID, peers []string) {
	for _, p := range peers {
		s.notifyPeer(p, ResolutionQueryReq{Txn: top, From: s.id})
	}
}

// reap routes a reap decision into the state machine — through the WAL on
// durable DMs, directly on volatile ones — and counts it. The counters
// live here, at the decision site, so log replay of an old ReapReq does
// not double-count.
func (s *dmServer) reap(req ReapReq) {
	if s.stats != nil {
		if req.Commit {
			s.stats.OrphanReapsCommitted.Inc()
		} else {
			s.stats.OrphanReapsAborted.Inc()
		}
	}
	if s.selfApply != nil {
		s.selfApply(req)
		return
	}
	s.apply(req)
}

// coordinate handles the lease-coordination messages that never touch the
// replicated state machine directly: renewals, resolution queries, and
// resolution answers. It reports handled=false for everything else. Kept
// out of apply so the WAL/replay path never sees clock reads or peer
// sends — the reap decisions coordinate produces enter the state machine
// as self-applied ReapReqs, which ARE logged and replayed.
func (s *dmServer) coordinate(req any) (resp any, handled bool) {
	switch q := req.(type) {
	case RenewLeaseReq:
		top := q.Txn.Top()
		if s.resolved[top] != nil {
			return Ack{OK: false}, true
		}
		if s.leaseTTL > 0 && !s.knowsTxn(top) {
			// The commit fence's other half for rebuilt replicas: a renewal
			// for a transaction this DM holds no trace of — no lease, no
			// lock, no intention — is refused. A replica rebuilt from peers
			// carries only committed state; granting the renewal would let
			// the client commit over locks and intentions the rebuild lost.
			// The refusal aborts the transaction pre-commit, which is the
			// safe direction (it simply re-runs).
			return Ack{OK: false}, true
		}
		s.stampLease(top)
		return Ack{OK: true}, true
	case ResolutionQueryReq:
		ans := ResolutionAnswer{Txn: q.Txn, From: s.id}
		if res := s.resolved[q.Txn]; res != nil {
			ans.Known, ans.Committed, ans.Subs = true, res.committed, res.subs
		} else {
			if s.leaseTTL > 0 {
				if deadline, ok := s.leases[q.Txn]; ok && s.clock.Now().Before(deadline) {
					// This DM's lease is live: the client renewed here recently,
					// so it is alive and the inquirer should extend grace
					// instead of reaping.
					ans.Active = true
				}
			}
			if acc := s.acceptors[q.Txn]; acc != nil {
				// Paxos acceptor state here means the coordinator reached its
				// Phase 2a: the outcome may already be decided, so the inquirer
				// must run acceptor recovery over the cohort instead of
				// counting this DM toward a presumed abort.
				ans.Accepted = true
				ans.Cohort = acc.Cohort
			}
		}
		s.notifyPeer(q.From, ans)
		return Ack{OK: true}, true
	case ResolutionAnswer:
		inq := s.inquiries[q.Txn]
		if inq == nil || s.resolved[q.Txn] != nil {
			return Ack{OK: true}, true
		}
		if q.Known {
			delete(s.inquiries, q.Txn)
			s.reap(ReapReq{Txn: q.Txn, Commit: q.Committed, Subs: q.Subs})
			return Ack{OK: true}, true
		}
		if q.Active {
			delete(s.inquiries, q.Txn)
			s.stampLease(q.Txn)
			return Ack{OK: true}, true
		}
		if q.Accepted {
			// An acceptor somewhere heard Phase 2a: the presumed abort is off
			// the table (the decision may exist at a majority we cannot see
			// from here). Switch this inquiry to acceptor recovery.
			delete(s.inquiries, q.Txn)
			s.startPaxosRecovery(q.Txn, q.Cohort)
			return Ack{OK: true}, true
		}
		delete(inq.waiting, q.From)
		if len(inq.waiting) > 0 {
			return Ack{OK: true}, true
		}
		delete(s.inquiries, q.Txn)
		// Every peer answered "unknown". Re-check the lease: a renewal may
		// have landed here mid-inquiry, proving the client alive.
		if s.leaseExpired(q.Txn) {
			s.reap(ReapReq{Txn: q.Txn})
		}
		return Ack{OK: true}, true
	}
	// Rebuild pulls are read-only state exports — nothing to log.
	if resp, handled := s.coordinateRebuild(req); handled {
		return resp, handled
	}
	// Acceptor recovery (Paxos Commit): the recovery rounds are soft-state
	// coordination like inquiries; the promises, acceptances and decisions
	// they produce enter the state machine as logged requests (paxos.go).
	if resp, handled := s.coordinatePaxos(req); handled {
		return resp, handled
	}
	// Hint grants and write fences are coordination too: soft state, never
	// logged, never replayed (hint.go).
	if resp, handled := s.coordinateHints(req); handled {
		return resp, handled
	}
	// Ring gossip last: also soft state (dm.go ring field).
	return s.coordinateRing(req)
}

// coordinateRing serves the placement-ring gossip protocol. Ring state at
// a replica is advisory — the data path's generation chase and WrongShard
// redirects are the authority — so none of this is logged or replayed.
func (s *dmServer) coordinateRing(req any) (resp any, handled bool) {
	switch q := req.(type) {
	case RingReq:
		if s.ring == nil {
			return RingResp{}, true
		}
		return RingResp{OK: true, Ring: *s.ring.Clone()}, true
	case RingUpdateReq:
		if s.ring != nil {
			r := q.Ring
			s.ring.Adopt(&r)
		}
		return Ack{OK: true}, true
	}
	return nil, false
}

// --- client side ---

// ensureLease is the commit fence: called after the transaction body
// succeeded and before the CommitTopReq broadcast. If the leases were
// stamped recently (any grant re-stamps them) it is free; otherwise it
// renews synchronously at every written and granted DM, and any refusal or
// unreachable DM fails the fence — the transaction may already have been
// reaped somewhere, so committing would be unsafe. The caller aborts and
// re-runs.
func (t *Txn) ensureLease(ctx context.Context) error {
	st := t.store.opts
	if st.leaseTTL <= 0 {
		return nil
	}
	t.mu.Lock()
	stamp := t.leaseStamp
	t.mu.Unlock()
	if t.store.now().Sub(stamp) < st.leaseTTL/2 {
		return nil
	}
	return t.renewLeases(ctx)
}

// renewLeases synchronously renews the transaction's leases at every
// written and granted DM. All must acknowledge: a granted-only DM that
// reaped the transaction released read locks early, so committing past it
// would break two-phase locking just as surely as losing a written DM.
func (t *Txn) renewLeases(ctx context.Context) error {
	written, granted, _ := t.controlSets()
	dms := append(written, granted...)
	if len(dms) == 0 {
		t.noteLeaseStamp()
		return nil
	}
	errs := make([]error, len(dms))
	var wg sync.WaitGroup
	for i, dm := range dms {
		wg.Add(1)
		go func(i int, dm string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, t.store.opts.callTimeout)
			defer cancel()
			raw, err := t.store.client.Call(cctx, dm, RenewLeaseReq{Txn: t.id})
			if err != nil {
				errs[i] = err
				return
			}
			if ack, ok := raw.(Ack); !ok || !ack.OK {
				errs[i] = ErrLeaseExpired
			}
		}(i, dm)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return &LeaseExpiredError{Txn: t.id, DM: dms[i]}
		}
	}
	t.noteLeaseStamp()
	t.store.Stats.LeaseRenewals.Inc()
	return nil
}

// knowsTxn reports whether this DM holds any trace of the top-level
// transaction: a live lease, or a lock or intention owned by its subtree.
// A rebuilt replica knows only committed state, so renewals for
// transactions it never saw are refused (see coordinate).
func (s *dmServer) knowsTxn(top TxnID) bool {
	if _, ok := s.leases[top]; ok {
		return true
	}
	for _, r := range s.replicas {
		for holder := range r.locks {
			if holder.Top() == top {
				return true
			}
		}
		for _, in := range r.intents {
			if in.owner.Top() == top {
				return true
			}
		}
	}
	return false
}

// noteLeaseStamp records that the DMs just (re)stamped our leases.
func (t *Txn) noteLeaseStamp() {
	t.mu.Lock()
	t.leaseStamp = t.store.now()
	t.mu.Unlock()
}

// leaseRenewer is the background keep-alive for long-running transactions:
// every TTL/3 it renews the leases of every open transaction, so a slow
// but live client is never mistaken for a crashed one. It runs only under
// the wall clock — with a manual clock (deterministic harnesses) time
// moves solely between rounds, and renewal traffic from a timer would fork
// seeded replays; those harnesses rely on grants re-stamping leases
// instead.
func (s *Store) leaseRenewer() {
	defer s.bg.Done()
	interval := s.opts.leaseTTL / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopBg:
			return
		case <-tick.C:
			for _, t := range s.openTxnList() {
				// Best effort: a failed renewal here is caught by the
				// pre-commit fence; a renewal for a just-finished
				// transaction is refused and ignored.
				_ = t.renewLeases(context.Background())
			}
		}
	}
}

func (s *Store) trackTxn(t *Txn) {
	s.mu.Lock()
	if s.openTxns == nil {
		s.openTxns = map[TxnID]*Txn{}
	}
	s.openTxns[t.id] = t
	s.mu.Unlock()
}

func (s *Store) untrackTxn(t *Txn) {
	s.mu.Lock()
	delete(s.openTxns, t.id)
	s.mu.Unlock()
}

func (s *Store) openTxnList() []*Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Txn, 0, len(s.openTxns))
	for _, t := range s.openTxns {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// PlantOrphan simulates a client that crashed while holding write locks:
// it grabs a write-quorum's worth of write locks (with a buffered
// intention) on item under a transaction id nobody will ever resolve, and
// returns that id. The locks wedge the item until the lease reaper
// presumes the orphan aborted. Test/chaos harness use only.
func (s *Store) PlantOrphan(ctx context.Context, item string) (TxnID, error) {
	it, ok := s.itemSpec(item)
	if !ok {
		return "", fmt.Errorf("cluster: unknown item %q", item)
	}
	_ = it
	cfg := s.config(item).cfg
	if len(cfg.W) == 0 {
		return "", fmt.Errorf("cluster: item %q has no write quorums", item)
	}
	n := s.orphanSeq.Add(1)
	id := TxnID(fmt.Sprintf("%s.orphan%d", s.clientID, n))
	planted := 0
	for _, dm := range cfg.W[0].Names() {
		cctx, cancel := context.WithTimeout(ctx, s.opts.callTimeout)
		raw, err := s.client.Call(cctx, dm, WriteReq{
			Txn: id, Item: item, VN: 1_000_000 + int(n), Val: "orphan",
		})
		cancel()
		if err != nil {
			continue
		}
		if resp, ok := raw.(WriteResp); ok && resp.OK {
			planted++
		}
	}
	if planted == 0 {
		return id, fmt.Errorf("cluster: no replica of %q granted the orphan lock", item)
	}
	return id, nil
}
