package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// hintCluster opens a volatile three-replica majority cluster with the
// freshness-hint fast lane on, driven by a manual clock so tests control
// exactly when hints expire. Synchronous cleanup keeps control rounds
// inside Run, so a Quiesce after an operation settles every message it
// caused — after which the DM soft state may be inspected directly.
func hintCluster(t *testing.T, seed int64, ttl time.Duration, extra ...Option) (*Store, *sim.Network, *sim.ManualClock, []string) {
	t.Helper()
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond,
		Seed: seed, FateFeedback: true,
	})
	clk := sim.NewManualClock(time.Unix(0, 0))
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	opts := append([]Option{
		WithSeed(seed),
		WithCallTimeout(25 * time.Millisecond),
		WithReadLease(true),
		WithReadLeaseTTL(ttl),
		WithClock(clk),
		WithRetryBackoff(2 * time.Millisecond),
		WithSynchronousCleanup(true),
	}, extra...)
	store, err := Open(net, items, opts...)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net, clk, dms
}

// settleHints flushes every DM's inbox: Quiesce settles network transit,
// but fire-and-forget traffic (commit broadcasts, sweep grants) settles on
// inbox enqueue, before the node's loop handles it. A follow-up Inspect
// call rides the same client→DM lane FIFO, so its reply proves every
// earlier message to that DM has been handled.
func settleHints(t *testing.T, store *Store, net *sim.Network, dms []string) {
	t.Helper()
	net.Quiesce()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, dm := range dms {
		if _, err := store.Inspect(ctx, dm, "x"); err != nil {
			t.Fatalf("settle %s: %v", dm, err)
		}
	}
}

// dmHint peeks one replica's hint soft state. Callers must have settled
// the cluster first (the DM actor loop must have drained its inbox).
func dmHint(store *Store, dm, item string) (itemHint, bool) {
	store.mu.Lock()
	h := store.dms[dm]
	store.mu.Unlock()
	hint, ok := h.srv.hints[item]
	return hint, ok
}

func writeX(t *testing.T, store *Store, val int) {
	t.Helper()
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", val) }); err != nil {
		t.Fatal(err)
	}
}

func readX(t *testing.T, store *Store) any {
	t.Helper()
	ctx := context.Background()
	var got any
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestHintStateMachine drives the hint lifecycle through a live cluster,
// one transition per case: grant on commit, refresh via anti-entropy,
// revoke/fence on write, expire on TTL, and invalidate on a configuration
// generation bump. Each case asserts both the replica-side soft state and
// the client-visible effect (hit vs fallback, and always the right value).
func TestHintStateMachine(t *testing.T) {
	const ttl = 40 * time.Millisecond
	cases := []struct {
		name string
		run  func(t *testing.T, store *Store, net *sim.Network, clk *sim.ManualClock, dms []string)
	}{
		{
			// A committed write is a freshness proof at every replica it
			// advanced: the next quorum read piggybacks the hint, and the
			// read after that is served by a single replica.
			name: "grant-on-commit",
			run: func(t *testing.T, store *Store, net *sim.Network, clk *sim.ManualClock, dms []string) {
				writeX(t, store, 7)
				settleHints(t, store, net, dms)
				granted := 0
				for _, dm := range dms {
					if h, ok := dmHint(store, dm, "x"); ok {
						if h.vn != 1 {
							t.Fatalf("%s hint vn = %d, want 1", dm, h.vn)
						}
						granted++
					}
				}
				if granted == 0 {
					t.Fatal("no replica granted itself a hint at commit")
				}
				// The writer's own commit primes the fast-lane cache…
				if _, ok := store.HintTarget("x"); !ok {
					t.Fatal("commit did not prime the writer's fast-lane cache")
				}
				// …and a client that forgot the target relearns it from a
				// quorum read's hinted piggyback.
				store.hintCache.drop("x")
				if v := readX(t, store); v != 7 { // quorum read, caches the target
					t.Fatalf("quorum read = %v, want 7", v)
				}
				if _, ok := store.HintTarget("x"); !ok {
					t.Fatal("quorum read did not cache a hinted target")
				}
				if v := readX(t, store); v != 7 { // hinted single-replica read
					t.Fatalf("hinted read = %v, want 7", v)
				}
				if hits := store.Stats.HintHits.Value(); hits != 1 {
					t.Fatalf("HintHits = %d, want 1", hits)
				}
			},
		},
		{
			// With no write traffic at all, the anti-entropy sweeper's
			// unanimity proof grants hints — and primes the client cache.
			name: "refresh-via-anti-entropy",
			run: func(t *testing.T, store *Store, net *sim.Network, clk *sim.ManualClock, dms []string) {
				if _, err := store.SweepOnce(context.Background()); err != nil {
					t.Fatal(err)
				}
				settleHints(t, store, net, dms) // grants are fire-and-forget
				if g := store.Stats.HintGrants.Value(); g != 1 {
					t.Fatalf("HintGrants = %d, want 1", g)
				}
				for _, dm := range dms {
					if _, ok := dmHint(store, dm, "x"); !ok {
						t.Fatalf("%s holds no hint after unanimous sweep", dm)
					}
				}
				if v := readX(t, store); v != 0 {
					t.Fatalf("hinted read = %v, want initial 0", v)
				}
				if hits := store.Stats.HintHits.Value(); hits != 1 {
					t.Fatalf("HintHits = %d, want 1", hits)
				}
			},
		},
		{
			// A write fences every outstanding hint before its commit point;
			// the commit then re-proves freshness at the new version. No
			// replica may be left hinting the superseded version.
			name: "revoke-and-fence-on-write",
			run: func(t *testing.T, store *Store, net *sim.Network, clk *sim.ManualClock, dms []string) {
				writeX(t, store, 1)
				readX(t, store) // cache a hinted target at vn 1
				writeX(t, store, 2)
				settleHints(t, store, net, dms)
				if f := store.Stats.HintFences.Value(); f == 0 {
					t.Fatal("writes ran no hint fence")
				}
				for _, dm := range dms {
					if h, ok := dmHint(store, dm, "x"); ok && h.vn != 2 {
						t.Fatalf("%s still hints vn %d after the vn-2 commit", dm, h.vn)
					}
				}
				// The cached target must never serve the old value.
				if v := readX(t, store); v != 2 {
					t.Fatalf("read after write = %v, want 2", v)
				}
			},
		},
		{
			// A hint outlives its TTL at neither side: the replica refuses
			// (reason "expired") and the client falls back to the quorum.
			name: "expire-on-ttl",
			run: func(t *testing.T, store *Store, net *sim.Network, clk *sim.ManualClock, dms []string) {
				writeX(t, store, 3)
				// The DM-side hints are stamped at commit time T, and so is
				// the commit's cache prime — drop it and advance a little
				// before the caching read, so the client cache's expiry lands
				// strictly later than the replica's. The read below then
				// exercises the replica-side expiry path, not a silently
				// skipped fast lane.
				store.hintCache.drop("x")
				clk.Advance(time.Millisecond)
				readX(t, store)
				hitsBefore := store.Stats.HintHits.Value()
				clk.Advance(ttl) // past T+ttl, at-but-not-past cache expiry
				if v := readX(t, store); v != 3 {
					t.Fatalf("read = %v, want 3", v)
				}
				if store.Stats.HintReads.Value() == 0 {
					t.Fatal("fast lane never attempted")
				}
				if store.Stats.HintHits.Value() != hitsBefore {
					t.Fatal("expired hint served a fast-lane read")
				}
				if store.Stats.HintMisses.Value() == 0 {
					t.Fatal("expired hint not counted as a miss")
				}
			},
		},
		{
			// A configuration generation bump invalidates hints granted
			// under the old generation: a client still asserting gen 0 is
			// refused and forced onto the quorum path, which chases the
			// current configuration.
			name: "invalidate-on-reconfigure",
			run: func(t *testing.T, store *Store, net *sim.Network, clk *sim.ManualClock, dms []string) {
				writeX(t, store, 4)
				readX(t, store)
				if err := store.Reconfigure(context.Background(), "x", quorum.Config{
					R: []quorum.Set{quorum.NewSet(dms...)},
					W: []quorum.Set{quorum.NewSet(dms...)},
				}); err != nil {
					t.Fatal(err)
				}
				net.Quiesce()
				// The reconfiguration committed gen 1; a hinted read still
				// asserting gen 0 must miss at every replica.
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				defer cancel()
				for _, dm := range dms {
					raw, err := store.client.Call(ctx, dm, HintReadReq{Txn: "probe", Item: "x", Seq: 1, Gen: 0})
					if err != nil {
						t.Fatalf("%s: %v", dm, err)
					}
					if resp, ok := raw.(ReadResp); ok && resp.OK {
						t.Fatalf("%s served a hinted read under a stale generation", dm)
					}
				}
				// And the full path still returns the committed value.
				if v := readX(t, store); v != 4 {
					t.Fatalf("read after reconfigure = %v, want 4", v)
				}
			},
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store, net, clk, dms := hintCluster(t, int64(100+i), ttl)
			tc.run(t, store, net, clk, dms)
		})
	}
}

// TestHintRebuildAfterAmnesia pins the recovery rule: hints are soft state
// and must NOT survive a WAL replay. A restarted replica serves no hinted
// reads until a later commit or sweep re-proves its freshness.
func TestHintRebuildAfterAmnesia(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond,
		Seed: 42, FateFeedback: true,
	})
	defer net.Close()
	clk := sim.NewManualClock(time.Unix(0, 0))
	store, err := Open(net,
		[]ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		WithSeed(42),
		WithCallTimeout(25*time.Millisecond),
		WithReadLease(true),
		WithReadLeaseTTL(time.Minute),
		WithClock(clk),
		WithSynchronousCleanup(true),
		WithDurability(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()
	writeX(t, store, 9)
	settleHints(t, store, net, dms)
	restarted := ""
	for _, dm := range dms {
		if _, ok := dmHint(store, dm, "x"); ok {
			restarted = dm
			break
		}
	}
	if restarted == "" {
		t.Fatal("no replica granted itself a hint at commit")
	}
	stats, err := store.RestartDM(restarted)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed == 0 && !stats.FromSnapshot {
		t.Fatal("restart replayed nothing — amnesia not exercised")
	}
	if _, ok := dmHint(store, restarted, "x"); ok {
		t.Fatalf("%s still holds a hint after WAL replay", restarted)
	}
	// Unproven means refused: a direct hinted read at the recovered
	// replica must miss even though its committed state is up to date.
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	raw, err := store.client.Call(cctx, restarted, HintReadReq{Txn: "probe", Item: "x", Seq: 1, Gen: 0})
	if err != nil {
		t.Fatal(err)
	}
	miss, ok := raw.(HintMissResp)
	if !ok {
		t.Fatalf("recovered replica answered %#v, want a HintMissResp", raw)
	}
	if miss.Reason != "none" {
		t.Fatalf("miss reason = %q, want %q", miss.Reason, "none")
	}
	// Re-proof path: a unanimous sweep re-grants, and the fast lane works
	// again — with the correct value.
	if _, err := store.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	settleHints(t, store, net, dms)
	if _, ok := dmHint(store, restarted, "x"); !ok {
		t.Fatal("sweep did not re-prove the recovered replica's freshness")
	}
	if v := readX(t, store); v != 9 {
		t.Fatalf("read after re-proof = %v, want 9", v)
	}
}

// TestHintFenceRefusedByReaderLock pins the serializability core of
// DESIGN.md §9: a writer's hint fence is refused while another
// transaction's lock is live on the item at that replica — the writer
// waits for the hinted reader exactly as quorum intersection would have
// made it. The fence still revokes the hint even when refused.
func TestHintFenceRefusedByReaderLock(t *testing.T) {
	store, net, _, dms := hintCluster(t, 7, time.Minute)
	ctx := context.Background()
	writeX(t, store, 1)
	settleHints(t, store, net, dms)
	target := ""
	for _, dm := range dms {
		if _, ok := dmHint(store, dm, "x"); ok {
			target = dm
			break
		}
	}
	if target == "" {
		t.Fatal("no hinted replica after commit")
	}
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	// Park a foreign read lock on the item at the hinted replica.
	if raw, err := store.client.Call(cctx, target, ReadReq{Txn: "reader", Item: "x", Lock: LockRead, Seq: 1}); err != nil {
		t.Fatal(err)
	} else if resp, ok := raw.(ReadResp); !ok || !resp.OK {
		t.Fatalf("parked read lock refused: %#v", raw)
	}
	// A different transaction's fence must revoke the hint but refuse the
	// ack while the reader's lock is live.
	raw, err := store.client.Call(cctx, target, HintFenceReq{Txn: "writer", Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := raw.(Ack); !ok || ack.OK {
		t.Fatalf("fence over a live foreign lock acked OK: %#v", raw)
	}
	if _, ok := dmHint(store, target, "x"); ok {
		t.Fatal("refused fence left the hint standing")
	}
	// The lock holder's own fence is never refused by its own lock.
	if raw, err := store.client.Call(cctx, target, HintFenceReq{Txn: "reader", Item: "x"}); err != nil {
		t.Fatal(err)
	} else if ack, ok := raw.(Ack); !ok || !ack.OK {
		t.Fatalf("fence refused by its own transaction's lock: %#v", raw)
	}
	// Release the parked lock so shutdown sweeps find a clean item.
	if _, err := store.client.Call(cctx, target, AbortReq{Txn: "reader"}); err != nil {
		t.Fatal(err)
	}
}

// TestHintedReadWriterSerializability interleaves hinted reads with writes
// to the same item and runs the full-history checker over the result: the
// deterministic, unpartitioned core of what the chaos stalehint fault then
// schedules adversarially. Every fast-lane read lands in the history with
// its version witness, so a stale hint surfaces as a checker violation.
func TestHintedReadWriterSerializability(t *testing.T) {
	rec := checker.NewRecorder()
	rec.DeclareItem("x", 0)
	store, _, _, _ := hintCluster(t, 11, time.Minute, WithHistory(rec))
	ctx := context.Background()
	for i := 1; i <= 20; i++ {
		if err := store.Run(ctx, func(tx *Txn) error {
			if _, err := tx.Read(ctx, "x"); err != nil {
				return err
			}
			return tx.Write(ctx, "x", i)
		}); err != nil {
			t.Fatal(err)
		}
		readX(t, store)
	}
	if err := rec.History().Verify(); err != nil {
		t.Fatalf("serializability violations with hinted reads: %v", err)
	}
	if store.Stats.HintHits.Value() == 0 {
		t.Fatal("fast lane never hit — the scenario exercised nothing")
	}
}

// TestSweepErrorBudget is the anti-entropy satellite fix: a cancelled sweep
// surfaces as an error, the background loop's counting wrapper records it,
// and healthy sweeps keep the error budget at zero.
func TestSweepErrorBudget(t *testing.T) {
	store, _, _, _ := hintCluster(t, 13, time.Minute)
	ctx := context.Background()
	if _, err := store.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if n := store.Stats.AntiEntropySweepErrors.Value(); n != 0 {
		t.Fatalf("healthy sweep burned error budget: %d", n)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := store.SweepOnce(dead); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	store.sweepAndCount(dead)
	if n := store.Stats.AntiEntropySweepErrors.Value(); n != 1 {
		t.Fatalf("AntiEntropySweepErrors = %d, want 1", n)
	}
}
