package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// TestPartitionMinoritySideBlocks verifies the mutual-exclusion property
// partitions are the classic test of: a client that can only reach a
// minority of replicas cannot write under majority quorums, while a client
// reaching the majority side can.
func TestPartitionMinoritySideBlocks(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 31})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	a, err := Open(net, items, WithCallTimeout(5*time.Millisecond), WithLockRetries(2), WithTxnRetries(1), WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenClient(net, items, WithCallTimeout(5*time.Millisecond), WithLockRetries(2), WithTxnRetries(1), WithSeed(32))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		b.Close()
		a.Close()
		net.Close()
	}()
	ctx := context.Background()

	// Client b is cut off from dm0..dm2 — it can reach only a minority.
	bName := b.client.ID()
	for _, dm := range dms[:3] {
		net.Disconnect(bName, dm)
	}
	err = b.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 99) })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("minority-side write should be unavailable, got %v", err)
	}
	// The majority side is unaffected.
	if err := a.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatalf("majority-side write failed: %v", err)
	}
	// Heal: b sees a's committed write, never the blocked 99.
	for _, dm := range dms[:3] {
		net.Reconnect(bName, dm)
	}
	if err := b.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("after heal read %v, want 1", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionReadOneWriteAllReadsBothSides shows the read-availability
// flip side: with read-one/write-all, reads succeed on both sides of a
// partition while writes succeed on neither (the write-quorum spans it).
func TestPartitionReadOneWriteAllReadsBothSides(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 33})
	items := []ItemSpec{{Name: "x", Initial: 7, DMs: dms, Config: quorum.ReadOneWriteAll(dms)}}
	a, err := Open(net, items, WithCallTimeout(5*time.Millisecond), WithLockRetries(2), WithTxnRetries(1), WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		a.Close()
		net.Close()
	}()
	ctx := context.Background()

	// Cut the client off from dm1 and dm2.
	for _, dm := range dms[1:] {
		net.Disconnect(a.client.ID(), dm)
	}
	if err := a.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 7 {
			return fmt.Errorf("read %v", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("read-one should survive reaching a single replica: %v", err)
	}
	err = a.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 8) })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("write-all across a partition should be unavailable, got %v", err)
	}
}
