package cluster

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/commit"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Peer rebuild (DESIGN.md §12): the recovery path for a replica whose log
// is corrupt — or whose disk is simply gone. The quarantined replica's
// durable state is reconstructed from its peers' committed state: item
// values and configurations certified by a read quorum, migration
// retirement markers, resolution records, and Paxos acceptor hard state.
// The merged state is written through a fresh write-ahead log as one
// synthetic snapshot, and the replica rejoins under the same id.
//
// The rebuild deliberately restores COMMITTED state only. Locks, buffered
// intentions and leases of in-flight transactions are lost with the log;
// that is safe because the commit fence closes the gap: the rebuilt replica
// knows nothing of those transactions, so its refusal of their pre-commit
// lease renewals (knowsTxn, lease.go) aborts them cleanly before any
// commit point. Quorum intersection keeps conflicting writers out in the
// meantime — with at most a minority of an item's replicas corrupt, every
// write quorum still overlaps every other quorum at a healthy replica that
// remembers the locks.

// RebuildStats reports what one peer rebuild restored.
type RebuildStats struct {
	// Items is the number of hosted items restored with a quorum-certified
	// value and configuration; Moved counts items restored as migration
	// retirement markers instead.
	Items int
	Moved int
	// Resolved and Acceptors count restored resolution records and Paxos
	// acceptor instances.
	Resolved  int
	Acceptors int
	// Peers is how many peers answered the pull (all of them — a rebuild
	// that cannot hear every peer fails and is retried later).
	Peers int
}

// coordinateRebuild answers a quarantined peer's state pull. Read-only —
// nothing is logged — and served like the other coordination traffic, off
// the replicated state machine. The answer carries, for the requested
// items, this replica's committed value and configuration (or its
// retirement marker), plus ALL resolution records and the acceptor state
// of every Paxos instance whose cohort includes the rebuilding DM.
func (s *dmServer) coordinateRebuild(req any) (resp any, handled bool) {
	q, ok := req.(RebuildPullReq)
	if !ok {
		return nil, false
	}
	out := RebuildPullResp{OK: true, From: s.id}
	for _, item := range q.Items {
		if w, moved := s.moved[item]; moved {
			if out.Moved == nil {
				out.Moved = map[string]WrongShardResp{}
			}
			out.Moved[item] = w
			continue
		}
		r := s.replicas[item]
		if r == nil {
			out.Items = append(out.Items, RebuildItemState{Item: item})
			continue
		}
		out.Items = append(out.Items, RebuildItemState{
			Item: item, Has: true, VN: r.vn, Val: r.val, Gen: r.gen, Cfg: r.cfg.Clone(),
		})
	}
	if len(s.resolved) > 0 {
		out.Resolved = make(map[TxnID]RebuildResolution, len(s.resolved))
		for t, res := range s.resolved {
			out.Resolved[t] = RebuildResolution{
				Committed: res.committed, Subs: append([]TxnID(nil), res.subs...),
			}
		}
	}
	for t, acc := range s.acceptors {
		member := false
		for _, m := range acc.Cohort {
			if m == q.For {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		if out.Acceptors == nil {
			out.Acceptors = map[TxnID]commit.Acceptor{}
		}
		a := *acc
		a.Cohort = append([]string(nil), acc.Cohort...)
		out.Acceptors[t] = a
	}
	return out, true
}

// rebuildEnv carries everything rebuildReplica needs to pull, merge, and
// restart one replica — Store.RebuildReplica and ServeDM's auto-rebuild
// both assemble one.
type rebuildEnv struct {
	tr        transport.Transport
	client    transport.Client
	id        string
	items     []ItemSpec
	dir       string
	walOpts   []wal.Option
	snapEvery int
	peers     []string
	timeout   time.Duration
	wire      func(*dmServer)
	serveOpts []transport.ServeOption
}

// rebuildReplica pulls the quarantined replica's state from every peer,
// merges it, moves the untrusted log directory aside, and restarts the
// replica on a fresh log seeded with the merged state as one snapshot.
//
// The pull requires an answer from EVERY peer, not just a quorum. Values
// only need a read quorum, but Paxos acceptor state does not shard along
// item quorums: a promise or acceptance witnessed by a single healthy
// cohort member must be restored, or a recovery round after the rebuild
// could decide against an outcome the pre-corruption replica helped decide
// (acceptor amnesia). A peer that is down — or itself quarantined — fails
// the whole rebuild; the replica stays quarantined and the caller retries
// later. That also serializes concurrent rebuilds: two quarantined
// replicas refuse each other's pulls rather than trade unrebuilt state.
func rebuildReplica(ctx context.Context, env rebuildEnv) (*dmHandle, RebuildStats, error) {
	names := make([]string, 0, len(env.items))
	for _, it := range env.items {
		names = append(names, it.Name)
	}
	sort.Strings(names)

	peers := append([]string(nil), env.peers...)
	sort.Strings(peers)
	answers := make(map[string]RebuildPullResp, len(peers))
	for _, p := range peers {
		cctx, cancel := context.WithTimeout(ctx, env.timeout)
		raw, err := env.client.Call(cctx, p, RebuildPullReq{For: env.id, Items: names})
		cancel()
		if err != nil {
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: pull from %s: %w", env.id, p, err)
		}
		switch r := raw.(type) {
		case RebuildPullResp:
			if !r.OK {
				return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: %s refused the pull", env.id, p)
			}
			answers[p] = r
		case QuarantinedResp:
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: peer %s is itself quarantined (%s)", env.id, p, r.Reason)
		default:
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: unexpected answer %T from %s", env.id, r, p)
		}
	}

	srv := newDMState(env.id, env.items)
	var rst RebuildStats
	rst.Peers = len(peers)

	// Per-item merge: a retirement marker anywhere wins (the item migrated
	// away; re-hosting its stale bytes would be a split brain). Otherwise
	// the answers holding the item must cover a read quorum of the highest
	// configuration generation seen — then the maximum version among them
	// is at least the newest committed version, by quorum intersection.
	for _, item := range names {
		var marker *WrongShardResp
		for _, p := range peers {
			if w, ok := answers[p].Moved[item]; ok {
				if marker == nil || w.Gen > marker.Gen {
					cp := w
					marker = &cp
				}
			}
		}
		if marker != nil {
			m := *marker
			m.DM = env.id // the redirect must name ITS server, not the peer's
			m.DMs = append([]string(nil), marker.DMs...)
			m.Cfg = marker.Cfg.Clone()
			delete(srv.replicas, item)
			srv.moved[item] = m
			rst.Moved++
			continue
		}
		var best *RebuildItemState
		have := map[string]bool{}
		for _, p := range peers {
			for i := range answers[p].Items {
				st := &answers[p].Items[i]
				if st.Item != item || !st.Has {
					continue
				}
				have[p] = true
				if best == nil || st.Gen > best.Gen {
					best = st
				}
			}
		}
		if best == nil {
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: no peer holds a copy of %q (single-replica items cannot be rebuilt)", env.id, item)
		}
		if !best.Cfg.HasReadQuorum(have) {
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: peers holding %q do not cover a read quorum of gen %d", env.id, item, best.Gen)
		}
		maxVN, val := -1, any(nil)
		for _, p := range peers {
			for i := range answers[p].Items {
				st := &answers[p].Items[i]
				if st.Item == item && st.Has && st.VN > maxVN {
					maxVN, val = st.VN, st.Val
				}
			}
		}
		srv.replicas[item] = &replica{
			vn: maxVN, val: val, gen: best.Gen, cfg: best.Cfg.Clone(),
			locks: map[TxnID]LockMode{},
		}
		rst.Items++
	}

	// Resolution records: union across peers, preferring answers that still
	// carry the committed-subs payload over retention tombstones. Verdicts
	// must agree — a commit here and an abort there is a serializability
	// violation already in progress, and rebuilding over it would bury it.
	for _, p := range peers {
		for t, res := range answers[p].Resolved {
			prev, ok := srv.resolved[t]
			if !ok {
				srv.resolved[t] = &resolution{committed: res.Committed, subs: res.Subs}
				continue
			}
			if prev.committed != res.Committed {
				return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: peers disagree on outcome of %s", env.id, t)
			}
			if prev.subs == nil && res.Subs != nil {
				prev.subs = res.Subs
			}
		}
	}
	rst.Resolved = len(srv.resolved)

	// Acceptor hard state, for every undecided Paxos instance this DM is a
	// cohort member of. Every cohort member except this DM must be among
	// the answered peers — a promise or acceptance witnessed only by an
	// absent member would otherwise be lost, which is exactly the acceptor
	// amnesia the all-peers pull exists to prevent. Promised watermarks
	// merge by maximum; the accepted value rides the highest accepted
	// ballot. Instances some peer already resolved are dropped — the
	// resolution record answers for them now.
	type accMerge struct {
		acc       commit.Acceptor
		witnesses int
	}
	merged := map[TxnID]*accMerge{}
	for _, p := range peers {
		for t, acc := range answers[p].Acceptors {
			if srv.resolved[t.Top()] != nil || srv.resolved[t] != nil {
				continue
			}
			m := merged[t]
			if m == nil {
				m = &accMerge{acc: acc}
				m.acc.Cohort = append([]string(nil), acc.Cohort...)
				merged[t] = m
			} else {
				if acc.Promised > m.acc.Promised {
					m.acc.Promised = acc.Promised
				}
				if acc.AccBal > m.acc.AccBal {
					m.acc.AccBal, m.acc.AccVal = acc.AccBal, acc.AccVal
				}
			}
			m.witnesses++
		}
	}
	for t, m := range merged {
		answered := 0
		for _, member := range m.acc.Cohort {
			if member == env.id {
				continue
			}
			if _, ok := answers[member]; ok {
				answered++
			} else {
				return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: cohort member %s of instance %s did not answer the pull", env.id, member, t)
			}
		}
		if answered+1 < commit.Quorum(len(m.acc.Cohort)) {
			// Unreachable with a full cohort answering; kept as a guard
			// against malformed cohorts.
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: instance %s lacks a quorum of witnesses", env.id, t)
		}
		a := m.acc
		srv.acceptors[t] = &a
	}
	rst.Acceptors = len(merged)

	// The untrusted log moves aside (kept for post-mortems, never deleted);
	// the merged state seeds a fresh log as one synthetic snapshot. Only
	// then does the replica rejoin the transport.
	if _, err := os.Stat(env.dir); err == nil {
		moved := false
		for n := 0; n < 1000; n++ {
			aside := fmt.Sprintf("%s.corrupt-%d", env.dir, n)
			if _, err := os.Stat(aside); err == nil {
				continue
			}
			if err := os.Rename(env.dir, aside); err != nil {
				return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: move corrupt log aside: %w", env.id, err)
			}
			moved = true
			break
		}
		if !moved {
			return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: no free .corrupt-N slot beside %s", env.id, env.dir)
		}
	}
	if err := os.MkdirAll(env.dir, 0o755); err != nil {
		return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: %w", env.id, err)
	}
	log, _, err := wal.Open(env.dir, env.walOpts...)
	if err != nil {
		return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: fresh log: %w", env.id, err)
	}
	state, err := encodeSnapshot(srv)
	if err != nil {
		log.Close()
		return nil, RebuildStats{}, err
	}
	if err := log.WriteSnapshot(state); err != nil {
		log.Close()
		return nil, RebuildStats{}, fmt.Errorf("cluster: rebuild %s: seed snapshot: %w", env.id, err)
	}
	h, err := startDurableDM(env.tr, env.id, env.items, env.dir, log, srv, env.snapEvery, env.wire, env.serveOpts...)
	if err != nil {
		return nil, RebuildStats{}, err
	}
	return h, rst, nil
}

// RebuildReplica replaces a quarantined (or otherwise untrusted) durable
// replica with state pulled from its peers — the recovery path for disk
// corruption, where RestartDM's log replay has nothing trustworthy to
// replay. The current incarnation is torn down first; on any failure the
// slot is re-served quarantined (answering the typed refusal), so the
// caller can retry once the peers are reachable again.
func (s *Store) RebuildReplica(ctx context.Context, id string) (RebuildStats, error) {
	s.mu.Lock()
	h := s.dms[id]
	all := make([]string, 0, len(s.dms))
	for dm := range s.dms {
		all = append(all, dm)
	}
	s.mu.Unlock()
	if h == nil {
		return RebuildStats{}, fmt.Errorf("cluster: unknown DM %q", id)
	}
	if h.walPath == "" {
		return RebuildStats{}, fmt.Errorf("cluster: DM %q is not durable", id)
	}
	peers := peersOf(id, all)
	if len(peers) == 0 {
		return RebuildStats{}, fmt.Errorf("cluster: DM %q has no peers to rebuild from", id)
	}
	h.server.Close()
	if h.wal != nil {
		// A poisoned log may refuse a clean close; its contents are about to
		// be moved aside regardless.
		_ = h.wal.log.Close()
	}
	env := rebuildEnv{
		tr: s.tr, client: s.client, id: id, items: h.items, dir: h.walPath,
		walOpts: s.opts.walOpts, snapEvery: s.opts.snapEvery,
		peers: peers, timeout: s.opts.callTimeout,
		wire: s.leaseWiring(id, peers), serveOpts: s.dmServeOpts(id),
	}
	nh, rst, err := rebuildReplica(ctx, env)
	if err != nil {
		cause := h.quarantineReason()
		if cause == nil {
			cause = err
		}
		if qh, qerr := quarantinedDM(s.tr, id, h.items, h.walPath, cause, s.dmServeOpts(id)...); qerr == nil {
			s.mu.Lock()
			s.dms[id] = qh
			s.mu.Unlock()
		}
		return RebuildStats{}, err
	}
	s.mu.Lock()
	s.dms[id] = nh
	s.mu.Unlock()
	s.Stats.Rebuilds.Inc()
	s.Stats.RebuiltItems.Add(int64(rst.Items))
	return rst, nil
}

// QuarantinedDMs lists the store's currently quarantined replicas, sorted.
// Empty on a healthy cluster — the chaos harness's exit gate.
func (s *Store) QuarantinedDMs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, h := range s.dms {
		if h.stopped {
			continue
		}
		if h.quarantineReason() != nil {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// DMHealth is one replica's status as observed over the wire — what
// `qcstore client -inspect health` prints per replica.
type DMHealth struct {
	DM     string
	Status string // "healthy", "quarantined" or "unreachable"
	Detail string // quarantine cause or transport error; empty when healthy
}

// ProbeHealth pings every DM named by the store's item specs and classifies
// each answer: Ack{OK: true} is healthy, the typed refusal is quarantined
// (with its cause), and anything else — a timeout, a refused connection, a
// wrong answer — is unreachable. Works from pure client stores; each probe
// is bounded by the store's call timeout.
func (s *Store) ProbeHealth(ctx context.Context) []DMHealth {
	seen := map[string]bool{}
	var dms []string
	for _, it := range s.items {
		for _, dm := range it.DMs {
			if !seen[dm] {
				seen[dm] = true
				dms = append(dms, dm)
			}
		}
	}
	sort.Strings(dms)
	out := make([]DMHealth, 0, len(dms))
	for _, dm := range dms {
		h := DMHealth{DM: dm}
		cctx, cancel := context.WithTimeout(ctx, s.opts.callTimeout)
		raw, err := s.client.Call(cctx, dm, PingReq{})
		cancel()
		switch r := raw.(type) {
		case QuarantinedResp:
			h.Status, h.Detail = "quarantined", r.Reason
		case Ack:
			h.Status = "healthy"
			if !r.OK {
				h.Status, h.Detail = "unreachable", "ping refused"
			}
		default:
			h.Status = "unreachable"
			if err != nil {
				h.Detail = err.Error()
			} else {
				h.Detail = fmt.Sprintf("unexpected answer %T", raw)
			}
		}
		out = append(out, h)
	}
	return out
}
