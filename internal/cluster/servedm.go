package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/transport"
)

// DMHost is one DM replica hosted by this process — the server-side entry
// point a multi-process deployment runs N times, once per replica, while
// clients attach with OpenClient over the same transport. The host serves
// every item whose DMs list names it; the full item specs are still passed
// in so the replica knows its peer set for lease-resolution inquiries.
type DMHost struct {
	h        *dmHandle
	recovery RecoveryStats

	// Quarantined, when non-nil, reports that the replica's log was corrupt
	// at start AND the automatic peer rebuild failed: the host is serving,
	// but answers only QuarantinedResp until the process restarts against
	// reachable peers. Rebuilt reports a start-time rebuild that succeeded,
	// with its stats.
	Quarantined error
	Rebuilt     *RebuildStats

	// Stats receives the host-side counters lease coordination updates
	// (orphan reaps, resolution queries). Client-side counters stay zero.
	Stats Stats
}

// ServeDM starts the DM named id on tr, serving its slice of items. With
// WithDurability the replica keeps a write-ahead log under dir/<id> and
// recovers from it when one exists — so a kill -9'd process restarted with
// the same flags resumes exactly where the log ends. Options that shape
// the server side (WithDurability, WithWALOptions, WithSnapshotEvery,
// WithLeaseTTL, WithClock, WithAdmissionCapacity, WithServiceTime,
// WithReadLease, WithReadLeaseTTL) apply; client-side options are ignored.
func ServeDM(tr transport.Transport, id string, items []ItemSpec, opts ...Option) (*DMHost, error) {
	st := resolve(opts)
	var mine []ItemSpec
	var peerSet []string
	seen := map[string]bool{}
	hosts := false
	for _, it := range items {
		for _, dm := range it.DMs {
			if dm == id {
				hosts = true
				mine = append(mine, it)
			} else if !seen[dm] {
				seen[dm] = true
				peerSet = append(peerSet, dm)
			}
		}
	}
	if !hosts {
		return nil, fmt.Errorf("cluster: no item names DM %q", id)
	}
	sort.Strings(peerSet)
	host := &DMHost{}
	wire := func(srv *dmServer) {
		srv.configureLeases(st.leaseTTL, st.clock, peerSet, &host.Stats)
		if st.readLease {
			srv.configureHints(st.readLeaseTTL)
		}
		if st.ring != nil {
			srv.configureRing(st.ring)
		}
	}
	serveOpts := serveOptsFor(st, id, &host.Stats)
	if st.walDir == "" {
		srv := newDMState(id, mine)
		wire(srv)
		server, err := tr.Serve(id, asyncify(srv.handle), serveOpts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: serve DM %s: %w", id, err)
		}
		srv.setSender(server.Notify)
		host.h = &dmHandle{id: id, items: mine, srv: srv, server: server}
		return host, nil
	}
	h, stats, err := newDurableDM(tr, id, mine, filepath.Join(st.walDir, id), st.walOpts, st.snapEvery, wire, serveOpts...)
	if err != nil {
		return nil, err
	}
	if h.quarantined != nil {
		// The log is corrupt beyond a torn tail. Before settling for serving
		// refusals, try one peer rebuild right now: a process restarted onto
		// a scrambled (or wiped) disk should rejoin with its peers' state,
		// not come up answering garbage — or nothing. The quarantined
		// endpoint keeps serving while the pull runs; on success it is
		// replaced by the rebuilt replica under the same id.
		host.Stats.Quarantines.Inc()
		host.Quarantined = h.quarantined
		if len(peerSet) > 0 {
			if nh, rst, rerr := serveDMRebuild(tr, id, h, peerSet, st, wire, serveOpts); rerr == nil {
				h = nh
				host.Quarantined = nil
				host.Rebuilt = &rst
				host.Stats.Rebuilds.Inc()
				host.Stats.RebuiltItems.Add(int64(rst.Items))
			}
		}
	}
	host.h = h
	host.recovery = stats
	if stats.Replayed > 0 || stats.FromSnapshot {
		host.Stats.Recoveries.Inc()
		host.Stats.ReplayedRecords.Add(int64(stats.Replayed))
	}
	return host, nil
}

// serveDMRebuild attempts one peer rebuild of a host replica that came up
// quarantined. It tears the quarantined endpoint down first (the rebuilt
// server needs the id), and re-serves the quarantined handler if the
// rebuild fails — the process stays up either way.
func serveDMRebuild(tr transport.Transport, id string, h *dmHandle, peers []string, st settings, wire func(*dmServer), serveOpts []transport.ServeOption) (*dmHandle, RebuildStats, error) {
	client, err := tr.Client("rebuild-" + id)
	if err != nil {
		return nil, RebuildStats{}, err
	}
	defer client.Close()
	h.server.Close()
	env := rebuildEnv{
		tr: tr, client: client, id: id, items: h.items, dir: h.walPath,
		walOpts: st.walOpts, snapEvery: st.snapEvery,
		peers: peers, timeout: st.callTimeout,
		wire: wire, serveOpts: serveOpts,
	}
	nh, rst, err := rebuildReplica(context.Background(), env)
	if err != nil {
		if qh, qerr := quarantinedDM(tr, id, h.items, h.walPath, h.quarantined, serveOpts...); qerr == nil {
			h.server = qh.server
		}
		return nil, RebuildStats{}, err
	}
	return nh, rst, nil
}

// Recovery reports what the host rebuilt from its write-ahead log at start:
// the zero value for volatile hosts and fresh logs.
func (d *DMHost) Recovery() RecoveryStats { return d.recovery }

// ID returns the hosted DM's name.
func (d *DMHost) ID() string { return d.h.id }

// Close shuts the replica down in order: the endpoint stops accepting (and
// serves what it already delivered), then the write-ahead log flushes its
// tail and closes. An orderly Close loses nothing; SIGKILL is the amnesia
// crash the log exists for.
func (d *DMHost) Close() {
	d.h.server.Close()
	if d.h.wal != nil {
		d.h.wal.log.Close()
	}
}
