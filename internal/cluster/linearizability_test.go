package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// TestLinearizableUnderChaos is the capstone systems test: several clients
// hammer one replicated register concurrently while the harness crashes
// and restarts replicas, drops messages, runs read repair, and
// reconfigures quorums online. Every committed operation is recorded with
// its version number, and the resulting history must verify as a
// linearizable atomic register — the logical-data-item abstraction the
// paper's algorithm promises.
func TestLinearizableUnderChaos(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	items := []ItemSpec{{Name: "x", Initial: "v0", DMs: dms, Config: quorum.Majority(dms)}}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond,
		MaxLatency: 800 * time.Microsecond,
		DropProb:   0.01,
		Seed:       99,
	})
	defer net.Close()
	opts := func(seed int64) []Option {
		return []Option{WithCallTimeout(10 * time.Millisecond), WithReadRepair(true), WithSeed(seed)}
	}
	main, err := Open(net, items, opts(99)...)
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	second, err := OpenClient(net, items, opts(100)...)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		mu      sync.Mutex
		history = checker.History{Item: "x", Initial: "v0"}
	)
	record := func(e checker.Event) {
		mu.Lock()
		history.Events = append(history.Events, e)
		mu.Unlock()
	}

	const workers, opsPerWorker = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			store := main
			if w%2 == 1 {
				store = second
			}
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				isRead := rng.Float64() < 0.5
				val := fmt.Sprintf("w%d-%d", w, i)
				start := time.Now()
				var (
					vn   int
					got  any
					kind checker.Kind
				)
				err := store.Run(ctx, func(tx *Txn) error {
					var err error
					if isRead {
						kind = checker.OpRead
						got, vn, err = tx.ReadVersioned(ctx, "x")
					} else {
						kind = checker.OpWrite
						got = val
						vn, err = tx.WriteVersioned(ctx, "x", val)
					}
					return err
				})
				if err != nil {
					// Unavailability or exhausted retries under chaos is
					// acceptable; the history only tracks committed ops.
					continue
				}
				record(checker.Event{
					Kind: kind, Item: "x", Value: got, VN: vn,
					Start: start, End: time.Now(),
				})
			}
		}(w)
	}

	// Chaos controller: crash/restart minorities and reconfigure.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		time.Sleep(5 * time.Millisecond)
		net.Crash("dm4")
		time.Sleep(10 * time.Millisecond)
		net.Crash("dm3")
		time.Sleep(10 * time.Millisecond)
		_ = main.Reconfigure(ctx, "x", quorum.Majority(dms[:3]))
		time.Sleep(10 * time.Millisecond)
		net.Restart("dm3")
		net.Restart("dm4")
		time.Sleep(10 * time.Millisecond)
		_ = main.Reconfigure(ctx, "x", quorum.Majority(dms))
	}()
	wg.Wait()
	<-chaosDone

	mu.Lock()
	defer mu.Unlock()
	// Linearizability is a property of the committed operations; under
	// heavy host load (e.g. the full benchmark run) timeouts shrink the
	// committed set, so the floor here is deliberately loose.
	if len(history.Events) < workers*opsPerWorker/4 {
		t.Fatalf("too few committed ops under chaos: %d", len(history.Events))
	}
	if err := history.Verify(); err != nil {
		for _, e := range history.Events {
			t.Logf("%+v", e)
		}
		t.Fatalf("history not linearizable: %v", err)
	}
	t.Logf("linearizable history of %d committed ops under crashes, drops, repair and reconfiguration", len(history.Events))
}
