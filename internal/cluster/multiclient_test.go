package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// twoClients builds one cluster with two independent client stores.
func twoClients(t *testing.T, seed int64) (*Store, *Store, []string, *sim.Network) {
	t.Helper()
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: seed})
	a, err := Open(net, items, WithCallTimeout(25*time.Millisecond), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenClient(net, items, WithCallTimeout(25*time.Millisecond), WithSeed(seed+1000))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		b.Close()
		a.Close()
		net.Close()
	})
	return a, b, dms, net
}

func TestSecondClientSeesCommittedWrites(t *testing.T) {
	a, b, _, _ := twoClients(t, 1)
	ctx := context.Background()
	if err := a.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 42) }); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 42 {
			return fmt.Errorf("client b read %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleClientChasesGenerations(t *testing.T) {
	a, b, dms, _ := twoClients(t, 2)
	ctx := context.Background()
	// Client A reconfigures twice and writes; client B has never heard of
	// either generation and must chase g=0 → g=1 → g=2 during its read.
	if err := a.Reconfigure(ctx, "x", quorum.ReadOneWriteAll(dms)); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 7) }); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconfigure(ctx, "x", quorum.Majority(dms[:3])); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 8) }); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 8 {
			return fmt.Errorf("stale client read %v, want 8", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoClientsConcurrentIncrements(t *testing.T) {
	a, b, _, _ := twoClients(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const per = 6
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, store := range []*Store{a, b} {
		wg.Add(1)
		go func(i int, store *Store) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				err := store.Run(ctx, func(tx *Txn) error {
					v, err := tx.ReadForUpdate(ctx, "x")
					if err != nil {
						return err
					}
					return tx.Write(ctx, "x", v.(int)+1)
				})
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i, store)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if err := a.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 2*per {
			return fmt.Errorf("lost updates across clients: %v != %d", v, 2*per)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestClientTxnIDsDisjoint(t *testing.T) {
	// Both clients derive transaction IDs from their own sequences, so a
	// seed offset keeps lock tables disjoint between clients. This test
	// pins the property the DM relies on: transaction IDs from different
	// clients never alias.
	a, b, _, _ := twoClients(t, 4)
	ctx := context.Background()
	var idA, idB TxnID
	_ = a.Run(ctx, func(tx *Txn) error { idA = tx.ID(); return nil })
	_ = b.Run(ctx, func(tx *Txn) error { idB = tx.ID(); return nil })
	if idA == idB {
		t.Fatalf("transaction IDs alias across clients: %v", idA)
	}
}
