package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// TestCollectorStateMachine drives the pure fan-out collector through the
// scenarios the concurrent loop produces, table-driven.
func TestCollectorStateMachine(t *testing.T) {
	maj := quorum.Majority([]string{"a", "b", "c", "d", "e"})
	grant := func(dm string) func(c *collector) {
		return func(c *collector) { c.reply(dm, true, false, false, memberResp{dm: dm}) }
	}
	busy := func(dm string) func(c *collector) {
		return func(c *collector) { c.reply(dm, false, true, false, memberResp{dm: dm}) }
	}
	refuse := func(dm string) func(c *collector) {
		return func(c *collector) { c.reply(dm, false, false, false, memberResp{dm: dm}) }
	}
	cases := []struct {
		name     string
		quorums  []quorum.Set
		events   []func(c *collector)
		wantDone bool
		wantBusy bool
		wantDups int
	}{
		{
			name:     "quorum completes with minority stragglers silent",
			quorums:  maj.R,
			events:   []func(c *collector){grant("a"), grant("c"), grant("e")},
			wantDone: true,
		},
		{
			name:     "two grants of five are not a majority",
			quorums:  maj.R,
			events:   []func(c *collector){grant("a"), grant("b")},
			wantDone: false,
		},
		{
			name:     "busy replies never form a quorum",
			quorums:  maj.R,
			events:   []func(c *collector){grant("a"), busy("b"), busy("c"), grant("d")},
			wantDone: false,
			wantBusy: true,
		},
		{
			name:    "hedged duplicate responses are deduplicated",
			quorums: maj.R,
			events: []func(c *collector){
				grant("a"), grant("a"), grant("b"), grant("b"), grant("c"),
			},
			wantDone: true,
			wantDups: 2,
		},
		{
			name:     "grant after busy upgrades the member",
			quorums:  []quorum.Set{quorum.NewSet("a", "b")},
			events:   []func(c *collector){busy("a"), grant("b"), grant("a")},
			wantDone: true,
			wantBusy: true,
			wantDups: 1,
		},
		{
			name:     "outright refusals cover nothing",
			quorums:  []quorum.Set{quorum.NewSet("a")},
			events:   []func(c *collector){refuse("a")},
			wantDone: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCollector(tc.quorums)
			for _, dm := range union(tc.quorums) {
				c.issue(dm)
			}
			for _, ev := range tc.events {
				ev(c)
			}
			if c.done() != tc.wantDone {
				t.Errorf("done() = %v, want %v", c.done(), tc.wantDone)
			}
			if c.sawBusy() != tc.wantBusy {
				t.Errorf("sawBusy() = %v, want %v", c.sawBusy(), tc.wantBusy)
			}
			if c.dups != tc.wantDups {
				t.Errorf("dups = %d, want %d", c.dups, tc.wantDups)
			}
		})
	}
}

func TestCollectorWinnerIsSmallestCoveredQuorum(t *testing.T) {
	small := quorum.NewSet("a", "b")
	large := quorum.NewSet("a", "c", "d")
	c := newCollector([]quorum.Set{large, small})
	for _, dm := range []string{"a", "b", "c", "d"} {
		c.issue(dm)
		c.reply(dm, true, false, false, memberResp{dm: dm})
	}
	win, ok := c.winner()
	if !ok || len(win) != 2 || !win.Contains("a") || !win.Contains("b") {
		t.Errorf("winner = %v, want the 2-member quorum", win)
	}
}

func TestCollectorHedgeTargets(t *testing.T) {
	c := newCollector([]quorum.Set{quorum.NewSet("a", "b", "c")})
	targets := []string{"a", "b", "c"}
	for _, dm := range targets {
		c.issue(dm)
	}
	c.reply("a", true, false, false, memberResp{dm: "a"})
	c.reply("b", false, true, false, memberResp{dm: "b"})
	// Only the silent DM is worth hedging; a and b answered.
	if got := c.hedgeTargets(targets, 3); len(got) != 1 || got[0] != "c" {
		t.Errorf("hedgeTargets = %v, want [c]", got)
	}
	// The per-replica copy cap stops further hedges.
	c.issue("c")
	c.issue("c")
	if got := c.hedgeTargets(targets, 3); len(got) != 0 {
		t.Errorf("hedgeTargets past cap = %v, want none", got)
	}
	if !c.outstanding("c") {
		t.Error("c has unanswered copies and must be outstanding")
	}
	if c.outstanding("a") {
		t.Error("a answered its only copy and must not be outstanding")
	}
}

// strideCluster builds a 5-DM majority cluster with the given options and
// a per-node latency override applied to dm4 — the straggler.
func stragglerCluster(t *testing.T, seed int64, opts ...Option) (*Store, *sim.Network, []string) {
	t.Helper()
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 20 * time.Microsecond, MaxLatency: 200 * time.Microsecond, Seed: seed})
	net.SetNodeLatency("dm4", 30*time.Millisecond, 40*time.Millisecond)
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items, append([]Option{WithSeed(seed), WithCallTimeout(100 * time.Millisecond)}, opts...)...)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	return store, net, dms
}

// TestFanoutCompletesDespiteStraggler: the straggler's latency exceeds the
// fast replicas' by two orders of magnitude, yet reads and writes complete
// at fast-quorum speed because the other four cover a majority.
func TestFanoutCompletesDespiteStraggler(t *testing.T) {
	store, net, _ := stragglerCluster(t, 41, WithHedgeDelay(0))
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	start := time.Now()
	err := store.Run(ctx, func(tx *Txn) error {
		if err := tx.Write(ctx, "x", 1); err != nil {
			return err
		}
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("read %v, want 1", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The straggler needs ≥ 60ms round trip; a phase that waited for it
	// could not finish the whole transaction in 20ms.
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("transaction took %v; the straggler dominated", elapsed)
	}
}

// TestHedgingResendsToSilentReplica: with aggressive hedging and every
// fast replica's first copy beaten by the hedge timer, duplicate copies
// are issued and their responses deduplicated without disturbing results.
func TestHedgingResendsToSilentReplica(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	// All replicas answer slower than the hedge delay, so every phase
	// hedges at least once.
	net := sim.NewNetwork(sim.Config{MinLatency: 2 * time.Millisecond, MaxLatency: 3 * time.Millisecond, Seed: 42})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(42),
		WithCallTimeout(200*time.Millisecond),
		WithHedgeDelay(time.Millisecond),
		WithHedgeMax(3),
	)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	v := 0
	if err := store.Run(ctx, func(tx *Txn) error {
		got, err := ReadAs[int](ctx, tx, "x")
		v = got
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Errorf("read %d after hedged writes, want 4", v)
	}
	if store.Stats.Hedges.Value() == 0 {
		t.Error("expected hedged request copies under slow uniform latency")
	}
}

// TestExtraReadLocksReleased: a read fan-out over five replicas grants at
// more members than the majority needs; the extras must be released while
// the transaction still runs, observable via Inspect lock counts.
func TestExtraReadLocksReleased(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 10 * time.Microsecond, MaxLatency: 100 * time.Microsecond, Seed: 43})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items, WithSeed(43), WithCallTimeout(50*time.Millisecond))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	err = store.Run(ctx, func(tx *Txn) error {
		if _, err := tx.Read(ctx, "x"); err != nil {
			return err
		}
		// The fan-out returns at the third grant; the other two replicas
		// are either extras (released) or outstanding (tombstoned), so
		// once the dust settles exactly the winning majority holds locks.
		deadline := time.Now().Add(2 * time.Second)
		for {
			total := 0
			for _, dm := range dms {
				resp, err := store.Inspect(ctx, dm, "x")
				if err != nil {
					return err
				}
				total += resp.Locks
			}
			// The winning majority holds exactly 3 locks; extras must be
			// gone while the transaction is still open.
			if total == 3 {
				return nil
			}
			if time.Now().After(deadline) {
				t.Errorf("lock count stuck at %d, want 3 (extras not released)", total)
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFanoutCancellationOnContextTimeout: with every replica crashed, a
// read must fail promptly when its context expires rather than sleeping
// through the full retry budget.
func TestFanoutCancellationOnContextTimeout(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 44})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items, WithSeed(44))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	defer func() { store.Close(); net.Close() }()
	for _, dm := range dms {
		net.Crash(dm)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = store.Run(ctx, func(tx *Txn) error {
		_, err := tx.Read(ctx, "x")
		return err
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read of a fully crashed cluster must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want deadline or unavailable", err)
	}
	if elapsed > time.Second {
		t.Errorf("failed after %v; cancellation did not propagate", elapsed)
	}
}

// TestPartitionSurfacesUnavailableError: when no quorum is reachable the
// structured *UnavailableError surfaces with the item, phase, and the
// replicas that did answer.
func TestPartitionSurfacesUnavailableError(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 45})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(45), WithCallTimeout(5*time.Millisecond),
		WithLockRetries(1), WithTxnRetries(0))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	// Cut the client off from a majority.
	for _, dm := range dms[:3] {
		net.Disconnect(store.client.ID(), dm)
	}
	err = store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 9) })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("errors.Is(ErrUnavailable) must hold, got %v", err)
	}
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnavailableError in chain, got %v", err)
	}
	if ue.Item != "x" || ue.Phase != "read" {
		t.Errorf("UnavailableError = %+v, want item x, phase read", ue)
	}
	if len(ue.Missing) < 3 {
		t.Errorf("Missing = %v, want the three unreachable DMs", ue.Missing)
	}
	for _, dm := range ue.Responded {
		if dm == "dm0" || dm == "dm1" || dm == "dm2" {
			t.Errorf("unreachable DM %s listed as responded", dm)
		}
	}
}

// TestConflictErrorDetail: a held write lock on another client's
// transaction surfaces as *ConflictError with attempt counts.
func TestConflictErrorDetail(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 46})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	a, err := Open(net, items, WithSeed(46), WithCallTimeout(10*time.Millisecond))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	b, err := OpenClient(net, items,
		WithSeed(47), WithCallTimeout(10*time.Millisecond),
		WithLockRetries(2), WithTxnRetries(0))
	if err != nil {
		a.Close()
		net.Close()
		t.Fatal(err)
	}
	defer func() { b.Close(); a.Close(); net.Close() }()
	ctx := context.Background()

	blocked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- a.Run(ctx, func(tx *Txn) error {
			if err := tx.Write(ctx, "x", 1); err != nil {
				return err
			}
			close(blocked) // write locks held at a quorum
			<-release
			return nil
		})
	}()
	<-blocked
	err = b.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 2) })
	close(release)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("errors.Is(ErrConflict) must hold, got %v", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConflictError in chain, got %v", err)
	}
	if ce.Item != "x" || ce.Attempts < 3 {
		t.Errorf("ConflictError = %+v, want item x with >= 3 attempts", ce)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
