package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

func TestCallBudgetArithmetic(t *testing.T) {
	s := &Store{opts: settings{callTimeout: 100 * time.Millisecond, hopAllowance: time.Millisecond}}

	if d, err := s.callBudget(context.Background()); err != nil || d != 100*time.Millisecond {
		t.Errorf("no deadline: budget = %v, %v; want full call timeout", d, err)
	}

	loose, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if d, err := s.callBudget(loose); err != nil || d != 100*time.Millisecond {
		t.Errorf("loose deadline: budget = %v, %v; want full call timeout", d, err)
	}

	tight, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	d, err := s.callBudget(tight)
	if err != nil {
		t.Fatalf("tight deadline: %v", err)
	}
	// Remaining (~20ms) minus the 1ms hop allowance, clamped strictly under
	// the caller's own budget — never the full call timeout.
	if d <= 0 || d > 20*time.Millisecond {
		t.Errorf("tight deadline: budget = %v, want within (0, 20ms]", d)
	}

	spent, cancel3 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel3()
	time.Sleep(time.Millisecond)
	if _, err := s.callBudget(spent); err == nil {
		t.Error("exhausted deadline: want fail-fast error, got a budget")
	}
}

func TestRetryBudgetTokens(t *testing.T) {
	b := newRetryBudget(0.5)
	for i := 0; i < retryBudgetMax; i++ {
		if !b.allow() {
			t.Fatalf("retry %d denied with a full bucket", i)
		}
	}
	if b.allow() {
		t.Fatal("retry allowed from an empty bucket")
	}
	// Two first attempts redeposit one retry's worth at ratio 0.5.
	b.deposit()
	b.deposit()
	if !b.allow() {
		t.Fatal("retry denied after deposits refilled a token")
	}
	if b.allow() {
		t.Fatal("second retry allowed; deposits only funded one")
	}

	var nilBudget *retryBudget
	nilBudget.deposit()
	if !nilBudget.allow() {
		t.Fatal("disabled budget must allow every retry")
	}
}

func TestAIMDLimiter(t *testing.T) {
	l := newAIMDLimiter(8)
	if got := l.ceiling(); got != 8 {
		t.Fatalf("initial ceiling = %d", got)
	}
	l.onOverload()
	l.onOverload()
	if got := l.ceiling(); got != 2 {
		t.Errorf("ceiling after two overloads = %d, want 2 (multiplicative decrease)", got)
	}
	for i := 0; i < 200; i++ {
		l.onSuccess()
	}
	if got := l.ceiling(); got != 8 {
		t.Errorf("ceiling after sustained success = %d, want regrowth to max 8", got)
	}
	for i := 0; i < 10; i++ {
		l.onOverload()
	}
	if got := l.ceiling(); got != 1 {
		t.Errorf("ceiling floor = %d, want 1 (limiter may shed, never wedge)", got)
	}

	// One slot at ceiling 1: the second acquire must block until release,
	// and a dead context must abort the wait.
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.acquire(dead); err == nil {
		t.Fatal("acquire beyond the ceiling with a dead context must fail")
	}
	done := make(chan error, 1)
	go func() { done <- l.acquire(context.Background()) }()
	select {
	case <-done:
		t.Fatal("acquire succeeded beyond the ceiling")
	case <-time.After(20 * time.Millisecond):
	}
	l.release()
	if err := <-done; err != nil {
		t.Fatalf("blocked acquire failed after release: %v", err)
	}
}

func TestBrownoutStateMachine(t *testing.T) {
	b := newBrownout(3)
	if b.noteFailure() || b.noteFailure() {
		t.Fatal("entered brownout below the threshold")
	}
	if !b.noteFailure() {
		t.Fatal("third consecutive failure must enter brownout")
	}
	if !b.degradedNow() {
		t.Fatal("not degraded after entry")
	}
	// Probe cadence: every brownoutProbeEvery'th gated write is admitted.
	admitted := 0
	for i := 0; i < 2*brownoutProbeEvery; i++ {
		if reject, since := b.gate(false); !reject {
			admitted++
		} else if since != 3 {
			t.Errorf("gate since = %d, want 3", since)
		}
	}
	if admitted != 2 {
		t.Errorf("probes admitted = %d of %d gated writes, want 2", admitted, 2*brownoutProbeEvery)
	}
	// A healthy failure detector turns every write into a probe.
	if reject, _ := b.gate(true); reject {
		t.Error("gate rejected despite healthy detector")
	}
	if !b.noteSuccess() {
		t.Fatal("successful probe must exit brownout")
	}
	if b.degradedNow() {
		t.Fatal("still degraded after exit")
	}
	// A lock conflict is liveness: it resets the failure streak.
	b.noteFailure()
	b.noteFailure()
	b.noteSuccess()
	if b.noteFailure() {
		t.Fatal("entered brownout although a success reset the streak")
	}
}

// TestHedgeClampToCallerDeadline pins the deadline arithmetic of runPhase:
// with unresponsive replicas and a caller deadline far below the call
// timeout, the phase (hedges included) must give up by the caller's
// deadline, and no request copies may be issued after the operation
// returns — a hedge must never outlive the transaction on a fresh full
// call timeout.
func TestHedgeClampToCallerDeadline(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{Seed: 11})
	defer net.Close()
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(11),
		WithCallTimeout(2*time.Second), // far beyond the caller's budget
		WithHedgeDelay(5*time.Millisecond),
		WithHedgeMax(3),
		WithLockRetries(0),
		WithTxnRetries(0),
		// The abort sweep to tentatively-touched DMs normally runs detached
		// under a background context (so a caller's cancel can't leak locks
		// on a real transport) and would register as post-return sends here.
		// Awaiting it keeps the no-stray-traffic assertion about hedges only.
		WithSynchronousCleanup(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, dm := range dms {
		net.Crash(dm)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	rerr := store.Run(ctx, func(tx *Txn) error {
		_, err := tx.Read(ctx, "x")
		return err
	})
	elapsed := time.Since(start)
	if rerr == nil {
		t.Fatal("read of a fully crashed cluster succeeded")
	}
	if elapsed > time.Second {
		t.Fatalf("operation took %v; the 2s call timeout leaked past the 50ms caller deadline", elapsed)
	}
	// No stray traffic after return: the phase context is cancelled, so
	// neither the hedge ticker nor abandoned copies may issue new sends.
	sent := net.Stats().Sent
	time.Sleep(50 * time.Millisecond)
	if after := net.Stats().Sent; after != sent {
		t.Errorf("%d sends issued after the operation returned", after-sent)
	}
}

// TestOverloadedErrorSurfacesOnShed drives more concurrent reads at a
// capacity-1 replica than its queue admits: shed callers must get a typed
// OverloadedError naming the DM — not a timeout — while admitted callers
// complete normally.
func TestOverloadedErrorSurfacesOnShed(t *testing.T) {
	dms := []string{"dm0"}
	net := sim.NewNetwork(sim.Config{Seed: 12})
	defer net.Close()
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(12),
		WithCallTimeout(2*time.Second),
		WithHedgeDelay(0),
		WithLockRetries(0),
		WithTxnRetries(0),
		WithAdmissionCapacity(1),
		WithServiceTime(30*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const clients = 6
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = store.Run(context.Background(), func(tx *Txn) error {
				_, err := tx.Read(context.Background(), "x")
				return err
			})
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			shed++
			var oe *OverloadedError
			if !errors.As(err, &oe) {
				t.Errorf("overload error lacks detail: %v", err)
			} else if len(oe.Shed) != 1 || oe.Shed[0] != "dm0" {
				t.Errorf("shed DMs = %v, want [dm0]", oe.Shed)
			}
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok == 0 {
		t.Error("no client completed; admission starved everyone")
	}
	if shed == 0 {
		t.Error("no client was shed; admission never bounded the queue")
	}
	if got := store.Stats.AdmissionSheds.Value(); got == 0 {
		t.Error("AdmissionSheds counter never incremented")
	}
}

// TestBurstReport pins the deterministic overload device the chaos harness
// uses: injected bursts bypass the network, so the admission verdicts are
// a pure function of the burst shape.
func TestBurstReport(t *testing.T) {
	run := func() (BurstReport, sim.OverloadStats) {
		dms := []string{"dm0", "dm1", "dm2"}
		net := sim.NewNetwork(sim.Config{Seed: 13})
		defer net.Close()
		items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
		store, err := Open(net, items, WithSeed(13), WithAdmissionCapacity(4))
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		rep := store.Burst("dm0", 10, 3)
		return rep, store.OverloadTotals()
	}

	rep, totals := run()
	// Capacity 4 of 10 offered: 4 admitted, 6 shed. The 3 pre-expired ones
	// were admitted first and discarded at dequeue.
	want := BurstReport{Offered: 10, Admitted: 4, Shed: 6, Expired: 3}
	if rep != want {
		t.Errorf("burst report = %+v, want %+v", rep, want)
	}
	if totals.Admitted != 4 || totals.Shed != 6 || totals.ExpiredDropped != 3 {
		t.Errorf("overload totals = %+v", totals)
	}

	rep2, totals2 := run()
	if rep2 != rep || totals2 != totals {
		t.Errorf("burst not deterministic: %+v vs %+v, %+v vs %+v", rep, rep2, totals, totals2)
	}

	if rep := (&Store{opts: settings{}, dms: map[string]*dmHandle{}}).Burst("nope", 5, 0); rep != (BurstReport{}) {
		t.Errorf("burst at unknown DM = %+v, want zero", rep)
	}
}

// TestBrownoutEntersAndExits drives the full degradation cycle: write
// failures trip read-only mode, gated writes fail fast with a typed
// DegradedError, reads keep working, and the probe ladder exits the
// brownout once the replicas answer again.
func TestBrownoutEntersAndExits(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{Seed: 14})
	defer net.Close()
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(14),
		WithCallTimeout(30*time.Millisecond),
		WithHedgeDelay(0),
		WithLockRetries(0),
		WithTxnRetries(0),
		WithBrownoutThreshold(2),
		// The mid-test read must have released its locks before the probe
		// writes start, or a probe hits a transient conflict instead of
		// exercising the ladder.
		WithSynchronousCleanup(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()
	write := func(v int) error {
		return store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", v) })
	}

	if err := write(1); err != nil {
		t.Fatal(err)
	}
	for _, dm := range dms {
		net.Crash(dm)
	}
	for i := 0; i < 2; i++ {
		if err := write(2); err == nil {
			t.Fatal("write to a crashed cluster succeeded")
		}
	}
	if !store.Degraded() {
		t.Fatal("two consecutive write-quorum failures did not enter brownout")
	}
	// Gated write: fails fast with the typed error, no call timeout burned.
	start := time.Now()
	err = write(3)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("gated write error = %v, want DegradedError", err)
	}
	var de *DegradedError
	if !errors.As(err, &de) || de.Op != "write" {
		t.Errorf("degraded detail = %+v", de)
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Errorf("gated write took %v, want fail-fast", time.Since(start))
	}
	if store.Stats.BrownoutEntries.Value() != 1 || store.Stats.BrownoutWrites.Value() == 0 {
		t.Errorf("brownout counters: entries=%d writes=%d",
			store.Stats.BrownoutEntries.Value(), store.Stats.BrownoutWrites.Value())
	}

	for _, dm := range dms {
		net.Restart(dm)
	}
	// Reads never brown out: with the replicas back, a read completes while
	// the store is still degraded for writes.
	if rerr := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("read %v during brownout, want 1", v)
		}
		return nil
	}); rerr != nil {
		t.Fatalf("read during brownout failed: %v", rerr)
	}
	if !store.Degraded() {
		t.Fatal("a read must not exit brownout")
	}
	// The probe ladder: within a handful of attempts, one gated write is
	// admitted as a probe, succeeds against the recovered replicas, and
	// ends the brownout.
	recovered := false
	for i := 0; i < 2*brownoutProbeEvery; i++ {
		switch err := write(10 + i); {
		case err == nil:
			recovered = true
		case errors.Is(err, ErrConflict):
			// A probe that loses a lock race still proved the write quorum
			// reachable — it exits the brownout too; the next write settles it.
		case !errors.Is(err, ErrDegraded):
			t.Fatalf("unexpected error while probing: %v", err)
		}
		if recovered {
			break
		}
	}
	if !recovered {
		t.Fatal("no probe write succeeded after recovery")
	}
	if store.Degraded() {
		t.Fatal("successful probe did not exit brownout")
	}
	if err := write(99); err != nil {
		t.Fatalf("write after brownout exit failed: %v", err)
	}
}

// TestRetryBudgetBoundsAttempts pins that a dry retry budget stops a
// phase's conflict/unavailability retries long before WithLockRetries
// would, so retry traffic cannot storm an unavailable cluster.
func TestRetryBudgetBoundsAttempts(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{Seed: 15})
	defer net.Close()
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(15),
		WithCallTimeout(10*time.Millisecond),
		WithHedgeDelay(0),
		WithLockRetries(40),
		WithTxnRetries(0),
		WithRetryBudget(0.1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, dm := range dms {
		net.Crash(dm)
	}

	rerr := store.Run(context.Background(), func(tx *Txn) error {
		_, err := tx.Read(context.Background(), "x")
		return err
	})
	if rerr == nil {
		t.Fatal("read of a crashed cluster succeeded")
	}
	var ue *UnavailableError
	if !errors.As(rerr, &ue) {
		t.Fatalf("error = %v, want UnavailableError", rerr)
	}
	// The bucket starts at retryBudgetMax tokens; 40 configured retries
	// must have been cut off when it drained.
	if ue.Attempts > retryBudgetMax+2 {
		t.Errorf("attempts = %d, want the budget to stop well under the %d configured",
			ue.Attempts, 41)
	}
	if store.Stats.RetryBudgetDenied.Value() == 0 {
		t.Error("RetryBudgetDenied never incremented")
	}
}

// TestInflightLimiterShedsUnderOverload wires the AIMD limiter end to end:
// overload failures shrink the in-flight ceiling gauge.
func TestInflightLimiterReactsToOverload(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{Seed: 16})
	defer net.Close()
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items,
		WithSeed(16),
		WithCallTimeout(10*time.Millisecond),
		WithHedgeDelay(0),
		WithLockRetries(0),
		WithTxnRetries(0),
		WithInflightLimit(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := store.Stats.InflightLimit.Value(); got != 8 {
		t.Fatalf("initial in-flight ceiling = %d, want 8", got)
	}
	for _, dm := range dms {
		net.Crash(dm)
	}
	for i := 0; i < 3; i++ {
		if err := store.Run(context.Background(), func(tx *Txn) error {
			_, err := tx.Read(context.Background(), "x")
			return err
		}); err == nil {
			t.Fatal("read of a crashed cluster succeeded")
		}
	}
	if got := store.Stats.InflightLimit.Value(); got != 1 {
		t.Errorf("ceiling after three overload failures = %d, want 1 (8 -> 4 -> 2 -> 1)", got)
	}
	for _, dm := range dms {
		net.Restart(dm)
	}
	for i := 0; i < 50; i++ {
		if err := store.Run(context.Background(), func(tx *Txn) error {
			_, err := tx.Read(context.Background(), "x")
			return err
		}); err != nil {
			t.Fatalf("read after restart failed: %v", err)
		}
	}
	if got := store.Stats.InflightLimit.Value(); got <= 1 {
		t.Errorf("ceiling after sustained success = %d, want additive regrowth", got)
	}
}
