package cluster

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// TestWithLockRetriesZeroMeansZero is the regression test for the legacy
// default-clobbering: Options{LockRetries: 0} silently became 12 retries
// because withDefaults could not tell an explicit zero from unset. The
// option constructor states intent, so zero must survive resolution.
func TestWithLockRetriesZeroMeansZero(t *testing.T) {
	st := resolve([]Option{WithLockRetries(0)})
	if st.lockRetries != 0 {
		t.Fatalf("WithLockRetries(0) resolved to %d retries", st.lockRetries)
	}
	// The same explicit zero works for the transaction restart budget.
	st = resolve([]Option{WithTxnRetries(0)})
	if st.txnRetries != 0 {
		t.Fatalf("WithTxnRetries(0) resolved to %d restarts", st.txnRetries)
	}
	// Unset still means the defaults.
	st = resolve(nil)
	def := defaultSettings()
	if !reflect.DeepEqual(st, def) {
		t.Fatalf("resolve(nil) = %+v, want defaults %+v", st, def)
	}
}

func TestWithHedgeMaxClampsToOne(t *testing.T) {
	if st := resolve([]Option{WithHedgeMax(-5)}); st.hedgeMax != 1 {
		t.Errorf("WithHedgeMax(-5) resolved to %d", st.hedgeMax)
	}
}

// TestZeroLockRetriesFailsFirstConflict wires the regression through the
// store: with WithLockRetries(0) a conflicted write fails on its first
// attempt instead of burning 12 retries.
func TestZeroLockRetriesFailsFirstConflict(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 51})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	a, err := Open(net, items, WithSeed(51), WithCallTimeout(10*time.Millisecond))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	b, err := OpenClient(net, items,
		WithSeed(52), WithCallTimeout(10*time.Millisecond),
		WithLockRetries(0), WithTxnRetries(0))
	if err != nil {
		a.Close()
		net.Close()
		t.Fatal(err)
	}
	defer func() { b.Close(); a.Close(); net.Close() }()
	ctx := context.Background()

	blocked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- a.Run(ctx, func(tx *Txn) error {
			if err := tx.Write(ctx, "x", 1); err != nil {
				return err
			}
			close(blocked)
			<-release
			return nil
		})
	}()
	<-blocked
	err = b.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 2) })
	close(release)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Attempts != 1 {
		t.Fatalf("want exactly 1 attempt under WithLockRetries(0), got %+v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTypedAccessors(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 53})
	items := []ItemSpec{
		{Name: "count", Initial: 41, DMs: dms, Config: quorum.Majority(dms)},
		{Name: "note", Initial: nil, DMs: []string{"n0"}, Config: quorum.ReadOneWriteAll([]string{"n0"})},
	}
	store, err := Open(net, items, WithSeed(53))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	if err := store.Run(ctx, func(tx *Txn) error {
		n, err := ReadForUpdateAs[int](ctx, tx, "count")
		if err != nil {
			return err
		}
		if err := WriteAs(ctx, tx, "count", n+1); err != nil {
			return err
		}
		// A nil (never-written, nil-initial) item reads as the zero value.
		s, err := ReadAs[string](ctx, tx, "note")
		if err != nil {
			return err
		}
		if s != "" {
			t.Errorf("nil item read as %q, want zero string", s)
		}
		// A type mismatch is a descriptive error, not a panic.
		if _, err := ReadAs[string](ctx, tx, "count"); err == nil ||
			!strings.Contains(err.Error(), "int") || !strings.Contains(err.Error(), "string") {
			t.Errorf("type mismatch error must name both types, got %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := store.Run(ctx, func(tx *Txn) error {
		n, err := ReadAs[int](ctx, tx, "count")
		if err != nil {
			return err
		}
		if n != 42 {
			t.Errorf("count = %d, want 42", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialAblationStillWorks exercises the WithSequentialPhases
// baseline end to end, since benchmarks rely on it behaving like the seed.
func TestSequentialAblationStillWorks(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2", "dm3", "dm4"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 54})
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	store, err := Open(net, items, WithSeed(54), WithSequentialPhases(true))
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	defer func() { store.Close(); net.Close() }()
	ctx := context.Background()

	for i := 1; i <= 3; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("read %d, want 3", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if store.Stats.Hedges.Value() != 0 || store.Stats.ExtraLockReleases.Value() != 0 {
		t.Error("sequential path must not hedge or release extras")
	}
}
