package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

func repairCluster(t *testing.T, readRepair bool) (*Store, *sim.Network, []string) {
	t.Helper()
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 21})
	store, err := Open(net, []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		WithCallTimeout(25*time.Millisecond),
		WithReadRepair(readRepair),
		WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net, dms
}

// makeStale crashes one replica, writes through the others, restarts it.
func makeStale(t *testing.T, store *Store, net *sim.Network, dm string) {
	t.Helper()
	ctx := context.Background()
	net.Crash(dm)
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 10) }); err != nil {
		t.Fatal(err)
	}
	net.Restart(dm)
}

func TestReadRepairCatchesUpStaleReplica(t *testing.T) {
	store, net, dms := repairCluster(t, true)
	ctx := context.Background()
	makeStale(t, store, net, dms[2])

	// Read until the stale replica has been repaired (the read quorum is
	// random, so a few reads may be needed to touch dm2).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := store.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 10 {
				return fmt.Errorf("read %v", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let fire-and-forget repairs land
		resp, err := store.Inspect(ctx, dms[2], "x")
		if err != nil {
			t.Fatal(err)
		}
		if resp.VN == 1 && resp.Val == 10 {
			if store.Stats.Repairs.Value() == 0 {
				t.Error("replica caught up but no repair was counted")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale replica never repaired: %+v", resp)
		}
	}
}

func TestWithoutReadRepairStaleReplicaStaysStale(t *testing.T) {
	store, net, dms := repairCluster(t, false)
	ctx := context.Background()
	makeStale(t, store, net, dms[2])
	for i := 0; i < 10; i++ {
		if err := store.Run(ctx, func(tx *Txn) error {
			_, err := tx.Read(ctx, "x")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond)
	resp, err := store.Inspect(ctx, dms[2], "x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.VN != 0 {
		t.Fatalf("replica updated without read repair: %+v", resp)
	}
	if store.Stats.Repairs.Value() != 0 {
		t.Error("repairs counted with the feature disabled")
	}
}

func TestInspectUnknownReplica(t *testing.T) {
	store, _, _ := repairCluster(t, false)
	if _, err := store.Inspect(context.Background(), "dm0", "nope"); err == nil {
		t.Error("inspect of unknown item must fail")
	}
}
