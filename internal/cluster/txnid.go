// Package cluster implements the systems-layer realization of the paper's
// algorithm: a replicated key-value store with nested transactions over the
// simulated network of internal/sim. TMs run inside the client library and
// perform quorum reads and version-numbered quorum writes against DM server
// nodes; DMs implement Moss read/write locking with lock inheritance and
// intention lists (deferred update), so subtransaction aborts discard work
// without undo; reconfiguration follows Section 4 with generation-numbered
// configurations carried on the replicas.
package cluster

import "strings"

// TxnID names a transaction in the cluster. IDs are hierarchical,
// "/"-separated paths: a top-level transaction "t42" has subtransactions
// "t42/0", "t42/1", and so on, mirroring the model layer's transaction
// tree. A transaction is its own ancestor.
type TxnID string

// Parent returns the ID of the parent transaction and whether one exists.
func (t TxnID) Parent() (TxnID, bool) {
	i := strings.LastIndexByte(string(t), '/')
	if i < 0 {
		return "", false
	}
	return t[:i], true
}

// IsAncestorOf reports whether t is an ancestor of other (inclusive).
func (t TxnID) IsAncestorOf(other TxnID) bool {
	if t == other {
		return true
	}
	return strings.HasPrefix(string(other), string(t)+"/")
}

// Top returns the top-level ancestor of t.
func (t TxnID) Top() TxnID {
	if i := strings.IndexByte(string(t), '/'); i >= 0 {
		return t[:i]
	}
	return t
}
