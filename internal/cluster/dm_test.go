package cluster

import (
	"testing"

	"repro/internal/quorum"
)

func newReplica() *replica {
	return &replica{
		val:   "init",
		cfg:   quorum.Majority([]string{"a", "b", "c"}),
		locks: map[TxnID]LockMode{},
	}
}

func TestReplicaMossLockRules(t *testing.T) {
	r := newReplica()
	if !r.canLock("c1.t1/1", LockRead) {
		t.Fatal("first lock grantable")
	}
	r.grant("c1.t1/1", LockRead)
	// Unrelated read is compatible; unrelated write is not.
	if !r.canLock("c1.t2", LockRead) {
		t.Error("read/read compatible")
	}
	if r.canLock("c1.t2", LockWrite) {
		t.Error("write over unrelated read must be refused")
	}
	// The holder's ancestor relationship is what matters: a descendant of
	// the holder may lock.
	if !r.canLock("c1.t1/1/3", LockWrite) {
		t.Error("descendant of holder must be able to write-lock")
	}
	// Upgrading one's own lock is always allowed.
	if !r.canLock("c1.t1/1", LockWrite) {
		t.Error("self-upgrade must be allowed")
	}
	r.grant("c1.t1/1", LockWrite)
	if r.locks["c1.t1/1"] != LockWrite {
		t.Error("grant must upgrade")
	}
	r.grant("c1.t1/1", LockRead)
	if r.locks["c1.t1/1"] != LockWrite {
		t.Error("grant must never downgrade")
	}
}

func TestReplicaViewFoldsAncestorIntents(t *testing.T) {
	r := newReplica()
	r.vn, r.val = 1, "committed"
	r.intents = append(r.intents,
		intent{owner: "c1.t1", vn: 2, val: "parent-write"},
		intent{owner: "c1.t2", vn: 5, val: "foreign-write"},
		intent{owner: "c1.t1/3", vn: 3, val: "child-write"},
	)
	// A child of t1 sees t1's and its own writes, not t2's; later
	// intentions in order win.
	vn, val, _, _ := r.view("c1.t1/3")
	if vn != 3 || val != "child-write" {
		t.Errorf("view(t1/3) = (%d, %v)", vn, val)
	}
	// t2 sees its own write only.
	vn, val, _, _ = r.view("c1.t2")
	if vn != 5 || val != "foreign-write" {
		t.Errorf("view(t2) = (%d, %v)", vn, val)
	}
	// A stranger sees only committed state.
	vn, val, _, _ = r.view("c1.t9")
	if vn != 1 || val != "committed" {
		t.Errorf("view(t9) = (%d, %v)", vn, val)
	}
}

func TestReplicaPromoteMovesLocksAndIntents(t *testing.T) {
	r := newReplica()
	r.grant("c1.t1/1", LockWrite)
	r.intents = append(r.intents, intent{owner: "c1.t1/1", vn: 2, val: "x"})
	r.promote("c1.t1/1")
	if _, held := r.locks["c1.t1/1"]; held {
		t.Error("child lock must move")
	}
	if r.locks["c1.t1"] != LockWrite {
		t.Error("parent must inherit the write lock")
	}
	if r.intents[0].owner != "c1.t1" {
		t.Error("intent ownership must move to the parent")
	}
}

func TestReplicaDropRemovesSubtree(t *testing.T) {
	r := newReplica()
	r.grant("c1.t1/1", LockWrite)
	r.grant("c1.t1/1/2", LockRead)
	r.grant("c1.t2", LockRead)
	r.intents = append(r.intents,
		intent{owner: "c1.t1/1", vn: 2, val: "x"},
		intent{owner: "c1.t2", vn: 3, val: "y"},
	)
	r.drop("c1.t1/1")
	if len(r.locks) != 1 || r.locks["c1.t2"] != LockRead {
		t.Errorf("locks after drop: %v", r.locks)
	}
	if len(r.intents) != 1 || r.intents[0].owner != "c1.t2" {
		t.Errorf("intents after drop: %v", r.intents)
	}
}

func TestReplicaApplyTopFoldsInOrder(t *testing.T) {
	r := newReplica()
	r.intents = append(r.intents,
		intent{owner: "c1.t1", vn: 1, val: "first"},
		intent{owner: "c1.t1", isConfig: true, gen: 1, cfg: quorum.ReadOneWriteAll([]string{"a", "b", "c"})},
		intent{owner: "c1.t1", vn: 2, val: "second"},
		intent{owner: "c1.t9", vn: 9, val: "unrelated"},
	)
	r.grant("c1.t1", LockWrite)
	r.applyTop("c1.t1")
	if r.vn != 2 || r.val != "second" {
		t.Errorf("committed state = (%d, %v)", r.vn, r.val)
	}
	if r.gen != 1 {
		t.Errorf("gen = %d", r.gen)
	}
	if len(r.intents) != 1 || r.intents[0].owner != "c1.t9" {
		t.Errorf("foreign intents must survive: %v", r.intents)
	}
	if len(r.locks) != 0 {
		t.Errorf("locks must be released: %v", r.locks)
	}
}

func TestHandleUnknownItemAndMessage(t *testing.T) {
	s := &dmServer{id: "d", replicas: map[string]*replica{}, appliedTop: map[TxnID]bool{}}
	if resp := s.handle("x", ReadReq{Txn: "c1.t1", Item: "nope"}); resp.(ReadResp).OK {
		t.Error("unknown item must not grant")
	}
	if resp := s.handle("x", WriteReq{Txn: "c1.t1", Item: "nope"}); resp.(WriteResp).OK {
		t.Error("unknown item must not accept writes")
	}
	if resp := s.handle("x", InspectReq{Item: "nope"}); resp.(InspectResp).OK {
		t.Error("unknown item must not inspect")
	}
	if resp := s.handle("x", "garbage"); resp.(Ack).OK {
		t.Error("unknown message must be refused")
	}
}

func TestCommitTopIdempotent(t *testing.T) {
	s := &dmServer{
		id:         "d",
		replicas:   map[string]*replica{"x": newReplica()},
		appliedTop: map[TxnID]bool{},
	}
	r := s.replicas["x"]
	r.intents = append(r.intents, intent{owner: "c1.t1", vn: 1, val: "v"})
	s.handle("c", CommitTopReq{Txn: "c1.t1"})
	if r.vn != 1 {
		t.Fatal("commit not applied")
	}
	// A second, retried commit must not disturb later state.
	r.intents = append(r.intents, intent{owner: "c1.t2", vn: 2, val: "w"})
	s.handle("c", CommitTopReq{Txn: "c1.t1"})
	if len(r.intents) != 1 || r.vn != 1 {
		t.Errorf("idempotence violated: vn=%d intents=%v", r.vn, r.intents)
	}
}

func TestRepairAppliesOnlyWhenNewerAndIdle(t *testing.T) {
	s := &dmServer{
		id:         "d",
		replicas:   map[string]*replica{"x": newReplica()},
		appliedTop: map[TxnID]bool{},
	}
	r := s.replicas["x"]
	r.vn = 2
	s.handle("c", RepairReq{Item: "x", VN: 1, Val: "older"})
	if r.vn != 2 {
		t.Error("older repair applied")
	}
	s.handle("c", RepairReq{Item: "x", VN: 5, Val: "newer"})
	if r.vn != 5 || r.val != "newer" {
		t.Error("newer repair not applied")
	}
	// Read locks do not block repairs (they only advance committed state
	// to the quorum maximum) …
	r.grant("c1.t1", LockRead)
	s.handle("c", RepairReq{Item: "x", VN: 9, Val: "reader-held"})
	if r.vn != 9 {
		t.Error("repair must apply under read locks")
	}
	// … but write locks and pending intents do.
	r.grant("c1.t2", LockWrite)
	s.handle("c", RepairReq{Item: "x", VN: 12, Val: "busy"})
	if r.vn != 12-3 {
		t.Error("repair applied under a write lock")
	}
}
