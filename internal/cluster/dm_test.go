package cluster

import (
	"testing"

	"repro/internal/quorum"
)

func newReplica() *replica {
	return &replica{
		val:   "init",
		cfg:   quorum.Majority([]string{"a", "b", "c"}),
		locks: map[TxnID]LockMode{},
	}
}

func TestReplicaMossLockRules(t *testing.T) {
	r := newReplica()
	if !r.canLock("c1.t1/1", LockRead) {
		t.Fatal("first lock grantable")
	}
	r.grant("c1.t1/1", LockRead)
	// Unrelated read is compatible; unrelated write is not.
	if !r.canLock("c1.t2", LockRead) {
		t.Error("read/read compatible")
	}
	if r.canLock("c1.t2", LockWrite) {
		t.Error("write over unrelated read must be refused")
	}
	// The holder's ancestor relationship is what matters: a descendant of
	// the holder may lock.
	if !r.canLock("c1.t1/1/3", LockWrite) {
		t.Error("descendant of holder must be able to write-lock")
	}
	// Upgrading one's own lock is always allowed.
	if !r.canLock("c1.t1/1", LockWrite) {
		t.Error("self-upgrade must be allowed")
	}
	r.grant("c1.t1/1", LockWrite)
	if r.locks["c1.t1/1"] != LockWrite {
		t.Error("grant must upgrade")
	}
	r.grant("c1.t1/1", LockRead)
	if r.locks["c1.t1/1"] != LockWrite {
		t.Error("grant must never downgrade")
	}
}

func TestReplicaViewFoldsAncestorIntents(t *testing.T) {
	r := newReplica()
	r.vn, r.val = 1, "committed"
	r.intents = append(r.intents,
		intent{owner: "c1.t1", vn: 2, val: "parent-write"},
		intent{owner: "c1.t2", vn: 5, val: "foreign-write"},
		intent{owner: "c1.t1/3", vn: 3, val: "child-write"},
	)
	// A child of t1 sees t1's and its own writes, not t2's; later
	// intentions in order win.
	vn, val, _, _ := r.view("c1.t1/3")
	if vn != 3 || val != "child-write" {
		t.Errorf("view(t1/3) = (%d, %v)", vn, val)
	}
	// t2 sees its own write only.
	vn, val, _, _ = r.view("c1.t2")
	if vn != 5 || val != "foreign-write" {
		t.Errorf("view(t2) = (%d, %v)", vn, val)
	}
	// A stranger sees only committed state.
	vn, val, _, _ = r.view("c1.t9")
	if vn != 1 || val != "committed" {
		t.Errorf("view(t9) = (%d, %v)", vn, val)
	}
}

func TestReplicaPromoteMovesLocksAndIntents(t *testing.T) {
	r := newReplica()
	r.grant("c1.t1/1", LockWrite)
	r.intents = append(r.intents, intent{owner: "c1.t1/1", vn: 2, val: "x"})
	r.promote("c1.t1/1")
	if _, held := r.locks["c1.t1/1"]; held {
		t.Error("child lock must move")
	}
	if r.locks["c1.t1"] != LockWrite {
		t.Error("parent must inherit the write lock")
	}
	if r.intents[0].owner != "c1.t1" {
		t.Error("intent ownership must move to the parent")
	}
}

func TestReplicaDropRemovesSubtree(t *testing.T) {
	r := newReplica()
	r.grant("c1.t1/1", LockWrite)
	r.grant("c1.t1/1/2", LockRead)
	r.grant("c1.t2", LockRead)
	r.intents = append(r.intents,
		intent{owner: "c1.t1/1", vn: 2, val: "x"},
		intent{owner: "c1.t2", vn: 3, val: "y"},
	)
	r.drop("c1.t1/1")
	if len(r.locks) != 1 || r.locks["c1.t2"] != LockRead {
		t.Errorf("locks after drop: %v", r.locks)
	}
	if len(r.intents) != 1 || r.intents[0].owner != "c1.t2" {
		t.Errorf("intents after drop: %v", r.intents)
	}
}

func TestReplicaApplyTopFoldsInOrder(t *testing.T) {
	r := newReplica()
	r.intents = append(r.intents,
		intent{owner: "c1.t1", vn: 1, val: "first"},
		intent{owner: "c1.t1", isConfig: true, gen: 1, cfg: quorum.ReadOneWriteAll([]string{"a", "b", "c"})},
		intent{owner: "c1.t1", vn: 2, val: "second"},
		intent{owner: "c1.t9", vn: 9, val: "unrelated"},
	)
	r.grant("c1.t1", LockWrite)
	r.applyTop("c1.t1", nil)
	if r.vn != 2 || r.val != "second" {
		t.Errorf("committed state = (%d, %v)", r.vn, r.val)
	}
	if r.gen != 1 {
		t.Errorf("gen = %d", r.gen)
	}
	if len(r.intents) != 1 || r.intents[0].owner != "c1.t9" {
		t.Errorf("foreign intents must survive: %v", r.intents)
	}
	if len(r.locks) != 0 {
		t.Errorf("locks must be released: %v", r.locks)
	}
}

// A committed subtransaction whose CommitSubReq never arrived leaves its
// intentions under its own id; the top-level commit must apply them (the
// write is committed state) while still discarding aborted children.
func TestReplicaApplyTopAppliesOrphanCommittedSubs(t *testing.T) {
	r := newReplica()
	r.intents = append(r.intents,
		intent{owner: "c1.t1/1", vn: 1, val: "committed-sub"},
		intent{owner: "c1.t1/2", vn: 2, val: "aborted-sub"},
	)
	r.grant("c1.t1/1", LockWrite)
	r.grant("c1.t1/2", LockWrite)
	r.applyTop("c1.t1", map[TxnID]bool{"c1.t1/1": true})
	if r.vn != 1 || r.val != "committed-sub" {
		t.Errorf("committed state = (%d, %v), want (1, committed-sub)", r.vn, r.val)
	}
	if len(r.intents) != 0 {
		t.Errorf("aborted child's intent must be discarded: %v", r.intents)
	}
	if len(r.locks) != 0 {
		t.Errorf("all descendants' locks must be released: %v", r.locks)
	}
}

func TestHandleUnknownItemAndMessage(t *testing.T) {
	s := &dmServer{id: "d", replicas: map[string]*replica{}, resolved: map[TxnID]*resolution{}}
	if resp := s.handle("x", ReadReq{Txn: "c1.t1", Item: "nope"}); resp.(ReadResp).OK {
		t.Error("unknown item must not grant")
	}
	if resp := s.handle("x", WriteReq{Txn: "c1.t1", Item: "nope"}); resp.(WriteResp).OK {
		t.Error("unknown item must not accept writes")
	}
	if resp := s.handle("x", InspectReq{Item: "nope"}); resp.(InspectResp).OK {
		t.Error("unknown item must not inspect")
	}
	if resp := s.handle("x", "garbage"); resp.(Ack).OK {
		t.Error("unknown message must be refused")
	}
}

func TestCommitTopIdempotent(t *testing.T) {
	s := &dmServer{
		id:       "d",
		replicas: map[string]*replica{"x": newReplica()},
		resolved: map[TxnID]*resolution{},
	}
	r := s.replicas["x"]
	r.intents = append(r.intents, intent{owner: "c1.t1", vn: 1, val: "v"})
	s.handle("c", CommitTopReq{Txn: "c1.t1"})
	if r.vn != 1 {
		t.Fatal("commit not applied")
	}
	// A second, retried commit must not disturb later state.
	r.intents = append(r.intents, intent{owner: "c1.t2", vn: 2, val: "w"})
	s.handle("c", CommitTopReq{Txn: "c1.t1"})
	if len(r.intents) != 1 || r.vn != 1 {
		t.Errorf("idempotence violated: vn=%d intents=%v", r.vn, r.intents)
	}
}

func TestRepairAppliesOnlyWhenNewerAndIdle(t *testing.T) {
	s := &dmServer{
		id:       "d",
		replicas: map[string]*replica{"x": newReplica()},
		resolved: map[TxnID]*resolution{},
	}
	r := s.replicas["x"]
	r.vn = 2
	s.handle("c", RepairReq{Item: "x", VN: 1, Val: "older"})
	if r.vn != 2 {
		t.Error("older repair applied")
	}
	s.handle("c", RepairReq{Item: "x", VN: 5, Val: "newer"})
	if r.vn != 5 || r.val != "newer" {
		t.Error("newer repair not applied")
	}
	// Read locks do not block repairs (they only advance committed state
	// to the quorum maximum) …
	r.grant("c1.t1", LockRead)
	s.handle("c", RepairReq{Item: "x", VN: 9, Val: "reader-held"})
	if r.vn != 9 {
		t.Error("repair must apply under read locks")
	}
	// … but write locks and pending intents do.
	r.grant("c1.t2", LockWrite)
	s.handle("c", RepairReq{Item: "x", VN: 12, Val: "busy"})
	if r.vn != 12-3 {
		t.Error("repair applied under a write lock")
	}
}

func TestReplicaReleaseGuards(t *testing.T) {
	r := newReplica()

	// Phase 1 creates the lock; releasing phase 1 frees it and tombstones
	// the phase so a late duplicate of phase 1 cannot re-grant.
	r.grant("c1.t1", LockRead)
	r.noteGrant("c1.t1", 1, false)
	if !r.release("c1.t1", 1) {
		t.Fatal("release of the creating phase must free the lock")
	}
	if !r.tombstoned("c1.t1", 1) {
		t.Error("released phase must be tombstoned")
	}
	if r.tombstoned("c1.t1", 2) {
		t.Error("later phases must not be tombstoned")
	}

	// A lock created by phase 1 must not be freed by releasing phase 2
	// (phase 2's grant reported Held, so the lock predates it).
	r.grant("c1.t2", LockWrite)
	r.noteGrant("c1.t2", 1, false)
	r.noteGrant("c1.t2", 2, true)
	if r.release("c1.t2", 2) {
		t.Error("release must not free a lock an earlier phase created")
	}
	// Nor by releasing phase 1, since phase 2 re-granted it.
	if r.release("c1.t2", 1) {
		t.Error("release must not free a lock a later phase re-granted")
	}
	if _, held := r.locks["c1.t2"]; !held {
		t.Fatal("lock must survive both refused releases")
	}

	// A lock backing a buffered intention is never freed.
	r.grant("c1.t3", LockWrite)
	r.noteGrant("c1.t3", 1, false)
	r.intents = append(r.intents, intent{owner: "c1.t3", vn: 1, val: "v"})
	if r.release("c1.t3", 1) {
		t.Error("release must not free a lock that backs an intention")
	}

	// Seq 0 (sequential path) is a no-op.
	if r.release("c1.t2", 0) {
		t.Error("seq 0 release must be a no-op")
	}
}

func TestHandleRefusesTombstonedAndResolved(t *testing.T) {
	s := &dmServer{
		id:       "d",
		replicas: map[string]*replica{"x": newReplica()},
		resolved: map[TxnID]*resolution{},
	}
	// Release phase 3 before its (late, reordered) request arrives: the
	// request must not grant.
	s.handle("c", ReleaseReq{Txn: "c1.t1", Item: "x", Seq: 3})
	resp := s.handle("c", ReadReq{Txn: "c1.t1", Item: "x", Lock: LockRead, Seq: 3}).(ReadResp)
	if resp.OK || resp.Busy {
		t.Errorf("tombstoned phase must be refused outright, got %+v", resp)
	}
	// A later phase of the same transaction still works.
	resp = s.handle("c", ReadReq{Txn: "c1.t1", Item: "x", Lock: LockRead, Seq: 4}).(ReadResp)
	if !resp.OK {
		t.Error("later phase must still be granted")
	}

	// Once the top-level transaction resolves, no copy of any phase grants.
	s.handle("c", CommitTopReq{Txn: "c1.t1"})
	resp = s.handle("c", ReadReq{Txn: "c1.t1/2", Item: "x", Lock: LockRead, Seq: 9}).(ReadResp)
	if resp.OK || resp.Busy {
		t.Errorf("resolved txn must be refused outright, got %+v", resp)
	}
	w := s.handle("c", WriteReq{Txn: "c1.t1", Item: "x", VN: 1, Val: "v", Seq: 9}).(WriteResp)
	if w.OK || w.Busy {
		t.Errorf("resolved txn must not buffer writes, got %+v", w)
	}
	if got := len(s.replicas["x"].intents); got != 0 {
		t.Errorf("no intent may be installed after resolve, got %d", got)
	}

	// Top-level abort resolves too.
	s.handle("c", AbortReq{Txn: "c1.t9"})
	resp = s.handle("c", ReadReq{Txn: "c1.t9", Item: "x", Lock: LockRead, Seq: 1}).(ReadResp)
	if resp.OK {
		t.Error("aborted top-level txn must be refused")
	}
}

func TestHandleDedupesHedgedWriteIntents(t *testing.T) {
	s := &dmServer{
		id:       "d",
		replicas: map[string]*replica{"x": newReplica()},
		resolved: map[TxnID]*resolution{},
	}
	// Two hedged copies of the same phase's WriteReq must install one
	// intention.
	s.handle("c", WriteReq{Txn: "c1.t1", Item: "x", VN: 7, Val: "v", Seq: 2})
	s.handle("c", WriteReq{Txn: "c1.t1", Item: "x", VN: 7, Val: "v", Seq: 2})
	if got := len(s.replicas["x"].intents); got != 1 {
		t.Errorf("duplicate WriteReq must dedupe, got %d intents", got)
	}
	// A genuinely new write (higher vn) still appends.
	s.handle("c", WriteReq{Txn: "c1.t1", Item: "x", VN: 8, Val: "w", Seq: 3})
	if got := len(s.replicas["x"].intents); got != 2 {
		t.Errorf("new write must append, got %d intents", got)
	}

	cfg := quorum.Majority([]string{"a", "b"})
	s.handle("c", ConfigWriteReq{Txn: "c1.t1", Item: "x", Gen: 1, Cfg: cfg, Seq: 4})
	s.handle("c", ConfigWriteReq{Txn: "c1.t1", Item: "x", Gen: 1, Cfg: cfg, Seq: 4})
	if got := len(s.replicas["x"].intents); got != 3 {
		t.Errorf("duplicate ConfigWriteReq must dedupe, got %d intents", got)
	}
}

func TestReplicaPromoteKeepsTombstones(t *testing.T) {
	r := newReplica()
	r.grant("c1.t1/1", LockWrite)
	r.noteGrant("c1.t1/1", 2, false)
	r.release("c1.t1/1", 1) // tombstone an earlier phase, lock survives
	r.promote("c1.t1/1")
	if r.locks["c1.t1"] != LockWrite {
		t.Fatal("parent must inherit the lock")
	}
	if _, ok := r.lockSeqs["c1.t1/1"]; ok {
		t.Error("child phase records must be cleared on promote")
	}
	if !r.tombstoned("c1.t1/1", 1) {
		t.Error("tombstones must survive promotion")
	}
}
