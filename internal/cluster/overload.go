package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/transport"
)

// classifyRequest maps a wire request to its admission priority at a DM.
// Control traffic — everything that finishes transactions and frees locks —
// must always get through: an overloaded replica that sheds a commit or a
// release strands locks the whole cluster waits on. Write-intent traffic
// outranks fresh reads because writers usually hold locks elsewhere
// already. Everything else (reads, pings, repairs, inspections) is the
// bulk that admission exists to bound.
func classifyRequest(req any) transport.Priority {
	switch req.(type) {
	case CommitTopReq, CommitSubReq, AbortReq, ReleaseReq,
		RenewLeaseReq, ReapReq, ResolutionQueryReq, ResolutionAnswer,
		HintFenceReq:
		// HintFenceReq is control too: it stands between a writer and its
		// commit point, and shedding it stalls the commit exactly like a
		// shed renewal would.
		return transport.PrioControl
	case WriteReq, ConfigWriteReq:
		return transport.PrioWrite
	}
	return transport.PrioRead
}

// harness returns the overload-harness view of one DM's server, or nil when
// the backend does not support it (or the DM has no admission queue armed —
// both sim and TCP servers expose the capability only through this optional
// interface).
func (h *dmHandle) harness() transport.OverloadHarness {
	oh, _ := h.server.(transport.OverloadHarness)
	return oh
}

// callBudget computes the timeout for one outbound call or fan-out phase:
// the configured call timeout, clamped to the caller's remaining context
// budget minus the per-hop allowance. When the remaining budget cannot
// even cover the allowance the call is refused before it is sent — a
// request that cannot finish in time must be dropped at the earliest
// possible hop, not forwarded to die in a replica queue. This is also the
// hedge clamp: every hedged copy of a phase derives from the phase context
// this budget bounds, so a hedge can never outlive the caller's deadline
// on the strength of a fresh full call timeout.
func (s *Store) callBudget(ctx context.Context) (time.Duration, error) {
	d := s.opts.callTimeout
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl) - s.opts.hopAllowance
		if rem <= 0 {
			return 0, context.DeadlineExceeded
		}
		if rem < d {
			d = rem
		}
	}
	return d, nil
}

// retryBudget is the SRE-style token bucket that bounds retry traffic to a
// fraction of first-attempt traffic. Every first attempt of a quorum phase
// deposits ratio tokens; every retry withdraws one. Under healthy load the
// bucket sits full and retries are free; under sustained overload the
// bucket drains and the sustainable retry rate converges to ratio times
// the first-attempt rate — retries can amplify load only by that factor,
// never into a retry storm. A nil *retryBudget (budget disabled) admits
// every retry.
type retryBudget struct {
	mu     sync.Mutex
	ratio  float64
	tokens float64
	max    float64
}

// retryBudgetMax caps the bucket so a long quiet period cannot bank an
// unbounded burst of retries.
const retryBudgetMax = 16

func newRetryBudget(ratio float64) *retryBudget {
	if ratio <= 0 {
		return nil
	}
	// Start full: the budget exists to stop sustained retry storms, not to
	// make a cold store fail its first conflict.
	return &retryBudget{ratio: ratio, tokens: retryBudgetMax, max: retryBudgetMax}
}

// deposit credits one first attempt.
func (b *retryBudget) deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// allow withdraws one retry token, reporting whether the retry may run.
func (b *retryBudget) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// aimdLimiter bounds in-flight top-level transactions with an
// additive-increase / multiplicative-decrease ceiling: successes grow the
// limit by ~1 per limit-many successes, overload signals halve it. The
// classic TCP-shaped probe keeps offered concurrency near what the
// replicas can actually serve without an explicit capacity oracle.
type aimdLimiter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	limit    float64
	max      float64
	inflight int
}

func newAIMDLimiter(max int) *aimdLimiter {
	if max <= 0 {
		return nil
	}
	l := &aimdLimiter{limit: float64(max), max: float64(max)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// ceilLocked is the current integer ceiling, never below 1 so the limiter
// can shed load but not wedge the store.
func (l *aimdLimiter) ceilLocked() int {
	c := int(l.limit)
	if c < 1 {
		c = 1
	}
	return c
}

// acquire blocks until an in-flight slot frees up or ctx dies.
func (l *aimdLimiter) acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.inflight < l.ceilLocked() {
		l.inflight++
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	// Slow path: a watcher turns ctx expiry into a wakeup. It takes the
	// mutex before broadcasting so the wakeup cannot land between our
	// ctx.Err check and cond.Wait.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		case <-stop:
		}
	}()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.inflight >= l.ceilLocked() {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	l.inflight++
	return nil
}

// release frees an in-flight slot.
func (l *aimdLimiter) release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.inflight--
	l.cond.Broadcast()
	l.mu.Unlock()
}

// onSuccess grows the ceiling additively (+1 after limit-many successes).
func (l *aimdLimiter) onSuccess() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.limit += 1 / l.limit
	if l.limit > l.max {
		l.limit = l.max
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// onOverload halves the ceiling (floor 1).
func (l *aimdLimiter) onOverload() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.limit /= 2
	if l.limit < 1 {
		l.limit = 1
	}
	l.mu.Unlock()
}

// ceiling returns the current integer in-flight limit.
func (l *aimdLimiter) ceiling() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ceilLocked()
}

// brownoutProbeEvery is how many rejected writes pass between probe writes
// while degraded: every Nth write that would be refused is admitted
// instead, so a recovered cluster is rediscovered by the traffic itself.
const brownoutProbeEvery = 4

// brownout is the store's graceful-degradation state machine. Consecutive
// write-quorum failures caused by overload or unavailability trip it into
// degraded (read-only) mode: write-locking operations fail fast with a
// DegradedError instead of queueing more doomed work against replicas that
// cannot assemble a write quorum, while reads keep assembling read
// quorums. It exits when a probe write-phase succeeds — either the
// periodic every-Nth admitted probe, or any write once the failure
// detector reports the replicas healthy again.
type brownout struct {
	mu        sync.Mutex
	threshold int
	fails     int // consecutive write-quorum overload/unavailable failures
	degraded  bool
	since     int // fails at the moment of entry, for error messages
	rejects   int // writes refused while degraded, drives probe cadence
}

func newBrownout(threshold int) *brownout {
	if threshold <= 0 {
		return nil
	}
	return &brownout{threshold: threshold}
}

// noteFailure records one write-quorum overload/unavailable failure and
// reports whether it tripped the store into degraded mode.
func (b *brownout) noteFailure() (entered bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if !b.degraded && b.fails >= b.threshold {
		b.degraded = true
		b.since = b.fails
		b.rejects = 0
		return true
	}
	return false
}

// noteSuccess records a write-quorum phase that completed (or failed only
// on a lock conflict — the replicas answered, which is liveness) and
// reports whether it ended a brownout.
func (b *brownout) noteSuccess() (exited bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.degraded {
		b.degraded = false
		return true
	}
	return false
}

// gate decides one write-locking operation's fate at entry. healthy is the
// failure detector's opinion that no replica is suspect: when it says the
// cluster recovered, every write becomes a probe so the first success ends
// the brownout immediately instead of waiting out the probe cadence.
func (b *brownout) gate(healthy bool) (reject bool, since int) {
	if b == nil {
		return false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.degraded {
		return false, 0
	}
	if healthy {
		return false, 0 // probe: detector says replicas recovered
	}
	b.rejects++
	if b.rejects%brownoutProbeEvery == 0 {
		return false, 0 // periodic probe
	}
	return true, b.since
}

// degradedNow reports whether the store is currently in read-only mode.
func (b *brownout) degradedNow() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.degraded
}

// writeGate refuses a write-locking operation while the store is in
// brownout (except probes). Callers pass the operation name for the error.
func (s *Store) writeGate(op, item string) error {
	if s.brown == nil {
		return nil
	}
	healthy := s.health != nil && s.Stats.SuspectReplicas.Value() == 0
	if reject, since := s.brown.gate(healthy); reject {
		s.Stats.BrownoutWrites.Inc()
		return &DegradedError{Op: op, Item: item, Since: since}
	}
	return nil
}

// noteWriteOutcome feeds one write-locking operation's result to the
// brownout state machine. Conflicts count as liveness — a replica that
// answers Busy is alive and serving — so only overload and unavailability
// push toward degradation.
func (s *Store) noteWriteOutcome(err error) {
	if s.brown == nil {
		return
	}
	switch {
	case err == nil || errors.Is(err, ErrConflict):
		s.brown.noteSuccess()
	case errors.Is(err, ErrDegraded):
		// A gate rejection says nothing new about the replicas.
	case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrUnavailable):
		if s.brown.noteFailure() {
			s.Stats.BrownoutEntries.Inc()
		}
	}
}

// Degraded reports whether the store is currently in brownout (read-only)
// mode.
func (s *Store) Degraded() bool { return s.brown.degradedNow() }

// noteTxnOutcome feeds one top-level transaction's result to the AIMD
// limiter: successes regrow the in-flight ceiling, overload and
// unavailability signals halve it. Brownout gate rejections are excluded —
// they are the store refusing work, not the replicas failing it.
func (s *Store) noteTxnOutcome(err error) {
	if s.limiter == nil {
		return
	}
	switch {
	case err == nil:
		s.limiter.onSuccess()
	case errors.Is(err, ErrDegraded):
	case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrUnavailable):
		s.limiter.onOverload()
	}
	s.Stats.InflightLimit.Set(int64(s.limiter.ceiling()))
}

// BurstReport summarizes one injected admission burst at a DM.
type BurstReport struct {
	// Offered is the number of requests injected.
	Offered int
	// Admitted, Shed and Expired are the admission verdicts: queued,
	// rejected queue-full, and discarded expired-on-arrival at dequeue.
	Admitted int
	Shed     int
	Expired  int
}

// Burst offers total inert PingReqs straight to dm's admission queue while
// its service loop is held, then resumes service and waits for the queue
// to drain. The first preExpired requests carry an already-passed deadline
// (one nanosecond before the store clock's now), so they are deterministic
// expired-on-arrival discards at dequeue. Injection bypasses the network —
// no lanes, no drops, no scheduler — which makes the report a pure
// function of the burst: seeded chaos campaigns rely on that for
// bit-for-bit replayable shed counters. Zero report when dm does not exist
// or has no admission queue.
func (s *Store) Burst(dm string, total, preExpired int) BurstReport {
	s.mu.Lock()
	h := s.dms[dm]
	s.mu.Unlock()
	if h == nil || total <= 0 {
		return BurstReport{}
	}
	oh := h.harness()
	if oh == nil {
		return BurstReport{}
	}
	if preExpired > total {
		preExpired = total
	}
	before := oh.Overload()
	oh.HoldService()
	expired := s.now().Add(-time.Nanosecond)
	for i := 0; i < total; i++ {
		var dl time.Time
		if i < preExpired {
			dl = expired
		}
		oh.Inject("burst", PingReq{Seq: i}, dl)
	}
	oh.ResumeService()
	oh.WaitServiceIdle()
	after := oh.Overload()
	return BurstReport{
		Offered:  total,
		Admitted: int(after.Admitted - before.Admitted),
		Shed:     int(after.Shed - before.Shed),
		Expired:  int(after.ExpiredDropped - before.ExpiredDropped),
	}
}

// OverloadTotals sums the admission counters of every DM this store
// spawned.
func (s *Store) OverloadTotals() transport.OverloadStats {
	s.mu.Lock()
	handles := make([]*dmHandle, 0, len(s.dms))
	for _, h := range s.dms {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	var out transport.OverloadStats
	for _, h := range handles {
		oh := h.harness()
		if oh == nil {
			continue
		}
		st := oh.Overload()
		out.Admitted += st.Admitted
		out.Shed += st.Shed
		out.ExpiredDropped += st.ExpiredDropped
		out.ServedExpired += st.ServedExpired
	}
	return out
}
