package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/commit"
	"repro/internal/quorum"
)

// TestWireRoundTrip gob round-trips every registered protocol type through
// an interface field — the exact shape the WAL's walRecord and the TCP
// transport's frames use. A type that encodes in-process over the sim
// backend but is missing from RegisterWireTypes fails here, not on the
// first real socket or log replay. Values use non-zero fields throughout so
// a silently dropped field cannot hide behind its zero value.
func TestWireRoundTrip(t *testing.T) {
	cfg := quorum.Config{
		R: []quorum.Set{quorum.NewSet("dm0", "dm1")},
		W: []quorum.Set{quorum.NewSet("dm1", "dm2")},
	}
	msgs := []any{
		// Requests, in RegisterWireTypes order.
		ReadReq{Txn: "t1/0", Item: "x", Lock: LockWrite, Seq: 3},
		WriteReq{Txn: "t1", Item: "x", VN: 7, Val: 42, Seq: 4},
		ConfigWriteReq{Txn: "t2", Item: "y", Gen: 2, Cfg: cfg, Seq: 1},
		ReleaseReq{Txn: "t3", Item: "x", Seq: 2},
		CommitSubReq{Txn: "t1/0"},
		AbortReq{Txn: "t4"},
		CommitTopReq{Txn: "t1", Subs: []TxnID{"t1/0", "t1/1"}, Final: map[string]int{"x": 8}},
		RepairReq{Item: "x", VN: 9, Val: 5, Gen: 1, Cfg: cfg},
		PingReq{Seq: 11},
		InspectReq{Item: "z"},
		RenewLeaseReq{Txn: "t5"},
		ResolutionQueryReq{Txn: "t6", From: "dm0"},
		ResolutionAnswer{Txn: "t6", From: "dm1", Known: true, Committed: true, Subs: []TxnID{"t6/0"}, Active: true},
		HintReadReq{Txn: "t7", Item: "x", Seq: 5, Gen: 1},
		HintGrantReq{Item: "x", VN: 3, Gen: 1},
		HintFenceReq{Txn: "t8", Item: "x"},
		ReapReq{Txn: "t9", Commit: true, Subs: []TxnID{"t9/0"}},
		RebuildPullReq{For: "dm1", Items: []string{"x", "y"}},
		// Responses.
		ReadResp{OK: true, VN: 6, Val: 13, Gen: 1, Cfg: cfg, Hinted: true},
		WriteResp{OK: true, Held: true},
		Ack{OK: true},
		OverloadedResp{DM: "dm2", Expired: true},
		InspectResp{OK: true, VN: 4, Val: 8, Gen: 1, Cfg: cfg, Locks: 2, Intents: 1},
		HintMissResp{DM: "dm0", Reason: "expired"},
		QuarantinedResp{DM: "dm1", Reason: "wal: segment corrupt"},
		RebuildPullResp{
			OK: true, From: "dm0",
			Items:    []RebuildItemState{{Item: "x", Has: true, VN: 5, Val: 9, Gen: 1, Cfg: cfg}},
			Moved:    map[string]WrongShardResp{"y": {DM: "dm0", Item: "y", Epoch: 2, Group: "g1", DMs: []string{"dm3"}, Gen: 3, Cfg: cfg}},
			Resolved: map[TxnID]RebuildResolution{"t1": {Committed: true, Subs: []TxnID{"t1/0"}}},
			Acceptors: map[TxnID]commit.Acceptor{"t2": {
				Promised: 1, AccBal: 1,
				AccVal: commit.Decision{Commit: true, Subs: []string{"t2/0"}, Final: map[string]int{"x": 5}},
				Cohort: []string{"dm0", "dm1"},
			}},
		},
	}
	type envelope struct{ Msg any }
	for _, m := range msgs {
		t.Run(fmt.Sprintf("%T", m), func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(envelope{Msg: m}); err != nil {
				t.Fatalf("encode: %v", err)
			}
			var out envelope
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(out.Msg, m) {
				t.Fatalf("round trip changed the value:\n sent %#v\n got  %#v", m, out.Msg)
			}
		})
	}
}
