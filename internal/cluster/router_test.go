package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

func TestRouterCrossShard(t *testing.T) {
	keys := shard.Keys("k", 12)
	store, net, _, ring := shardedCluster(t, 601, 50*time.Millisecond, keys)
	ctx := context.Background()
	r, err := NewRouter(store)
	if err != nil {
		t.Fatal(err)
	}
	k0 := keyOn(t, ring, keys, "g0")
	k1 := keyOn(t, ring, keys, "g1")
	if r.GroupOf(k0) != "g0" || r.GroupOf(k1) != "g1" {
		t.Fatalf("router disagrees with ring: %q->%q, %q->%q",
			k0, r.GroupOf(k0), k1, r.GroupOf(k1))
	}
	pl := r.Placement(keys)
	if len(pl["g0"])+len(pl["g1"]) != len(keys) {
		t.Fatalf("placement lost keys: %v", pl)
	}

	// One cross-shard transaction writing both groups, then one reading
	// both back: atomic fan-out across two subtransaction subtrees.
	if _, err := r.RunCrossShard(ctx, []Op{WriteOp(k0, 100), WriteOp(k1, 200)}); err != nil {
		t.Fatalf("cross-shard write: %v", err)
	}
	got, err := r.RunCrossShard(ctx, []Op{ReadOp(k0), ReadOp(k1)})
	if err != nil {
		t.Fatalf("cross-shard read: %v", err)
	}
	if got[k0] != 100 || got[k1] != 200 {
		t.Fatalf("cross-shard read got %v, want %s=100 %s=200", got, k0, k1)
	}

	// Single-key convenience path.
	if err := r.Write(ctx, k0, 101); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(ctx, k0)
	if err != nil || v != 101 {
		t.Fatalf("router read = %v, %v; want 101", v, err)
	}

	// MigrateShard moves a key and the router keeps serving it, cache
	// refreshed past the cutover epoch.
	before := r.Epoch()
	if err := r.MigrateShard(ctx, "g1", k0); err != nil {
		t.Fatalf("MigrateShard: %v", err)
	}
	net.Quiesce()
	if r.GroupOf(k0) != "g1" {
		t.Fatalf("router still routes %q to %q after MigrateShard", k0, r.GroupOf(k0))
	}
	if r.Epoch() <= before {
		t.Fatalf("epoch did not advance across migration: %d -> %d", before, r.Epoch())
	}
	v, err = r.Read(ctx, k0)
	if err != nil || v != 101 {
		t.Fatalf("read after MigrateShard = %v, %v; want 101", v, err)
	}

	// Refresh round-trips the ring through DM gossip without regressing.
	epoch, err := r.Refresh(ctx)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if epoch < r.Epoch() {
		t.Fatalf("Refresh regressed epoch to %d", epoch)
	}
}

// TestRouterStaleCacheRetriesOnce: a router whose cached ring predates a
// migration takes exactly one redirect round trip — the store adopts the
// redirect mid-transaction, the retry-once lane reruns, and the ring cache
// catches up.
func TestRouterStaleCacheRetriesOnce(t *testing.T) {
	keys := shard.Keys("k", 12)
	store, net, _, ring := shardedCluster(t, 602, 50*time.Millisecond, keys)
	ctx := context.Background()
	key := keyOn(t, ring, keys, "g0")

	items, err := ShardItems(ring, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	staleStore, err := OpenClient(net, items,
		WithSeed(1602), WithCallTimeout(25*time.Millisecond),
		WithRetryBackoff(2*time.Millisecond), WithSynchronousCleanup(true),
		WithRing(ring))
	if err != nil {
		t.Fatal(err)
	}
	defer staleStore.Close()
	r, err := NewRouter(staleStore)
	if err != nil {
		t.Fatal(err)
	}

	if err := r.Write(ctx, key, 1); err != nil {
		t.Fatal(err)
	}
	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	net.Quiesce()

	v, err := r.Read(ctx, key)
	if err != nil {
		t.Fatalf("stale router read: %v", err)
	}
	if v != 1 {
		t.Fatalf("stale router read %v, want 1", v)
	}
	if r.GroupOf(key) != "g1" {
		t.Fatalf("router cache not refreshed: %q still on %q", key, r.GroupOf(key))
	}
}

func TestShardItemsPlacement(t *testing.T) {
	groups := []shard.Group{
		{Name: "g0", DMs: []string{"a0", "a1", "a2"}},
		{Name: "g1", DMs: []string{"b0", "b1", "b2"}},
	}
	ring, err := shard.New(7, 64, groups)
	if err != nil {
		t.Fatal(err)
	}
	keys := shard.Keys("k", 32)
	items, err := ShardItems(ring, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(keys) {
		t.Fatalf("ShardItems returned %d specs for %d keys", len(items), len(keys))
	}
	for _, it := range items {
		g, _ := ring.Group(ring.Lookup(it.Name))
		if len(it.DMs) != len(g.DMs) {
			t.Fatalf("item %q spec names %v, group has %v", it.Name, it.DMs, g.DMs)
		}
		if err := it.Config.Validate(it.DMs); err != nil {
			t.Fatalf("item %q config invalid: %v", it.Name, err)
		}
	}
}

// TestShardStatsConcurrent hammers ShardStats, Stats counters, and
// OverloadTotals while transactions and a migration run — the satellite
// regression for per-shard aggregation racing the data path (run under
// -race).
func TestShardStatsConcurrent(t *testing.T) {
	keys := shard.Keys("k", 8)
	store, _, _, ring := shardedCluster(t, 603, 50*time.Millisecond, keys,
		WithLockRetries(5), WithTxnRetries(5))
	ctx := context.Background()
	key := keyOn(t, ring, keys, "g0")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			stats := store.ShardStats()
			if len(stats) != 2 {
				t.Errorf("ShardStats returned %d groups", len(stats))
				return
			}
			_ = store.OverloadTotals()
			_ = store.Ring()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, key, i) })
		}
	}()
	if err := store.MigrateItem(ctx, key, "g1"); err != nil {
		// A migration racing live writers may lose the lock race within
		// its retry budget; only a wedge (error after quiescence) matters.
		t.Logf("migration under contention: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := 0
	for _, st := range store.ShardStats() {
		total += st.Items
	}
	if total != len(keys) {
		t.Fatalf("per-shard item counts sum to %d, want %d", total, len(keys))
	}
}
