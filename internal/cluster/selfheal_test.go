package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// selfHealCluster opens a volatile three-replica majority cluster with
// leases driven by a manual clock, so tests control exactly when leases
// lapse. Synchronous cleanup keeps commit control inside Run, so a Quiesce
// after an operation settles every message the operation caused.
func selfHealCluster(t *testing.T, seed int64, ttl time.Duration, extra ...Option) (*Store, *sim.Network, *sim.ManualClock, []string) {
	t.Helper()
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(sim.Config{
		MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond,
		Seed: seed, FateFeedback: true,
	})
	clk := sim.NewManualClock(time.Unix(0, 0))
	items := []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}}
	opts := append([]Option{
		WithSeed(seed),
		WithCallTimeout(25 * time.Millisecond),
		WithLeaseTTL(ttl),
		WithClock(clk),
		WithRetryBackoff(2 * time.Millisecond),
		WithSynchronousCleanup(true),
	}, extra...)
	store, err := Open(net, items, opts...)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net, clk, dms
}

// TestCloseIdempotent pins Store.Close's contract: any number of calls,
// from any number of goroutines, is safe and shuts the store down exactly
// once.
func TestCloseIdempotent(t *testing.T) {
	dms := []string{"dm0", "dm1", "dm2"}
	net := sim.NewNetwork(fastNet(301))
	defer net.Close()
	store, err := Open(net,
		[]ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		WithSeed(301),
		// Background loops make double-Close genuinely dangerous (a second
		// close of stopBg would panic), so run with both enabled.
		WithLeaseTTL(50*time.Millisecond),
		WithAntiEntropy(5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Run(context.Background(), func(tx *Txn) error {
		return tx.Write(context.Background(), "x", 1)
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			store.Close()
		}()
	}
	wg.Wait()
	store.Close() // and once more after everyone is done
}

// TestConflictRetryHonorsCancel is the satellite-1 regression: a
// transaction stuck behind a foreign lock, with a retry budget worth many
// seconds of backoff, must return promptly when its context is cancelled —
// from the retry loops and from the commit/abort control sends alike.
func TestConflictRetryHonorsCancel(t *testing.T) {
	store, _, _, dms := selfHealCluster(t, 302, 0, // leases off: the blocker must never be reaped
		WithLockRetries(100),
		WithRetryBackoff(50*time.Millisecond),
		WithTxnRetries(100),
	)
	ctx := context.Background()
	// A foreign transaction write-locks every replica; nobody will ever
	// resolve it, so the write below can only end by cancellation.
	blocker := TxnID("zz.t1")
	for _, dm := range dms {
		raw, err := store.client.Call(ctx, dm, WriteReq{Txn: blocker, Item: "x", VN: 999, Val: 0, Seq: 1})
		if err != nil {
			t.Fatalf("plant blocker at %s: %v", dm, err)
		}
		if wr, ok := raw.(WriteResp); !ok || !wr.OK {
			t.Fatalf("blocker refused at %s: %#v", dm, raw)
		}
	}
	cctx, cancel := context.WithTimeout(ctx, 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := store.Run(cctx, func(tx *Txn) error { return tx.Write(cctx, "x", 7) })
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("write through a permanently locked item succeeded")
	}
	// The budget is 100 retries × ≥50ms ≈ 5s+ per attempt, times 100
	// restarts. Honoring cancellation means returning within a breath of
	// the 25ms deadline, not a slice of that budget.
	if elapsed > 2*time.Second {
		t.Fatalf("Run returned after %v; cancellation not honored through the retry budget", elapsed)
	}
}

// TestHealthBoardTransitions unit-tests the failure detector's counters:
// circuits open after failThreshold consecutive failures, close on one
// success, and expose their state through suspect().
func TestHealthBoardTransitions(t *testing.T) {
	var stats Stats
	b := newHealthBoard(&stats, false)
	for i := 0; i < defaultFailThreshold-1; i++ {
		b.observe("dm0", false, 0)
	}
	if b.suspect("dm0") {
		t.Fatalf("circuit opened after %d failures, threshold is %d", defaultFailThreshold-1, defaultFailThreshold)
	}
	b.observe("dm0", false, 0)
	if !b.suspect("dm0") {
		t.Fatal("circuit not open at the fail threshold")
	}
	if stats.CircuitOpens.Value() != 1 || stats.SuspectReplicas.Value() != 1 {
		t.Fatalf("counters: opens=%d suspects=%d, want 1/1", stats.CircuitOpens.Value(), stats.SuspectReplicas.Value())
	}
	// A success — even after a long failure streak — closes the circuit.
	b.observe("dm0", true, time.Millisecond)
	if b.suspect("dm0") {
		t.Fatal("circuit still open after a success")
	}
	if stats.SuspectReplicas.Value() != 0 {
		t.Fatalf("suspect gauge %d after recovery, want 0", stats.SuspectReplicas.Value())
	}
	// Interleaved successes keep resetting the streak.
	b.observe("dm1", false, 0)
	b.observe("dm1", false, 0)
	b.observe("dm1", true, time.Millisecond)
	b.observe("dm1", false, 0)
	b.observe("dm1", false, 0)
	if b.suspect("dm1") {
		t.Fatal("non-consecutive failures opened the circuit")
	}
}

// TestHealthBoardPlan checks fan-out planning: suspects are skipped only
// while healthy replicas still cover a quorum, and an open circuit gets a
// single half-open probe every probeEvery passes.
func TestHealthBoardPlan(t *testing.T) {
	b := newHealthBoard(nil, false)
	targets := []string{"dm0", "dm1", "dm2"}
	quorums := []quorum.Set{
		quorum.NewSet("dm0", "dm1"), quorum.NewSet("dm0", "dm2"), quorum.NewSet("dm1", "dm2"),
	}
	// All healthy: everyone is dialed.
	send, probes, skipped := b.plan(targets, quorums)
	if len(send) != 3 || probes != nil || skipped != 0 {
		t.Fatalf("healthy plan: send=%v probes=%v skipped=%d", send, probes, skipped)
	}
	for i := 0; i < defaultFailThreshold; i++ {
		b.observe("dm2", false, 0)
	}
	// dm2 suspect, {dm0,dm1} covers a quorum: skip dm2 for probeEvery-1
	// passes, then probe it exactly once.
	probed := 0
	for pass := 1; pass <= defaultProbeEvery; pass++ {
		send, probes, skipped = b.plan(targets, quorums)
		if len(probes) > 0 {
			probed++
			if !probes["dm2"] || len(send) != 3 || skipped != 0 {
				t.Fatalf("pass %d: probe plan send=%v probes=%v skipped=%d", pass, send, probes, skipped)
			}
		} else if len(send) != 2 || skipped != 1 {
			t.Fatalf("pass %d: skip plan send=%v skipped=%d", pass, send, skipped)
		}
	}
	if probed != 1 {
		t.Fatalf("%d probes in %d passes, want exactly 1", probed, defaultProbeEvery)
	}
	// Two suspects leave no healthy quorum: availability first, dial all.
	for i := 0; i < defaultFailThreshold; i++ {
		b.observe("dm1", false, 0)
	}
	send, probes, skipped = b.plan(targets, quorums)
	if len(send) != 3 || probes != nil || skipped != 0 {
		t.Fatalf("uncovered plan must dial everyone: send=%v probes=%v skipped=%d", send, probes, skipped)
	}
}

// TestHealthBoardTimeout checks the adaptive timeout clamps: unknown
// replicas get the full base, fast replicas get mult×EWMA floored, and the
// base is never exceeded.
func TestHealthBoardTimeout(t *testing.T) {
	b := newHealthBoard(nil, false)
	base := 100 * time.Millisecond
	if d := b.timeout("dm0", base); d != base {
		t.Fatalf("unknown replica timeout %v, want base %v", d, base)
	}
	b.observe("dm0", true, 100*time.Microsecond)
	if d := b.timeout("dm0", base); d != adaptiveTimeoutFloor {
		t.Fatalf("fast replica timeout %v, want floor %v", d, adaptiveTimeoutFloor)
	}
	b.observe("dm1", true, 2*time.Millisecond)
	if d := b.timeout("dm1", base); d != adaptiveTimeoutMult*2*time.Millisecond {
		t.Fatalf("timeout %v, want %v", d, adaptiveTimeoutMult*2*time.Millisecond)
	}
	b.observe("dm2", true, time.Second)
	if d := b.timeout("dm2", base); d != base {
		t.Fatalf("slow replica timeout %v, want clamped to base %v", d, base)
	}
	b.fixedTimeout = true
	if d := b.timeout("dm0", base); d != base {
		t.Fatalf("fixed-timeout board gave %v, want base %v", d, base)
	}
}

// TestHealthBoardOrderQuorums checks the sequential path's steering:
// quorums are stably reordered by suspect count, fewest first.
func TestHealthBoardOrderQuorums(t *testing.T) {
	b := newHealthBoard(nil, false)
	for i := 0; i < defaultFailThreshold; i++ {
		b.observe("dm0", false, 0)
	}
	qs := []quorum.Set{
		quorum.NewSet("dm0", "dm1"), // 1 suspect
		quorum.NewSet("dm1", "dm2"), // 0 suspects
		quorum.NewSet("dm0", "dm2"), // 1 suspect
	}
	out := b.orderQuorums(qs)
	if !out[0].Contains("dm1") || !out[0].Contains("dm2") || out[0].Contains("dm0") {
		t.Fatalf("healthiest quorum not first: %v", out)
	}
	// Stable: the two one-suspect quorums keep their relative order.
	if !out[1].Contains("dm1") || !out[2].Contains("dm2") {
		t.Fatalf("equal-count quorums reordered: %v", out)
	}
}

// TestFanOutSteersAroundCrashedReplica drives the detector end to end: a
// crashed replica opens its circuit after a few writes, later fan-outs skip
// it, and once it restarts a half-open probe closes the circuit again.
func TestFanOutSteersAroundCrashedReplica(t *testing.T) {
	store, net, _, _ := selfHealCluster(t, 303, 0, WithHealthProbes(true))
	ctx := context.Background()
	write := func(i int) {
		t.Helper()
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	write(0) // seed the EWMAs while everyone is up
	net.Crash("dm2")
	for i := 1; i <= 8; i++ {
		write(i)
	}
	if store.Stats.CircuitOpens.Value() == 0 {
		t.Fatal("crashed replica never opened its circuit")
	}
	if store.Stats.SuspectSkips.Value() == 0 {
		t.Fatal("fan-outs never steered around the suspect")
	}
	net.Restart("dm2")
	for i := 9; i <= 20; i++ {
		write(i)
	}
	if store.Stats.ProbeTrials.Value() == 0 {
		t.Fatal("no half-open probes were sent")
	}
	for _, h := range store.Health() {
		if h.Suspect {
			t.Fatalf("%s still suspect after restart and probes: %+v", h.DM, h)
		}
	}
	if g := store.Stats.SuspectReplicas.Value(); g != 0 {
		t.Fatalf("suspect gauge %d after recovery, want 0", g)
	}
}

// TestLeaseReapsOrphanedLocks is the reaper's core promise: a client that
// crashed holding write locks wedges the item only until its lease lapses;
// the next conflicting writer triggers a peer inquiry, every peer answers
// "unknown", and the orphan is presumed aborted — locks freed, intention
// dropped, the writer's retry succeeds.
func TestLeaseReapsOrphanedLocks(t *testing.T) {
	ttl := 50 * time.Millisecond
	store, net, clk, dms := selfHealCluster(t, 304, ttl)
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := store.PlantOrphan(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	clk.Advance(ttl + time.Millisecond)
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 2) }); err != nil {
		t.Fatalf("write after orphan's lease lapsed: %v", err)
	}
	net.Quiesce()
	if got := store.Stats.OrphanReapsAborted.Value(); got == 0 {
		t.Fatal("no orphan was reaped")
	}
	if got := store.Stats.ResolutionQueries.Value(); got == 0 {
		t.Fatal("reap happened without a peer inquiry")
	}
	for _, dm := range dms {
		insp, err := store.Inspect(ctx, dm, "x")
		if err != nil {
			t.Fatalf("inspect %s: %v", dm, err)
		}
		if insp.Locks != 0 || insp.Intents != 0 {
			t.Fatalf("%s still holds %d lock(s), %d intent(s) after reap", dm, insp.Locks, insp.Intents)
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("read %d, want 2 — the orphan's buffered write must not survive", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReapAppliesPeerCommitRecord covers the other reap outcome: a replica
// that missed the commit broadcast (crashed across the commit point) still
// holds the committed transaction's locks and intention. Once the lease
// lapses, its inquiry reaches peers that DID resolve the transaction, and
// the straggler applies the commit — intention folded in, not discarded.
func TestReapAppliesPeerCommitRecord(t *testing.T) {
	ttl := 50 * time.Millisecond
	store, net, clk, _ := selfHealCluster(t, 305, ttl, WithLockRetries(3))
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatal(err)
	}
	crashed := false
	store.Hooks.BeforeCommitTop = func(TxnID) {
		if !crashed {
			crashed = true
			net.Crash("dm0")
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 42) }); err != nil {
		t.Fatalf("commit with crashed minority: %v", err)
	}
	store.Hooks.BeforeCommitTop = nil
	net.Restart("dm0")
	pre, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Intents == 0 || pre.Locks == 0 {
		t.Fatalf("precondition: dm0 should be a straggler with lock+intent, got %+v", pre)
	}

	clk.Advance(ttl + time.Millisecond)
	// The sweep's inspection is the orphan hunter here — no client is
	// waiting on dm0, since quorums route around it.
	if _, err := store.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()

	if got := store.Stats.OrphanReapsCommitted.Value(); got == 0 {
		t.Fatal("straggler never applied the peers' commit record")
	}
	post, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if post.Intents != 0 || post.Locks != 0 {
		t.Fatalf("straggler still holds %d intent(s), %d lock(s)", post.Intents, post.Locks)
	}
	if post.Val != 42 {
		t.Fatalf("straggler reaped to value %v, want the committed 42", post.Val)
	}
}

// TestLeaseFenceStopsReapedCommit is the safety half of presumed abort: a
// slow client whose locks were reaped must NOT be able to commit. The
// pre-commit lease fence hits the replicas that resolved the transaction,
// they refuse the renewal, and Run surfaces ErrLeaseExpired instead of
// committing a transaction the cluster already aborted.
func TestLeaseFenceStopsReapedCommit(t *testing.T) {
	ttl := 50 * time.Millisecond
	store, net, clk, _ := selfHealCluster(t, 306, ttl, WithTxnRetries(0))
	ctx := context.Background()
	other, err := OpenClient(net, store.Items(),
		WithSeed(307), WithCallTimeout(25*time.Millisecond),
		WithLeaseTTL(ttl), WithClock(clk), WithRetryBackoff(2*time.Millisecond),
		WithSynchronousCleanup(true))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	err = store.Run(ctx, func(tx *Txn) error {
		if err := tx.Write(ctx, "x", 111); err != nil {
			return err
		}
		// The client now "stalls": its lease lapses, and a second client's
		// conflicting write gets the locks reaped out from under it.
		clk.Advance(ttl + time.Millisecond)
		if err := other.Run(ctx, func(tx2 *Txn) error { return tx2.Write(ctx, "x", 222) }); err != nil {
			return fmt.Errorf("second client could not write past the expired lease: %w", err)
		}
		return nil // and then tries to commit
	})
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stalled client's commit returned %v, want ErrLeaseExpired", err)
	}
	if store.Stats.LeaseExpiries.Value() == 0 {
		t.Fatal("lease expiry not counted")
	}
	net.Quiesce()
	if err := other.Run(ctx, func(tx *Txn) error {
		v, err := ReadAs[int](ctx, tx, "x")
		if err != nil {
			return err
		}
		if v != 222 {
			t.Errorf("final value %d, want the surviving client's 222", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAntiEntropySweepHealsStaleReplica checks the sweeper repairs both
// dimensions of staleness — committed version and configuration generation
// — without waiting for a lucky quorum read, and that a converged cluster
// sweeps clean.
func TestAntiEntropySweepHealsStaleReplica(t *testing.T) {
	store, net, _, dms := selfHealCluster(t, 308, 0)
	ctx := context.Background()
	net.Crash("dm2")
	for i := 1; i <= 3; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatal(err)
		}
	}
	// Bump the configuration generation while dm2 is down; the config write
	// needs only a write quorum of the old configuration.
	if err := store.Reconfigure(ctx, "x", quorum.Majority(dms)); err != nil {
		t.Fatal(err)
	}
	net.Restart("dm2")
	stale, err := store.Inspect(ctx, "dm2", "x")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := store.Inspect(ctx, "dm0", "x")
	if err != nil {
		t.Fatal(err)
	}
	if stale.VN >= fresh.VN && stale.Gen >= fresh.Gen {
		t.Fatalf("precondition: dm2 should be stale (dm2 %+v, dm0 %+v)", stale, fresh)
	}
	repairs, err := store.SweepOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repairs == 0 {
		t.Fatal("sweep saw a stale replica but sent no repairs")
	}
	net.Quiesce()
	healed, err := store.Inspect(ctx, "dm2", "x")
	if err != nil {
		t.Fatal(err)
	}
	if healed.VN != fresh.VN || healed.Val != fresh.Val || healed.Gen != fresh.Gen {
		t.Fatalf("dm2 not healed: %+v, want vn/gen of %+v", healed, fresh)
	}
	if store.Stats.AntiEntropyRepairs.Value() == 0 || store.Stats.AntiEntropySweeps.Value() == 0 {
		t.Fatal("sweep counters not advanced")
	}
	// A converged cluster has nothing to repair.
	repairs, err = store.SweepOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repairs != 0 {
		t.Fatalf("second sweep sent %d repairs on a converged cluster", repairs)
	}
}
