package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
)

func testCluster(t *testing.T, nDMs int, cfg func([]string) quorum.Config, netCfg sim.Config) (*Store, *sim.Network, []string) {
	t.Helper()
	dms := make([]string, nDMs)
	for i := range dms {
		dms[i] = fmt.Sprintf("dm%d", i)
	}
	net := sim.NewNetwork(netCfg)
	store, err := Open(net, []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: cfg(dms)}},
		WithCallTimeout(25*time.Millisecond),
		WithSeed(netCfg.Seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		net.Close()
	})
	return store, net, dms
}

func fastNet(seed int64) sim.Config {
	return sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: seed}
}

func TestReadWriteRoundTrip(t *testing.T) {
	store, _, _ := testCluster(t, 3, quorum.Majority, fastNet(1))
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error {
		if err := tx.Write(ctx, "x", 42); err != nil {
			return err
		}
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 42 {
			return fmt.Errorf("read own write: got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A later transaction sees the committed value.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 42 {
			return fmt.Errorf("committed read: got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialValueVisible(t *testing.T) {
	store, _, _ := testCluster(t, 3, quorum.ReadOneWriteAll, fastNet(2))
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 0 {
			return fmt.Errorf("initial value: got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtransactionAbortDiscardsWrites(t *testing.T) {
	store, _, _ := testCluster(t, 3, quorum.Majority, fastNet(3))
	ctx := context.Background()
	boom := errors.New("boom")
	if err := store.Run(ctx, func(tx *Txn) error {
		if err := tx.Write(ctx, "x", 1); err != nil {
			return err
		}
		// The subtransaction writes and then fails; the parent tolerates
		// the abort and continues — the paper's headline capability.
		if err := tx.Sub(ctx, func(sub *Txn) error {
			if err := sub.Write(ctx, "x", 99); err != nil {
				return err
			}
			return boom
		}); !errors.Is(err, boom) {
			return fmt.Errorf("sub error: %v", err)
		}
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("aborted sub's write leaked: got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// After commit, the surviving value is the parent's.
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("final value: got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtransactionCommitVisibleToParent(t *testing.T) {
	store, _, _ := testCluster(t, 5, quorum.Majority, fastNet(4))
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error {
		if err := tx.Sub(ctx, func(sub *Txn) error {
			return sub.Write(ctx, "x", 7)
		}); err != nil {
			return err
		}
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 7 {
			return fmt.Errorf("parent should see child's write: got %v", v)
		}
		return tx.Sub(ctx, func(sub *Txn) error {
			v, err := sub.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 7 {
				return fmt.Errorf("sibling should see committed sibling's write: got %v", v)
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTopAbortDiscardsEverything(t *testing.T) {
	store, _, _ := testCluster(t, 3, quorum.Majority, fastNet(5))
	ctx := context.Background()
	boom := errors.New("boom")
	if err := store.Run(ctx, func(tx *Txn) error {
		if err := tx.Write(ctx, "x", 123); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 0 {
			return fmt.Errorf("aborted txn's write leaked: got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIncrementsSerializable(t *testing.T) {
	store, _, _ := testCluster(t, 3, quorum.Majority, fastNet(6))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const workers, perWorker = 4, 5
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := store.Run(ctx, func(tx *Txn) error {
					v, err := tx.ReadForUpdate(ctx, "x")
					if err != nil {
						return err
					}
					return tx.Write(ctx, "x", v.(int)+1)
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != workers*perWorker {
			return fmt.Errorf("lost updates: got %v, want %d", v, workers*perWorker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMinorityCrashTolerated(t *testing.T) {
	store, net, dms := testCluster(t, 5, quorum.Majority, fastNet(7))
	ctx := context.Background()
	net.Crash(dms[0])
	net.Crash(dms[1])
	if err := store.Run(ctx, func(tx *Txn) error {
		if err := tx.Write(ctx, "x", 5); err != nil {
			return err
		}
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 5 {
			return fmt.Errorf("got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("majority up, op should succeed: %v", err)
	}
}

func TestMajorityCrashBlocksWrites(t *testing.T) {
	store, net, dms := testCluster(t, 3, quorum.Majority, fastNet(8))
	ctx := context.Background()
	net.Crash(dms[0])
	net.Crash(dms[1])
	err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 5) })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

func TestCrashedReplicaRecoversStaleThenCatchesUpViaVersionNumbers(t *testing.T) {
	store, net, dms := testCluster(t, 3, quorum.Majority, fastNet(9))
	ctx := context.Background()
	net.Crash(dms[2])
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 10) }); err != nil {
		t.Fatal(err)
	}
	net.Restart(dms[2])
	// dms[2] is stale (vn 0); majority reads must still return 10 because
	// any read quorum intersects the write quorum that holds vn 1.
	for i := 0; i < 5; i++ {
		if err := store.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 10 {
				return fmt.Errorf("stale read: got %v", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReconfigureExcludesCrashedDM(t *testing.T) {
	store, net, dms := testCluster(t, 5, quorum.Majority, fastNet(10))
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 1) }); err != nil {
		t.Fatal(err)
	}
	// Two replicas die; majority of 5 still works, but shrink the quorums
	// to the three live DMs so future ops don't wait on the dead ones.
	net.Crash(dms[3])
	net.Crash(dms[4])
	live := dms[:3]
	if err := store.Reconfigure(ctx, "x", quorum.Majority(live)); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("value across reconfiguration: got %v", v)
		}
		return tx.Write(ctx, "x", 2)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleClientDiscoversNewConfiguration(t *testing.T) {
	store, _, dms := testCluster(t, 5, quorum.Majority, fastNet(11))
	ctx := context.Background()
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 77) }); err != nil {
		t.Fatal(err)
	}
	if err := store.Reconfigure(ctx, "x", quorum.ReadOneWriteAll(dms)); err != nil {
		t.Fatal(err)
	}
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 88) }); err != nil {
		t.Fatal(err)
	}
	// Forget the configuration: the next read must chase the generation
	// number from the old majority config to read-one/write-all and still
	// return the latest value.
	store.ForgetConfig("x")
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 88 {
			return fmt.Errorf("stale client read %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	cfg := fastNet(12)
	cfg.DropProb = 0.02
	store, _, _ := testCluster(t, 3, quorum.Majority, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 10; i++ {
		if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", i) }); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := store.Run(ctx, func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		if v != 10 {
			return fmt.Errorf("got %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGiffordAblationWritesConfigToBothQuorums(t *testing.T) {
	dms := []string{"a", "b", "c"}
	net := sim.NewNetwork(fastNet(13))
	store, err := Open(net, []ItemSpec{{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)}},
		WithCallTimeout(25*time.Millisecond),
		WithWriteConfigToBothQuorums(true),
		WithSeed(13),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		store.Close()
		net.Close()
	}()
	ctx := context.Background()
	if err := store.Reconfigure(ctx, "x", quorum.ReadOneWriteAll(dms)); err != nil {
		t.Fatal(err)
	}
	if err := store.Run(ctx, func(tx *Txn) error { return tx.Write(ctx, "x", 3) }); err != nil {
		t.Fatal(err)
	}
}

func TestTxnIDAncestry(t *testing.T) {
	cases := []struct {
		a, b TxnID
		want bool
	}{
		{"t1", "t1", true},
		{"t1", "t1/0", true},
		{"t1", "t1/0/4", true},
		{"t1/0", "t1", false},
		{"t1", "t10", false},
		{"t1/2", "t1/20", false},
	}
	for _, c := range cases {
		if got := c.a.IsAncestorOf(c.b); got != c.want {
			t.Errorf("IsAncestorOf(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if p, ok := TxnID("t1/2/3").Parent(); !ok || p != "t1/2" {
		t.Errorf("Parent(t1/2/3) = %v %v", p, ok)
	}
	if _, ok := TxnID("t1").Parent(); ok {
		t.Error("top-level should have no parent")
	}
	if top := TxnID("t9/4/2").Top(); top != "t9" {
		t.Errorf("Top = %v", top)
	}
}
