package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// This file runs the core integration scenarios over every transport
// backend — the simulated network and real loopback TCP — and pins the
// error-taxonomy parity the Transport seam promises: a client sees the
// same typed errors (*UnavailableError, context errors) whichever backend
// carries its calls, and raw socket errors (*net.OpError) never escape.

// forEachTransport runs fn under each backend with a fresh transport.
func forEachTransport(t *testing.T, fn func(t *testing.T, tr transport.Transport)) {
	t.Run("sim", func(t *testing.T) {
		n := sim.NewNetwork(sim.Config{MinLatency: 50 * time.Microsecond, MaxLatency: 500 * time.Microsecond, Seed: 7})
		defer n.Close()
		fn(t, n)
	})
	t.Run("tcp", func(t *testing.T) {
		tr := tcp.New()
		defer tr.Close()
		fn(t, tr)
	})
}

// openTestStore opens a 3-replica majority cluster for item "x" on tr.
func openTestStore(t *testing.T, tr transport.Transport, opts ...Option) (*Store, []string) {
	t.Helper()
	dms := []string{"pd0", "pd1", "pd2"}
	all := append([]Option{
		WithCallTimeout(500 * time.Millisecond),
		WithSeed(11),
	}, opts...)
	store, err := Open(tr, []ItemSpec{
		{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)},
	}, all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	return store, dms
}

func TestTransportParityCommitAndReadBack(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, _ := openTestStore(t, tr)
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error {
			return tx.Write(ctx, "x", 41)
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			v, vn, err := tx.ReadVersioned(ctx, "x")
			if err != nil {
				return err
			}
			if v != 41 || vn != 1 {
				t.Errorf("read back (%v, vn %d), want (41, vn 1)", v, vn)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTransportParityNestedSubAbort(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, _ := openTestStore(t, tr)
		ctx := context.Background()
		errRisky := errors.New("risky step failed")
		if err := store.Run(ctx, func(tx *Txn) error {
			if err := tx.Write(ctx, "x", 10); err != nil {
				return err
			}
			if err := tx.Sub(ctx, func(sub *Txn) error {
				if err := sub.Write(ctx, "x", -1); err != nil {
					return err
				}
				return errRisky
			}); !errors.Is(err, errRisky) {
				return fmt.Errorf("sub abort surfaced as %v", err)
			}
			// A second sub commits and its write must survive promotion.
			return tx.Sub(ctx, func(sub *Txn) error {
				return sub.Write(ctx, "x", 20)
			})
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 20 {
				t.Errorf("after tolerated sub-abort x = %v, want 20", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTransportParityReconfigure(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, dms := openTestStore(t, tr)
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error {
			return tx.Write(ctx, "x", 5)
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Reconfigure(ctx, "x", quorum.ReadOneWriteAll(dms)); err != nil {
			t.Fatal(err)
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 5 {
				t.Errorf("post-reconfig read = %v, want 5", v)
			}
			return tx.Write(ctx, "x", 6)
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTransportParitySecondClient(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, dms := openTestStore(t, tr)
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error {
			return tx.Write(ctx, "x", 99)
		}); err != nil {
			t.Fatal(err)
		}
		// An independent client over the same transport sees the commit.
		other, err := OpenClient(tr, []ItemSpec{
			{Name: "x", Initial: 0, DMs: dms, Config: quorum.Majority(dms)},
		}, WithCallTimeout(500*time.Millisecond), WithSeed(12))
		if err != nil {
			t.Fatal(err)
		}
		defer other.Close()
		if err := other.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 99 {
				t.Errorf("second client read = %v, want 99", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTransportParityErrorTaxonomy pins the error contract across backends:
// losing a majority surfaces as the cluster's typed *UnavailableError (no
// raw socket error anywhere in the chain), losing a minority is tolerated,
// and a context that dies mid-call surfaces as the context's own error.
func TestTransportParityErrorTaxonomy(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		t.Run("majority down is UnavailableError", func(t *testing.T) {
			store, dms := openTestStore(t, tr,
				WithCallTimeout(150*time.Millisecond), WithLockRetries(1), WithTxnRetries(0))
			ctx := context.Background()
			if err := store.StopDM(dms[1]); err != nil {
				t.Fatal(err)
			}
			if err := store.StopDM(dms[2]); err != nil {
				t.Fatal(err)
			}
			err := store.Run(ctx, func(tx *Txn) error {
				return tx.Write(ctx, "x", 1)
			})
			if err == nil {
				t.Fatal("write with majority down succeeded")
			}
			var ue *UnavailableError
			if !errors.As(err, &ue) {
				t.Fatalf("majority-down error is %T (%v), want *UnavailableError", err, err)
			}
			var op *net.OpError
			if errors.As(err, &op) {
				t.Fatalf("raw *net.OpError leaked through the cluster layer: %v", err)
			}
		})
		t.Run("minority down commits", func(t *testing.T) {
			store, dms := openTestStore(t, tr, WithCallTimeout(150*time.Millisecond))
			ctx := context.Background()
			if err := store.StopDM(dms[2]); err != nil {
				t.Fatal(err)
			}
			if err := store.Run(ctx, func(tx *Txn) error {
				return tx.Write(ctx, "x", 2)
			}); err != nil {
				t.Fatalf("write with minority down failed: %v", err)
			}
		})
		t.Run("dead context surfaces as context error", func(t *testing.T) {
			store, _ := openTestStore(t, tr)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			err := store.Run(ctx, func(tx *Txn) error {
				return tx.Write(ctx, "x", 3)
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled txn gave %v, want context.Canceled in chain", err)
			}
			var op *net.OpError
			if errors.As(err, &op) {
				t.Fatalf("raw *net.OpError leaked on cancellation: %v", err)
			}
		})
	})
}

// TestTransportParityHintedRead runs the freshness-hint fast lane over both
// backends: a committed write grants hints, a quorum read caches the target
// from the piggybacked flag, and the next read is served by one replica —
// same value, same counters, sim or TCP.
func TestTransportParityHintedRead(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, _ := openTestStore(t, tr, WithReadLease(true), WithReadLeaseTTL(time.Minute))
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error {
			return tx.Write(ctx, "x", 31)
		}); err != nil {
			t.Fatal(err)
		}
		readBack := func(want int) {
			t.Helper()
			if err := store.Run(ctx, func(tx *Txn) error {
				v, err := tx.Read(ctx, "x")
				if err != nil {
					return err
				}
				if v != want {
					t.Errorf("read = %v, want %d", v, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		readBack(31) // quorum read; piggybacks the hinted target
		if _, ok := store.HintTarget("x"); !ok {
			t.Fatal("quorum read cached no hinted target")
		}
		readBack(31) // fast-lane read
		if store.Stats.HintHits.Value() == 0 {
			t.Fatal("hinted single-replica read never hit")
		}
	})
}

// TestTransportParityHintStaleFallback forces the replica-side miss over
// both backends: after a reconfiguration bumps the generation, a hinted
// read still asserting the old generation gets a typed HintMissResp (never
// a raw transport artifact), and the ordinary read path silently falls
// back to the quorum with the correct value.
func TestTransportParityHintStaleFallback(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, dms := openTestStore(t, tr, WithReadLease(true), WithReadLeaseTTL(time.Minute))
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error {
			return tx.Write(ctx, "x", 8)
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			_, err := tx.Read(ctx, "x")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Reconfigure(ctx, "x", quorum.ReadOneWriteAll(dms)); err != nil {
			t.Fatal(err)
		}
		// A probe asserting the pre-reconfiguration generation must be
		// refused with the protocol's typed miss on every replica.
		cctx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		for _, dm := range dms {
			raw, err := store.client.Call(cctx, dm, HintReadReq{Txn: "probe", Item: "x", Seq: 1, Gen: 0})
			if err != nil {
				t.Fatalf("%s: %v", dm, err)
			}
			if resp, ok := raw.(ReadResp); ok && resp.OK {
				t.Fatalf("%s served a hinted read under a stale generation", dm)
			}
		}
		// The full path still reads the committed value under the new
		// configuration.
		if err := store.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 8 {
				t.Errorf("post-reconfig read = %v, want 8", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTransportParityHintTargetKilled kills the cached fast-lane replica
// mid-workload: the hinted read's transport failure must stay invisible —
// the read falls back to a quorum of the survivors with the right value,
// no error, and no raw *net.OpError anywhere.
func TestTransportParityHintTargetKilled(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport.Transport) {
		store, _ := openTestStore(t, tr,
			WithReadLease(true), WithReadLeaseTTL(time.Minute),
			WithCallTimeout(150*time.Millisecond))
		ctx := context.Background()
		if err := store.Run(ctx, func(tx *Txn) error {
			return tx.Write(ctx, "x", 77)
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Run(ctx, func(tx *Txn) error {
			_, err := tx.Read(ctx, "x")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		target, ok := store.HintTarget("x")
		if !ok {
			t.Fatal("no hinted target cached")
		}
		if err := store.StopDM(target); err != nil {
			t.Fatal(err)
		}
		misses := store.Stats.HintMisses.Value()
		err := store.Run(ctx, func(tx *Txn) error {
			v, err := tx.Read(ctx, "x")
			if err != nil {
				return err
			}
			if v != 77 {
				t.Errorf("read with dead hint target = %v, want 77", v)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("read with dead hint target failed: %v", err)
		}
		var op *net.OpError
		if errors.As(err, &op) {
			t.Fatalf("raw *net.OpError leaked through the fast lane: %v", err)
		}
		if store.Stats.HintMisses.Value() == misses {
			t.Fatal("dead-target fast lane not counted as a miss")
		}
		// The fallback quorum read may re-cache a SURVIVING hinted replica —
		// but never the dead one.
		if dm, ok := store.HintTarget("x"); ok && dm == target {
			t.Fatal("dead replica still cached as the fast-lane target")
		}
	})
}
