package cluster

import (
	"context"
	"fmt"
)

// ReadAs is Txn.Read with a typed result: it reads item and asserts the
// value to T. A nil stored value yields T's zero value (an item never
// written whose ItemSpec.Initial is nil). A value of any other type is an
// error naming both types, so schema drift fails loudly instead of
// panicking at the caller's type assertion.
func ReadAs[T any](ctx context.Context, t *Txn, item string) (T, error) {
	var zero T
	v, err := t.Read(ctx, item)
	if err != nil {
		return zero, err
	}
	return as[T](item, v)
}

// ReadForUpdateAs is Txn.ReadForUpdate with a typed result, for
// read-modify-write transactions.
func ReadForUpdateAs[T any](ctx context.Context, t *Txn, item string) (T, error) {
	var zero T
	v, err := t.ReadForUpdate(ctx, item)
	if err != nil {
		return zero, err
	}
	return as[T](item, v)
}

// WriteAs is Txn.Write constrained to T, so a transaction using the typed
// accessors cannot accidentally change an item's type mid-stream.
func WriteAs[T any](ctx context.Context, t *Txn, item string, val T) error {
	return t.Write(ctx, item, val)
}

func as[T any](item string, v any) (T, error) {
	var zero T
	if v == nil {
		return zero, nil
	}
	typed, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("cluster: item %q holds %T, not %T", item, v, zero)
	}
	return typed, nil
}
