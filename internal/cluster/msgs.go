package cluster

import "repro/internal/quorum"

// LockMode is the lock an access must hold at a DM.
type LockMode int

// Lock modes. Write-TM read phases use LockWrite (update locking), so a
// writer never needs to upgrade a read lock it already holds.
const (
	LockRead LockMode = iota + 1
	LockWrite
)

// ReadReq asks a DM for its replica state of an item, acquiring a lock of
// the given mode for the transaction first. Seq identifies the quorum
// phase that issued the request (monotonic per transaction); hedged
// duplicates of one phase share a Seq, and a ReleaseReq carrying the same
// Seq tombstones the phase so late copies cannot re-grant. Seq 0 means
// "no phase tracking" (the sequential ablation path).
type ReadReq struct {
	Txn  TxnID
	Item string
	Lock LockMode
	Seq  int
}

// ReadResp carries the replica state visible to the transaction (committed
// state plus the intentions of its ancestors). Busy reports a lock
// conflict; the caller backs off and retries, which doubles as the
// cluster's deadlock resolution. Held reports that the transaction already
// held a lock on the item before this request — such locks belong to an
// earlier phase and must never be released by this one.
type ReadResp struct {
	OK   bool
	Busy bool
	Held bool
	VN   int
	Val  any
	Gen  int
	Cfg  quorum.Config
}

// WriteReq buffers a versioned value write as an intention of the
// transaction, acquiring a write lock first. Seq is the issuing phase, as
// in ReadReq.
type WriteReq struct {
	Txn  TxnID
	Item string
	VN   int
	Val  any
	Seq  int
}

// ConfigWriteReq buffers a configuration write (generation bump) as an
// intention of the transaction, acquiring a write lock first.
type ConfigWriteReq struct {
	Txn  TxnID
	Item string
	Gen  int
	Cfg  quorum.Config
	Seq  int
}

// WriteResp acknowledges a write (or reports a lock conflict). Held is as
// in ReadResp.
type WriteResp struct {
	OK   bool
	Busy bool
	Held bool
}

// ReleaseReq retracts phase Seq of a transaction at one replica: the
// replica records a tombstone so late (hedged or cancelled) copies of the
// phase's request cannot re-grant, and frees the lock if — and only if —
// that phase created it, no later phase re-granted it, and no buffered
// intention depends on it. Sent fire-and-forget when a first-to-quorum
// fan-out completes with more grants than the winning quorum needs, so
// Moss locking fairness is preserved.
type ReleaseReq struct {
	Txn  TxnID
	Item string
	Seq  int
}

// CommitSubReq promotes a subtransaction's locks and intentions to its
// parent (Moss lock inheritance).
type CommitSubReq struct {
	Txn TxnID
}

// AbortReq discards the locks and intentions of a transaction and all its
// descendants.
type AbortReq struct {
	Txn TxnID
}

// CommitTopReq applies a top-level transaction's intentions to the
// committed replica state and releases its locks. Idempotent.
//
// Subs lists every committed subtransaction in Txn's tree. A DM that
// missed a CommitSubReq still holds that child's intentions under the
// child's own id; the list lets it apply them at top-level commit
// instead of discarding them, which would leave the write visible only
// at the replicas the promote reached.
type CommitTopReq struct {
	Txn  TxnID
	Subs []TxnID
}

// Ack acknowledges a commit/abort control message.
type Ack struct {
	OK bool
}

// RepairReq propagates an already-committed (version, value) pair to a
// stale replica — Gifford's background update of out-of-date copies,
// triggered by quorum reads that observe stale version numbers. Applied
// only when strictly newer than the replica's committed state and no
// transaction holds conflicting state on the item.
type RepairReq struct {
	Item string
	VN   int
	Val  any
}

// InspectReq asks a DM for its committed replica state (diagnostics and
// tests only — not part of the protocol).
type InspectReq struct {
	Item string
}

// InspectResp carries a replica's committed state and bookkeeping sizes.
type InspectResp struct {
	OK      bool
	VN      int
	Val     any
	Gen     int
	Cfg     quorum.Config
	Locks   int
	Intents int
}
